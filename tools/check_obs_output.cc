/**
 * @file
 * check_obs_output: validate the files the simulators emit through
 * the observability layer.
 *
 * Modes:
 *   check_obs_output stats <stats.json>
 *     The file must be a JSON object with schema == xfm.metrics.v1
 *     and a non-empty "metrics" object whose values are numbers.
 *     The schema is additive-only: new metric families may appear,
 *     existing names never change meaning. When any async-ring
 *     metric (*.ring.*) is present the core ring family must be
 *     complete — a partial family means a registration bug.
 *
 *   check_obs_output trace <trace.jsonl>
 *     Every line must be a JSON object carrying integral req (> 0),
 *     start, end (end >= start), arg, and a stage drawn from the
 *     canonical stage vocabulary (including the ring-mode stages
 *     sq_enqueue and cq_reap) — an unknown stage name means a
 *     producer/consumer skew in the trace schema.
 *
 *   check_obs_output health <stats.json>
 *     Everything `stats` checks, plus: at least one health-monitor
 *     state leaf (*.health.*.state) must be present, and every one
 *     must read healthy (0), degraded (1), or failed (2) — a monitor
 *     still in probation (3) at the end of a chaos soak means a
 *     half-open round never resolved, i.e. the breaker is stuck.
 *
 *   check_obs_output abuse <stats.json>
 *     Everything `stats` checks, plus: at least one abuse-monitor
 *     state leaf (*.abuse.state) must be present and settled (not
 *     probation), and the abuse detector must have escalated at
 *     least once — the contract of an adversarial soak's quiet tail.
 *
 * Exits 0 when the file validates, 1 with a diagnostic otherwise —
 * small enough for CI to run after every smoke simulation.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "obs/json.hh"
#include "obs/registry.hh"

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "check_obs_output: cannot read '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/** The canonical trace-stage vocabulary (obs/tracer.cc). */
const std::set<std::string> &
knownStages()
{
    static const std::set<std::string> stages = {
        "swap_out",  "swap_in",   "submit",      "queue",
        "window_wait", "classify", "engine",     "spm_stage",
        "writeback", "cpu_compute", "dfm_link",  "fallback",
        "complete",  "health",    "shed",        "sq_enqueue",
        "cq_reap",   "tier_shift", "refpb",      "rfm",
        "slot_steal",
    };
    return stages;
}

int
fail(const std::string &path, const std::string &why)
{
    std::fprintf(stderr, "check_obs_output: %s: %s\n", path.c_str(),
                 why.c_str());
    return 1;
}

int
checkStats(const std::string &path)
{
    using xfm::obs::json::Value;
    Value v;
    std::string error;
    if (!xfm::obs::json::parse(slurp(path), v, error))
        return fail(path, "invalid JSON: " + error);
    if (!v.isObject())
        return fail(path, "top level is not an object");
    if (!v.has("schema")
        || !v.at("schema").isString()
        || v.at("schema").str() != xfm::obs::snapshotSchema)
        return fail(path, std::string("schema key missing or != ")
                              + xfm::obs::snapshotSchema);
    if (!v.has("metrics")
        || !v.at("metrics").isObject())
        return fail(path, "metrics object missing");
    const auto &metrics = v.at("metrics").object();
    if (metrics.empty())
        return fail(path, "metrics object is empty");
    for (const auto &[name, value] : metrics) {
        if (name.empty())
            return fail(path, "empty metric name");
        if (!value.isNumber())
            return fail(path, "metric '" + name
                                  + "' is not a number");
    }
    // Additive-only ring family check: a run with the async command
    // rings enabled exports `<dimm>.ring.*`; if any such leaf shows
    // up, the core counters of that queue pair must all be there.
    std::set<std::string> ring_families;
    for (const auto &[name, value] : metrics) {
        const std::size_t at = name.find(".ring.");
        if (at != std::string::npos)
            ring_families.insert(name.substr(0, at + 6));
    }
    for (const auto &family : ring_families) {
        for (const char *leaf :
             {"sqEnqueues", "doorbells", "consumed", "cqPosts",
              "reaped", "staleRejected", "phaseFlips",
              "sqOccupancy", "cqPending"}) {
            if (metrics.find(family + leaf) == metrics.end())
                return fail(path, "ring family '" + family
                                      + "*' is missing '" + leaf
                                      + "'");
        }
    }
    if (!ring_families.empty())
        std::printf("%s: %zu ring famil%s complete\n", path.c_str(),
                    ring_families.size(),
                    ring_families.size() == 1 ? "y" : "ies");
    // Same rule for the tier family: a tiered run exports
    // `<manager>.tier.*`; any such leaf means the TierManager
    // registered, so its full stats family must be there.
    std::set<std::string> tier_families;
    for (const auto &[name, value] : metrics) {
        const std::size_t at = name.find(".tier.");
        if (at != std::string::npos)
            tier_families.insert(name.substr(0, at + 6));
    }
    for (const auto &family : tier_families) {
        for (const char *leaf :
             {"demotedNearToXfm", "demotedNearToDfm",
              "demotedXfmToDfm", "promotedFromXfm",
              "promotedFromDfm", "spillScans", "spillRejects",
              "watermarkHolds", "nearPages", "xfmPages",
              "dfmPages"}) {
            if (metrics.find(family + leaf) == metrics.end())
                return fail(path, "tier family '" + family
                                      + "*' is missing '" + leaf
                                      + "'");
        }
    }
    if (!tier_families.empty())
        std::printf("%s: %zu tier famil%s complete\n", path.c_str(),
                    tier_families.size(),
                    tier_families.size() == 1 ? "y" : "ies");
    // Refresh-realism family: armed runs export `<name>.refresh.*`
    // (RefreshController::registerMetrics); any leaf means the
    // controller registered, so its full counter set must be there.
    std::set<std::string> refresh_families;
    for (const auto &[name, value] : metrics) {
        const std::size_t at = name.find(".refresh.");
        if (at != std::string::npos)
            refresh_families.insert(name.substr(0, at + 9));
    }
    for (const auto &family : refresh_families) {
        for (const char *leaf :
             {"pbWindows", "rfmCommands", "rfmStolenSlots",
              "raammtBlocks", "hiraWindows", "activationsNoted"}) {
            if (metrics.find(family + leaf) == metrics.end())
                return fail(path, "refresh family '" + family
                                      + "*' is missing '" + leaf
                                      + "'");
        }
    }
    if (!refresh_families.empty())
        std::printf("%s: %zu refresh famil%s complete\n",
                    path.c_str(), refresh_families.size(),
                    refresh_families.size() == 1 ? "y" : "ies");
    // Abuse-detector families come in two shapes: the arbiter's
    // totals (`<arbiter>.abuse.evals/flags/escalations`) and each
    // tenant's throttle monitor (`<tenant>.abuse.state/...`). A
    // family is identified by which anchor leaf it carries; either
    // way a partial family means a registration bug.
    std::set<std::string> abuse_families;
    for (const auto &[name, value] : metrics) {
        const std::size_t at = name.find(".abuse.");
        if (at != std::string::npos)
            abuse_families.insert(name.substr(0, at + 7));
    }
    for (const auto &family : abuse_families) {
        if (metrics.find(family + "evals") != metrics.end()) {
            for (const char *leaf : {"evals", "flags",
                                     "escalations"}) {
                if (metrics.find(family + leaf) == metrics.end())
                    return fail(path, "abuse family '" + family
                                          + "*' is missing '" + leaf
                                          + "'");
            }
        } else {
            for (const char *leaf : {"state", "successes", "faults",
                                     "trips", "breakerRejects"}) {
                if (metrics.find(family + leaf) == metrics.end())
                    return fail(path, "abuse family '" + family
                                          + "*' is missing '" + leaf
                                          + "'");
            }
        }
    }
    if (!abuse_families.empty())
        std::printf("%s: %zu abuse famil%s complete\n", path.c_str(),
                    abuse_families.size(),
                    abuse_families.size() == 1 ? "y" : "ies");
    std::printf("%s: ok (%zu metrics)\n", path.c_str(),
                metrics.size());
    return 0;
}

int
checkHealth(const std::string &path)
{
    using xfm::obs::json::Value;
    if (checkStats(path) != 0)
        return 1;
    Value v;
    std::string error;
    if (!xfm::obs::json::parse(slurp(path), v, error))
        return fail(path, "invalid JSON: " + error);
    const auto &metrics = v.at("metrics").object();
    std::size_t monitors = 0;
    for (const auto &[name, value] : metrics) {
        if (name.find(".health.") == std::string::npos
            || name.size() < 6
            || name.compare(name.size() - 6, 6, ".state") != 0)
            continue;
        ++monitors;
        const double s = value.number();
        if (s != 0.0 && s != 1.0 && s != 2.0)
            return fail(path, "monitor '" + name
                                  + "' ended the run in state "
                                  + std::to_string(s)
                                  + " (stuck breaker?)");
    }
    if (monitors == 0)
        return fail(path, "no health-monitor state leaves found "
                          "(was health.enabled set?)");
    std::printf("%s: health ok (%zu monitors settled)\n",
                path.c_str(), monitors);
    return 0;
}

int
checkAbuse(const std::string &path)
{
    using xfm::obs::json::Value;
    if (checkStats(path) != 0)
        return 1;
    Value v;
    std::string error;
    if (!xfm::obs::json::parse(slurp(path), v, error))
        return fail(path, "invalid JSON: " + error);
    const auto &metrics = v.at("metrics").object();
    // Quiet-tail settlement: every tenant's throttle monitor must
    // have left probation (a stuck half-open round means the
    // detector never resolved the offender), and the detector must
    // actually have escalated at least once during the soak.
    std::size_t monitors = 0;
    double escalations = 0.0;
    for (const auto &[name, value] : metrics) {
        const std::size_t at = name.find(".abuse.");
        if (at == std::string::npos)
            continue;
        const std::string leaf = name.substr(at + 7);
        if (leaf == "escalations")
            escalations += value.number();
        if (leaf != "state")
            continue;
        ++monitors;
        const double s = value.number();
        if (s != 0.0 && s != 1.0 && s != 2.0)
            return fail(path, "abuse monitor '" + name
                                  + "' ended the run in state "
                                  + std::to_string(s)
                                  + " (stuck throttle?)");
    }
    if (monitors == 0)
        return fail(path, "no abuse-monitor state leaves found "
                          "(was qos.abuse_enabled set?)");
    if (escalations < 1.0)
        return fail(path, "abuse detector never escalated "
                          "(attack not detected?)");
    std::printf("%s: abuse ok (%zu monitors settled, %g "
                "escalations)\n",
                path.c_str(), monitors, escalations);
    return 0;
}

int
checkTrace(const std::string &path)
{
    using xfm::obs::json::Value;
    const std::string text = slurp(path);
    std::size_t events = 0;
    std::size_t line_no = 0;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ++line_no;
        if (line.empty())
            continue;
        const std::string where =
            "line " + std::to_string(line_no);
        Value v;
        std::string error;
        if (!xfm::obs::json::parse(line, v, error))
            return fail(path, where + ": invalid JSON: " + error);
        if (!v.isObject())
            return fail(path, where + ": not an object");
        for (const char *key : {"req", "start", "end", "arg"}) {
            if (!v.has(key) || !v.at(key).isIntegral())
                return fail(path, where + ": missing integral '"
                                      + key + "'");
        }
        if (v.at("req").integer() <= 0)
            return fail(path, where + ": req must be positive");
        if (v.at("end").integer() < v.at("start").integer())
            return fail(path, where + ": end precedes start");
        if (!v.has("stage")
            || !v.at("stage").isString()
            || v.at("stage").str().empty())
            return fail(path, where + ": missing stage string");
        if (knownStages().find(v.at("stage").str())
            == knownStages().end())
            return fail(path, where + ": unknown stage '"
                                  + v.at("stage").str() + "'");
        ++events;
    }
    std::printf("%s: ok (%zu events)\n", path.c_str(), events);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: check_obs_output stats <stats.json>\n"
                     "       check_obs_output trace <trace.jsonl>\n"
                     "       check_obs_output health <stats.json>\n"
                     "       check_obs_output abuse <stats.json>\n");
        return 1;
    }
    const std::string mode = argv[1];
    if (mode == "stats")
        return checkStats(argv[2]);
    if (mode == "trace")
        return checkTrace(argv[2]);
    if (mode == "health")
        return checkHealth(argv[2]);
    if (mode == "abuse")
        return checkAbuse(argv[2]);
    std::fprintf(stderr, "check_obs_output: unknown mode '%s'\n",
                 mode.c_str());
    return 1;
}
