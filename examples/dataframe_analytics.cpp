/**
 * @file
 * DataFrame analytics over XFM far memory (the AIFM paper's
 * motivating application, which the XFM emulator traces).
 *
 * A columnar table larger than local memory is stored page-wise in
 * an XFM system. Analytic passes scan columns sequentially —
 * exactly the predictable access pattern SFM thrives on — so the
 * controller prefetches ahead with do_offload asserted and the NMA
 * decompresses upcoming pages inside refresh windows while the CPU
 * crunches the current ones.
 *
 * Run: ./build/examples/dataframe_analytics
 */

#include <cstdio>
#include <cstring>
#include <numeric>

#include "xfm/xfm_backend.hh"

using namespace xfm;
using namespace xfm::xfmsys;

namespace
{

/** int64 column of a toy trip-record table, page-packed. */
struct Column
{
    std::string name;
    sfm::VirtPage firstPage;
    std::uint64_t rows;

    static constexpr std::uint64_t rowsPerPage =
        pageBytes / sizeof(std::int64_t);

    std::uint64_t
    pages() const
    {
        return (rows + rowsPerPage - 1) / rowsPerPage;
    }
};

Bytes
encodePage(const std::vector<std::int64_t> &values)
{
    Bytes page(pageBytes, 0);
    std::memcpy(page.data(), values.data(),
                std::min<std::size_t>(values.size()
                                          * sizeof(std::int64_t),
                                      pageBytes));
    return page;
}

std::vector<std::int64_t>
decodePage(const Bytes &page)
{
    std::vector<std::int64_t> values(Column::rowsPerPage);
    std::memcpy(values.data(), page.data(), pageBytes);
    return values;
}

} // namespace

int
main()
{
    constexpr std::uint64_t rows = 40000;  // ~78 pages per column

    XfmSystemConfig cfg;
    cfg.numDimms = 4;
    cfg.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.dimmMem.channels = 1;
    cfg.dimmMem.dimmsPerChannel = 1;
    cfg.dimmMem.ranksPerDimm = 1;
    cfg.localPages = 512;
    cfg.sfmBase = gib(1);
    cfg.sfmBytes = mib(64);
    cfg.decompressSlack = milliseconds(8.0);

    EventQueue eq;
    XfmBackend backend("xfm", eq, cfg);
    backend.start();

    // Two columns: trip distance (small deltas) and fare amount.
    Column distance{"distance_x100", 0, rows};
    Column fare{"fare_cents", distance.pages(), rows};

    Rng rng(2026);
    std::uint64_t loaded_pages = 0;
    for (const Column &col : {distance, fare}) {
        for (std::uint64_t p = 0; p < col.pages(); ++p) {
            std::vector<std::int64_t> vals(Column::rowsPerPage);
            for (auto &v : vals) {
                v = col.firstPage == 0
                    ? 80 + static_cast<std::int64_t>(
                          rng.uniformInt(400))          // distance
                    : 250 + static_cast<std::int64_t>(
                          rng.uniformInt(3000));        // fare
            }
            backend.writePage(col.firstPage + p, encodePage(vals));
            ++loaded_pages;
        }
    }
    std::printf("loaded %llu pages (%s) across %zu DIMMs\n",
                (unsigned long long)loaded_pages,
                formatBytes(loaded_pages * pageBytes).c_str(),
                cfg.numDimms);

    // Cold phase: the whole table is demoted to far memory.
    for (std::uint64_t p = 0; p < loaded_pages; ++p)
        backend.swapOut(p, nullptr);
    eq.run(eq.now() + seconds(0.2));
    std::printf("demoted: %llu pages far, %s stored (%.2fx), "
                "fragmentation %s\n",
                (unsigned long long)backend.farPageCount(),
                formatBytes(backend.storedCompressedBytes()).c_str(),
                static_cast<double>(backend.farPageCount())
                        * pageBytes
                    / static_cast<double>(
                          backend.storedCompressedBytes()),
                formatBytes(backend.fragmentationBytes()).c_str());

    // Analytics pass: sequential scan of `fare` with prefetch
    // (promote page p+1 with do_offload while summing page p).
    std::int64_t total = 0;
    std::uint64_t demand_cpu = 0;
    for (std::uint64_t p = 0; p < fare.pages(); ++p) {
        const sfm::VirtPage page = fare.firstPage + p;
        if (backend.pageState(page) == sfm::PageState::Far) {
            // Demand promotion of the current page: CPU path.
            backend.swapIn(page, false, nullptr);
            ++demand_cpu;
            eq.run(eq.now() + milliseconds(1.0));
        }
        // Prefetch the next pages via the NMA.
        for (std::uint64_t d = 1; d <= 3; ++d) {
            const sfm::VirtPage next = page + d;
            if (next < fare.firstPage + fare.pages()
                && backend.pageState(next) == sfm::PageState::Far)
                backend.swapIn(next, true, nullptr);
        }
        // "Compute" on the current page while the NMA works.
        eq.run(eq.now() + microseconds(200.0));
        if (backend.pageState(page) != sfm::PageState::Local)
            eq.run(eq.now() + milliseconds(2.0));
        for (auto v : decodePage(backend.readPage(page)))
            total += v;
    }

    const double mean = static_cast<double>(total)
        / static_cast<double>(fare.pages() * Column::rowsPerPage);
    std::printf("\nscan of '%s': mean = %.1f cents over %llu rows\n",
                fare.name.c_str(), mean,
                (unsigned long long)rows);
    std::printf("demand (CPU) promotions: %llu of %llu pages — the "
                "rest arrived via NMA prefetch\n",
                (unsigned long long)demand_cpu,
                (unsigned long long)fare.pages());

    const auto &xs = backend.xfmStats();
    std::printf("offloaded: %llu swap-outs, %llu swap-ins; CPU "
                "fallbacks: %llu\n",
                (unsigned long long)xs.offloadedSwapOuts,
                (unsigned long long)xs.offloadedSwapIns,
                (unsigned long long)(xs.fallbackCapacity
                                     + xs.fallbackDeadline));
    return 0;
}
