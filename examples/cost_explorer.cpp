/**
 * @file
 * Cost explorer: interactive sweep of the Sec. 3.1 far-memory cost
 * model. Compare SFM against DRAM/PMem DFM for your own capacity,
 * promotion rate, and electricity price.
 *
 * Run: ./build/examples/cost_explorer [extraGB] [promotion%] [years]
 * e.g. ./build/examples/cost_explorer 1024 40 5
 */

#include <cstdio>
#include <cstdlib>

#include "costmodel/cost_model.hh"

using namespace xfm::costmodel;

int
main(int argc, char **argv)
{
    CostParams p;
    p.extraGB = argc > 1 ? std::atof(argv[1]) : 512.0;
    p.promotionRate =
        argc > 2 ? std::atof(argv[2]) / 100.0 : 0.2;
    const double years = argc > 3 ? std::atof(argv[3]) : 5.0;

    FarMemoryCostModel model(p);

    std::printf("Far-memory deployment: %.0f GB extra capacity, "
                "%.0f%% promotion rate, %.1f-year horizon\n\n",
                p.extraGB, p.promotionRate * 100, years);
    std::printf("swap traffic (EQ1)      : %.1f GB/min "
                "(%.2f GB/s)\n",
                model.gbSwappedPerMin(),
                model.gbSwappedPerMin() / 60.0);
    std::printf("CPU share for SFM (EQ3.2): %.1f%% of a %g-core "
                "CPU\n",
                100.0 * model.cpuFractionNeeded(), p.cpuCores);
    std::printf("SFM DRAM bandwidth       : %.1f GB/s\n\n",
                model.sfmMemoryBandwidthGBps());

    std::printf("%-12s %12s %12s %14s %14s\n", "option", "capital$",
                "opex$", "embodied kgCO2", "op. kgCO2");
    struct Row
    {
        const char *name;
        CostBreakdown b;
    };
    const Row rows[] = {
        {"SFM", model.sfm(years)},
        {"DFM-DRAM", model.dfm(DfmTech::Dram, years)},
        {"DFM-PMem", model.dfm(DfmTech::Pmem, years)},
    };
    for (const auto &r : rows) {
        std::printf("%-12s %12.0f %12.0f %14.0f %14.0f\n", r.name,
                    r.b.capitalUSD, r.b.operationalUSD,
                    r.b.embodiedKgCO2, r.b.operationalKgCO2);
    }

    auto fmt_years = [](double v) {
        static char buf[32];
        if (v < 0)
            std::snprintf(buf, sizeof(buf), "never (30y horizon)");
        else
            std::snprintf(buf, sizeof(buf), "%.1f years", v);
        return buf;
    };
    std::printf("\nSFM/DFM break-even:\n");
    std::printf("  cost vs DRAM    : %s\n",
                fmt_years(model.costBreakEvenYears(DfmTech::Dram)));
    std::printf("  cost vs PMem    : %s\n",
                fmt_years(model.costBreakEvenYears(DfmTech::Pmem)));
    std::printf("  CO2 vs DRAM     : %s\n",
                fmt_years(
                    model.emissionBreakEvenYears(DfmTech::Dram)));
    std::printf("  CO2 vs PMem     : %s\n",
                fmt_years(
                    model.emissionBreakEvenYears(DfmTech::Pmem)));
    std::printf("\nAn on-chip accelerator beats CPU compression "
                "above a %.1f%% promotion rate.\n",
                100.0 * model.acceleratorBreakEvenPromotionRate());
    return 0;
}
