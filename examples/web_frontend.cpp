/**
 * @file
 * Web-front-end scenario (the AIFM workload the paper's emulator
 * traces): a zipfian object store larger than local memory runs
 * over a software-defined far memory. The SFM controller scans for
 * cold pages, demotes them, serves demand faults with CPU
 * decompression, and prefetches sequential neighbours.
 *
 * Run: ./build/examples/web_frontend [seconds=30]
 */

#include <cstdio>
#include <cstdlib>

#include "compress/corpus.hh"
#include "dram/phys_mem.hh"
#include "obs/registry.hh"
#include "sfm/controller.hh"
#include "sfm/cpu_backend.hh"
#include "workload/trace_gen.hh"

using namespace xfm;
using namespace xfm::sfm;

int
main(int argc, char **argv)
{
    const double run_seconds =
        argc > 1 ? std::atof(argv[1]) : 30.0;

    // Object store: 4096 pages (16 MiB) of JSON-like session data;
    // local memory wants to keep only the hot fraction.
    constexpr std::uint64_t numPages = 4096;

    EventQueue eq;
    dram::PhysMem mem(gib(1));

    CpuBackendConfig bcfg;
    bcfg.localBase = 0;
    bcfg.localPages = numPages;
    bcfg.sfmBase = mib(512);
    bcfg.sfmBytes = mib(8);
    bcfg.algorithm = compress::Algorithm::ZstdLike;
    CpuSfmBackend backend("backend", eq, bcfg, mem);

    for (VirtPage p = 0; p < numPages; ++p) {
        mem.write(backend.frameAddr(p),
                  compress::generateCorpus(
                      compress::CorpusKind::KeyValue, p, pageBytes));
    }

    ControllerConfig ccfg;
    ccfg.coldThreshold = seconds(2.0);
    ccfg.scanInterval = milliseconds(250.0);
    ccfg.maxSwapOutsPerScan = 256;
    ccfg.prefetchDepth = 2;
    SfmController controller("controller", eq, ccfg, backend,
                             numPages);
    controller.start();

    // Request stream: zipfian object popularity, drifting per epoch.
    workload::WebFrontendConfig wcfg;
    wcfg.objects = numPages;
    wcfg.requestsPerSecond = 2000.0;
    wcfg.zipfTheta = 0.99;
    wcfg.epoch = seconds(5.0);
    workload::WebFrontendGenerator requests(wcfg);

    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    std::function<void()> drive = [&]() {
        const auto req = requests.next();
        if (req.when > seconds(run_seconds))
            return;
        eq.schedule(req.when, [&, req]() {
            if (controller.recordAccess(req.object))
                ++hits;
            else
                ++faults;
            drive();
        });
    };
    drive();
    eq.run(seconds(run_seconds));

    obs::MetricRegistry registry;
    registry.counter("web_frontend.requests", &hits,
                     "local hits (see demandFaults for misses)");
    registry.derived("web_frontend.localHitRate",
                     [&] {
                         return static_cast<double>(hits)
                             / (hits + faults);
                     });
    backend.registerMetrics(registry);
    controller.registerMetrics(registry);
    std::printf("%s", registry.renderText().c_str());

    const double saved =
        static_cast<double>(backend.farPageCount()) * pageBytes
        - static_cast<double>(backend.storedCompressedBytes());
    std::printf("\nDRAM saved by SFM: %s (ratio %.2fx on far "
                "pages)\n",
                formatBytes(static_cast<std::uint64_t>(
                    saved > 0 ? saved : 0)).c_str(),
                backend.farPageCount()
                    ? static_cast<double>(backend.farPageCount())
                          * pageBytes
                          / backend.storedCompressedBytes()
                    : 0.0);
    return 0;
}
