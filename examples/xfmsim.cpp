/**
 * @file
 * xfmsim: config-file-driven full-system simulator CLI.
 *
 * Runs a zipfian application over a complete SFM deployment
 * (baseline CPU or XFM backend) and dumps the statistics of every
 * component, gem5-style.
 *
 * Usage:
 *   ./build/examples/xfmsim [config-file]
 *
 * Example config (all keys optional; defaults in parentheses):
 *   backend            = xfm        # xfm | baseline
 *   pages              = 1024
 *   sfm.bytes          = 16777216   # per-DIMM SFM region
 *   xfm.dimms          = 4
 *   xfm.spm_bytes      = 2097152
 *   xfm.accesses_per_trfc = 3
 *   xfm.sq_depth       = 1          # async command-ring depth per
 *                                   # DIMM; 1 = legacy sync path
 *   xfm.cq_coalesce    = 1          # completions reaped per CQ
 *                                   # interrupt (ring mode only)
 *   xfm.shard_dict     = 0          # multi-channel preset
 *                                   # dictionaries (DESIGN.md §16);
 *                                   # 0 is byte-identical to default
 *   xfm.dict_bytes     = 2048       # sampled dictionary size
 *   controller.cold_ms = 20
 *   controller.scan_ms = 2
 *   controller.prefetch_depth = 2
 *   workload.seconds   = 0.3
 *   workload.rps       = 20000
 *   workload.zipf      = 0.9
 *   workload.seed      = 1
 *   workers            = 1          # shard-compression threads;
 *                                   # results identical for any value
 *
 * Tiered far memory (src/sfm/tier_manager.hh; off by default —
 * `tier.enabled = 0` is byte-identical to the two-state stack):
 *   tier.enabled       = 1
 *   tier.policy        = auto       # auto | xfm_first | dfm_first
 *   tier.promote_watermark = 2      # accesses that make a page hot
 *   tier.scan_ms       = 2          # XFM -> DFM spill-scan period
 *   tier.spill_cold_ms = 40         # second-level coldness bound
 *   tier.max_spills_per_scan = 16
 *   tier.xfm_capacity_pages  = 0    # 0 = uncapped compressed tier
 *   tier.target_promotions_per_sec = 2000
 *   tier.dfm_bytes     = 8388608    # provisioned spill pool
 *   tier.dfm_link_ns   = 300        # spill link latency
 *   tier.dfm_gbps      = 12         # spill link bandwidth
 *   fault.dfm_delay.p  = 0.05       # spill-link latency spikes
 *   fault.dfm_drop.p   = 0.02       # spill-link transfer drops
 *   sim_shards         = 1          # event-core shards (1 = classic
 *                                   # monolithic kernel; N > 1 adds
 *                                   # per-DIMM domains staged in
 *                                   # parallel at tREFI barriers —
 *                                   # output is byte-identical)
 *
 * Fault injection (see src/fault/fault.hh and configs/faults.cfg):
 *   fault.seed               = 7
 *   fault.<site>.p           = 0.1   # per-evaluation probability
 *   fault.<site>.one_shot    = 12    # fire on the Nth evaluation
 *   fault.<site>.max         = 3     # cap on injections
 *   retry.max_attempts       = 3
 *   retry.backoff_ns         = 200
 *   retry.cap_ns             = 50000
 *
 * Refresh realism (src/dram/refresh.hh; the defaults keep the
 * legacy all-bank REF model byte-identical):
 *   refresh.mode       = refab   # refab | refpb (bank-granular)
 *   refresh.hira       = 0       # hidden-row-activation bonus slots
 *   refresh.trfcpb_ns  = 130     # per-bank refresh lock
 *   rfm.raaimt         = 0       # RFM threshold (0 = disarmed)
 *   rfm.raammt         = 0       # ACT-block bound (0 = 4 x raaimt)
 *   rfm.trfm_ns        = 350     # RFM lock duration
 *
 * Health / robustness (src/health; see configs/chaos.cfg):
 *   health.enabled       = 1     # circuit breakers on every domain
 *   health.window        = 16    # plus the other health.* keys
 *   xfm.watchdog_windows = 8     # stuck-offload deadline in tREFIs
 *   xfm.quarantine_cap   = 64    # quarantine ledger cap (0 = off)
 *   verify               = 1     # end-of-run page-content audit
 *
 * Observability (src/obs):
 *   stats.json = out.json     # dump the metric registry as JSON
 *   trace.out  = trace.jsonl  # per-swap span trace (JSON lines)
 *   trace.cap  = 65536        # trace ring capacity in events
 */

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/random.hh"
#include "compress/corpus.hh"
#include "dram/ddr_config.hh"
#include "obs/tracer.hh"
#include "system/system.hh"

namespace
{

/** Write @p text to @p path, fatally on failure. */
void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        xfm::fatal("cannot open '", path, "' for writing");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace

using namespace xfm;
using namespace xfm::system;

int
main(int argc, char **argv)
{
    Config cfg = argc > 1 ? Config::parseFile(argv[1])
                          : Config::parseString("");

    SystemConfig sys_cfg;
    const std::string backend = cfg.getString("backend", "xfm");
    if (backend == "xfm") {
        sys_cfg.backend = BackendKind::Xfm;
    } else if (backend == "baseline") {
        sys_cfg.backend = BackendKind::BaselineCpu;
    } else {
        fatal("backend must be 'xfm' or 'baseline', got '", backend,
              "'");
    }
    sys_cfg.pages = cfg.getU64("pages", 1024);
    sys_cfg.sfmBytes = cfg.getU64("sfm.bytes", mib(16));
    sys_cfg.xfmDimms = cfg.getU64("xfm.dimms", 4);
    sys_cfg.xfmDevice.spmBytes = cfg.getU64("xfm.spm_bytes", mib(2));
    sys_cfg.xfmDevice.maxAccessesPerWindow = static_cast<
        std::uint32_t>(cfg.getU64("xfm.accesses_per_trfc", 3));
    // Async NMA command rings: depth 1 (the default) keeps the
    // legacy synchronous submit path byte-identical; >= 2 builds
    // per-DIMM SQ/CQ pairs with batched doorbells.
    sys_cfg.xfmDevice.sqDepth = static_cast<std::uint32_t>(
        cfg.getU64("xfm.sq_depth", 1));
    sys_cfg.xfmDevice.cqCoalesce = static_cast<std::uint32_t>(
        cfg.getU64("xfm.cq_coalesce", 1));
    // Multi-channel preset dictionaries (DESIGN.md §16). Off by
    // default; `xfm.shard_dict = 0` is byte-identical to leaving the
    // key unset (Determinism.ExplicitDictOffMatchesDefault).
    sys_cfg.shardDict = cfg.getBool("xfm.shard_dict", false);
    sys_cfg.dictBytes = static_cast<std::size_t>(
        cfg.getU64("xfm.dict_bytes", 2048));
    // refresh.* / rfm.* keys arm REFpb, RFM tracking, and HiRA on
    // the XFM DIMMs; unset they leave the device byte-identical.
    dram::applyRefreshConfig(sys_cfg.dimmDevice, cfg);
    sys_cfg.controller.coldThreshold =
        milliseconds(cfg.getDouble("controller.cold_ms", 20.0));
    sys_cfg.controller.scanInterval =
        milliseconds(cfg.getDouble("controller.scan_ms", 2.0));
    sys_cfg.controller.prefetchDepth =
        cfg.getU64("controller.prefetch_depth", 2);
    sys_cfg.faultPlan = fault::FaultPlan::fromConfig(cfg);
    sys_cfg.retry = fault::RetryPolicy::fromConfig(cfg);
    sys_cfg.health = health::HealthConfig::fromConfig(cfg);
    sys_cfg.xfmDevice.watchdogWindows = static_cast<std::uint32_t>(
        cfg.getU64("xfm.watchdog_windows", 0));
    sys_cfg.quarantineCap = static_cast<std::size_t>(
        cfg.getU64("xfm.quarantine_cap", 0));
    sys_cfg.workers =
        static_cast<std::size_t>(cfg.getU64("workers", 1));
    sys_cfg.tier = sfm::TierConfig::fromConfig(cfg);
    // The spill link shares the run's fault plan and retry policy
    // (DfmLinkDelay / DfmLinkDrop sites; disarmed unless configured).
    sys_cfg.tier.faults = sys_cfg.faultPlan;
    sys_cfg.tier.retry = sys_cfg.retry;
    const std::size_t sim_shards =
        static_cast<std::size_t>(cfg.getU64("sim_shards", 1));
    const bool verify = cfg.getBool("verify", false);

    const double run_seconds =
        cfg.getDouble("workload.seconds", 0.3);
    const double rps = cfg.getDouble("workload.rps", 20000.0);
    const double zipf = cfg.getDouble("workload.zipf", 0.9);
    const std::uint64_t seed = cfg.getU64("workload.seed", 1);

    const std::string stats_json = cfg.getString("stats.json", "");
    const std::string trace_out = cfg.getString("trace.out", "");
    const std::uint64_t trace_cap = cfg.getU64("trace.cap", 65536);

    for (const auto &key : cfg.unconsumedKeys())
        warn("unknown config key '", key, "' ignored");

    // The sharded event core is keyed to the DDR5 refresh interval:
    // conservative window barriers land on tREFI boundaries, where
    // cross-DIMM interactions already synchronise (DESIGN.md §13).
    EventQueueConfig eq_cfg;
    eq_cfg.shards = sim_shards;
    eq_cfg.windowTicks = dram::ddr5Device32Gb().tREFI();
    eq_cfg.drainWorkers = sys_cfg.workers;
    EventQueue eq(eq_cfg);
    System sys("xfmsim", eq, sys_cfg);
    obs::Tracer tracer(static_cast<std::size_t>(trace_cap));
    if (!trace_out.empty())
        sys.setTracer(&tracer);
    for (sfm::VirtPage p = 0; p < sys_cfg.pages; ++p) {
        sys.writePage(p, compress::generateCorpus(
                             compress::CorpusKind::Json, p,
                             pageBytes));
    }
    sys.start();

    std::printf("xfmsim: backend=%s pages=%llu run=%.2fs "
                "rps=%.0f zipf=%.2f\n\n",
                backend.c_str(),
                (unsigned long long)sys_cfg.pages, run_seconds, rps,
                zipf);

    // Drive the application.
    Rng rng(seed);
    const Tick gap = static_cast<Tick>(1e12 / rps);
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    std::function<void(Tick)> drive = [&](Tick when) {
        if (when > seconds(run_seconds))
            return;
        eq.schedule(when, [&, when] {
            const auto page = rng.zipf(sys_cfg.pages, zipf);
            if (sys.access(page))
                ++hits;
            else
                ++faults;
            drive(when + gap);
        });
    };
    drive(gap);
    eq.run(seconds(run_seconds) + milliseconds(50.0));

    const obs::Snapshot snap = sys.metrics().snapshot();
    std::printf("%s", snap.renderText().c_str());
    if (!stats_json.empty())
        writeFile(stats_json, snap.toJson());
    if (!trace_out.empty()) {
        writeFile(trace_out, tracer.toJsonLines());
        std::printf("\ntrace: %llu events recorded, %llu dropped "
                    "-> %s\n",
                    (unsigned long long)tracer.recorded(),
                    (unsigned long long)tracer.dropped(),
                    trace_out.c_str());
    }
    std::printf("\napplication: %llu accesses, %.2f%% local hit "
                "rate\n",
                (unsigned long long)(hits + faults),
                hits + faults
                    ? 100.0 * static_cast<double>(hits)
                          / (hits + faults)
                    : 0.0);

    if (verify) {
        // Data-integrity audit: every page frame must hold exactly
        // the corpus it was seeded with. Swap-outs copy (never
        // scramble) the frame and every swap-in rewrites it whole,
        // so this holds for Local and Far pages alike; a page that
        // round-tripped through compression, fault injection,
        // watchdog drops, channel offlining, or quarantine eviction
        // and reads back different is a correctness bug, not noise.
        std::uint64_t corrupt = 0;
        for (sfm::VirtPage p = 0; p < sys_cfg.pages; ++p) {
            const Bytes expect = compress::generateCorpus(
                compress::CorpusKind::Json, p, pageBytes);
            if (sys.readPage(p) != expect)
                ++corrupt;
        }
        std::printf("\nverify: %llu pages audited, %llu corrupt\n",
                    (unsigned long long)sys_cfg.pages,
                    (unsigned long long)corrupt);
        if (corrupt > 0)
            return 1;
    }
    return 0;
}
