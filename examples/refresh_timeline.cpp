/**
 * @file
 * Refresh-timeline visualiser (qualitative reproduction of Fig. 5
 * and Fig. 10): traces a few tREFI intervals of one rank, showing
 * when the all-bank refresh windows open, which rows they cover,
 * and how the NMA batches and executes conditional/random accesses
 * inside them while the CPU-visible bus stays untouched.
 *
 * Run: ./build/examples/refresh_timeline
 */

#include <cstdio>

#include "dram/address_map.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "nma/xfm_device.hh"

using namespace xfm;
using namespace xfm::nma;

int
main()
{
    dram::MemSystemConfig cfg;
    cfg.rank.device = dram::ddr5Device32Gb();
    cfg.channels = 1;
    cfg.dimmsPerChannel = 1;
    cfg.ranksPerDimm = 1;

    EventQueue eq;
    dram::AddressMap map(cfg);
    dram::PhysMem mem(cfg.totalCapacityBytes());
    dram::RefreshController refresh("refresh", eq,
                                    cfg.rank.device, 1);

    XfmDeviceConfig dcfg;
    dcfg.maxAccessesPerWindow = 3;
    XfmDevice device("xfm0", eq, dcfg, map, mem, refresh);

    auto addr_of_row = [&](std::uint32_t row) {
        dram::DramCoord c{};
        c.row = row;
        return map.encode(c);
    };

    refresh.addListener([&](const dram::RefreshWindow &w) {
        std::printf("[%9s] REF: tRFC window until %s, refreshing "
                    "rows %u..%u in every bank\n",
                    formatTicks(w.start).c_str(),
                    formatTicks(w.end).c_str(), w.firstRow,
                    w.firstRow + w.rowCount - 1);
    });
    device.setCompletionCallback([&](const OffloadCompletion &c) {
        std::printf("[%9s]   engine: offload %llu %s -> %u B "
                    "(staged in SPM)\n",
                    formatTicks(c.finished).c_str(),
                    (unsigned long long)c.id,
                    c.kind == OffloadKind::Compress ? "compressed"
                                                    : "decompressed",
                    c.outputSize);
        if (c.kind == OffloadKind::Compress)
            device.commitWriteback(c.id, addr_of_row(40));
    });
    device.setWritebackCallback([&](OffloadId id, Tick t) {
        std::printf("[%9s]   write-back: offload %llu output now in "
                    "DRAM\n",
                    formatTicks(t).c_str(), (unsigned long long)id);
    });

    // Offload A targets row 5 (inside the very first refresh set:
    // conditional). Offload B targets row 60000 (random SALP slot).
    mem.write(addr_of_row(5), Bytes(4096, 0xA5));
    mem.write(addr_of_row(60000), Bytes(4096, 0x5A));

    OffloadRequest a;
    a.kind = OffloadKind::Compress;
    a.srcAddr = addr_of_row(5);
    a.size = 4096;
    std::printf("[%9s] submit compress of row 5 (refresh-aligned)\n",
                formatTicks(eq.now()).c_str());
    device.submit(a);

    OffloadRequest b;
    b.kind = OffloadKind::Decompress;
    b.srcAddr = addr_of_row(60000);
    b.size = 1365;
    b.dstAddr = addr_of_row(70000);
    b.rawSize = 4096;
    std::printf("[%9s] submit decompress from row 60000 (random "
                "access)\n",
                formatTicks(eq.now()).c_str());
    // Pre-stage a compressed block so the decompression has real
    // input (content irrelevant for the timeline).
    {
        CompressionEngine eng(compress::Algorithm::ZstdLike);
        const auto [block, lat] = eng.compress(Bytes(4096, 0x11));
        (void)lat;
        mem.write(addr_of_row(60000), block);
        b.size = static_cast<std::uint32_t>(block.size());
    }
    device.submit(b);

    refresh.start();
    eq.run(5 * cfg.rank.device.tREFI());

    const auto &st = device.stats();
    std::printf("\nAfter 5 tREFI: %llu conditional + %llu random "
                "accesses, %llu windows, min offload latency ~2 x "
                "tREFI (Fig. 10)\n",
                (unsigned long long)st.conditionalAccesses,
                (unsigned long long)st.randomAccesses,
                (unsigned long long)st.windows);
    return 0;
}
