/**
 * @file
 * lzbench-style compression benchmark (the paper's artifact uses
 * lzbench for its corpus experiments): runs every codec over every
 * synthetic corpus and reports ratio and host-side throughput.
 *
 * Run: ./build/examples/compress_tool [corpusKiB=64]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "compress/compressor.hh"
#include "compress/corpus.hh"

using namespace xfm;
using namespace xfm::compress;

namespace
{

double
mbps(std::size_t bytes, std::chrono::steady_clock::duration d)
{
    const double secs =
        std::chrono::duration<double>(d).count();
    return secs > 0
        ? static_cast<double>(bytes) / 1e6 / secs
        : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::size_t corpus_bytes =
        (argc > 1 ? std::atoi(argv[1]) : 64) * 1024;

    std::printf("codec x corpus sweep (%zu KiB each, 4 KiB "
                "pages)\n\n", corpus_bytes / 1024);
    std::printf("%-14s", "corpus");
    for (auto algo : {Algorithm::LzFast, Algorithm::Deflate,
                      Algorithm::ZstdLike}) {
        std::printf(" | %-8s ratio  cMB/s  dMB/s",
                    algorithmName(algo).c_str());
    }
    std::printf("\n");

    for (auto kind : allCorpusKinds()) {
        const Bytes corpus = generateCorpus(kind, 7, corpus_bytes);
        const auto pages = paginate(corpus);
        std::printf("%-14s", corpusName(kind).c_str());
        for (auto algo : {Algorithm::LzFast, Algorithm::Deflate,
                          Algorithm::ZstdLike}) {
            const auto codec = makeCompressor(algo);

            std::vector<Bytes> blocks;
            blocks.reserve(pages.size());
            const auto c0 = std::chrono::steady_clock::now();
            std::size_t compressed = 0;
            for (const auto &page : pages) {
                blocks.push_back(codec->compress(page));
                compressed += blocks.back().size();
            }
            const auto c1 = std::chrono::steady_clock::now();
            std::size_t raw = 0;
            for (const auto &block : blocks)
                raw += codec->decompress(block).size();
            const auto c2 = std::chrono::steady_clock::now();

            std::printf(" | %8s %6.2f %6.0f %6.0f", "",
                        static_cast<double>(raw) / compressed,
                        mbps(raw, c1 - c0), mbps(raw, c2 - c1));
        }
        std::printf("\n");
    }

    std::printf("\nModelled cost (EQ3.4 inputs, cycles/byte):\n");
    for (auto algo : {Algorithm::LzFast, Algorithm::Deflate,
                      Algorithm::ZstdLike}) {
        const auto cost = cpuCost(algo);
        std::printf("  %-9s compress %5.1f  decompress %5.1f\n",
                    algorithmName(algo).c_str(),
                    cost.compressCyclesPerByte,
                    cost.decompressCyclesPerByte);
    }
    return 0;
}
