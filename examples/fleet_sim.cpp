/**
 * @file
 * fleet_sim: multi-tenant far-memory service demonstration.
 *
 * Spawns a heterogeneous fleet (latency-sensitive serving jobs mixed
 * with weighted batch tenants, kstaled and senpai control policies)
 * on one shared set of XFM DIMMs and prints every tenant's service
 * statistics: hit/fault counts, NMA vs CPU-fallback split, quota
 * events, and p50/p99 demand-fault latency.
 *
 * Usage: fleet_sim [--tenants N] [--ms M] [--rate R] [--seed S]
 *                  [--config FILE]
 *
 * The config file (key = value) may set the same knobs (tenants,
 * ms, rate, seed), `workers` (shard-compression threads for every
 * tenant's CPU swap path; results identical for any value),
 * `sim_shards` (event-core shards: 1 = classic monolithic kernel,
 * N > 1 stages per-DIMM event domains in parallel at tREFI window
 * barriers — output stays byte-identical), plus
 * the observability sinks:
 *   stats.json = fleet.json    # metric-registry JSON snapshot
 *   trace.out  = fleet.jsonl   # per-swap span trace (JSON lines)
 *   trace.cap  = 65536         # trace ring capacity in events
 * and the robustness knobs (src/health):
 *   health.*                   # circuit breakers on every domain
 *   shed.*                     # overload-shedding watermarks
 *
 * Workload selection:
 *   workload.model = fleet     # fleet | apps | adversary
 * `fleet` is the classic heterogeneous zipf fleet (workload/fleet).
 * `apps` alternates two application models per tenant slot
 * (workload/app_model): memtier-like KV stores (latency class,
 * kstaled, xfm_first group policy) and inference-batch servers
 * (batch class, senpai, auto policy) whose drifting activation
 * windows feed the spill scan.
 * `adversary` runs the zipf fleet as victims plus three abusive
 * tenants (workload/adversary): an RFM-starver and a covert
 * sender/receiver pair. Usually combined with the refresh-realism
 * and QoS-defense keys below:
 *   refresh.mode / refresh.hira / refresh.trfcpb_ns
 *   rfm.raaimt / rfm.raammt / rfm.trfm_ns   # see xfmsim
 *   qos.reserved_slot_frac = 0.25  # per-lane guaranteed slots
 *   qos.slot_debt          = 1     # charge RFM steals to the source
 *   qos.abuse_enabled      = 1     # windowed z-score abuse detector
 *   qos.abuse_windows / qos.abuse_z / qos.abuse_min_loss
 *   qos.abuse_consecutive / qos.abuse_cooldown_ns
 *   adversary.bursts_per_second = 4000000
 *   adversary.activations_per_burst = 128
 *   adversary.pages / adversary.target_dimm / adversary.sweep_banks
 *   adversary.burst_budget      = 0      # 0 = hammer forever
 *   covert.bits / covert.bit_period_us / covert.bursts_per_bit
 *   covert.activations_per_burst / covert.probes_per_bit
 *   covert.seed                 # shared schedule secret
 *
 * Tiered far memory (src/sfm/tier_manager.hh; `tier.enabled = 0`,
 * the default, is byte-identical to the two-state stack):
 *   tier.*                     # same keys as xfmsim (see there)
 *   fault.dfm_delay.p / fault.dfm_drop.p  # spill-link fault sites
 * Flags given after --config override the file.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <memory>
#include <vector>

#include "common/config.hh"
#include "dram/ddr_config.hh"
#include "fault/fault.hh"
#include "obs/tracer.hh"
#include "service/service.hh"
#include "workload/adversary.hh"
#include "workload/app_model.hh"
#include "workload/fleet.hh"

using namespace xfm;

namespace
{

/** Write @p text to @p path, fatally on failure. */
void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '", path, "' for writing");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

service::ServiceConfig
makeServiceConfig(std::size_t max_tenants)
{
    service::ServiceConfig cfg;
    cfg.registry.maxTenants = max_tenants;
    cfg.registry.pagesPerShard = 512;
    cfg.system.numDimms = 4;
    cfg.system.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.system.dimmMem.channels = 1;
    cfg.system.dimmMem.dimmsPerChannel = 1;
    cfg.system.dimmMem.ranksPerDimm = 1;
    cfg.system.sfmBase = gib(1);
    cfg.system.sfmBytes = mib(16);
    cfg.system.device.spmBytes = mib(2);
    cfg.system.device.queueDepth = 64;
    // Batch tenants share half the scratchpad; the latency class
    // keeps the rest plus anything batch leaves idle.
    cfg.batchSpmCapBytes = mib(4);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t tenants = 8;
    double sim_ms = 50.0;
    double rate = 100000.0;
    std::uint64_t seed = 1;
    std::size_t workers = 1;
    std::string stats_json;
    std::string trace_out;
    std::uint64_t trace_cap = 65536;
    std::uint32_t sq_depth = 1;
    std::uint32_t cq_coalesce = 1;
    bool shard_dict = false;
    std::size_t dict_bytes = 2048;
    std::size_t sim_shards = 1;
    std::string model = "fleet";
    health::HealthConfig health_cfg;
    health::ShedConfig shed_cfg;
    sfm::TierConfig tier_cfg;
    dram::DeviceConfig dev_cfg = dram::ddr5Device32Gb();
    service::QosArbiterConfig arb_cfg;
    workload::RfmStarverConfig starver_cfg;
    workload::CovertConfig covert_cfg;
    for (int i = 1; i < argc; i += 2) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "fleet_sim: %s needs a value\n", argv[i]);
            return 1;
        }
        if (!std::strcmp(argv[i], "--tenants"))
            tenants = std::strtoull(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--ms"))
            sim_ms = std::strtod(argv[i + 1], nullptr);
        else if (!std::strcmp(argv[i], "--rate"))
            rate = std::strtod(argv[i + 1], nullptr);
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::strtoull(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--config")) {
            Config cfg = Config::parseFile(argv[i + 1]);
            tenants = cfg.getU64("tenants", tenants);
            sim_ms = cfg.getDouble("ms", sim_ms);
            rate = cfg.getDouble("rate", rate);
            seed = cfg.getU64("seed", seed);
            workers = static_cast<std::size_t>(
                cfg.getU64("workers", workers));
            stats_json = cfg.getString("stats.json", stats_json);
            trace_out = cfg.getString("trace.out", trace_out);
            trace_cap = cfg.getU64("trace.cap", trace_cap);
            sq_depth = static_cast<std::uint32_t>(
                cfg.getU64("xfm.sq_depth", sq_depth));
            cq_coalesce = static_cast<std::uint32_t>(
                cfg.getU64("xfm.cq_coalesce", cq_coalesce));
            shard_dict = cfg.getBool("xfm.shard_dict", shard_dict);
            dict_bytes = static_cast<std::size_t>(
                cfg.getU64("xfm.dict_bytes", dict_bytes));
            sim_shards = static_cast<std::size_t>(
                cfg.getU64("sim_shards", sim_shards));
            model = cfg.getString("workload.model", model);
            // Refresh realism on the shared DIMMs and the QoS
            // defense knobs (both byte-identical when unset).
            dram::applyRefreshConfig(dev_cfg, cfg);
            arb_cfg = service::QosArbiterConfig::fromConfig(cfg);
            starver_cfg.pages =
                cfg.getU64("adversary.pages", starver_cfg.pages);
            starver_cfg.burstsPerSecond =
                cfg.getDouble("adversary.bursts_per_second",
                              starver_cfg.burstsPerSecond);
            starver_cfg.activationsPerBurst =
                static_cast<std::uint32_t>(
                    cfg.getU64("adversary.activations_per_burst",
                               starver_cfg.activationsPerBurst));
            starver_cfg.targetDimm = static_cast<std::uint32_t>(
                cfg.getU64("adversary.target_dimm",
                           starver_cfg.targetDimm));
            starver_cfg.sweepBanks = cfg.getBool(
                "adversary.sweep_banks", starver_cfg.sweepBanks);
            starver_cfg.burstBudget =
                cfg.getU64("adversary.burst_budget",
                           starver_cfg.burstBudget);
            covert_cfg.bits = static_cast<std::uint32_t>(
                cfg.getU64("covert.bits", covert_cfg.bits));
            covert_cfg.bitPeriod = microseconds(
                cfg.getDouble("covert.bit_period_us",
                              static_cast<double>(covert_cfg.bitPeriod)
                                  / microseconds(1.0)));
            covert_cfg.burstsPerBit = static_cast<std::uint32_t>(
                cfg.getU64("covert.bursts_per_bit",
                           covert_cfg.burstsPerBit));
            covert_cfg.activationsPerBurst =
                static_cast<std::uint32_t>(
                    cfg.getU64("covert.activations_per_burst",
                               covert_cfg.activationsPerBurst));
            covert_cfg.probesPerBit = static_cast<std::uint32_t>(
                cfg.getU64("covert.probes_per_bit",
                           covert_cfg.probesPerBit));
            covert_cfg.scheduleSeed =
                cfg.getU64("covert.seed", covert_cfg.scheduleSeed);
            health_cfg = health::HealthConfig::fromConfig(cfg);
            shed_cfg = health::ShedConfig::fromConfig(cfg);
            tier_cfg = sfm::TierConfig::fromConfig(cfg);
            // The spill link shares the run's fault plan and retry
            // policy (DfmLinkDelay / DfmLinkDrop sites; disarmed
            // unless configured).
            tier_cfg.faults = fault::FaultPlan::fromConfig(cfg);
            tier_cfg.retry = fault::RetryPolicy::fromConfig(cfg);
            for (const auto &key : cfg.unconsumedKeys())
                warn("unknown config key '", key, "' ignored");
        } else {
            std::fprintf(stderr,
                         "fleet_sim: unknown flag %s\n"
                         "usage: fleet_sim [--tenants N] [--ms MS]"
                         " [--rate PER_SEC] [--seed S]"
                         " [--config FILE]\n",
                         argv[i]);
            return 1;
        }
    }

    // Window barriers of the sharded event core land on tREFI
    // boundaries, where the DIMMs already synchronise (DESIGN.md
    // §13); sim_shards = 1 builds no barrier at all.
    EventQueueConfig eq_cfg;
    eq_cfg.shards = sim_shards;
    eq_cfg.windowTicks = dram::ddr5Device32Gb().tREFI();
    eq_cfg.drainWorkers = workers;
    EventQueue eq(eq_cfg);
    // The adversary model admits three abusive tenants on top of
    // the victim fleet, so the registry needs the extra slots.
    service::ServiceConfig scfg = makeServiceConfig(
        model == "adversary" ? tenants + 3 : tenants);
    scfg.arbiter = arb_cfg;
    scfg.system.dimmMem.rank.device = dev_cfg;
    scfg.system.health = health_cfg;
    scfg.system.workers = workers;
    scfg.system.device.sqDepth = sq_depth;
    scfg.system.device.cqCoalesce = cq_coalesce;
    scfg.system.shardDict = shard_dict;
    scfg.system.dictBytes = dict_bytes;
    scfg.shed = shed_cfg;
    scfg.tier = tier_cfg;
    service::FarMemoryService svc("svc", eq, scfg);
    obs::Tracer tracer(static_cast<std::size_t>(trace_cap));
    if (!trace_out.empty())
        svc.setTracer(&tracer);

    std::unique_ptr<workload::FleetDriver> fleet;
    std::vector<std::unique_ptr<workload::KvStoreModel>> kvs;
    std::vector<std::unique_ptr<workload::InferenceBatchModel>> infer;
    std::unique_ptr<workload::RfmStarverModel> starver;
    std::unique_ptr<workload::CovertSenderModel> covert_tx;
    std::unique_ptr<workload::CovertReceiverModel> covert_rx;
    if (model == "adversary") {
        // Victim fleet plus the three abusive tenants: the starver
        // hammers RAA counters on one DIMM while the covert pair
        // modulates/decodes RFM pressure on the shared refresh
        // machinery. The QoS defense (qos.* keys) is what keeps the
        // fleet's tail intact.
        workload::FleetConfig fcfg;
        fcfg.numTenants = tenants;
        fcfg.pagesPerTenant = 128;
        fcfg.accessesPerSecond = rate;
        fcfg.seed = seed;
        fleet = std::make_unique<workload::FleetDriver>(
            "fleet", eq, svc, fcfg);
        service::TenantConfig atcfg;
        atcfg.name = "starver";
        starver = std::make_unique<workload::RfmStarverModel>(
            "starver", eq, svc, starver_cfg, atcfg);
        service::TenantConfig rxcfg;
        rxcfg.name = "covert_rx";
        covert_rx = std::make_unique<workload::CovertReceiverModel>(
            "covert_rx", eq, svc, covert_cfg, rxcfg);
        service::TenantConfig txcfg;
        txcfg.name = "covert_tx";
        covert_tx = std::make_unique<workload::CovertSenderModel>(
            "covert_tx", eq, svc, covert_cfg, txcfg);
    } else if (model == "fleet") {
        workload::FleetConfig fcfg;
        fcfg.numTenants = tenants;
        fcfg.pagesPerTenant = 128;
        fcfg.accessesPerSecond = rate;
        fcfg.seed = seed;
        fleet = std::make_unique<workload::FleetDriver>(
            "fleet", eq, svc, fcfg);
    } else if (model == "apps") {
        // Application-model mix: KV serving jobs alternate with
        // inference-batch servers. The KV tenants pin their hot
        // heads near and prefer the compressed tier for the warm
        // middle (xfm_first); the inference tenants let the
        // watermark router decide, so their retired activation
        // windows drain to the spill tier.
        sfm::ControllerConfig kstaled;
        kstaled.coldThreshold = milliseconds(2.0);
        kstaled.scanInterval = milliseconds(1.0);
        kstaled.maxSwapOutsPerScan = 16;
        sfm::SenpaiConfig senpai;
        senpai.interval = milliseconds(1.0);
        senpai.targetFaultsPerSec = 20000.0;
        senpai.initialReclaim = 8;
        senpai.maxReclaim = 64;
        for (std::size_t i = 0; i < tenants; ++i) {
            service::TenantConfig tcfg;
            tcfg.kstaled = kstaled;
            tcfg.senpai = senpai;
            if (i % 2 == 0) {
                tcfg.name = "kv_" + std::to_string(i);
                tcfg.cls = service::PriorityClass::LatencySensitive;
                tcfg.policy = service::ControlPolicy::Kstaled;
                tcfg.tierPolicy = sfm::TierPolicy::XfmFirst;
                workload::KvStoreConfig kcfg;
                kcfg.opsPerSecond = rate;
                kcfg.seed = seed + i;
                kvs.push_back(
                    std::make_unique<workload::KvStoreModel>(
                        "kv" + std::to_string(i), eq, svc, kcfg,
                        tcfg));
            } else {
                tcfg.name = "infer_" + std::to_string(i);
                tcfg.cls = service::PriorityClass::Batch;
                tcfg.policy = service::ControlPolicy::Senpai;
                tcfg.tierPolicy = sfm::TierPolicy::Auto;
                workload::InferenceBatchConfig icfg;
                icfg.seed = seed + i;
                infer.push_back(
                    std::make_unique<workload::InferenceBatchModel>(
                        "infer" + std::to_string(i), eq, svc, icfg,
                        tcfg));
            }
        }
    } else {
        fatal("workload.model must be 'fleet', 'apps', or "
              "'adversary', got '", model, "'");
    }

    svc.start();
    if (fleet)
        fleet->start();
    for (auto &m : kvs)
        m->start();
    for (auto &m : infer)
        m->start();
    if (starver)
        starver->start();
    if (covert_rx)
        covert_rx->start();
    if (covert_tx)
        covert_tx->start();
    eq.run(milliseconds(sim_ms));

    std::uint64_t touches = 0;
    if (fleet) {
        touches = fleet->totalAccesses();
    } else {
        for (const auto &m : kvs)
            touches += m->stats().requests;
        for (const auto &m : infer)
            touches += m->stats().requests;
    }
    std::printf("fleet_sim: %zu tenants, %.1f ms simulated, "
                "%llu page touches\n\n",
                fleet ? fleet->numTenants() : kvs.size() + infer.size(),
                sim_ms, (unsigned long long)touches);

    for (const auto &m : kvs) {
        const auto &s = m->stats();
        std::printf("kv tenant %u: %llu requests (%llu bursts), "
                    "%llu hits, %llu faults, %llu writes\n",
                    m->tenantId(), (unsigned long long)s.requests,
                    (unsigned long long)s.bursts,
                    (unsigned long long)s.localHits,
                    (unsigned long long)s.faults,
                    (unsigned long long)s.writes);
    }
    for (const auto &m : infer) {
        const auto &s = m->stats();
        std::printf("inference tenant %u: %llu touches "
                    "(%llu batches), %llu hits, %llu faults\n",
                    m->tenantId(), (unsigned long long)s.requests,
                    (unsigned long long)s.bursts,
                    (unsigned long long)s.localHits,
                    (unsigned long long)s.faults);
    }
    if (!kvs.empty() || !infer.empty())
        std::printf("\n");

    const obs::Snapshot snap = svc.metrics().snapshot();
    std::printf("%s\n", snap.renderText().c_str());
    if (!stats_json.empty())
        writeFile(stats_json, snap.toJson());
    if (!trace_out.empty()) {
        writeFile(trace_out, tracer.toJsonLines());
        std::printf("trace: %llu events recorded, %llu dropped "
                    "-> %s\n",
                    (unsigned long long)tracer.recorded(),
                    (unsigned long long)tracer.dropped(),
                    trace_out.c_str());
    }

    if (starver) {
        const auto &ss = starver->stats();
        const dram::RefreshStats &rs =
            svc.backend().refresh().refreshStats();
        std::printf("adversary: starver %llu bursts "
                    "(%llu suppressed), %llu RFMs forced, "
                    "%llu slots stolen, throttled=%s\n",
                    (unsigned long long)ss.bursts,
                    (unsigned long long)ss.suppressedBursts,
                    (unsigned long long)rs.rfmCommands,
                    (unsigned long long)rs.rfmStolenSlots,
                    svc.arbiter().abuseThrottled(starver->tenantId())
                        ? "yes" : "no");
        const auto &cs = covert_rx->stats();
        std::printf("covert: %u bits sent, %u decoded, BER %.3f, "
                    "capacity %.0f b/s, sender flagged=%s\n",
                    covert_tx->bitsSent(), cs.bitsDecoded,
                    cs.bitErrorRate(),
                    covert_rx->channelCapacityBps(),
                    svc.arbiter()
                            .laneStats(covert_tx->tenantId())
                            .abuseFlags > 0
                        ? "yes" : "no");
    }

    const auto &as = svc.arbiter().stats();
    std::printf("arbiter: %llu windows, %llu dispatched, "
                "%llu preemptions, %llu throttled windows\n",
                (unsigned long long)as.windows,
                (unsigned long long)as.dispatched,
                (unsigned long long)as.preemptions,
                (unsigned long long)as.throttledWindows);
    std::printf("admission: %llu tenants rejected\n",
                (unsigned long long)
                    svc.registry().rejectedAdmissions());
    if (const sfm::TierManager *tm = svc.tierManager()) {
        const auto &t = tm->tierStats();
        std::printf("tiers: %llu near / %llu xfm / %llu dfm pages; "
                    "demotions %llu->xfm %llu->dfm, spills %llu, "
                    "promotions %llu xfm %llu dfm\n",
                    (unsigned long long)tm->nearPages(),
                    (unsigned long long)tm->xfmPages(),
                    (unsigned long long)tm->dfmPages(),
                    (unsigned long long)t.demotedNearToXfm,
                    (unsigned long long)t.demotedNearToDfm,
                    (unsigned long long)t.demotedXfmToDfm,
                    (unsigned long long)t.promotedFromXfm,
                    (unsigned long long)t.promotedFromDfm);
    }
    if (svc.shedder().enabled()) {
        const auto &ss = svc.shedder().stats();
        std::printf("shedding: %llu engages, %llu rejects, "
                    "%llu down-tiers%s\n",
                    (unsigned long long)ss.engages,
                    (unsigned long long)ss.rejects,
                    (unsigned long long)ss.downTiers,
                    svc.shedder().shedding() ? " (still engaged)"
                                             : "");
    }
    return 0;
}
