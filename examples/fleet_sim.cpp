/**
 * @file
 * fleet_sim: multi-tenant far-memory service demonstration.
 *
 * Spawns a heterogeneous fleet (latency-sensitive serving jobs mixed
 * with weighted batch tenants, kstaled and senpai control policies)
 * on one shared set of XFM DIMMs and prints every tenant's service
 * statistics: hit/fault counts, NMA vs CPU-fallback split, quota
 * events, and p50/p99 demand-fault latency.
 *
 * Usage: fleet_sim [--tenants N] [--ms M] [--rate R] [--seed S]
 *                  [--config FILE]
 *
 * The config file (key = value) may set the same knobs (tenants,
 * ms, rate, seed), `workers` (shard-compression threads for every
 * tenant's CPU swap path; results identical for any value),
 * `sim_shards` (event-core shards: 1 = classic monolithic kernel,
 * N > 1 stages per-DIMM event domains in parallel at tREFI window
 * barriers — output stays byte-identical), plus
 * the observability sinks:
 *   stats.json = fleet.json    # metric-registry JSON snapshot
 *   trace.out  = fleet.jsonl   # per-swap span trace (JSON lines)
 *   trace.cap  = 65536         # trace ring capacity in events
 * and the robustness knobs (src/health):
 *   health.*                   # circuit breakers on every domain
 *   shed.*                     # overload-shedding watermarks
 * Flags given after --config override the file.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/config.hh"
#include "dram/ddr_config.hh"
#include "obs/tracer.hh"
#include "service/service.hh"
#include "workload/fleet.hh"

using namespace xfm;

namespace
{

/** Write @p text to @p path, fatally on failure. */
void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open '", path, "' for writing");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

service::ServiceConfig
makeServiceConfig(std::size_t max_tenants)
{
    service::ServiceConfig cfg;
    cfg.registry.maxTenants = max_tenants;
    cfg.registry.pagesPerShard = 512;
    cfg.system.numDimms = 4;
    cfg.system.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.system.dimmMem.channels = 1;
    cfg.system.dimmMem.dimmsPerChannel = 1;
    cfg.system.dimmMem.ranksPerDimm = 1;
    cfg.system.sfmBase = gib(1);
    cfg.system.sfmBytes = mib(16);
    cfg.system.device.spmBytes = mib(2);
    cfg.system.device.queueDepth = 64;
    // Batch tenants share half the scratchpad; the latency class
    // keeps the rest plus anything batch leaves idle.
    cfg.batchSpmCapBytes = mib(4);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t tenants = 8;
    double sim_ms = 50.0;
    double rate = 100000.0;
    std::uint64_t seed = 1;
    std::size_t workers = 1;
    std::string stats_json;
    std::string trace_out;
    std::uint64_t trace_cap = 65536;
    std::uint32_t sq_depth = 1;
    std::uint32_t cq_coalesce = 1;
    std::size_t sim_shards = 1;
    health::HealthConfig health_cfg;
    health::ShedConfig shed_cfg;
    for (int i = 1; i < argc; i += 2) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "fleet_sim: %s needs a value\n", argv[i]);
            return 1;
        }
        if (!std::strcmp(argv[i], "--tenants"))
            tenants = std::strtoull(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--ms"))
            sim_ms = std::strtod(argv[i + 1], nullptr);
        else if (!std::strcmp(argv[i], "--rate"))
            rate = std::strtod(argv[i + 1], nullptr);
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::strtoull(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--config")) {
            Config cfg = Config::parseFile(argv[i + 1]);
            tenants = cfg.getU64("tenants", tenants);
            sim_ms = cfg.getDouble("ms", sim_ms);
            rate = cfg.getDouble("rate", rate);
            seed = cfg.getU64("seed", seed);
            workers = static_cast<std::size_t>(
                cfg.getU64("workers", workers));
            stats_json = cfg.getString("stats.json", stats_json);
            trace_out = cfg.getString("trace.out", trace_out);
            trace_cap = cfg.getU64("trace.cap", trace_cap);
            sq_depth = static_cast<std::uint32_t>(
                cfg.getU64("xfm.sq_depth", sq_depth));
            cq_coalesce = static_cast<std::uint32_t>(
                cfg.getU64("xfm.cq_coalesce", cq_coalesce));
            sim_shards = static_cast<std::size_t>(
                cfg.getU64("sim_shards", sim_shards));
            health_cfg = health::HealthConfig::fromConfig(cfg);
            shed_cfg = health::ShedConfig::fromConfig(cfg);
            for (const auto &key : cfg.unconsumedKeys())
                warn("unknown config key '", key, "' ignored");
        } else {
            std::fprintf(stderr,
                         "fleet_sim: unknown flag %s\n"
                         "usage: fleet_sim [--tenants N] [--ms MS]"
                         " [--rate PER_SEC] [--seed S]"
                         " [--config FILE]\n",
                         argv[i]);
            return 1;
        }
    }

    // Window barriers of the sharded event core land on tREFI
    // boundaries, where the DIMMs already synchronise (DESIGN.md
    // §13); sim_shards = 1 builds no barrier at all.
    EventQueueConfig eq_cfg;
    eq_cfg.shards = sim_shards;
    eq_cfg.windowTicks = dram::ddr5Device32Gb().tREFI();
    eq_cfg.drainWorkers = workers;
    EventQueue eq(eq_cfg);
    service::ServiceConfig scfg = makeServiceConfig(tenants);
    scfg.system.health = health_cfg;
    scfg.system.workers = workers;
    scfg.system.device.sqDepth = sq_depth;
    scfg.system.device.cqCoalesce = cq_coalesce;
    scfg.shed = shed_cfg;
    service::FarMemoryService svc("svc", eq, scfg);
    obs::Tracer tracer(static_cast<std::size_t>(trace_cap));
    if (!trace_out.empty())
        svc.setTracer(&tracer);

    workload::FleetConfig fcfg;
    fcfg.numTenants = tenants;
    fcfg.pagesPerTenant = 128;
    fcfg.accessesPerSecond = rate;
    fcfg.seed = seed;
    workload::FleetDriver fleet("fleet", eq, svc, fcfg);

    svc.start();
    fleet.start();
    eq.run(milliseconds(sim_ms));

    std::printf("fleet_sim: %zu tenants, %.1f ms simulated, "
                "%llu page touches\n\n",
                fleet.numTenants(), sim_ms,
                (unsigned long long)fleet.totalAccesses());

    const obs::Snapshot snap = svc.metrics().snapshot();
    std::printf("%s\n", snap.renderText().c_str());
    if (!stats_json.empty())
        writeFile(stats_json, snap.toJson());
    if (!trace_out.empty()) {
        writeFile(trace_out, tracer.toJsonLines());
        std::printf("trace: %llu events recorded, %llu dropped "
                    "-> %s\n",
                    (unsigned long long)tracer.recorded(),
                    (unsigned long long)tracer.dropped(),
                    trace_out.c_str());
    }

    const auto &as = svc.arbiter().stats();
    std::printf("arbiter: %llu windows, %llu dispatched, "
                "%llu preemptions, %llu throttled windows\n",
                (unsigned long long)as.windows,
                (unsigned long long)as.dispatched,
                (unsigned long long)as.preemptions,
                (unsigned long long)as.throttledWindows);
    std::printf("admission: %llu tenants rejected\n",
                (unsigned long long)
                    svc.registry().rejectedAdmissions());
    if (svc.shedder().enabled()) {
        const auto &ss = svc.shedder().stats();
        std::printf("shedding: %llu engages, %llu rejects, "
                    "%llu down-tiers%s\n",
                    (unsigned long long)ss.engages,
                    (unsigned long long)ss.rejects,
                    (unsigned long long)ss.downTiers,
                    svc.shedder().shedding() ? " (still engaged)"
                                             : "");
    }
    return 0;
}
