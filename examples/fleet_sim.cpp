/**
 * @file
 * fleet_sim: multi-tenant far-memory service demonstration.
 *
 * Spawns a heterogeneous fleet (latency-sensitive serving jobs mixed
 * with weighted batch tenants, kstaled and senpai control policies)
 * on one shared set of XFM DIMMs and prints every tenant's service
 * statistics: hit/fault counts, NMA vs CPU-fallback split, quota
 * events, and p50/p99 demand-fault latency.
 *
 * Usage: fleet_sim [--tenants N] [--ms M] [--rate R] [--seed S]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dram/ddr_config.hh"
#include "service/service.hh"
#include "workload/fleet.hh"

using namespace xfm;

namespace
{

service::ServiceConfig
makeServiceConfig(std::size_t max_tenants)
{
    service::ServiceConfig cfg;
    cfg.registry.maxTenants = max_tenants;
    cfg.registry.pagesPerShard = 512;
    cfg.system.numDimms = 4;
    cfg.system.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.system.dimmMem.channels = 1;
    cfg.system.dimmMem.dimmsPerChannel = 1;
    cfg.system.dimmMem.ranksPerDimm = 1;
    cfg.system.sfmBase = gib(1);
    cfg.system.sfmBytes = mib(16);
    cfg.system.device.spmBytes = mib(2);
    cfg.system.device.queueDepth = 64;
    // Batch tenants share half the scratchpad; the latency class
    // keeps the rest plus anything batch leaves idle.
    cfg.batchSpmCapBytes = mib(4);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t tenants = 8;
    double sim_ms = 50.0;
    double rate = 100000.0;
    std::uint64_t seed = 1;
    for (int i = 1; i < argc; i += 2) {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "fleet_sim: %s needs a value\n", argv[i]);
            return 1;
        }
        if (!std::strcmp(argv[i], "--tenants"))
            tenants = std::strtoull(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--ms"))
            sim_ms = std::strtod(argv[i + 1], nullptr);
        else if (!std::strcmp(argv[i], "--rate"))
            rate = std::strtod(argv[i + 1], nullptr);
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::strtoull(argv[i + 1], nullptr, 10);
        else {
            std::fprintf(stderr,
                         "fleet_sim: unknown flag %s\n"
                         "usage: fleet_sim [--tenants N] [--ms MS]"
                         " [--rate PER_SEC] [--seed S]\n",
                         argv[i]);
            return 1;
        }
    }

    EventQueue eq;
    service::FarMemoryService svc("svc", eq,
                                  makeServiceConfig(tenants));

    workload::FleetConfig fcfg;
    fcfg.numTenants = tenants;
    fcfg.pagesPerTenant = 128;
    fcfg.accessesPerSecond = rate;
    fcfg.seed = seed;
    workload::FleetDriver fleet("fleet", eq, svc, fcfg);

    svc.start();
    fleet.start();
    eq.run(milliseconds(sim_ms));

    std::printf("fleet_sim: %zu tenants, %.1f ms simulated, "
                "%llu page touches\n\n",
                fleet.numTenants(), sim_ms,
                (unsigned long long)fleet.totalAccesses());

    for (std::size_t i = 0; i < fleet.numTenants(); ++i) {
        const auto id = fleet.tenantId(i);
        std::printf("%s\n",
                    svc.tenantStatsGroup(id).render().c_str());
    }

    const auto &as = svc.arbiter().stats();
    std::printf("arbiter: %llu windows, %llu dispatched, "
                "%llu preemptions, %llu throttled windows\n",
                (unsigned long long)as.windows,
                (unsigned long long)as.dispatched,
                (unsigned long long)as.preemptions,
                (unsigned long long)as.throttledWindows);
    std::printf("admission: %llu tenants rejected\n",
                (unsigned long long)
                    svc.registry().rejectedAdmissions());
    return 0;
}
