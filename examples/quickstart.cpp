/**
 * @file
 * Quickstart: stand up an XFM memory system (4 DIMMs in
 * multi-channel mode), demote pages into compressed far memory via
 * NMA offloads, promote them back, and verify the data.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "compress/corpus.hh"
#include "xfm/xfm_backend.hh"

using namespace xfm;
using namespace xfm::xfmsys;

int
main()
{
    // 1. Describe the system: four single-rank DIMMs built from
    //    32 Gb DDR5 devices; a 16 MiB SFM region on each DIMM.
    XfmSystemConfig cfg;
    cfg.numDimms = 4;
    cfg.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.dimmMem.channels = 1;
    cfg.dimmMem.dimmsPerChannel = 1;
    cfg.dimmMem.ranksPerDimm = 1;
    cfg.localPages = 64;
    cfg.sfmBase = gib(1);
    cfg.sfmBytes = mib(16);

    EventQueue eq;
    XfmBackend backend("xfm", eq, cfg);
    backend.start();  // refresh engine ticking

    // 2. Populate some application pages.
    std::vector<Bytes> pages;
    for (sfm::VirtPage p = 0; p < 8; ++p) {
        pages.push_back(compress::generateCorpus(
            compress::CorpusKind::Json, p, pageBytes));
        backend.writePage(p, pages.back());
    }

    // 3. Demote them: the NMA on each DIMM compresses its shard of
    //    every page during DRAM refresh windows.
    std::uint64_t stored = 0;
    for (sfm::VirtPage p = 0; p < 8; ++p) {
        backend.swapOut(p, [&](const sfm::SwapOutcome &o) {
            std::printf("swap-out page %llu: %s via %s, %u B "
                        "compressed, done at %s\n",
                        (unsigned long long)o.page,
                        o.success ? "ok" : "FAILED",
                        o.usedCpu ? "CPU" : "NMA",
                        o.compressedSize,
                        formatTicks(o.completed).c_str());
            stored += o.compressedSize;
        });
    }
    eq.run(seconds(0.05));

    std::printf("\nfar pages: %llu, stored %s (of %s raw), "
                "fragmentation %s\n",
                (unsigned long long)backend.farPageCount(),
                formatBytes(backend.storedCompressedBytes()).c_str(),
                formatBytes(8 * pageBytes).c_str(),
                formatBytes(backend.fragmentationBytes()).c_str());

    // 4. Promote them back with offload (prefetch path) and check
    //    the data survived the round trip.
    for (sfm::VirtPage p = 0; p < 8; ++p)
        backend.swapIn(p, /*allow_offload=*/true, nullptr);
    eq.run(seconds(0.1));

    int intact = 0;
    for (sfm::VirtPage p = 0; p < 8; ++p)
        if (backend.readPage(p) == pages[p])
            ++intact;
    std::printf("round-trip intact pages: %d/8\n", intact);

    // 5. Show the device-side statistics.
    const auto &xs = backend.xfmStats();
    std::printf("\noffloaded swap-outs: %llu, swap-ins: %llu, CPU "
                "fallbacks: %llu\n",
                (unsigned long long)xs.offloadedSwapOuts,
                (unsigned long long)xs.offloadedSwapIns,
                (unsigned long long)(xs.fallbackCapacity
                                     + xs.fallbackDeadline));
    for (std::size_t d = 0; d < cfg.numDimms; ++d) {
        const auto &ds = backend.driver(d).device().stats();
        std::printf("dimm%zu: %llu conditional + %llu random "
                    "accesses, %.1f%% access energy saved\n",
                    d,
                    (unsigned long long)ds.conditionalAccesses,
                    (unsigned long long)ds.randomAccesses,
                    100.0 * ds.energySavedFraction());
    }
    return intact == 8 ? 0 : 1;
}
