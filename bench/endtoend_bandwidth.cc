/**
 * @file
 * End-to-end validation of the abstract's headline: "XFM eliminates
 * memory bandwidth utilization when performing compression and
 * decompression operations."
 *
 * The same application + SFM control plane runs on two full-system
 * configurations — the zswap-style CPU baseline and XFM — and the
 * host memory controller's byte counters are split into application
 * traffic vs SFM-caused traffic.
 */

#include <cstdio>

#include "common/random.hh"
#include "compress/corpus.hh"
#include "system/system.hh"

using namespace xfm;
using namespace xfm::system;

namespace
{

struct Outcome
{
    std::uint64_t appBytes;
    std::uint64_t sfmBytes;
    std::uint64_t swapOuts;
    std::uint64_t swapIns;
    double cpuFraction;
    std::uint64_t cpuMcycles;
};

Outcome
run(BackendKind kind)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.backend = kind;
    cfg.pages = 512;
    cfg.sfmBytes = mib(16);
    cfg.controller.coldThreshold = milliseconds(20.0);
    cfg.controller.scanInterval = milliseconds(2.0);
    cfg.controller.maxSwapOutsPerScan = 64;
    cfg.controller.prefetchDepth = 2;

    System sys("sys", eq, cfg);
    for (sfm::VirtPage p = 0; p < cfg.pages; ++p) {
        sys.writePage(p, compress::generateCorpus(
                             compress::CorpusKind::KeyValue, p,
                             pageBytes));
    }
    sys.start();

    // Phased workload: hot sweeps over a shifting window of pages;
    // everything else goes cold and gets demoted, then faults back.
    Rng rng(1);
    for (int phase = 0; phase < 6; ++phase) {
        const sfm::VirtPage base = phase * 80;
        for (int i = 0; i < 400; ++i) {
            const auto page =
                (base + rng.zipf(96, 0.9)) % cfg.pages;
            eq.scheduleIn(microseconds(i * 100.0),
                          [&sys, page] { sys.access(page); });
        }
        eq.run(eq.now() + milliseconds(45.0));
    }

    const auto &bs = sys.backend().stats();
    Outcome o;
    o.appBytes = sys.memCtrl().stats().bytesRead
        + sys.memCtrl().stats().bytesWritten - sys.sfmHostBytes();
    o.sfmBytes = sys.sfmHostBytes();
    o.swapOuts = bs.swapOuts;
    o.swapIns = bs.swapIns;
    o.cpuFraction = bs.cpuFraction();
    o.cpuMcycles = bs.cpuCycles / 1000000;
    return o;
}

} // namespace

int
main()
{
    std::printf("End-to-end host-channel traffic: CPU baseline vs "
                "XFM (512-page app, phased working set)\n\n");
    std::printf("%-12s %10s %10s | %12s %14s | %10s %10s\n",
                "backend", "swapOuts", "swapIns", "app bytes",
                "SFM bytes", "SFM/app", "Mcycles");
    for (auto kind : {BackendKind::BaselineCpu, BackendKind::Xfm}) {
        const auto o = run(kind);
        std::printf("%-12s %10llu %10llu | %12llu %14llu | %9.2f%% "
                    "%10llu\n",
                    kind == BackendKind::BaselineCpu ? "baseline"
                                                     : "xfm",
                    (unsigned long long)o.swapOuts,
                    (unsigned long long)o.swapIns,
                    (unsigned long long)o.appBytes,
                    (unsigned long long)o.sfmBytes,
                    o.appBytes
                        ? 100.0 * static_cast<double>(o.sfmBytes)
                              / o.appBytes
                        : 0.0,
                    (unsigned long long)o.cpuMcycles);
    }
    std::printf("\nXFM's remaining SFM host traffic comes only from "
                "demand faults (CPU by design) and rare fallbacks; "
                "all offloaded work moves inside refresh windows, "
                "invisible to the host channels.\n");
    return 0;
}
