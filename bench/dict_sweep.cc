/**
 * @file
 * dict_sweep: preset-dictionary ratio/latency sweep (DESIGN.md §16).
 *
 * One point per (corpus, channel count, dict on/off): pages are
 * compressed in multi-channel mode with and without the per-page
 * preset dictionary, using the backend's accounting (dictionary
 * packed once per page into DIMM 0's slot tail; shards carry only a
 * 3-byte dict-referencing header). For each dict-on point the sweep
 * reports the *recovered fraction* of the 1-DIMM vs N-DIMM ratio
 * gap — the paper's Fig. 8 loss that `xfm.shard_dict` exists to
 * claw back.
 *
 * Restore latency is modeled, not measured: per page,
 *   channel read of the largest shard slot   (channelGBps, parallel
 *                                             across DIMMs)
 * + dict staging when on                     (one read + D-1 SPM
 *                                             writes of the packed
 *                                             dict, serialized on
 *                                             the host link)
 * + engine decompression of a 1/D page shard (EngineProfile's
 *                                             17.2 GB/s, parallel)
 * so the dict column surfaces its real cost: a slightly longer
 * slot read plus the staging transfer.
 *
 * Every dict-mode page is decoded back through the shared
 * decodeShard() path and byte-compared inside
 * measureMultiChannelDict(); that round-trip is the ONLY exit gate.
 * Ratios, latencies, and recovery fractions are measurements
 * archived by CI in BENCH_DICT.json (schema xfm.dict_sweep.v1),
 * never a pass/fail criterion.
 *
 * Usage: dict_sweep [--smoke] [--out FILE]
 *   --smoke   smaller corpora / fewer kinds (CI smoke test)
 *   --out     JSON destination (default BENCH_DICT.json)
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "compress/corpus.hh"
#include "compress/deflate.hh"
#include "nma/engine.hh"
#include "xfm/multichannel.hh"

using namespace xfm;
using namespace xfm::compress;
using namespace xfm::xfmsys;

namespace
{

constexpr std::size_t dictBytes = 2048;  ///< backend default

/** DDR5 channel bandwidth for slot reads / dict staging. */
constexpr double channelGBps = 25.6;

struct Point
{
    CorpusKind kind;
    std::size_t dimms = 1;
    bool dict = false;
    double ratio = 0.0;
    double placedRatio = 0.0;
    double restoreNs = 0.0;   ///< modeled per-page restore latency
    double recovered = 0.0;   ///< dict-on only: gap fraction closed
};

double
modelRestoreNs(const MultiChannelResult &r, std::size_t pages)
{
    const nma::EngineProfile prof;
    const double slot_pp = static_cast<double>(r.placedBytes)
        / (static_cast<double>(pages) * r.dimms);
    const double dict_pp =
        static_cast<double>(r.dictBytes) / static_cast<double>(pages);
    const double raw_shard = static_cast<double>(r.rawBytes)
        / (static_cast<double>(pages) * r.dimms);
    const double read_ns = slot_pp / channelGBps;
    const double stage_ns = dict_pp * r.dimms / channelGBps;
    const double engine_ns = raw_shard / prof.decompressGBps;
    return read_ns + stage_ns + engine_ns;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_DICT.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: dict_sweep [--smoke] [--out FILE]\n");
            return 1;
        }
    }

    // The spatially-correlated classes the dictionary targets,
    // plus two controls (zero-heavy compresses regardless; random
    // bytes must simply not regress).
    std::vector<CorpusKind> kinds = {
        CorpusKind::Json,      CorpusKind::Html,
        CorpusKind::SourceCode};
    if (!smoke) {
        kinds.push_back(CorpusKind::LogLines);
        kinds.push_back(CorpusKind::KeyValue);
        kinds.push_back(CorpusKind::Dictionary);
        kinds.push_back(CorpusKind::ZeroHeavy);
        kinds.push_back(CorpusKind::RandomBytes);
    }
    const std::size_t corpus_bytes = smoke ? 64 * 1024 : 256 * 1024;
    const std::size_t channels[] = {1, 2, 4};
    DeflateCodec codec;  // XFM's engine runs Deflate (Sec. 7)

    std::printf("dict_sweep%s: %zu KiB per corpus, dict_bytes=%zu, "
                "Deflate\n\n",
                smoke ? " (smoke)" : "", corpus_bytes / 1024,
                dictBytes);
    std::printf("%-14s %5s %5s %8s %8s %10s %10s\n", "corpus",
                "dimms", "dict", "ratio", "placed", "restore ns",
                "recovered");

    std::vector<Point> points;
    double rec_sum = 0.0;
    double rec_min = 1.0;
    int rec_n = 0;
    for (auto kind : kinds) {
        const Bytes corpus =
            generateCorpus(kind, 2023, corpus_bytes);
        const auto pages = paginate(corpus);
        double ratio1 = 0.0;
        for (auto d : channels) {
            const auto plain = measureMultiChannel(pages, codec, d);
            if (d == 1)
                ratio1 = plain.ratio();
            Point p;
            p.kind = kind;
            p.dimms = d;
            p.dict = false;
            p.ratio = plain.ratio();
            p.placedRatio = plain.placedRatio();
            p.restoreNs = modelRestoreNs(plain, pages.size());
            points.push_back(p);
            std::printf("%-14s %5zu %5s %8.3f %8.3f %10.1f %10s\n",
                        corpusName(kind).c_str(), d, "off", p.ratio,
                        p.placedRatio, p.restoreNs, "-");

            // Round-trip of every dict-mode page is asserted
            // inside measureMultiChannelDict().
            const auto dicted = measureMultiChannelDict(
                pages, codec, d, dictBytes);
            Point q;
            q.kind = kind;
            q.dimms = d;
            q.dict = true;
            q.ratio = dicted.ratio();
            q.placedRatio = dicted.placedRatio();
            q.restoreNs = modelRestoreNs(dicted, pages.size());
            const double gap = ratio1 - plain.ratio();
            q.recovered = gap > 1e-9
                ? (dicted.ratio() - plain.ratio()) / gap
                : 0.0;
            points.push_back(q);
            if (d > 1) {
                std::printf("%-14s %5zu %5s %8.3f %8.3f %10.1f "
                            "%9.1f%%\n",
                            corpusName(kind).c_str(), d, "on",
                            q.ratio, q.placedRatio, q.restoreNs,
                            100.0 * q.recovered);
            } else {
                std::printf("%-14s %5zu %5s %8.3f %8.3f %10.1f "
                            "%10s\n",
                            corpusName(kind).c_str(), d, "on",
                            q.ratio, q.placedRatio, q.restoreNs,
                            "-");
            }
            if (d == 4 && kind != CorpusKind::ZeroHeavy
                && kind != CorpusKind::RandomBytes) {
                rec_sum += q.recovered;
                rec_min = std::min(rec_min, q.recovered);
                ++rec_n;
            }
        }
    }
    const double rec_mean = rec_n ? rec_sum / rec_n : 0.0;
    std::printf("\n4-DIMM ratio-gap recovery on spatially-correlated "
                "corpora: mean %.1f%%, min %.1f%%\n",
                100.0 * rec_mean, 100.0 * rec_min);
    std::printf("(round-trip of every dict-mode page verified "
                "byte-exact)\n");

    std::string j = "{\n  \"schema\": \"xfm.dict_sweep.v1\",\n";
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "  \"smoke\": %s,\n  \"algorithm\": \"deflate\",\n"
                  "  \"dict_bytes\": %zu,\n"
                  "  \"recovery_4d_mean\": %.4f,\n"
                  "  \"recovery_4d_min\": %.4f,\n",
                  smoke ? "true" : "false", dictBytes, rec_mean,
                  rec_min);
    j += buf;
    j += "  \"sweep\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &p = points[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"corpus\": \"%s\", \"dimms\": %zu, "
            "\"dict\": %s, \"ratio\": %.4f, "
            "\"placed_ratio\": %.4f, \"restore_ns\": %.1f, "
            "\"recovered\": %.4f}%s\n",
            corpusName(p.kind).c_str(), p.dimms,
            p.dict ? "true" : "false", p.ratio, p.placedRatio,
            p.restoreNs, p.recovered,
            i + 1 < points.size() ? "," : "");
        j += buf;
    }
    j += "  ]\n}\n";

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "dict_sweep: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
