/**
 * @file
 * Reproduces Fig. 8: compression ratios of 4 KiB pages from 16
 * corpora when compressed in XFM's multi-channel mode (1-, 2-, and
 * 4-DIMM configurations splitting each page at the 256 B channel
 * interleave), plus the Sec. 8 summary (2-/4-channel modes cost ~5%
 * and ~14% of the memory savings).
 */

#include <cstdio>
#include <vector>

#include "compress/corpus.hh"
#include "compress/deflate.hh"
#include "xfm/multichannel.hh"

using namespace xfm;
using namespace xfm::compress;
using namespace xfm::xfmsys;

int
main()
{
    constexpr std::size_t corpusBytes = 256 * 1024;
    constexpr std::uint64_t seed = 2023;
    DeflateCodec codec;  // XFM's engine runs Deflate (Sec. 7)

    std::printf("Fig. 8: multi-channel compression ratios "
                "(4 KiB pages, 256 B interleave, Deflate)\n\n");
    std::printf("%-14s %8s %8s %8s | %9s %9s\n", "corpus", "1-DIMM",
                "2-DIMM", "4-DIMM", "2D/1D", "4D/1D");

    double sum1 = 0;
    double sum2 = 0;
    double sum4 = 0;
    double placed4 = 0;
    int counted = 0;
    for (auto kind : allCorpusKinds()) {
        const Bytes corpus = generateCorpus(kind, seed, corpusBytes);
        const auto pages = paginate(corpus);
        const auto r1 = measureMultiChannel(pages, codec, 1);
        const auto r2 = measureMultiChannel(pages, codec, 2);
        const auto r4 = measureMultiChannel(pages, codec, 4);
        std::printf("%-14s %8.3f %8.3f %8.3f | %8.1f%% %8.1f%%\n",
                    corpusName(kind).c_str(), r1.ratio(), r2.ratio(),
                    r4.ratio(), 100.0 * r2.ratio() / r1.ratio(),
                    100.0 * r4.ratio() / r1.ratio());
        sum1 += r1.ratio();
        sum2 += r2.ratio();
        sum4 += r4.ratio();
        placed4 += r4.placedRatio();
        ++counted;
    }
    sum1 /= counted;
    sum2 /= counted;
    sum4 /= counted;
    placed4 /= counted;

    std::printf("\n%-14s %8.3f %8.3f %8.3f | %8.1f%% %8.1f%%\n",
                "average", sum1, sum2, sum4, 100.0 * sum2 / sum1,
                100.0 * sum4 / sum1);

    // Preset dictionaries (DESIGN.md §16, `xfm.shard_dict`): a
    // per-page sampled dictionary restores cross-shard redundancy
    // lost to interleaving. Recovery = fraction of the 1-DIMM vs
    // 4-DIMM ratio gap closed by dict mode.
    std::printf("\nShard-dict column (4-DIMM, dict_bytes=2048):\n");
    std::printf("%-14s %8s %8s %8s | %9s\n", "corpus", "1-DIMM",
                "4-DIMM", "4D+dict", "recovered");
    double sumd = 0;
    for (auto kind : allCorpusKinds()) {
        const Bytes corpus = generateCorpus(kind, seed, corpusBytes);
        const auto pages = paginate(corpus);
        const auto r1 = measureMultiChannel(pages, codec, 1);
        const auto r4 = measureMultiChannel(pages, codec, 4);
        const auto rd = measureMultiChannelDict(pages, codec, 4, 2048);
        const double gap = r1.ratio() - r4.ratio();
        const double rec =
            gap > 1e-9 ? (rd.ratio() - r4.ratio()) / gap : 0.0;
        std::printf("%-14s %8.3f %8.3f %8.3f | %8.1f%%\n",
                    corpusName(kind).c_str(), r1.ratio(), r4.ratio(),
                    rd.ratio(), 100.0 * rec);
        sumd += rd.ratio();
    }
    sumd /= counted;
    std::printf("%-14s %17.3f %8.3f\n", "average", sum4, sumd);
    std::printf("\nSec. 6 claim : 4-DIMM mode retains ~86.2%% of the "
                "in-order compression ratio.\n");
    std::printf("Measured     : %.1f%% (pure), %.1f%% incl. "
                "same-offset placement fragmentation.\n",
                100.0 * sum4 / sum1, 100.0 * placed4 / sum1);

    // Fig. 8 caption: "losses due to the decreased compression
    // window are also minimal, even down to the 1KB window used in
    // the 4-DIMM configuration" — isolate the window effect from
    // the data-interleaving effect by sweeping the LZ77 window on
    // whole (non-split) pages.
    std::printf("\nWindow-truncation sweep (whole pages, no "
                "interleave):\n%-14s", "corpus");
    const std::size_t windows[] = {32768, 4096, 2048, 1024};
    for (auto w : windows)
        std::printf(" %6zuB", w);
    std::printf("\n");
    for (auto kind : {CorpusKind::EnglishText, CorpusKind::Json,
                      CorpusKind::LogLines,
                      CorpusKind::NumericColumns}) {
        const Bytes corpus = generateCorpus(kind, seed, corpusBytes);
        const auto pages = paginate(corpus);
        std::printf("%-14s", corpusName(kind).c_str());
        for (auto w : windows) {
            DeflateCodec windowed(w);
            std::uint64_t compressed = 0;
            std::uint64_t raw = 0;
            for (const auto &page : pages) {
                compressed += windowed.compress(page).size();
                raw += page.size();
            }
            std::printf(" %7.3f",
                        static_cast<double>(raw) / compressed);
        }
        std::printf("\n");
    }

    // Sec. 8: memory-savings loss. Savings = 1 - 1/ratio.
    auto savings = [](double ratio) { return 1.0 - 1.0 / ratio; };
    std::printf("\nSec. 8 claim : 2-/4-channel modes reduce memory "
                "savings by ~5%% / ~14%%.\n");
    std::printf("Measured     : %.1f%% / %.1f%% (savings loss vs "
                "1-DIMM)\n",
                100.0 * (savings(sum1) - savings(sum2))
                    / savings(sum1),
                100.0 * (savings(sum1) - savings(placed4))
                    / savings(sum1));
    return 0;
}
