/**
 * @file
 * Reproduces Fig. 1: DRAM bandwidth consumed by SFM (de)compression
 * as far-memory capacity grows. A CPU-centric SFM funnels all swap
 * traffic over the DDR channels; XFM serves it from within per-rank
 * refresh windows, so the channel-visible bandwidth is zero and the
 * aggregate NMA bandwidth scales with the number of ranks.
 */

#include <cstdio>
#include <vector>

#include "costmodel/cost_model.hh"
#include "dram/ddr_config.hh"

using namespace xfm;
using namespace xfm::costmodel;

namespace
{

/** Per-rank NMA bandwidth available inside refresh windows. */
double
xfmPerRankGBps(const dram::DeviceConfig &dev,
               unsigned accesses_per_window)
{
    // accesses_per_window x 4 KiB per tREFI.
    const double bytes = accesses_per_window * 4096.0;
    return bytes / (ticksToNs(dev.tREFI()) * 1e-9) / 1e9;
}

} // namespace

int
main()
{
    const auto dev = dram::ddr5Device32Gb();
    const double rank_gb = 32.0;  // 32 Gb x8 rank = 32 GB

    std::printf("Fig. 1: SFM bandwidth vs far-memory capacity "
                "(promotion rate 100%%)\n\n");
    std::printf("%8s %7s | %14s | %17s %16s\n", "SFM(GB)", "ranks",
                "CPU-SFM(GB/s)", "XFM avail (GB/s)",
                "XFM on DDR bus");
    for (double capacity : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
        CostParams p;
        p.extraGB = capacity;
        p.promotionRate = 1.0;
        FarMemoryCostModel m(p);
        const auto ranks =
            static_cast<unsigned>(capacity / rank_gb);
        const double xfm_avail =
            xfmPerRankGBps(dev, 3) * static_cast<double>(ranks);
        std::printf("%8.0f %7u | %14.1f | %17.1f %16.1f\n", capacity,
                    ranks, m.sfmMemoryBandwidthGBps(), xfm_avail,
                    0.0);
    }

    std::printf("\nPer-rank XFM bandwidth by access budget "
                "(32Gb DDR5 device):\n");
    for (unsigned n : {1u, 2u, 3u, 4u}) {
        std::printf("  %u accesses/tRFC: %.2f GB/s per rank\n", n,
                    xfmPerRankGBps(dev, n));
    }

    std::printf("\nRequired per-rank SFM bandwidth (512 GB across 16 "
                "ranks):\n");
    for (double rate : {0.15, 0.5, 1.0}) {
        CostParams p;
        p.promotionRate = rate;
        FarMemoryCostModel m(p);
        // Read+write on the DIMM side, split over the ranks.
        const double per_rank =
            m.sfmMemoryBandwidthGBps() / 2.0 / 16.0;
        std::printf("  PR %3.0f%%: %.2f GB/s per rank (vs %.2f GB/s "
                    "XFM budget at 3 acc/tRFC)\n",
                    rate * 100, per_rank, xfmPerRankGBps(dev, 3));
    }
    std::printf("\nXFM eliminates the DDR-channel bandwidth of SFM "
                "for capacities up to ~1 TB (Sec. 8).\n");

    // Sec. 4.3: the energy angle of the same substitution.
    costmodel::DataMovementEnergy energy;
    CostParams p;
    p.promotionRate = 1.0;
    FarMemoryCostModel m(p);
    const double bytes_per_year =
        m.gbSwappedPerMin() * 2.0 * 1e9 * 525960.0;  // in+out
    std::printf("\nData-movement energy for 512 GB SFM at 100%% "
                "promotion (per year):\n");
    std::printf("  over the DDR channel (CPU path): %.1f kWh\n",
                energy.cpuPathJoules(bytes_per_year) / 3.6e6);
    std::printf("  over on-DIMM links (XFM path)  : %.1f kWh "
                "(%.0f%% saved, paper: 69%%)\n",
                energy.nmaPathJoules(bytes_per_year) / 3.6e6,
                100.0 * energy.savingsFraction());
    return 0;
}
