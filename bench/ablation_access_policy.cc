/**
 * @file
 * Ablation (DESIGN.md §5.2): how much of XFM's service capacity
 * comes from conditional piggybacking vs SALP random accesses?
 *
 * Three policies at a fixed workload (100% promotion, 4 MB SPM,
 * 3 accesses/tRFC):
 *  - combined       : tuned controller + 1 random slot (XFM)
 *  - conditional-only: random slots disabled — promotions must
 *                      wait for their source row's refresh turn
 *  - random-only    : no row alignment — every access competes for
 *                      the single random slot
 *
 * Also sweeps the TRR-slack extension (extra random slots from
 * unused Target-Row-Refresh cycles, Sec. 5).
 */

#include <cstdio>

#include "swap_sim.hh"

using namespace xfm;
using namespace xfm::bench;

namespace
{

void
report(const char *name, const SwapSimResult &r)
{
    std::printf("%-18s %9.1f%% %10.1f%% %9.1f%% %12llu %10llu\n",
                name, r.fallbackPercent(),
                100.0 * r.conditionalShare(),
                100.0 * (1.0 - r.conditionalShare()),
                (unsigned long long)r.subarrayRetries,
                (unsigned long long)r.trrSlotsUsed);
}

} // namespace

int
main()
{
    std::printf("Ablation: access-policy split (100%% promotion, "
                "4 MB SPM, 3 accesses/tRFC)\n\n");
    std::printf("%-18s %10s %11s %10s %12s %10s\n", "policy",
                "fallback", "cond-share", "rand-share", "subarr-retry",
                "TRR-used");

    SwapSimConfig base;
    base.promotionRate = 1.0;
    base.spmBytes = mib(4);
    base.accessesPerTrfc = 3;
    base.simTime = milliseconds(60.0);

    report("combined (XFM)", runSwapSim(base));

    SwapSimConfig cond_only = base;
    cond_only.maxRandomPerWindow = 0;
    report("conditional-only", runSwapSim(cond_only));

    SwapSimConfig rand_only = base;
    rand_only.alignRows = false;
    report("random-only", runSwapSim(rand_only));

    std::printf("\nTRR slack extension (random-only placement, 1 "
                "base access/tRFC):\n");
    std::printf("%-18s %10s %11s %10s %12s %10s\n", "trr slots",
                "fallback", "cond-share", "rand-share", "subarr-retry",
                "TRR-used");
    for (std::uint32_t trr : {0u, 1u, 2u}) {
        SwapSimConfig sc = base;
        sc.accessesPerTrfc = 1;
        sc.trrRandomSlots = trr;
        char label[32];
        std::snprintf(label, sizeof(label), "+%u TRR", trr);
        report(label, runSwapSim(sc));
    }

    std::printf("\nTakeaway: neither mechanism alone sustains the "
                "full swap rate — conditional accesses carry the "
                "schedulable traffic (demotions, write-backs) while "
                "random/TRR slots serve the promotions whose "
                "placement is fixed.\n");
    return 0;
}
