/**
 * @file
 * Reproduces Table 1: DDR5 device configuration (rows per bank,
 * banks per chip, tRFC, rows refreshed per tRFC, subarrays per
 * bank) plus the derived conditional-access budget per tRFC that
 * Sec. 5 computes (4 / 3 / 2 accesses for 32 / 16 / 8 Gb chips).
 */

#include <cstdio>
#include <vector>

#include "dram/ddr_config.hh"

using namespace xfm;
using namespace xfm::dram;

int
main()
{
    const std::vector<DeviceConfig> devices = {
        ddr5Device8Gb(), ddr5Device16Gb(), ddr5Device32Gb()
    };

    std::printf("Table 1: DDR5 device configuration [60]\n\n");
    std::printf("%-34s %8s %8s %8s\n", "Device", "8Gb", "16Gb",
                "32Gb");
    std::printf("%-34s", "#Rows per bank");
    for (const auto &d : devices)
        std::printf(" %7uK", d.rowsPerBank / 1024);
    std::printf("\n%-34s", "# Banks per chip");
    for (const auto &d : devices)
        std::printf(" %8u", d.banksPerChip);
    std::printf("\n%-34s", "tRFC (all bank refresh, ns)");
    for (const auto &d : devices)
        std::printf(" %8.0f", ticksToNs(d.tRFC));
    std::printf("\n%-34s", "#Rows of a bank ref during tRFC");
    for (const auto &d : devices)
        std::printf(" %8u", d.rowsPerRefresh);
    std::printf("\n%-34s", "#Subarrays per bank");
    for (const auto &d : devices)
        std::printf(" %8u", d.subarraysPerBank);

    std::printf("\n\nDerived (Sec. 5):\n");
    std::printf("%-34s", "max 4KiB conditional acc / tRFC");
    for (const auto &d : devices)
        std::printf(" %8u", maxAccessesPerTrfc(d));
    std::printf("\n%-34s", "tREFI (us)");
    for (const auto &d : devices)
        std::printf(" %8.2f", ticksToUs(d.tREFI()));
    std::printf("\n%-34s", "rank locked by refresh (%)");
    for (const auto &d : devices)
        std::printf(" %8.2f", 100.0 * static_cast<double>(d.tRFC)
                                  / static_cast<double>(d.tREFI()));
    std::printf("\n\nConsistency: rowsPerRefresh x 8192 REFs covers "
                "every row each 32 ms retention window:\n");
    for (const auto &d : devices) {
        std::printf("  %-14s %5u x %u = %6u rows (bank has %u)\n",
                    d.name.c_str(), d.rowsPerRefresh,
                    d.refCommandsPerRetention,
                    d.rowsPerRefresh * d.refCommandsPerRetention,
                    d.rowsPerBank);
    }
    return 0;
}
