/**
 * @file
 * Ablation (paper Sec. 6, "SFM Compaction"): internal fragmentation
 * in the zsmalloc-style pool under swap churn, and the cost of the
 * memcpy-based compaction that xfm_compact() exposes.
 *
 * Policies:
 *  - never      : holes accumulate until allocation fails
 *  - on-failure : compact only when an insert fails (zswap default)
 *  - periodic   : compact every N operations (controller-initiated,
 *                 the "manual compaction to avoid unpredictable
 *                 overheads" option the paper describes)
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "dram/phys_mem.hh"
#include "sfm/zpool.hh"

using namespace xfm;
using namespace xfm::sfm;

namespace
{

enum class Policy
{
    Never,
    OnFailure,
    Periodic,
};

struct Outcome
{
    std::uint64_t inserted = 0;
    std::uint64_t failed = 0;
    std::uint64_t compactions = 0;
    std::uint64_t memcpyBytes = 0;
    std::uint64_t peakFragmentation = 0;
};

Outcome
runChurn(Policy policy, std::uint64_t ops)
{
    dram::PhysMem mem(mib(64));
    ZPool pool(mem, 0, mib(2));
    Rng rng(77);
    std::vector<ZHandle> live;
    Outcome o;

    for (std::uint64_t i = 0; i < ops; ++i) {
        if (policy == Policy::Periodic && i % 512 == 0)
            pool.compact();

        // Target ~75% of capacity in *live* bytes so every policy
        // attempts the same insert pressure; fragmentation then
        // determines who can actually satisfy it.
        const bool insert =
            pool.usedBytes() < pool.capacityBytes() * 75 / 100
            || live.empty();
        if (insert) {
            // Compressed-page-like sizes: 300..3500 bytes.
            const auto size = static_cast<std::uint32_t>(
                300 + rng.uniformInt(3200));
            ZHandle h = pool.insert(Bytes(size, 0x5A));
            if (h == invalidZHandle
                && policy != Policy::Never) {
                pool.compact();
                h = pool.insert(Bytes(size, 0x5A));
            }
            if (h == invalidZHandle)
                ++o.failed;
            else
                live.push_back(h);
            ++o.inserted;
        } else {
            const auto idx = rng.uniformInt(live.size());
            pool.erase(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
        o.peakFragmentation = std::max(o.peakFragmentation,
                                       pool.fragmentedBytes());
    }
    o.compactions = pool.stats().compactions;
    o.memcpyBytes = pool.stats().compactionMemcpyBytes;
    return o;
}

} // namespace

int
main()
{
    constexpr std::uint64_t ops = 60000;
    std::printf("Ablation: ZPool compaction policy under swap churn "
                "(2 MiB pool, ~75%% live occupancy, %llu ops)\n\n",
                (unsigned long long)ops);
    std::printf("%-12s %10s %10s %12s %14s %16s\n", "policy",
                "inserts", "failures", "compactions",
                "memcpy bytes", "peak frag bytes");

    const struct
    {
        Policy policy;
        const char *name;
    } policies[] = {
        {Policy::Never, "never"},
        {Policy::OnFailure, "on-failure"},
        {Policy::Periodic, "periodic"},
    };
    for (const auto &p : policies) {
        const auto o = runChurn(p.policy, ops);
        std::printf("%-12s %10llu %10llu %12llu %14llu %16llu\n",
                    p.name, (unsigned long long)o.inserted,
                    (unsigned long long)o.failed,
                    (unsigned long long)o.compactions,
                    (unsigned long long)o.memcpyBytes,
                    (unsigned long long)o.peakFragmentation);
    }
    std::printf("\nOn-failure compaction eliminates allocation "
                "failures at a modest memcpy cost; periodic "
                "compaction trades extra memcpys for bounded "
                "fragmentation (predictable overheads, Sec. 6).\n");
    return 0;
}
