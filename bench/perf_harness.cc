/**
 * @file
 * perf_harness: host wall-clock throughput of the simulator's hot
 * paths, before/after comparable via BENCH_PERF.json.
 *
 * Four phases:
 *   0. codec — per-codec compress/decompress MB/s over the corpus
 *      kinds, measured twice on the same binary: hot paths on
 *      (SWAR match extension, chain prefilter, batched Huffman)
 *      and forced scalar via compress::hotpaths. The compressed
 *      bytes must be identical between the two runs — that parity
 *      IS a gate — while the speedup itself is an honest per-host
 *      measurement.
 *   1. cpu_pipeline — pure-CPU swap-out/in cycles on an 8-DIMM
 *      XfmBackend over the mixed-corpus page set, swept over
 *      worker counts {1, 2, 8}. Reports pages/sec and checks that
 *      the backend's counters are identical for every worker count
 *      (the determinism contract).
 *   2. event_kernel — self-rescheduling event chains plus
 *      deschedule churn on a bare EventQueue. Reports events/sec.
 *   3. system — a short xfmsim-style full-system run (zipfian
 *      application over the XFM backend with refresh running),
 *      swept over worker counts. Reports sim-ticks/sec.
 *
 * The measured speedup is printed honestly: on a single-core host
 * the worker sweep cannot beat 1x, and the harness never fails
 * because of the ratio — it is a measurement, not a gate.
 *
 * Usage: perf_harness [--smoke] [--out FILE]
 *   --smoke   tiny sizes (CI smoke test; seconds, not minutes)
 *   --out     JSON destination (default BENCH_PERF.json)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hh"
#include "compress/compressor.hh"
#include "compress/corpus.hh"
#include "compress/hotpaths.hh"
#include "system/system.hh"
#include "xfm/xfm_backend.hh"

using namespace xfm;

namespace
{

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The 6-class page mix the compression tests exercise. */
const std::vector<compress::CorpusKind> pageMix = {
    compress::CorpusKind::KeyValue,   compress::CorpusKind::Json,
    compress::CorpusKind::LogLines,   compress::CorpusKind::EnglishText,
    compress::CorpusKind::SourceCode, compress::CorpusKind::Html,
};

struct CodecResult
{
    compress::Algorithm algo;
    compress::CorpusKind kind;
    double compFastMBps = 0.0;
    double compScalarMBps = 0.0;
    double decFastMBps = 0.0;
    double decScalarMBps = 0.0;
    bool identical = false;  ///< fast and scalar compressed bytes
};

/**
 * Phase 0: one (codec, corpus) cell. Both passes compress and then
 * decompress the same page set; the fast pass's compressed blocks
 * must equal the scalar pass's byte for byte.
 */
CodecResult
runCodecCell(compress::Algorithm algo, compress::CorpusKind kind,
             std::size_t npages, std::size_t reps)
{
    const auto codec = compress::makeCompressor(algo);
    std::vector<Bytes> pages;
    pages.reserve(npages);
    for (std::size_t p = 0; p < npages; ++p)
        pages.push_back(compress::generateCorpus(
            kind, p, pageBytes));
    const double raw_mb = static_cast<double>(npages) * pageBytes
        * static_cast<double>(reps) / 1e6;

    const auto pass = [&](bool fast, std::vector<Bytes> &blocks,
                          double &comp_mbps, double &dec_mbps) {
        compress::hotpaths::ScopedToggle s(
            compress::hotpaths::swarMatch, fast);
        compress::hotpaths::ScopedToggle b(
            compress::hotpaths::batchedHuffman, fast);
        blocks.assign(npages, Bytes{});
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            for (std::size_t p = 0; p < npages; ++p)
                codec->compressInto(pages[p], blocks[p]);
        const double comp_s = wallSeconds(t0);
        Bytes out;
        t0 = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < reps; ++r)
            for (std::size_t p = 0; p < npages; ++p)
                codec->decompressInto(blocks[p], out);
        const double dec_s = wallSeconds(t0);
        comp_mbps = comp_s > 0.0 ? raw_mb / comp_s : 0.0;
        dec_mbps = dec_s > 0.0 ? raw_mb / dec_s : 0.0;
    };

    CodecResult r;
    r.algo = algo;
    r.kind = kind;
    std::vector<Bytes> fast_blocks;
    std::vector<Bytes> scalar_blocks;
    pass(true, fast_blocks, r.compFastMBps, r.decFastMBps);
    pass(false, scalar_blocks, r.compScalarMBps, r.decScalarMBps);
    r.identical = fast_blocks == scalar_blocks;
    return r;
}

struct PipelineResult
{
    std::size_t workers = 1;
    std::uint64_t swaps = 0;
    double wallS = 0.0;
    double pagesPerSec = 0.0;
    /** Counter fingerprint; must match across worker counts. */
    std::uint64_t fingerprint = 0;
};

/** Phase 1: swap cycles with the CPU pipeline only. */
PipelineResult
runCpuPipeline(std::size_t workers, std::uint64_t pages,
               std::size_t cycles)
{
    EventQueue eq;
    xfmsys::XfmSystemConfig cfg;
    cfg.numDimms = 8;
    cfg.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.dimmMem.channels = 1;
    cfg.dimmMem.dimmsPerChannel = 1;
    cfg.dimmMem.ranksPerDimm = 1;
    cfg.localPages = pages;
    cfg.sfmBase = gib(1);
    cfg.sfmBytes = mib(64);
    cfg.algorithm = compress::Algorithm::ZstdLike;
    cfg.workers = workers;
    xfmsys::XfmBackend backend("bench", eq, cfg);

    for (sfm::VirtPage p = 0; p < pages; ++p) {
        backend.writePage(
            p, compress::generateCorpus(pageMix[p % pageMix.size()],
                                        p, pageBytes));
    }

    // No refresh is started, so the queue holds only swap
    // completions and run() drains it.
    PipelineResult r;
    r.workers = workers;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < cycles; ++c) {
        for (sfm::VirtPage p = 0; p < pages; ++p)
            backend.swapOut(p, /*allow_offload=*/false,
                            [](const sfm::SwapOutcome &) {});
        eq.run(eq.now() + seconds(10.0));
        for (sfm::VirtPage p = 0; p < pages; ++p)
            backend.swapIn(p, /*allow_offload=*/false,
                           [](const sfm::SwapOutcome &) {});
        eq.run(eq.now() + seconds(10.0));
    }
    r.wallS = wallSeconds(t0);
    r.swaps = 2 * cycles * pages;
    r.pagesPerSec = r.wallS > 0.0 ? r.swaps / r.wallS : 0.0;
    const auto &st = backend.stats();
    r.fingerprint = st.bytesCompressed + 3 * st.bytesDecompressed
        + 5 * st.cpuCycles + 7 * backend.storedCompressedBytes();
    return r;
}

struct EventKernelResult
{
    std::uint64_t events = 0;
    double wallS = 0.0;
    double eventsPerSec = 0.0;
};

/** Phase 2: pooled event kernel churn. */
EventKernelResult
runEventKernel(std::size_t chains, std::uint64_t events_per_chain)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // Each chain re-schedules itself and keeps one decoy event
    // cancelled per step, so the slab recycler and the tombstone
    // compactor are both on the measured path.
    std::vector<std::function<void()>> bodies(chains);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < chains; ++c) {
        bodies[c] = [&, c] {
            ++fired;
            const auto decoy =
                eq.scheduleIn(seconds(1.0), [] {}, 10 + (c % 5));
            eq.deschedule(decoy);
            if (fired < events_per_chain * chains)
                eq.scheduleIn(1 + c % 7, bodies[c],
                              static_cast<int>(c % 3));
        };
        eq.scheduleIn(1 + c, bodies[c]);
    }
    eq.run(~Tick(0) >> 1);
    EventKernelResult r;
    r.wallS = wallSeconds(t0);
    r.events = fired;
    r.eventsPerSec = r.wallS > 0.0 ? fired / r.wallS : 0.0;
    return r;
}

struct SystemResult
{
    std::size_t workers = 1;
    double simSeconds = 0.0;
    double wallS = 0.0;
    double simTicksPerSec = 0.0;
    std::uint64_t fingerprint = 0;
};

/** Phase 3: full-system run, sim-ticks of progress per wall-second. */
SystemResult
runSystem(std::size_t workers, double run_seconds)
{
    EventQueue eq;
    system::SystemConfig cfg;
    cfg.backend = system::BackendKind::Xfm;
    cfg.pages = 512;
    cfg.sfmBytes = mib(16);
    cfg.xfmDimms = 4;
    cfg.workers = workers;
    system::System sys("perf", eq, cfg);
    for (sfm::VirtPage p = 0; p < cfg.pages; ++p) {
        sys.writePage(
            p, compress::generateCorpus(pageMix[p % pageMix.size()],
                                        p, pageBytes));
    }
    sys.start();

    Rng rng(1);
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    const Tick gap = static_cast<Tick>(1e12 / 50000.0);
    std::function<void(Tick)> drive = [&](Tick when) {
        if (when > seconds(run_seconds))
            return;
        eq.schedule(when, [&, when] {
            if (sys.access(rng.zipf(cfg.pages, 0.9)))
                ++hits;
            else
                ++faults;
            drive(when + gap);
        });
    };
    const auto t0 = std::chrono::steady_clock::now();
    drive(gap);
    eq.run(seconds(run_seconds));
    SystemResult r;
    r.workers = workers;
    r.wallS = wallSeconds(t0);
    r.simSeconds = run_seconds;
    r.simTicksPerSec =
        r.wallS > 0.0 ? seconds(run_seconds) / r.wallS : 0.0;
    r.fingerprint = hits + 3 * faults
        + 5 * sys.backend().stats().bytesCompressed
        + 7 * sys.backend().storedCompressedBytes();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_PERF.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: perf_harness [--smoke] [--out FILE]\n");
            return 1;
        }
    }

    const std::vector<std::size_t> sweep = {1, 2, 8};
    const std::uint64_t pipe_pages = smoke ? 48 : 384;
    const std::size_t pipe_cycles = smoke ? 2 : 8;
    const std::size_t ek_chains = smoke ? 16 : 64;
    const std::uint64_t ek_events = smoke ? 2000 : 40000;
    const double sys_seconds = smoke ? 0.02 : 0.2;

    std::printf("perf_harness%s: %u hardware threads\n\n",
                smoke ? " (smoke)" : "",
                std::thread::hardware_concurrency());

    const std::size_t codec_pages = smoke ? 8 : 48;
    const std::size_t codec_reps = smoke ? 2 : 6;
    const std::vector<compress::Algorithm> codec_algos = {
        compress::Algorithm::LzFast, compress::Algorithm::Deflate,
        compress::Algorithm::ZstdLike};
    const std::vector<compress::CorpusKind> codec_kinds = {
        compress::CorpusKind::EnglishText,
        compress::CorpusKind::SourceCode,
        compress::CorpusKind::Json,
        compress::CorpusKind::Html,
        compress::CorpusKind::LogLines,
        compress::CorpusKind::ZeroHeavy,
        compress::CorpusKind::RandomBytes,
    };
    std::printf("phase 0: codec (%zu pages x %zu reps per cell; "
                "fast vs forced-scalar)\n",
                codec_pages, codec_reps);
    std::vector<CodecResult> codecr;
    bool codec_identical = true;
    double text_speedup_log = 0.0;
    std::size_t text_cells = 0;
    for (const auto algo : codec_algos) {
        for (const auto kind : codec_kinds) {
            codecr.push_back(
                runCodecCell(algo, kind, codec_pages, codec_reps));
            const auto &c = codecr.back();
            const double cs = c.compScalarMBps > 0.0
                ? c.compFastMBps / c.compScalarMBps : 0.0;
            const double ds = c.decScalarMBps > 0.0
                ? c.decFastMBps / c.decScalarMBps : 0.0;
            std::printf("  %-8s %-12s comp %7.1f MB/s (%4.2fx)  "
                        "dec %7.1f MB/s (%4.2fx)%s\n",
                        compress::algorithmName(algo).c_str(),
                        compress::corpusName(kind).c_str(),
                        c.compFastMBps, cs, c.decFastMBps, ds,
                        c.identical ? "" : "  BYTES DIFFER");
            codec_identical &= c.identical;
            if (kind == compress::CorpusKind::EnglishText
                || kind == compress::CorpusKind::SourceCode) {
                if (cs > 0.0 && ds > 0.0) {
                    text_speedup_log += std::log(cs) + std::log(ds);
                    text_cells += 2;
                }
            }
        }
    }
    const double text_speedup = text_cells
        ? std::exp(text_speedup_log
                   / static_cast<double>(text_cells))
        : 0.0;
    std::printf("  text/source geomean speedup: %.2fx  "
                "(compressed bytes %s)\n",
                text_speedup,
                codec_identical ? "identical" : "DIFFER");

    std::printf("\nphase 1: cpu_pipeline (8 DIMMs, %llu pages x %zu "
                "cycles)\n",
                (unsigned long long)pipe_pages, pipe_cycles);
    std::vector<PipelineResult> pipe;
    for (const auto w : sweep) {
        pipe.push_back(runCpuPipeline(w, pipe_pages, pipe_cycles));
        std::printf("  workers=%zu  %9.0f pages/s  (%.3f s, "
                    "%llu swaps)\n",
                    w, pipe.back().pagesPerSec, pipe.back().wallS,
                    (unsigned long long)pipe.back().swaps);
    }
    bool deterministic = true;
    for (const auto &r : pipe)
        deterministic &= r.fingerprint == pipe.front().fingerprint;
    const double speedup = pipe.front().pagesPerSec > 0.0
        ? pipe.back().pagesPerSec / pipe.front().pagesPerSec
        : 0.0;
    std::printf("  speedup workers=%zu vs 1: %.2fx  "
                "(counters %s across worker counts)\n",
                sweep.back(), speedup,
                deterministic ? "identical" : "DIFFER");

    std::printf("\nphase 2: event_kernel (%zu chains, ~%llu "
                "events)\n",
                ek_chains,
                (unsigned long long)(ek_chains * ek_events));
    const EventKernelResult ek = runEventKernel(ek_chains, ek_events);
    std::printf("  %12.0f events/s  (%.3f s, %llu fired)\n",
                ek.eventsPerSec, ek.wallS,
                (unsigned long long)ek.events);

    std::printf("\nphase 3: system (%.2f sim-seconds, zipfian "
                "app)\n",
                sys_seconds);
    std::vector<SystemResult> sysr;
    for (const auto w : sweep) {
        sysr.push_back(runSystem(w, sys_seconds));
        std::printf("  workers=%zu  %.3g sim-ticks/s  (%.3f s "
                    "wall)\n",
                    w, sysr.back().simTicksPerSec, sysr.back().wallS);
    }
    for (const auto &r : sysr)
        deterministic &= r.fingerprint == sysr.front().fingerprint;
    std::printf("  sim results %s across worker counts\n",
                deterministic ? "identical" : "DIFFER");

    std::string j = "{\n  \"schema\": \"xfm.perf_harness.v2\",\n";
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "  \"smoke\": %s,\n  \"hw_threads\": %u,\n"
                  "  \"deterministic\": %s,\n"
                  "  \"codec_identical\": %s,\n"
                  "  \"codec_text_speedup\": %.3f,\n",
                  smoke ? "true" : "false",
                  std::thread::hardware_concurrency(),
                  deterministic ? "true" : "false",
                  codec_identical ? "true" : "false", text_speedup);
    j += buf;
    j += "  \"codec\": [\n";
    for (std::size_t i = 0; i < codecr.size(); ++i) {
        const auto &c = codecr[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"algo\": \"%s\", \"corpus\": \"%s\", "
            "\"compress_fast_mbps\": %.1f, "
            "\"compress_scalar_mbps\": %.1f, "
            "\"decompress_fast_mbps\": %.1f, "
            "\"decompress_scalar_mbps\": %.1f, "
            "\"identical\": %s}%s\n",
            compress::algorithmName(c.algo).c_str(),
            compress::corpusName(c.kind).c_str(), c.compFastMBps,
            c.compScalarMBps, c.decFastMBps, c.decScalarMBps,
            c.identical ? "true" : "false",
            i + 1 < codecr.size() ? "," : "");
        j += buf;
    }
    j += "  ],\n  \"cpu_pipeline\": [\n";
    for (std::size_t i = 0; i < pipe.size(); ++i) {
        std::snprintf(buf, sizeof buf,
                      "    {\"workers\": %zu, \"pages_per_sec\": "
                      "%.1f, \"wall_s\": %.4f, \"swaps\": %llu}%s\n",
                      pipe[i].workers, pipe[i].pagesPerSec,
                      pipe[i].wallS,
                      (unsigned long long)pipe[i].swaps,
                      i + 1 < pipe.size() ? "," : "");
        j += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "  ],\n  \"speedup_w%zu_over_w1\": %.3f,\n",
                  sweep.back(), speedup);
    j += buf;
    std::snprintf(buf, sizeof buf,
                  "  \"event_kernel\": {\"events_per_sec\": %.1f, "
                  "\"wall_s\": %.4f, \"events\": %llu},\n",
                  ek.eventsPerSec, ek.wallS,
                  (unsigned long long)ek.events);
    j += buf;
    j += "  \"system\": [\n";
    for (std::size_t i = 0; i < sysr.size(); ++i) {
        std::snprintf(buf, sizeof buf,
                      "    {\"workers\": %zu, \"sim_ticks_per_sec\": "
                      "%.6g, \"wall_s\": %.4f}%s\n",
                      sysr[i].workers, sysr[i].simTicksPerSec,
                      sysr[i].wallS,
                      i + 1 < sysr.size() ? "," : "");
        j += buf;
    }
    j += "  ]\n}\n";

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "perf_harness: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());

    // Determinism and fast-vs-scalar byte parity are the contract;
    // the speedup ratios are measurements that depend on host cores
    // and are reported, not gated on.
    return (deterministic && codec_identical) ? 0 : 1;
}
