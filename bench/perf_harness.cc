/**
 * @file
 * perf_harness: host wall-clock throughput of the simulator's hot
 * paths, before/after comparable via BENCH_PERF.json.
 *
 * Three phases:
 *   1. cpu_pipeline — pure-CPU swap-out/in cycles on an 8-DIMM
 *      XfmBackend over the mixed-corpus page set, swept over
 *      worker counts {1, 2, 8}. Reports pages/sec and checks that
 *      the backend's counters are identical for every worker count
 *      (the determinism contract).
 *   2. event_kernel — self-rescheduling event chains plus
 *      deschedule churn on a bare EventQueue. Reports events/sec.
 *   3. system — a short xfmsim-style full-system run (zipfian
 *      application over the XFM backend with refresh running),
 *      swept over worker counts. Reports sim-ticks/sec.
 *
 * The measured speedup is printed honestly: on a single-core host
 * the worker sweep cannot beat 1x, and the harness never fails
 * because of the ratio — it is a measurement, not a gate.
 *
 * Usage: perf_harness [--smoke] [--out FILE]
 *   --smoke   tiny sizes (CI smoke test; seconds, not minutes)
 *   --out     JSON destination (default BENCH_PERF.json)
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.hh"
#include "compress/corpus.hh"
#include "system/system.hh"
#include "xfm/xfm_backend.hh"

using namespace xfm;

namespace
{

double
wallSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** The 6-class page mix the compression tests exercise. */
const std::vector<compress::CorpusKind> pageMix = {
    compress::CorpusKind::KeyValue,   compress::CorpusKind::Json,
    compress::CorpusKind::LogLines,   compress::CorpusKind::EnglishText,
    compress::CorpusKind::SourceCode, compress::CorpusKind::Html,
};

struct PipelineResult
{
    std::size_t workers = 1;
    std::uint64_t swaps = 0;
    double wallS = 0.0;
    double pagesPerSec = 0.0;
    /** Counter fingerprint; must match across worker counts. */
    std::uint64_t fingerprint = 0;
};

/** Phase 1: swap cycles with the CPU pipeline only. */
PipelineResult
runCpuPipeline(std::size_t workers, std::uint64_t pages,
               std::size_t cycles)
{
    EventQueue eq;
    xfmsys::XfmSystemConfig cfg;
    cfg.numDimms = 8;
    cfg.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.dimmMem.channels = 1;
    cfg.dimmMem.dimmsPerChannel = 1;
    cfg.dimmMem.ranksPerDimm = 1;
    cfg.localPages = pages;
    cfg.sfmBase = gib(1);
    cfg.sfmBytes = mib(64);
    cfg.algorithm = compress::Algorithm::ZstdLike;
    cfg.workers = workers;
    xfmsys::XfmBackend backend("bench", eq, cfg);

    for (sfm::VirtPage p = 0; p < pages; ++p) {
        backend.writePage(
            p, compress::generateCorpus(pageMix[p % pageMix.size()],
                                        p, pageBytes));
    }

    // No refresh is started, so the queue holds only swap
    // completions and run() drains it.
    PipelineResult r;
    r.workers = workers;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < cycles; ++c) {
        for (sfm::VirtPage p = 0; p < pages; ++p)
            backend.swapOut(p, /*allow_offload=*/false,
                            [](const sfm::SwapOutcome &) {});
        eq.run(eq.now() + seconds(10.0));
        for (sfm::VirtPage p = 0; p < pages; ++p)
            backend.swapIn(p, /*allow_offload=*/false,
                           [](const sfm::SwapOutcome &) {});
        eq.run(eq.now() + seconds(10.0));
    }
    r.wallS = wallSeconds(t0);
    r.swaps = 2 * cycles * pages;
    r.pagesPerSec = r.wallS > 0.0 ? r.swaps / r.wallS : 0.0;
    const auto &st = backend.stats();
    r.fingerprint = st.bytesCompressed + 3 * st.bytesDecompressed
        + 5 * st.cpuCycles + 7 * backend.storedCompressedBytes();
    return r;
}

struct EventKernelResult
{
    std::uint64_t events = 0;
    double wallS = 0.0;
    double eventsPerSec = 0.0;
};

/** Phase 2: pooled event kernel churn. */
EventKernelResult
runEventKernel(std::size_t chains, std::uint64_t events_per_chain)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    // Each chain re-schedules itself and keeps one decoy event
    // cancelled per step, so the slab recycler and the tombstone
    // compactor are both on the measured path.
    std::vector<std::function<void()>> bodies(chains);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < chains; ++c) {
        bodies[c] = [&, c] {
            ++fired;
            const auto decoy =
                eq.scheduleIn(seconds(1.0), [] {}, 10 + (c % 5));
            eq.deschedule(decoy);
            if (fired < events_per_chain * chains)
                eq.scheduleIn(1 + c % 7, bodies[c],
                              static_cast<int>(c % 3));
        };
        eq.scheduleIn(1 + c, bodies[c]);
    }
    eq.run(~Tick(0) >> 1);
    EventKernelResult r;
    r.wallS = wallSeconds(t0);
    r.events = fired;
    r.eventsPerSec = r.wallS > 0.0 ? fired / r.wallS : 0.0;
    return r;
}

struct SystemResult
{
    std::size_t workers = 1;
    double simSeconds = 0.0;
    double wallS = 0.0;
    double simTicksPerSec = 0.0;
    std::uint64_t fingerprint = 0;
};

/** Phase 3: full-system run, sim-ticks of progress per wall-second. */
SystemResult
runSystem(std::size_t workers, double run_seconds)
{
    EventQueue eq;
    system::SystemConfig cfg;
    cfg.backend = system::BackendKind::Xfm;
    cfg.pages = 512;
    cfg.sfmBytes = mib(16);
    cfg.xfmDimms = 4;
    cfg.workers = workers;
    system::System sys("perf", eq, cfg);
    for (sfm::VirtPage p = 0; p < cfg.pages; ++p) {
        sys.writePage(
            p, compress::generateCorpus(pageMix[p % pageMix.size()],
                                        p, pageBytes));
    }
    sys.start();

    Rng rng(1);
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    const Tick gap = static_cast<Tick>(1e12 / 50000.0);
    std::function<void(Tick)> drive = [&](Tick when) {
        if (when > seconds(run_seconds))
            return;
        eq.schedule(when, [&, when] {
            if (sys.access(rng.zipf(cfg.pages, 0.9)))
                ++hits;
            else
                ++faults;
            drive(when + gap);
        });
    };
    const auto t0 = std::chrono::steady_clock::now();
    drive(gap);
    eq.run(seconds(run_seconds));
    SystemResult r;
    r.workers = workers;
    r.wallS = wallSeconds(t0);
    r.simSeconds = run_seconds;
    r.simTicksPerSec =
        r.wallS > 0.0 ? seconds(run_seconds) / r.wallS : 0.0;
    r.fingerprint = hits + 3 * faults
        + 5 * sys.backend().stats().bytesCompressed
        + 7 * sys.backend().storedCompressedBytes();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_PERF.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: perf_harness [--smoke] [--out FILE]\n");
            return 1;
        }
    }

    const std::vector<std::size_t> sweep = {1, 2, 8};
    const std::uint64_t pipe_pages = smoke ? 48 : 384;
    const std::size_t pipe_cycles = smoke ? 2 : 8;
    const std::size_t ek_chains = smoke ? 16 : 64;
    const std::uint64_t ek_events = smoke ? 2000 : 40000;
    const double sys_seconds = smoke ? 0.02 : 0.2;

    std::printf("perf_harness%s: %u hardware threads\n\n",
                smoke ? " (smoke)" : "",
                std::thread::hardware_concurrency());

    std::printf("phase 1: cpu_pipeline (8 DIMMs, %llu pages x %zu "
                "cycles)\n",
                (unsigned long long)pipe_pages, pipe_cycles);
    std::vector<PipelineResult> pipe;
    for (const auto w : sweep) {
        pipe.push_back(runCpuPipeline(w, pipe_pages, pipe_cycles));
        std::printf("  workers=%zu  %9.0f pages/s  (%.3f s, "
                    "%llu swaps)\n",
                    w, pipe.back().pagesPerSec, pipe.back().wallS,
                    (unsigned long long)pipe.back().swaps);
    }
    bool deterministic = true;
    for (const auto &r : pipe)
        deterministic &= r.fingerprint == pipe.front().fingerprint;
    const double speedup = pipe.front().pagesPerSec > 0.0
        ? pipe.back().pagesPerSec / pipe.front().pagesPerSec
        : 0.0;
    std::printf("  speedup workers=%zu vs 1: %.2fx  "
                "(counters %s across worker counts)\n",
                sweep.back(), speedup,
                deterministic ? "identical" : "DIFFER");

    std::printf("\nphase 2: event_kernel (%zu chains, ~%llu "
                "events)\n",
                ek_chains,
                (unsigned long long)(ek_chains * ek_events));
    const EventKernelResult ek = runEventKernel(ek_chains, ek_events);
    std::printf("  %12.0f events/s  (%.3f s, %llu fired)\n",
                ek.eventsPerSec, ek.wallS,
                (unsigned long long)ek.events);

    std::printf("\nphase 3: system (%.2f sim-seconds, zipfian "
                "app)\n",
                sys_seconds);
    std::vector<SystemResult> sysr;
    for (const auto w : sweep) {
        sysr.push_back(runSystem(w, sys_seconds));
        std::printf("  workers=%zu  %.3g sim-ticks/s  (%.3f s "
                    "wall)\n",
                    w, sysr.back().simTicksPerSec, sysr.back().wallS);
    }
    for (const auto &r : sysr)
        deterministic &= r.fingerprint == sysr.front().fingerprint;
    std::printf("  sim results %s across worker counts\n",
                deterministic ? "identical" : "DIFFER");

    std::string j = "{\n  \"schema\": \"xfm.perf_harness.v1\",\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"smoke\": %s,\n  \"hw_threads\": %u,\n"
                  "  \"deterministic\": %s,\n",
                  smoke ? "true" : "false",
                  std::thread::hardware_concurrency(),
                  deterministic ? "true" : "false");
    j += buf;
    j += "  \"cpu_pipeline\": [\n";
    for (std::size_t i = 0; i < pipe.size(); ++i) {
        std::snprintf(buf, sizeof buf,
                      "    {\"workers\": %zu, \"pages_per_sec\": "
                      "%.1f, \"wall_s\": %.4f, \"swaps\": %llu}%s\n",
                      pipe[i].workers, pipe[i].pagesPerSec,
                      pipe[i].wallS,
                      (unsigned long long)pipe[i].swaps,
                      i + 1 < pipe.size() ? "," : "");
        j += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "  ],\n  \"speedup_w%zu_over_w1\": %.3f,\n",
                  sweep.back(), speedup);
    j += buf;
    std::snprintf(buf, sizeof buf,
                  "  \"event_kernel\": {\"events_per_sec\": %.1f, "
                  "\"wall_s\": %.4f, \"events\": %llu},\n",
                  ek.eventsPerSec, ek.wallS,
                  (unsigned long long)ek.events);
    j += buf;
    j += "  \"system\": [\n";
    for (std::size_t i = 0; i < sysr.size(); ++i) {
        std::snprintf(buf, sizeof buf,
                      "    {\"workers\": %zu, \"sim_ticks_per_sec\": "
                      "%.6g, \"wall_s\": %.4f}%s\n",
                      sysr[i].workers, sysr[i].simTicksPerSec,
                      sysr[i].wallS,
                      i + 1 < sysr.size() ? "," : "");
        j += buf;
    }
    j += "  ]\n}\n";

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "perf_harness: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());

    // Determinism is the contract; the speedup ratio is a
    // measurement that depends on host cores and is reported, not
    // gated on.
    return deterministic ? 0 : 1;
}
