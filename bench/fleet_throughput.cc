/**
 * @file
 * Fleet throughput scaling: service-layer behaviour as tenant count
 * grows 1 -> 16 on one shared set of XFM DIMMs.
 *
 * The contended resources are the per-tREFI offload slots and the
 * scratchpad: as tenants multiply, the QoS arbiter keeps the
 * latency class's fault tail flat while batch tenants absorb the
 * slowdown (CPU-fallback share rises). The closing table details
 * every tenant of the 16-way run: NMA vs CPU split, quota events,
 * and p99 demand-fault latency.
 */

#include <cstdio>
#include <memory>
#include <string>

#include "dram/ddr_config.hh"
#include "obs/registry.hh"
#include "service/service.hh"
#include "workload/fleet.hh"

using namespace xfm;

namespace
{

constexpr double simMs = 40.0;

/** Registry namespace of one tenant's metrics. */
std::string
tenantPrefix(service::TenantId id)
{
    return "svc.tenant" + std::to_string(id) + ".";
}

service::ServiceConfig
makeServiceConfig(std::size_t max_tenants)
{
    service::ServiceConfig cfg;
    cfg.registry.maxTenants = max_tenants;
    cfg.registry.pagesPerShard = 512;
    cfg.system.numDimms = 4;
    cfg.system.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.system.dimmMem.channels = 1;
    cfg.system.dimmMem.dimmsPerChannel = 1;
    cfg.system.dimmMem.ranksPerDimm = 1;
    cfg.system.sfmBase = gib(1);
    cfg.system.sfmBytes = mib(16);
    cfg.system.device.spmBytes = mib(2);
    cfg.system.device.queueDepth = 64;
    cfg.batchSpmCapBytes = mib(4);
    return cfg;
}

struct RunResult
{
    std::unique_ptr<EventQueue> eq;
    std::unique_ptr<service::FarMemoryService> svc;
    std::unique_ptr<workload::FleetDriver> fleet;
};

RunResult
runFleet(std::size_t tenants)
{
    RunResult r;
    r.eq = std::make_unique<EventQueue>();
    r.svc = std::make_unique<service::FarMemoryService>(
        "svc", *r.eq, makeServiceConfig(tenants));
    workload::FleetConfig fcfg;
    fcfg.numTenants = tenants;
    fcfg.pagesPerTenant = 128;
    fcfg.accessesPerSecond = 100000.0;
    r.fleet = std::make_unique<workload::FleetDriver>("fleet", *r.eq,
                                                      *r.svc, fcfg);
    r.svc->start();
    r.fleet->start();
    r.eq->run(milliseconds(simMs));
    return r;
}

} // namespace

int
main()
{
    std::printf("Fleet throughput scaling (%.0f ms per point, "
                "100k touches/s/tenant)\n\n", simMs);
    std::printf("%8s %10s %12s %8s %8s %8s %10s %12s\n", "tenants",
                "accesses", "touches/s", "faults", "swapOps", "nma%",
                "preempt", "latP99Ns");

    RunResult last;
    obs::Snapshot last_snap;
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
        RunResult r = runFleet(n);
        // All reported numbers come from the registry snapshot, the
        // same artifact xfmsim/fleet_sim export as stats.json.
        const obs::Snapshot snap = r.svc->metrics().snapshot();
        std::uint64_t accesses = 0, faults = 0, swap_ops = 0;
        std::uint64_t nma = 0, cpu = 0;
        double lat_p99 = 0.0;
        std::size_t lat_tenants = 0;
        for (std::size_t i = 0; i < r.fleet->numTenants(); ++i) {
            const auto id = r.fleet->tenantId(i);
            const std::string p = tenantPrefix(id);
            accesses += snap.u64(p + "accesses");
            faults += snap.u64(p + "demandFaults");
            swap_ops += snap.u64(p + "swapOuts")
                + snap.u64(p + "swapIns");
            nma += snap.u64(p + "nmaOps");
            cpu += snap.u64(p + "cpuOps");
            const auto &cfg = r.svc->registry().config(id);
            if (cfg.cls == service::PriorityClass::LatencySensitive) {
                lat_p99 += snap.value(p + "faultLatencyNs.p99");
                ++lat_tenants;
            }
        }
        const double nma_pct =
            nma + cpu ? 100.0 * nma / (nma + cpu) : 0.0;
        std::printf("%8zu %10llu %12.0f %8llu %8llu %7.1f%% %10llu "
                    "%12.0f\n",
                    n, (unsigned long long)accesses,
                    accesses / (simMs / 1000.0),
                    (unsigned long long)faults,
                    (unsigned long long)swap_ops, nma_pct,
                    (unsigned long long)
                        snap.u64("svc.arbiter.preemptions"),
                    lat_tenants ? lat_p99 / lat_tenants : 0.0);
        if (n == 16) {
            last = std::move(r);
            last_snap = snap;
        }
    }

    std::printf("\nPer-tenant detail at 16 tenants\n");
    std::printf("%-16s %8s %6s %9s %7s %7s %6s %8s %8s %10s\n",
                "tenant", "class", "wgt", "accesses", "faults",
                "nmaOps", "nma%", "qRej", "degrade", "p99Ns");
    for (std::size_t i = 0; i < last.fleet->numTenants(); ++i) {
        const auto id = last.fleet->tenantId(i);
        const auto &cfg = last.svc->registry().config(id);
        const std::string p = tenantPrefix(id);
        std::printf("%-16s %8s %6u %9llu %7llu %7llu %5.1f%% %8llu "
                    "%8llu %10.0f\n",
                    cfg.name.c_str(),
                    service::priorityClassName(cfg.cls), cfg.weight,
                    (unsigned long long)last_snap.u64(p + "accesses"),
                    (unsigned long long)
                        last_snap.u64(p + "demandFaults"),
                    (unsigned long long)last_snap.u64(p + "nmaOps"),
                    100.0 * last_snap.value(p + "nmaFraction"),
                    (unsigned long long)
                        last_snap.u64(p + "quotaRejects"),
                    (unsigned long long)
                        last_snap.u64(p + "degradedToCpu"),
                    last_snap.value(p + "faultLatencyNs.p99"));
    }
    return 0;
}
