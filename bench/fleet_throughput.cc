/**
 * @file
 * Fleet throughput scaling: service-layer behaviour as tenant count
 * grows 1 -> 16 on one shared set of XFM DIMMs, plus the sharded
 * event-core sweep (PR 7).
 *
 * The contended resources are the per-tREFI offload slots and the
 * scratchpad: as tenants multiply, the QoS arbiter keeps the
 * latency class's fault tail flat while batch tenants absorb the
 * slowdown (CPU-fallback share rises). The closing table details
 * every tenant of the 16-way run: NMA vs CPU split, quota events,
 * and p99 demand-fault latency.
 *
 * Usage: fleet_throughput [--sweep | --smoke] [--out FILE]
 *
 *   (no flags)  the legacy tenant-scaling table (1 -> 16 tenants)
 *   --sweep     1000-tenant x 8-channel fleet replayed at
 *               sim_shards in {1, 2, 8}; per-point wall time and
 *               events/sec land in BENCH_FLEET.json (schema
 *               xfm.fleet_sweep.v1). The metric snapshot of every
 *               point is byte-compared against sim_shards = 1; the
 *               process exits non-zero ONLY on divergence, never on
 *               a missing speedup (whether sharding pays off is a
 *               host property, the report is honest either way).
 *   --smoke     the same sweep at CI scale (64 tenants, 4 ms).
 *   --out FILE  JSON destination (default BENCH_FLEET.json).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dram/ddr_config.hh"
#include "obs/registry.hh"
#include "service/service.hh"
#include "workload/fleet.hh"

using namespace xfm;

namespace
{

constexpr double simMs = 40.0;

/** Registry namespace of one tenant's metrics. */
std::string
tenantPrefix(service::TenantId id)
{
    return "svc.tenant" + std::to_string(id) + ".";
}

service::ServiceConfig
makeServiceConfig(std::size_t max_tenants, std::size_t dimms = 4)
{
    service::ServiceConfig cfg;
    cfg.registry.maxTenants = max_tenants;
    cfg.registry.pagesPerShard = 512;
    cfg.system.numDimms = dimms;
    cfg.system.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.system.dimmMem.channels = 1;
    cfg.system.dimmMem.dimmsPerChannel = 1;
    cfg.system.dimmMem.ranksPerDimm = 1;
    cfg.system.sfmBase = gib(1);
    cfg.system.sfmBytes = mib(16);
    cfg.system.device.spmBytes = mib(2);
    cfg.system.device.queueDepth = 64;
    cfg.batchSpmCapBytes = mib(4);
    return cfg;
}

struct RunResult
{
    std::unique_ptr<EventQueue> eq;
    std::unique_ptr<service::FarMemoryService> svc;
    std::unique_ptr<workload::FleetDriver> fleet;
};

RunResult
runFleet(std::size_t tenants)
{
    RunResult r;
    r.eq = std::make_unique<EventQueue>();
    r.svc = std::make_unique<service::FarMemoryService>(
        "svc", *r.eq, makeServiceConfig(tenants));
    workload::FleetConfig fcfg;
    fcfg.numTenants = tenants;
    fcfg.pagesPerTenant = 128;
    fcfg.accessesPerSecond = 100000.0;
    r.fleet = std::make_unique<workload::FleetDriver>("fleet", *r.eq,
                                                      *r.svc, fcfg);
    r.svc->start();
    r.fleet->start();
    r.eq->run(milliseconds(simMs));
    return r;
}

// ---------------------------------------------------------------
// Sharded event-core sweep (--sweep / --smoke).
// ---------------------------------------------------------------

struct SweepPoint
{
    std::size_t shards = 1;
    double wallS = 0.0;
    std::uint64_t events = 0;       ///< events executed by the core
    std::uint64_t barriers = 0;     ///< conservative window barriers
    std::uint64_t staged = 0;       ///< events staged in parallel
    double eventsPerSec = 0.0;
    std::string snapshot;           ///< full metric snapshot text
};

/**
 * One full fleet run on a sharded event core. Everything the
 * service exports is captured so the sweep can prove byte-identity
 * across shard counts, not just eyeball a summary.
 */
SweepPoint
runShardedFleet(std::size_t shards, std::size_t tenants,
                std::size_t dimms, double sim_ms)
{
    SweepPoint pt;
    pt.shards = shards;

    EventQueueConfig eq_cfg;
    eq_cfg.shards = shards;
    eq_cfg.windowTicks = dram::ddr5Device32Gb().tREFI();
    eq_cfg.drainWorkers =
        std::max<std::size_t>(std::thread::hardware_concurrency(), 2);
    EventQueue eq(eq_cfg);

    service::FarMemoryService svc(
        "svc", eq, makeServiceConfig(tenants, dimms));
    workload::FleetConfig fcfg;
    fcfg.numTenants = tenants;
    fcfg.pagesPerTenant = 128;
    fcfg.accessesPerSecond = 100000.0;
    workload::FleetDriver fleet("fleet", eq, svc, fcfg);

    const auto t0 = std::chrono::steady_clock::now();
    svc.start();
    fleet.start();
    eq.run(milliseconds(sim_ms));
    pt.wallS = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    pt.events = eq.executed();
    pt.barriers = eq.barriers();
    pt.staged = eq.stagedEvents();
    pt.eventsPerSec =
        pt.wallS > 0.0 ? static_cast<double>(pt.events) / pt.wallS
                       : 0.0;
    pt.snapshot = svc.metrics().snapshot().renderText();
    return pt;
}

/** Write @p text to @p path; returns false on failure. */
bool
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

int
runSweep(bool smoke, const std::string &out_path)
{
    // Full sweep: fleet scale in tenants (the contended axis), a
    // shorter horizon than the legacy table keeps the three points
    // to minutes of wall clock.
    const std::size_t tenants = smoke ? 64 : 1000;
    const std::size_t dimms = 8;
    const double sim_ms = smoke ? 4.0 : 10.0;
    const std::vector<std::size_t> shard_counts = {1, 2, 8};

    std::printf("Fleet event-core sweep%s: %zu tenants, %zu DIMM "
                "channels, %.0f ms simulated\n\n",
                smoke ? " (smoke)" : "", tenants, dimms, sim_ms);
    std::printf("%8s %10s %14s %10s %12s %10s\n", "shards", "wall_s",
                "events/s", "barriers", "stagedEvts", "identical");

    std::vector<SweepPoint> points;
    bool divergence = false;
    for (std::size_t shards : shard_counts) {
        points.push_back(
            runShardedFleet(shards, tenants, dimms, sim_ms));
        const SweepPoint &pt = points.back();
        const bool same = pt.snapshot == points.front().snapshot;
        divergence |= !same;
        std::printf("%8zu %10.3f %14.0f %10llu %12llu %10s\n",
                    pt.shards, pt.wallS, pt.eventsPerSec,
                    (unsigned long long)pt.barriers,
                    (unsigned long long)pt.staged,
                    same ? "yes" : "NO");
    }

    const double speedup =
        points.back().wallS > 0.0
            ? points.front().wallS / points.back().wallS
            : 0.0;
    // Honest reporting: the conservative barrier serialises commits,
    // so wall-clock gains only appear when staging dominates. If
    // this host shows none, say so; the byte-identity result is the
    // property the sweep certifies.
    std::printf("\nshards=%zu wall-clock speedup over shards=1: "
                "%.2fx%s\n",
                shard_counts.back(), speedup,
                speedup < 1.05
                    ? " (no speedup on this host; staging is "
                      "not the bottleneck)"
                    : "");
    std::printf("snapshots across shard counts: %s\n",
                divergence ? "DIVERGED" : "byte-identical");

    std::string j = "{\n  \"schema\": \"xfm.fleet_sweep.v1\",\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"smoke\": %s,\n  \"tenants\": %zu,\n"
                  "  \"dimms\": %zu,\n  \"sim_ms\": %.1f,\n"
                  "  \"hw_threads\": %u,\n"
                  "  \"identical_across_shards\": %s,\n"
                  "  \"speedup_s%zu_over_s1\": %.3f,\n",
                  smoke ? "true" : "false", tenants, dimms, sim_ms,
                  std::thread::hardware_concurrency(),
                  divergence ? "false" : "true",
                  shard_counts.back(), speedup);
    j += buf;
    j += "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::snprintf(
            buf, sizeof buf,
            "    {\"sim_shards\": %zu, \"wall_s\": %.4f, "
            "\"events\": %llu, \"events_per_sec\": %.1f, "
            "\"barriers\": %llu, \"staged_events\": %llu}%s\n",
            points[i].shards, points[i].wallS,
            (unsigned long long)points[i].events,
            points[i].eventsPerSec,
            (unsigned long long)points[i].barriers,
            (unsigned long long)points[i].staged,
            i + 1 < points.size() ? "," : "");
        j += buf;
    }
    j += "  ]\n}\n";
    if (!writeFile(out_path, j)) {
        std::fprintf(stderr, "fleet_throughput: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out_path.c_str());
    // Exit status: only cross-shard divergence is a failure.
    return divergence ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool sweep = false;
    bool smoke = false;
    std::string out_path = "BENCH_FLEET.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--sweep")) {
            sweep = true;
        } else if (!std::strcmp(argv[i], "--smoke")) {
            sweep = true;
            smoke = true;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: fleet_throughput [--sweep | "
                         "--smoke] [--out FILE]\n");
            return 1;
        }
    }
    if (sweep)
        return runSweep(smoke, out_path);

    std::printf("Fleet throughput scaling (%.0f ms per point, "
                "100k touches/s/tenant)\n\n", simMs);
    std::printf("%8s %10s %12s %8s %8s %8s %10s %12s\n", "tenants",
                "accesses", "touches/s", "faults", "swapOps", "nma%",
                "preempt", "latP99Ns");

    RunResult last;
    obs::Snapshot last_snap;
    for (std::size_t n : {1u, 2u, 4u, 8u, 16u}) {
        RunResult r = runFleet(n);
        // All reported numbers come from the registry snapshot, the
        // same artifact xfmsim/fleet_sim export as stats.json.
        const obs::Snapshot snap = r.svc->metrics().snapshot();
        std::uint64_t accesses = 0, faults = 0, swap_ops = 0;
        std::uint64_t nma = 0, cpu = 0;
        double lat_p99 = 0.0;
        std::size_t lat_tenants = 0;
        for (std::size_t i = 0; i < r.fleet->numTenants(); ++i) {
            const auto id = r.fleet->tenantId(i);
            const std::string p = tenantPrefix(id);
            accesses += snap.u64(p + "accesses");
            faults += snap.u64(p + "demandFaults");
            swap_ops += snap.u64(p + "swapOuts")
                + snap.u64(p + "swapIns");
            nma += snap.u64(p + "nmaOps");
            cpu += snap.u64(p + "cpuOps");
            const auto &cfg = r.svc->registry().config(id);
            if (cfg.cls == service::PriorityClass::LatencySensitive) {
                lat_p99 += snap.value(p + "faultLatencyNs.p99");
                ++lat_tenants;
            }
        }
        const double nma_pct =
            nma + cpu ? 100.0 * nma / (nma + cpu) : 0.0;
        std::printf("%8zu %10llu %12.0f %8llu %8llu %7.1f%% %10llu "
                    "%12.0f\n",
                    n, (unsigned long long)accesses,
                    accesses / (simMs / 1000.0),
                    (unsigned long long)faults,
                    (unsigned long long)swap_ops, nma_pct,
                    (unsigned long long)
                        snap.u64("svc.arbiter.preemptions"),
                    lat_tenants ? lat_p99 / lat_tenants : 0.0);
        if (n == 16) {
            last = std::move(r);
            last_snap = snap;
        }
    }

    std::printf("\nPer-tenant detail at 16 tenants\n");
    std::printf("%-16s %8s %6s %9s %7s %7s %6s %8s %8s %10s\n",
                "tenant", "class", "wgt", "accesses", "faults",
                "nmaOps", "nma%", "qRej", "degrade", "p99Ns");
    for (std::size_t i = 0; i < last.fleet->numTenants(); ++i) {
        const auto id = last.fleet->tenantId(i);
        const auto &cfg = last.svc->registry().config(id);
        const std::string p = tenantPrefix(id);
        std::printf("%-16s %8s %6u %9llu %7llu %7llu %5.1f%% %8llu "
                    "%8llu %10.0f\n",
                    cfg.name.c_str(),
                    service::priorityClassName(cfg.cls), cfg.weight,
                    (unsigned long long)last_snap.u64(p + "accesses"),
                    (unsigned long long)
                        last_snap.u64(p + "demandFaults"),
                    (unsigned long long)last_snap.u64(p + "nmaOps"),
                    100.0 * last_snap.value(p + "nmaFraction"),
                    (unsigned long long)
                        last_snap.u64(p + "quotaRejects"),
                    (unsigned long long)
                        last_snap.u64(p + "degradedToCpu"),
                    last_snap.value(p + "faultLatencyNs.p99"));
    }
    return 0;
}
