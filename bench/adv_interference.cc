/**
 * @file
 * adv_interference: victim tail latency under an RFM-starver tenant.
 *
 * One point per (attacker intensity, defense) pair plus a solo
 * baseline: a latency-sensitive victim services paced demand faults
 * against its far pages while an RFM-starver tenant hammers rows on
 * the victim's DIMM at the swept burst rate. With the QoS defense
 * off, forced RFMs saturate the per-bank RAA counters and the
 * victim's fault tail inflates; with the slot-debt ledger and abuse
 * detector on, the starver is throttled and the tail recovers.
 *
 * After each point the harness drains, promotes every victim far
 * page and audits the restored bytes against the generator corpus;
 * a FNV-1a fingerprint of all restored pages is compared across
 * configs. The exit code gates ONLY on this data audit — tail
 * numbers are measurements, reported in BENCH_ADV.json (schema
 * xfm.adv_sweep.v1) for CI to archive, never a pass/fail criterion.
 *
 * Usage: adv_interference [--smoke] [--out FILE]
 *   --smoke   fewer fault rounds per point (CI smoke test)
 *   --out     JSON destination (default BENCH_ADV.json)
 */

#include <cstdio>
#include <cstring>

#include <algorithm>
#include <string>
#include <vector>

#include "compress/corpus.hh"
#include "dram/ddr_config.hh"
#include "service/service.hh"
#include "workload/adversary.hh"

using namespace xfm;

namespace
{

constexpr std::uint64_t victimPages = 32;
constexpr std::uint64_t farPages = 16;

Bytes
pageFor(sfm::VirtPage p)
{
    return compress::generateCorpus(compress::CorpusKind::Json, p + 7,
                                    pageBytes);
}

std::uint64_t
fnv1a(std::uint64_t h, ByteSpan data)
{
    for (const std::uint8_t b : data) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

double
percentile(std::vector<double> v, int pct)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    return v[(v.size() - 1) * pct / 100];
}

struct Point
{
    std::string label;
    bool attack = false;
    bool defense = false;
    double burstsPerSecond = 0.0;
    std::uint64_t samples = 0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    std::uint64_t rfmCommands = 0;
    std::uint64_t rfmStolenSlots = 0;
    bool attackerThrottled = false;
    std::uint64_t attackerFlags = 0;
    std::uint64_t suppressedBursts = 0;
    std::uint64_t auditHash = 0;
    bool auditOk = false;
};

/** The same 4-tenant REFpb/RFM service the adversary tests pin. */
service::ServiceConfig
advConfig(bool defense)
{
    service::ServiceConfig cfg;
    cfg.registry.maxTenants = 4;
    cfg.registry.pagesPerShard = 64;
    cfg.system.numDimms = 4;
    cfg.system.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.system.dimmMem.channels = 1;
    cfg.system.dimmMem.dimmsPerChannel = 1;
    cfg.system.dimmMem.ranksPerDimm = 1;
    cfg.system.sfmBase = gib(1);
    cfg.system.sfmBytes = mib(8);
    cfg.system.device.spmBytes = mib(1);
    cfg.system.device.queueDepth = 64;
    // A fast host CPU keeps the demand-fault baseline dominated by
    // the swap itself, so RFM stalls show undiluted in the tail.
    cfg.system.cpuFreqGHz = 10.0;
    auto &dev = cfg.system.dimmMem.rank.device;
    dev.refreshMode = dram::RefreshMode::RefPb;
    dev.rfmRaaimt = 32;
    if (defense) {
        cfg.arbiter.reservedSlotFrac = 0.25;
        cfg.arbiter.slotDebt = true;
        cfg.arbiter.abuseEnabled = true;
        cfg.arbiter.abuseWindows = 16;
        cfg.arbiter.abuseConsecutive = 2;
        cfg.arbiter.abuseCooldown = milliseconds(10.0);
    }
    return cfg;
}

Point
runPoint(std::string label, double bursts_per_second, bool defense,
         int rounds)
{
    Point r;
    r.label = std::move(label);
    r.attack = bursts_per_second > 0.0;
    r.defense = defense;
    r.burstsPerSecond = bursts_per_second;

    EventQueue eq;
    service::ServiceConfig cfg = advConfig(defense);
    service::FarMemoryService svc("svc", eq, cfg);

    service::TenantConfig vcfg;
    vcfg.name = "victim";
    vcfg.cls = service::PriorityClass::LatencySensitive;
    vcfg.pages = victimPages;
    const service::TenantId victim = svc.addTenant(vcfg);

    service::TenantConfig bcfg;
    bcfg.name = "bystander0";
    bcfg.pages = 8;
    svc.addTenant(bcfg);
    bcfg.name = "bystander1";
    svc.addTenant(bcfg);

    // Always admit the starver tenant so the lane layout (and the
    // z-score population) is identical across the whole sweep; only
    // the hammer rate differs.
    workload::RfmStarverConfig acfg;
    acfg.pages = 16;
    acfg.burstsPerSecond = r.attack ? bursts_per_second : 1.0;
    acfg.activationsPerBurst = 128;
    acfg.targetDimm = 0;
    acfg.sweepBanks = true;
    service::TenantConfig atcfg;
    atcfg.name = "starver";
    workload::RfmStarverModel starver("starver", eq, svc, acfg,
                                      atcfg);

    for (sfm::VirtPage p = 0; p < victimPages; ++p)
        svc.writePage(victim, p, pageFor(p));
    svc.start();
    if (r.attack)
        starver.start();

    for (sfm::VirtPage p = 0; p < farPages; ++p)
        svc.tenantBackend(victim).swapOut(p, false,
                                          sfm::SwapCallback{});
    eq.run(eq.now() + microseconds(200.0));

    // Paced CPU-path demand faults, each page pushed straight back
    // out so the next round faults it again.
    std::vector<double> fault_ns;
    for (int i = 0; i < rounds; ++i) {
        eq.run(eq.now() + microseconds(8.0));
        const sfm::VirtPage p = i % farPages;
        if (svc.tenantBackend(victim).pageState(p)
            != sfm::PageState::Far)
            continue;
        const Tick t0 = eq.now();
        svc.tenantBackend(victim).swapIn(
            p, false, [&fault_ns, &svc, victim, p, t0](
                         const sfm::SwapOutcome &o) {
                if (o.success)
                    fault_ns.push_back(ticksToNs(o.completed - t0));
                svc.tenantBackend(victim).swapOut(
                    p, false, sfm::SwapCallback{});
            });
    }
    eq.run(eq.now() + microseconds(50.0));

    r.samples = fault_ns.size();
    r.p50Ns = percentile(fault_ns, 50);
    r.p99Ns = percentile(fault_ns, 99);
    const dram::RefreshStats &rs =
        svc.backend().refresh().refreshStats();
    r.rfmCommands = rs.rfmCommands;
    r.rfmStolenSlots = rs.rfmStolenSlots;
    r.attackerThrottled =
        svc.arbiter().abuseThrottled(starver.tenantId());
    r.attackerFlags =
        svc.arbiter().laneStats(starver.tenantId()).abuseFlags;
    r.suppressedBursts = starver.stats().suppressedBursts;

    // Promote everything and audit: however hard the attacker hit
    // (or however hard the defense throttled), no victim byte moves.
    for (sfm::VirtPage p = 0; p < victimPages; ++p) {
        if (svc.tenantBackend(victim).pageState(p)
            == sfm::PageState::Far)
            svc.tenantBackend(victim).swapIn(
                p, false, [](const sfm::SwapOutcome &) {});
    }
    eq.run(eq.now() + milliseconds(5.0));
    r.auditOk = true;
    r.auditHash = 14695981039346656037ull;
    for (sfm::VirtPage p = 0; p < victimPages; ++p) {
        const Bytes restored = svc.readPage(victim, p);
        r.auditOk &= restored == pageFor(p);
        r.auditHash = fnv1a(r.auditHash, restored);
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_ADV.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: adv_interference [--smoke] [--out FILE]\n");
            return 1;
        }
    }

    const int rounds = smoke ? 128 : 256;
    struct Sweep
    {
        const char *label;
        double bursts;
        bool defense;
    };
    const std::vector<Sweep> sweep = {
        {"solo", 0.0, false},
        {"attack_1m", 1.0e6, false},
        {"attack_4m", 4.0e6, false},
        {"defended_1m", 1.0e6, true},
        {"defended_4m", 4.0e6, true},
    };

    std::printf("adv_interference%s: %d fault rounds per point, "
                "REFpb + RFM (raaimt 32), starver on DIMM 0\n\n",
                smoke ? " (smoke)" : "", rounds);
    std::printf("  %-12s  %7s  %9s  %9s  %6s  %9s  %5s  %s\n",
                "config", "samples", "p50 ns", "p99 ns", "rfm",
                "stolen", "thrtl", "audit");

    std::vector<Point> results;
    for (const auto &s : sweep) {
        results.push_back(
            runPoint(s.label, s.bursts, s.defense, rounds));
        const Point &r = results.back();
        std::printf("  %-12s  %7llu  %9.0f  %9.0f  %6llu  %9llu"
                    "  %5s  %s\n",
                    r.label.c_str(), (unsigned long long)r.samples,
                    r.p50Ns, r.p99Ns,
                    (unsigned long long)r.rfmCommands,
                    (unsigned long long)r.rfmStolenSlots,
                    r.attackerThrottled ? "yes" : "no",
                    r.auditOk ? "ok" : "CORRUPT");
    }

    // The only gate: every config restored every victim byte, and
    // all configs restored the SAME bytes. Tail separation is
    // reported, not gated.
    bool data_ok = true;
    for (const Point &r : results) {
        data_ok &= r.auditOk;
        data_ok &= r.auditHash == results.front().auditHash;
    }

    const double solo_p99 = results.front().p99Ns;
    std::printf("\n  solo p99 %.0f ns; attacked x%.2f; defended "
                "x%.2f; cross-config data: %s\n",
                solo_p99,
                solo_p99 > 0.0 ? results[2].p99Ns / solo_p99 : 0.0,
                solo_p99 > 0.0 ? results[4].p99Ns / solo_p99 : 0.0,
                data_ok ? "identical" : "DIVERGED");

    std::string j = "{\n  \"schema\": \"xfm.adv_sweep.v1\",\n";
    char buf[360];
    std::snprintf(buf, sizeof buf,
                  "  \"smoke\": %s,\n  \"rounds\": %d,\n"
                  "  \"data_identical\": %s,\n"
                  "  \"solo_p99_ns\": %.1f,\n",
                  smoke ? "true" : "false", rounds,
                  data_ok ? "true" : "false", solo_p99);
    j += buf;
    j += "  \"sweep\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const Point &r = results[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"config\": \"%s\", \"defense\": %s, "
            "\"bursts_per_second\": %.0f, \"samples\": %llu, "
            "\"p50_ns\": %.1f, \"p99_ns\": %.1f, "
            "\"rfm_commands\": %llu, \"rfm_stolen_slots\": %llu, "
            "\"attacker_throttled\": %s, \"attacker_flags\": %llu, "
            "\"suppressed_bursts\": %llu, \"audit_ok\": %s}%s\n",
            r.label.c_str(), r.defense ? "true" : "false",
            r.burstsPerSecond, (unsigned long long)r.samples, r.p50Ns,
            r.p99Ns, (unsigned long long)r.rfmCommands,
            (unsigned long long)r.rfmStolenSlots,
            r.attackerThrottled ? "true" : "false",
            (unsigned long long)r.attackerFlags,
            (unsigned long long)r.suppressedBursts,
            r.auditOk ? "true" : "false",
            i + 1 < results.size() ? "," : "");
        j += buf;
    }
    j += "  ]\n}\n";

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "adv_interference: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());

    return data_ok ? 0 : 1;
}
