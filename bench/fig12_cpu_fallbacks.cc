/**
 * @file
 * Reproduces Fig. 12: CPU-fallback sensitivity to SPM size and the
 * number of NMA accesses accommodated per tRFC, for a 512 GB SFM at
 * 50% and 100% promotion rates, with the conditional/random access
 * breakdown and the Sec. 8 energy-saving figure.
 *
 * Model: one rank of the 16-rank system (32 GB share of the SFM);
 * see bench/swap_sim.hh for the harness. The tuned SFM controller
 * books refresh-aligned rows for compress sources and all write-back
 * destinations (it may pick which cold page to compress and where
 * to place output), so those accesses ride refresh windows as
 * *conditional* accesses; promotion (decompress) sources sit
 * wherever the compressed data landed and consume the *random*
 * SALP slots — which is why random traffic scales with the
 * promotion rate.
 */

#include <cstdio>
#include <vector>

#include "swap_sim.hh"

using namespace xfm;
using namespace xfm::bench;

int
main()
{
    const std::vector<double> rates = {0.5, 1.0};
    const std::vector<std::uint32_t> accesses = {1, 2, 3};
    const std::vector<std::size_t> spm_sizes = {
        mib(1), mib(2), mib(4), mib(8)
    };

    std::printf("Fig. 12: CPU fallbacks vs SPM size and NMA "
                "accesses per tRFC (512 GB SFM, 16 ranks, per-rank "
                "model)\n");

    double energy_saved_sum = 0.0;
    int energy_points = 0;
    for (double rate : rates) {
        std::printf("\n-- promotion rate %.0f%% --\n", rate * 100);
        std::printf("%10s |", "SPM");
        for (auto acc : accesses)
            std::printf("  %u acc/tRFC: fall%% cond%% rand%% |",
                        acc);
        std::printf("\n");
        for (auto spm : spm_sizes) {
            std::printf("%7llu MB |",
                        (unsigned long long)(spm >> 20));
            for (auto acc : accesses) {
                SwapSimConfig sc;
                sc.promotionRate = rate;
                sc.accessesPerTrfc = acc;
                sc.spmBytes = spm;
                const auto r = runSwapSim(sc);
                std::printf("      %14.1f %5.1f %5.1f |",
                            r.fallbackPercent(),
                            100.0 * r.conditionalShare(),
                            100.0 * (1.0 - r.conditionalShare()));
                energy_saved_sum += 100.0 * r.energySavedFraction;
                ++energy_points;
            }
            std::printf("\n");
        }
    }

    std::printf("\nSec. 8 claims vs measured:\n");
    std::printf("  '8MB SPM + 3 accesses/tRFC eliminates all CPU "
                "fallbacks at any promotion rate'\n");
    std::printf("  'the majority of accesses are conditional; "
                "random traffic scales with promotion rate'\n");
    std::printf("  conditional accesses cut NMA access energy by "
                "%.1f%% on average (paper: ~10.1%%)\n",
                energy_saved_sum / energy_points);

    // Fault-plan sweep: the paper's best configuration (8MB SPM,
    // 3 acc/tRFC) under increasing doorbell-loss and engine-stall
    // rates. Transient losses are absorbed by driver retries; the
    // rest degrade to CPU fallbacks, Fig. 12's failure axis.
    std::printf("\nFault sweep (8MB SPM, 3 acc/tRFC, 100%% "
                "promotion rate):\n");
    std::printf("%10s %10s %10s %10s %10s %8s\n", "fault p",
                "injected", "doorbell", "retries", "stalls",
                "fall%");
    for (double p : {0.0, 0.05, 0.10, 0.20}) {
        SwapSimConfig sc;
        sc.promotionRate = 1.0;
        sc.accessesPerTrfc = 3;
        sc.spmBytes = mib(8);
        sc.faults.seed = 7;
        sc.faults.site(fault::FaultSite::MmioDoorbellLoss)
            .probability = p;
        sc.faults.site(fault::FaultSite::EngineStall)
            .probability = p / 2;
        const auto r = runSwapSim(sc);
        std::printf("%10.2f %10llu %10llu %10llu %10llu %8.1f\n", p,
                    (unsigned long long)r.faultInjections,
                    (unsigned long long)r.doorbellLosses,
                    (unsigned long long)r.driverRetries,
                    (unsigned long long)r.engineStalls,
                    r.fallbackPercent());
    }
    return 0;
}
