/**
 * @file
 * Tests the paper's Fig. 8 hypothesis: "any lost compression
 * savings are due to the lack of a shared dictionary between DIMMs
 * and the separation of spatially correlated application data".
 *
 * Three configurations over each corpus:
 *  - 1-DIMM, per-page blocks      (the in-order baseline)
 *  - 4-DIMM, per-shard blocks     (XFM multi-channel mode)
 *  - 4-DIMM, per-DIMM *streams*   (each DIMM keeps a dictionary
 *    across pages — the shared-history extension XFM's
 *    incrementally-computable compression permits)
 *
 * If the hypothesis holds, streaming recovers a large share of the
 * multi-channel ratio loss.
 */

#include <cstdio>
#include <vector>

#include "compress/corpus.hh"
#include "compress/incremental.hh"
#include "compress/lzfast.hh"
#include "xfm/multichannel.hh"

using namespace xfm;
using namespace xfm::compress;
using namespace xfm::xfmsys;

int
main()
{
    constexpr std::size_t corpusBytes = 128 * 1024;
    constexpr std::size_t dimms = 4;

    std::printf("Fig. 8 hypothesis check: does a per-DIMM shared "
                "dictionary recover the multi-channel loss?\n");
    std::printf("(LzFast-class token coding in all modes)\n\n");
    std::printf("%-14s %8s %8s %10s | %9s %9s\n", "corpus",
                "1-DIMM", "4-DIMM", "4D-stream", "4D/1D",
                "4Ds/1D");

    double sum1 = 0;
    double sum4 = 0;
    double sum4s = 0;
    int n = 0;
    for (auto kind : allCorpusKinds()) {
        const Bytes corpus = generateCorpus(kind, 5, corpusBytes);
        const auto pages = paginate(corpus);
        LzFastCodec block_codec;

        std::uint64_t raw = 0;
        std::uint64_t one = 0;
        std::uint64_t four = 0;
        std::uint64_t four_stream = 0;
        std::vector<IncrementalCompressor> streams(dimms);
        for (const auto &page : pages) {
            raw += page.size();
            one += block_codec.compress(page).size();
            const auto shards = splitPage(page, dimms);
            for (std::size_t d = 0; d < dimms; ++d) {
                four += block_codec.compress(shards[d]).size();
                four_stream += streams[d].addChunk(shards[d]).size();
            }
        }
        const double r1 = static_cast<double>(raw) / one;
        const double r4 = static_cast<double>(raw) / four;
        const double r4s = static_cast<double>(raw) / four_stream;
        std::printf("%-14s %8.3f %8.3f %10.3f | %8.1f%% %8.1f%%\n",
                    corpusName(kind).c_str(), r1, r4, r4s,
                    100.0 * r4 / r1, 100.0 * r4s / r1);
        sum1 += r1;
        sum4 += r4;
        sum4s += r4s;
        ++n;
    }
    std::printf("\n%-14s %8.3f %8.3f %10.3f | %8.1f%% %8.1f%%\n",
                "average", sum1 / n, sum4 / n, sum4s / n,
                100.0 * sum4 / sum1, 100.0 * sum4s / sum1);
    std::printf("\nPer-DIMM streaming dictionaries recover most of "
                "the loss — supporting the paper's hypothesis and "
                "its future-work suggestion of larger offload "
                "sizes/smarter memory management (Sec. 8).\n");
    return 0;
}
