/**
 * @file
 * Ablation: the controller's prediction proficiency (paper Sec. 8:
 * "The benefits of XFM can be increased by improving the far memory
 * controller's proficiency at predicting application memory access
 * patterns").
 *
 * A strided scan walks a far-memory-resident region on an XFM
 * system. Demand faults decompress on the CPU (latency-critical),
 * predicted pages are promoted by the NMA inside refresh windows —
 * so the prefetcher's quality directly controls how much of the
 * promotion work the NMA absorbs.
 */

#include <cstdio>
#include <vector>

#include "compress/corpus.hh"
#include "system/system.hh"

using namespace xfm;
using namespace xfm::system;

namespace
{

struct Outcome
{
    std::uint64_t accesses = 0;
    std::uint64_t demandFaults = 0;
    std::uint64_t prefetchHits = 0;
    std::uint64_t offloadedSwapIns = 0;
    std::uint64_t cpuSwapIns = 0;
};

Outcome
runScan(std::size_t depth, bool stride_detect, int stride)
{
    EventQueue eq;
    SystemConfig cfg;
    cfg.backend = BackendKind::Xfm;
    cfg.pages = 512;
    cfg.sfmBytes = mib(16);
    cfg.controller.coldThreshold = milliseconds(5.0);
    cfg.controller.scanInterval = milliseconds(1.0);
    cfg.controller.maxSwapOutsPerScan = 256;
    cfg.controller.prefetchDepth = depth;
    cfg.controller.stridePrefetch = stride_detect;

    System sys("sys", eq, cfg);
    for (sfm::VirtPage p = 0; p < cfg.pages; ++p)
        sys.writePage(p, compress::generateCorpus(
                             compress::CorpusKind::CsvTable, p,
                             pageBytes));
    sys.start();
    eq.run(milliseconds(60.0));  // demote everything

    Outcome o;
    // Strided scan across the region; ~0.5 ms of compute per page.
    for (int i = 0; i * stride < static_cast<int>(cfg.pages)
                    && i * stride >= 0;
         ++i) {
        const auto page = static_cast<sfm::VirtPage>(i * stride);
        ++o.accesses;
        if (!sys.access(page))
            ++o.demandFaults;
        eq.run(eq.now() + microseconds(500.0));
    }

    const auto &cs = sys.controller().stats();
    o.prefetchHits = cs.prefetchHits;
    auto &backend = dynamic_cast<xfmsys::XfmBackend &>(sys.backend());
    o.offloadedSwapIns = backend.xfmStats().offloadedSwapIns;
    o.cpuSwapIns = backend.stats().cpuSwapIns;
    return o;
}

} // namespace

int
main()
{
    std::printf("Ablation: prefetcher proficiency on an XFM system "
                "(strided scan over 512 far pages)\n\n");
    std::printf("%8s %8s %7s | %10s %11s %13s %9s\n", "depth",
                "stride?", "stride", "faults", "prefetchHit",
                "NMA swap-ins", "CPU ins");

    const struct
    {
        std::size_t depth;
        bool detect;
        int stride;
    } points[] = {
        {0, false, 1}, {1, false, 1}, {2, false, 1}, {4, false, 1},
        {4, false, 3}, {4, true, 3},  {8, true, 3},
    };
    for (const auto &pt : points) {
        const auto o = runScan(pt.depth, pt.detect, pt.stride);
        std::printf("%8zu %8s %7d | %10llu %11llu %13llu %9llu\n",
                    pt.depth, pt.detect ? "yes" : "no", pt.stride,
                    (unsigned long long)o.demandFaults,
                    (unsigned long long)o.prefetchHits,
                    (unsigned long long)o.offloadedSwapIns,
                    (unsigned long long)o.cpuSwapIns);
    }

    std::printf("\nBetter prediction (deeper prefetch, stride "
                "detection for non-unit scans) shifts promotions "
                "from latency-critical CPU demand faults onto the "
                "NMA's refresh-window channel — the paper's closing "
                "observation.\n");
    return 0;
}
