/**
 * @file
 * Ablation (DESIGN.md §5.3): the XFM driver's lazy SPM occupancy
 * accounting. The backend tracks an upper bound on SPM usage
 * locally and only reads SP_Capacity_Register over MMIO when the
 * bound infers 100% occupancy (paper Sec. 6). The ablated driver
 * synchronises on every admission decision instead.
 */

#include <cstdio>

#include "swap_sim.hh"

using namespace xfm;
using namespace xfm::bench;

int
main()
{
    std::printf("Ablation: lazy SPM accounting vs per-offload MMIO "
                "sync (50%% promotion, 3 accesses/tRFC)\n\n");
    std::printf("%-14s %10s | %12s %14s %18s\n", "driver", "SPM",
                "offloads", "MMIO reads", "reads per offload");

    for (std::size_t spm : {mib(1), mib(8)}) {
        for (bool sync : {false, true}) {
            SwapSimConfig sc;
            sc.promotionRate = 0.5;
            sc.spmBytes = spm;
            sc.driverAlwaysSync = sync;
            sc.simTime = milliseconds(60.0);
            const auto r = runSwapSim(sc);
            std::printf("%-14s %7llu MB | %12llu %14llu %18.4f\n",
                        sync ? "always-sync" : "lazy (XFM)",
                        (unsigned long long)(spm >> 20),
                        (unsigned long long)r.offloadsSubmitted,
                        (unsigned long long)r.mmioCapacityReads,
                        r.offloadsSubmitted
                            ? static_cast<double>(
                                  r.mmioCapacityReads)
                                  / r.offloadsSubmitted
                            : 0.0);
        }
    }
    std::printf("\nLazy accounting removes the MMIO round trip from "
                "the common-case submission path; the register is "
                "consulted only when the local bound says the SPM "
                "may be full.\n");
    return 0;
}
