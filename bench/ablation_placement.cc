/**
 * @file
 * Ablation (DESIGN.md §5.4): the cost of same-offset placement.
 *
 * Multi-channel mode stores every page's compressed shards at the
 * same offset of each DIMM's SFM region, sized by the largest
 * shard. The alternative — independent per-DIMM allocation — wastes
 * nothing but would require DIMM-side address translation (per-DIMM
 * lookup state), which the paper explicitly avoids. This bench
 * quantifies the internal fragmentation the simplification costs,
 * per corpus and on average.
 */

#include <algorithm>
#include <cstdio>

#include "compress/corpus.hh"
#include "compress/deflate.hh"
#include "xfm/multichannel.hh"

using namespace xfm;
using namespace xfm::compress;
using namespace xfm::xfmsys;

int
main()
{
    constexpr std::size_t corpusBytes = 128 * 1024;
    constexpr std::size_t dimms = 4;
    DeflateCodec codec;

    std::printf("Ablation: same-offset placement vs independent "
                "per-DIMM allocation (4 DIMMs, Deflate)\n\n");
    std::printf("%-14s %12s %12s %10s\n", "corpus",
                "independent", "same-offset", "overhead");

    std::uint64_t total_ind = 0;
    std::uint64_t total_same = 0;
    for (auto kind : allCorpusKinds()) {
        const Bytes corpus = generateCorpus(kind, 11, corpusBytes);
        std::uint64_t independent = 0;
        std::uint64_t same_offset = 0;
        for (const auto &page : paginate(corpus)) {
            const auto shards = splitPage(page, dimms);
            std::uint64_t max_shard = 0;
            for (const auto &shard : shards) {
                const auto block = codec.compress(shard);
                independent += block.size();
                max_shard = std::max<std::uint64_t>(max_shard,
                                                    block.size());
            }
            same_offset += max_shard * dimms;
        }
        total_ind += independent;
        total_same += same_offset;
        std::printf("%-14s %12llu %12llu %9.1f%%\n",
                    corpusName(kind).c_str(),
                    (unsigned long long)independent,
                    (unsigned long long)same_offset,
                    100.0 * (static_cast<double>(same_offset)
                             / independent - 1.0));
    }
    std::printf("\n%-14s %12llu %12llu %9.1f%%\n", "total",
                (unsigned long long)total_ind,
                (unsigned long long)total_same,
                100.0 * (static_cast<double>(total_same)
                         / total_ind - 1.0));
    std::printf("\nSame-offset placement trades this padding for "
                "translation-free DIMM access (Sec. 6): the host "
                "derives every shard's location from one offset.\n");
    return 0;
}
