/**
 * @file
 * Far-memory tier comparison: fault-service latency and capacity
 * economics of the three implementations the paper discusses —
 * SFM on the CPU (zswap), DFM over a CXL-class link, and XFM.
 *
 * DFM wins per-fault latency (no decompression), SFM wins cost and
 * elasticity (Sec. 3), and XFM keeps SFM's economics while moving
 * the predictable promotions off the CPU entirely: only the
 * unpredicted faults still pay the CPU decompression price.
 */

#include <cstdio>

#include "compress/corpus.hh"
#include "costmodel/cost_model.hh"
#include "dram/phys_mem.hh"
#include "sfm/cpu_backend.hh"
#include "sfm/dfm_backend.hh"
#include "xfm/xfm_backend.hh"

using namespace xfm;
using namespace xfm::sfm;

int
main()
{
    std::printf("Far-memory tier comparison: fault-service latency "
                "for one 4 KiB page\n\n");

    EventQueue eq;
    dram::PhysMem mem(mib(256));
    const Bytes page = compress::generateCorpus(
        compress::CorpusKind::KeyValue, 1, pageBytes);

    // --- SFM on the CPU (zswap / zstd-class) ----------------------
    CpuBackendConfig scfg;
    scfg.localBase = 0;
    scfg.localPages = 16;
    scfg.sfmBase = mib(64);
    scfg.sfmBytes = mib(1);
    CpuSfmBackend sfm_backend("sfm", eq, scfg, mem);
    mem.write(sfm_backend.frameAddr(0), page);
    sfm_backend.swapOut(0, nullptr);
    eq.run();
    Tick start = eq.now();
    Tick sfm_latency = 0;
    sfm_backend.swapIn(0, false, [&](const SwapOutcome &o) {
        sfm_latency = o.completed - start;
    });
    eq.run();

    // --- DFM over a CXL-class link ---------------------------------
    DfmBackendConfig dcfg;
    dcfg.localBase = mib(128);
    dcfg.localPages = 16;
    dcfg.poolBase = mib(192);
    dcfg.poolBytes = mib(1);
    DfmBackend dfm_backend("dfm", eq, dcfg, mem);
    mem.write(dfm_backend.frameAddr(0), page);
    dfm_backend.swapOut(0, nullptr);
    eq.run();
    start = eq.now();
    Tick dfm_latency = 0;
    dfm_backend.swapIn(0, false, [&](const SwapOutcome &o) {
        dfm_latency = o.completed - start;
    });
    eq.run();

    // --- XFM: predicted promotion (NMA) vs demand fault (CPU) -----
    EventQueue eq2;
    xfmsys::XfmSystemConfig xcfg;
    xcfg.numDimms = 4;
    xcfg.dimmMem.rank.device = dram::ddr5Device32Gb();
    xcfg.dimmMem.channels = 1;
    xcfg.dimmMem.dimmsPerChannel = 1;
    xcfg.dimmMem.ranksPerDimm = 1;
    xcfg.localPages = 16;
    xcfg.sfmBase = gib(1);
    xcfg.sfmBytes = mib(4);
    xfmsys::XfmBackend xfm_backend("xfm", eq2, xcfg);
    xfm_backend.start();
    xfm_backend.writePage(0, page);
    xfm_backend.swapOut(0, nullptr);
    eq2.run(seconds(0.05));
    start = eq2.now();
    Tick xfm_prefetch_latency = 0;
    xfm_backend.swapIn(0, true, [&](const SwapOutcome &o) {
        xfm_prefetch_latency = o.completed - start;
    });
    eq2.run(eq2.now() + seconds(0.05));

    std::printf("%-36s %12s %s\n", "tier", "latency", "notes");
    std::printf("%-36s %9.1f us CPU zstd-class decompression\n",
                "SFM demand fault (CPU)",
                ticksToUs(sfm_latency));
    std::printf("%-36s %9.1f us link latency + 4 KiB transfer, "
                "0 CPU cycles\n",
                "DFM fetch (CXL-class)", ticksToUs(dfm_latency));
    std::printf("%-36s %9.1f us refresh-window promotion "
                "(hidden when predicted ahead)\n",
                "XFM NMA promotion", ticksToUs(xfm_prefetch_latency));
    std::printf("%-36s %12s identical to the SFM row by design "
                "(CPU_Fallback)\n",
                "XFM unpredicted fault", "same as SFM");

    // --- the economics side (Sec. 3) -------------------------------
    costmodel::CostParams p;
    p.promotionRate = 0.2;
    costmodel::FarMemoryCostModel model(p);
    const auto sfm5 = model.sfm(5.0);
    const auto dfm5 = model.dfm(costmodel::DfmTech::Dram, 5.0);
    std::printf("\n5-year cost of 512 GB extra capacity at 20%% "
                "promotion (Sec. 3.1):\n");
    std::printf("  SFM/XFM : $%.0f  (%.0f kg CO2eq)\n",
                sfm5.totalUSD(), sfm5.totalKgCO2());
    std::printf("  DFM-DRAM: $%.0f  (%.0f kg CO2eq)\n",
                dfm5.totalUSD(), dfm5.totalKgCO2());
    std::printf("\nDFM buys fault latency with capital and carbon; "
                "XFM keeps SFM's economics and hides the latency "
                "behind prediction.\n");
    return 0;
}
