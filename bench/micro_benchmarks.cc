/**
 * @file
 * Google-benchmark microbenchmarks for the core substrates:
 * compression codecs, the ZPool allocator, the event kernel, the
 * DRAM address map, and the LLC simulator.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "compress/compressor.hh"
#include "compress/corpus.hh"
#include "dram/address_map.hh"
#include "dram/mem_ctrl.hh"
#include "dram/phys_mem.hh"
#include "interference/cache.hh"
#include "sfm/zpool.hh"
#include "sim/event_queue.hh"

using namespace xfm;

namespace
{

Bytes
testPage(compress::CorpusKind kind)
{
    return compress::generateCorpus(kind, 99, pageBytes);
}

void
BM_Compress(benchmark::State &state)
{
    const auto algo =
        static_cast<compress::Algorithm>(state.range(0));
    const auto codec = compress::makeCompressor(algo);
    const Bytes page = testPage(compress::CorpusKind::LogLines);
    std::size_t out_bytes = 0;
    for (auto _ : state) {
        const Bytes block = codec->compress(page);
        benchmark::DoNotOptimize(block.data());
        out_bytes = block.size();
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * page.size()));
    state.counters["ratio"] =
        static_cast<double>(page.size())
        / static_cast<double>(out_bytes);
}
BENCHMARK(BM_Compress)
    ->Arg(static_cast<int>(compress::Algorithm::LzFast))
    ->Arg(static_cast<int>(compress::Algorithm::Deflate))
    ->Arg(static_cast<int>(compress::Algorithm::ZstdLike));

void
BM_Decompress(benchmark::State &state)
{
    const auto algo =
        static_cast<compress::Algorithm>(state.range(0));
    const auto codec = compress::makeCompressor(algo);
    const Bytes page = testPage(compress::CorpusKind::LogLines);
    const Bytes block = codec->compress(page);
    for (auto _ : state) {
        const Bytes raw = codec->decompress(block);
        benchmark::DoNotOptimize(raw.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * page.size()));
}
BENCHMARK(BM_Decompress)
    ->Arg(static_cast<int>(compress::Algorithm::LzFast))
    ->Arg(static_cast<int>(compress::Algorithm::Deflate))
    ->Arg(static_cast<int>(compress::Algorithm::ZstdLike));

void
BM_ZPoolInsertErase(benchmark::State &state)
{
    dram::PhysMem mem(gib(1));
    sfm::ZPool pool(mem, 0, mib(64));
    const Bytes obj(state.range(0), 0x5A);
    for (auto _ : state) {
        const sfm::ZHandle h = pool.insert(obj);
        benchmark::DoNotOptimize(h);
        pool.erase(h);
    }
}
BENCHMARK(BM_ZPoolInsertErase)->Arg(512)->Arg(1365)->Arg(4096);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_AddressMapDecode(benchmark::State &state)
{
    const auto cfg = dram::defaultMemSystem();
    dram::AddressMap map(cfg);
    Rng rng(1);
    for (auto _ : state) {
        const auto coord =
            map.decode(rng.uniformInt(map.capacityBytes()));
        benchmark::DoNotOptimize(coord);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AddressMapDecode);

void
BM_LlcAccess(benchmark::State &state)
{
    interference::SetAssocCache llc(16ull << 20, 16, 64, 1);
    Rng rng(2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            llc.access(rng.uniformInt(64ull << 20), 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LlcAccess);

void
BM_MemCtrlPageRead(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        const auto cfg = dram::defaultMemSystem();
        dram::MemCtrl ctrl("memctrl", eq, cfg, nullptr);
        for (int i = 0; i < 16; ++i)
            ctrl.submit({std::uint64_t(i) * 4096, 4096, false,
                         nullptr});
        eq.run();
        benchmark::DoNotOptimize(ctrl.stats().bytesRead);
    }
    state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_MemCtrlPageRead);

} // namespace

BENCHMARK_MAIN();
