/**
 * @file
 * Quantifies Sec. 3.2's I/O-amplification argument: when an
 * *on-chip* accelerator decompresses a page, the 4 KiB output
 * lands in the cache hierarchy; if the application's use-distance
 * is long or the LLC is contended, those lines are written back to
 * DRAM before they are used and must be fetched again — so the
 * channel moves more bytes than the application consumes. XFM's
 * in-memory decompression leaves the page in DRAM and the CPU
 * demand-fetches only the lines it touches.
 *
 * amplification = bytes over the DDR channel / bytes the
 * application actually uses.
 */

#include <cstdio>
#include <vector>

#include "common/random.hh"
#include "interference/cache.hh"

using namespace xfm;
using namespace xfm::interference;

namespace
{

constexpr std::uint32_t lineBytes = 64;
constexpr std::uint32_t pageLines = 4096 / lineBytes;
constexpr std::uint32_t compressedBytes = 1365;  // ratio ~3

/**
 * Simulate on-chip decompression: the page's 64 lines are installed
 * in the LLC, the app does `use_distance` unrelated accesses, then
 * touches `used_lines` of the page. Returns the fraction of touched
 * lines that survived in cache.
 */
double
survivalFraction(std::uint64_t use_distance,
                 std::uint32_t used_lines, std::uint64_t seed)
{
    SetAssocCache llc(16ull << 20, 16, lineBytes, 2);
    Rng rng(seed);
    // Warm the cache with the app's working set (contended LLC).
    const std::uint64_t ws = 64ull << 20;
    for (int i = 0; i < 400000; ++i)
        llc.access(rng.uniformInt(ws), 0);

    // Install the decompressed page (stream 1).
    const std::uint64_t page_base = 1ull << 40;
    for (std::uint32_t l = 0; l < pageLines; ++l)
        llc.access(page_base + l * lineBytes, 1);

    // Unrelated traffic for the use-distance.
    for (std::uint64_t i = 0; i < use_distance; ++i)
        llc.access(rng.uniformInt(ws), 0);

    // Touch the used lines and count survivors.
    std::uint32_t hits = 0;
    for (std::uint32_t l = 0; l < used_lines; ++l)
        if (llc.access(page_base + l * lineBytes, 1))
            ++hits;
    return static_cast<double>(hits) / used_lines;
}

} // namespace

int
main()
{
    std::printf("Sec. 3.2: I/O amplification of on-chip vs "
                "in-memory (XFM) decompression\n");
    std::printf("(16 MiB LLC shared with a 64 MiB working set; "
                "page compressed to %u B)\n\n", compressedBytes);
    std::printf("%12s %10s | %10s %12s %12s\n", "use-distance",
                "used", "survive%", "on-chip amp", "XFM amp");

    for (std::uint64_t dist : {0ull, 100000ull, 200000ull,
                               400000ull, 1000000ull}) {
        for (std::uint32_t used_lines : {64u, 16u, 4u}) {
            const double survive =
                survivalFraction(dist, used_lines, 99);
            const double used_bytes = used_lines * lineBytes;
            // On-chip: compressed block over the channel, the page
            // written back on eviction, plus re-reads of the
            // evicted-but-used lines.
            const double evicted_used =
                (1.0 - survive) * used_bytes;
            const double onchip_channel = compressedBytes
                + (1.0 - survive) * pageLines * lineBytes
                + evicted_used;
            // XFM: compressed block moved on-DIMM (no channel), the
            // CPU demand-fetches only the used lines.
            const double xfm_channel = used_bytes;
            std::printf("%12llu %9.0fB | %9.1f%% %12.2f %12.2f\n",
                        (unsigned long long)dist, used_bytes,
                        100.0 * survive,
                        onchip_channel / used_bytes,
                        xfm_channel / used_bytes);
        }
    }

    std::printf("\nOn-chip decompression only wins when the "
                "decompressed data is used immediately and fully; "
                "with long use-distances or sparse use the channel "
                "moves several times the useful bytes — XFM's "
                "in-memory placement keeps the ratio at 1.\n");
    return 0;
}
