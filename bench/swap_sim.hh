/**
 * @file
 * Shared per-rank swap-offload simulation harness used by the
 * Fig. 12 bench and the ablation benches.
 *
 * Models one rank's share of a large SFM: swap-in/out arrivals at a
 * configurable promotion rate drive compress/decompress offloads
 * through an XfmDriver + XfmDevice + RefreshController stack, with
 * a tuned-controller reservation calendar that books refresh-
 * aligned rows for every access whose placement the software
 * controls.
 */

#ifndef XFM_BENCH_SWAP_SIM_HH
#define XFM_BENCH_SWAP_SIM_HH

#include <algorithm>
#include <functional>
#include <map>

#include "dram/address_map.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "fault/fault.hh"
#include "nma/xfm_device.hh"
#include "obs/registry.hh"
#include "workload/trace_gen.hh"
#include "xfm/xfm_driver.hh"

namespace xfm
{
namespace bench
{

/** One simulation point. */
struct SwapSimConfig
{
    double promotionRate = 0.5;
    std::uint32_t accessesPerTrfc = 3;
    std::uint32_t maxRandomPerWindow = 1;
    std::uint32_t trrRandomSlots = 0;
    std::size_t spmBytes = mib(8);
    /** Book compress/write-back rows against upcoming refresh
     *  windows (tuned controller). When false every access targets
     *  a pseudo-random row. */
    bool alignRows = true;
    /** Ablation: read SP_Capacity on every admission decision. */
    bool driverAlwaysSync = false;
    double rankShareGB = 32.0;  ///< this rank's slice of the SFM
    Tick simTime = milliseconds(100.0);
    Tick burstQuantum = milliseconds(1.0);
    /** Fault scenario (disarmed by default = seed behaviour). */
    fault::FaultPlan faults{};
    /** Driver retry policy for transient injected faults. */
    fault::RetryPolicy retry{};
};

/** Point outcome. */
struct SwapSimResult
{
    std::uint64_t ops = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t conditional = 0;
    std::uint64_t random = 0;
    std::uint64_t trrSlotsUsed = 0;
    std::uint64_t subarrayRetries = 0;
    std::uint64_t mmioCapacityReads = 0;
    std::uint64_t offloadsSubmitted = 0;
    double energySavedFraction = 0.0;
    std::uint64_t faultInjections = 0;
    std::uint64_t doorbellLosses = 0;
    std::uint64_t driverRetries = 0;
    std::uint64_t engineStalls = 0;

    double
    fallbackPercent() const
    {
        return ops ? 100.0 * static_cast<double>(fallbacks)
                         / static_cast<double>(ops)
                   : 0.0;
    }
    double
    conditionalShare() const
    {
        const auto total = conditional + random;
        return total ? static_cast<double>(conditional) / total : 0.0;
    }
};

/** Run one simulation point on a 32Gb-device single-rank DIMM. */
inline SwapSimResult
runSwapSim(const SwapSimConfig &sc)
{
    EventQueue eq;
    dram::MemSystemConfig mem_cfg;
    mem_cfg.rank.device = dram::ddr5Device32Gb();
    mem_cfg.channels = 1;
    mem_cfg.dimmsPerChannel = 1;
    mem_cfg.ranksPerDimm = 1;
    const auto &dev_cfg = mem_cfg.rank.device;

    dram::AddressMap map(mem_cfg);
    dram::PhysMem mem(mem_cfg.totalCapacityBytes());
    dram::RefreshController refresh("refresh", eq, dev_cfg, 1);

    nma::XfmDeviceConfig dcfg;
    dcfg.spmBytes = sc.spmBytes;
    dcfg.queueDepth = 16384;
    dcfg.maxAccessesPerWindow = sc.accessesPerTrfc;
    dcfg.maxRandomPerWindow = sc.maxRandomPerWindow;
    dcfg.trrRandomSlots = sc.trrRandomSlots;
    dcfg.algorithm = compress::Algorithm::LzFast;
    dcfg.engine.modeledRatio = 3.0;  // timing study: size model
    nma::XfmDevice device("xfm", eq, dcfg, map, mem, refresh);
    xfmsys::XfmDriver driver(device);
    driver.setAlwaysSync(sc.driverAlwaysSync);
    fault::FaultInjector injector(sc.faults);
    device.setFaultInjector(&injector);
    driver.setFaultInjector(&injector);
    driver.setRetryPolicy(sc.retry);

    // Tuned-controller reservation calendar: window w serves at
    // most (accesses - randoms) conditional accesses; bursts spread
    // across future windows.
    std::uint64_t window_count = 0;
    refresh.addListener([&](const dram::RefreshWindow &) {
        ++window_count;
    });
    const std::uint32_t cond_budget =
        sc.accessesPerTrfc > sc.maxRandomPerWindow
        ? sc.accessesPerTrfc - sc.maxRandomPerWindow
        : 0;
    std::map<std::uint64_t, std::uint32_t> calendar;
    std::uint64_t scatter = 0;
    auto predict_row = [&](std::uint64_t lead) -> std::uint32_t {
        if (!sc.alignRows || cond_budget == 0) {
            return static_cast<std::uint32_t>(
                (++scatter * 977u) % dev_cfg.rowsPerBank);
        }
        std::uint64_t w = window_count + lead;
        while (calendar[w] >= cond_budget)
            ++w;
        const std::uint32_t sub = calendar[w]++;
        calendar.erase(calendar.begin(),
                       calendar.lower_bound(window_count));
        return static_cast<std::uint32_t>(
            (w * dev_cfg.rowsPerRefresh + sub)
            % dev_cfg.rowsPerBank);
    };
    auto addr_of_row = [&](std::uint32_t row) {
        dram::DramCoord c{};
        c.row = row;
        return map.encode(c);
    };

    std::uint64_t attempts = 0;
    std::uint64_t fallbacks = 0;
    driver.onComplete([&](const nma::OffloadCompletion &c) {
        if (c.kind == nma::OffloadKind::Compress)
            driver.commitWriteback(c.id,
                                   addr_of_row(predict_row(2)));
    });
    driver.onDrop(
        [&](nma::OffloadId, nma::DropReason) { ++fallbacks; });

    workload::SwapTraceConfig tcfg;
    tcfg.farCapacityGB = sc.rankShareGB;
    tcfg.promotionRate = sc.promotionRate;
    tcfg.predictability = 1.0;
    workload::SwapTraceGenerator trace(tcfg);

    const Tick compress_slack = dev_cfg.retention;
    const Tick decompress_slack = milliseconds(8.0);

    std::function<void()> pump = [&]() {
        const workload::SwapEvent ev = trace.next();
        const Tick when =
            ev.when / sc.burstQuantum * sc.burstQuantum;
        const Tick at = std::max(when, eq.now());
        eq.schedule(at, [&, ev]() {
            ++attempts;
            if (ev.kind == workload::SwapKind::SwapOut) {
                if (driver.xfmCompress(addr_of_row(predict_row(2)),
                                       4096,
                                       eq.now() + compress_slack)
                    == nma::invalidOffloadId)
                    ++fallbacks;
            } else {
                const auto src_row = static_cast<std::uint32_t>(
                    (ev.page * 2654435761u) % dev_cfg.rowsPerBank);
                if (driver.xfmDecompress(
                        addr_of_row(src_row), 1365,
                        addr_of_row(predict_row(2)), 4096,
                        eq.now() + decompress_slack)
                    == nma::invalidOffloadId)
                    ++fallbacks;
            }
            pump();
        });
    };

    refresh.start();
    pump();
    eq.run(sc.simTime);

    // Report through the observability layer: one registry over the
    // stack, read back from its snapshot like any external consumer.
    obs::MetricRegistry registry;
    device.registerMetrics(registry, "xfm");
    driver.registerMetrics(registry, "xfm.driver");
    injector.registerMetrics(registry, "fault");
    const obs::Snapshot snap = registry.snapshot();

    SwapSimResult r;
    r.ops = attempts;
    r.fallbacks = fallbacks;
    r.conditional = snap.u64("xfm.conditionalAccesses");
    r.random = snap.u64("xfm.randomAccesses");
    r.trrSlotsUsed = snap.u64("xfm.trrSlotsUsed");
    r.subarrayRetries = snap.u64("xfm.subarrayConflictRetries");
    r.mmioCapacityReads =
        snap.u64("xfm.driver.capacityRegisterReads");
    r.offloadsSubmitted = snap.u64("xfm.driver.offloadsSubmitted");
    r.energySavedFraction = snap.value("xfm.energySavedFraction");
    r.faultInjections = static_cast<std::uint64_t>(
        snap.value("fault.totalInjections"));
    r.doorbellLosses = snap.u64("xfm.driver.doorbellLosses");
    r.driverRetries = snap.u64("xfm.driver.retries");
    r.engineStalls = snap.u64("xfm.engineStalls");
    return r;
}

} // namespace bench
} // namespace xfm

#endif // XFM_BENCH_SWAP_SIM_HH
