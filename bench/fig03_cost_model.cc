/**
 * @file
 * Reproduces Fig. 3: capital-cost and emission comparison of SFM
 * against DRAM- and PMem-based DFM of the same capacity, normalised
 * to DFM-DRAM, over deployment years and promotion rates — plus the
 * break-even summaries quoted in Sec. 3.1/3.2.
 */

#include <cstdio>
#include <vector>

#include "costmodel/cost_model.hh"

using namespace xfm::costmodel;

int
main()
{
    const std::vector<double> years = {0.5, 1, 2, 3, 4, 5, 6, 7, 8,
                                       8.5, 9, 10};
    const std::vector<double> rates = {0.2, 1.0};

    std::printf("Fig. 3: far-memory cost and emissions, normalised "
                "to DFM-DRAM (512 GB extra capacity)\n");
    for (double rate : rates) {
        std::printf("\n-- promotion rate %.0f%% --\n", rate * 100);
        std::printf("%6s | %9s %9s %9s | %9s %9s %9s\n", "years",
                    "SFM$", "DFMdram$", "DFMpmem$", "SFMco2",
                    "DFMdram", "DFMpmem");
        const auto rows = fig3Sweep(CostParams{}, years, {rate});
        for (const auto &r : rows) {
            std::printf("%6.1f | %9.3f %9.3f %9.3f | %9.3f %9.3f "
                        "%9.3f\n",
                        r.years, r.sfmCost, r.dfmDramCost,
                        r.dfmPmemCost, r.sfmEmission,
                        r.dfmDramEmission, r.dfmPmemEmission);
        }
    }

    std::printf("\nBreak-even summary (Sec. 3.1):\n");
    for (double rate : {0.2, 0.5, 1.0}) {
        CostParams p;
        p.promotionRate = rate;
        FarMemoryCostModel m(p);
        const double cost_dram =
            m.costBreakEvenYears(DfmTech::Dram);
        const double cost_pmem =
            m.costBreakEvenYears(DfmTech::Pmem);
        const double em_dram =
            m.emissionBreakEvenYears(DfmTech::Dram);
        const double em_pmem =
            m.emissionBreakEvenYears(DfmTech::Pmem);
        auto fmt = [](double v) {
            static char buf[32];
            if (v < 0)
                std::snprintf(buf, sizeof(buf), "never");
            else
                std::snprintf(buf, sizeof(buf), "%.1f yr", v);
            return buf;
        };
        std::printf("  PR %3.0f%%: cost vs DRAM %-8s", rate * 100,
                    fmt(cost_dram));
        std::printf(" vs PMem %-8s", fmt(cost_pmem));
        std::printf(" | emission vs DRAM %-8s", fmt(em_dram));
        std::printf(" vs PMem %-8s\n", fmt(em_pmem));
    }

    CostParams p;
    p.promotionRate = 1.0;
    FarMemoryCostModel m(p);
    std::printf("\nSec. 3.2 figures:\n");
    std::printf("  SFM DRAM bandwidth at 100%% PR     : %.1f GB/s "
                "(paper: up to 34 GB/s)\n",
                m.sfmMemoryBandwidthGBps());
    std::printf("  on-chip accel break-even PR       : %.1f%% "
                "(paper: ~6%%)\n",
                100.0 * m.acceleratorBreakEvenPromotionRate());
    std::printf("  CPUs needed at 100%% PR            : %.2f\n",
                m.cpuFractionNeeded());
    std::printf("  EQ1 GB swapped per minute         : %.1f\n",
                m.gbSwappedPerMin());
    return 0;
}
