/**
 * @file
 * qd_sweep: swap throughput versus async command-ring queue depth.
 *
 * One closed-loop point per depth in {1, 2, 4, 8, 16, 32}: `depth`
 * concurrent page streams cycle swap-out -> swap-in through a
 * 4-DIMM XfmBackend with the per-DIMM submission queues sized to
 * the same depth (depth 1 is the legacy synchronous path — no ring
 * is constructed). Deeper rings let more commands ride each refresh
 * window, so simulated pages/sec rises with depth until the
 * window's access budget binds.
 *
 * After each point the harness drains, swaps every page back in and
 * audits the restored bytes against the generator corpus; a FNV-1a
 * fingerprint of all restored pages is compared across depths. The
 * exit code gates ONLY on this data audit — throughput numbers are
 * measurements, reported in BENCH_QD.json (schema xfm.qd_sweep.v1)
 * for CI to archive, never a pass/fail criterion.
 *
 * Usage: qd_sweep [--smoke] [--out FILE]
 *   --smoke   short simulated horizon (CI smoke test)
 *   --out     JSON destination (default BENCH_QD.json)
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "compress/corpus.hh"
#include "xfm/xfm_backend.hh"

using namespace xfm;

namespace
{

constexpr sfm::VirtPage numPages = 48;

Bytes
pageFor(sfm::VirtPage p)
{
    return compress::generateCorpus(compress::CorpusKind::LogLines,
                                    p + 1, pageBytes);
}

std::uint64_t
fnv1a(std::uint64_t h, ByteSpan data)
{
    for (const std::uint8_t b : data) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

struct DepthResult
{
    std::uint32_t depth = 1;
    std::uint64_t ops = 0;        ///< swaps completed in the horizon
    double pagesPerSec = 0.0;     ///< simulated pages moved per second
    std::uint64_t fallbacks = 0;  ///< CPU-path swaps (should be ~0)
    std::uint64_t doorbells = 0;  ///< batched SQ tail MMIO writes
    std::uint64_t reaped = 0;     ///< completion records consumed
    std::uint64_t auditHash = 0;  ///< FNV-1a over restored pages
    bool auditOk = false;         ///< every byte matched the corpus
};

DepthResult
runDepth(std::uint32_t depth, Tick horizon)
{
    EventQueue eq;
    xfmsys::XfmSystemConfig cfg;
    cfg.numDimms = 4;
    cfg.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.dimmMem.channels = 1;
    cfg.dimmMem.dimmsPerChannel = 1;
    cfg.dimmMem.ranksPerDimm = 1;
    cfg.localBase = 0;
    cfg.localPages = numPages;
    cfg.sfmBase = gib(1);
    cfg.sfmBytes = mib(32);
    cfg.algorithm = compress::Algorithm::LzFast;
    cfg.device.spmBytes = mib(2);
    cfg.device.queueDepth = 64;
    // The swept knob. depth == 1 keeps the legacy synchronous
    // submit path (no ring); deeper points engage the async rings.
    cfg.device.sqDepth = depth;
    cfg.device.cqCoalesce = 1;  // reap eagerly: latency-true sweep
    xfmsys::XfmBackend backend("qd", eq, cfg);
    for (sfm::VirtPage p = 0; p < numPages; ++p)
        backend.writePage(p, pageFor(p));
    backend.start();

    // `depth` independent page streams, each cycling out -> in, keep
    // every DIMM's submission queue exactly as deep as the sweep
    // point asks (one shard per DIMM per page in flight).
    DepthResult r;
    r.depth = depth;
    std::function<void(sfm::VirtPage)> cycle =
        [&](sfm::VirtPage p) {
        if (eq.now() >= horizon)
            return;
        backend.swapOut(p, true, [&, p](const sfm::SwapOutcome &o) {
            if (!o.success) {
                // Transient rejection: retry the stream shortly.
                eq.scheduleIn(microseconds(1.0),
                              [&, p] { cycle(p); });
                return;
            }
            if (eq.now() < horizon)
                ++r.ops;
            backend.swapIn(p, true,
                           [&, p](const sfm::SwapOutcome &) {
                if (eq.now() < horizon)
                    ++r.ops;
                eq.scheduleIn(1, [&, p] { cycle(p); });
            });
        });
    };
    const std::uint32_t streams =
        std::min<std::uint32_t>(depth, numPages);
    for (std::uint32_t s = 0; s < streams; ++s)
        cycle(s);
    eq.run(horizon);
    r.pagesPerSec = static_cast<double>(r.ops)
        / (static_cast<double>(horizon) / seconds(1.0));

    // Drain in-flight cycles, then restore every page and audit the
    // bytes: the ring may reorder completions but may not cost a
    // byte, at any depth.
    eq.run(eq.now() + seconds(1.0));
    for (sfm::VirtPage p = 0; p < numPages; ++p) {
        if (backend.pageState(p) == sfm::PageState::Far)
            backend.swapIn(p, false, [](const sfm::SwapOutcome &) {});
    }
    eq.run(eq.now() + seconds(1.0));
    r.auditOk = true;
    r.auditHash = 14695981039346656037ull;
    for (sfm::VirtPage p = 0; p < numPages; ++p) {
        const Bytes restored = backend.readPage(p);
        r.auditOk &= restored == pageFor(p);
        r.auditHash = fnv1a(r.auditHash, restored);
    }

    r.fallbacks =
        backend.stats().cpuSwapOuts + backend.stats().cpuSwapIns;
    obs::MetricRegistry reg;
    backend.registerMetrics(reg);
    const obs::Snapshot snap = reg.snapshot();
    for (const auto &leaf : snap.leaves()) {
        if (leaf.name.find(".ring.doorbells") != std::string::npos)
            r.doorbells += leaf.u;
        if (leaf.name.find(".ring.reaped") != std::string::npos)
            r.reaped += leaf.u;
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_QD.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: qd_sweep [--smoke] [--out FILE]\n");
            return 1;
        }
    }

    const Tick horizon =
        smoke ? milliseconds(5.0) : milliseconds(50.0);
    const std::vector<std::uint32_t> depths = {1, 2, 4, 8, 16, 32};

    std::printf("qd_sweep%s: 4 DIMMs, %llu pages, %.1f ms horizon\n\n",
                smoke ? " (smoke)" : "",
                (unsigned long long)numPages,
                static_cast<double>(horizon) / milliseconds(1.0));
    std::printf("  %5s  %12s  %8s  %9s  %9s  %s\n", "depth",
                "pages/s(sim)", "swaps", "doorbells", "fallbacks",
                "audit");

    std::vector<DepthResult> results;
    for (const auto d : depths) {
        results.push_back(runDepth(d, horizon));
        const auto &r = results.back();
        std::printf("  %5u  %12.0f  %8llu  %9llu  %9llu  %s\n",
                    r.depth, r.pagesPerSec,
                    (unsigned long long)r.ops,
                    (unsigned long long)r.doorbells,
                    (unsigned long long)r.fallbacks,
                    r.auditOk ? "ok" : "CORRUPT");
    }

    // The only gate: every depth restored every byte, and all depths
    // restored the SAME bytes. Throughput is reported, not gated.
    bool data_ok = true;
    for (const auto &r : results) {
        data_ok &= r.auditOk;
        data_ok &= r.auditHash == results.front().auditHash;
    }

    const DepthResult *d1 = &results.front();
    const DepthResult *d8 = d1;
    for (const auto &r : results)
        if (r.depth == 8)
            d8 = &r;
    const double speedup = d1->pagesPerSec > 0.0
        ? d8->pagesPerSec / d1->pagesPerSec
        : 0.0;
    std::printf("\n  depth-8 vs depth-1: %.2fx   cross-depth data: "
                "%s\n",
                speedup, data_ok ? "identical" : "DIVERGED");

    std::string j = "{\n  \"schema\": \"xfm.qd_sweep.v1\",\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"smoke\": %s,\n  \"pages\": %llu,\n"
                  "  \"data_identical\": %s,\n"
                  "  \"speedup_d8_over_d1\": %.3f,\n",
                  smoke ? "true" : "false",
                  (unsigned long long)numPages,
                  data_ok ? "true" : "false", speedup);
    j += buf;
    j += "  \"sweep\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"depth\": %u, \"pages_per_sec\": %.1f, "
            "\"swaps\": %llu, \"doorbells\": %llu, "
            "\"reaped\": %llu, \"fallbacks\": %llu, "
            "\"audit_ok\": %s}%s\n",
            r.depth, r.pagesPerSec, (unsigned long long)r.ops,
            (unsigned long long)r.doorbells,
            (unsigned long long)r.reaped,
            (unsigned long long)r.fallbacks,
            r.auditOk ? "true" : "false",
            i + 1 < results.size() ? "," : "");
        j += buf;
    }
    j += "  ]\n}\n";

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "qd_sweep: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());

    return data_ok ? 0 : 1;
}
