/**
 * @file
 * tier_sweep: demotion-policy comparison under working-set drift.
 *
 * One point per TierManager policy in {xfm_first, auto, dfm_first}:
 * a kstaled-style controller runs over a TierManager wrapping a
 * 4-DIMM XfmBackend while a drifting hot window (zipf-popular pages
 * inside the window, the window itself sliding across the shard)
 * forces continuous demotion and re-promotion. The three policies
 * split the same demotion stream differently — xfm_first keeps
 * everything compressed, dfm_first pushes everything over the spill
 * link, auto routes by the access-frequency watermark — so the
 * reported fault-service latency, tier occupancy, and promotion
 * counts separate measurably.
 *
 * After each point the harness drains, promotes every far page and
 * audits the restored bytes against the generator corpus; a FNV-1a
 * fingerprint of all restored pages is compared across policies.
 * The exit code gates ONLY on this data audit — policy numbers are
 * measurements, reported in BENCH_TIER.json (schema
 * xfm.tier_sweep.v1) for CI to archive, never a pass/fail
 * criterion.
 *
 * Usage: tier_sweep [--smoke] [--out FILE]
 *   --smoke   short simulated horizon (CI smoke test)
 *   --out     JSON destination (default BENCH_TIER.json)
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/random.hh"
#include "compress/corpus.hh"
#include "sfm/controller.hh"
#include "sfm/tier_manager.hh"
#include "xfm/xfm_backend.hh"

using namespace xfm;

namespace
{

constexpr sfm::VirtPage numPages = 96;
constexpr std::uint64_t windowPages = 24;

Bytes
pageFor(sfm::VirtPage p)
{
    return compress::generateCorpus(compress::CorpusKind::HeapObjects,
                                    p + 1, pageBytes);
}

std::uint64_t
fnv1a(std::uint64_t h, ByteSpan data)
{
    for (const std::uint8_t b : data) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

struct PolicyResult
{
    sfm::TierPolicy policy = sfm::TierPolicy::Auto;
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t faults = 0;
    double faultServiceNs = 0.0;   ///< mean demand swap-in latency
    std::uint64_t demotedToXfm = 0;
    std::uint64_t demotedToDfm = 0;  ///< direct NEAR -> DFM legs
    std::uint64_t spilledXfmToDfm = 0;
    std::uint64_t promotedFromXfm = 0;
    std::uint64_t promotedFromDfm = 0;
    std::uint64_t watermarkHolds = 0;
    std::uint64_t auditHash = 0;   ///< FNV-1a over restored pages
    bool auditOk = false;          ///< every byte matched the corpus
};

PolicyResult
runPolicy(sfm::TierPolicy policy, Tick horizon)
{
    EventQueue eq;
    xfmsys::XfmSystemConfig xcfg;
    xcfg.numDimms = 4;
    xcfg.dimmMem.rank.device = dram::ddr5Device32Gb();
    xcfg.dimmMem.channels = 1;
    xcfg.dimmMem.dimmsPerChannel = 1;
    xcfg.dimmMem.ranksPerDimm = 1;
    xcfg.localBase = 0;
    xcfg.localPages = numPages;
    xcfg.sfmBase = gib(1);
    xcfg.sfmBytes = mib(32);
    xcfg.algorithm = compress::Algorithm::LzFast;
    xcfg.device.spmBytes = mib(2);
    xcfg.device.queueDepth = 64;
    xfmsys::XfmBackend backend("ts", eq, xcfg);
    for (sfm::VirtPage p = 0; p < numPages; ++p)
        backend.writePage(p, pageFor(p));

    sfm::TierConfig tcfg;
    tcfg.enabled = true;
    tcfg.policy = policy;   // the swept knob
    tcfg.promoteWatermark = 2;
    tcfg.scanInterval = milliseconds(1.0);
    tcfg.spillColdThreshold = milliseconds(5.0);
    tcfg.maxSpillsPerScan = 16;
    tcfg.dfmBytes = mib(1);
    sfm::TierManager tiers("ts.tiers", eq, tcfg, backend, numPages);

    sfm::ControllerConfig ccfg;
    ccfg.coldThreshold = milliseconds(2.0);
    ccfg.scanInterval = milliseconds(1.0);
    ccfg.maxSwapOutsPerScan = 16;
    sfm::SfmController ctrl("ts.ctrl", eq, ccfg, tiers, numPages);

    backend.start();
    tiers.start();
    ctrl.start();

    // Working-set drift: zipf-popular pages inside a hot window
    // that slides across the shard, retiring pages behind it. The
    // sequence is seed-fixed, so every policy sees the exact same
    // access stream and only the demotion routing differs.
    PolicyResult r;
    r.policy = policy;
    Rng rng(42);
    std::uint64_t window_start = 0;
    const Tick gap = microseconds(20.0);
    const Tick drift_every = milliseconds(2.0);
    Tick next_drift = drift_every;
    std::function<void()> step = [&] {
        if (eq.now() >= horizon)
            return;
        if (eq.now() >= next_drift) {
            window_start = (window_start + 4) % numPages;
            next_drift += drift_every;
        }
        const sfm::VirtPage page =
            (window_start + rng.zipf(windowPages, 0.9)) % numPages;
        ++r.accesses;
        if (ctrl.recordAccess(page))
            ++r.hits;
        else
            ++r.faults;
        eq.scheduleIn(gap, step);
    };
    eq.scheduleIn(gap, step);
    eq.run(horizon);

    // Drain in-flight work, then promote everything and audit: no
    // policy may cost a byte, wherever it parked the pages.
    eq.run(eq.now() + seconds(1.0));
    for (sfm::VirtPage p = 0; p < numPages; ++p) {
        if (tiers.pageState(p) == sfm::PageState::Far)
            tiers.swapIn(p, false, [](const sfm::SwapOutcome &) {});
    }
    eq.run(eq.now() + seconds(1.0));
    r.auditOk = true;
    r.auditHash = 14695981039346656037ull;
    for (sfm::VirtPage p = 0; p < numPages; ++p) {
        const Bytes restored = backend.readPage(p);
        r.auditOk &= restored == pageFor(p);
        r.auditHash = fnv1a(r.auditHash, restored);
    }

    r.faultServiceNs = ctrl.stats().faultServiceNs.mean();
    const sfm::TierStats &ts = tiers.tierStats();
    r.demotedToXfm = ts.demotedNearToXfm;
    r.demotedToDfm = ts.demotedNearToDfm;
    r.spilledXfmToDfm = ts.demotedXfmToDfm;
    r.promotedFromXfm = ts.promotedFromXfm;
    r.promotedFromDfm = ts.promotedFromDfm;
    r.watermarkHolds = ts.watermarkHolds;
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out = "BENCH_TIER.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: tier_sweep [--smoke] [--out FILE]\n");
            return 1;
        }
    }

    const Tick horizon =
        smoke ? milliseconds(10.0) : milliseconds(60.0);
    const std::vector<sfm::TierPolicy> policies = {
        sfm::TierPolicy::XfmFirst,
        sfm::TierPolicy::Auto,
        sfm::TierPolicy::DfmFirst,
    };

    std::printf("tier_sweep%s: %llu pages, %llu-page drifting "
                "window, %.1f ms horizon\n\n",
                smoke ? " (smoke)" : "",
                (unsigned long long)numPages,
                (unsigned long long)windowPages,
                static_cast<double>(horizon) / milliseconds(1.0));
    std::printf("  %-9s  %8s  %7s  %10s  %9s  %9s  %9s  %s\n",
                "policy", "accesses", "faults", "fault ns",
                "dem->xfm", "dem->dfm", "spill", "audit");

    std::vector<PolicyResult> results;
    for (const auto p : policies) {
        results.push_back(runPolicy(p, horizon));
        const auto &r = results.back();
        std::printf("  %-9s  %8llu  %7llu  %10.0f  %9llu  %9llu"
                    "  %9llu  %s\n",
                    sfm::tierPolicyName(r.policy),
                    (unsigned long long)r.accesses,
                    (unsigned long long)r.faults, r.faultServiceNs,
                    (unsigned long long)r.demotedToXfm,
                    (unsigned long long)(r.demotedToDfm),
                    (unsigned long long)r.spilledXfmToDfm,
                    r.auditOk ? "ok" : "CORRUPT");
    }

    // The only gate: every policy restored every byte, and all
    // policies restored the SAME bytes. Separation is reported, not
    // gated.
    bool data_ok = true;
    for (const auto &r : results) {
        data_ok &= r.auditOk;
        data_ok &= r.auditHash == results.front().auditHash;
    }

    // Separation indicator: spread of the DFM share of demotions
    // across policies (xfm_first pins it at 0, dfm_first near 1).
    double min_share = 1.0, max_share = 0.0;
    for (const auto &r : results) {
        const std::uint64_t total = r.demotedToXfm + r.demotedToDfm
            + r.spilledXfmToDfm;
        const double share = total
            ? static_cast<double>(r.demotedToDfm + r.spilledXfmToDfm)
                / static_cast<double>(total)
            : 0.0;
        min_share = std::min(min_share, share);
        max_share = std::max(max_share, share);
    }
    std::printf("\n  dfm-share spread: %.2f .. %.2f   cross-policy "
                "data: %s\n",
                min_share, max_share,
                data_ok ? "identical" : "DIVERGED");

    std::string j = "{\n  \"schema\": \"xfm.tier_sweep.v1\",\n";
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "  \"smoke\": %s,\n  \"pages\": %llu,\n"
                  "  \"data_identical\": %s,\n"
                  "  \"dfm_share_min\": %.3f,\n"
                  "  \"dfm_share_max\": %.3f,\n",
                  smoke ? "true" : "false",
                  (unsigned long long)numPages,
                  data_ok ? "true" : "false", min_share, max_share);
    j += buf;
    j += "  \"sweep\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        std::snprintf(
            buf, sizeof buf,
            "    {\"policy\": \"%s\", \"accesses\": %llu, "
            "\"faults\": %llu, \"fault_service_ns\": %.1f, "
            "\"demoted_to_xfm\": %llu, \"demoted_to_dfm\": %llu, "
            "\"spilled_xfm_to_dfm\": %llu, "
            "\"promoted_from_xfm\": %llu, "
            "\"promoted_from_dfm\": %llu, "
            "\"watermark_holds\": %llu, \"audit_ok\": %s}%s\n",
            sfm::tierPolicyName(r.policy),
            (unsigned long long)r.accesses,
            (unsigned long long)r.faults, r.faultServiceNs,
            (unsigned long long)r.demotedToXfm,
            (unsigned long long)r.demotedToDfm,
            (unsigned long long)r.spilledXfmToDfm,
            (unsigned long long)r.promotedFromXfm,
            (unsigned long long)r.promotedFromDfm,
            (unsigned long long)r.watermarkHolds,
            r.auditOk ? "true" : "false",
            i + 1 < results.size() ? "," : "");
        j += buf;
    }
    j += "  ]\n}\n";

    std::FILE *f = std::fopen(out.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "tier_sweep: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", out.c_str());

    return data_ok ? 0 : 1;
}
