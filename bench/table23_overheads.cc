/**
 * @file
 * Reproduces Table 2 (FPGA resource utilisation of XFM) and
 * Table 3 (power-consumption breakdown), plus the Sec. 8 CACTI-style
 * estimate of the DRAM bank modifications.
 */

#include <cstdio>

#include "costmodel/cost_model.hh"

using namespace xfm::costmodel;

int
main()
{
    const auto u = estimateFpgaUtilization();
    std::printf("Table 2: FPGA resource utilization of XFM\n\n");
    std::printf("%-10s %10s %10s %9s\n", "Resource", "Used", "Total",
                "Percent");
    std::printf("%-10s %10llu %10llu %8.2f%%\n", "LUTs",
                (unsigned long long)u.luts,
                (unsigned long long)u.lutsTotal, u.lutPercent());
    std::printf("%-10s %10llu %10llu %8.2f%%\n", "FFs",
                (unsigned long long)u.ffs,
                (unsigned long long)u.ffsTotal, u.ffPercent());
    std::printf("%-10s %10llu %10llu %8.2f%%\n", "BRAM",
                (unsigned long long)u.bram,
                (unsigned long long)u.bramTotal, u.bramPercent());

    const auto p = estimateFpgaPower();
    std::printf("\nTable 3: Power consumption breakdown of XFM\n\n");
    std::printf("Total = %.3f Watts   Dynamic %.3f (%2.0f%%)   "
                "Static %.3f (%2.0f%%)\n",
                p.totalWatts(), p.dynamicWatts, p.dynamicPercent(),
                p.staticWatts, 100.0 - p.dynamicPercent());

    const auto o = estimateDramOverhead();
    std::printf("\nSec. 8 CACTI estimate, 8Gb DDR4 @ 22nm "
                "(SALP latches per subarray):\n");
    std::printf("  area overhead : ~%.2f%%\n", o.areaPercent);
    std::printf("  power overhead: ~%.3f%%\n", o.powerPercent);

    std::printf("\nEngine scaling (utilisation vs throughput):\n");
    std::printf("%10s %10s %12s %10s\n", "comp GB/s", "dec GB/s",
                "LUTs", "dyn W");
    for (double scale : {0.5, 1.0, 2.0}) {
        const auto su =
            estimateFpgaUtilization(1.4 * scale, 1.7 * scale);
        const auto sp = estimateFpgaPower(1.4 * scale, 1.7 * scale);
        std::printf("%10.2f %10.2f %12llu %10.2f\n", 1.4 * scale,
                    1.7 * scale, (unsigned long long)su.luts,
                    sp.dynamicWatts);
    }
    return 0;
}
