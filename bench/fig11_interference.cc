/**
 * @file
 * Reproduces Fig. 11: interference between SPEC-like workloads and
 * co-running SFM swap traffic (512 GB SFM, 14% promotion rate)
 * under Baseline-CPU, Host-Lockout-NMA, and XFM interfaces, plus
 * the abstract's combined-performance summary (XFM improves the
 * combined performance of co-running applications by 5~27%).
 */

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "dram/mem_ctrl.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "interference/corun.hh"
#include "nma/lockout_device.hh"
#include "nma/xfm_device.hh"
#include "workload/spec_model.hh"

using namespace xfm;
using namespace xfm::interference;

int
main()
{
    const auto apps = workload::specMemoryIntensiveMix();
    CoRunConfig cfg;

    std::vector<CoRunOutcome> outcomes;
    for (auto iface : {SfmInterface::BaselineCpu,
                       SfmInterface::HostLockoutNma,
                       SfmInterface::Xfm}) {
        outcomes.push_back(runCoRun(apps, iface, cfg));
    }

    std::printf("Fig. 11: co-run slowdown (%%) per workload, 512 GB "
                "SFM @ 14%% promotion rate\n\n");
    std::printf("%-11s", "workload");
    for (const auto &o : outcomes)
        std::printf(" %17s", interfaceName(o.interface_).c_str());
    std::printf("\n");
    for (std::size_t a = 0; a < apps.size(); ++a) {
        std::printf("%-11s", apps[a].name.c_str());
        for (const auto &o : outcomes)
            std::printf(" %16.2f%%", o.apps[a].slowdownPercent);
        std::printf("\n");
    }
    std::printf("%-11s", "average");
    for (const auto &o : outcomes)
        std::printf(" %16.2f%%", o.avgSlowdownPercent);
    std::printf("\n%-11s", "max");
    for (const auto &o : outcomes)
        std::printf(" %16.2f%%", o.maxSlowdownPercent);

    std::printf("\n\nSFM throughput relative to running alone:\n");
    for (const auto &o : outcomes)
        std::printf("  %-18s %.3f (%.1f%% degradation)\n",
                    interfaceName(o.interface_).c_str(),
                    o.sfmThroughputFactor,
                    100.0 * (1.0 - o.sfmThroughputFactor));

    std::printf("\nDiagnostics:\n");
    for (const auto &o : outcomes) {
        std::printf("  %-18s bw util %.2f, extra rank-locked "
                    "fraction %.3f\n",
                    interfaceName(o.interface_).c_str(),
                    o.bandwidthUtilisation, o.rankLockedFraction);
    }

    // Combined performance: apps + SFM job, following the paper's
    // framing that SFM throughput loss also costs job throughput.
    std::printf("\nCombined co-running performance gain of XFM "
                "(abstract: 5~27%%):\n");
    const auto &cpu = outcomes[0];
    const auto &lock = outcomes[1];
    auto combined = [](const CoRunOutcome &o) {
        // Geometric-mean app throughput x SFM throughput.
        double prod = 1.0;
        for (const auto &a : o.apps)
            prod *= 1.0 / (1.0 + a.slowdownPercent / 100.0);
        const double apps_tp =
            std::pow(prod, 1.0 / o.apps.size());
        return apps_tp * o.sfmThroughputFactor;
    };
    const double vs_cpu = (1.0 / combined(cpu) - 1.0) * 100.0;
    const double vs_lock = (1.0 / combined(lock) - 1.0) * 100.0;
    std::printf("  vs Baseline-CPU     : +%.1f%% (min of range)\n",
                vs_cpu);
    std::printf("  vs Host-Lockout-NMA : +%.1f%%\n", vs_lock);
    std::printf("  worst single app vs Host-Lockout: +%.1f%% (max "
                "of range)\n",
                lock.maxSlowdownPercent
                    + 100.0 * (1.0 - cpu.sfmThroughputFactor));

    // ---- job mixes (paper: multiple SPEC applications co-run on
    // separate CPUs in mix configurations) -----------------------
    std::printf("\nJob mixes (average slowdown %%):\n");
    const struct
    {
        const char *name;
        std::vector<std::size_t> members;
    } mixes[] = {
        {"mix-bw (mcf,lbm,fotonik3d,roms)", {0, 1, 6, 7}},
        {"mix-lat (omnetpp,gcc,xalancbmk,cactuBSSN)", {2, 3, 4, 5}},
        {"mix-hi (mcf,omnetpp,fotonik3d,xalancbmk)", {0, 2, 6, 4}},
        {"mix-all (8 workloads)", {0, 1, 2, 3, 4, 5, 6, 7}},
    };
    std::printf("%-44s", "mix");
    for (const auto &o : outcomes)
        std::printf(" %17s", interfaceName(o.interface_).c_str());
    std::printf("\n");
    for (const auto &mix : mixes) {
        std::vector<workload::AppProfile> members;
        for (auto idx : mix.members)
            members.push_back(apps[idx]);
        std::printf("%-44s", mix.name);
        for (auto iface : {SfmInterface::BaselineCpu,
                           SfmInterface::HostLockoutNma,
                           SfmInterface::Xfm}) {
            const auto r = runCoRun(members, iface, cfg);
            std::printf(" %16.2f%%", r.avgSlowdownPercent);
        }
        std::printf("\n");
    }

    // ---- DRAM-level validation of the lockout premise ----------
    // Drive one rank's memory controller with host reads while an
    // NMA performs offloads through (a) the Host-Lockout interface
    // and (b) XFM's refresh-window channel, and compare the mean
    // host access latency.
    std::printf("\nDRAM-level check (one rank, 64 B host reads "
                "every 1 us, offload every 5 us):\n");
    auto run_host_latency = [&](bool use_lockout) {
        EventQueue eq;
        dram::MemSystemConfig mc;
        mc.rank.device = dram::ddr5Device32Gb();
        mc.channels = 1;
        mc.dimmsPerChannel = 1;
        mc.ranksPerDimm = 1;
        dram::AddressMap map(mc);
        dram::PhysMem mem(mc.totalCapacityBytes());
        dram::RefreshController refresh("refresh", eq,
                                        mc.rank.device, 1);
        dram::MemCtrl ctrl("memctrl", eq, mc, &refresh);
        refresh.start();

        auto addr_of_row = [&](std::uint32_t row) {
            dram::DramCoord c{};
            c.row = row;
            return map.encode(c);
        };
        mem.write(addr_of_row(10), Bytes(4096, 0x3C));

        std::unique_ptr<nma::HostLockoutDevice> lockout;
        std::unique_ptr<nma::XfmDevice> xfm;
        if (use_lockout) {
            nma::LockoutDeviceConfig lcfg;
            lcfg.engine = nma::EngineProfile::fpgaSoftCore();
            lockout = std::make_unique<nma::HostLockoutDevice>(
                "lockout", eq, lcfg, mem, ctrl);
        } else {
            nma::XfmDeviceConfig xcfg;
            xfm = std::make_unique<nma::XfmDevice>(
                "xfm", eq, xcfg, map, mem, refresh);
            xfm->setCompletionCallback(
                [&xfm, addr_of_row](const nma::OffloadCompletion &c) {
                xfm->commitWriteback(c.id, addr_of_row(3000));
            });
        }
        for (int i = 0; i < 400; ++i) {
            eq.schedule(microseconds(i * 5.0), [&, i] {
                nma::OffloadRequest req;
                req.kind = nma::OffloadKind::Compress;
                req.srcAddr = addr_of_row(10);
                req.size = 4096;
                if (use_lockout) {
                    req.dstAddr = addr_of_row(2000 + i % 64);
                    lockout->offload(req, nullptr);
                } else {
                    req.deadline = eq.now() + milliseconds(32.0);
                    xfm->submit(req);
                }
            });
        }
        auto sum = std::make_shared<double>(0.0);
        auto count = std::make_shared<int>(0);
        for (Tick t = 0; t < milliseconds(2.0);
             t += microseconds(1.0)) {
            eq.schedule(t, [&, t, sum, count] {
                ctrl.submit({kib(64) + (t % kib(4)), 64, false,
                             [=](Tick done) {
                    *sum += ticksToNs(done - t);
                    ++*count;
                }});
            });
        }
        eq.run(milliseconds(3.0));
        return *count ? *sum / *count : 0.0;
    };
    const double lat_lockout = run_host_latency(true);
    const double lat_xfm = run_host_latency(false);
    std::printf("  host read latency under Host-Lockout NMA : "
                "%.1f ns\n", lat_lockout);
    std::printf("  host read latency under XFM              : "
                "%.1f ns (refresh-only baseline)\n", lat_xfm);
    std::printf("  lockout inflates host latency %.2fx while XFM "
                "is invisible to the memory controller.\n",
                lat_lockout / lat_xfm);
    return 0;
}
