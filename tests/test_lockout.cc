/**
 * @file
 * Integration tests for the Host-Lockout NMA baseline and the
 * MemCtrl rank-lock interface: offloads must stall co-running host
 * traffic under lockout but not under XFM's refresh-window channel
 * — the mechanism behind Fig. 11's ordering.
 */

#include <gtest/gtest.h>

#include <optional>

#include "compress/corpus.hh"
#include "dram/mem_ctrl.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "nma/lockout_device.hh"
#include "nma/xfm_device.hh"
#include "sim/event_queue.hh"

namespace xfm
{
namespace nma
{
namespace
{

dram::MemSystemConfig
testConfig()
{
    dram::MemSystemConfig cfg;
    cfg.rank.device = dram::ddr5Device32Gb();
    cfg.channels = 1;
    cfg.dimmsPerChannel = 1;
    cfg.ranksPerDimm = 1;
    return cfg;
}

TEST(MemCtrlLock, ExternalLockStallsRequests)
{
    EventQueue eq;
    const auto cfg = testConfig();
    dram::MemCtrl ctrl("memctrl", eq, cfg, nullptr);

    ctrl.lockRank(0, 0, microseconds(5.0));
    Tick done = 0;
    ctrl.submit({0, 64, false, [&](Tick t) { done = t; }});
    eq.run();
    EXPECT_GE(done, microseconds(5.0));
    EXPECT_GT(ctrl.stats().extLockStallTicks, 0u);
}

TEST(MemCtrlLock, LockExtendsNotShrinks)
{
    EventQueue eq;
    const auto cfg = testConfig();
    dram::MemCtrl ctrl("memctrl", eq, cfg, nullptr);
    ctrl.lockRank(0, 0, microseconds(10.0));
    ctrl.lockRank(0, 0, microseconds(2.0));  // must not shorten
    Tick done = 0;
    ctrl.submit({0, 64, false, [&](Tick t) { done = t; }});
    eq.run();
    EXPECT_GE(done, microseconds(10.0));
}

class LockoutVsXfmTest : public ::testing::Test
{
  protected:
    LockoutVsXfmTest()
        : cfg_(testConfig()), map_(cfg_),
          mem_(cfg_.totalCapacityBytes()),
          refresh_("refresh", eq_, cfg_.rank.device, 1),
          ctrl_("memctrl", eq_, cfg_, &refresh_)
    {
        page_ = compress::generateCorpus(
            compress::CorpusKind::Html, 7, pageBytes);
    }

    std::uint64_t
    rowAddr(std::uint32_t row) const
    {
        dram::DramCoord c{};
        c.row = row;
        return map_.encode(c);
    }

    /** Issue host reads every microsecond; return mean latency. */
    double
    hostTrafficMeanLatencyNs(Tick horizon)
    {
        auto sum = std::make_shared<double>(0.0);
        auto count = std::make_shared<int>(0);
        for (Tick t = 0; t < horizon; t += microseconds(1.0)) {
            eq_.schedule(t, [this, t, sum, count] {
                ctrl_.submit({kib(64) + (t % kib(4)), 64, false,
                              [=](Tick done) {
                    *sum += ticksToNs(done - t);
                    ++*count;
                }});
            });
        }
        eq_.run(horizon + milliseconds(1.0));
        return *count ? *sum / *count : 0.0;
    }

    EventQueue eq_;
    dram::MemSystemConfig cfg_;
    dram::AddressMap map_;
    dram::PhysMem mem_;
    dram::RefreshController refresh_;
    dram::MemCtrl ctrl_;
    Bytes page_;
};

TEST_F(LockoutVsXfmTest, LockoutOffloadsCorrect)
{
    LockoutDeviceConfig dcfg;
    dcfg.engine = EngineProfile::fpgaSoftCore();
    HostLockoutDevice dev("lockout", eq_, dcfg, mem_, ctrl_);

    mem_.write(rowAddr(10), page_);
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(10);
    req.size = 4096;
    req.dstAddr = rowAddr(500);

    std::optional<OffloadCompletion> completion;
    dev.offload(req, [&](const OffloadCompletion &c) {
        completion = c;
    });
    eq_.run(milliseconds(1.0));
    ASSERT_TRUE(completion.has_value());
    EXPECT_LT(completion->outputSize, 4096u);

    // Round trip through a decompress offload.
    OffloadRequest back;
    back.kind = OffloadKind::Decompress;
    back.srcAddr = rowAddr(500);
    back.size = completion->outputSize;
    back.dstAddr = rowAddr(900);
    back.rawSize = 4096;
    bool done = false;
    dev.offload(back, [&](const OffloadCompletion &) { done = true; });
    eq_.run(eq_.now() + milliseconds(1.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(mem_.read(rowAddr(900), pageBytes), page_);
    EXPECT_GT(dev.stats().rankLockedTicks, 0u);
}

TEST_F(LockoutVsXfmTest, LockoutStallsHostXfmDoesNot)
{
    refresh_.start();

    // Measure host latency with a lockout NMA running a steady
    // offload stream on a slow (FPGA-class) engine.
    LockoutDeviceConfig dcfg;
    dcfg.engine = EngineProfile::fpgaSoftCore();
    HostLockoutDevice lockout("lockout", eq_, dcfg, mem_, ctrl_);
    mem_.write(rowAddr(10), page_);
    for (int i = 0; i < 400; ++i) {
        eq_.schedule(microseconds(i * 5.0), [&, i] {
            OffloadRequest req;
            req.kind = OffloadKind::Compress;
            req.srcAddr = rowAddr(10);
            req.size = 4096;
            req.dstAddr = rowAddr(2000 + i % 64);
            lockout.offload(req, nullptr);
        });
    }
    const double with_lockout =
        hostTrafficMeanLatencyNs(milliseconds(2.0));

    // Fresh system: the same offload stream through an XfmDevice
    // (refresh-window channel) leaves host latency at the
    // refresh-only baseline.
    EventQueue eq2;
    dram::RefreshController refresh2("refresh", eq2,
                                     cfg_.rank.device, 1);
    dram::MemCtrl ctrl2("memctrl", eq2, cfg_, &refresh2);
    dram::PhysMem mem2(cfg_.totalCapacityBytes());
    XfmDeviceConfig xcfg;
    XfmDevice xfm("xfm", eq2, xcfg, map_, mem2, refresh2);
    refresh2.start();
    mem2.write(rowAddr(10), page_);
    for (int i = 0; i < 400; ++i) {
        eq2.schedule(microseconds(i * 5.0), [&, i] {
            OffloadRequest req;
            req.kind = OffloadKind::Compress;
            req.srcAddr = rowAddr(10);
            req.size = 4096;
            req.deadline = eq2.now() + milliseconds(32.0);
            const auto id = xfm.submit(req);
            (void)id;
        });
    }
    xfm.setCompletionCallback([&](const OffloadCompletion &c) {
        xfm.commitWriteback(c.id, rowAddr(3000));
    });
    auto sum = std::make_shared<double>(0.0);
    auto count = std::make_shared<int>(0);
    for (Tick t = 0; t < milliseconds(2.0); t += microseconds(1.0)) {
        eq2.schedule(t, [&, t, sum, count] {
            ctrl2.submit({kib(64) + (t % kib(4)), 64, false,
                          [=](Tick done) {
                *sum += ticksToNs(done - t);
                ++*count;
            }});
        });
    }
    eq2.run(milliseconds(3.0));
    const double with_xfm = *sum / *count;

    // The lockout device must visibly inflate host latency; XFM's
    // traffic is invisible to the host memory controller.
    EXPECT_GT(with_lockout, with_xfm * 1.2);
    EXPECT_GT(ctrl_.stats().extLockStallTicks, 0u);
    EXPECT_EQ(ctrl2.stats().extLockStallTicks, 0u);
}

} // namespace
} // namespace nma
} // namespace xfm
