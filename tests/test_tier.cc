/**
 * @file
 * TierManager unit tests: watermark routing across the NEAR/XFM/DFM
 * lattice, the spill scan (second-level coldness and capacity
 * pressure), per-group policy isolation, pool-full fallback, busy
 * re-entry, and tier-map coherence across backend-initiated
 * reclaims (quarantine-cap evictions).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "sfm/cpu_backend.hh"
#include "sfm/tier_manager.hh"
#include "test_util.hh"
#include "xfm/xfm_backend.hh"

namespace xfm
{
namespace
{

using sfm::PageState;
using sfm::RejectReason;
using sfm::SwapOutcome;
using sfm::Tier;
using sfm::TierConfig;
using sfm::TierPolicy;
using sfm::VirtPage;

Bytes
pageFor(VirtPage p)
{
    return testutil::corpusPage(compress::CorpusKind::EnglishText,
                                p + 1);
}

/** Tier config used across the suite: enabled, no background scan
 *  (tests that want the scan turn it back on), roomy spill pool. */
TierConfig
baseTierConfig()
{
    TierConfig t;
    t.enabled = true;
    t.scanInterval = 0;
    t.promoteWatermark = 2;
    t.dfmBytes = mib(1);
    return t;
}

/** A TierManager over the baseline CPU backend, pages pre-seeded
 *  with deterministic corpus content. */
struct CpuTierRig
{
    static constexpr VirtPage pages = 16;

    EventQueue eq;
    dram::PhysMem mem;
    sfm::CpuSfmBackend cpu;
    sfm::TierManager tiers;

    explicit CpuTierRig(const TierConfig &tcfg)
        : mem(mib(16)),
          cpu("cpu", eq, cpuConfig(), mem),
          tiers("tiers", eq, tcfg, cpu, pages)
    {
        for (VirtPage p = 0; p < pages; ++p)
            tiers.writeLocalPage(p, pageFor(p));
    }

    static sfm::CpuBackendConfig
    cpuConfig()
    {
        sfm::CpuBackendConfig c;
        c.localBase = 0;
        c.localPages = pages;
        c.sfmBase = mib(8);
        c.sfmBytes = mib(4);
        return c;
    }

    void run(Tick d) { eq.run(eq.now() + d); }

    SwapOutcome
    demote(VirtPage p)
    {
        SwapOutcome r;
        bool fired = false;
        tiers.swapOut(p, [&](const SwapOutcome &o) {
            r = o;
            fired = true;
        });
        run(milliseconds(1.0));
        EXPECT_TRUE(fired) << "swapOut(" << p << ") never completed";
        return r;
    }

    SwapOutcome
    promote(VirtPage p)
    {
        SwapOutcome r;
        bool fired = false;
        tiers.swapIn(p, false, [&](const SwapOutcome &o) {
            r = o;
            fired = true;
        });
        run(milliseconds(1.0));
        EXPECT_TRUE(fired) << "swapIn(" << p << ") never completed";
        return r;
    }

    /** Touch @p p @p times right now (feeds the watermark). */
    void
    touch(VirtPage p, unsigned times)
    {
        for (unsigned i = 0; i < times; ++i)
            tiers.noteAccess(p, eq.now());
    }
};

TEST(TierManager, WatermarkRoutesDemotions)
{
    CpuTierRig rig(baseTierConfig());

    // Page 0 is hot (at the watermark), page 1 a cold stranger.
    rig.touch(0, 2);
    const SwapOutcome hot = rig.demote(0);
    const SwapOutcome cold = rig.demote(1);

    ASSERT_TRUE(hot.success);
    ASSERT_TRUE(cold.success);
    EXPECT_EQ(hot.servedTier, Tier::Xfm);
    EXPECT_EQ(cold.servedTier, Tier::Dfm);
    EXPECT_EQ(cold.compressedSize, 0u);  // spill slots never compress
    EXPECT_EQ(rig.tiers.tier(0), Tier::Xfm);
    EXPECT_EQ(rig.tiers.tier(1), Tier::Dfm);
    EXPECT_EQ(rig.tiers.pageState(0), PageState::Far);
    EXPECT_EQ(rig.tiers.pageState(1), PageState::Far);
    EXPECT_EQ(rig.tiers.nearPages(), CpuTierRig::pages - 2);
    EXPECT_EQ(rig.tiers.tierStats().demotedNearToXfm, 1u);
    EXPECT_EQ(rig.tiers.tierStats().demotedNearToDfm, 1u);
}

TEST(TierManager, PromoteOnFaultRestoresBytes)
{
    CpuTierRig rig(baseTierConfig());

    rig.touch(0, 2);
    ASSERT_TRUE(rig.demote(0).success);  // -> XFM
    ASSERT_TRUE(rig.demote(1).success);  // -> DFM

    const SwapOutcome from_xfm = rig.promote(0);
    const SwapOutcome from_dfm = rig.promote(1);
    ASSERT_TRUE(from_xfm.success);
    ASSERT_TRUE(from_dfm.success);
    EXPECT_EQ(from_xfm.servedTier, Tier::Xfm);
    EXPECT_EQ(from_dfm.servedTier, Tier::Dfm);

    EXPECT_EQ(rig.tiers.tier(0), Tier::Near);
    EXPECT_EQ(rig.tiers.tier(1), Tier::Near);
    EXPECT_EQ(rig.tiers.nearPages(), CpuTierRig::pages);
    EXPECT_EQ(rig.tiers.tierStats().promotedFromXfm, 1u);
    EXPECT_EQ(rig.tiers.tierStats().promotedFromDfm, 1u);
    EXPECT_EQ(rig.tiers.readLocalPage(0), pageFor(0));
    EXPECT_EQ(rig.tiers.readLocalPage(1), pageFor(1));
}

TEST(TierManager, SpillScanDemotesColdXfmPages)
{
    TierConfig t = baseTierConfig();
    t.scanInterval = milliseconds(1.0);
    t.spillColdThreshold = milliseconds(5.0);
    CpuTierRig rig(t);

    // Demote four hot pages to XFM. The tier change halves their
    // access count below the watermark, so once they sit untouched
    // past the cold threshold the scan spills them.
    for (VirtPage p = 0; p < 4; ++p) {
        rig.touch(p, 2);
        ASSERT_TRUE(rig.demote(p).success);
        ASSERT_EQ(rig.tiers.tier(p), Tier::Xfm);
    }

    rig.tiers.start();
    rig.run(milliseconds(20.0));

    EXPECT_GT(rig.tiers.tierStats().spillScans, 0u);
    EXPECT_EQ(rig.tiers.tierStats().demotedXfmToDfm, 4u);
    EXPECT_EQ(rig.tiers.xfmPages(), 0u);
    EXPECT_EQ(rig.tiers.dfmPages(), 4u);
    for (VirtPage p = 0; p < 4; ++p) {
        EXPECT_EQ(rig.tiers.tier(p), Tier::Dfm);
        // The spill moved data, not just state: promotion restores
        // the original bytes from the spill tier.
        ASSERT_TRUE(rig.promote(p).success);
        EXPECT_EQ(rig.tiers.readLocalPage(p), pageFor(p));
    }
}

TEST(TierManager, WatermarkHoldsHotPagesInXfm)
{
    TierConfig t = baseTierConfig();
    t.scanInterval = milliseconds(1.0);
    t.spillColdThreshold = milliseconds(5.0);
    CpuTierRig rig(t);

    rig.touch(0, 2);
    ASSERT_TRUE(rig.demote(0).success);
    // Keep earning hotness after the demotion: the halved count is
    // topped back up over the watermark, so the scan must hold the
    // page in XFM no matter how stale its last access gets.
    rig.touch(0, 3);

    rig.tiers.start();
    rig.run(milliseconds(20.0));

    EXPECT_EQ(rig.tiers.tier(0), Tier::Xfm);
    EXPECT_EQ(rig.tiers.tierStats().demotedXfmToDfm, 0u);
    EXPECT_GT(rig.tiers.tierStats().watermarkHolds, 0u);
}

TEST(TierManager, CapacityPressureSpillsColdestRegardlessOfWatermark)
{
    TierConfig t = baseTierConfig();
    t.promoteWatermark = 1;
    t.scanInterval = milliseconds(1.0);
    // Far-future coldness: pass 1 never fires, only capacity
    // pressure (pass 2) can spill.
    t.spillColdThreshold = seconds(10.0);
    t.xfmCapacityPages = 2;
    CpuTierRig rig(t);

    for (VirtPage p = 0; p < 4; ++p) {
        rig.touch(p, 2);  // halved to 1 == watermark: pass 1 holds
        ASSERT_TRUE(rig.demote(p).success);
        ASSERT_EQ(rig.tiers.tier(p), Tier::Xfm);
    }

    rig.tiers.start();
    rig.run(milliseconds(20.0));

    EXPECT_EQ(rig.tiers.xfmPages(), 2u);
    EXPECT_EQ(rig.tiers.dfmPages(), 2u);
    EXPECT_EQ(rig.tiers.tierStats().demotedXfmToDfm, 2u);
    // Oldest-access victims go first: pages 0 and 1 were demoted
    // (and thus last touched) earliest.
    EXPECT_EQ(rig.tiers.tier(0), Tier::Dfm);
    EXPECT_EQ(rig.tiers.tier(1), Tier::Dfm);
    EXPECT_EQ(rig.tiers.tier(2), Tier::Xfm);
    EXPECT_EQ(rig.tiers.tier(3), Tier::Xfm);
}

TEST(TierManager, PerGroupPolicyIsolation)
{
    TierConfig t = baseTierConfig();
    t.scanInterval = milliseconds(1.0);
    t.spillColdThreshold = milliseconds(2.0);
    CpuTierRig rig(t);

    // Tenant 0 (pages 0-7) pins the compressed tier; tenant 1
    // (pages 8-15) goes straight to spill.
    rig.tiers.assignGroup(0, 8, 0);
    rig.tiers.assignGroup(8, 8, 1);
    rig.tiers.setGroupPolicy(0, TierPolicy::XfmFirst);
    rig.tiers.setGroupPolicy(1, TierPolicy::DfmFirst);

    for (VirtPage p = 0; p < CpuTierRig::pages; ++p)
        ASSERT_TRUE(rig.demote(p).success);
    for (VirtPage p = 0; p < 8; ++p)
        EXPECT_EQ(rig.tiers.tier(p), Tier::Xfm) << "page " << p;
    for (VirtPage p = 8; p < 16; ++p)
        EXPECT_EQ(rig.tiers.tier(p), Tier::Dfm) << "page " << p;

    // A long cold scan may never leak an xfm_first page into DFM.
    rig.tiers.start();
    rig.run(milliseconds(50.0));
    for (VirtPage p = 0; p < 8; ++p)
        EXPECT_EQ(rig.tiers.tier(p), Tier::Xfm) << "page " << p;
    EXPECT_EQ(rig.tiers.tierStats().demotedXfmToDfm, 0u);
    EXPECT_EQ(rig.tiers.dfmPages(), 8u);
}

TEST(TierManager, DfmPoolFullFallsBackToXfm)
{
    TierConfig t = baseTierConfig();
    t.policy = TierPolicy::DfmFirst;
    t.dfmBytes = 2 * pageBytes;  // a two-slot spill pool
    CpuTierRig rig(t);

    std::vector<SwapOutcome> outs;
    for (VirtPage p = 0; p < 4; ++p) {
        outs.push_back(rig.demote(p));
        ASSERT_TRUE(outs.back().success) << "page " << p;
    }

    // First two demotions take the pool; the rest land compressed.
    EXPECT_EQ(outs[0].servedTier, Tier::Dfm);
    EXPECT_EQ(outs[1].servedTier, Tier::Dfm);
    EXPECT_EQ(outs[2].servedTier, Tier::Xfm);
    EXPECT_EQ(outs[3].servedTier, Tier::Xfm);
    EXPECT_EQ(rig.tiers.dfmPages(), 2u);
    EXPECT_EQ(rig.tiers.xfmPages(), 2u);

    // Promoting a DFM page frees its slot for the next demotion.
    ASSERT_TRUE(rig.promote(0).success);
    const SwapOutcome again = rig.demote(0);
    ASSERT_TRUE(again.success);
    EXPECT_EQ(again.servedTier, Tier::Dfm);
}

TEST(TierManager, BusyReentryRejected)
{
    CpuTierRig rig(baseTierConfig());

    // Second swap-out of the same page in the same tick: the first
    // is still in flight, the second must bounce as Busy without
    // touching the tier map.
    bool first_ok = false;
    SwapOutcome second;
    rig.tiers.swapOut(0, [&](const SwapOutcome &o) {
        first_ok = o.success;
    });
    rig.tiers.swapOut(0, [&](const SwapOutcome &o) { second = o; });
    EXPECT_FALSE(second.success);
    EXPECT_EQ(second.rejected, RejectReason::Busy);

    rig.run(milliseconds(1.0));
    EXPECT_TRUE(first_ok);
    EXPECT_EQ(rig.tiers.pageState(0), PageState::Far);
    EXPECT_EQ(rig.tiers.stats().rejectedSwapOuts, 1u);

    // Same for promotion re-entry.
    SwapOutcome in2;
    rig.tiers.swapIn(0, false, [](const SwapOutcome &) {});
    rig.tiers.swapIn(0, false,
                     [&](const SwapOutcome &o) { in2 = o; });
    EXPECT_FALSE(in2.success);
    EXPECT_EQ(in2.rejected, RejectReason::Busy);
    rig.run(milliseconds(1.0));
    EXPECT_EQ(rig.tiers.pageState(0), PageState::Local);
}

TEST(TierManager, QuarantineReclaimKeepsTierCoherent)
{
    // An XfmBackend under the tier layer with a one-page quarantine
    // cap and every swap-in poisoned: the second quarantine evicts
    // the first page back to Local behind the TierManager's back,
    // and the reclaim hook must pull the tier map along.
    EventQueue eq;
    auto xcfg = testutil::testXfmConfig(2);
    xcfg.quarantineCap = 1;
    xcfg.faults.site(fault::FaultSite::EccUncorrectable)
        .probability = 1.0;

    xfmsys::XfmBackend xfm("xfm", eq, xcfg);
    TierConfig t = baseTierConfig();
    t.policy = TierPolicy::XfmFirst;
    sfm::TierManager tiers("tiers", eq, t, xfm, 8);
    xfm.start();

    for (VirtPage p = 0; p < 2; ++p) {
        tiers.writeLocalPage(p, pageFor(p));
        bool ok = false;
        tiers.swapOut(p,
                      [&ok](const SwapOutcome &o) { ok = o.success; });
        eq.run(eq.now() + milliseconds(1.0));
        ASSERT_TRUE(ok);
        ASSERT_EQ(tiers.tier(p), Tier::Xfm);
    }

    // Both promotions fail and quarantine their page; the second
    // one overflows the cap and evicts page 0 (Far -> Local).
    for (VirtPage p = 0; p < 2; ++p) {
        SwapOutcome in;
        tiers.swapIn(p, false,
                     [&in](const SwapOutcome &o) { in = o; });
        eq.run(eq.now() + milliseconds(1.0));
        EXPECT_FALSE(in.success);
    }

    EXPECT_EQ(xfm.quarantinedPageCount(), 1u);
    EXPECT_TRUE(xfm.isQuarantined(1));
    EXPECT_EQ(xfm.xfmStats().quarantineEvicted, 1u);
    EXPECT_EQ(xfm.pageState(0), PageState::Local);

    // The reclaim hook kept the tier map coherent with the silent
    // eviction: page 0 is NEAR again, page 1 still XFM.
    EXPECT_EQ(tiers.tier(0), Tier::Near);
    EXPECT_EQ(tiers.tier(1), Tier::Xfm);
    EXPECT_EQ(tiers.xfmPages(), 1u);
    EXPECT_EQ(tiers.pageState(0), PageState::Local);

    // And the reclaimed page is fully operable: its frame is intact
    // and it can demote again without tripping a state assert.
    EXPECT_EQ(tiers.readLocalPage(0), pageFor(0));
    bool ok = false;
    tiers.swapOut(0,
                  [&ok](const SwapOutcome &o) { ok = o.success; });
    eq.run(eq.now() + milliseconds(1.0));
    EXPECT_TRUE(ok);
    EXPECT_EQ(tiers.tier(0), Tier::Xfm);
}

TEST(TierManager, DisabledConfigParsesAsDisabled)
{
    // fromConfig on an empty config: the master switch stays off, so
    // callers never construct a manager and two-state behaviour is
    // untouched (the byte-identity contract lives in
    // test_determinism's TieringOffMatchesDefault).
    Config cfg = Config::parseString("");
    const TierConfig t = TierConfig::fromConfig(cfg);
    EXPECT_FALSE(t.enabled);
}

} // namespace
} // namespace xfm
