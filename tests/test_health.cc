/**
 * @file
 * Tests for the health/robustness layer: the HealthMonitor state
 * machine (every transition, fast trip, cooldown, half-open
 * probation, probe cancellation), the OverloadShedder hysteresis and
 * class-aware shed policy, and their integration into the XFM stack
 * — per-channel offlining with byte-identical page reassembly
 * through the per-shard CPU fallback, the doorbell breaker skipping
 * the retry ladder, the stuck-offload watchdog, service-level
 * shedding with typed Rejected{Overload} outcomes, and same-seed
 * byte-identical health metric timelines.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/logging.hh"
#include "common/random.hh"
#include "health/health.hh"
#include "health/shed.hh"
#include "service/service.hh"
#include "system/system.hh"
#include "test_util.hh"
#include "xfm/xfm_backend.hh"

namespace xfm
{
namespace health
{
namespace
{

using sfm::PageState;
using sfm::RejectReason;
using sfm::SwapOutcome;
using sfm::VirtPage;
using xfmsys::XfmBackend;
using xfmsys::XfmSystemConfig;

// -------------------------------------------------------------- config

TEST(HealthConfigParse, ParsesKeysAndValidates)
{
    const auto cfg = Config::parseString(
        "health.enabled = 1\n"
        "health.window = 8\n"
        "health.degrade = 0.2\n"
        "health.fail = 0.6\n"
        "health.fail_consecutive = 4\n"
        "health.cooldown_ns = 5000\n"
        "health.probe_quota = 3\n"
        "health.probe_successes = 2\n");
    const HealthConfig c = HealthConfig::fromConfig(cfg);
    EXPECT_TRUE(c.enabled);
    EXPECT_EQ(c.window, 8u);
    EXPECT_DOUBLE_EQ(c.degradeThreshold, 0.2);
    EXPECT_DOUBLE_EQ(c.failThreshold, 0.6);
    EXPECT_EQ(c.failConsecutive, 4u);
    EXPECT_EQ(c.cooldown, nanoseconds(5000.0));
    EXPECT_EQ(c.probeQuota, 3u);
    EXPECT_EQ(c.probeSuccesses, 2u);

    // Typo'd keys and inconsistent tuning must be fatal, not silent.
    EXPECT_THROW(HealthConfig::fromConfig(Config::parseString(
                     "health.windw = 8\n")),
                 FatalError);
    EXPECT_THROW(HealthConfig::fromConfig(Config::parseString(
                     "health.fail = 0.2\nhealth.degrade = 0.5\n")),
                 FatalError);
    EXPECT_THROW(HealthConfig::fromConfig(Config::parseString(
                     "health.probe_successes = 9\n"
                     "health.probe_quota = 2\n")),
                 FatalError);
    EXPECT_THROW(HealthConfig::fromConfig(Config::parseString(
                     "health.window = 0\n")),
                 FatalError);
}

// ------------------------------------------------------------- monitor

/** Small deterministic tuning used by the unit tests below. */
HealthConfig
monitorConfig()
{
    HealthConfig c;
    c.enabled = true;
    c.window = 4;
    c.degradeThreshold = 0.25;
    c.failThreshold = 0.5;
    c.failConsecutive = 3;
    c.cooldown = 1000;  // raw ticks, for easy arithmetic below
    c.probeQuota = 2;
    c.probeSuccesses = 2;
    return c;
}

TEST(HealthMonitor, DisabledMonitorAdmitsEverythingRecordsNothing)
{
    HealthMonitor m;
    EXPECT_FALSE(m.enabled());
    for (int i = 0; i < 100; ++i) {
        m.recordFault(i);
        EXPECT_TRUE(m.admit(i));
    }
    EXPECT_EQ(m.rawState(), HealthState::Healthy);
    EXPECT_EQ(m.stats().faults, 0u);
    EXPECT_EQ(m.stats().trips, 0u);
}

TEST(HealthMonitor, WindowDegradesThenRecovers)
{
    HealthMonitor m(monitorConfig());
    // Window of 4 with 1 fault: 25% >= degrade threshold.
    m.recordFault(1);
    m.recordSuccess(2);
    m.recordSuccess(3);
    EXPECT_EQ(m.rawState(), HealthState::Healthy);
    m.recordSuccess(4);
    EXPECT_EQ(m.rawState(), HealthState::Degraded);
    EXPECT_EQ(m.stats().degrades, 1u);
    EXPECT_TRUE(m.admit(5));  // Degraded still admits work

    // A clean window recovers to Healthy.
    for (Tick t = 6; t < 10; ++t)
        m.recordSuccess(t);
    EXPECT_EQ(m.rawState(), HealthState::Healthy);
    EXPECT_EQ(m.stats().recoveries, 1u);
}

TEST(HealthMonitor, WindowFaultFractionTripsBreaker)
{
    HealthMonitor m(monitorConfig());
    // 2 faults / 4 events = 50% >= fail threshold. Interleaved so
    // the consecutive-fault fast path stays out of the picture.
    m.recordFault(1);
    m.recordSuccess(2);
    m.recordFault(3);
    m.recordSuccess(4);
    EXPECT_EQ(m.rawState(), HealthState::Failed);
    EXPECT_EQ(m.stats().trips, 1u);

    // The breaker refuses work while Failed (and counts it).
    EXPECT_FALSE(m.admit(5));
    EXPECT_FALSE(m.wouldAdmit(5));
    EXPECT_EQ(m.stats().breakerRejects, 1u);
}

TEST(HealthMonitor, ConsecutiveFaultsFastTripBeforeWindowFills)
{
    HealthMonitor m(monitorConfig());
    m.recordFault(1);
    m.recordFault(2);
    EXPECT_EQ(m.rawState(), HealthState::Healthy);
    m.recordFault(3);  // 3rd consecutive: trip with window unfilled
    EXPECT_EQ(m.rawState(), HealthState::Failed);
    EXPECT_EQ(m.stats().trips, 1u);
}

TEST(HealthMonitor, CooldownOpensProbationAndProbesReclose)
{
    HealthMonitor m(monitorConfig());
    for (int i = 0; i < 3; ++i)
        m.recordFault(100);
    ASSERT_EQ(m.rawState(), HealthState::Failed);

    // Before the cooldown elapses the breaker stays open.
    EXPECT_EQ(m.state(100 + 999), HealthState::Failed);
    // At the deadline it goes half-open.
    EXPECT_EQ(m.state(100 + 1000), HealthState::Probation);

    // The probe quota bounds half-open admissions.
    EXPECT_TRUE(m.admit(1200));
    EXPECT_TRUE(m.admit(1201));
    EXPECT_FALSE(m.wouldAdmit(1202));
    EXPECT_EQ(m.stats().probes, 2u);
    EXPECT_EQ(m.outstandingProbes(), 2u);

    // Enough probe wins re-close the breaker.
    m.recordSuccess(1300);
    EXPECT_EQ(m.rawState(), HealthState::Probation);
    m.recordSuccess(1301);
    EXPECT_EQ(m.rawState(), HealthState::Healthy);
    EXPECT_EQ(m.stats().recoveries, 1u);
}

TEST(HealthMonitor, OneFailedProbeRetrips)
{
    HealthMonitor m(monitorConfig());
    for (int i = 0; i < 3; ++i)
        m.recordFault(100);
    ASSERT_EQ(m.state(1100), HealthState::Probation);
    ASSERT_TRUE(m.admit(1100));

    m.recordFault(1150);
    EXPECT_EQ(m.rawState(), HealthState::Failed);
    EXPECT_EQ(m.stats().probeFailures, 1u);
    EXPECT_EQ(m.stats().trips, 2u);
    // ... and the new Failed episode runs its own cooldown.
    EXPECT_EQ(m.state(1150 + 999), HealthState::Failed);
    EXPECT_EQ(m.state(1150 + 1000), HealthState::Probation);
}

TEST(HealthMonitor, CancelProbeReturnsTheSlot)
{
    HealthMonitor m(monitorConfig());
    for (int i = 0; i < 3; ++i)
        m.recordFault(100);
    ASSERT_EQ(m.state(1100), HealthState::Probation);

    // Spend the whole quota, then abandon one probe (the request
    // fell back before exercising the component): the slot must come
    // back, so lost outcomes cannot strand the domain in Probation.
    ASSERT_TRUE(m.admit(1100));
    ASSERT_TRUE(m.admit(1101));
    ASSERT_FALSE(m.wouldAdmit(1102));
    m.cancelProbe(1103);
    EXPECT_EQ(m.outstandingProbes(), 1u);
    EXPECT_TRUE(m.wouldAdmit(1104));
    EXPECT_TRUE(m.admit(1104));

    // wouldAdmit() consumes nothing: asking N times costs no slots.
    m.cancelProbe(1105);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(m.wouldAdmit(1106));
    EXPECT_EQ(m.stats().probes, 3u);
}

TEST(HealthMonitor, StragglerOutcomesIgnoredWhileFailed)
{
    HealthMonitor m(monitorConfig());
    for (int i = 0; i < 3; ++i)
        m.recordFault(100);
    ASSERT_EQ(m.rawState(), HealthState::Failed);

    // Outcomes of requests admitted before the trip must not disturb
    // the open breaker (or seed the next window).
    m.recordSuccess(200);
    m.recordFault(201);
    EXPECT_EQ(m.rawState(), HealthState::Failed);
    EXPECT_EQ(m.stats().trips, 1u);
    EXPECT_EQ(m.state(100 + 1000), HealthState::Probation);
}

TEST(HealthMonitor, ForceFailAndForceHealthy)
{
    HealthMonitor m(monitorConfig());
    m.forceFail(500);
    EXPECT_EQ(m.rawState(), HealthState::Failed);
    EXPECT_EQ(m.stats().forcedOffline, 1u);
    EXPECT_EQ(m.stats().trips, 1u);
    // forceFail on an already-Failed domain restarts the cooldown.
    m.forceFail(1200);
    EXPECT_EQ(m.state(1200 + 999), HealthState::Failed);

    m.forceHealthy(2500);
    EXPECT_EQ(m.rawState(), HealthState::Healthy);
    EXPECT_TRUE(m.admit(2501));
}

// ------------------------------------------------------------- shedder

ShedConfig
shedConfig()
{
    ShedConfig c;
    c.enabled = true;
    c.queueHigh = 10;
    c.queueLow = 2;
    c.spmHigh = 0.9;
    c.spmLow = 0.7;
    return c;
}

TEST(OverloadShedder, DisabledShedderAlwaysAdmits)
{
    OverloadShedder s;
    s.observe(1000, 1.0, 0);
    EXPECT_FALSE(s.shedding());
    EXPECT_EQ(s.decide(false, true), ShedDecision::Admit);
}

TEST(OverloadShedder, ShedsByClassAndDirection)
{
    OverloadShedder s(shedConfig());
    s.observe(5, 0.1, 0);
    EXPECT_FALSE(s.shedding());
    EXPECT_EQ(s.decide(false, true), ShedDecision::Admit);

    s.observe(11, 0.1, 10);  // queue above high watermark
    EXPECT_TRUE(s.shedding());
    EXPECT_EQ(s.stats().engages, 1u);
    // Latency tenants are never shed; batch swap-outs are rejected
    // (the page safely stays local) while batch swap-ins, which must
    // complete, are down-tiered to the CPU path.
    EXPECT_EQ(s.decide(true, true), ShedDecision::Admit);
    EXPECT_EQ(s.decide(true, false), ShedDecision::Admit);
    EXPECT_EQ(s.decide(false, true), ShedDecision::Reject);
    EXPECT_EQ(s.decide(false, false), ShedDecision::DownTier);
    EXPECT_EQ(s.stats().rejects, 1u);
    EXPECT_EQ(s.stats().downTiers, 1u);
}

TEST(OverloadShedder, HysteresisDisengagesOnlyWhenBothSignalsCalm)
{
    OverloadShedder s(shedConfig());
    s.observe(11, 0.95, 0);
    ASSERT_TRUE(s.shedding());

    // Queue back under its low watermark but SPM still hot: engaged.
    s.observe(1, 0.8, 10);
    EXPECT_TRUE(s.shedding());
    // Both in the hysteresis band: still engaged.
    s.observe(5, 0.75, 20);
    EXPECT_TRUE(s.shedding());
    // Both at/below the low watermarks: disengage exactly once.
    s.observe(2, 0.7, 30);
    EXPECT_FALSE(s.shedding());
    EXPECT_EQ(s.stats().disengages, 1u);
    // Mid-band signals do not re-engage (no oscillation).
    s.observe(5, 0.8, 40);
    EXPECT_FALSE(s.shedding());
    EXPECT_EQ(s.stats().engages, 1u);
}

TEST(OverloadShedder, SpmPressureAloneEngages)
{
    OverloadShedder s(shedConfig());
    s.observe(0, 0.91, 0);
    EXPECT_TRUE(s.shedding());
}

TEST(OverloadShedder, ConfigValidation)
{
    EXPECT_THROW(ShedConfig::fromConfig(Config::parseString(
                     "shed.queue_low = 10\nshed.queue_high = 5\n")),
                 FatalError);
    EXPECT_THROW(ShedConfig::fromConfig(Config::parseString(
                     "shed.spm_high = 1.5\n")),
                 FatalError);
    EXPECT_THROW(ShedConfig::fromConfig(Config::parseString(
                     "shed.queue_hi = 5\n")),
                 FatalError);
}

// ------------------------------------------- backend-level breakers

class BackendHealthTest : public ::testing::Test
{
  protected:
    /** Health-armed 2-DIMM config; a huge cooldown keeps forced
     *  failures open for the whole (sub-second) test run. */
    XfmSystemConfig
    healthConfig()
    {
        auto cfg = testutil::testXfmConfig(2);
        cfg.health.enabled = true;
        cfg.health.cooldown = seconds(1.0);
        return cfg;
    }

    void
    makeBackend(const XfmSystemConfig &cfg)
    {
        backend_.emplace("xfmsys", eq_, cfg);
        backend_->start();
    }

    Bytes
    pageContent(VirtPage p) const
    {
        return testutil::corpusPage(compress::CorpusKind::Json,
                                    p + 200);
    }

    SwapOutcome
    runSwapOut(VirtPage p)
    {
        SwapOutcome out;
        backend_->writePage(p, pageContent(p));
        backend_->swapOut(p, [&](const SwapOutcome &o) { out = o; });
        eq_.run(eq_.now() + seconds(0.2));
        return out;
    }

    SwapOutcome
    runSwapIn(VirtPage p, bool allow_offload = true)
    {
        SwapOutcome in;
        backend_->swapIn(p, allow_offload,
                         [&](const SwapOutcome &o) { in = o; });
        eq_.run(eq_.now() + seconds(0.2));
        return in;
    }

    EventQueue eq_;
    std::optional<XfmBackend> backend_;
};

TEST_F(BackendHealthTest, OfflinedChannelReassemblesViaCpuShard)
{
    makeBackend(healthConfig());
    backend_->channelHealth(1).forceFail(0);

    // The page demotes with DIMM 1's shard compressed on the CPU and
    // DIMM 0's shard offloaded as usual.
    const SwapOutcome out = runSwapOut(1);
    EXPECT_TRUE(out.success);
    EXPECT_EQ(backend_->pageState(1), PageState::Far);
    EXPECT_EQ(backend_->xfmStats().shardCpuFallbacks, 1u);
    EXPECT_EQ(backend_->xfmStats().breakerFallbacks, 0u);

    // Promotion with the channel still offline: the shard comes back
    // through per-shard CPU decompression, byte-identically.
    const SwapOutcome in = runSwapIn(1);
    EXPECT_TRUE(in.success);
    EXPECT_EQ(backend_->xfmStats().shardCpuFallbacks, 2u);
    EXPECT_EQ(backend_->readPage(1), pageContent(1));
}

TEST_F(BackendHealthTest, AllChannelsFailedFallsBackWholeSwap)
{
    makeBackend(healthConfig());
    backend_->channelHealth(0).forceFail(0);
    backend_->channelHealth(1).forceFail(0);

    const SwapOutcome out = runSwapOut(2);
    EXPECT_TRUE(out.success);
    EXPECT_TRUE(out.usedCpu);
    EXPECT_EQ(backend_->xfmStats().breakerFallbacks, 1u);

    const SwapOutcome in = runSwapIn(2);
    EXPECT_TRUE(in.success);
    EXPECT_EQ(backend_->xfmStats().breakerFallbacks, 2u);
    EXPECT_EQ(backend_->readPage(2), pageContent(2));
}

TEST_F(BackendHealthTest, DoorbellBreakerSkipsRetryLadder)
{
    auto cfg = healthConfig();
    cfg.faults.site(fault::FaultSite::MmioDoorbellLoss).probability =
        1.0;
    cfg.retry.maxAttempts = 2;
    cfg.health.failConsecutive = 2;
    makeBackend(cfg);

    // First swap: every doorbell ring on DIMM 0 is lost and the
    // second consecutive loss trips its breaker mid-ladder; the op
    // rolls back to the CPU before DIMM 1's doorbell is ever rung
    // (shard submission is sequential).
    const SwapOutcome first = runSwapOut(1);
    EXPECT_TRUE(first.success);
    EXPECT_TRUE(first.usedCpu);
    EXPECT_EQ(backend_->driver(0).doorbellHealth().rawState(),
              HealthState::Failed);
    const std::uint64_t retries_after_first =
        backend_->driver(0).stats().retries;
    EXPECT_GT(retries_after_first, 0u);

    // Second swap: the open breaker rejects at submission — no MMIO
    // writes, no backoff, no additional retries.
    const SwapOutcome second = runSwapOut(2);
    EXPECT_TRUE(second.success);
    EXPECT_TRUE(second.usedCpu);
    EXPECT_EQ(backend_->driver(0).stats().retries,
              retries_after_first);
    EXPECT_GT(backend_->driver(0).stats().breakerFallbacks, 0u);
    EXPECT_GT(backend_->driver(0)
                  .doorbellHealth()
                  .stats()
                  .breakerRejects,
              0u);

    // Data integrity holds throughout.
    EXPECT_TRUE(runSwapIn(1, false).success);
    EXPECT_TRUE(runSwapIn(2, false).success);
    EXPECT_EQ(backend_->readPage(1), pageContent(1));
    EXPECT_EQ(backend_->readPage(2), pageContent(2));
}

TEST_F(BackendHealthTest, WatchdogFiresStuckOffload)
{
    auto cfg = healthConfig();
    cfg.device.watchdogWindows = 2;
    // Every SPM reservation fails: accepted offloads are deferred
    // window after window, never winning an execution slot, until
    // the watchdog forces completion-with-error and the backend
    // falls back to the CPU.
    cfg.faults.site(fault::FaultSite::SpmReserveFail).probability =
        1.0;
    makeBackend(cfg);

    const SwapOutcome out = runSwapOut(3);
    EXPECT_TRUE(out.success);
    EXPECT_TRUE(out.usedCpu);
    std::uint64_t fires = 0;
    for (std::size_t d = 0; d < 2; ++d)
        fires += backend_->driver(d).device().stats().watchdogFires;
    EXPECT_GT(fires, 0u);

    EXPECT_EQ(backend_->pageState(3), PageState::Far);
    EXPECT_TRUE(runSwapIn(3, false).success);
    EXPECT_EQ(backend_->readPage(3), pageContent(3));
}

// --------------------------------------------- service-level shedding

TEST(ServiceShed, BatchSwapOutsRejectedTypedWhileOverloaded)
{
    EventQueue eq;
    auto scfg = testutil::testServiceConfig();
    scfg.shed.enabled = true;
    // Engage as soon as anything is queued behind the arbiter.
    scfg.shed.queueHigh = 0;
    scfg.shed.queueLow = 0;
    service::FarMemoryService svc("svc", eq, scfg);

    service::TenantConfig bcfg;
    bcfg.name = "batch";
    bcfg.pages = 16;
    const auto batch = svc.addTenant(bcfg);
    service::TenantConfig lcfg;
    lcfg.name = "lat";
    lcfg.pages = 16;
    lcfg.cls = service::PriorityClass::LatencySensitive;
    const auto lat = svc.addTenant(lcfg);
    ASSERT_NE(batch, service::invalidTenant);
    ASSERT_NE(lat, service::invalidTenant);

    const auto content = [&](service::TenantId id, VirtPage p) {
        return testutil::corpusPage(compress::CorpusKind::Json,
                                    id * 1000 + p + 7);
    };
    for (VirtPage p = 0; p < 16; ++p) {
        svc.writePage(batch, p, content(batch, p));
        svc.writePage(lat, p, content(lat, p));
    }
    svc.start();

    // First batch swap-out is admitted (nothing queued yet) and
    // parks one op behind the arbiter; the second sees the backlog
    // above the high watermark and is refused with a typed reason,
    // leaving its page local.
    svc.tenantBackend(batch).swapOut(0, sfm::SwapCallback{});
    SwapOutcome shed_out;
    svc.tenantBackend(batch).swapOut(
        1, [&](const SwapOutcome &o) { shed_out = o; });
    EXPECT_FALSE(shed_out.success);
    EXPECT_EQ(shed_out.rejected, RejectReason::Overload);
    EXPECT_EQ(svc.tenantBackend(batch).pageState(1),
              PageState::Local);
    EXPECT_EQ(svc.registry().stats(batch).shedRejects, 1u);
    EXPECT_TRUE(svc.shedder().shedding());

    // A latency-class tenant is never shed, even while engaged.
    std::optional<SwapOutcome> lat_out;
    svc.tenantBackend(lat).swapOut(
        0, [&](const SwapOutcome &o) { lat_out = o; });
    eq.run(eq.now() + milliseconds(5.0));
    ASSERT_TRUE(lat_out.has_value());
    EXPECT_TRUE(lat_out->success);
    EXPECT_EQ(svc.registry().stats(lat).shedRejects, 0u);

    // Swap-ins must complete, so under pressure they are down-tiered
    // to the CPU path instead of rejected.
    ASSERT_EQ(svc.tenantBackend(batch).pageState(0), PageState::Far);
    svc.tenantBackend(batch).swapOut(2, sfm::SwapCallback{});
    SwapOutcome in_out;
    svc.tenantBackend(batch).swapIn(
        0, true, [&](const SwapOutcome &o) { in_out = o; });
    eq.run(eq.now() + milliseconds(5.0));
    EXPECT_TRUE(in_out.success);
    EXPECT_EQ(svc.registry().stats(batch).shedDownTiers, 1u);
    EXPECT_EQ(svc.readPage(batch, 0), content(batch, 0));
    EXPECT_GT(svc.shedder().stats().engages, 0u);
}

// ------------------------------------------------------- determinism

system::SystemConfig
chaoticSystemConfig()
{
    system::SystemConfig cfg;
    cfg.backend = system::BackendKind::Xfm;
    cfg.pages = 96;
    cfg.sfmBytes = mib(8);
    cfg.controller.coldThreshold = milliseconds(5.0);
    cfg.controller.scanInterval = milliseconds(1.0);
    cfg.controller.maxSwapOutsPerScan = 16;
    cfg.faultPlan.seed = 11;
    cfg.faultPlan.site(fault::FaultSite::SpmReserveFail).probability =
        0.20;
    cfg.faultPlan.site(fault::FaultSite::EngineStall).probability =
        0.10;
    cfg.faultPlan.site(fault::FaultSite::MmioDoorbellLoss)
        .probability = 0.25;
    cfg.health.enabled = true;
    cfg.health.window = 8;
    cfg.health.failConsecutive = 4;
    cfg.health.cooldown = microseconds(50.0);
    cfg.xfmDevice.watchdogWindows = 512;
    cfg.quarantineCap = 4;
    return cfg;
}

/** One faulted run; returns the rendered end-of-run stats. */
std::string
runChaoticSystem()
{
    EventQueue eq;
    system::System sys("sys", eq, chaoticSystemConfig());
    for (VirtPage p = 0; p < 96; ++p)
        sys.writePage(p, testutil::corpusPage(
                             compress::CorpusKind::LogLines, p + 1));
    sys.start();
    eq.run(milliseconds(60.0));
    Rng rng(99);
    for (int i = 0; i < 48; ++i) {
        sys.access(rng.uniformInt(96));
        eq.run(eq.now() + milliseconds(1.0));
    }
    return sys.metrics().renderText();
}

TEST(HealthDeterminism, SameSeedByteIdenticalHealthTimeline)
{
    const std::string a = runChaoticSystem();
    const std::string b = runChaoticSystem();
    EXPECT_EQ(a, b);
    // The health layer actually participated: its metrics are in the
    // snapshot and the fault plan left marks on some monitor.
    EXPECT_NE(a.find("health.channel.state"), std::string::npos);
    EXPECT_NE(a.find("health.doorbell.faults"), std::string::npos);
}

} // namespace
} // namespace health
} // namespace xfm
