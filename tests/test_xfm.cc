/**
 * @file
 * Tests for the XFM system layer: multi-channel split/gather, the
 * same-offset allocator, the driver's lazy MMIO accounting, and the
 * full XfmBackend offload / fallback paths.
 */

#include <gtest/gtest.h>

#include <optional>

#include "common/random.hh"
#include "compress/corpus.hh"
#include "compress/deflate.hh"
#include "test_util.hh"
#include "xfm/multichannel.hh"
#include "xfm/xfm_backend.hh"
#include "xfm/xfm_driver.hh"

namespace xfm
{
namespace xfmsys
{
namespace
{

using sfm::PageState;
using sfm::SwapOutcome;
using sfm::VirtPage;

// ---------------------------------------------------------- split/gather

TEST(MultiChannel, SplitGatherIdentity)
{
    Rng rng(1);
    Bytes page(pageBytes);
    for (auto &b : page)
        b = static_cast<std::uint8_t>(rng.next());
    for (std::size_t dimms : {1u, 2u, 4u, 8u}) {
        const auto shards = splitPage(page, dimms);
        ASSERT_EQ(shards.size(), dimms);
        for (const auto &s : shards)
            EXPECT_EQ(s.size(), pageBytes / dimms);
        EXPECT_EQ(gatherPage(shards), page);
    }
}

TEST(MultiChannel, SplitRoundRobinsChunks)
{
    Bytes page(1024);
    for (std::size_t i = 0; i < page.size(); ++i)
        page[i] = static_cast<std::uint8_t>(i / 256);  // chunk index
    const auto shards = splitPage(page, 2, 256);
    // Chunks 0, 2 on DIMM 0; chunks 1, 3 on DIMM 1.
    EXPECT_EQ(shards[0][0], 0);
    EXPECT_EQ(shards[0][256], 2);
    EXPECT_EQ(shards[1][0], 1);
    EXPECT_EQ(shards[1][256], 3);
}

TEST(MultiChannel, SplitHandlesPartialTailChunk)
{
    Bytes data(600, 0x11);  // 256 + 256 + 88
    const auto shards = splitPage(data, 2, 256);
    EXPECT_EQ(shards[0].size(), 256u + 88u);
    EXPECT_EQ(shards[1].size(), 256u);
    EXPECT_EQ(gatherPage(shards), data);
}

TEST(MultiChannel, InterleaveShrinksEffectiveWindow)
{
    // Splitting text across DIMMs reduces compression ratio, the
    // mechanism behind Fig. 8's losses.
    const Bytes corpus = compress::generateCorpus(
        compress::CorpusKind::EnglishText, 3, 64 * 1024);
    const auto pages = compress::paginate(corpus);
    compress::DeflateCodec codec;
    const auto one = measureMultiChannel(pages, codec, 1);
    const auto four = measureMultiChannel(pages, codec, 4);
    EXPECT_GT(one.ratio(), 1.0);
    EXPECT_LE(four.ratio(), one.ratio() + 0.01);
    // Placement fragmentation only makes it worse.
    EXPECT_LE(four.placedRatio(), four.ratio() + 1e-9);
}

// -------------------------------------------------- same-offset allocator

TEST(SameOffsetAllocator, AllocatesAlignedSlots)
{
    SameOffsetAllocator alloc(4096, 64);
    const auto a = alloc.allocate(100);
    const auto b = alloc.allocate(65);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 128u);  // 100 rounds to 128
    EXPECT_EQ(alloc.slotSize(a), 128u);
    EXPECT_EQ(alloc.slotSize(b), 128u);
    EXPECT_EQ(alloc.usedBytes(), 256u);
}

TEST(SameOffsetAllocator, ReusesFreedGaps)
{
    SameOffsetAllocator alloc(1024, 64);
    const auto a = alloc.allocate(256);
    const auto b = alloc.allocate(256);
    (void)b;
    alloc.release(a);
    const auto c = alloc.allocate(128);
    EXPECT_EQ(c, 0u);  // first fit lands in the freed gap
}

TEST(SameOffsetAllocator, FailsWhenFull)
{
    SameOffsetAllocator alloc(256, 64);
    EXPECT_NE(alloc.allocate(256), SameOffsetAllocator::invalidOffset);
    EXPECT_EQ(alloc.allocate(1), SameOffsetAllocator::invalidOffset);
}

TEST(SameOffsetAllocator, RepackSlidesSlotsDown)
{
    SameOffsetAllocator alloc(4096, 64);
    const auto a = alloc.allocate(512);
    const auto b = alloc.allocate(512);
    alloc.release(a);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> moves;
    alloc.repack([&](std::uint64_t o, std::uint64_t n, std::uint32_t) {
        moves.emplace_back(o, n);
    });
    ASSERT_EQ(moves.size(), 1u);
    EXPECT_EQ(moves[0].first, b);
    EXPECT_EQ(moves[0].second, 0u);
    EXPECT_EQ(alloc.slotSize(0), 512u);
}

TEST(SameOffsetAllocator, RepackHonoursPins)
{
    SameOffsetAllocator alloc(4096, 64);
    const auto a = alloc.allocate(512);
    const auto b = alloc.allocate(512);
    const auto c = alloc.allocate(512);
    (void)c;
    alloc.release(a);
    std::vector<std::uint64_t> moved;
    alloc.repack(
        [&](std::uint64_t o, std::uint64_t, std::uint32_t) {
            moved.push_back(o);
        },
        [&](std::uint64_t off) { return off == b; });
    // Slot b is pinned; only c moves (into the space after b).
    ASSERT_EQ(moved.size(), 1u);
    EXPECT_EQ(alloc.slotSize(b), 512u);
}

// ------------------------------------------------------------ XfmBackend

XfmSystemConfig
testSystemConfig(std::size_t dimms = 4)
{
    return testutil::testXfmConfig(dimms);
}

class XfmBackendTest : public ::testing::Test
{
  protected:
    void
    makeBackend(XfmSystemConfig cfg = testSystemConfig())
    {
        cfg_ = cfg;
        backend_.emplace("xfmsys", eq_, cfg);
        backend_->start();
    }

    Bytes
    pageContent(VirtPage p) const
    {
        return testutil::corpusPage(compress::CorpusKind::LogLines,
                                    p + 100);
    }

    EventQueue eq_;
    XfmSystemConfig cfg_;
    std::optional<XfmBackend> backend_;
};

TEST_F(XfmBackendTest, WriteReadPageRoundTrip)
{
    makeBackend();
    const Bytes page = pageContent(1);
    backend_->writePage(1, page);
    EXPECT_EQ(backend_->readPage(1), page);
}

TEST_F(XfmBackendTest, OffloadedSwapOutAndIn)
{
    makeBackend();
    const Bytes page = pageContent(2);
    backend_->writePage(2, page);

    SwapOutcome out;
    backend_->swapOut(2, [&](const SwapOutcome &o) { out = o; });
    eq_.run(seconds(0.1));
    EXPECT_TRUE(out.success);
    EXPECT_FALSE(out.usedCpu);
    EXPECT_GT(out.compressedSize, 0u);
    EXPECT_EQ(backend_->pageState(2), PageState::Far);
    EXPECT_EQ(backend_->xfmStats().offloadedSwapOuts, 1u);

    // Clobber the local frames, promote with offload enabled.
    backend_->writePage(2, Bytes(pageBytes, 0xEE));
    // Page state is Far so writePage targets stale frames: fine.
    SwapOutcome in;
    backend_->swapIn(2, true, [&](const SwapOutcome &o) { in = o; });
    eq_.run(seconds(0.2));
    EXPECT_TRUE(in.success);
    EXPECT_FALSE(in.usedCpu);
    EXPECT_EQ(backend_->pageState(2), PageState::Local);
    EXPECT_EQ(backend_->readPage(2), page);
    EXPECT_EQ(backend_->xfmStats().offloadedSwapIns, 1u);
}

TEST_F(XfmBackendTest, DemandSwapInUsesCpu)
{
    makeBackend();
    const Bytes page = pageContent(3);
    backend_->writePage(3, page);
    backend_->swapOut(3, nullptr);
    eq_.run(seconds(0.1));
    ASSERT_EQ(backend_->pageState(3), PageState::Far);

    SwapOutcome in;
    backend_->swapIn(3, false, [&](const SwapOutcome &o) { in = o; });
    eq_.run(seconds(0.2));
    EXPECT_TRUE(in.success);
    EXPECT_TRUE(in.usedCpu);
    EXPECT_EQ(backend_->readPage(3), page);
    EXPECT_EQ(backend_->stats().cpuSwapIns, 1u);
}

TEST_F(XfmBackendTest, SingleDimmModeWorks)
{
    makeBackend(testSystemConfig(1));
    const Bytes page = pageContent(4);
    backend_->writePage(4, page);
    SwapOutcome out;
    backend_->swapOut(4, [&](const SwapOutcome &o) { out = o; });
    eq_.run(seconds(0.1));
    EXPECT_TRUE(out.success);
    SwapOutcome in;
    backend_->swapIn(4, true, [&](const SwapOutcome &o) { in = o; });
    eq_.run(seconds(0.2));
    EXPECT_TRUE(in.success);
    EXPECT_EQ(backend_->readPage(4), page);
}

TEST_F(XfmBackendTest, ManyPagesRoundTripAcrossModes)
{
    for (std::size_t dimms : {1u, 2u, 4u}) {
        eq_ = EventQueue();
        makeBackend(testSystemConfig(dimms));
        std::vector<Bytes> pages;
        for (VirtPage p = 0; p < 16; ++p) {
            pages.push_back(pageContent(p));
            backend_->writePage(p, pages.back());
            backend_->swapOut(p, nullptr);
        }
        eq_.run(seconds(0.2));
        EXPECT_EQ(backend_->farPageCount(), 16u) << dimms << " dimms";
        for (VirtPage p = 0; p < 16; ++p)
            backend_->swapIn(p, true, nullptr);
        eq_.run(seconds(0.4));
        for (VirtPage p = 0; p < 16; ++p) {
            EXPECT_EQ(backend_->pageState(p), PageState::Local);
            EXPECT_EQ(backend_->readPage(p), pages[p]) << "page " << p;
        }
    }
}

TEST_F(XfmBackendTest, FragmentationFromSameOffsetPlacement)
{
    makeBackend(testSystemConfig(4));
    // Pages whose shards compress very differently maximise padding.
    for (VirtPage p = 0; p < 8; ++p) {
        backend_->writePage(p, pageContent(p));
        backend_->swapOut(p, nullptr);
    }
    eq_.run(seconds(0.2));
    EXPECT_GT(backend_->fragmentationBytes(), 0u);
}

TEST_F(XfmBackendTest, CapacityExhaustionFallsBackToCpu)
{
    auto cfg = testSystemConfig(2);
    cfg.device.spmBytes = 4 * 1024;   // fits one 2 KiB-shard offload
    cfg.device.queueDepth = 1;
    makeBackend(cfg);
    // Burst of swap-outs exceeds SPM + queue; extras run on the CPU.
    for (VirtPage p = 0; p < 8; ++p) {
        backend_->writePage(p, pageContent(p));
        backend_->swapOut(p, nullptr);
    }
    eq_.run(seconds(0.2));
    EXPECT_GT(backend_->xfmStats().fallbackCapacity, 0u);
    EXPECT_GT(backend_->stats().cpuSwapOuts, 0u);
    EXPECT_EQ(backend_->farPageCount(), 8u);  // all succeeded somehow
}

TEST_F(XfmBackendTest, BusyPageRejectsSecondOperation)
{
    makeBackend();
    backend_->writePage(5, pageContent(5));
    backend_->swapOut(5, nullptr);
    SwapOutcome second;
    backend_->swapOut(5, [&](const SwapOutcome &o) { second = o; });
    EXPECT_FALSE(second.success);
    eq_.run(seconds(0.1));
    EXPECT_EQ(backend_->farPageCount(), 1u);
}

TEST_F(XfmBackendTest, CompactPreservesData)
{
    makeBackend();
    std::vector<Bytes> pages;
    for (VirtPage p = 0; p < 12; ++p) {
        pages.push_back(pageContent(p));
        backend_->writePage(p, pages.back());
        backend_->swapOut(p, nullptr);
    }
    eq_.run(seconds(0.2));
    // Promote some pages to punch holes, then compact.
    for (VirtPage p : {1ull, 4ull, 7ull})
        backend_->swapIn(p, true, nullptr);
    eq_.run(seconds(0.4));
    backend_->compact();
    // Remaining far pages still decompress correctly.
    for (VirtPage p : {0ull, 5ull, 11ull}) {
        ASSERT_EQ(backend_->pageState(p), PageState::Far);
        backend_->swapIn(p, false, nullptr);
    }
    eq_.run(seconds(0.6));
    for (VirtPage p : {0ull, 5ull, 11ull})
        EXPECT_EQ(backend_->readPage(p), pages[p]) << "page " << p;
}

TEST_F(XfmBackendTest, LazyAccountingAvoidsMmioReads)
{
    makeBackend();
    for (VirtPage p = 0; p < 32; ++p) {
        backend_->writePage(p, pageContent(p));
        backend_->swapOut(p, nullptr);
        eq_.run(eq_.now() + milliseconds(2.0));
    }
    // With a 2 MiB SPM and paced submissions the lazy bound never
    // infers fullness, so no SP_Capacity reads happen.
    for (std::size_t d = 0; d < cfg_.numDimms; ++d)
        EXPECT_EQ(backend_->driver(d).stats().capacityRegisterReads,
                  0u) << "dimm " << d;
}

TEST_F(XfmBackendTest, MinOffloadLatencyTwoRefreshIntervals)
{
    makeBackend();
    backend_->writePage(6, pageContent(6));
    Tick done_at = 0;
    backend_->swapOut(6, [&](const SwapOutcome &o) {
        done_at = o.completed;
    });
    eq_.run(seconds(0.1));
    // Fig. 10: read in one window, write back in a later one.
    EXPECT_GE(done_at, cfg_.dimmMem.rank.device.tREFI());
}

} // namespace
} // namespace xfmsys
} // namespace xfm

namespace xfm
{
namespace xfmsys
{
namespace
{

// ------------------------------------------------ elasticity (paper G3)

TEST(SameOffsetAllocatorResize, GrowAndShrink)
{
    SameOffsetAllocator alloc(1024, 64);
    const auto a = alloc.allocate(512);
    (void)a;
    EXPECT_EQ(alloc.highWaterMark(), 512u);
    EXPECT_TRUE(alloc.resize(4096));
    EXPECT_EQ(alloc.regionBytes(), 4096u);
    // Shrink below the live slot fails; to its edge succeeds.
    EXPECT_FALSE(alloc.resize(256));
    EXPECT_TRUE(alloc.resize(512));
    EXPECT_EQ(alloc.regionBytes(), 512u);
    EXPECT_EQ(alloc.allocate(64), SameOffsetAllocator::invalidOffset);
}

TEST_F(XfmBackendTest, SfmRegionGrowsUnderPressure)
{
    auto cfg = testSystemConfig(2);
    cfg.sfmBytes = 1024;  // tiny: roughly one shard slot
    makeBackend(cfg);
    int failures = 0;
    for (sfm::VirtPage p = 0; p < 6; ++p) {
        backend_->writePage(p, pageContent(p));
        backend_->swapOut(p, [&](const sfm::SwapOutcome &o) {
            if (!o.success)
                ++failures;
        });
        eq_.run(eq_.now() + milliseconds(1.0));
    }
    eq_.run(eq_.now() + milliseconds(50.0));
    EXPECT_GT(failures, 0);  // region exhausted

    // Elastic re-provisioning: grow the region, retry the failures.
    EXPECT_TRUE(backend_->resizeSfmRegion(mib(1)));
    int late_failures = 0;
    for (sfm::VirtPage p = 0; p < 6; ++p) {
        if (backend_->pageState(p) == sfm::PageState::Local) {
            backend_->swapOut(p, [&](const sfm::SwapOutcome &o) {
                if (!o.success)
                    ++late_failures;
            });
            eq_.run(eq_.now() + milliseconds(1.0));
        }
    }
    eq_.run(eq_.now() + milliseconds(50.0));
    EXPECT_EQ(late_failures, 0);
    EXPECT_EQ(backend_->farPageCount(), 6u);
}

TEST_F(XfmBackendTest, SfmRegionShrinkCompactsFirst)
{
    makeBackend(testSystemConfig(2));
    std::vector<Bytes> pages;
    for (sfm::VirtPage p = 0; p < 8; ++p) {
        pages.push_back(pageContent(p));
        backend_->writePage(p, pages.back());
        backend_->swapOut(p, nullptr);
    }
    eq_.run(seconds(0.2));
    ASSERT_EQ(backend_->farPageCount(), 8u);
    // Promote every other page: holes spread through the region.
    for (sfm::VirtPage p = 0; p < 8; p += 2)
        backend_->swapIn(p, true, nullptr);
    eq_.run(seconds(0.4));

    // Shrink to just above the live bytes: resize must compact.
    const auto live = backend_->allocator().usedBytes();
    EXPECT_TRUE(backend_->resizeSfmRegion(live + 4096));
    // Remaining far pages still intact.
    for (sfm::VirtPage p = 1; p < 8; p += 2) {
        backend_->swapIn(p, false, nullptr);
        eq_.run(eq_.now() + milliseconds(1.0));
        EXPECT_EQ(backend_->readPage(p), pages[p]) << "page " << p;
    }
}

TEST_F(XfmBackendTest, ShrinkBelowLiveDataRejected)
{
    makeBackend(testSystemConfig(2));
    for (sfm::VirtPage p = 0; p < 8; ++p) {
        backend_->writePage(p, pageContent(p));
        backend_->swapOut(p, nullptr);
    }
    eq_.run(seconds(0.2));
    const auto live = backend_->allocator().usedBytes();
    ASSERT_GT(live, 64u);
    EXPECT_FALSE(backend_->resizeSfmRegion(live / 2));
    // Capacity unchanged; data still retrievable.
    EXPECT_EQ(backend_->config().sfmBytes,
              testSystemConfig(2).sfmBytes);
}

} // namespace
} // namespace xfmsys
} // namespace xfm

namespace xfm
{
namespace xfmsys
{
namespace
{

/** Integration fuzz: random swap-out / swap-in / compact / resize
 *  sequences against a shadow map of page contents. Every page the
 *  shadow says is Far must decompress back to its exact bytes. */
TEST_F(XfmBackendTest, FuzzAgainstShadowContents)
{
    auto cfg = testSystemConfig(2);
    cfg.localPages = 64;
    cfg.sfmBytes = mib(4);
    makeBackend(cfg);

    Rng rng(2024);
    std::map<VirtPage, Bytes> contents;
    std::set<VirtPage> far;
    for (VirtPage p = 0; p < 64; ++p) {
        contents[p] = pageContent(p + rng.uniformInt(1000));
        backend_->writePage(p, contents[p]);
    }

    for (int op = 0; op < 300; ++op) {
        const double dice = rng.uniformReal();
        if (dice < 0.40) {
            // Demote a random Local page.
            const VirtPage p = rng.uniformInt(64);
            if (!far.count(p)
                && backend_->pageState(p) == PageState::Local) {
                backend_->swapOut(p, nullptr);
                far.insert(p);
            }
        } else if (dice < 0.80) {
            // Promote a random Far page (offload or CPU).
            if (!far.empty()) {
                auto it = far.begin();
                std::advance(it, rng.uniformInt(far.size()));
                const VirtPage p = *it;
                backend_->swapIn(p, rng.chance(0.5), nullptr);
                far.erase(it);
            }
        } else if (dice < 0.9) {
            backend_->compact();
        } else {
            // Elastic resize within sane bounds.
            const std::uint64_t target =
                mib(2) + rng.uniformInt(mib(6));
            backend_->resizeSfmRegion(target);
        }
        // Let in-flight offloads settle frequently enough that the
        // shadow's Local/Far view stays in sync.
        eq_.run(eq_.now() + milliseconds(3.0));
    }
    eq_.run(eq_.now() + milliseconds(100.0));

    // Drain: promote everything and verify every page's bytes.
    for (VirtPage p : far)
        backend_->swapIn(p, false, nullptr);
    eq_.run(eq_.now() + milliseconds(100.0));
    for (VirtPage p = 0; p < 64; ++p) {
        ASSERT_EQ(backend_->pageState(p), PageState::Local)
            << "page " << p;
        ASSERT_EQ(backend_->readPage(p), contents[p]) << "page " << p;
    }
}

} // namespace
} // namespace xfmsys
} // namespace xfm

namespace xfm
{
namespace xfmsys
{
namespace
{

TEST_F(XfmBackendTest, LargeSparseRegionWorks)
{
    // The abstract's headline scales to ~1 TB SFM; per DIMM that is
    // multi-GiB regions. Sparse backing keeps this cheap.
    auto cfg = testSystemConfig(4);
    cfg.sfmBytes = gib(8);  // per DIMM: 32 GiB far capacity total
    makeBackend(cfg);
    std::vector<Bytes> pages;
    for (VirtPage p = 0; p < 32; ++p) {
        pages.push_back(pageContent(p));
        backend_->writePage(p, pages.back());
        backend_->swapOut(p, nullptr);
    }
    eq_.run(seconds(0.2));
    EXPECT_EQ(backend_->farPageCount(), 32u);
    for (VirtPage p = 0; p < 32; p += 7) {
        backend_->swapIn(p, false, nullptr);
        eq_.run(eq_.now() + milliseconds(1.0));
        EXPECT_EQ(backend_->readPage(p), pages[p]);
    }
}

TEST(XfmBackendValidation, BadConfigsPanic)
{
    EventQueue eq;
    XfmSystemConfig bad = testSystemConfig(4);
    bad.localPages = 0;
    EXPECT_DEATH(XfmBackend("x", eq, bad), "virtual pages");

    XfmSystemConfig overlap = testSystemConfig(1);
    overlap.localBase = 0;
    overlap.localPages = 1024;
    overlap.sfmBase = 0;  // collides with the local region
    EXPECT_DEATH(XfmBackend("x", eq, overlap), "overlap");

    XfmSystemConfig multi = testSystemConfig(2);
    multi.dimmMem.channels = 2;  // per-DIMM map must be 1-channel
    EXPECT_DEATH(XfmBackend("x", eq, multi), "single-channel");
}

} // namespace
} // namespace xfmsys
} // namespace xfm
