/**
 * @file
 * Tests for the SECDED side-band ECC (paper Sec. 4.1): encode/
 * correct properties over random words, exhaustive single-bit
 * correction, double-bit detection, and the EccStore fault
 * injection paths.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "dram/ecc.hh"

namespace xfm
{
namespace dram
{
namespace
{

TEST(EccCode, CleanWordChecksOk)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t word = rng.next();
        std::uint8_t check = ecc::encode(word);
        const std::uint64_t orig = word;
        EXPECT_EQ(ecc::checkAndCorrect(word, check),
                  ecc::CheckResult::Ok);
        EXPECT_EQ(word, orig);
    }
}

TEST(EccCode, EverySingleDataBitFlipCorrected)
{
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t orig = rng.next();
        const std::uint8_t good_check = ecc::encode(orig);
        for (unsigned bit = 0; bit < 64; ++bit) {
            std::uint64_t word = orig ^ (std::uint64_t(1) << bit);
            std::uint8_t check = good_check;
            EXPECT_EQ(ecc::checkAndCorrect(word, check),
                      ecc::CheckResult::Corrected);
            EXPECT_EQ(word, orig) << "bit " << bit;
            EXPECT_EQ(check, good_check);
        }
    }
}

TEST(EccCode, EverySingleCheckBitFlipCorrected)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t orig = rng.next();
        const std::uint8_t good_check = ecc::encode(orig);
        for (unsigned bit = 0; bit < 8; ++bit) {
            std::uint64_t word = orig;
            std::uint8_t check = good_check
                ^ static_cast<std::uint8_t>(1u << bit);
            EXPECT_EQ(ecc::checkAndCorrect(word, check),
                      ecc::CheckResult::Corrected);
            EXPECT_EQ(word, orig);
            EXPECT_EQ(check, good_check) << "check bit " << bit;
        }
    }
}

TEST(EccCode, DoubleDataBitFlipDetected)
{
    Rng rng(4);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint64_t orig = rng.next();
        const unsigned a = static_cast<unsigned>(rng.uniformInt(64));
        unsigned b = static_cast<unsigned>(rng.uniformInt(64));
        while (b == a)
            b = static_cast<unsigned>(rng.uniformInt(64));
        std::uint64_t word = orig ^ (std::uint64_t(1) << a)
            ^ (std::uint64_t(1) << b);
        std::uint8_t check = ecc::encode(orig);
        EXPECT_EQ(ecc::checkAndCorrect(word, check),
                  ecc::CheckResult::Uncorrectable);
    }
}

TEST(EccCode, DataPlusCheckFlipDetected)
{
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        const std::uint64_t orig = rng.next();
        std::uint64_t word =
            orig ^ (std::uint64_t(1) << rng.uniformInt(64));
        std::uint8_t check = ecc::encode(orig)
            ^ static_cast<std::uint8_t>(1u << rng.uniformInt(7));
        EXPECT_EQ(ecc::checkAndCorrect(word, check),
                  ecc::CheckResult::Uncorrectable);
    }
}

// ------------------------------------------------------------- EccStore

class EccStoreTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t protectedBytes = mib(1);

    EccStoreTest()
        : mem_(mib(4)), store_(mem_, mib(2), protectedBytes)
    {}

    PhysMem mem_;
    EccStore store_;
};

TEST_F(EccStoreTest, WriteReadRoundTrip)
{
    Rng rng(6);
    Bytes data(4096);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    store_.write(8192, data);
    EXPECT_EQ(store_.read(8192, 4096), data);
    EXPECT_EQ(store_.stats().correctedErrors, 0u);
    EXPECT_EQ(store_.stats().parityBytesWritten, 512u);
}

TEST_F(EccStoreTest, SingleBitFlipCorrectedAndScrubbed)
{
    Bytes data(64, 0xA5);
    store_.write(0, data);
    store_.injectDataError(16, 5);
    EXPECT_EQ(store_.read(0, 64), data);
    EXPECT_EQ(store_.stats().correctedErrors, 1u);
    // Scrubbed: reading again finds clean memory.
    EXPECT_EQ(store_.read(0, 64), data);
    EXPECT_EQ(store_.stats().correctedErrors, 1u);
}

TEST_F(EccStoreTest, ParityBitFlipCorrected)
{
    Bytes data(8, 0x3C);
    store_.write(64, data);
    store_.injectParityError(64, 3);
    EXPECT_EQ(store_.read(64, 8), data);
    EXPECT_EQ(store_.stats().correctedErrors, 1u);
}

TEST_F(EccStoreTest, DoubleBitFlipIsFatal)
{
    Bytes data(8, 0x77);
    store_.write(128, data);
    store_.injectDataError(128, 1);
    store_.injectDataError(128, 44);
    EXPECT_THROW(store_.read(128, 8), FatalError);
    EXPECT_EQ(store_.stats().uncorrectableErrors, 1u);
}

TEST_F(EccStoreTest, ErrorsInDifferentWordsBothCorrected)
{
    Bytes data(32, 0x99);
    store_.write(256, data);
    store_.injectDataError(256, 7);       // word 0
    store_.injectDataError(256 + 24, 63); // word 3
    EXPECT_EQ(store_.read(256, 32), data);
    EXPECT_EQ(store_.stats().correctedErrors, 2u);
}

TEST_F(EccStoreTest, MisalignedAccessPanics)
{
    Bytes data(8, 0);
    EXPECT_DEATH(store_.write(3, data), "aligned");
}

} // namespace
} // namespace dram
} // namespace xfm
