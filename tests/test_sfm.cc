/**
 * @file
 * Tests for the SFM stack: ZPool allocator invariants, the baseline
 * CPU backend's swap paths, and the SFM controller's cold-page /
 * fault / prefetch policies.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "common/logging.hh"
#include "common/random.hh"
#include "compress/corpus.hh"
#include "dram/phys_mem.hh"
#include "sfm/controller.hh"
#include "sfm/cpu_backend.hh"
#include "sfm/zpool.hh"
#include "sim/event_queue.hh"
#include "test_util.hh"

namespace xfm
{
namespace sfm
{
namespace
{

// ------------------------------------------------------------------ zpool

class ZPoolTest : public ::testing::Test
{
  protected:
    ZPoolTest() : mem_(mib(64)), pool_(mem_, 0, mib(1)) {}

    dram::PhysMem mem_;
    ZPool pool_;
};

TEST_F(ZPoolTest, InsertFetchRoundTrip)
{
    const Bytes data = {10, 20, 30, 40};
    const ZHandle h = pool_.insert(data);
    ASSERT_NE(h, invalidZHandle);
    EXPECT_EQ(pool_.fetch(h), data);
    EXPECT_EQ(pool_.sizeOf(h), 4u);
    EXPECT_EQ(pool_.usedBytes(), 4u);
}

TEST_F(ZPoolTest, PacksObjectsIntoOnePage)
{
    // Many small objects share the first host page.
    std::vector<ZHandle> handles;
    for (int i = 0; i < 8; ++i)
        handles.push_back(pool_.insert(Bytes(256,
            static_cast<std::uint8_t>(i))));
    const std::uint64_t first_page_addr = pool_.addressOf(handles[0]);
    for (const auto h : handles)
        EXPECT_LT(pool_.addressOf(h), first_page_addr + pageBytes);
}

TEST_F(ZPoolTest, EraseLeavesHoleUntilCompaction)
{
    const ZHandle a = pool_.insert(Bytes(1000, 1));
    const ZHandle b = pool_.insert(Bytes(1000, 2));
    const ZHandle c = pool_.insert(Bytes(1000, 3));
    (void)a;
    (void)c;
    pool_.erase(b);  // middle object -> hole
    EXPECT_EQ(pool_.fragmentedBytes(), 1000u);
    const std::uint64_t reclaimed = pool_.compact();
    EXPECT_EQ(reclaimed, 1000u);
    EXPECT_EQ(pool_.fragmentedBytes(), 0u);
    // Data is intact after the memcpys.
    EXPECT_EQ(pool_.fetch(a), Bytes(1000, 1));
    EXPECT_EQ(pool_.fetch(c), Bytes(1000, 3));
    EXPECT_GT(pool_.stats().compactionMemcpyBytes, 0u);
}

TEST_F(ZPoolTest, TailEraseNeedsNoCompaction)
{
    const ZHandle a = pool_.insert(Bytes(100, 1));
    const ZHandle b = pool_.insert(Bytes(100, 2));
    (void)a;
    pool_.erase(b);
    EXPECT_EQ(pool_.fragmentedBytes(), 0u);
}

TEST_F(ZPoolTest, WholePageFreeResetsTail)
{
    const ZHandle a = pool_.insert(Bytes(3000, 1));
    pool_.erase(a);
    EXPECT_EQ(pool_.usedBytes(), 0u);
    EXPECT_EQ(pool_.fragmentedBytes(), 0u);
    // Space is immediately reusable.
    EXPECT_NE(pool_.insert(Bytes(4000, 2)), invalidZHandle);
}

TEST_F(ZPoolTest, FailsWhenFull)
{
    // 1 MiB region = 256 pages; 256 x 4 KiB objects fill it.
    for (int i = 0; i < 256; ++i)
        ASSERT_NE(pool_.insert(Bytes(pageBytes, 1)), invalidZHandle);
    EXPECT_EQ(pool_.insert(Bytes(64, 2)), invalidZHandle);
    EXPECT_EQ(pool_.stats().failedAllocs, 1u);
}

TEST_F(ZPoolTest, FragmentationBlocksThenCompactionUnblocks)
{
    // Fill with 3000 B objects (one per page: 3000 + 3000 > 4096).
    std::vector<ZHandle> handles;
    for (int i = 0; i < 256; ++i)
        handles.push_back(pool_.insert(Bytes(3000, 1)));
    // Add 1000 B objects into the tails.
    std::vector<ZHandle> small;
    for (int i = 0; i < 256; ++i)
        small.push_back(pool_.insert(Bytes(1000, 2)));
    // Free the big objects: 3000 B holes in every page.
    for (auto h : handles)
        pool_.erase(h);
    EXPECT_GT(pool_.fragmentedBytes(), 0u);
    // A 2 KiB object does not fit any tail until compaction.
    EXPECT_EQ(pool_.insert(Bytes(2048, 3)), invalidZHandle);
    pool_.compact();
    EXPECT_NE(pool_.insert(Bytes(2048, 3)), invalidZHandle);
}

TEST_F(ZPoolTest, AddressOfTracksCompaction)
{
    const ZHandle a = pool_.insert(Bytes(1000, 7));
    const ZHandle b = pool_.insert(Bytes(1000, 8));
    pool_.erase(a);
    const std::uint64_t before = pool_.addressOf(b);
    pool_.compact();
    EXPECT_LT(pool_.addressOf(b), before);
    EXPECT_EQ(pool_.fetch(b), Bytes(1000, 8));
}

TEST_F(ZPoolTest, StatsCount)
{
    const ZHandle a = pool_.insert(Bytes(10, 1));
    pool_.erase(a);
    EXPECT_EQ(pool_.stats().allocs, 1u);
    EXPECT_EQ(pool_.stats().frees, 1u);
    EXPECT_EQ(pool_.objectCount(), 0u);
}

// ------------------------------------------------------------ cpu backend

class CpuBackendTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t numPages = 64;

    CpuBackendTest() : mem_(mib(64))
    {
        CpuBackendConfig cfg;
        cfg.localBase = 0;
        cfg.localPages = numPages;
        cfg.sfmBase = mib(16);
        cfg.sfmBytes = mib(1);
        backend_.emplace("backend", eq_, cfg, mem_);
    }

    Bytes
    pageContent(VirtPage p)
    {
        return testutil::corpusPage(compress::CorpusKind::EnglishText,
                                    p + 1);
    }

    void
    loadPage(VirtPage p)
    {
        mem_.write(backend_->frameAddr(p), pageContent(p));
    }

    EventQueue eq_;
    dram::PhysMem mem_;
    std::optional<CpuSfmBackend> backend_;
};

TEST_F(CpuBackendTest, SwapOutThenInPreservesData)
{
    loadPage(3);
    SwapOutcome out_result;
    backend_->swapOut(3, [&](const SwapOutcome &o) { out_result = o; });
    eq_.run();
    EXPECT_TRUE(out_result.success);
    EXPECT_TRUE(out_result.usedCpu);
    EXPECT_GT(out_result.compressedSize, 0u);
    EXPECT_LT(out_result.compressedSize, pageBytes);
    EXPECT_EQ(backend_->pageState(3), PageState::Far);
    EXPECT_EQ(backend_->farPageCount(), 1u);

    // Scribble over the local frame, then swap back in.
    mem_.fill(backend_->frameAddr(3), pageBytes, 0xEE);
    SwapOutcome in_result;
    backend_->swapIn(3, false,
                     [&](const SwapOutcome &o) { in_result = o; });
    eq_.run();
    EXPECT_TRUE(in_result.success);
    EXPECT_EQ(backend_->pageState(3), PageState::Local);
    EXPECT_EQ(mem_.read(backend_->frameAddr(3), pageBytes),
              pageContent(3));
}

TEST_F(CpuBackendTest, SwapLatencyMatchesCycleModel)
{
    loadPage(0);
    Tick done_at = 0;
    backend_->swapOut(0, [&](const SwapOutcome &o) {
        done_at = o.completed;
    });
    eq_.run();
    // zstdlike compression: 14 cycles/B * 4096 B / 2.6 GHz ~ 22 us.
    const double expected_ns = 14.0 * 4096 / 2.6;
    EXPECT_NEAR(ticksToNs(done_at), expected_ns, expected_ns * 0.01);
}

TEST_F(CpuBackendTest, CpuCyclesAccumulate)
{
    loadPage(0);
    loadPage(1);
    backend_->swapOut(0, nullptr);
    backend_->swapOut(1, nullptr);
    eq_.run();
    // Two pages at 14 cycles/byte.
    EXPECT_EQ(backend_->stats().cpuCycles,
              static_cast<std::uint64_t>(2 * 14.0 * 4096));
}

TEST_F(CpuBackendTest, RejectsWhenSfmRegionFull)
{
    // Fill the 1 MiB SFM region with incompressible pages.
    Rng rng(1);
    int rejected = 0;
    for (VirtPage p = 0; p < numPages; ++p) {
        Bytes noise(pageBytes);
        for (auto &b : noise)
            b = static_cast<std::uint8_t>(rng.next());
        mem_.write(backend_->frameAddr(p), noise);
        backend_->swapOut(p, [&](const SwapOutcome &o) {
            if (!o.success)
                ++rejected;
        });
    }
    eq_.run();
    EXPECT_GT(rejected, 0);
    EXPECT_EQ(backend_->stats().rejectedSwapOuts,
              static_cast<std::uint64_t>(rejected));
}

TEST_F(CpuBackendTest, DoubleSwapOutIsFatal)
{
    loadPage(5);
    backend_->swapOut(5, nullptr);
    eq_.run();
    EXPECT_THROW(backend_->swapOut(5, nullptr), FatalError);
}

TEST_F(CpuBackendTest, SwapInOfLocalPageIsFatal)
{
    EXPECT_THROW(backend_->swapIn(7, false, nullptr), FatalError);
}

TEST_F(CpuBackendTest, StoredBytesTrackPool)
{
    loadPage(2);
    backend_->swapOut(2, nullptr);
    eq_.run();
    EXPECT_EQ(backend_->storedCompressedBytes(),
              backend_->pool().usedBytes());
    EXPECT_GT(backend_->storedCompressedBytes(), 0u);
}

// ------------------------------------------------------------- controller

class ControllerTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t numPages = 32;

    ControllerTest() : mem_(mib(64))
    {
        CpuBackendConfig bcfg;
        bcfg.localBase = 0;
        bcfg.localPages = numPages;
        bcfg.sfmBase = mib(16);
        bcfg.sfmBytes = mib(4);
        backend_.emplace("backend", eq_, bcfg, mem_);
        for (VirtPage p = 0; p < numPages; ++p) {
            mem_.write(backend_->frameAddr(p),
                       compress::generateCorpus(
                           compress::CorpusKind::Json, p, pageBytes));
        }
    }

    void
    makeController(ControllerConfig cfg)
    {
        ctrl_.emplace("controller", eq_, cfg, *backend_, numPages);
    }

    EventQueue eq_;
    dram::PhysMem mem_;
    std::optional<CpuSfmBackend> backend_;
    std::optional<SfmController> ctrl_;
};

TEST_F(ControllerTest, ColdPagesGetSwappedOut)
{
    ControllerConfig cfg;
    cfg.coldThreshold = milliseconds(10.0);
    cfg.scanInterval = milliseconds(5.0);
    makeController(cfg);
    ctrl_->start();
    eq_.run(milliseconds(30.0));
    // All pages were last touched at tick 0 and are now cold.
    EXPECT_EQ(backend_->farPageCount(), numPages);
    EXPECT_GE(ctrl_->stats().scans, 2u);
}

TEST_F(ControllerTest, HotPagesStayLocal)
{
    ControllerConfig cfg;
    cfg.coldThreshold = milliseconds(10.0);
    cfg.scanInterval = milliseconds(2.0);
    makeController(cfg);
    ctrl_->start();
    // Touch page 0 continually.
    for (int i = 1; i <= 40; ++i) {
        eq_.scheduleIn(milliseconds(i),
                       [this] { ctrl_->recordAccess(0); });
    }
    eq_.run(milliseconds(40.0));
    EXPECT_EQ(backend_->pageState(0), PageState::Local);
    EXPECT_GT(backend_->farPageCount(), 0u);
}

TEST_F(ControllerTest, DemandFaultBringsPageBack)
{
    ControllerConfig cfg;
    cfg.coldThreshold = milliseconds(1.0);
    cfg.scanInterval = milliseconds(1.0);
    cfg.prefetchDepth = 0;
    makeController(cfg);
    ctrl_->start();
    eq_.run(milliseconds(20.0));
    ASSERT_EQ(backend_->pageState(4), PageState::Far);

    EXPECT_FALSE(ctrl_->recordAccess(4));  // fault
    // Run just past the decompression latency; a longer run would
    // let the scanner re-demote the page (it goes cold again).
    eq_.run(eq_.now() + microseconds(500.0));
    EXPECT_EQ(backend_->pageState(4), PageState::Local);
    EXPECT_EQ(ctrl_->stats().demandFaults, 1u);
    EXPECT_GT(ctrl_->stats().faultServiceNs.count(), 0u);
}

TEST_F(ControllerTest, SequentialPrefetchPromotesNeighbours)
{
    ControllerConfig cfg;
    cfg.coldThreshold = milliseconds(1.0);
    cfg.scanInterval = milliseconds(1.0);
    cfg.prefetchDepth = 2;
    makeController(cfg);
    ctrl_->start();
    eq_.run(milliseconds(20.0));
    ASSERT_EQ(backend_->pageState(10), PageState::Far);

    ctrl_->recordAccess(10);
    eq_.run(eq_.now() + microseconds(500.0));
    EXPECT_EQ(ctrl_->stats().prefetchesInitiated, 2u);
    EXPECT_EQ(backend_->pageState(11), PageState::Local);
    EXPECT_EQ(backend_->pageState(12), PageState::Local);

    // Touching a prefetched page counts as a prefetch hit, not a
    // fault.
    EXPECT_TRUE(ctrl_->recordAccess(11));
    EXPECT_EQ(ctrl_->stats().prefetchHits, 1u);
    EXPECT_EQ(ctrl_->stats().demandFaults, 1u);
}

TEST_F(ControllerTest, LocalAccessIsHit)
{
    ControllerConfig cfg;
    makeController(cfg);
    EXPECT_TRUE(ctrl_->recordAccess(0));
    EXPECT_EQ(ctrl_->stats().demandFaults, 0u);
}

} // namespace
} // namespace sfm
} // namespace xfm

namespace xfm
{
namespace sfm
{
namespace
{

// zswap's same-filled page optimisation.

TEST_F(CpuBackendTest, SameFilledPageStoredAsMarker)
{
    mem_.fill(backend_->frameAddr(9), pageBytes, 0x00);  // zero page
    SwapOutcome out;
    backend_->swapOut(9, [&](const SwapOutcome &o) { out = o; });
    eq_.run();
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.compressedSize, 8u);
    EXPECT_EQ(backend_->stats().sameFilledPages, 1u);
    // No pool space consumed.
    EXPECT_EQ(backend_->pool().usedBytes(), 0u);
    EXPECT_EQ(backend_->pageState(9), PageState::Far);

    mem_.fill(backend_->frameAddr(9), pageBytes, 0xEE);
    backend_->swapIn(9, false, nullptr);
    eq_.run();
    EXPECT_EQ(mem_.read(backend_->frameAddr(9), pageBytes),
              Bytes(pageBytes, 0x00));
}

TEST_F(CpuBackendTest, NonZeroFillPatternRoundTrips)
{
    // A page of repeating 0xDEADBEEFDEADBEEF words is same-filled.
    Bytes pattern(pageBytes);
    const std::uint64_t word = 0xDEADBEEFDEADBEEFull;
    for (std::size_t off = 0; off < pageBytes; off += 8)
        std::memcpy(pattern.data() + off, &word, 8);
    mem_.write(backend_->frameAddr(10), pattern);
    backend_->swapOut(10, nullptr);
    eq_.run();
    EXPECT_EQ(backend_->stats().sameFilledPages, 1u);
    backend_->swapIn(10, false, nullptr);
    eq_.run();
    EXPECT_EQ(mem_.read(backend_->frameAddr(10), pageBytes), pattern);
}

TEST_F(CpuBackendTest, SameFilledOptimisationCanBeDisabled)
{
    CpuBackendConfig cfg;
    cfg.localBase = 0;
    cfg.localPages = numPages;
    cfg.sfmBase = mib(32);
    cfg.sfmBytes = mib(1);
    cfg.sameFilledOptimisation = false;
    CpuSfmBackend plain("plain", eq_, cfg, mem_);
    mem_.fill(plain.frameAddr(0), pageBytes, 0x00);
    plain.swapOut(0, nullptr);
    eq_.run();
    EXPECT_EQ(plain.stats().sameFilledPages, 0u);
    EXPECT_GT(plain.pool().usedBytes(), 0u);  // really compressed
}

} // namespace
} // namespace sfm
} // namespace xfm

namespace xfm
{
namespace sfm
{
namespace
{

// Stride prefetcher (the "tuned controller" knob of Sec. 8).

TEST_F(ControllerTest, DetectsBackwardStride)
{
    ControllerConfig cfg;
    cfg.coldThreshold = milliseconds(1.0);
    cfg.scanInterval = milliseconds(1.0);
    cfg.prefetchDepth = 2;
    cfg.stridePrefetch = true;
    makeController(cfg);
    ctrl_->start();
    eq_.run(milliseconds(20.0));  // everything demoted

    // Backward scan: faults at 30, 29, 28 teach stride -1; the
    // prefetcher then promotes 27 and 26 ahead of the scan.
    ctrl_->recordAccess(30);
    eq_.run(eq_.now() + microseconds(200.0));
    ctrl_->recordAccess(29);
    eq_.run(eq_.now() + microseconds(200.0));
    ctrl_->recordAccess(28);
    eq_.run(eq_.now() + microseconds(500.0));
    EXPECT_GE(ctrl_->stats().strideDetections, 1u);
    EXPECT_EQ(backend_->pageState(27), PageState::Local);
    EXPECT_EQ(backend_->pageState(26), PageState::Local);
    EXPECT_TRUE(ctrl_->recordAccess(27));  // prefetch hit
    EXPECT_GE(ctrl_->stats().prefetchHits, 1u);
}

TEST_F(ControllerTest, DetectsStrideTwo)
{
    ControllerConfig cfg;
    cfg.coldThreshold = milliseconds(1.0);
    cfg.scanInterval = milliseconds(1.0);
    cfg.prefetchDepth = 2;
    makeController(cfg);
    ctrl_->start();
    eq_.run(milliseconds(20.0));

    ctrl_->recordAccess(2);
    eq_.run(eq_.now() + microseconds(200.0));
    ctrl_->recordAccess(4);
    eq_.run(eq_.now() + microseconds(200.0));
    ctrl_->recordAccess(6);
    eq_.run(eq_.now() + microseconds(500.0));
    // Stride 2 locked: 8 and 10 promoted, 7 untouched.
    EXPECT_EQ(backend_->pageState(8), PageState::Local);
    EXPECT_EQ(backend_->pageState(10), PageState::Local);
    EXPECT_EQ(backend_->pageState(7), PageState::Far);
}

TEST_F(ControllerTest, StridePrefetchCanBeDisabled)
{
    ControllerConfig cfg;
    cfg.coldThreshold = milliseconds(1.0);
    cfg.scanInterval = milliseconds(1.0);
    cfg.prefetchDepth = 1;
    cfg.stridePrefetch = false;
    makeController(cfg);
    ctrl_->start();
    eq_.run(milliseconds(20.0));

    ctrl_->recordAccess(10);
    eq_.run(eq_.now() + microseconds(200.0));
    ctrl_->recordAccess(12);
    eq_.run(eq_.now() + microseconds(200.0));
    ctrl_->recordAccess(14);
    eq_.run(eq_.now() + microseconds(500.0));
    // Sequential-only: 15 promoted (next), 16 not (stride ignored).
    EXPECT_EQ(ctrl_->stats().strideDetections, 0u);
    EXPECT_EQ(backend_->pageState(15), PageState::Local);
}

} // namespace
} // namespace sfm
} // namespace xfm

#include "sfm/dfm_backend.hh"

namespace xfm
{
namespace sfm
{
namespace
{

class DfmBackendTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t numPages = 32;

    DfmBackendTest() : mem_(mib(64))
    {
        DfmBackendConfig cfg;
        cfg.localBase = 0;
        cfg.localPages = numPages;
        cfg.poolBase = mib(32);
        cfg.poolBytes = 16 * pageBytes;
        backend_.emplace("dfm", eq_, cfg, mem_);
    }

    EventQueue eq_;
    dram::PhysMem mem_;
    std::optional<DfmBackend> backend_;
};

TEST_F(DfmBackendTest, SwapRoundTripPreservesData)
{
    const Bytes page = compress::generateCorpus(
        compress::CorpusKind::Html, 1, pageBytes);
    mem_.write(backend_->frameAddr(2), page);
    backend_->swapOut(2, nullptr);
    eq_.run();
    EXPECT_EQ(backend_->pageState(2), PageState::Far);
    mem_.fill(backend_->frameAddr(2), pageBytes, 0xEE);
    backend_->swapIn(2, false, nullptr);
    eq_.run();
    EXPECT_EQ(mem_.read(backend_->frameAddr(2), pageBytes), page);
}

TEST_F(DfmBackendTest, LatencyIsLinkBound)
{
    mem_.write(backend_->frameAddr(0), Bytes(pageBytes, 1));
    backend_->swapOut(0, nullptr);
    eq_.run();
    Tick start = eq_.now();
    Tick done = 0;
    backend_->swapIn(0, false, [&](const SwapOutcome &o) {
        done = o.completed;
    });
    eq_.run();
    // 300 ns latency + 4096 B / 12 GB/s = ~641 ns; no CPU cycles.
    EXPECT_NEAR(ticksToNs(done - start), 641.0, 5.0);
    EXPECT_EQ(backend_->stats().cpuCycles, 0u);
}

TEST_F(DfmBackendTest, StaticPoolRejectsWhenFull)
{
    int rejected = 0;
    for (VirtPage p = 0; p < 20; ++p) {
        mem_.write(backend_->frameAddr(p), Bytes(pageBytes, 2));
        backend_->swapOut(p, [&](const SwapOutcome &o) {
            if (!o.success)
                ++rejected;
        });
    }
    eq_.run();
    EXPECT_EQ(rejected, 4);  // 16 slots, 20 attempts
    EXPECT_EQ(backend_->freeSlots(), 0u);
    // Promoting one frees a slot again (no compaction needed).
    backend_->swapIn(0, false, nullptr);
    eq_.run();
    EXPECT_EQ(backend_->freeSlots(), 1u);
}

TEST_F(DfmBackendTest, StoresUncompressed)
{
    mem_.write(backend_->frameAddr(5), Bytes(pageBytes, 0));  // zeros!
    backend_->swapOut(5, nullptr);
    eq_.run();
    // Even a zero page occupies a full uncompressed slot.
    EXPECT_EQ(backend_->storedCompressedBytes(), pageBytes);
}

TEST_F(DfmBackendTest, WorksUnderController)
{
    ControllerConfig ccfg;
    ccfg.coldThreshold = milliseconds(2.0);
    ccfg.scanInterval = milliseconds(1.0);
    ccfg.maxSwapOutsPerScan = 8;
    SfmController ctrl("ctrl", eq_, ccfg, *backend_, numPages);
    for (VirtPage p = 0; p < numPages; ++p)
        mem_.write(backend_->frameAddr(p), Bytes(pageBytes, 3));
    ctrl.start();
    eq_.run(milliseconds(30.0));
    EXPECT_EQ(backend_->farPageCount(), 16u);  // pool-capacity bound
}

} // namespace
} // namespace sfm
} // namespace xfm
