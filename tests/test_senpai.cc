/**
 * @file
 * Tests for the senpai-style pressure controller: the reclaim rate
 * must probe up under low fault pressure and back off when faults
 * spike, holding the system near the pressure target.
 */

#include <gtest/gtest.h>

#include <optional>

#include "common/random.hh"
#include "compress/corpus.hh"
#include "dram/phys_mem.hh"
#include "sfm/cpu_backend.hh"
#include "sfm/senpai.hh"
#include "sim/event_queue.hh"

namespace xfm
{
namespace sfm
{
namespace
{

class SenpaiTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t numPages = 256;

    SenpaiTest() : mem_(mib(64))
    {
        CpuBackendConfig bcfg;
        bcfg.localBase = 0;
        bcfg.localPages = numPages;
        bcfg.sfmBase = mib(32);
        bcfg.sfmBytes = mib(8);
        backend_.emplace("backend", eq_, bcfg, mem_);
        for (VirtPage p = 0; p < numPages; ++p) {
            mem_.write(backend_->frameAddr(p),
                       compress::generateCorpus(
                           compress::CorpusKind::LogLines, p,
                           pageBytes));
        }
    }

    void
    makeController(SenpaiConfig cfg = {})
    {
        ctrl_.emplace("senpai", eq_, cfg, *backend_, numPages);
        ctrl_->start();
    }

    EventQueue eq_;
    dram::PhysMem mem_;
    std::optional<CpuSfmBackend> backend_;
    std::optional<SenpaiController> ctrl_;
};

TEST_F(SenpaiTest, ProbesUpWhenNoPressure)
{
    SenpaiConfig cfg;
    cfg.interval = milliseconds(10.0);
    cfg.initialReclaim = 4;
    cfg.probeStep = 4;
    makeController(cfg);
    // No accesses at all: zero faults, reclaim should grow.
    eq_.run(milliseconds(100.0));
    EXPECT_GT(ctrl_->reclaimBatch(), 4u);
    EXPECT_GT(ctrl_->stats().probes, 5u);
    EXPECT_GT(backend_->farPageCount(), 0u);
}

TEST_F(SenpaiTest, BacksOffUnderFaultStorm)
{
    SenpaiConfig cfg;
    cfg.interval = milliseconds(10.0);
    cfg.initialReclaim = 64;
    cfg.targetFaultsPerSec = 10.0;
    makeController(cfg);
    // Phase 1: reclaim everything it can.
    eq_.run(milliseconds(50.0));
    const auto batch_before = ctrl_->reclaimBatch();
    // Phase 2: hammer random pages -> fault storm -> backoff.
    Rng rng(3);
    for (int i = 1; i <= 400; ++i) {
        eq_.scheduleIn(microseconds(i * 100.0), [this, &rng] {
            ctrl_->recordAccess(rng.uniformInt(numPages));
        });
    }
    eq_.run(eq_.now() + milliseconds(60.0));
    EXPECT_LT(ctrl_->reclaimBatch(), batch_before);
    EXPECT_GT(ctrl_->stats().backoffs, 0u);
    EXPECT_GT(ctrl_->stats().demandFaults, 0u);
}

TEST_F(SenpaiTest, ReclaimBatchStaysWithinBounds)
{
    SenpaiConfig cfg;
    cfg.interval = milliseconds(5.0);
    cfg.maxReclaim = 32;
    cfg.minReclaim = 2;
    makeController(cfg);
    eq_.run(milliseconds(200.0));
    EXPECT_LE(ctrl_->reclaimBatch(), 32u);
    EXPECT_GE(ctrl_->reclaimBatch(), 2u);
}

TEST_F(SenpaiTest, ProbeClampsExactlyAtMaxReclaim)
{
    // A probe step far larger than the headroom must saturate at
    // maxReclaim, not overshoot it.
    SenpaiConfig cfg;
    cfg.interval = milliseconds(5.0);
    cfg.initialReclaim = 4;
    cfg.probeStep = 64;
    cfg.maxReclaim = 12;
    makeController(cfg);
    eq_.run(milliseconds(100.0));  // no faults: probes every tick
    EXPECT_EQ(ctrl_->reclaimBatch(), 12u);
    EXPECT_LE(ctrl_->stats().reclaimRate.max(), 12.0);
    EXPECT_GT(ctrl_->stats().probes, 10u);
}

TEST_F(SenpaiTest, BackoffClampsExactlyAtMinReclaim)
{
    // An aggressive multiplicative backoff (x0.1 would round to 0)
    // must floor at minReclaim while pressure persists.
    SenpaiConfig cfg;
    cfg.interval = milliseconds(5.0);
    cfg.initialReclaim = 64;
    cfg.backoffFactor = 0.1;
    cfg.minReclaim = 3;
    cfg.targetFaultsPerSec = 0.0;  // any fault is over target
    makeController(cfg);

    // Let the first tick demote pages, then keep one fault landing
    // in every interval so the controller backs off continuously.
    eq_.run(milliseconds(6.0));
    for (int i = 0; i < 20; ++i) {
        for (VirtPage p = 0; p < numPages; ++p) {
            if (backend_->pageState(p) == PageState::Far) {
                ctrl_->recordAccess(p);
                break;
            }
        }
        eq_.run(eq_.now() + milliseconds(5.0));
        EXPECT_GE(ctrl_->reclaimBatch(), 3u);
    }
    EXPECT_EQ(ctrl_->reclaimBatch(), 3u);
    EXPECT_GT(ctrl_->stats().backoffs, 10u);
    EXPECT_GE(ctrl_->stats().reclaimRate.min(), 3.0);
}

TEST_F(SenpaiTest, FaultedPagesReturnLocal)
{
    SenpaiConfig cfg;
    cfg.interval = milliseconds(5.0);
    cfg.initialReclaim = 128;
    makeController(cfg);
    eq_.run(milliseconds(50.0));
    ASSERT_GT(backend_->farPageCount(), 0u);
    // Find a far page and fault it.
    VirtPage victim = numPages;
    for (VirtPage p = 0; p < numPages; ++p) {
        if (backend_->pageState(p) == PageState::Far) {
            victim = p;
            break;
        }
    }
    ASSERT_LT(victim, numPages);
    EXPECT_FALSE(ctrl_->recordAccess(victim));
    eq_.run(eq_.now() + microseconds(100.0));
    EXPECT_EQ(backend_->pageState(victim), PageState::Local);
    // Data intact after the round trip.
    EXPECT_EQ(mem_.read(backend_->frameAddr(victim), pageBytes),
              compress::generateCorpus(compress::CorpusKind::LogLines,
                                       victim, pageBytes));
}

TEST_F(SenpaiTest, StatsTrackIntervals)
{
    SenpaiConfig cfg;
    cfg.interval = milliseconds(10.0);
    makeController(cfg);
    eq_.run(milliseconds(105.0));
    EXPECT_GE(ctrl_->stats().intervals, 10u);
    EXPECT_GT(ctrl_->stats().reclaimRate.count(), 0u);
}

} // namespace
} // namespace sfm
} // namespace xfm
