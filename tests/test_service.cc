/**
 * @file
 * Tests for the multi-tenant far-memory service layer: registry
 * admission control and quota accounting, QoS arbiter fairness
 * (weighted round-robin, latency preemption, starvation freedom,
 * slot quotas), per-tenant quota enforcement against the shared XFM
 * backend, cross-tenant data integrity, and the fleet driver.
 */

#include <gtest/gtest.h>

#include <optional>

#include "compress/corpus.hh"
#include "dram/ddr_config.hh"
#include "service/service.hh"
#include "test_util.hh"
#include "workload/fleet.hh"

namespace xfm
{
namespace service
{
namespace
{

using sfm::PageState;
using sfm::SwapOutcome;
using sfm::VirtPage;

// ------------------------------------------------------------ registry

TEST(TenantRegistry, AdmitsUpToMaxTenants)
{
    TenantRegistry reg({2, 64, 0});
    TenantConfig cfg;
    cfg.pages = 64;
    EXPECT_EQ(reg.add(cfg), 0u);
    EXPECT_EQ(reg.add(cfg), 1u);
    EXPECT_EQ(reg.add(cfg), invalidTenant);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.rejectedAdmissions(), 1u);
}

TEST(TenantRegistry, RejectsShardOverflowAndEmptyTenants)
{
    TenantRegistry reg({4, 64, 0});
    TenantConfig cfg;
    cfg.pages = 65;  // larger than the shard
    EXPECT_EQ(reg.add(cfg), invalidTenant);
    cfg.pages = 0;
    EXPECT_EQ(reg.add(cfg), invalidTenant);
    EXPECT_EQ(reg.rejectedAdmissions(), 2u);
}

TEST(TenantRegistry, RejectsSpmOversubscription)
{
    // Scratchpad fits exactly two default SPM quotas.
    TenantConfig cfg;
    cfg.pages = 16;
    TenantRegistry reg({4, 64, 2 * cfg.quota.spmBytes});
    EXPECT_NE(reg.add(cfg), invalidTenant);
    EXPECT_NE(reg.add(cfg), invalidTenant);
    EXPECT_EQ(reg.add(cfg), invalidTenant);
    // A zero-SPM tenant still fits.
    cfg.quota.spmBytes = 0;
    EXPECT_NE(reg.add(cfg), invalidTenant);
}

TEST(TenantRegistry, ShardsArePagesPerShardApart)
{
    TenantRegistry reg({4, 128, 0});
    TenantConfig cfg;
    cfg.pages = 100;
    const TenantId a = reg.add(cfg);
    const TenantId b = reg.add(cfg);
    EXPECT_EQ(reg.basePage(a), 0u);
    EXPECT_EQ(reg.basePage(b), 128u);
}

TEST(TenantRegistry, QuotaAccountingRoundTrips)
{
    TenantRegistry reg({2, 64, 0});
    TenantConfig cfg;
    cfg.pages = 64;
    cfg.quota.maxFarPages = 2;
    cfg.quota.spmBytes = 100;
    const TenantId id = reg.add(cfg);

    EXPECT_TRUE(reg.underFarQuota(id));
    reg.noteFarPages(id, 2);
    EXPECT_FALSE(reg.underFarQuota(id));
    reg.noteFarPages(id, -1);
    EXPECT_TRUE(reg.underFarQuota(id));

    EXPECT_TRUE(reg.tryChargeSpm(id, 60));
    EXPECT_FALSE(reg.tryChargeSpm(id, 60));  // would exceed 100
    reg.releaseSpm(id, 60);
    EXPECT_TRUE(reg.tryChargeSpm(id, 100));
    EXPECT_EQ(reg.spmCharged(id), 100u);
}

// ------------------------------------------------------------- arbiter

class ArbiterTest : public ::testing::Test
{
  protected:
    static constexpr Tick window = microseconds(1.0);

    void
    makeArbiter(std::uint32_t slots = 4, std::uint32_t min_batch = 1)
    {
        QosArbiterConfig cfg;
        cfg.window = window;
        cfg.slotsPerWindow = slots;
        cfg.minBatchSlots = min_batch;
        arb_.emplace("arb", eq_, cfg);
    }

    /** Enqueue n jobs on lane id, each bumping its counter. */
    void
    flood(TenantId id, std::uint64_t *counter, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            arb_->enqueue(id, [counter] { ++*counter; });
    }

    EventQueue eq_;
    std::optional<QosArbiter> arb_;
};

TEST_F(ArbiterTest, WrrFollowsWeightsAndStarvesNobody)
{
    makeArbiter();
    arb_->addTenant(0, PriorityClass::Batch, 1, 4);
    arb_->addTenant(1, PriorityClass::Batch, 3, 4);
    std::uint64_t c0 = 0, c1 = 0;
    flood(0, &c0, 400);
    flood(1, &c1, 400);
    arb_->start();
    eq_.run(window * 120);

    // Both make progress; the 3:1 weights govern the split.
    EXPECT_GT(c0, 0u);
    EXPECT_GT(c1, 0u);
    const double ratio =
        static_cast<double>(c1) / static_cast<double>(c0);
    EXPECT_NEAR(ratio, 3.0, 0.3);
    EXPECT_EQ(arb_->laneStats(0).dispatched, c0);
    EXPECT_EQ(arb_->laneStats(1).dispatched, c1);
    EXPECT_GT(arb_->laneStats(0).waitNs.mean(), 0.0);
}

TEST_F(ArbiterTest, LatencyClassPreemptsButBatchKeepsFloor)
{
    makeArbiter(4, 1);
    arb_->addTenant(0, PriorityClass::LatencySensitive, 1, 4);
    arb_->addTenant(1, PriorityClass::Batch, 1, 4);
    std::uint64_t lat = 0, batch = 0;
    flood(0, &lat, 1000);
    flood(1, &batch, 1000);
    arb_->start();
    eq_.run(window * 100);

    // Latency work preempts batch for the unreserved slots...
    EXPECT_GT(arb_->stats().preemptions, 0u);
    EXPECT_GT(lat, batch);
    // ...but the reserved floor keeps batch starvation-free: one
    // slot of every window while both stay backlogged.
    const auto windows = arb_->stats().windows;
    EXPECT_GE(batch, windows - 1);
    EXPECT_NEAR(static_cast<double>(lat) / batch, 3.0, 0.3);
}

TEST_F(ArbiterTest, IdleLatencyLaneYieldsAllSlotsToBatch)
{
    makeArbiter(4, 1);
    arb_->addTenant(0, PriorityClass::LatencySensitive, 1, 4);
    arb_->addTenant(1, PriorityClass::Batch, 1, 4);
    std::uint64_t batch = 0;
    flood(1, &batch, 1000);
    arb_->start();
    eq_.run(window * 50);

    // Work-conserving: with no latency work queued batch takes all
    // four slots of every window.
    EXPECT_GE(batch, (arb_->stats().windows - 1) * 4);
    EXPECT_EQ(arb_->stats().preemptions, 0u);
}

TEST_F(ArbiterTest, PerTenantSlotQuotaThrottles)
{
    makeArbiter(4, 1);
    arb_->addTenant(0, PriorityClass::Batch, 1, 1);  // 1 slot/window
    std::uint64_t c = 0;
    flood(0, &c, 100);
    arb_->start();
    eq_.run(window * 20);

    const auto windows = arb_->stats().windows;
    EXPECT_LE(c, windows);
    EXPECT_GT(arb_->stats().throttledWindows, 0u);
    EXPECT_GT(arb_->queued(0), 0u);
}

// ------------------------------------------------- service end-to-end

class ServiceTest : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t tenantPages = 16;

    ServiceConfig
    makeConfig()
    {
        return testutil::testServiceConfig();
    }

    void
    makeService(const ServiceConfig &cfg)
    {
        svc_.emplace("svc", eq_, cfg);
    }

    TenantId
    addTenant(TenantConfig cfg)
    {
        cfg.pages = tenantPages;
        return svc_->addTenant(cfg);
    }

    Bytes
    pageContent(TenantId id, VirtPage p) const
    {
        return testutil::corpusPage(compress::CorpusKind::Json,
                                    id * 1000 + p + 7);
    }

    void
    seedPages(TenantId id)
    {
        for (VirtPage p = 0; p < tenantPages; ++p)
            svc_->writePage(id, p, pageContent(id, p));
    }

    /** Swap out pages [0, n) of the tenant and run to completion. */
    void
    swapOutPages(TenantId id, VirtPage n)
    {
        for (VirtPage p = 0; p < n; ++p)
            svc_->tenantBackend(id).swapOut(p, SwapCallback{});
        eq_.run(eq_.now() + milliseconds(5.0));
    }

    using SwapCallback = sfm::SwapCallback;

    EventQueue eq_;
    std::optional<FarMemoryService> svc_;
};

TEST_F(ServiceTest, FarPageQuotaRejectsExcessSwapOuts)
{
    makeService(makeConfig());
    TenantConfig tcfg;
    tcfg.quota.maxFarPages = 4;
    const TenantId id = addTenant(tcfg);
    ASSERT_NE(id, invalidTenant);
    seedPages(id);
    svc_->start();

    swapOutPages(id, 12);

    const TenantStats &ts = svc_->registry().stats(id);
    EXPECT_EQ(svc_->registry().farPages(id), 4u);
    EXPECT_EQ(ts.swapOuts, 4u);
    EXPECT_EQ(ts.quotaRejects, 8u);
    EXPECT_EQ(svc_->tenantBackend(id).farPageCount(), 4u);
}

TEST_F(ServiceTest, SpmQuotaDegradesOffloadsToCpu)
{
    makeService(makeConfig());
    TenantConfig tcfg;
    tcfg.quota.spmBytes = 0;  // no staging allowance at all
    const TenantId id = addTenant(tcfg);
    ASSERT_NE(id, invalidTenant);
    seedPages(id);
    svc_->start();

    swapOutPages(id, 8);

    const TenantStats &ts = svc_->registry().stats(id);
    EXPECT_EQ(ts.degradedToCpu, 8u);
    EXPECT_EQ(ts.nmaOps, 0u);   // nothing reached the accelerator
    EXPECT_EQ(ts.cpuOps, 8u);   // everything still completed on CPU
    EXPECT_EQ(ts.swapOuts, 8u);
    EXPECT_EQ(svc_->registry().spmCharged(id), 0u);
}

TEST_F(ServiceTest, OffloadsUseNmaWithinQuota)
{
    makeService(makeConfig());
    const TenantId id = addTenant(TenantConfig{});
    ASSERT_NE(id, invalidTenant);
    seedPages(id);
    svc_->start();

    swapOutPages(id, 8);

    const TenantStats &ts = svc_->registry().stats(id);
    EXPECT_EQ(ts.swapOuts, 8u);
    EXPECT_GT(ts.nmaOps, 0u);
    EXPECT_EQ(ts.degradedToCpu, 0u);
    // In-flight SPM charges all released at completion.
    EXPECT_EQ(svc_->registry().spmCharged(id), 0u);
}

TEST_F(ServiceTest, TenantsKeepDataIntactAcrossSharedBackend)
{
    makeService(makeConfig());
    TenantConfig a_cfg, b_cfg;
    a_cfg.name = "a";
    b_cfg.name = "b";
    b_cfg.cls = PriorityClass::Batch;
    const TenantId a = addTenant(a_cfg);
    const TenantId b = addTenant(b_cfg);
    ASSERT_NE(a, invalidTenant);
    ASSERT_NE(b, invalidTenant);
    seedPages(a);
    seedPages(b);
    svc_->start();

    // Interleave both tenants' demotions of the same shard-local
    // page numbers through the one shared backend.
    for (VirtPage p = 0; p < 4; ++p) {
        svc_->tenantBackend(a).swapOut(p, SwapCallback{});
        svc_->tenantBackend(b).swapOut(p, SwapCallback{});
    }
    eq_.run(eq_.now() + milliseconds(5.0));
    for (VirtPage p = 0; p < 4; ++p) {
        EXPECT_EQ(svc_->tenantBackend(a).pageState(p),
                  PageState::Far);
        EXPECT_EQ(svc_->tenantBackend(b).pageState(p),
                  PageState::Far);
    }

    // Promote and verify every page went back to its owner intact.
    for (VirtPage p = 0; p < 4; ++p) {
        svc_->tenantBackend(a).swapIn(p, false, SwapCallback{});
        svc_->tenantBackend(b).swapIn(p, false, SwapCallback{});
    }
    eq_.run(eq_.now() + milliseconds(5.0));
    for (VirtPage p = 0; p < 4; ++p) {
        EXPECT_EQ(svc_->readPage(a, p), pageContent(a, p));
        EXPECT_EQ(svc_->readPage(b, p), pageContent(b, p));
    }
    EXPECT_EQ(svc_->registry().farPages(a), 0u);
    EXPECT_EQ(svc_->registry().farPages(b), 0u);
    EXPECT_EQ(svc_->registry().storedBytes(a), 0u);
    EXPECT_EQ(svc_->registry().storedBytes(b), 0u);
}

TEST_F(ServiceTest, AccessCountsHitsAndFaults)
{
    makeService(makeConfig());
    const TenantId id = addTenant(TenantConfig{});
    ASSERT_NE(id, invalidTenant);
    seedPages(id);
    svc_->start();

    EXPECT_TRUE(svc_->access(id, 0));  // local
    swapOutPages(id, 1);
    EXPECT_FALSE(svc_->access(id, 0));  // demand fault
    eq_.run(eq_.now() + milliseconds(1.0));

    const TenantStats &ts = svc_->registry().stats(id);
    EXPECT_EQ(ts.accesses, 2u);
    EXPECT_EQ(ts.localHits, 1u);
    EXPECT_EQ(ts.demandFaults, 1u);
    EXPECT_GT(ts.faultLatencyNs.total(), 0u);
    EXPECT_GT(ts.faultLatencyNs.percentile(0.99), 0.0);
}

TEST_F(ServiceTest, FaultPlanSurfacesInPerTenantStats)
{
    // Transient doorbell losses are retried by the driver; engine
    // stalls degrade the op to the CPU path. Both must be visible
    // per tenant, and no fault may cost a page its contents.
    auto cfg = makeConfig();
    cfg.system.faults.seed = 21;
    cfg.system.faults.site(fault::FaultSite::MmioDoorbellLoss)
        .probability = 0.35;
    cfg.system.faults.site(fault::FaultSite::EngineStall)
        .probability = 0.30;
    makeService(cfg);
    const TenantId id = addTenant(TenantConfig{});
    ASSERT_NE(id, invalidTenant);
    seedPages(id);
    svc_->start();

    swapOutPages(id, tenantPages);
    for (VirtPage p = 0; p < tenantPages; ++p)
        svc_->tenantBackend(id).swapIn(p, true, SwapCallback{});
    eq_.run(eq_.now() + milliseconds(5.0));

    const TenantStats &ts = svc_->registry().stats(id);
    EXPECT_EQ(ts.swapOuts, tenantPages);
    EXPECT_EQ(ts.swapIns, tenantPages);
    EXPECT_EQ(ts.faultedOps, 0u);  // degraded, never failed
    EXPECT_GT(ts.offloadRetries, 0u);
    EXPECT_GT(ts.nmaFallbacks, 0u);
    for (VirtPage p = 0; p < tenantPages; ++p)
        EXPECT_EQ(svc_->readPage(id, p), pageContent(id, p));

    // The counters reach the unified registry: per-tenant metrics
    // and the injector's per-site metrics share one rendered table.
    const std::string out = svc_->metrics().renderText();
    EXPECT_NE(out.find("offloadRetries"), std::string::npos);
    EXPECT_NE(out.find("nmaFallbacks"), std::string::npos);
    EXPECT_NE(out.find("faultedOps"), std::string::npos);
    EXPECT_NE(out.find("mmio_doorbell.injections"),
              std::string::npos);
    EXPECT_GT(svc_->faultInjector().totalInjections(), 0u);
}

// --------------------------------------------------------------- fleet

TEST(Fleet, HeterogeneousMixShapes)
{
    workload::FleetConfig cfg;
    cfg.numTenants = 8;
    const auto fleet = workload::heterogeneousFleet(cfg);
    ASSERT_EQ(fleet.size(), 8u);
    std::size_t latency = 0, senpai = 0;
    for (const auto &spec : fleet) {
        if (spec.cfg.cls == PriorityClass::LatencySensitive)
            ++latency;
        if (spec.cfg.policy == ControlPolicy::Senpai)
            ++senpai;
        EXPECT_GE(spec.cfg.weight, 1u);
        EXPECT_LE(spec.cfg.weight, 3u);
    }
    EXPECT_EQ(latency, 2u);  // every fourth tenant
    EXPECT_GT(senpai, 0u);   // mixed control policies
}

TEST(Fleet, DriverRunsAllTenants)
{
    EventQueue eq;
    ServiceConfig scfg;
    scfg.registry.maxTenants = 4;
    scfg.registry.pagesPerShard = 64;
    scfg.system.numDimms = 2;
    scfg.system.dimmMem.rank.device = dram::ddr5Device32Gb();
    scfg.system.dimmMem.channels = 1;
    scfg.system.dimmMem.dimmsPerChannel = 1;
    scfg.system.dimmMem.ranksPerDimm = 1;
    scfg.system.sfmBase = gib(1);
    scfg.system.sfmBytes = mib(4);
    scfg.system.device.spmBytes = kib(512);
    scfg.system.device.queueDepth = 32;
    scfg.batchSpmCapBytes = kib(256);
    FarMemoryService svc("svc", eq, scfg);

    workload::FleetConfig fcfg;
    fcfg.numTenants = 4;
    fcfg.pagesPerTenant = 32;
    fcfg.accessesPerSecond = 200000.0;
    workload::FleetDriver fleet("fleet", eq, svc, fcfg);
    ASSERT_EQ(fleet.numTenants(), 4u);

    svc.start();
    fleet.start();
    eq.run(milliseconds(10.0));

    EXPECT_GT(fleet.totalAccesses(), 0u);
    for (std::size_t i = 0; i < fleet.numTenants(); ++i) {
        const auto &ts = svc.registry().stats(fleet.tenantId(i));
        EXPECT_GT(ts.accesses, 0u) << "tenant " << i;
    }
    EXPECT_GT(svc.arbiter().stats().windows, 0u);
    EXPECT_GT(svc.arbiter().stats().dispatched, 0u);
}

} // namespace
} // namespace service
} // namespace xfm
