/**
 * @file
 * Differential test harness: every compression algorithm and a mix
 * of page-content classes run through both the XFM-accelerated
 * backend and the baseline CPU backend, and every page must restore
 * byte-identically on both — with a zero-fault plan, and again with
 * an aggressive fault plan (SPM reserve failures, engine stalls,
 * doorbell losses) forcing CPU fallbacks mid-stream. The offload
 * path may degrade; the data may not.
 */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "health/health.hh"
#include "sfm/cpu_backend.hh"
#include "sfm/tier_manager.hh"
#include "test_util.hh"
#include "xfm/xfm_backend.hh"

namespace xfm
{
namespace
{

using sfm::PageState;
using sfm::SwapOutcome;
using sfm::VirtPage;

constexpr VirtPage numPages = 24;

const std::vector<compress::CorpusKind> &
pageMix()
{
    // A spread of compressibility classes, including the sparse and
    // incompressible extremes.
    static const std::vector<compress::CorpusKind> kinds = {
        compress::CorpusKind::EnglishText,
        compress::CorpusKind::Json,
        compress::CorpusKind::LogLines,
        compress::CorpusKind::SourceCode,
        compress::CorpusKind::ZeroHeavy,
        compress::CorpusKind::Base64Blob,
    };
    return kinds;
}

Bytes
pageFor(VirtPage p)
{
    const auto &kinds = pageMix();
    return testutil::corpusPage(kinds[p % kinds.size()], p + 1);
}

/** SPM failures, engine stalls, and doorbell losses, all at >= 10%. */
fault::FaultPlan
aggressivePlan()
{
    fault::FaultPlan plan;
    plan.seed = 13;
    plan.site(fault::FaultSite::SpmReserveFail).probability = 0.15;
    plan.site(fault::FaultSite::EngineStall).probability = 0.10;
    plan.site(fault::FaultSite::MmioDoorbellLoss).probability = 0.20;
    return plan;
}

struct DifferentialResult
{
    std::uint64_t xfmCpuOps = 0;      ///< fallbacks the XFM side took
    std::uint64_t offloadRetries = 0; ///< driver re-submissions used
    std::uint64_t dictShards = 0;     ///< shards stored in dict mode
    std::uint64_t dictFallbacks = 0;  ///< dict-mode plain fallbacks
};

/**
 * Run the full demote/promote cycle through both backends and
 * assert byte-identical restoration everywhere.
 */
DifferentialResult
runDifferential(compress::Algorithm alg, const fault::FaultPlan &plan,
                const health::HealthConfig &health = {},
                std::uint32_t sq_depth = 1,
                std::size_t sim_shards = 1, bool shard_dict = false)
{
    // sim_shards > 1 runs the sharded event core with per-DIMM
    // domains staged at tREFI window barriers (DESIGN.md §13); the
    // data-integrity contract is identical either way.
    EventQueueConfig eq_cfg;
    eq_cfg.shards = sim_shards;
    eq_cfg.windowTicks = dram::ddr5Device32Gb().tREFI();
    eq_cfg.drainWorkers = sim_shards > 1 ? 4 : 1;
    eq_cfg.parallelStageMin = 0;
    EventQueue eq(eq_cfg);

    auto xcfg = testutil::testXfmConfig(2);
    xcfg.algorithm = alg;
    xcfg.faults = plan;
    xcfg.health = health;
    xcfg.device.sqDepth = sq_depth;
    xcfg.device.cqCoalesce = sq_depth > 1 ? 2 : 1;
    xcfg.shardDict = shard_dict;  // dictBytes keeps its 2048 default
    xfmsys::XfmBackend xfm("xfm", eq, xcfg);
    xfm.start();

    dram::PhysMem cpu_mem(mib(64));
    sfm::CpuBackendConfig ccfg;
    ccfg.localBase = 0;
    ccfg.localPages = numPages;
    ccfg.sfmBase = mib(32);
    ccfg.sfmBytes = mib(16);
    ccfg.algorithm = alg;
    sfm::CpuSfmBackend cpu("cpu", eq, ccfg, cpu_mem);

    for (VirtPage p = 0; p < numPages; ++p) {
        const Bytes content = pageFor(p);
        xfm.writePage(p, content);
        cpu_mem.write(cpu.frameAddr(p), content);
    }

    // Demote everything. A backend may reject a page it cannot
    // shrink (lzfast on Base64Blob), but a rejection must leave the
    // page Local and intact; anything accepted must land Far.
    std::vector<bool> xfm_far(numPages, false);
    std::vector<bool> cpu_far(numPages, false);
    for (VirtPage p = 0; p < numPages; ++p) {
        xfm.swapOut(p, [&xfm_far, p](const SwapOutcome &o) {
            xfm_far[p] = o.success;
        });
        cpu.swapOut(p, [&cpu_far, p](const SwapOutcome &o) {
            cpu_far[p] = o.success;
        });
    }
    eq.run(eq.now() + seconds(1.0));

    // At most the incompressible class (every 6th page) may be
    // rejected; the compressible pages must all demote.
    const VirtPage incompressible = numPages / 6;
    std::uint64_t xfm_out = 0;
    std::uint64_t cpu_out = 0;
    for (VirtPage p = 0; p < numPages; ++p) {
        xfm_out += xfm_far[p];
        cpu_out += cpu_far[p];
        EXPECT_EQ(xfm.pageState(p),
                  xfm_far[p] ? PageState::Far : PageState::Local);
        EXPECT_EQ(cpu.pageState(p),
                  cpu_far[p] ? PageState::Far : PageState::Local);
    }
    EXPECT_GE(xfm_out, numPages - incompressible);
    EXPECT_GE(cpu_out, numPages - incompressible);

    // Promote everything back, offload allowed on the XFM side.
    // Faults may reroute a promotion to the CPU path but may not
    // fail it: decompression of committed data always succeeds.
    std::uint64_t in_ok = 0;
    for (VirtPage p = 0; p < numPages; ++p) {
        if (xfm_far[p])
            xfm.swapIn(p, true, [&](const SwapOutcome &o) {
                in_ok += o.success;
            });
        if (cpu_far[p])
            cpu.swapIn(p, false, [&](const SwapOutcome &o) {
                in_ok += o.success;
            });
    }
    eq.run(eq.now() + seconds(1.0));
    EXPECT_EQ(in_ok, xfm_out + cpu_out);

    // The payoff: both backends restore the original bytes exactly.
    for (VirtPage p = 0; p < numPages; ++p) {
        const Bytes content = pageFor(p);
        EXPECT_EQ(xfm.readPage(p), content)
            << algorithmName(alg) << " xfm page " << p;
        EXPECT_EQ(cpu_mem.read(cpu.frameAddr(p), pageBytes), content)
            << algorithmName(alg) << " cpu page " << p;
    }

    DifferentialResult r;
    r.xfmCpuOps = xfm.stats().cpuSwapOuts + xfm.stats().cpuSwapIns;
    r.offloadRetries = xfm.xfmStats().offloadRetries;
    r.dictShards = xfm.xfmStats().dictShards;
    r.dictFallbacks = xfm.xfmStats().dictFallbacks;
    return r;
}

/** The aggressive plan with the DFM spill-link sites armed too. */
fault::FaultPlan
tieredPlan()
{
    fault::FaultPlan plan = aggressivePlan();
    plan.site(fault::FaultSite::DfmLinkDelay).probability = 0.20;
    plan.site(fault::FaultSite::DfmLinkDrop).probability = 0.10;
    return plan;
}

/**
 * The differential cycle again, but with BOTH backends wrapped in a
 * TierManager sized so half the demotions land in the DFM spill
 * pool and the rest fall back to the compressed tier — every page
 * must restore byte-identically from either tier, on either stack.
 */
void
runTieredDifferential(compress::Algorithm alg,
                      const fault::FaultPlan &plan)
{
    EventQueue eq;
    auto xcfg = testutil::testXfmConfig(2);
    xcfg.algorithm = alg;
    xcfg.faults = plan;
    xfmsys::XfmBackend xfm("xfm", eq, xcfg);

    dram::PhysMem cpu_mem(mib(64));
    sfm::CpuBackendConfig ccfg;
    ccfg.localBase = 0;
    ccfg.localPages = numPages;
    ccfg.sfmBase = mib(32);
    ccfg.sfmBytes = mib(16);
    ccfg.algorithm = alg;
    sfm::CpuSfmBackend cpu("cpu", eq, ccfg, cpu_mem);

    sfm::TierConfig tcfg;
    tcfg.enabled = true;
    tcfg.scanInterval = 0;  // pure demand routing, no background scan
    // Pool for half the pages: the other half exercises the
    // pool-full fallback into the compressed tier.
    tcfg.dfmBytes = (numPages / 2) * pageBytes;
    tcfg.faults = plan;
    sfm::TierManager xtiers("xfm.tiers", eq, tcfg, xfm, numPages);
    sfm::TierManager ctiers("cpu.tiers", eq, tcfg, cpu, numPages);
    xfm.start();
    xtiers.start();
    ctiers.start();

    for (VirtPage p = 0; p < numPages; ++p) {
        const Bytes content = pageFor(p);
        xfm.writePage(p, content);
        cpu_mem.write(cpu.frameAddr(p), content);
    }

    // Demote everything through the tier routers. Cold, never-hit
    // pages route to DFM under the auto policy until the pool is
    // full, then fall back to XFM; a failed spill or an
    // incompressible rejection leaves the page Near and intact.
    std::vector<bool> xfm_far(numPages, false);
    std::vector<bool> cpu_far(numPages, false);
    for (VirtPage p = 0; p < numPages; ++p) {
        xtiers.swapOut(p, [&xfm_far, p](const SwapOutcome &o) {
            xfm_far[p] = o.success;
        });
        ctiers.swapOut(p, [&cpu_far, p](const SwapOutcome &o) {
            cpu_far[p] = o.success;
        });
    }
    eq.run(eq.now() + seconds(1.0));

    std::uint64_t xfm_out = 0;
    std::uint64_t cpu_out = 0;
    for (VirtPage p = 0; p < numPages; ++p) {
        xfm_out += xfm_far[p];
        cpu_out += cpu_far[p];
        EXPECT_EQ(xtiers.pageState(p),
                  xfm_far[p] ? PageState::Far : PageState::Local);
        EXPECT_EQ(ctiers.pageState(p),
                  cpu_far[p] ? PageState::Far : PageState::Local);
    }
    EXPECT_GT(xfm_out, 0u);
    EXPECT_GT(cpu_out, 0u);
    // Both tiers actually engaged on both stacks.
    EXPECT_GT(xtiers.dfmPages(), 0u);
    EXPECT_GT(xtiers.xfmPages(), 0u);
    EXPECT_GT(ctiers.dfmPages(), 0u);
    EXPECT_GT(ctiers.xfmPages(), 0u);

    // Promote everything back through the routers.
    std::uint64_t in_ok = 0;
    for (VirtPage p = 0; p < numPages; ++p) {
        if (xfm_far[p])
            xtiers.swapIn(p, true, [&](const SwapOutcome &o) {
                in_ok += o.success;
            });
        if (cpu_far[p])
            ctiers.swapIn(p, false, [&](const SwapOutcome &o) {
                in_ok += o.success;
            });
    }
    eq.run(eq.now() + seconds(1.0));
    EXPECT_EQ(in_ok, xfm_out + cpu_out);

    for (VirtPage p = 0; p < numPages; ++p) {
        const Bytes content = pageFor(p);
        EXPECT_EQ(xfm.readPage(p), content)
            << algorithmName(alg) << " tiered xfm page " << p;
        EXPECT_EQ(cpu_mem.read(cpu.frameAddr(p), pageBytes), content)
            << algorithmName(alg) << " tiered cpu page " << p;
    }
}

class DifferentialTest
    : public ::testing::TestWithParam<compress::Algorithm>
{
};

TEST_P(DifferentialTest, CleanRunRestoresAllPages)
{
    const auto r = runDifferential(GetParam(), fault::FaultPlan{});
    // Without faults nothing retries.
    EXPECT_EQ(r.offloadRetries, 0u);
}

TEST_P(DifferentialTest, FaultedRunRestoresAllPages)
{
    const auto r = runDifferential(GetParam(), aggressivePlan());
    // The plan is aggressive enough that some operations must have
    // degraded — otherwise the harness is not exercising fallback.
    EXPECT_GT(r.xfmCpuOps, 0u);
}

TEST_P(DifferentialTest, FaultedRunWithBreakersRestoresAllPages)
{
    // Same aggressive plan, but with the health layer armed: circuit
    // breakers now trip mid-stream, reroute shards to per-channel
    // CPU fallbacks, and re-probe through half-open probation — and
    // none of that may cost a byte either.
    health::HealthConfig h;
    h.enabled = true;
    h.window = 8;
    h.failConsecutive = 3;
    h.cooldown = microseconds(50.0);
    const auto r = runDifferential(GetParam(), aggressivePlan(), h);
    EXPECT_GT(r.xfmCpuOps, 0u);
}

TEST_P(DifferentialTest, RingDepthEightRestoresAllPages)
{
    // The async command ring (sq_depth 8, coalesced reap) changes
    // completion delivery order but may not cost a byte: the same
    // clean run restores every page exactly.
    const auto r = runDifferential(GetParam(), fault::FaultPlan{},
                                   {}, 8);
    EXPECT_EQ(r.offloadRetries, 0u);
}

TEST_P(DifferentialTest, RingDepthEightFaultedRestoresAllPages)
{
    // Per-queue doorbell loss (batch flush), phase-bit misreads at
    // reap, SPM reserve failures and engine stalls, all while the
    // ring runs deep — data integrity must still be perfect.
    health::HealthConfig h;
    h.enabled = true;
    h.window = 8;
    h.failConsecutive = 3;
    h.cooldown = microseconds(50.0);
    const auto r =
        runDifferential(GetParam(), aggressivePlan(), h, 8);
    EXPECT_GT(r.xfmCpuOps, 0u);
}

TEST_P(DifferentialTest, ShardedCoreFaultedRestoresAllPages)
{
    // The aggressive fault plan replayed on the sharded event core
    // at full width: retries, stalls, and doorbell losses now cross
    // window barriers, and every page must still restore exactly —
    // with the same CPU-fallback degradation the monolithic kernel
    // shows.
    const auto mono = runDifferential(GetParam(), aggressivePlan());
    const auto s8 =
        runDifferential(GetParam(), aggressivePlan(), {}, 1, 8);
    EXPECT_GT(s8.xfmCpuOps, 0u);
    EXPECT_EQ(s8.xfmCpuOps, mono.xfmCpuOps);
    EXPECT_EQ(s8.offloadRetries, mono.offloadRetries);
}

TEST_P(DifferentialTest, ShardedCoreBreakersRestoresAllPages)
{
    // Breaker trips, half-open probes, and channel offlining on the
    // sharded core: the health state machine walks the exact same
    // transitions as on the monolithic kernel.
    health::HealthConfig h;
    h.enabled = true;
    h.window = 8;
    h.failConsecutive = 3;
    h.cooldown = microseconds(50.0);
    const auto mono =
        runDifferential(GetParam(), aggressivePlan(), h);
    const auto s8 =
        runDifferential(GetParam(), aggressivePlan(), h, 1, 8);
    EXPECT_GT(s8.xfmCpuOps, 0u);
    EXPECT_EQ(s8.xfmCpuOps, mono.xfmCpuOps);
    EXPECT_EQ(s8.offloadRetries, mono.offloadRetries);
}

TEST_P(DifferentialTest, DictCleanRunRestoresAllPages)
{
    // Preset dictionaries on (`xfm.shard_dict`): shards store in the
    // dict-referencing container, the packed dictionary rides the
    // slot tails, and every restore must still be byte-exact against
    // the dict-less CPU baseline.
    const auto r = runDifferential(GetParam(), fault::FaultPlan{},
                                   {}, 1, 1, true);
    EXPECT_EQ(r.offloadRetries, 0u);
    // The page mix is dominated by spatially-correlated classes, so
    // dict mode must actually engage, not silently fall back.
    EXPECT_GT(r.dictShards, 0u);
}

TEST_P(DifferentialTest, DictFaultedRunRestoresAllPages)
{
    // Dict mode under the aggressive plan with breakers armed:
    // engine restores, per-shard CPU fallbacks, and watchdog redos
    // must all decode against the same recovered dictionary.
    health::HealthConfig h;
    h.enabled = true;
    h.window = 8;
    h.failConsecutive = 3;
    h.cooldown = microseconds(50.0);
    const auto r = runDifferential(GetParam(), aggressivePlan(), h,
                                   1, 1, true);
    EXPECT_GT(r.xfmCpuOps, 0u);
    EXPECT_GT(r.dictShards, 0u);
}

TEST_P(DifferentialTest, DictRingDepthEightFaultedRestoresAllPages)
{
    // Dict mode, deep ring, faults: completion reordering must not
    // detach a shard from its page's dictionary.
    const auto r = runDifferential(GetParam(), aggressivePlan(), {},
                                   8, 1, true);
    EXPECT_GT(r.dictShards, 0u);
}

TEST_P(DifferentialTest, TieredCleanRunRestoresAllPages)
{
    // No faults: the auto policy sends cold pages to the DFM pool
    // until it fills, the rest land compressed, and both stacks
    // restore every byte from both tiers.
    runTieredDifferential(GetParam(), fault::FaultPlan{});
}

TEST_P(DifferentialTest, TieredFaultedRunRestoresAllPages)
{
    // The aggressive plan plus the spill-link sites (delays and
    // dropped transfers forcing link retries): degraded routing is
    // fine, byte loss is not.
    runTieredDifferential(GetParam(), tieredPlan());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DifferentialTest,
                         ::testing::Values(
                             compress::Algorithm::LzFast,
                             compress::Algorithm::Deflate,
                             compress::Algorithm::ZstdLike),
                         [](const auto &info) {
                             return algorithmName(info.param);
                         });

} // namespace
} // namespace xfm
