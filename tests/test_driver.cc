/**
 * @file
 * Unit tests for XfmDriver: the lazy SP_Capacity accounting (bound
 * growth, trim at completion, release at write-back/drop), the
 * always-sync ablation mode, and fallback behaviour when device
 * resources are exhausted.
 */

#include <gtest/gtest.h>

#include <optional>

#include "common/random.hh"
#include "dram/address_map.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "nma/xfm_device.hh"
#include "xfm/xfm_driver.hh"

namespace xfm
{
namespace xfmsys
{
namespace
{

dram::MemSystemConfig
rankConfig()
{
    dram::MemSystemConfig cfg;
    cfg.rank.device = dram::ddr5Device32Gb();
    cfg.channels = 1;
    cfg.dimmsPerChannel = 1;
    cfg.ranksPerDimm = 1;
    return cfg;
}

class DriverTest : public ::testing::Test
{
  protected:
    DriverTest()
        : cfg_(rankConfig()), map_(cfg_),
          mem_(cfg_.totalCapacityBytes()),
          refresh_("refresh", eq_, cfg_.rank.device, 1)
    {}

    void
    makeDriver(nma::XfmDeviceConfig dcfg = {})
    {
        device_.emplace("xfm", eq_, dcfg, map_, mem_, refresh_);
        driver_.emplace(*device_);
        refresh_.start();
    }

    std::uint64_t
    rowAddr(std::uint32_t row) const
    {
        dram::DramCoord c{};
        c.row = row;
        return map_.encode(c);
    }

    EventQueue eq_;
    dram::MemSystemConfig cfg_;
    dram::AddressMap map_;
    dram::PhysMem mem_;
    dram::RefreshController refresh_;
    std::optional<nma::XfmDevice> device_;
    std::optional<XfmDriver> driver_;
};

TEST_F(DriverTest, BoundGrowsOnSubmit)
{
    makeDriver();
    EXPECT_EQ(driver_->occupancyBound(), 0u);
    const auto id = driver_->xfmCompress(rowAddr(100), 4096, maxTick);
    ASSERT_NE(id, nma::invalidOffloadId);
    EXPECT_EQ(driver_->occupancyBound(),
              nma::CompressionEngine::worstCaseCompressedSize(4096));
    EXPECT_EQ(driver_->stats().offloadsSubmitted, 1u);
    EXPECT_EQ(driver_->stats().capacityRegisterReads, 0u);
}

TEST_F(DriverTest, BoundTrimsAtCompletionAndClearsAtWriteback)
{
    makeDriver();
    mem_.write(rowAddr(5), Bytes(4096, 0x33));  // compressible
    std::optional<nma::OffloadCompletion> completion;
    driver_->onComplete([&](const nma::OffloadCompletion &c) {
        completion = c;
    });
    Tick wb_at = 0;
    driver_->onWriteback([&](nma::OffloadId, Tick t) { wb_at = t; });

    // Row 5 is refreshed in the first window: executes immediately.
    const auto id = driver_->xfmCompress(rowAddr(5), 4096, maxTick);
    eq_.run(cfg_.rank.device.tREFI());
    ASSERT_TRUE(completion.has_value());
    // Bound trimmed from worst case (4112) to the actual size.
    EXPECT_EQ(driver_->occupancyBound(), completion->outputSize);

    driver_->commitWriteback(id, rowAddr(5000));
    eq_.run(cfg_.rank.device.retention);
    EXPECT_GT(wb_at, 0u);
    EXPECT_EQ(driver_->occupancyBound(), 0u);
}

TEST_F(DriverTest, BoundClearsOnDeadlineDrop)
{
    makeDriver();
    bool dropped = false;
    driver_->onDrop([&](nma::OffloadId, nma::DropReason) {
        dropped = true;
    });
    // Row far from the refresh cursor, deadline before any window
    // can serve it randomly... deadline 1 tick: dropped at window 1.
    driver_->xfmDecompress(rowAddr(60000), 1024, rowAddr(61000),
                           4096, 1);
    // Burn the first window's random slot with an earlier-deadline
    // op so the victim survives window 0 and expires at window 1.
    driver_->xfmDecompress(rowAddr(62000), 1024, rowAddr(63000),
                           4096, 0);
    eq_.run(2 * cfg_.rank.device.tREFI());
    EXPECT_TRUE(dropped);
    // Only the survivor's bytes remain tracked (its output staged).
    EXPECT_LE(driver_->occupancyBound(), 4096u);
}

TEST_F(DriverTest, BoundClearsOnAbort)
{
    makeDriver();
    const auto id = driver_->xfmCompress(rowAddr(50000), 4096,
                                         maxTick);
    ASSERT_NE(id, nma::invalidOffloadId);
    EXPECT_GT(driver_->occupancyBound(), 0u);
    driver_->abort(id);
    EXPECT_EQ(driver_->occupancyBound(), 0u);
}

TEST_F(DriverTest, LazyBoundTriggersMmioOnlyWhenFull)
{
    nma::XfmDeviceConfig dcfg;
    dcfg.spmBytes = 12 * 1024;  // ~3 worst-case pages
    makeDriver(dcfg);
    int accepted = 0;
    for (int i = 0; i < 3; ++i) {
        if (driver_->xfmCompress(rowAddr(40000 + 16 * i), 4096,
                                 maxTick)
            != nma::invalidOffloadId)
            ++accepted;
    }
    // The first two fit the local bound without any MMIO. The third
    // infers 100% occupancy, reads SP_Capacity, discovers that no
    // output is staged yet (SPM is reserved at read-execution), and
    // is admitted — the lazy bound errs pessimistic, the sync
    // corrects it.
    EXPECT_EQ(accepted, 3);
    EXPECT_EQ(driver_->stats().capacityRegisterReads, 1u);
    EXPECT_EQ(driver_->stats().fallbacks, 0u);
}

TEST_F(DriverTest, TrulyFullSpmFallsBackAfterSync)
{
    nma::XfmDeviceConfig dcfg;
    dcfg.spmBytes = 5 * 1024;  // one worst-case output
    makeDriver(dcfg);
    // Incompressible content so the staged output stays page-sized
    // (a stored block) and really occupies the SPM.
    Bytes noise(4096);
    Rng rng(9);
    for (auto &b : noise)
        b = static_cast<std::uint8_t>(rng.next());
    mem_.write(rowAddr(5), noise);
    // Row 5 executes in window 0; no write-back is committed, so
    // its output stays staged in the SPM.
    ASSERT_NE(driver_->xfmCompress(rowAddr(5), 4096, maxTick),
              nma::invalidOffloadId);
    eq_.run(cfg_.rank.device.tREFI());
    // Now the SPM is truly occupied: the next admission syncs and
    // falls back.
    EXPECT_EQ(driver_->xfmCompress(rowAddr(6), 4096, maxTick),
              nma::invalidOffloadId);
    EXPECT_GE(driver_->stats().capacityRegisterReads, 1u);
    EXPECT_EQ(driver_->stats().fallbacks, 1u);
}

TEST_F(DriverTest, MmioSyncRecoversStaleBound)
{
    nma::XfmDeviceConfig dcfg;
    dcfg.spmBytes = 12 * 1024;
    makeDriver(dcfg);
    mem_.write(rowAddr(5), Bytes(4096, 0x11));
    mem_.write(rowAddr(6), Bytes(4096, 0x22));
    const auto a = driver_->xfmCompress(rowAddr(5), 4096, maxTick);
    const auto b = driver_->xfmCompress(rowAddr(6), 4096, maxTick);
    ASSERT_NE(a, nma::invalidOffloadId);
    ASSERT_NE(b, nma::invalidOffloadId);
    driver_->onComplete([&](const nma::OffloadCompletion &c) {
        driver_->commitWriteback(c.id, rowAddr(5000 + 16 * (c.id % 4)));
    });
    // Let both complete and write back: real SPM usage returns to 0
    // while a pessimist would still refuse.
    eq_.run(cfg_.rank.device.retention);
    EXPECT_EQ(driver_->occupancyBound(), 0u);
    // Next submission is accepted without any fallback.
    EXPECT_NE(driver_->xfmCompress(rowAddr(7), 4096, maxTick),
              nma::invalidOffloadId);
}

TEST_F(DriverTest, AlwaysSyncReadsEveryTime)
{
    makeDriver();
    driver_->setAlwaysSync(true);
    for (int i = 0; i < 5; ++i)
        driver_->xfmCompress(rowAddr(30000 + 16 * i), 4096, maxTick);
    EXPECT_EQ(driver_->stats().capacityRegisterReads, 5u);
}

TEST_F(DriverTest, QueueFullFallsBack)
{
    nma::XfmDeviceConfig dcfg;
    dcfg.queueDepth = 2;
    makeDriver(dcfg);
    int rejected = 0;
    for (int i = 0; i < 4; ++i) {
        if (driver_->xfmCompress(rowAddr(20000 + 16 * i), 4096,
                                 maxTick)
            == nma::invalidOffloadId)
            ++rejected;
    }
    EXPECT_EQ(rejected, 2);
    EXPECT_EQ(driver_->stats().fallbacks, 2u);
}

TEST_F(DriverTest, ParamsetWritesRegionRegisters)
{
    makeDriver();
    driver_->xfmParamset(gib(1), mib(64));
    EXPECT_EQ(device_->regs().read(nma::Reg::SfmRegionBase), gib(1));
    EXPECT_EQ(device_->regs().read(nma::Reg::SfmRegionSize),
              mib(64));
}

TEST_F(DriverTest, DecompressTracksCompressedFootprint)
{
    makeDriver();
    driver_->xfmDecompress(rowAddr(100), 1365, rowAddr(200), 4096,
                           maxTick);
    // The lazy bound uses the compressed size as the staged-bytes
    // estimate for decompressions.
    EXPECT_EQ(driver_->occupancyBound(), 1365u);
}

} // namespace
} // namespace xfmsys
} // namespace xfm
