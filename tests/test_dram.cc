/**
 * @file
 * Tests for the DRAM subsystem: device configs (Table 1), address
 * mapping bijectivity, sparse physical memory, refresh coverage
 * invariants, and memory-controller timing.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "dram/address_map.hh"
#include "dram/ddr_config.hh"
#include "dram/mem_ctrl.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "sim/event_queue.hh"

namespace xfm
{
namespace dram
{
namespace
{

// ------------------------------------------------------------- ddr config

TEST(DdrConfig, Table1Values8Gb)
{
    const auto dev = ddr5Device8Gb();
    EXPECT_EQ(dev.rowsPerBank, 64u * 1024);
    EXPECT_EQ(dev.banksPerChip, 16u);
    EXPECT_EQ(dev.tRFC, nanoseconds(195.0));
    EXPECT_EQ(dev.rowsPerRefresh, 8u);
    EXPECT_EQ(dev.subarraysPerBank, 128u);
}

TEST(DdrConfig, Table1Values16Gb)
{
    const auto dev = ddr5Device16Gb();
    EXPECT_EQ(dev.rowsPerBank, 64u * 1024);
    EXPECT_EQ(dev.banksPerChip, 32u);
    EXPECT_EQ(dev.tRFC, nanoseconds(295.0));
    EXPECT_EQ(dev.rowsPerRefresh, 8u);
    EXPECT_EQ(dev.subarraysPerBank, 128u);
}

TEST(DdrConfig, Table1Values32Gb)
{
    const auto dev = ddr5Device32Gb();
    EXPECT_EQ(dev.rowsPerBank, 128u * 1024);
    EXPECT_EQ(dev.banksPerChip, 32u);
    EXPECT_EQ(dev.tRFC, nanoseconds(410.0));
    EXPECT_EQ(dev.rowsPerRefresh, 16u);
    EXPECT_EQ(dev.subarraysPerBank, 256u);
}

TEST(DdrConfig, RowsPerRefreshCoversRetention)
{
    // Table 1 invariant: rowsPerRefresh * 8192 REFs = rowsPerBank.
    for (const auto &dev : {ddr5Device8Gb(), ddr5Device16Gb(),
                            ddr5Device32Gb()}) {
        EXPECT_EQ(dev.rowsPerRefresh, dev.requiredRowsPerRefresh())
            << dev.name;
    }
}

TEST(DdrConfig, TrefiIs3_9Microseconds)
{
    // 32 ms / 8192 REF = ~3.9 us (paper Sec. 4.3).
    const auto dev = ddr5Device32Gb();
    EXPECT_NEAR(ticksToUs(dev.tREFI()), 3.9, 0.05);
}

TEST(DdrConfig, LockedFractionAbout8Percent)
{
    // Paper: banks are locked ~2.46 ms per 32 ms (tRFC 300 ns), ~8%.
    DeviceConfig dev = ddr5Device32Gb();
    dev.tRFC = nanoseconds(300.0);
    const double locked = static_cast<double>(dev.tRFC)
        / static_cast<double>(dev.tREFI());
    EXPECT_NEAR(locked * 32.0, 2.46, 0.05);  // ms locked per 32 ms
}

TEST(DdrConfig, CapacityGeometryConsistent)
{
    for (const auto &dev : {ddr5Device8Gb(), ddr5Device16Gb(),
                            ddr5Device32Gb()}) {
        const std::uint64_t computed = std::uint64_t(dev.banksPerChip)
            * dev.rowsPerBank * dev.rowBytesPerChip * 8;
        EXPECT_EQ(computed, dev.capacityBits) << dev.name;
    }
}

TEST(DdrConfig, RankCapacity)
{
    RankConfig rank;
    rank.device = ddr5Device16Gb();
    EXPECT_EQ(rank.capacityBytes(), gib(16));
    EXPECT_EQ(rank.rowBytes(), 8u * 1024);
}

TEST(DdrConfig, ChannelBandwidthDdr5_3200)
{
    MemSystemConfig cfg = defaultMemSystem();
    // 3200 MT/s x 8 bytes = 25.6 GB/s per channel.
    EXPECT_NEAR(cfg.channelBandwidthBps() / 1e9, 25.6, 0.1);
}

TEST(DdrConfig, SubarraysHoldWholeBank)
{
    const auto dev = ddr5Device32Gb();
    EXPECT_EQ(dev.rowsPerSubarray() * dev.subarraysPerBank,
              dev.rowsPerBank);
    EXPECT_EQ(dev.rowsPerSubarray(), 512u);
}

// ------------------------------------------------------------ address map

TEST(AddressMap, DecodeEncodeBijective)
{
    const MemSystemConfig cfg = defaultMemSystem();
    AddressMap map(cfg);
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t addr = rng.uniformInt(map.capacityBytes());
        const auto coord = map.decode(addr);
        EXPECT_EQ(map.encode(coord), addr);
    }
}

TEST(AddressMap, ChannelInterleaveAt256B)
{
    const MemSystemConfig cfg = defaultMemSystem();
    AddressMap map(cfg);
    for (std::uint64_t a = 0; a < 4096; a += 256) {
        EXPECT_EQ(map.decode(a).channel, (a / 256) % cfg.channels);
        // All bytes of a 256 B chunk share the channel.
        EXPECT_EQ(map.decode(a + 255).channel, map.decode(a).channel);
    }
}

TEST(AddressMap, PageSpreadsOverTwoBanksSameRow)
{
    // Fig. 6a: within one channel a 4 KiB page alternates between a
    // bank pair at 128 B granularity, staying in one row.
    const MemSystemConfig cfg = defaultMemSystem();
    AddressMap map(cfg);
    std::set<std::uint32_t> banks;
    std::set<std::uint32_t> rows;
    for (std::uint64_t a = 0; a < 4096; a += 64) {
        const auto c = map.decode(a);
        if (c.channel != 0)
            continue;
        banks.insert(c.bank);
        rows.insert(c.row);
    }
    EXPECT_EQ(banks.size(), 2u);
    EXPECT_EQ(rows.size(), 1u);
}

TEST(AddressMap, BankAlternatesEvery128B)
{
    const MemSystemConfig cfg = defaultMemSystem();
    AddressMap map(cfg);
    const auto c0 = map.decode(0);
    const auto c1 = map.decode(128);
    EXPECT_EQ(c0.channel, c1.channel);
    EXPECT_NE(c0.bank, c1.bank);
    EXPECT_EQ(c0.row, c1.row);
}

TEST(AddressMap, SubarrayOf)
{
    const MemSystemConfig cfg = defaultMemSystem();
    AddressMap map(cfg);
    const auto rows_per_sub = cfg.rank.device.rowsPerSubarray();
    EXPECT_EQ(map.subarrayOf(0), 0u);
    EXPECT_EQ(map.subarrayOf(rows_per_sub - 1), 0u);
    EXPECT_EQ(map.subarrayOf(rows_per_sub), 1u);
}

TEST(AddressMap, ConsecutivePagesLandOnDifferentRows)
{
    const MemSystemConfig cfg = defaultMemSystem();
    AddressMap map(cfg);
    // Pages cycle through columns before advancing rows; two pages
    // whose addresses differ by a full row's worth of data per
    // bank-pair map to different rows.
    const std::uint64_t bytes_per_row_pair =
        std::uint64_t(cfg.rank.rowBytes()) * 2 * cfg.channels;
    const auto a = map.decode(0);
    const auto b = map.decode(bytes_per_row_pair);
    EXPECT_TRUE(a.row != b.row || a.bank != b.bank || a.rank != b.rank);
}

TEST(AddressMap, CapacityMatchesConfig)
{
    const MemSystemConfig cfg = defaultMemSystem();
    AddressMap map(cfg);
    EXPECT_EQ(map.capacityBytes(), cfg.totalCapacityBytes());
    EXPECT_EQ(map.capacityBytes(), gib(128));  // 8 ranks x 16 GiB
}

TEST(AddressMap, HighestAddressDecodes)
{
    const MemSystemConfig cfg = defaultMemSystem();
    AddressMap map(cfg);
    const auto c = map.decode(map.capacityBytes() - 1);
    EXPECT_LT(c.row, map.rowsPerBank());
    EXPECT_EQ(map.encode(c), map.capacityBytes() - 1);
}

// --------------------------------------------------------------- phys mem

TEST(PhysMem, ZeroFilledByDefault)
{
    PhysMem mem(gib(1));
    const auto data = mem.read(12345, 64);
    for (auto b : data)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.residentFrames(), 0u);
}

TEST(PhysMem, WriteReadRoundTrip)
{
    PhysMem mem(gib(1));
    Bytes data = {1, 2, 3, 4, 5};
    mem.write(1000, data);
    EXPECT_EQ(mem.read(1000, 5), data);
}

TEST(PhysMem, CrossFrameAccess)
{
    PhysMem mem(gib(1));
    Bytes data(10000, 0xCD);
    mem.write(pageBytes - 100, data);
    EXPECT_EQ(mem.read(pageBytes - 100, 10000), data);
    // Bytes [3996, 13996) touch frames 0 through 3.
    EXPECT_EQ(mem.residentFrames(), 4u);
}

TEST(PhysMem, SparseAllocation)
{
    PhysMem mem(tib(1));  // huge capacity, tiny footprint
    mem.write(tib(1) - 8, Bytes{9, 9, 9, 9, 9, 9, 9, 9});
    EXPECT_EQ(mem.residentFrames(), 1u);
    EXPECT_EQ(mem.read(tib(1) - 8, 8), Bytes(8, 9));
}

TEST(PhysMem, FillClearsRange)
{
    PhysMem mem(gib(1));
    mem.fill(0, 4096, 0xFF);
    EXPECT_EQ(mem.read(100, 4), Bytes(4, 0xFF));
}

// ---------------------------------------------------------------- refresh

TEST(Refresh, WindowCoversRowWithWrap)
{
    RefreshWindow w{0, 0, 100, 65530, 8};
    const std::uint32_t rows = 64 * 1024;
    EXPECT_TRUE(w.coversRow(65530, rows));
    EXPECT_TRUE(w.coversRow(65535, rows));
    EXPECT_TRUE(w.coversRow(0, rows));   // wrapped
    EXPECT_TRUE(w.coversRow(1, rows));
    EXPECT_FALSE(w.coversRow(2, rows));
    EXPECT_FALSE(w.coversRow(65529, rows));
}

TEST(Refresh, EveryRowRefreshedOncePerRetention)
{
    // Property: across one full retention interval each row index
    // appears in exactly one refresh window.
    EventQueue eq;
    const auto dev = ddr5Device16Gb();
    RefreshController ctrl("refresh", eq, dev, 1);
    std::vector<std::uint32_t> refreshed(dev.rowsPerBank, 0);
    ctrl.addListener([&](const RefreshWindow &w) {
        for (std::uint32_t k = 0; k < w.rowCount; ++k)
            ++refreshed[(w.firstRow + k) % dev.rowsPerBank];
    });
    ctrl.start();
    eq.run(dev.retention - 1);
    EXPECT_EQ(ctrl.refsIssued(), dev.refCommandsPerRetention);
    for (std::uint32_t r = 0; r < dev.rowsPerBank; ++r)
        ASSERT_EQ(refreshed[r], 1u) << "row " << r;
}

TEST(Refresh, RankLockedDuringTrfcOnly)
{
    EventQueue eq;
    const auto dev = ddr5Device32Gb();
    RefreshController ctrl("refresh", eq, dev, 1);
    ctrl.start();
    eq.run(dev.tREFI() * 3);
    EXPECT_TRUE(ctrl.rankLocked(0, 0));
    EXPECT_TRUE(ctrl.rankLocked(0, dev.tRFC - 1));
    EXPECT_FALSE(ctrl.rankLocked(0, dev.tRFC));
    EXPECT_TRUE(ctrl.rankLocked(0, dev.tREFI()));
    EXPECT_FALSE(ctrl.rankLocked(0, dev.tREFI() + dev.tRFC + 10));
}

TEST(Refresh, LockEndPointsPastWindow)
{
    EventQueue eq;
    const auto dev = ddr5Device32Gb();
    RefreshController ctrl("refresh", eq, dev, 1);
    ctrl.start();
    eq.run(dev.tREFI());
    EXPECT_EQ(ctrl.lockEnd(0, 10), dev.tRFC);
    const Tick unlocked = dev.tRFC + 5;
    EXPECT_EQ(ctrl.lockEnd(0, unlocked), unlocked);
}

TEST(Refresh, RanksAreStaggered)
{
    EventQueue eq;
    const auto dev = ddr5Device32Gb();
    RefreshController ctrl("refresh", eq, dev, 4);
    std::vector<Tick> starts;
    ctrl.addListener([&](const RefreshWindow &w) {
        if (starts.size() < 4)
            starts.push_back(w.start);
    });
    ctrl.start();
    eq.run(dev.tREFI() - 1);
    ASSERT_EQ(starts.size(), 4u);
    std::set<Tick> unique(starts.begin(), starts.end());
    EXPECT_EQ(unique.size(), 4u);  // no two ranks refresh together
}

TEST(Refresh, NextWindowStart)
{
    EventQueue eq;
    const auto dev = ddr5Device32Gb();
    RefreshController ctrl("refresh", eq, dev, 1);
    ctrl.start();
    EXPECT_EQ(ctrl.nextWindowStart(0, 0), 0u);
    EXPECT_EQ(ctrl.nextWindowStart(0, 1), dev.tREFI());
    EXPECT_EQ(ctrl.nextWindowStart(0, dev.tREFI()), dev.tREFI());
}

TEST(Refresh, LockedFractionMatchesDevice)
{
    EventQueue eq;
    const auto dev = ddr5Device32Gb();
    RefreshController ctrl("refresh", eq, dev, 1);
    EXPECT_NEAR(ctrl.lockedFraction(),
                ticksToNs(dev.tRFC) / ticksToNs(dev.tREFI()), 1e-12);
}

TEST(Refresh, WindowCoversRowWrapAtExactEndOfBank)
{
    // A range ending exactly on the last row must not leak into row
    // 0, and one starting at the last row must wrap to cover 0.
    const std::uint32_t rows = 64 * 1024;
    RefreshWindow flush{0, 0, 100, rows - 8, 8};
    EXPECT_TRUE(flush.coversRow(rows - 8, rows));
    EXPECT_TRUE(flush.coversRow(rows - 1, rows));
    EXPECT_FALSE(flush.coversRow(0, rows));
    EXPECT_FALSE(flush.coversRow(rows - 9, rows));

    RefreshWindow wrap{0, 0, 100, rows - 1, 2};
    EXPECT_TRUE(wrap.coversRow(rows - 1, rows));
    EXPECT_TRUE(wrap.coversRow(0, rows));
    EXPECT_FALSE(wrap.coversRow(1, rows));
    EXPECT_FALSE(wrap.coversRow(rows - 2, rows));
}

TEST(Refresh, BoundaryTicksAtExactTrefiMultiples)
{
    // At when == phase + k * tREFI a window starts that very tick:
    // the rank is locked, the lock ends exactly tRFC later, and
    // nextWindowStart is `when` itself (not the following window).
    EventQueue eq;
    const auto dev = ddr5Device32Gb();
    const std::uint32_t ranks = 4;
    RefreshController ctrl("refresh", eq, dev, ranks);
    ctrl.start();
    for (std::uint32_t r = 0; r < ranks; ++r) {
        const Tick phase = dev.tREFI() * r / ranks;
        for (Tick k = 0; k < 3; ++k) {
            const Tick when = phase + k * dev.tREFI();
            EXPECT_TRUE(ctrl.rankLocked(r, when))
                << "rank " << r << " k " << k;
            EXPECT_EQ(ctrl.lockEnd(r, when), when + dev.tRFC);
            EXPECT_EQ(ctrl.nextWindowStart(r, when), when);
            // One tick before the boundary is outside the window;
            // for k == 0 it is before the rank's first REF at all.
            if (when > 0) {
                EXPECT_FALSE(ctrl.rankLocked(r, when - 1));
                EXPECT_EQ(ctrl.lockEnd(r, when - 1), when - 1);
                EXPECT_EQ(ctrl.nextWindowStart(r, when - 1), when);
            }
            // The first unlocked tick after the window.
            const Tick open = when + dev.tRFC;
            EXPECT_FALSE(ctrl.rankLocked(r, open));
            EXPECT_EQ(ctrl.lockEnd(r, open), open);
            EXPECT_EQ(ctrl.nextWindowStart(r, open),
                      when + dev.tREFI());
        }
    }
}

TEST(Refresh, RefPbStaggersOneWindowPerBank)
{
    EventQueue eq;
    auto dev = ddr5Device32Gb();
    dev.refreshMode = RefreshMode::RefPb;
    RefreshController ctrl("refresh", eq, dev, 1);
    std::vector<RefreshWindow> windows;
    ctrl.addListener([&](const RefreshWindow &w) {
        windows.push_back(w);
    });
    ctrl.start();
    eq.run(dev.tREFI() - 1);
    ASSERT_EQ(windows.size(), dev.banksPerChip);
    EXPECT_EQ(ctrl.refreshStats().pbWindows, dev.banksPerChip);
    for (std::uint32_t b = 0; b < dev.banksPerChip; ++b) {
        EXPECT_EQ(windows[b].bank, b);
        EXPECT_EQ(windows[b].start, static_cast<Tick>(b) * dev.tSTAG);
        EXPECT_EQ(windows[b].end, windows[b].start + dev.tRFCpb);
        EXPECT_FALSE(windows[b].rfm);
    }
}

TEST(Refresh, RefPbBankGranularLocks)
{
    EventQueue eq;
    auto dev = ddr5Device32Gb();
    dev.refreshMode = RefreshMode::RefPb;
    RefreshController ctrl("refresh", eq, dev, 1);
    ctrl.start();
    // Bank 0 is locked for its own tRFCpb only; a later bank in the
    // stagger train is still open at tick 0 (refresh-access
    // parallelism across banks, DSARP-style).
    EXPECT_TRUE(ctrl.bankLocked(0, 0, 0));
    EXPECT_TRUE(ctrl.bankLocked(0, 0, dev.tRFCpb - 1));
    EXPECT_FALSE(ctrl.bankLocked(0, 0, dev.tRFCpb));
    EXPECT_EQ(ctrl.bankLockEnd(0, 0, 0), dev.tRFCpb);
    EXPECT_FALSE(ctrl.bankLocked(0, 20, 0));
    // The rank-level view is the union of the contiguous stagger
    // train (tSTAG < tRFCpb keeps it gapless).
    const Tick train_end =
        static_cast<Tick>(dev.banksPerChip - 1) * dev.tSTAG
        + dev.tRFCpb;
    EXPECT_TRUE(ctrl.rankLocked(0, 0));
    EXPECT_TRUE(ctrl.rankLocked(0, train_end - 1));
    EXPECT_FALSE(ctrl.rankLocked(0, train_end));
    EXPECT_EQ(ctrl.lockEnd(0, 0), train_end);
}

TEST(Refresh, RfmForcedPastRaaimt)
{
    EventQueue eq;
    auto dev = ddr5Device32Gb();
    dev.rfmRaaimt = 32;
    RefreshController ctrl("refresh", eq, dev, 1);
    std::vector<RefreshWindow> windows;
    ctrl.addListener([&](const RefreshWindow &w) {
        windows.push_back(w);
    });
    std::uint32_t rfm_bank = 0, rfm_source = 0, rfm_stolen = 0;
    ctrl.addRfmListener([&](std::uint32_t, std::uint32_t bank,
                            std::uint32_t source,
                            std::uint32_t stolen) {
        rfm_bank = bank;
        rfm_source = source;
        rfm_stolen = stolen;
    });
    ctrl.noteActivates(0, 3, 40, /*source=*/7);
    EXPECT_EQ(ctrl.raa(0, 3), 40u);
    ctrl.start();
    eq.run(dev.tREFI() - 1);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_TRUE(windows[0].rfm);
    EXPECT_EQ(windows[0].end - windows[0].start,
              dev.tRFC + dev.tRFM);
    EXPECT_EQ(ctrl.refreshStats().rfmCommands, 1u);
    EXPECT_EQ(ctrl.raa(0, 3), 40u - 32u);  // RFM drains one RAAIMT
    EXPECT_EQ(rfm_bank, RefreshWindow::allBanks);
    EXPECT_EQ(rfm_source, 7u);
    EXPECT_EQ(rfm_stolen, maxAccessesPerTrfc(dev));
}

TEST(Refresh, RfmAttributesDominantSource)
{
    EventQueue eq;
    auto dev = ddr5Device32Gb();
    dev.rfmRaaimt = 32;
    RefreshController ctrl("refresh", eq, dev, 1);
    std::uint32_t rfm_source = 0;
    ctrl.addRfmListener([&](std::uint32_t, std::uint32_t,
                            std::uint32_t source, std::uint32_t) {
        rfm_source = source;
    });
    ctrl.noteActivates(0, 5, 10);  // host traffic
    ctrl.noteActivates(0, 5, 30, /*source=*/3);  // the abuser
    ctrl.start();
    eq.run(dev.tREFI() - 1);
    EXPECT_EQ(ctrl.refreshStats().rfmCommands, 1u);
    EXPECT_EQ(rfm_source, 3u);
}

TEST(Refresh, RaammtBlocksHostActs)
{
    EventQueue eq;
    auto dev = ddr5Device32Gb();
    dev.rfmRaaimt = 32;  // effectiveRaammt() == 128
    RefreshController ctrl("refresh", eq, dev, 1);
    ctrl.start();
    // The counter caps at RAAMMT no matter how hard the bank is hit.
    ctrl.noteActivates(0, 0, 500);
    EXPECT_EQ(ctrl.raa(0, 0), dev.effectiveRaammt());
    // An ACT at tick 5 waits out the current lock AND the next
    // refresh slot plus its RFM, which finally drains the counter.
    const Tick when = 5;
    const Tick stall = ctrl.accessStall(0, 0, when);
    EXPECT_EQ(stall,
              dev.tREFI() + dev.tRFC + dev.tRFM - when);
    EXPECT_EQ(ctrl.refreshStats().raammtBlocks, 1u);
    // An unsaturated bank only waits out the plain refresh lock.
    EXPECT_EQ(ctrl.accessStall(0, 1, when), dev.tRFC - when);
}

TEST(Refresh, HiraWidensWindows)
{
    EventQueue eq;
    auto dev = ddr5Device32Gb();
    dev.hira = true;
    RefreshController ctrl("refresh", eq, dev, 1);
    std::vector<RefreshWindow> windows;
    ctrl.addListener([&](const RefreshWindow &w) {
        windows.push_back(w);
    });
    ctrl.start();
    eq.run(dev.tREFI() * 3);
    ASSERT_GE(windows.size(), 3u);
    for (const auto &w : windows)
        EXPECT_TRUE(w.hira);
    EXPECT_EQ(ctrl.refreshStats().hiraWindows, windows.size());
}

// --------------------------------------------------------------- mem ctrl

class MemCtrlTest : public ::testing::Test
{
  protected:
    MemCtrlTest()
        : cfg_(defaultMemSystem()),
          refresh_("refresh", eq_, cfg_.rank.device,
                   cfg_.dimmsPerChannel * cfg_.ranksPerDimm),
          ctrl_("memctrl", eq_, cfg_, &refresh_)
    {}

    EventQueue eq_;
    MemSystemConfig cfg_;
    RefreshController refresh_;
    MemCtrl ctrl_;
};

TEST_F(MemCtrlTest, SingleReadCompletes)
{
    Tick done = 0;
    ctrl_.submit({0, 64, false, [&](Tick t) { done = t; }});
    eq_.run();
    EXPECT_GT(done, 0u);
    EXPECT_EQ(ctrl_.stats().reads, 1u);
    EXPECT_EQ(ctrl_.stats().bytesRead, 64u);
}

TEST_F(MemCtrlTest, RowMissThenHitLatency)
{
    const auto &dev = cfg_.rank.device;
    Tick first = 0;
    Tick second = 0;
    ctrl_.submit({0, 64, false, [&](Tick t) { first = t; }});
    eq_.run();
    const Tick start2 = eq_.now();
    ctrl_.submit({64, 64, false, [&](Tick t) { second = t; }});
    eq_.run();
    // First access activates (tRCD + tCL + burst); second hits the
    // open row (tCL + burst).
    EXPECT_EQ(first, dev.tRCD + dev.tCL + dev.tBURST);
    EXPECT_EQ(second - start2, dev.tCL + dev.tBURST);
    EXPECT_EQ(ctrl_.stats().rowHits, 1u);
    EXPECT_EQ(ctrl_.stats().rowMisses, 1u);
}

TEST_F(MemCtrlTest, PageReadSplitsAcrossChannels)
{
    Tick done = 0;
    ctrl_.submit({0, 4096, false, [&](Tick t) { done = t; }});
    eq_.run();
    EXPECT_GT(done, 0u);
    // 4 KiB at 256 B interleave = 16 chunks over 4 channels.
    EXPECT_EQ(ctrl_.stats().reads, 16u);
    EXPECT_EQ(ctrl_.stats().bytesRead, 4096u);
}

TEST_F(MemCtrlTest, RefreshLockStallsRequests)
{
    refresh_.start();
    eq_.run(0);  // issue the first REF at tick 0 (rank 0 locked)
    Tick done = 0;
    ctrl_.submit({0, 64, false, [&](Tick t) { done = t; }});
    // A started refresh controller reschedules itself forever, so
    // run with an explicit horizon.
    eq_.run(cfg_.rank.device.tREFI());
    EXPECT_GE(done, cfg_.rank.device.tRFC);
    EXPECT_GT(ctrl_.stats().refreshStallTicks, 0u);
}

TEST_F(MemCtrlTest, WritesAccounted)
{
    ctrl_.submit({0, 256, true, nullptr});
    eq_.run();
    EXPECT_EQ(ctrl_.stats().writes, 1u);
    EXPECT_EQ(ctrl_.stats().bytesWritten, 256u);
}

TEST_F(MemCtrlTest, BusSerialisesSameChannel)
{
    // Two back-to-back 64 B reads on the same channel cannot overlap
    // on the data bus.
    Tick done1 = 0;
    Tick done2 = 0;
    ctrl_.submit({0, 64, false, [&](Tick t) { done1 = t; }});
    ctrl_.submit({64, 64, false, [&](Tick t) { done2 = t; }});
    eq_.run();
    EXPECT_GT(done2, done1);
}

TEST_F(MemCtrlTest, DifferentChannelsOverlap)
{
    // Requests on different channels proceed in parallel: the
    // completion times are identical (same per-channel timing).
    Tick done1 = 0;
    Tick done2 = 0;
    ctrl_.submit({0, 64, false, [&](Tick t) { done1 = t; }});
    ctrl_.submit({256, 64, false, [&](Tick t) { done2 = t; }});
    eq_.run();
    EXPECT_EQ(done1, done2);
}

TEST_F(MemCtrlTest, BusFractionPositiveUnderLoad)
{
    for (int i = 0; i < 64; ++i)
        ctrl_.submit({std::uint64_t(i) * 64, 64, false, nullptr});
    eq_.run();
    EXPECT_GT(ctrl_.busFraction(eq_.now()), 0.0);
    EXPECT_LE(ctrl_.busFraction(eq_.now()), 1.0);
    EXPECT_EQ(ctrl_.pendingRequests(), 0u);
}

} // namespace
} // namespace dram
} // namespace xfm

namespace xfm
{
namespace dram
{
namespace
{

TEST_F(MemCtrlTest, FrFcfsServesRowHitsFirst)
{
    // Open row 0 of bank 0, then enqueue a conflicting row-5 access
    // followed by another row-0 access in the same bank: FR-FCFS
    // serves the row hit before the conflict.
    const AddressMap &map = ctrl_.addressMap();
    auto addr = [&](std::uint32_t row, std::uint32_t col) {
        DramCoord c{};
        c.row = row;
        c.column = col;
        return map.encode(c);
    };
    Tick warm = 0;
    ctrl_.submit({addr(0, 0), 64, false, [&](Tick t) { warm = t; }});
    eq_.run();
    ASSERT_GT(warm, 0u);

    std::vector<int> order;
    ctrl_.submit({addr(5, 0), 64, false,
                  [&](Tick) { order.push_back(0); }});
    ctrl_.submit({addr(0, 2), 64, false,
                  [&](Tick) { order.push_back(1); }});
    eq_.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order.front(), 1);  // the hit bypassed the conflict
    EXPECT_GE(ctrl_.stats().frfcfsBypasses, 1u);
}

TEST_F(MemCtrlTest, FrFcfsImprovesRowHitRate)
{
    // Alternate between two rows of the same bank: strict FCFS
    // would row-conflict on every access; FR-FCFS batches each
    // row's requests.
    const AddressMap &map = ctrl_.addressMap();
    for (int i = 0; i < 16; ++i) {
        DramCoord c{};
        c.row = (i % 2) * 7;
        c.column = static_cast<std::uint32_t>(i / 2) * 2;
        ctrl_.submit({map.encode(c), 64, false, nullptr});
    }
    eq_.run();
    EXPECT_GT(ctrl_.stats().rowHitRate(), 0.5);
    EXPECT_GT(ctrl_.stats().frfcfsBypasses, 0u);
}

} // namespace
} // namespace dram
} // namespace xfm
