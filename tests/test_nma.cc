/**
 * @file
 * Tests for the NMA: scratchpad accounting, MMIO registers, request
 * queue, engine timing, and the refresh-window scheduler's
 * conditional/random access behaviour (paper Sec. 5 and Fig. 10).
 */

#include <gtest/gtest.h>

#include <optional>

#include "common/random.hh"
#include "compress/corpus.hh"
#include "dram/address_map.hh"
#include "dram/ecc.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "nma/engine.hh"
#include "nma/mmio.hh"
#include "nma/spm.hh"
#include "nma/xfm_device.hh"
#include "sim/event_queue.hh"

namespace xfm
{
namespace nma
{
namespace
{

// ------------------------------------------------------------------ SPM

TEST(ScratchPad, ReserveTracksBytes)
{
    ScratchPad spm(1000);
    EXPECT_EQ(spm.freeBytes(), 1000u);
    EXPECT_TRUE(spm.reserve(1, OffloadKind::Compress, 400));
    EXPECT_EQ(spm.usedBytes(), 400u);
    EXPECT_TRUE(spm.reserve(2, OffloadKind::Compress, 600));
    EXPECT_EQ(spm.freeBytes(), 0u);
    EXPECT_FALSE(spm.reserve(3, OffloadKind::Compress, 1));
}

TEST(ScratchPad, CompleteTrimsReservation)
{
    ScratchPad spm(1000);
    ASSERT_TRUE(spm.reserve(1, OffloadKind::Compress, 500));
    spm.complete(1, Bytes(120, 0xAB));
    EXPECT_EQ(spm.usedBytes(), 120u);
    EXPECT_EQ(spm.entry(1).tag, SpmTag::Completed);
    EXPECT_EQ(spm.entry(1).data.size(), 120u);
}

TEST(ScratchPad, WritebackRequiresDestination)
{
    ScratchPad spm(1000);
    ASSERT_TRUE(spm.reserve(1, OffloadKind::Compress, 100));
    spm.complete(1, Bytes(50, 1));
    EXPECT_TRUE(spm.writebackIds().empty());  // no destination yet
    spm.setDestination(1, 0x1000);
    ASSERT_EQ(spm.writebackIds().size(), 1u);
    EXPECT_EQ(spm.writebackIds()[0], 1u);
}

TEST(ScratchPad, TakeFreesBytes)
{
    ScratchPad spm(1000);
    ASSERT_TRUE(spm.reserve(1, OffloadKind::Compress, 100));
    spm.complete(1, Bytes(80, 2));
    spm.setDestination(1, 0);
    const SpmEntry e = spm.take(1);
    EXPECT_EQ(e.data.size(), 80u);
    EXPECT_EQ(spm.usedBytes(), 0u);
    EXPECT_EQ(spm.entryCount(), 0u);
}

TEST(ScratchPad, ReleaseAbandonsEntry)
{
    ScratchPad spm(1000);
    ASSERT_TRUE(spm.reserve(1, OffloadKind::Decompress, 300));
    spm.release(1);
    EXPECT_EQ(spm.usedBytes(), 0u);
}

TEST(ScratchPad, PopWritebackFifoOrder)
{
    ScratchPad spm(4096);
    for (OffloadId id = 1; id <= 3; ++id) {
        ASSERT_TRUE(spm.reserve(id, OffloadKind::Compress, 64));
        spm.complete(id, Bytes(32, static_cast<std::uint8_t>(id)));
        spm.setDestination(id, id * 0x100);
    }
    SpmEntry e;
    ASSERT_TRUE(spm.popWriteback(e));
    EXPECT_EQ(e.id, 1u);
    ASSERT_TRUE(spm.popWriteback(e));
    EXPECT_EQ(e.id, 2u);
    ASSERT_TRUE(spm.popWriteback(e));
    EXPECT_EQ(e.id, 3u);
    EXPECT_FALSE(spm.popWriteback(e));
}

TEST(ScratchPad, PartitionCapRejectsOnlyThatPartition)
{
    ScratchPad spm(1000);
    spm.setPartitionCap(1, 200);
    // Partition 1 is capped at 200 bytes...
    EXPECT_TRUE(spm.reserve(1, OffloadKind::Compress, 150, 1));
    EXPECT_FALSE(spm.reserve(2, OffloadKind::Compress, 100, 1));
    EXPECT_EQ(spm.partitionUsed(1), 150u);
    // ...while partition 0 still sees the global capacity.
    EXPECT_TRUE(spm.reserve(3, OffloadKind::Compress, 700));
    EXPECT_EQ(spm.usedBytes(), 850u);
}

TEST(ScratchPad, PartitionChargeFollowsEntryLifecycle)
{
    ScratchPad spm(1000);
    spm.setPartitionCap(1, 300);
    ASSERT_TRUE(spm.reserve(1, OffloadKind::Compress, 300, 1));
    EXPECT_FALSE(spm.reserve(2, OffloadKind::Compress, 1, 1));
    // Completion trims the reservation to the real output size,
    // returning headroom to the partition.
    spm.complete(1, Bytes(80, 0xCD));
    EXPECT_EQ(spm.partitionUsed(1), 80u);
    EXPECT_TRUE(spm.reserve(2, OffloadKind::Compress, 200, 1));
    // Release/take uncharge the partition entirely.
    spm.release(2);
    spm.setDestination(1, 0x100);
    spm.take(1);
    EXPECT_EQ(spm.partitionUsed(1), 0u);
    EXPECT_EQ(spm.usedBytes(), 0u);
}

TEST(ScratchPad, PartitionCapRemovalAndDefaults)
{
    ScratchPad spm(1000);
    EXPECT_EQ(spm.partitionCap(1), 0u);  // uncapped by default
    spm.setPartitionCap(1, 100);
    EXPECT_EQ(spm.partitionCap(1), 100u);
    EXPECT_FALSE(spm.reserve(1, OffloadKind::Compress, 150, 1));
    spm.setPartitionCap(1, 0);  // removing the cap re-opens it
    EXPECT_TRUE(spm.reserve(1, OffloadKind::Compress, 150, 1));
}

// ----------------------------------------------------------------- MMIO

TEST(Mmio, ReadOnlyRegisterReflectsLiveValue)
{
    RegisterFile regs;
    std::uint64_t live = 7;
    regs.bindReadOnly(Reg::SpCapacity, [&] { return live; });
    EXPECT_EQ(regs.read(Reg::SpCapacity), 7u);
    live = 99;
    EXPECT_EQ(regs.read(Reg::SpCapacity), 99u);
    EXPECT_EQ(regs.reads(), 2u);
}

TEST(Mmio, WriteToReadOnlyIsFatal)
{
    RegisterFile regs;
    regs.bindReadOnly(Reg::SpCapacity, [] { return 0ull; });
    EXPECT_THROW(regs.write(Reg::SpCapacity, 1), FatalError);
}

TEST(Mmio, ReadWriteRegister)
{
    RegisterFile regs;
    regs.write(Reg::SfmRegionBase, 0xDEAD000);
    EXPECT_EQ(regs.read(Reg::SfmRegionBase), 0xDEAD000u);
    EXPECT_EQ(regs.writes(), 1u);
}

TEST(Mmio, QueueBounded)
{
    CompressRequestQueue q(2);
    OffloadRequest r;
    r.size = 4096;
    EXPECT_TRUE(q.push(r));
    EXPECT_TRUE(q.push(r));
    EXPECT_FALSE(q.push(r));
    EXPECT_TRUE(q.full());
    q.pop();
    EXPECT_FALSE(q.full());
}

// --------------------------------------------------------------- engine

TEST(Engine, CompressRoundTripsAndTimes)
{
    CompressionEngine eng(compress::Algorithm::ZstdLike);
    const Bytes page =
        compress::generateCorpus(compress::CorpusKind::Json, 1, 4096);
    auto [block, clat] = eng.compress(page);
    EXPECT_LT(block.size(), page.size());
    auto [raw, dlat] = eng.decompress(block);
    EXPECT_EQ(raw, page);
    // 4096 B at 14.8 GB/s ~ 277 ns; at 17.2 GB/s ~ 238 ns.
    EXPECT_NEAR(ticksToNs(clat), 4096 / 14.8, 1.0);
    EXPECT_NEAR(ticksToNs(dlat), 4096 / 17.2, 1.0);
    EXPECT_EQ(eng.bytesCompressed(), 4096u);
    EXPECT_EQ(eng.bytesDecompressed(), 4096u);
}

TEST(Engine, FpgaProfileIsSlower)
{
    CompressionEngine fast(compress::Algorithm::LzFast);
    CompressionEngine slow(compress::Algorithm::LzFast,
                           EngineProfile::fpgaSoftCore());
    const Bytes page(4096, 0x55);
    EXPECT_GT(slow.compress(page).second, fast.compress(page).second);
}

TEST(Engine, WorstCaseBoundsStoredBlock)
{
    // All codecs fall back to a stored block of size + 5 <= size+16.
    CompressionEngine eng(compress::Algorithm::Deflate);
    Rng rng(7);
    Bytes noise(4096);
    for (auto &b : noise)
        b = static_cast<std::uint8_t>(rng.next());
    auto [block, lat] = eng.compress(noise);
    (void)lat;
    EXPECT_LE(block.size(),
              CompressionEngine::worstCaseCompressedSize(4096));
}

// ------------------------------------------------------------ XfmDevice

/** Single-channel, single-rank memory system for device testing. */
dram::MemSystemConfig
deviceTestConfig()
{
    dram::MemSystemConfig cfg;
    cfg.rank.device = dram::ddr5Device32Gb();
    cfg.channels = 1;
    cfg.dimmsPerChannel = 1;
    cfg.ranksPerDimm = 1;
    return cfg;
}

class XfmDeviceTest : public ::testing::Test
{
  protected:
    XfmDeviceTest()
        : cfg_(deviceTestConfig()), map_(cfg_),
          mem_(cfg_.totalCapacityBytes()),
          refresh_("refresh", eq_, cfg_.rank.device, 1)
    {}

    /** Build a device with the given knobs and start refresh. */
    XfmDevice &
    makeDevice(XfmDeviceConfig dcfg = {})
    {
        device_.emplace("xfm0", eq_, dcfg, map_, mem_, refresh_);
        refresh_.start();
        return *device_;
    }

    /** Physical address of the first byte of DRAM row @p row in the
     *  bank pair (contiguous 4 KiB lives in one row pair). */
    std::uint64_t
    rowAddr(std::uint32_t row) const
    {
        dram::DramCoord c{};
        c.row = row;
        return map_.encode(c);
    }

    EventQueue eq_;
    dram::MemSystemConfig cfg_;
    dram::AddressMap map_;
    dram::PhysMem mem_;
    dram::RefreshController refresh_;
    std::optional<XfmDevice> device_;
};

TEST_F(XfmDeviceTest, CompressOffloadEndToEnd)
{
    auto &dev = makeDevice();
    const Bytes page =
        compress::generateCorpus(compress::CorpusKind::Html, 3, 4096);
    mem_.write(rowAddr(100), page);

    std::optional<OffloadCompletion> completion;
    Tick writeback_at = 0;
    dev.setCompletionCallback([&](const OffloadCompletion &c) {
        completion = c;
        // Backend allocates space and commits the destination.
        dev.commitWriteback(c.id, rowAddr(5000));
    });
    dev.setWritebackCallback(
        [&](OffloadId, Tick t) { writeback_at = t; });

    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(100);
    req.size = 4096;
    const OffloadId id = dev.submit(req);
    EXPECT_NE(id, invalidOffloadId);

    eq_.run(cfg_.rank.device.retention);
    ASSERT_TRUE(completion.has_value());
    EXPECT_EQ(completion->id, id);
    EXPECT_LT(completion->outputSize, 4096u);
    EXPECT_GT(writeback_at, 0u);

    // Compressed block in DRAM decompresses back to the page.
    const Bytes block = mem_.read(rowAddr(5000), completion->outputSize);
    auto codec = compress::makeCompressor(dev.config().algorithm);
    EXPECT_EQ(codec->decompress(block), page);
}

TEST_F(XfmDeviceTest, DecompressOffloadEndToEnd)
{
    auto &dev = makeDevice();
    const Bytes page =
        compress::generateCorpus(compress::CorpusKind::CsvTable, 9,
                                 4096);
    auto codec = compress::makeCompressor(dev.config().algorithm);
    const Bytes block = codec->compress(page);
    mem_.write(rowAddr(7), block);

    Tick writeback_at = 0;
    dev.setWritebackCallback(
        [&](OffloadId, Tick t) { writeback_at = t; });

    OffloadRequest req;
    req.kind = OffloadKind::Decompress;
    req.srcAddr = rowAddr(7);
    req.size = static_cast<std::uint32_t>(block.size());
    req.dstAddr = rowAddr(9000);
    req.rawSize = 4096;
    ASSERT_NE(dev.submit(req), invalidOffloadId);

    eq_.run(cfg_.rank.device.retention);
    EXPECT_GT(writeback_at, 0u);
    EXPECT_EQ(mem_.read(rowAddr(9000), 4096), page);
    EXPECT_EQ(dev.stats().decompressOffloads, 1u);
}

TEST_F(XfmDeviceTest, MinimumLatencyIsTwoRefreshIntervals)
{
    // Fig. 10: an offload reads in one tRFC and writes back in a
    // later one, so end-to-end latency is at least ~2 windows for a
    // random-row target (and never less than one tREFI).
    auto &dev = makeDevice();
    const Bytes page(4096, 0x42);
    // Row far from the initial refresh counter => random access.
    mem_.write(rowAddr(60000), page);

    Tick writeback_at = 0;
    dev.setCompletionCallback([&](const OffloadCompletion &c) {
        dev.commitWriteback(c.id, rowAddr(60010));
    });
    dev.setWritebackCallback(
        [&](OffloadId, Tick t) { writeback_at = t; });

    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(60000);
    req.size = 4096;
    dev.submit(req);
    eq_.run(cfg_.rank.device.retention);

    const Tick trefi = cfg_.rank.device.tREFI();
    EXPECT_GE(writeback_at, trefi);
    EXPECT_LE(writeback_at, 4 * trefi);
}

TEST_F(XfmDeviceTest, ConditionalAccessWhenRowInRefreshSet)
{
    // Row 0 is refreshed by the very first REF command, so a read
    // targeting row 0 must be classified conditional.
    auto &dev = makeDevice();
    mem_.write(rowAddr(0), Bytes(4096, 1));
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(0);
    req.size = 4096;
    dev.submit(req);
    eq_.run(0);  // first window fires at tick 0
    EXPECT_EQ(dev.stats().conditionalAccesses, 1u);
    EXPECT_EQ(dev.stats().randomAccesses, 0u);
}

TEST_F(XfmDeviceTest, RandomAccessForNonRefreshedRow)
{
    XfmDeviceConfig dcfg;
    dcfg.maxRandomPerWindow = 1;
    auto &dev = makeDevice(dcfg);
    mem_.write(rowAddr(60000), Bytes(4096, 2));
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(60000);
    req.size = 4096;
    dev.submit(req);
    eq_.run(0);
    EXPECT_EQ(dev.stats().randomAccesses, 1u);
    EXPECT_EQ(dev.stats().conditionalAccesses, 0u);
}

TEST_F(XfmDeviceTest, RandomBudgetEnforcedPerWindow)
{
    XfmDeviceConfig dcfg;
    dcfg.maxAccessesPerWindow = 3;
    dcfg.maxRandomPerWindow = 1;
    auto &dev = makeDevice(dcfg);
    // Three offloads, all on non-refreshed rows: only one random
    // access may happen in the first window.
    for (std::uint32_t i = 0; i < 3; ++i) {
        mem_.write(rowAddr(50000 + 16 * i), Bytes(4096, 3));
        OffloadRequest req;
        req.kind = OffloadKind::Compress;
        req.srcAddr = rowAddr(50000 + 16 * i);
        req.size = 4096;
        dev.submit(req);
    }
    eq_.run(0);
    EXPECT_EQ(dev.stats().randomAccesses, 1u);
    EXPECT_EQ(dev.pendingReads(), 2u);
}

TEST_F(XfmDeviceTest, QueueDepthBoundsAdmission)
{
    // The Compress_Request_Queue is the device's only admission
    // bound: SPM space is reserved at read-execution time.
    XfmDeviceConfig dcfg;
    dcfg.queueDepth = 4;
    auto &dev = makeDevice(dcfg);
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(1000);
    req.size = 4096;

    int accepted = 0;
    int rejected = 0;
    for (int i = 0; i < 6; ++i) {
        if (dev.submit(req) != invalidOffloadId)
            ++accepted;
        else
            ++rejected;
    }
    EXPECT_EQ(accepted, 4);
    EXPECT_EQ(rejected, 2);
    EXPECT_EQ(dev.stats().queueRejects, 2u);
    EXPECT_EQ(dev.queuedRequests(), 4u);
}

TEST_F(XfmDeviceTest, SpmFullDefersExecution)
{
    // A tiny SPM cannot host two in-flight outputs: the second read
    // is deferred to a later window instead of being lost.
    XfmDeviceConfig dcfg;
    dcfg.spmBytes = 5 * 1024;  // one worst-case (4112 B) output
    dcfg.maxAccessesPerWindow = 3;
    dcfg.maxRandomPerWindow = 3;
    auto &dev = makeDevice(dcfg);
    int completions = 0;
    dev.setCompletionCallback([&](const OffloadCompletion &c) {
        dev.commitWriteback(c.id, rowAddr(9000 + 16 * completions));
        ++completions;
    });
    for (int i = 0; i < 2; ++i) {
        mem_.write(rowAddr(52000 + 16 * i), Bytes(4096, 7));
        OffloadRequest req;
        req.kind = OffloadKind::Compress;
        req.srcAddr = rowAddr(52000 + 16 * i);
        req.size = 4096;
        ASSERT_NE(dev.submit(req), invalidOffloadId);
    }
    eq_.run(0);  // first window: one executes, one defers
    EXPECT_EQ(dev.stats().deferredExecutions, 1u);
    EXPECT_EQ(dev.pendingReads(), 1u);
    // Once the first write-back drains, the second proceeds.
    eq_.run(cfg_.rank.device.retention);
    EXPECT_EQ(completions, 2);
}

TEST_F(XfmDeviceTest, SpCapacityRegisterTracksSpm)
{
    XfmDeviceConfig dcfg;
    dcfg.spmBytes = 64 * 1024;
    auto &dev = makeDevice(dcfg);
    EXPECT_EQ(dev.regs().read(Reg::SpCapacity), 64u * 1024);
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(10);  // row 10: refreshed by window 0
    req.size = 4096;
    dev.submit(req);
    // SPM is reserved when the read executes, not at submit.
    EXPECT_EQ(dev.regs().read(Reg::SpCapacity), 64u * 1024);
    eq_.run(0);
    EXPECT_LT(dev.regs().read(Reg::SpCapacity), 64u * 1024);
}

TEST_F(XfmDeviceTest, DeadlineDropInvokesCallback)
{
    auto &dev = makeDevice();
    std::vector<OffloadId> dropped;
    dev.setDropCallback([&](OffloadId id, DropReason) {
        dropped.push_back(id);
    });

    mem_.write(rowAddr(40000), Bytes(4096, 4));
    OffloadRequest urgent;
    urgent.kind = OffloadKind::Compress;
    urgent.srcAddr = rowAddr(40000);
    urgent.size = 4096;
    urgent.deadline = 1;  // expires before any window can serve it

    // Saturate the random slot of window 0 with an earlier offload.
    OffloadRequest first = urgent;
    first.srcAddr = rowAddr(40016);
    first.deadline = 0;
    mem_.write(rowAddr(40016), Bytes(4096, 5));

    dev.submit(first);
    dev.submit(urgent);
    // Window 0 at tick 0 serves `first` (deadline 0 still valid at
    // start). Window 1 finds `urgent` expired.
    eq_.run(2 * cfg_.rank.device.tREFI());
    EXPECT_EQ(dev.stats().deadlineDrops, 1u);
    ASSERT_EQ(dropped.size(), 1u);
}

TEST_F(XfmDeviceTest, EnergySavingsFromConditionalAccesses)
{
    auto &dev = makeDevice();
    // Offloads spread over many rows; over a full retention period
    // every row is refreshed once, so reads become conditional.
    for (std::uint32_t i = 0; i < 16; ++i) {
        mem_.write(rowAddr(i * 4096), Bytes(4096, 6));
        OffloadRequest req;
        req.kind = OffloadKind::Compress;
        req.srcAddr = rowAddr(i * 4096);
        req.size = 4096;
        dev.submit(req);
    }
    eq_.run(cfg_.rank.device.retention);
    EXPECT_GT(dev.stats().conditionalAccesses, 0u);
    EXPECT_GT(dev.stats().energySavedFraction(), 0.0);
    EXPECT_LT(dev.stats().energySavedFraction(), 0.5);
}

TEST_F(XfmDeviceTest, WindowCounterAdvances)
{
    auto &dev = makeDevice();
    eq_.run(10 * cfg_.rank.device.tREFI());
    EXPECT_GE(dev.stats().windows, 10u);
}

} // namespace
} // namespace nma
} // namespace xfm

namespace xfm
{
namespace nma
{
namespace
{

/** Paper Sec. 4.1: the NMA regenerates side-band ECC parity when
 *  writing back, so a later ECC-checked read verifies cleanly. */
TEST_F(XfmDeviceTest, WritebackMaintainsSidebandEccParity)
{
    XfmDeviceConfig dcfg;
    dcfg.eccParityBase = gib(16);  // parity region above the data
    auto &dev = makeDevice(dcfg);

    const Bytes page =
        compress::generateCorpus(compress::CorpusKind::Json, 21,
                                 4096);
    mem_.write(rowAddr(3), page);  // row 3: first refresh window

    bool written = false;
    dev.setCompletionCallback([&](const OffloadCompletion &c) {
        dev.commitWriteback(c.id, rowAddr(17));  // window 1 rows
    });
    dev.setWritebackCallback([&](OffloadId, Tick) { written = true; });

    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(3);
    req.size = 4096;
    dev.submit(req);
    eq_.run(cfg_.rank.device.retention);
    ASSERT_TRUE(written);
    EXPECT_GT(dev.stats().eccParityBytesWritten, 0u);

    // An ECC-checked read over the written range must verify: wrap
    // the same PhysMem in an EccStore bound to the same parity base.
    dram::EccStore store(mem_, gib(16), gib(16));
    const std::uint64_t dst = rowAddr(17) & ~std::uint64_t(7);
    EXPECT_NO_THROW(store.read(dst, 512));
    EXPECT_EQ(store.stats().correctedErrors, 0u);
}

TEST_F(XfmDeviceTest, EccDisabledWritesNoParity)
{
    auto &dev = makeDevice();  // eccParityBase = 0
    mem_.write(rowAddr(3), Bytes(4096, 0x5A));
    dev.setCompletionCallback([&](const OffloadCompletion &c) {
        dev.commitWriteback(c.id, rowAddr(17));
    });
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(3);
    req.size = 4096;
    dev.submit(req);
    eq_.run(cfg_.rank.device.retention);
    EXPECT_EQ(dev.stats().eccParityBytesWritten, 0u);
}

} // namespace
} // namespace nma
} // namespace xfm

namespace xfm
{
namespace nma
{
namespace
{

// Page registration (paper Sec. 6: driver-managed NMA access window).

TEST_F(XfmDeviceTest, UnregisteredSourceRejected)
{
    auto &dev = makeDevice();
    dev.registerRegion(0, mib(1));
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = gib(2);  // outside the registered window
    req.size = 4096;
    EXPECT_EQ(dev.submit(req), invalidOffloadId);
    EXPECT_EQ(dev.stats().unregisteredRejects, 1u);

    req.srcAddr = mib(1) - 4096;  // inside
    EXPECT_NE(dev.submit(req), invalidOffloadId);
}

TEST_F(XfmDeviceTest, UnregisteredDecompressDestinationRejected)
{
    auto &dev = makeDevice();
    dev.registerRegion(0, mib(1));
    OffloadRequest req;
    req.kind = OffloadKind::Decompress;
    req.srcAddr = 0;
    req.size = 1024;
    req.dstAddr = gib(4);  // unregistered destination frame
    req.rawSize = 4096;
    EXPECT_EQ(dev.submit(req), invalidOffloadId);
    EXPECT_EQ(dev.stats().unregisteredRejects, 1u);
}

TEST_F(XfmDeviceTest, UnregisteredWritebackDestinationFatal)
{
    auto &dev = makeDevice();
    dev.registerRegion(0, mib(1));
    mem_.write(rowAddr(3), Bytes(4096, 0x21));
    std::optional<OffloadCompletion> completion;
    dev.setCompletionCallback([&](const OffloadCompletion &c) {
        completion = c;
    });
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(3);
    req.size = 4096;
    ASSERT_NE(dev.submit(req), invalidOffloadId);
    eq_.run(cfg_.rank.device.tREFI());
    ASSERT_TRUE(completion.has_value());
    EXPECT_THROW(dev.commitWriteback(completion->id, gib(8)),
                 FatalError);
}

TEST_F(XfmDeviceTest, NoRegistrationsMeansPermissive)
{
    auto &dev = makeDevice();
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = gib(2);
    req.size = 4096;
    EXPECT_NE(dev.submit(req), invalidOffloadId);
    EXPECT_EQ(dev.stats().unregisteredRejects, 0u);
}

} // namespace
} // namespace nma
} // namespace xfm

namespace xfm
{
namespace nma
{
namespace
{

TEST(AccessBudget, DerivedFromDeviceTiming)
{
    // Sec. 5: 2 / 3 / 4 conditional 4 KiB accesses per tRFC.
    EXPECT_EQ(dram::maxAccessesPerTrfc(dram::ddr5Device8Gb()), 2u);
    EXPECT_EQ(dram::maxAccessesPerTrfc(dram::ddr5Device16Gb()), 3u);
    EXPECT_EQ(dram::maxAccessesPerTrfc(dram::ddr5Device32Gb()), 4u);
}

TEST(AccessBudget, CompletionOffsetsFitInTrfc)
{
    for (const auto &dev : {dram::ddr5Device8Gb(),
                            dram::ddr5Device16Gb(),
                            dram::ddr5Device32Gb()}) {
        const auto n = dram::maxAccessesPerTrfc(dev);
        for (std::uint32_t k = 0; k < n; ++k)
            EXPECT_LE(dram::accessCompletionOffset(dev, k), dev.tRFC)
                << dev.name << " access " << k;
        // One more access would overrun the window.
        EXPECT_GT(dram::accessCompletionOffset(dev, n), dev.tRFC)
            << dev.name;
    }
}

TEST(AccessBudget, FirstAccessTakes110ns)
{
    // Sec. 5: "it would take 110ns to send all the data out of the
    // chip to the NMA (tRCD + tCL + 32 x tBURST)".
    const auto dev = dram::ddr5Device32Gb();
    EXPECT_NEAR(ticksToNs(dram::accessCompletionOffset(dev, 0)),
                110.0, 3.0);
}

TEST_F(XfmDeviceTest, DefaultBudgetDerivedFromDevice)
{
    auto &dev = makeDevice();  // maxAccessesPerWindow = 0 => derive
    EXPECT_EQ(dev.config().maxAccessesPerWindow, 4u);  // 32 Gb
}

TEST_F(XfmDeviceTest, EngineCompletionWaitsForTransfer)
{
    auto &dev = makeDevice();
    mem_.write(rowAddr(3), Bytes(4096, 0x66));  // window-0 row
    Tick completed = 0;
    dev.setCompletionCallback([&](const OffloadCompletion &c) {
        completed = c.finished;
    });
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = rowAddr(3);
    req.size = 4096;
    dev.submit(req);
    eq_.run(cfg_.rank.device.tREFI());
    // Transfer (110 ns) + engine (~277 ns) past the window start.
    EXPECT_GE(completed,
              dram::accessCompletionOffset(cfg_.rank.device, 0));
    EXPECT_LT(completed, microseconds(1.0));
}

} // namespace
} // namespace nma
} // namespace xfm
