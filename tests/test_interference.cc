/**
 * @file
 * Tests for the LLC simulator and the Fig. 11 co-run interference
 * model: the three interfaces must order exactly as the paper
 * reports (XFM < Baseline-CPU < Host-Lockout for app slowdown; only
 * Baseline-CPU degrades SFM throughput).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "interference/cache.hh"
#include "interference/corun.hh"
#include "workload/spec_model.hh"

namespace xfm
{
namespace interference
{
namespace
{

// ------------------------------------------------------------------ cache

TEST(Cache, HitAfterMiss)
{
    SetAssocCache c(64 * 1024, 8, 64, 1);
    EXPECT_FALSE(c.access(0x1000, 0));
    EXPECT_TRUE(c.access(0x1000, 0));
    EXPECT_TRUE(c.access(0x1008, 0));  // same line
    EXPECT_FALSE(c.access(0x1040, 0)); // next line
    EXPECT_EQ(c.stats(0).accesses, 4u);
    EXPECT_EQ(c.stats(0).misses, 2u);
}

TEST(Cache, LruEvictsOldest)
{
    // Direct-mapped-ish tiny cache: 2 sets x 2 ways x 64 B.
    SetAssocCache c(256, 2, 64, 1);
    ASSERT_EQ(c.sets(), 2u);
    // Three blocks mapping to set 0: 0, 128... wait, with 2 sets the
    // set index alternates per line; use stride 2 lines.
    c.access(0 * 64, 0);    // set 0, way A
    c.access(2 * 64, 0);    // set 0, way B
    c.access(0 * 64, 0);    // touch A (B becomes LRU)
    c.access(4 * 64, 0);    // evicts B
    EXPECT_TRUE(c.access(0 * 64, 0));
    EXPECT_FALSE(c.access(2 * 64, 0));  // was evicted
}

TEST(Cache, WorkingSetFitsNoCapacityMisses)
{
    SetAssocCache c(1 << 20, 16, 64, 1);
    Rng rng(3);
    // 256 KiB working set inside a 1 MiB cache: after warm-up the
    // miss rate collapses.
    for (int i = 0; i < 50000; ++i)
        c.access(rng.uniformInt(256 * 1024), 0);
    c.resetStats();
    for (int i = 0; i < 50000; ++i)
        c.access(rng.uniformInt(256 * 1024), 0);
    EXPECT_LT(c.stats(0).missRate(), 0.01);
}

TEST(Cache, StreamingThrashes)
{
    SetAssocCache c(1 << 20, 16, 64, 1);
    // Sequential sweep far larger than the cache: ~every line new.
    std::uint64_t addr = 0;
    for (int i = 0; i < 100000; ++i, addr += 64)
        c.access(addr, 0);
    EXPECT_GT(c.stats(0).missRate(), 0.95);
}

TEST(Cache, SharingPollutesVictim)
{
    // A cache-fitting app loses hits when a streaming antagonist
    // shares the cache.
    const std::uint64_t ws = 700 * 1024;
    auto run = [&](bool with_antagonist) {
        SetAssocCache c(1 << 20, 16, 64, 2);
        Rng rng(5);
        std::uint64_t stream_addr = 1ull << 40;
        for (int i = 0; i < 400000; ++i) {
            c.access(rng.uniformInt(ws), 0);
            if (with_antagonist) {
                c.access(stream_addr, 1);
                stream_addr += 64;
            }
        }
        return c.stats(0).missRate();
    };
    EXPECT_GT(run(true), run(false) + 0.02);
}

TEST(Cache, PerRequesterStatsIndependent)
{
    SetAssocCache c(64 * 1024, 8, 64, 2);
    c.access(0, 0);
    c.access(64, 1);
    c.access(64, 1);
    EXPECT_EQ(c.stats(0).accesses, 1u);
    EXPECT_EQ(c.stats(1).accesses, 2u);
    EXPECT_EQ(c.stats(1).misses, 1u);
}

// ------------------------------------------------------------------ corun

class CoRunTest : public ::testing::Test
{
  protected:
    CoRunTest() : apps_(workload::specMemoryIntensiveMix()) {}

    CoRunOutcome
    run(SfmInterface iface)
    {
        return runCoRun(apps_, iface, cfg_);
    }

    std::vector<workload::AppProfile> apps_;
    CoRunConfig cfg_;
};

TEST_F(CoRunTest, XfmEliminatesInterference)
{
    const auto r = run(SfmInterface::Xfm);
    EXPECT_NEAR(r.avgSlowdownPercent, 0.0, 0.01);
    EXPECT_NEAR(r.sfmThroughputFactor, 1.0, 1e-9);
    EXPECT_NEAR(r.rankLockedFraction, 0.0, 1e-12);
}

TEST_F(CoRunTest, BaselineCpuSlowdownUpToEightPercent)
{
    // Fig. 11: SPEC sees up to ~8% degradation under Baseline-CPU.
    const auto r = run(SfmInterface::BaselineCpu);
    EXPECT_GT(r.maxSlowdownPercent, 3.0);
    EXPECT_LT(r.maxSlowdownPercent, 10.0);
    EXPECT_GT(r.avgSlowdownPercent, 1.0);
}

TEST_F(CoRunTest, HostLockoutWorstForApps)
{
    // Fig. 11: up to ~15% under Host-Lockout-NMA; worse than the
    // CPU baseline because the rank lock is disproportionate to
    // SFM's tiny per-rank bandwidth need.
    const auto lockout = run(SfmInterface::HostLockoutNma);
    const auto baseline = run(SfmInterface::BaselineCpu);
    EXPECT_GT(lockout.maxSlowdownPercent,
              baseline.maxSlowdownPercent);
    EXPECT_GT(lockout.maxSlowdownPercent, 10.0);
    EXPECT_LT(lockout.maxSlowdownPercent, 18.0);
    EXPECT_GT(lockout.rankLockedFraction, 0.0);
}

TEST_F(CoRunTest, OnlyBaselineDegradesSfmThroughput)
{
    // Fig. 11: SFM throughput drops 5-20% under Baseline-CPU and is
    // unharmed under Host-Lockout and XFM.
    const auto baseline = run(SfmInterface::BaselineCpu);
    EXPECT_LT(baseline.sfmThroughputFactor, 0.95);
    EXPECT_GT(baseline.sfmThroughputFactor, 0.80);
    EXPECT_DOUBLE_EQ(run(SfmInterface::HostLockoutNma)
                         .sfmThroughputFactor, 1.0);
    EXPECT_DOUBLE_EQ(run(SfmInterface::Xfm).sfmThroughputFactor, 1.0);
}

TEST_F(CoRunTest, InterfaceOrderingHolds)
{
    const auto xfm = run(SfmInterface::Xfm);
    const auto cpu = run(SfmInterface::BaselineCpu);
    const auto lock = run(SfmInterface::HostLockoutNma);
    EXPECT_LT(xfm.avgSlowdownPercent, cpu.avgSlowdownPercent);
    EXPECT_LT(cpu.avgSlowdownPercent, lock.avgSlowdownPercent);
}

TEST_F(CoRunTest, BaselinePollutesLlc)
{
    const auto r = run(SfmInterface::BaselineCpu);
    int polluted = 0;
    for (const auto &app : r.apps)
        if (app.missRateCoRun > app.missRateAlone)
            ++polluted;
    EXPECT_GE(polluted, 4);  // most apps lose cache share
}

TEST_F(CoRunTest, HigherPromotionRateHurtsMore)
{
    CoRunConfig heavy = cfg_;
    heavy.promotionRate = 0.5;
    const auto light = runCoRun(apps_, SfmInterface::BaselineCpu,
                                cfg_);
    const auto loaded = runCoRun(apps_, SfmInterface::BaselineCpu,
                                 heavy);
    EXPECT_GT(loaded.avgSlowdownPercent, light.avgSlowdownPercent);
    EXPECT_LT(loaded.sfmThroughputFactor, light.sfmThroughputFactor);
}

TEST_F(CoRunTest, PerAppResultsComplete)
{
    const auto r = run(SfmInterface::BaselineCpu);
    ASSERT_EQ(r.apps.size(), apps_.size());
    for (std::size_t i = 0; i < apps_.size(); ++i) {
        EXPECT_EQ(r.apps[i].name, apps_[i].name);
        EXPECT_GE(r.apps[i].slowdownPercent, 0.0);
    }
}

TEST(CoRunNames, InterfaceNames)
{
    EXPECT_EQ(interfaceName(SfmInterface::BaselineCpu),
              "Baseline-CPU");
    EXPECT_EQ(interfaceName(SfmInterface::HostLockoutNma),
              "Host-Lockout-NMA");
    EXPECT_EQ(interfaceName(SfmInterface::Xfm), "XFM");
}

} // namespace
} // namespace interference
} // namespace xfm
