/**
 * @file
 * Integration tests for the full-system composition: the same
 * workload on the CPU baseline and on XFM must keep page data
 * intact, and SFM-caused host channel traffic must vanish (up to
 * rare fallbacks) under XFM — the paper's headline.
 */

#include <gtest/gtest.h>

#include <optional>

#include "compress/corpus.hh"
#include "system/system.hh"

namespace xfm
{
namespace system
{
namespace
{

SystemConfig
testConfig(BackendKind kind)
{
    SystemConfig cfg;
    cfg.backend = kind;
    cfg.pages = 128;
    cfg.sfmBytes = mib(8);
    cfg.controller.coldThreshold = milliseconds(5.0);
    cfg.controller.scanInterval = milliseconds(1.0);
    cfg.controller.maxSwapOutsPerScan = 16;
    return cfg;
}

Bytes
pageContent(sfm::VirtPage p)
{
    return compress::generateCorpus(compress::CorpusKind::CsvTable,
                                    p + 7, pageBytes);
}

class SystemTest : public ::testing::TestWithParam<BackendKind>
{
  protected:
    SystemTest() : sys_("sys", eq_, testConfig(GetParam()))
    {
        for (sfm::VirtPage p = 0; p < 128; ++p)
            sys_.writePage(p, pageContent(p));
        sys_.start();
    }

    EventQueue eq_;
    System sys_;
};

TEST_P(SystemTest, ColdPagesDemotedAndDataSurvives)
{
    eq_.run(milliseconds(80.0));
    EXPECT_GT(sys_.backend().farPageCount(), 0u);

    // Fault a few pages back in and verify contents.
    for (sfm::VirtPage p : {3ull, 40ull, 99ull}) {
        sys_.access(p);
        eq_.run(eq_.now() + milliseconds(2.0));
        EXPECT_EQ(sys_.readPage(p), pageContent(p)) << "page " << p;
    }
}

TEST_P(SystemTest, MetricsRender)
{
    eq_.run(milliseconds(40.0));
    const std::string out = sys_.metrics().renderText();
    EXPECT_NE(out.find("pagesFar"), std::string::npos);
    EXPECT_NE(out.find("hostBytesSfm"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SystemTest,
    ::testing::Values(BackendKind::BaselineCpu, BackendKind::Xfm),
    [](const auto &info) {
        return info.param == BackendKind::BaselineCpu ? "baseline"
                                                      : "xfm";
    });

TEST(SystemComparison, XfmEliminatesSfmHostTraffic)
{
    auto run = [](BackendKind kind) {
        EventQueue eq;
        System sys("sys", eq, testConfig(kind));
        for (sfm::VirtPage p = 0; p < 128; ++p)
            sys.writePage(p, pageContent(p));
        sys.start();
        // Let the scanner demote everything, then touch pages to
        // promote some back.
        eq.run(milliseconds(60.0));
        for (sfm::VirtPage p = 0; p < 16; ++p) {
            sys.access(p);
            eq.run(eq.now() + milliseconds(1.0));
        }
        return sys.sfmHostBytes();
    };
    const std::uint64_t baseline = run(BackendKind::BaselineCpu);
    const std::uint64_t xfm = run(BackendKind::Xfm);
    // The baseline moves every page + compressed block over the
    // host channels; XFM moves only fallback traffic.
    EXPECT_GT(baseline, 100u * pageBytes / 2);
    EXPECT_LT(xfm, baseline / 4);
}

TEST(SystemComparison, BothBackendsReachSimilarFarOccupancy)
{
    auto far_pages = [](BackendKind kind) {
        EventQueue eq;
        System sys("sys", eq, testConfig(kind));
        for (sfm::VirtPage p = 0; p < 128; ++p)
            sys.writePage(p, pageContent(p));
        sys.start();
        eq.run(milliseconds(80.0));
        return sys.backend().farPageCount();
    };
    const auto baseline = far_pages(BackendKind::BaselineCpu);
    const auto xfm = far_pages(BackendKind::Xfm);
    EXPECT_GT(baseline, 100u);
    EXPECT_GT(xfm, 100u);
}

} // namespace
} // namespace system
} // namespace xfm

namespace xfm
{
namespace system
{
namespace
{

TEST(BackendStatsGroups, RenderNonEmpty)
{
    EventQueue eq;
    System sys("sys", eq, testConfig(BackendKind::Xfm));
    for (sfm::VirtPage p = 0; p < 128; ++p)
        sys.writePage(p, pageContent(p));
    sys.start();
    eq.run(milliseconds(40.0));
    // Backend and per-DIMM device metrics surface through the
    // system's unified registry.
    const std::string out = sys.metrics().renderText();
    EXPECT_NE(out.find("offloadedSwapOuts"), std::string::npos);
    EXPECT_NE(out.find("conditionalAccesses"), std::string::npos);

    EventQueue eq2;
    System sys2("sys2", eq2, testConfig(BackendKind::BaselineCpu));
    for (sfm::VirtPage p = 0; p < 128; ++p)
        sys2.writePage(p, pageContent(p));
    sys2.start();
    eq2.run(milliseconds(40.0));
    const std::string out2 = sys2.metrics().renderText();
    EXPECT_NE(out2.find("pool.usedBytes"), std::string::npos);
}

} // namespace
} // namespace system
} // namespace xfm
