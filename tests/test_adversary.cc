/**
 * @file
 * Adversarial-refresh tests: the RFM-starver attack degrades a
 * victim tenant's demand-fault tail with the defense off, the QoS
 * defense restores it (and throttles only the attacker), the
 * refresh-timing covert channel carries bits with the defense off
 * and collapses with it on, and every scenario is deterministic —
 * byte-identical across repeats and across event-core sharding and
 * worker counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include <algorithm>
#include <optional>
#include <vector>

#include "compress/corpus.hh"
#include "dram/ddr_config.hh"
#include "service/service.hh"
#include "test_util.hh"
#include "workload/adversary.hh"

namespace xfm
{
namespace workload
{
namespace
{

using service::FarMemoryService;
using service::PriorityClass;
using service::ServiceConfig;
using service::TenantConfig;
using service::TenantId;
using service::invalidTenant;
using sfm::PageState;
using sfm::VirtPage;

constexpr std::uint64_t victimPages = 32;
constexpr std::uint64_t farPages = 16;  ///< victim pages kept far

double
p99(std::vector<double> v)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    return v[(v.size() - 1) * 99 / 100];
}

/** Service config with REFpb + RFM realism armed on the DIMMs. */
ServiceConfig
adversarialConfig(bool defense)
{
    ServiceConfig cfg = testutil::testServiceConfig();
    // A fast host CPU: the demand-fault baseline is then dominated
    // by the swap itself, so refresh/RFM stalls — the quantity under
    // attack — show up undiluted in the tail.
    cfg.system.cpuFreqGHz = 10.0;
    auto &dev = cfg.system.dimmMem.rank.device;
    dev.refreshMode = dram::RefreshMode::RefPb;
    dev.rfmRaaimt = 32;
    if (defense) {
        cfg.arbiter.reservedSlotFrac = 0.25;
        cfg.arbiter.slotDebt = true;
        cfg.arbiter.abuseEnabled = true;
        cfg.arbiter.abuseWindows = 16;
        cfg.arbiter.abuseConsecutive = 2;
        // Longer than any test run: one throttle decision sticks.
        cfg.arbiter.abuseCooldown = milliseconds(10.0);
    }
    return cfg;
}

struct AttackResult
{
    std::vector<double> faultNs;  ///< victim demand-fault latencies
    double victimP99 = 0.0;
    bool attackerThrottled = false;
    bool victimThrottled = false;
    std::uint64_t attackerFlags = 0;
    std::uint64_t victimFlags = 0;
    std::uint64_t bystanderFlags = 0;
    std::uint64_t rfmCommands = 0;
    std::uint64_t suppressedBursts = 0;
    std::uint64_t abuseRejects = 0;
    std::string statsJson;
};

/**
 * One starver scenario: a latency victim faulting against its far
 * pages, two idle bystanders, and an RFM-starver tenant that may or
 * may not hammer, under a given event-core geometry.
 */
AttackResult
runStarver(bool attack, bool defense, std::size_t sim_shards = 1,
           std::size_t workers = 1)
{
    EventQueueConfig eq_cfg;
    eq_cfg.shards = sim_shards;
    eq_cfg.windowTicks = dram::ddr5Device32Gb().tREFI();
    eq_cfg.drainWorkers = workers;
    eq_cfg.parallelStageMin = 0;
    EventQueue eq(eq_cfg);

    ServiceConfig cfg = adversarialConfig(defense);
    cfg.system.workers = workers;
    FarMemoryService svc("svc", eq, cfg);

    TenantConfig vcfg;
    vcfg.name = "victim";
    vcfg.cls = PriorityClass::LatencySensitive;
    vcfg.pages = victimPages;
    const TenantId victim = svc.addTenant(vcfg);
    EXPECT_NE(victim, invalidTenant);

    TenantConfig bcfg;
    bcfg.name = "bystander0";
    bcfg.pages = 8;
    const TenantId by0 = svc.addTenant(bcfg);
    bcfg.name = "bystander1";
    const TenantId by1 = svc.addTenant(bcfg);
    EXPECT_NE(by1, invalidTenant);

    // The starver model admits the fourth tenant either way so the
    // lane layout (and the z-score population) is identical between
    // the solo baseline and the attacked runs.
    RfmStarverConfig acfg;
    acfg.pages = 16;
    acfg.burstsPerSecond = 4.0e6;
    acfg.activationsPerBurst = 128;
    acfg.targetDimm = 0;
    acfg.sweepBanks = true;
    TenantConfig atcfg;
    atcfg.name = "starver";
    RfmStarverModel starver("starver", eq, svc, acfg, atcfg);

    for (VirtPage p = 0; p < victimPages; ++p)
        svc.writePage(victim, p,
                      testutil::corpusPage(compress::CorpusKind::Json,
                                           p + 7));
    svc.start();
    if (attack)
        starver.start();

    // Warm up: push the victim's cold half far on the CPU path and
    // give the abuse detector time to converge before measuring.
    for (VirtPage p = 0; p < farPages; ++p)
        svc.tenantBackend(victim).swapOut(p, false,
                                          sfm::SwapCallback{});
    eq.run(eq.now() + microseconds(200.0));

    // Measurement: paced CPU-path demand faults (the SLO metric);
    // each page goes straight back out so the next round faults it
    // again. RAAMMT saturation on the attacked DIMM stalls the
    // fault's compressed-slot read until the bank's next pb slot
    // drains the RAA counter.
    AttackResult r;
    for (int i = 0; i < 256; ++i) {
        eq.run(eq.now() + microseconds(8.0));
        const VirtPage p = i % farPages;
        if (svc.tenantBackend(victim).pageState(p)
            != PageState::Far)
            continue;
        const Tick t0 = eq.now();
        svc.tenantBackend(victim).swapIn(
            p, false, [&r, &svc, victim, p, t0](
                         const sfm::SwapOutcome &o) {
                if (o.success)
                    r.faultNs.push_back(
                        ticksToNs(o.completed - t0));
                svc.tenantBackend(victim).swapOut(
                    p, false, sfm::SwapCallback{});
            });
    }
    eq.run(eq.now() + microseconds(50.0));

    r.victimP99 = p99(r.faultNs);
    r.attackerThrottled =
        svc.arbiter().abuseThrottled(starver.tenantId());
    r.victimThrottled = svc.arbiter().abuseThrottled(victim);
    r.attackerFlags =
        svc.arbiter().laneStats(starver.tenantId()).abuseFlags;
    r.victimFlags = svc.arbiter().laneStats(victim).abuseFlags;
    r.bystanderFlags = svc.arbiter().laneStats(by0).abuseFlags
        + svc.arbiter().laneStats(by1).abuseFlags;
    r.rfmCommands = svc.backend().refresh().refreshStats()
        .rfmCommands;
    r.suppressedBursts = starver.stats().suppressedBursts;
    // A throttled tenant also loses its far-memory service: its own
    // swap-outs come back Rejected{AbuseThrottle}.
    if (attack) {
        svc.writePage(starver.tenantId(), 0,
                      testutil::corpusPage(
                          compress::CorpusKind::EnglishText, 99));
        svc.tenantBackend(starver.tenantId())
            .swapOut(0, sfm::SwapCallback{});
        eq.run(eq.now() + microseconds(10.0));
    }
    r.abuseRejects =
        svc.registry().stats(starver.tenantId()).abuseRejects;
    r.statsJson = svc.metrics().toJson();
    return r;
}

TEST(AdversaryStarver, AttackDegradesVictimTailWithoutDefense)
{
    const AttackResult solo = runStarver(false, false);
    const AttackResult hit = runStarver(true, false);
    ASSERT_GE(solo.faultNs.size(), 100u);
    ASSERT_GE(hit.faultNs.size(), 100u);
    EXPECT_GT(solo.victimP99, 0.0);
    // The attack forces RFMs and at least doubles the victim's p99
    // demand-fault latency (acceptance criterion).
    EXPECT_GT(hit.rfmCommands, 0u);
    EXPECT_GE(hit.victimP99, 2.0 * solo.victimP99)
        << "solo p99 " << solo.victimP99 << "ns, attacked p99 "
        << hit.victimP99 << "ns";
    // Without the detector nothing is ever flagged or suppressed.
    EXPECT_FALSE(hit.attackerThrottled);
    EXPECT_EQ(hit.attackerFlags, 0u);
    EXPECT_EQ(hit.suppressedBursts, 0u);
}

TEST(AdversaryStarver, DefenseRestoresVictimAndThrottlesAttacker)
{
    const AttackResult solo = runStarver(false, false);
    const AttackResult defended = runStarver(true, true);
    ASSERT_GE(defended.faultNs.size(), 100u);
    // The defense throttles the attacker...
    EXPECT_TRUE(defended.attackerThrottled);
    EXPECT_GE(defended.attackerFlags, 2u);
    EXPECT_GT(defended.suppressedBursts, 0u);
    EXPECT_GT(defended.abuseRejects, 0u);
    // ...and ONLY the attacker.
    EXPECT_FALSE(defended.victimThrottled);
    EXPECT_EQ(defended.victimFlags, 0u);
    EXPECT_EQ(defended.bystanderFlags, 0u);
    // Victim tail recovers to within 25% of the solo baseline
    // (acceptance criterion).
    EXPECT_LE(defended.victimP99, 1.25 * solo.victimP99)
        << "solo p99 " << solo.victimP99 << "ns, defended p99 "
        << defended.victimP99 << "ns";
}

TEST(AdversaryStarver, ScenariosAreDeterministic)
{
    // Same scenario, same seed => byte-identical sampled latencies
    // and metric exports, attack and defense alike.
    const AttackResult a1 = runStarver(true, false);
    const AttackResult a2 = runStarver(true, false);
    EXPECT_EQ(a1.faultNs, a2.faultNs);
    EXPECT_EQ(a1.statsJson, a2.statsJson);
    const AttackResult d1 = runStarver(true, true);
    const AttackResult d2 = runStarver(true, true);
    EXPECT_EQ(d1.faultNs, d2.faultNs);
    EXPECT_EQ(d1.statsJson, d2.statsJson);
}

TEST(AdversaryStarver, ShardAndWorkerMatrixIsByteIdentical)
{
    // The event-core contract extends to attack scenarios: shards
    // and drain workers are host-runtime knobs, never simulation
    // inputs, even under adversarial refresh pressure.
    const AttackResult golden = runStarver(true, true, 1, 1);
    for (std::size_t shards : {1, 8}) {
        for (std::size_t workers : {1, 8}) {
            if (shards == 1 && workers == 1)
                continue;
            const AttackResult got =
                runStarver(true, true, shards, workers);
            EXPECT_EQ(got.faultNs, golden.faultNs)
                << "shards=" << shards << " workers=" << workers;
            EXPECT_EQ(got.statsJson, golden.statsJson)
                << "shards=" << shards << " workers=" << workers;
        }
    }
}

// ------------------------------------------------------ covert channel

struct CovertResult
{
    double ber = 0.0;
    double capacityBps = 0.0;
    std::uint32_t bitsDecoded = 0;
    bool senderFlagged = false;
    bool receiverFlagged = false;
};

CovertResult
runCovert(bool defense)
{
    EventQueue eq;
    // All-bank REF mode: one RFM steals the whole window's slot
    // budget, the strongest (and simplest) modulation.
    ServiceConfig cfg = testutil::testServiceConfig();
    cfg.system.dimmMem.rank.device.rfmRaaimt = 32;
    if (defense) {
        cfg.arbiter.reservedSlotFrac = 0.25;
        cfg.arbiter.slotDebt = true;
        cfg.arbiter.abuseEnabled = true;
        cfg.arbiter.abuseWindows = 16;
        cfg.arbiter.abuseCooldown = milliseconds(10.0);
    }
    FarMemoryService svc("svc", eq, cfg);

    CovertConfig ccfg;
    ccfg.pages = 16;
    ccfg.bitPeriod = microseconds(50.0);
    ccfg.bits = 32;
    ccfg.burstsPerBit = 8;
    ccfg.activationsPerBurst = 64;
    ccfg.probesPerBit = 4;
    ccfg.scheduleSeed = 0xc0ffee;

    TenantConfig rxcfg;
    rxcfg.name = "rx";
    CovertReceiverModel rx("rx", eq, svc, ccfg, rxcfg);
    TenantConfig txcfg;
    txcfg.name = "tx";
    CovertSenderModel tx("tx", eq, svc, ccfg, txcfg);
    TenantConfig bcfg;
    bcfg.name = "bystander0";
    bcfg.pages = 8;
    svc.addTenant(bcfg);
    bcfg.name = "bystander1";
    svc.addTenant(bcfg);

    svc.start();
    rx.start();
    tx.start();
    eq.run((ccfg.bits + 3) * ccfg.bitPeriod);

    CovertResult r;
    if (std::getenv("ADV_DEBUG")) {
        const auto &lat = rx.bitLatencies();
        for (std::size_t k = 0; k < lat.size(); ++k)
            std::printf("bit %2zu tx=%d lat=%.1f\n", k,
                        int(covertBit(ccfg.scheduleSeed, k)), lat[k]);
        std::printf("probes=%llu served=%llu\n",
                    (unsigned long long)rx.stats().probes,
                    (unsigned long long)rx.stats().probesServed);
    }
    EXPECT_TRUE(rx.done());
    r.ber = rx.stats().bitErrorRate();
    r.capacityBps = rx.channelCapacityBps();
    r.bitsDecoded = rx.stats().bitsDecoded;
    r.senderFlagged =
        svc.arbiter().laneStats(tx.tenantId()).abuseFlags > 0;
    r.receiverFlagged =
        svc.arbiter().laneStats(rx.tenantId()).abuseFlags > 0;
    return r;
}

TEST(AdversaryCovert, ChannelCarriesBitsWithoutDefense)
{
    const CovertResult open = runCovert(false);
    EXPECT_EQ(open.bitsDecoded, 32u);
    EXPECT_LE(open.ber, 0.2) << "BER " << open.ber;
    EXPECT_GT(open.capacityBps, 0.0);
}

TEST(AdversaryCovert, DefenseCollapsesChannelCapacity)
{
    const CovertResult open = runCovert(false);
    const CovertResult shut = runCovert(true);
    EXPECT_EQ(shut.bitsDecoded, 32u);
    // The slot-debt ledger decouples the receiver's lane from the
    // sender's RFM pressure: the modulation no longer reaches the
    // probe latencies and capacity collapses.
    EXPECT_GE(shut.ber, 0.3) << "BER " << shut.ber;
    EXPECT_LT(shut.capacityBps, 0.5 * open.capacityBps);
    // The detector pins the sender, never the receiver.
    EXPECT_TRUE(shut.senderFlagged);
    EXPECT_FALSE(shut.receiverFlagged);
}

TEST(AdversaryCovert, CovertRunsAreDeterministic)
{
    const CovertResult a = runCovert(false);
    const CovertResult b = runCovert(false);
    EXPECT_EQ(a.ber, b.ber);
    EXPECT_EQ(a.capacityBps, b.capacityBps);
}

} // namespace
} // namespace workload
} // namespace xfm
