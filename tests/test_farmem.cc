/**
 * @file
 * Tests for the AIFM-style FarArray container: transparent faulting,
 * data integrity across demote/promote cycles, and prefetch-driven
 * scans.
 */

#include <gtest/gtest.h>

#include "farmem/far_array.hh"

namespace xfm
{
namespace farmem
{
namespace
{

system::SystemConfig
arrayConfig()
{
    system::SystemConfig cfg;
    cfg.backend = system::BackendKind::Xfm;
    cfg.pages = 64;
    cfg.sfmBytes = mib(8);
    cfg.controller.coldThreshold = milliseconds(5.0);
    cfg.controller.scanInterval = milliseconds(1.0);
    cfg.controller.prefetchDepth = 2;
    return cfg;
}

class FarArrayTest : public ::testing::Test
{
  protected:
    FarArrayTest() : sys_("sys", eq_, arrayConfig())
    {
        sys_.start();
    }

    EventQueue eq_;
    system::System sys_;
};

TEST_F(FarArrayTest, WriteReadRoundTrip)
{
    FarArray<std::int64_t> arr(sys_, 0, 10000);
    for (std::uint64_t i = 0; i < 10000; i += 97)
        arr.write(i, static_cast<std::int64_t>(i * 3));
    for (std::uint64_t i = 0; i < 10000; i += 97)
        EXPECT_EQ(arr.read(i), static_cast<std::int64_t>(i * 3));
    EXPECT_EQ(arr.stats().faults, 0u);  // everything stayed local
}

TEST_F(FarArrayTest, SpansExpectedPages)
{
    FarArray<std::int64_t> arr(sys_, 0, 10000);
    // 10000 x 8 B = 80000 B -> 20 pages.
    EXPECT_EQ(arr.pages(), 20u);
}

TEST_F(FarArrayTest, SurvivesDemotionTransparently)
{
    FarArray<std::int64_t> arr(sys_, 0, 8192);
    for (std::uint64_t i = 0; i < 8192; ++i)
        arr.write(i, static_cast<std::int64_t>(i ^ 0x5A5A));

    // Let the cold scanner demote the whole array.
    eq_.run(eq_.now() + milliseconds(60.0));
    ASSERT_GT(sys_.backend().farPageCount(), 0u);

    // Reads transparently fault pages back and see the same data.
    for (std::uint64_t i = 0; i < 8192; i += 513)
        EXPECT_EQ(arr.read(i),
                  static_cast<std::int64_t>(i ^ 0x5A5A));
    EXPECT_GT(arr.stats().faults, 0u);
    EXPECT_GT(arr.stats().faultWaitTicks, 0u);
}

TEST_F(FarArrayTest, SequentialScanBenefitsFromPrefetch)
{
    FarArray<std::int64_t> arr(sys_, 0, 16384);  // 32 pages
    for (std::uint64_t i = 0; i < 16384; ++i)
        arr.write(i, 1);
    eq_.run(eq_.now() + milliseconds(60.0));
    ASSERT_GT(sys_.backend().farPageCount(), 20u);

    // Scan with prefetch hints: faults happen on far fewer pages
    // than the scan touches, because neighbours arrive via NMA.
    std::int64_t sum = 0;
    constexpr std::uint64_t perPage = pageBytes / sizeof(std::int64_t);
    for (std::uint64_t i = 0; i < 16384; ++i) {
        if (i % perPage == 0) {
            arr.prefetchHint(i);
            eq_.run(eq_.now() + milliseconds(1.0));
        }
        sum += arr.read(i);
    }
    EXPECT_EQ(sum, 16384);
    EXPECT_LT(arr.stats().faults, arr.pages() / 2);
}

TEST_F(FarArrayTest, OutOfRangePanics)
{
    FarArray<std::int64_t> arr(sys_, 0, 100);
    EXPECT_DEATH(arr.read(100), "out of range");
}

TEST_F(FarArrayTest, WorksOnBaselineBackendToo)
{
    EventQueue eq;
    auto cfg = arrayConfig();
    cfg.backend = system::BackendKind::BaselineCpu;
    system::System sys("sys", eq, cfg);
    sys.start();
    FarArray<std::uint32_t> arr(sys, 0, 4096);
    for (std::uint64_t i = 0; i < 4096; i += 31)
        arr.write(i, static_cast<std::uint32_t>(i + 7));
    eq.run(eq.now() + milliseconds(60.0));
    for (std::uint64_t i = 0; i < 4096; i += 31)
        EXPECT_EQ(arr.read(i), static_cast<std::uint32_t>(i + 7));
}

} // namespace
} // namespace farmem
} // namespace xfm
