/**
 * @file
 * Tests for the Sec. 3.1 cost/emission model (EQ1-EQ5, Fig. 3) and
 * the Table 2/3 overhead estimates.
 */

#include <gtest/gtest.h>

#include "costmodel/cost_model.hh"

namespace xfm
{
namespace costmodel
{
namespace
{

CostParams
at(double promotion_rate)
{
    CostParams p;
    p.promotionRate = promotion_rate;
    return p;
}

TEST(CostModel, Eq1GbSwappedPerMin)
{
    FarMemoryCostModel m(at(0.2));
    // 512 GB x 20% = 102.4 GB/min (paper Sec. 2.1 example).
    EXPECT_NEAR(m.gbSwappedPerMin(), 102.4, 1e-9);
}

TEST(CostModel, CpuFractionScalesWithRate)
{
    FarMemoryCostModel half(at(0.5));
    FarMemoryCostModel full(at(1.0));
    EXPECT_NEAR(full.cpuFractionNeeded(),
                2.0 * half.cpuFractionNeeded(), 1e-12);
    // 512 GB/min at 7.65e9 cycles/GB needs more than one 16-core
    // CPU's worth of cycles.
    EXPECT_GT(full.cpuFractionNeeded(), 1.0);
}

TEST(CostModel, SfmBandwidthMatchesPaperHeadline)
{
    // Intro: "memory bandwidth utilization ... can reach up to
    // 34 GBps" for a 512 GB SFM.
    FarMemoryCostModel m(at(1.0));
    EXPECT_NEAR(m.sfmMemoryBandwidthGBps(), 34.1, 0.5);
}

TEST(CostModel, CostBreakEvenNearEightAndAHalfYears)
{
    // Fig. 3: at a 100% promotion rate SFM stays cheaper than
    // DFM-DRAM for ~8.5 years.
    FarMemoryCostModel m(at(1.0));
    const double be = m.costBreakEvenYears(DfmTech::Dram);
    EXPECT_GT(be, 7.5);
    EXPECT_LT(be, 9.5);
}

TEST(CostModel, SfmCheaperThanDfmWithinServerLifetime)
{
    FarMemoryCostModel m(at(1.0));
    for (double years : {1.0, 3.0, 5.0}) {
        EXPECT_LT(m.sfm(years).totalUSD(),
                  m.dfm(DfmTech::Dram, years).totalUSD())
            << "year " << years;
    }
}

TEST(CostModel, LowPromotionRateNeverBreaksEven)
{
    // At 20% (realistic per Google's fleet) SFM remains cheaper
    // than both DFM flavours over any horizon we care about.
    FarMemoryCostModel m(at(0.2));
    EXPECT_LT(m.costBreakEvenYears(DfmTech::Dram, 30.0), 0.0);
    EXPECT_LT(m.costBreakEvenYears(DfmTech::Pmem, 30.0), 0.0);
}

TEST(CostModel, EmissionNeverBreaksEvenWithinLifetime)
{
    // Fig. 3: DRAM-based DFM and SFM never break even in emissions
    // during the 5-year server lifetime.
    for (double rate : {0.2, 1.0}) {
        FarMemoryCostModel m(at(rate));
        const double be = m.emissionBreakEvenYears(DfmTech::Dram);
        EXPECT_TRUE(be < 0.0 || be > 5.0) << "rate " << rate;
    }
}

TEST(CostModel, PmemEmissionBreakEvenTakesYears)
{
    // "Even with PMem, it can take several years for SFM with a 20%
    // promotion rate to break even in emissions."
    FarMemoryCostModel m(at(0.2));
    const double be = m.emissionBreakEvenYears(DfmTech::Pmem);
    EXPECT_TRUE(be < 0.0 || be > 2.0);
}

TEST(CostModel, AcceleratorBreakEvenSingleDigitPercent)
{
    // Sec. 3.2: an integrated accelerator pays off above a ~6%
    // promotion rate for a 512 GB SFM.
    FarMemoryCostModel m(at(1.0));
    const double rate = m.acceleratorBreakEvenPromotionRate();
    EXPECT_GT(rate, 0.02);
    EXPECT_LT(rate, 0.10);
}

TEST(CostModel, DfmCapitalDominatedByModules)
{
    FarMemoryCostModel m(at(1.0));
    const auto b = m.dfm(DfmTech::Dram, 1.0);
    EXPECT_GT(b.capitalUSD, b.operationalUSD);
    EXPECT_NEAR(b.capitalUSD, 512.0 * m.params().dramCostPerGB, 1e-6);
}

TEST(CostModel, PmemCheaperCapitalThanDram)
{
    FarMemoryCostModel m(at(1.0));
    EXPECT_LT(m.dfm(DfmTech::Pmem, 0.0).totalUSD(),
              m.dfm(DfmTech::Dram, 0.0).totalUSD());
    EXPECT_LT(m.dfm(DfmTech::Pmem, 0.0).totalKgCO2(),
              m.dfm(DfmTech::Dram, 0.0).totalKgCO2());
}

TEST(CostModel, CostsMonotoneInTime)
{
    FarMemoryCostModel m(at(0.5));
    double prev_sfm = -1.0;
    double prev_dfm = -1.0;
    for (double y = 0.0; y <= 10.0; y += 1.0) {
        const double s = m.sfm(y).totalUSD();
        const double d = m.dfm(DfmTech::Dram, y).totalUSD();
        EXPECT_GT(s, prev_sfm);
        EXPECT_GT(d, prev_dfm);
        prev_sfm = s;
        prev_dfm = d;
    }
}

TEST(CostModel, Fig3SweepNormalisedToDfmDram)
{
    const auto rows = fig3Sweep(CostParams{}, {1.0, 5.0, 8.5},
                                {0.2, 1.0});
    ASSERT_EQ(rows.size(), 6u);
    for (const auto &r : rows) {
        EXPECT_DOUBLE_EQ(r.dfmDramCost, 1.0);
        EXPECT_DOUBLE_EQ(r.dfmDramEmission, 1.0);
        EXPECT_GT(r.sfmCost, 0.0);
        EXPECT_LT(r.dfmPmemCost, 1.0);  // PMem cheaper than DRAM
    }
    // At 20% and 5 years SFM is far cheaper than the DFM baseline.
    for (const auto &r : rows) {
        if (r.promotionRate == 0.2 && r.years == 5.0) {
            EXPECT_LT(r.sfmCost, 0.5);
        }
    }
}

TEST(OverheadModel, Table2FpgaUtilization)
{
    const auto u = estimateFpgaUtilization();
    // Table 2: 435467 LUTs (83.3%), 94135 FFs (9.0%), 51 BRAM.
    EXPECT_NEAR(static_cast<double>(u.luts), 435467.0, 10000.0);
    EXPECT_NEAR(u.lutPercent(), 83.3, 2.0);
    EXPECT_NEAR(static_cast<double>(u.ffs), 94135.0, 4000.0);
    EXPECT_NEAR(u.ffPercent(), 9.0, 0.5);
    EXPECT_NEAR(static_cast<double>(u.bram), 51.0, 4.0);
}

TEST(OverheadModel, Table3Power)
{
    const auto p = estimateFpgaPower();
    // Table 3: 5.718 W dynamic (81%), 1.306 W static (19%).
    EXPECT_NEAR(p.dynamicWatts, 5.718, 0.01);
    EXPECT_NEAR(p.staticWatts, 1.306, 0.01);
    EXPECT_NEAR(p.totalWatts(), 7.024, 0.02);
    EXPECT_NEAR(p.dynamicPercent(), 81.0, 1.0);
}

TEST(OverheadModel, DramOverheadTiny)
{
    const auto o = estimateDramOverhead();
    // Sec. 8: ~0.15% area, ~0.002% power.
    EXPECT_LE(o.areaPercent, 0.15 + 1e-9);
    EXPECT_GT(o.areaPercent, 0.0);
    EXPECT_NEAR(o.powerPercent, 0.002, 1e-6);
}

TEST(OverheadModel, UtilizationScalesWithThroughput)
{
    const auto small = estimateFpgaUtilization(0.7, 0.85);
    const auto big = estimateFpgaUtilization(2.8, 3.4);
    EXPECT_LT(small.luts, big.luts);
    EXPECT_LT(small.ffs, big.ffs);
}

} // namespace
} // namespace costmodel
} // namespace xfm

namespace xfm
{
namespace costmodel
{
namespace
{

TEST(DataMovementEnergy, SixtyNinePercentSavings)
{
    // Sec. 4.3: on-DIMM movement cuts data-movement energy by 69%.
    DataMovementEnergy e;
    EXPECT_NEAR(e.savingsFraction(), 0.69, 0.01);
    EXPECT_LT(e.nmaPathJoules(1e9), e.cpuPathJoules(1e9));
}

TEST(DataMovementEnergy, ScalesLinearly)
{
    DataMovementEnergy e;
    EXPECT_DOUBLE_EQ(e.cpuPathJoules(2e9), 2.0 * e.cpuPathJoules(1e9));
    EXPECT_DOUBLE_EQ(e.nmaPathJoules(2e9), 2.0 * e.nmaPathJoules(1e9));
}

} // namespace
} // namespace costmodel
} // namespace xfm
