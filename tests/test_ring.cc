/**
 * @file
 * Unit tests for the async NMA command rings (nma/ring.hh): SQ slab
 * allocation and backpressure, CQ phase-bit wraparound, generation
 * tags and stale-record rejection, watchdog withdraw semantics, and
 * an integration case asserting byte-identical page reassembly when
 * completions arrive out of order at queue depth 8.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/random.hh"
#include "dram/address_map.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "nma/ring.hh"
#include "nma/xfm_device.hh"
#include "xfm/xfm_driver.hh"

namespace xfm
{
namespace nma
{
namespace
{

OffloadRequest
compressReq(std::uint64_t src = 0x1000)
{
    OffloadRequest req;
    req.kind = OffloadKind::Compress;
    req.srcAddr = src;
    req.size = 4096;
    return req;
}

TEST(SubmissionQueueTest, PushAssignsLowestFreeSlotGenerationOne)
{
    CommandRing ring(4);
    auto &sq = ring.sq();
    for (std::uint32_t i = 0; i < 4; ++i) {
        const CommandTag tag = sq.push(compressReq(), 0);
        ASSERT_NE(tag, invalidOffloadId);
        EXPECT_EQ(slotOf(tag), i);
        EXPECT_EQ(generationOf(tag), 1u);
    }
    EXPECT_TRUE(sq.full());
    EXPECT_EQ(sq.inFlight(), 4u);
    EXPECT_EQ(ring.stats().sqEnqueues, 4u);
}

TEST(SubmissionQueueTest, FullSqBackpressureRejectsWithoutReuse)
{
    CommandRing ring(4);
    auto &sq = ring.sq();
    std::vector<CommandTag> tags;
    for (int i = 0; i < 4; ++i)
        tags.push_back(sq.push(compressReq(), 0));
    // Fifth push finds no free slot: exact backpressure, no tag.
    EXPECT_EQ(sq.push(compressReq(), 0), invalidOffloadId);
    EXPECT_EQ(ring.stats().sqFullRejects, 1u);
    // Every in-flight tag is still the live generation of its slot:
    // nothing was evicted or reused to make room.
    for (const CommandTag tag : tags)
        EXPECT_TRUE(sq.validTag(tag));

    // Retiring one slot frees exactly that slot; the replacement
    // command gets a bumped generation so the old tag goes stale.
    ASSERT_TRUE(sq.retire(tags[2]));
    const CommandTag fresh = sq.push(compressReq(), 0);
    ASSERT_NE(fresh, invalidOffloadId);
    EXPECT_EQ(slotOf(fresh), 2u);
    EXPECT_EQ(generationOf(fresh), 2u);
    EXPECT_FALSE(sq.validTag(tags[2]));
    EXPECT_TRUE(sq.validTag(fresh));
}

TEST(SubmissionQueueTest, NoDescriptorReuseWhileInFlight)
{
    CommandRing ring(2);
    auto &sq = ring.sq();
    std::set<CommandTag> seen;
    // Cycle the ring far past its depth: a tag may only repeat if
    // its command was retired first, so across the whole run every
    // issued tag is unique.
    for (int i = 0; i < 100; ++i) {
        const CommandTag tag = sq.push(compressReq(), i);
        ASSERT_NE(tag, invalidOffloadId);
        EXPECT_TRUE(seen.insert(tag).second)
            << "tag reused while a prior command could own the slot";
        sq.ringDoorbell(i);
        CommandDescriptor d;
        ASSERT_TRUE(sq.consume(d));
        EXPECT_EQ(d.req.id, tag);
        ASSERT_TRUE(sq.retire(tag));
    }
    EXPECT_EQ(ring.stats().consumed, 100u);
}

TEST(SubmissionQueueTest, DoorbellOrderPreservedAcrossBatches)
{
    CommandRing ring(8);
    auto &sq = ring.sq();
    // Two staged batches, one doorbell each: the device must see
    // all of batch A before any of batch B, in push order.
    std::vector<CommandTag> order;
    for (int i = 0; i < 3; ++i)
        order.push_back(sq.push(compressReq(), 0));
    EXPECT_EQ(sq.stagedCount(), 3u);
    sq.ringDoorbell(10);
    EXPECT_EQ(sq.stagedCount(), 0u);
    for (int i = 0; i < 2; ++i)
        order.push_back(sq.push(compressReq(), 0));
    sq.ringDoorbell(20);
    for (const CommandTag expect : order) {
        CommandDescriptor d;
        ASSERT_TRUE(sq.consume(d));
        EXPECT_EQ(d.req.id, expect);
    }
    CommandDescriptor d;
    EXPECT_FALSE(sq.consume(d));
}

TEST(SubmissionQueueTest, StagedEntriesInvisibleUntilDoorbell)
{
    CommandRing ring(4);
    auto &sq = ring.sq();
    sq.push(compressReq(), 0);
    CommandDescriptor d;
    // Written but not covered by a doorbell: the device sees nothing.
    EXPECT_FALSE(sq.consume(d));
    sq.ringDoorbell(5);
    EXPECT_TRUE(sq.consume(d));
}

TEST(SubmissionQueueTest, WithdrawKeepsTagLiveForDropRecord)
{
    CommandRing ring(4);
    auto &sq = ring.sq();
    const CommandTag victim = sq.push(compressReq(), 0);
    const CommandTag other = sq.push(compressReq(), 0);
    sq.ringDoorbell(0);
    // Watchdog path: pull the stranded command out of the pending
    // queue WITHOUT retiring the slot, so the Drop record posted for
    // it still reads as the live generation at reap time.
    ASSERT_TRUE(sq.withdraw(victim));
    EXPECT_TRUE(sq.validTag(victim));
    EXPECT_FALSE(sq.withdraw(victim));  // already withdrawn
    CommandDescriptor d;
    ASSERT_TRUE(sq.consume(d));
    EXPECT_EQ(d.req.id, other);  // victim skipped
    EXPECT_FALSE(sq.consume(d));
    // Reaping the Drop record retires the slot as usual.
    ASSERT_TRUE(sq.retire(victim));
    EXPECT_FALSE(sq.validTag(victim));
}

TEST(SubmissionQueueTest, StrandedScanFindsOnlyOverdueUnconsumed)
{
    CommandRing ring(4);
    auto &sq = ring.sq();
    const CommandTag stale = sq.push(compressReq(), 100);
    sq.ringDoorbell(100);
    const CommandTag young = sq.push(compressReq(), 900);
    sq.ringDoorbell(900);
    // Consume nothing: both sit in pending. Only the old one is
    // stranded past a 500-tick limit at t=1000.
    const auto stranded = sq.strandedSince(1000, 500);
    ASSERT_EQ(stranded.size(), 1u);
    EXPECT_EQ(stranded[0], stale);
    (void)young;
}

TEST(CompletionQueueTest, PhaseBitFlipsOnEveryWrap)
{
    CommandRing ring(4);  // CQ depth = 2*4 + 2 = 10
    auto &cq = ring.cq();
    const std::uint32_t depth = cq.depth();
    ASSERT_EQ(depth, 10u);
    // Three full laps, one record at a time: every record must reap
    // exactly once even as the device phase flips at each wrap.
    for (std::uint64_t i = 0; i < 3u * depth; ++i) {
        CompletionRecord rec;
        rec.tag = makeTag(1, 0);
        rec.type = CompletionType::Complete;
        ASSERT_TRUE(cq.post(rec, i));
        CompletionRecord out;
        ASSERT_TRUE(cq.reap(out));
        EXPECT_FALSE(cq.reap(out));  // old-phase leftovers unreadable
    }
    EXPECT_EQ(ring.stats().phaseFlips, 3u);
    EXPECT_EQ(ring.stats().reaped, 3u * depth);
    EXPECT_EQ(cq.headIndex(), 3u * depth);
}

TEST(CompletionQueueTest, BatchReapAcrossWrapBoundary)
{
    CommandRing ring(2);  // CQ depth = 6
    auto &cq = ring.cq();
    // Post 4, reap 4, post 4 (wrapping), reap 4: the second batch
    // straddles the wrap so its records carry both phases.
    for (int lap = 0; lap < 2; ++lap) {
        for (std::uint64_t i = 0; i < 4; ++i) {
            CompletionRecord rec;
            rec.tag = makeTag(1, static_cast<std::uint32_t>(i % 2));
            ASSERT_TRUE(cq.post(rec, i));
        }
        EXPECT_EQ(cq.pending(), 4u);
        CompletionRecord out;
        int reaped = 0;
        while (cq.reap(out))
            ++reaped;
        EXPECT_EQ(reaped, 4);
        EXPECT_EQ(cq.pending(), 0u);
    }
    EXPECT_EQ(ring.stats().phaseFlips, 1u);
}

TEST(CompletionQueueTest, PostFailsOnlyWhenTrulyFull)
{
    CommandRing ring(1);  // CQ depth = 4
    auto &cq = ring.cq();
    CompletionRecord rec;
    rec.tag = makeTag(1, 0);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(cq.post(rec, 0));
    // A fifth post would overwrite an unreaped record: refused. The
    // device treats this as fatal because the 2*depth+2 sizing makes
    // it unreachable in normal operation.
    EXPECT_FALSE(cq.post(rec, 0));
    CompletionRecord out;
    ASSERT_TRUE(cq.reap(out));
    EXPECT_TRUE(cq.post(rec, 0));
}

TEST(RingTest, StaleGenerationTagRejectedAtReap)
{
    CommandRing ring(4);
    auto &sq = ring.sq();
    auto &cq = ring.cq();
    const CommandTag tag = sq.push(compressReq(), 0);
    sq.ringDoorbell(0);
    CommandDescriptor d;
    ASSERT_TRUE(sq.consume(d));
    // Device posts the completion...
    CompletionRecord rec;
    rec.tag = tag;
    rec.type = CompletionType::Complete;
    ASSERT_TRUE(cq.post(rec, 10));
    // ...but the command is aborted before the driver reaps: the
    // slot is retired and its generation bumped.
    ASSERT_TRUE(sq.retire(tag));
    EXPECT_FALSE(sq.retire(tag));  // idempotent: already stale
    // The record still reaps (the ring protocol knows nothing of
    // aborts) but its tag no longer names a live generation — this
    // is exactly the check the driver applies before dispatching.
    CompletionRecord out;
    ASSERT_TRUE(cq.reap(out));
    EXPECT_FALSE(sq.validTag(out.tag));
    // A new command reusing the slot is distinguishable by tag.
    const CommandTag fresh = sq.push(compressReq(), 1);
    EXPECT_EQ(slotOf(fresh), slotOf(tag));
    EXPECT_NE(fresh, tag);
    EXPECT_TRUE(sq.validTag(fresh));
}

TEST(RingTest, CancelRemovesUnconsumedAndRetires)
{
    CommandRing ring(4);
    auto &sq = ring.sq();
    const CommandTag staged = sq.push(compressReq(), 0);
    const CommandTag visible = sq.push(compressReq(), 0);
    sq.ringDoorbell(0);
    const CommandTag late = sq.push(compressReq(), 0);
    // Abort one visible and one still-staged command: both vanish
    // from the device's view and free their slots immediately.
    EXPECT_TRUE(sq.cancel(visible));
    EXPECT_TRUE(sq.cancel(late));
    CommandDescriptor d;
    ASSERT_TRUE(sq.consume(d));
    EXPECT_EQ(d.req.id, staged);
    EXPECT_FALSE(sq.consume(d));
    // A consumed command cannot be cancelled (the device owns it).
    EXPECT_FALSE(sq.cancel(staged));
    EXPECT_EQ(sq.inFlight(), 1u);
}

/**
 * Integration: queue depth 8 with completions reaped out of
 * submission order must reassemble every page byte-identically.
 */
class RingIntegrationTest : public ::testing::Test
{
  protected:
    RingIntegrationTest()
        : cfg_(rankConfig()), map_(cfg_),
          mem_(cfg_.totalCapacityBytes()),
          refresh_("refresh", eq_, cfg_.rank.device, 1)
    {}

    static dram::MemSystemConfig
    rankConfig()
    {
        dram::MemSystemConfig cfg;
        cfg.rank.device = dram::ddr5Device32Gb();
        cfg.channels = 1;
        cfg.dimmsPerChannel = 1;
        cfg.ranksPerDimm = 1;
        return cfg;
    }

    void
    makeStack(std::uint32_t sq_depth, std::uint32_t cq_coalesce)
    {
        XfmDeviceConfig dcfg;
        dcfg.sqDepth = sq_depth;
        dcfg.cqCoalesce = cq_coalesce;
        device_.emplace("xfm", eq_, dcfg, map_, mem_, refresh_);
        driver_.emplace(*device_);
        refresh_.start();
    }

    std::uint64_t
    rowAddr(std::uint32_t row) const
    {
        dram::DramCoord c{};
        c.row = row;
        return map_.encode(c);
    }

    Bytes
    pagePattern(std::uint32_t seed) const
    {
        // Mildly compressible, unique per page: run lengths keyed
        // off the seed so every page compresses to a distinct size
        // and the engine completes them at different windows.
        Bytes page(4096);
        Rng rng(seed);
        std::size_t i = 0;
        while (i < page.size()) {
            const std::uint8_t v =
                static_cast<std::uint8_t>(rng.next());
            std::size_t run = 1 + rng.next() % (8 + seed % 64);
            run = std::min(run, page.size() - i);
            std::fill_n(page.begin() + i, run, v);
            i += run;
        }
        return page;
    }

    EventQueue eq_;
    dram::MemSystemConfig cfg_;
    dram::AddressMap map_;
    dram::PhysMem mem_;
    dram::RefreshController refresh_;
    std::optional<XfmDevice> device_;
    std::optional<xfmsys::XfmDriver> driver_;
};

TEST_F(RingIntegrationTest, OutOfOrderCompletionsReassembleBytes)
{
    constexpr std::uint32_t pages = 8;
    makeStack(pages, 2);
    ASSERT_TRUE(device_->ringMode());

    // Source rows scattered across the bank so refresh windows reach
    // them at different times — completions post out of order with
    // respect to submission.
    const std::uint32_t src_rows[pages] = {5,     40000, 200,  60000,
                                           12000, 3,     52000, 700};
    std::vector<Bytes> originals;
    for (std::uint32_t p = 0; p < pages; ++p) {
        originals.push_back(pagePattern(p + 1));
        mem_.write(rowAddr(src_rows[p]), originals.back());
    }

    std::map<nma::OffloadId, std::uint32_t> page_of;
    std::map<std::uint32_t, std::uint32_t> csize;
    std::vector<std::uint32_t> completion_order;
    driver_->onComplete([&](const OffloadCompletion &c) {
        const std::uint32_t p = page_of.at(c.id);
        completion_order.push_back(p);
        csize[p] = c.outputSize;
        driver_->commitWriteback(c.id, rowAddr(10000 + 16 * p));
    });

    // One tREFI batch of 8 submissions: a single doorbell covers all
    // of them (batched MMIO) and the SQ runs at full depth.
    for (std::uint32_t p = 0; p < pages; ++p) {
        const auto id = driver_->xfmCompress(rowAddr(src_rows[p]),
                                             4096, maxTick);
        ASSERT_NE(id, invalidOffloadId);
        page_of[id] = p;
    }
    eq_.run(cfg_.rank.device.retention);
    ASSERT_EQ(completion_order.size(), pages);
    EXPECT_FALSE(std::is_sorted(completion_order.begin(),
                                completion_order.end()))
        << "workload failed to exercise out-of-order completion";

    // Decompress every page back and compare byte-for-byte.
    page_of.clear();
    std::uint32_t restored = 0;
    driver_->onComplete([&](const OffloadCompletion &) {});
    driver_->onWriteback([&](OffloadId, Tick) { ++restored; });
    for (std::uint32_t p = 0; p < pages; ++p) {
        const auto id = driver_->xfmDecompress(
            rowAddr(10000 + 16 * p), csize.at(p),
            rowAddr(30000 + 16 * p), 4096, maxTick);
        ASSERT_NE(id, invalidOffloadId);
        page_of[id] = p;
    }
    eq_.run(2 * cfg_.rank.device.retention);
    ASSERT_EQ(restored, pages);
    for (std::uint32_t p = 0; p < pages; ++p) {
        EXPECT_EQ(mem_.read(rowAddr(30000 + 16 * p), 4096),
                  originals[p])
            << "page " << p << " corrupted through the ring";
    }

    // Ring bookkeeping closed out: every slot reclaimed, every
    // record reaped, nothing stale or stranded.
    const auto &rs = device_->ring()->stats();
    EXPECT_EQ(rs.sqEnqueues, 2u * pages);
    EXPECT_EQ(rs.consumed, 2u * pages);
    EXPECT_EQ(rs.cqPosts, rs.reaped);
    EXPECT_EQ(rs.staleRejected, 0u);
    EXPECT_EQ(device_->ring()->sq().inFlight(), 0u);
    // Batched doorbells: 8 same-tick submissions per phase cost far
    // fewer MMIO writes than one-per-command.
    EXPECT_LE(rs.doorbells, 4u);
}

TEST_F(RingIntegrationTest, DepthOneMatchesLegacyCounters)
{
    // sqDepth=1 (default) must not construct a ring at all: the
    // legacy synchronous path runs and no ring metrics exist.
    makeStack(1, 1);
    EXPECT_FALSE(device_->ringMode());
    EXPECT_EQ(device_->ring(), nullptr);
    mem_.write(rowAddr(5), Bytes(4096, 0x5a));
    std::optional<OffloadCompletion> done;
    driver_->onComplete(
        [&](const OffloadCompletion &c) { done = c; });
    ASSERT_NE(driver_->xfmCompress(rowAddr(5), 4096, maxTick),
              invalidOffloadId);
    eq_.run(cfg_.rank.device.tREFI());
    ASSERT_TRUE(done.has_value());

    obs::MetricRegistry reg;
    device_->registerMetrics(reg, "xfm");
    driver_->registerMetrics(reg, "xfm.driver");
    const obs::Snapshot snap = reg.snapshot();
    for (const auto &m : snap.leaves()) {
        EXPECT_EQ(m.name.find(".ring."), std::string::npos)
            << "ring metric leaked into depth-1 mode: " << m.name;
    }
}

TEST_F(RingIntegrationTest, AbortInFlightRejectsLateRecord)
{
    makeStack(8, 1);
    mem_.write(rowAddr(5), Bytes(4096, 0x11));
    // Row 5 is refreshed in window 0; abort after the doorbell flush
    // but before the window executes it.
    const auto id =
        driver_->xfmCompress(rowAddr(5), 4096, maxTick);
    ASSERT_NE(id, invalidOffloadId);
    bool completed = false;
    driver_->onComplete(
        [&](const OffloadCompletion &) { completed = true; });
    eq_.scheduleIn(1, [&] { driver_->abort(id); });
    eq_.run(cfg_.rank.device.retention);
    EXPECT_FALSE(completed);
    EXPECT_EQ(device_->ring()->sq().inFlight(), 0u);
}

} // namespace
} // namespace nma
} // namespace xfm
