/**
 * @file
 * Property-based tests: components are fuzzed against simple
 * reference models and their invariants checked over randomised
 * operation sequences and parameter sweeps.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/random.hh"
#include "dram/address_map.hh"
#include "dram/ecc.hh"
#include "dram/phys_mem.hh"
#include "sfm/zpool.hh"
#include "sim/event_queue.hh"
#include "xfm/multichannel.hh"

namespace xfm
{
namespace
{

// ------------------------------------------------ address map sweep

using Geometry = std::tuple<int /*device*/, std::uint32_t /*chan*/,
                            std::uint32_t /*dimms*/>;

class AddressMapSweep : public ::testing::TestWithParam<Geometry>
{
  protected:
    dram::MemSystemConfig
    config() const
    {
        const auto [device, channels, dimms] = GetParam();
        dram::MemSystemConfig cfg;
        switch (device) {
          case 0:
            cfg.rank.device = dram::ddr5Device8Gb();
            break;
          case 1:
            cfg.rank.device = dram::ddr5Device16Gb();
            break;
          default:
            cfg.rank.device = dram::ddr5Device32Gb();
            break;
        }
        cfg.channels = channels;
        cfg.dimmsPerChannel = dimms;
        return cfg;
    }
};

TEST_P(AddressMapSweep, DecodeEncodeBijective)
{
    const auto cfg = config();
    dram::AddressMap map(cfg);
    Rng rng(42);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t addr =
            rng.uniformInt(map.capacityBytes());
        const auto coord = map.decode(addr);
        ASSERT_EQ(map.encode(coord), addr);
        ASSERT_LT(coord.channel, cfg.channels);
        ASSERT_LT(coord.bank, map.banksPerRank());
        ASSERT_LT(coord.row, map.rowsPerBank());
    }
}

TEST_P(AddressMapSweep, DistinctCoordsForDistinctAddresses)
{
    const auto cfg = config();
    dram::AddressMap map(cfg);
    // Consecutive cache lines never collide in coordinates.
    for (std::uint64_t a = 0; a < 64 * 1024; a += 64) {
        const auto c1 = map.decode(a);
        const auto c2 = map.decode(a + 64);
        ASSERT_FALSE(c1 == c2);
    }
}

std::string
geometryName(const ::testing::TestParamInfo<Geometry> &info)
{
    static const char *names[] = {"8Gb", "16Gb", "32Gb"};
    return std::string(names[std::get<0>(info.param)]) + "_ch"
        + std::to_string(std::get<1>(info.param)) + "_dimm"
        + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddressMapSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u)),
    geometryName);

// ------------------------------------------------- event queue fuzz

TEST(PropertyEventQueue, MatchesReferenceOrdering)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue eq;
        struct Ref
        {
            Tick when;
            int priority;
            std::uint64_t seq;
        };
        std::vector<Ref> reference;
        std::vector<std::uint64_t> executed;
        std::uint64_t seq = 0;
        std::vector<EventId> cancellable;

        for (int i = 0; i < 300; ++i) {
            const Tick when = rng.uniformInt(1000);
            const int priority =
                static_cast<int>(rng.uniformInt(3)) * 10;
            const std::uint64_t id = seq++;
            const EventId ev = eq.schedule(
                when, [&executed, id] { executed.push_back(id); },
                priority);
            if (rng.chance(0.15)) {
                cancellable.push_back(ev);
            } else {
                reference.push_back({when, priority, id});
            }
        }
        for (EventId id : cancellable)
            EXPECT_TRUE(eq.deschedule(id));

        eq.run();
        std::stable_sort(reference.begin(), reference.end(),
                         [](const Ref &a, const Ref &b) {
            if (a.when != b.when)
                return a.when < b.when;
            if (a.priority != b.priority)
                return a.priority < b.priority;
            return a.seq < b.seq;
        });
        ASSERT_EQ(executed.size(), reference.size());
        for (std::size_t i = 0; i < executed.size(); ++i)
            ASSERT_EQ(executed[i], reference[i].seq) << "trial "
                                                     << trial;
    }
}

// ------------------------------------- same-offset allocator fuzz

TEST(PropertyAllocator, NoOverlapsAndExactAccounting)
{
    Rng rng(11);
    xfmsys::SameOffsetAllocator alloc(64 * 1024, 64);
    std::map<std::uint64_t, std::uint32_t> model;  // offset -> size

    for (int op = 0; op < 5000; ++op) {
        if (model.empty() || rng.chance(0.6)) {
            const auto want = static_cast<std::uint32_t>(
                1 + rng.uniformInt(3000));
            const auto off = alloc.allocate(want);
            if (off == xfmsys::SameOffsetAllocator::invalidOffset)
                continue;
            const auto size = alloc.slotSize(off);
            ASSERT_GE(size, want);
            ASSERT_EQ(off % 64, 0u);
            ASSERT_LE(off + size, alloc.regionBytes());
            // No overlap with any model slot.
            for (const auto &[moff, msize] : model)
                ASSERT_TRUE(off + size <= moff
                            || moff + msize <= off);
            model.emplace(off, size);
        } else {
            auto it = model.begin();
            std::advance(it, rng.uniformInt(model.size()));
            alloc.release(it->first);
            model.erase(it);
        }
        std::uint64_t used = 0;
        for (const auto &[moff, msize] : model)
            used += msize;
        ASSERT_EQ(alloc.usedBytes(), used);
        ASSERT_EQ(alloc.slotCount(), model.size());
    }
}

TEST(PropertyAllocator, RepackPreservesSlotSizes)
{
    Rng rng(13);
    xfmsys::SameOffsetAllocator alloc(64 * 1024, 64);
    std::vector<std::uint64_t> offsets;
    for (int i = 0; i < 40; ++i) {
        const auto off = alloc.allocate(
            static_cast<std::uint32_t>(64 + rng.uniformInt(2000)));
        if (off != xfmsys::SameOffsetAllocator::invalidOffset)
            offsets.push_back(off);
    }
    // Free a random half.
    std::uint64_t live = 0;
    std::vector<std::uint32_t> sizes;
    for (std::size_t i = 0; i < offsets.size(); ++i) {
        if (i % 2 == 0) {
            alloc.release(offsets[i]);
        } else {
            sizes.push_back(alloc.slotSize(offsets[i]));
            live += sizes.back();
        }
    }
    alloc.repack([](std::uint64_t, std::uint64_t, std::uint32_t) {});
    ASSERT_EQ(alloc.usedBytes(), live);
    // Slots are now densely packed from offset 0.
    ASSERT_EQ(alloc.highWaterMark(), live);
}

// --------------------------------------------------- zpool fuzz

TEST(PropertyZPool, FuzzAgainstShadowMap)
{
    dram::PhysMem mem(mib(32));
    sfm::ZPool pool(mem, 0, mib(1));
    Rng rng(17);
    std::map<sfm::ZHandle, Bytes> shadow;

    for (int op = 0; op < 4000; ++op) {
        const double dice = rng.uniformReal();
        if (shadow.empty() || dice < 0.55) {
            Bytes data(1 + rng.uniformInt(3500));
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.next());
            const auto h = pool.insert(data);
            if (h != sfm::invalidZHandle)
                shadow.emplace(h, std::move(data));
        } else if (dice < 0.9) {
            auto it = shadow.begin();
            std::advance(it, rng.uniformInt(shadow.size()));
            pool.erase(it->first);
            shadow.erase(it);
        } else {
            pool.compact();
        }
        // Periodically verify every live object's bytes.
        if (op % 500 == 499) {
            for (const auto &[h, data] : shadow)
                ASSERT_EQ(pool.fetch(h), data);
        }
        ASSERT_EQ(pool.objectCount(), shadow.size());
        ASSERT_LE(pool.usedBytes() + pool.fragmentedBytes(),
                  pool.capacityBytes());
    }
    for (const auto &[h, data] : shadow)
        EXPECT_EQ(pool.fetch(h), data);
}

// ------------------------------------------------- phys mem fuzz

TEST(PropertyPhysMem, FuzzAgainstShadowBuffer)
{
    constexpr std::uint64_t span = 256 * 1024;
    dram::PhysMem mem(span);
    Bytes shadow(span, 0);
    Rng rng(19);

    for (int op = 0; op < 3000; ++op) {
        const std::uint64_t addr = rng.uniformInt(span - 1);
        const std::size_t len =
            1 + rng.uniformInt(std::min<std::uint64_t>(
                span - addr, 9000) - 1);
        if (rng.chance(0.5)) {
            Bytes data(len);
            for (auto &b : data)
                b = static_cast<std::uint8_t>(rng.next());
            mem.write(addr, data);
            std::copy(data.begin(), data.end(),
                      shadow.begin() + static_cast<long>(addr));
        } else {
            const Bytes got = mem.read(addr, len);
            ASSERT_EQ(got,
                      Bytes(shadow.begin() + static_cast<long>(addr),
                            shadow.begin()
                                + static_cast<long>(addr + len)));
        }
    }
}

// ------------------------------------------------------ ecc fuzz

TEST(PropertyEcc, RandomSingleFlipsAlwaysRecovered)
{
    dram::PhysMem mem(mib(4));
    dram::EccStore store(mem, mib(2), mib(1));
    Rng rng(23);

    Bytes data(256);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    store.write(0, data);

    for (int trial = 0; trial < 300; ++trial) {
        const std::uint64_t word = rng.uniformInt(32) * 8;
        if (rng.chance(0.8))
            store.injectDataError(word, static_cast<unsigned>(
                                            rng.uniformInt(64)));
        else
            store.injectParityError(word, static_cast<unsigned>(
                                              rng.uniformInt(8)));
        ASSERT_EQ(store.read(0, 256), data) << "trial " << trial;
    }
    EXPECT_EQ(store.stats().uncorrectableErrors, 0u);
    EXPECT_EQ(store.stats().correctedErrors, 300u);
}

} // namespace
} // namespace xfm
