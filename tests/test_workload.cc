/**
 * @file
 * Tests for the workload generators and SPEC-like profiles.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/spec_model.hh"
#include "workload/trace_gen.hh"

namespace xfm
{
namespace workload
{
namespace
{

TEST(SpecModel, EightMemoryIntensiveProfiles)
{
    const auto mix = specMemoryIntensiveMix();
    EXPECT_EQ(mix.size(), 8u);
    std::set<std::string> names;
    for (const auto &app : mix) {
        names.insert(app.name);
        EXPECT_GT(app.ipcAlone, 0.0);
        EXPECT_LE(app.ipcAlone, 2.0);
        EXPECT_GT(app.llcApki, 0.0);
        EXPECT_GT(app.workingSetMiB, 0.0);
        EXPECT_GT(app.bandwidthGBps, 0.0);
        EXPECT_GT(app.memStallFraction, 0.0);
        EXPECT_LT(app.memStallFraction, 1.0);
    }
    EXPECT_EQ(names.size(), 8u);
}

TEST(SwapTrace, EventRateMatchesPromotionRate)
{
    SwapTraceConfig cfg;
    cfg.farCapacityGB = 512.0;
    cfg.promotionRate = 0.5;
    SwapTraceGenerator gen(cfg);
    // EQ1: 256 GB/min promoted = ~1.09 M pages/s in, matched by the
    // same rate out.
    const double pages_per_sec = 256.0 * 1e9 / 4096.0 / 60.0;
    EXPECT_NEAR(gen.eventsPerSecond(), 2.0 * pages_per_sec,
                pages_per_sec * 0.01);
}

TEST(SwapTrace, EventsAreTimeOrderedAndPaired)
{
    SwapTraceConfig cfg;
    cfg.farCapacityGB = 1.0;
    cfg.promotionRate = 0.5;
    SwapTraceGenerator gen(cfg);
    Tick prev = 0;
    int ins = 0;
    int outs = 0;
    for (int i = 0; i < 2000; ++i) {
        const SwapEvent e = gen.next();
        EXPECT_GE(e.when, prev);
        prev = e.when;
        if (e.kind == SwapKind::SwapIn)
            ++ins;
        else
            ++outs;
        EXPECT_LT(e.page, gen.farPages());
    }
    EXPECT_EQ(ins, outs);  // steady state: every in pairs with out
}

TEST(SwapTrace, MeasuredRateMatchesConfig)
{
    SwapTraceConfig cfg;
    cfg.farCapacityGB = 4.0;
    cfg.promotionRate = 1.0;
    SwapTraceGenerator gen(cfg);
    const int events = 20000;
    Tick last = 0;
    for (int i = 0; i < events; ++i)
        last = gen.next().when;
    const double measured =
        static_cast<double>(events) / ticksToSec(last);
    EXPECT_NEAR(measured, gen.eventsPerSecond(),
                gen.eventsPerSecond() * 0.1);
}

TEST(SwapTrace, PredictabilityControlsPrefetchableShare)
{
    SwapTraceConfig cfg;
    cfg.farCapacityGB = 1.0;
    cfg.predictability = 0.75;
    SwapTraceGenerator gen(cfg);
    int prefetchable = 0;
    int swap_ins = 0;
    for (int i = 0; i < 20000; ++i) {
        const SwapEvent e = gen.next();
        if (e.kind == SwapKind::SwapIn) {
            ++swap_ins;
            if (e.prefetchable)
                ++prefetchable;
        }
    }
    EXPECT_NEAR(static_cast<double>(prefetchable) / swap_ins, 0.75,
                0.03);
}

TEST(SwapTrace, ZipfSkewsPagePopularity)
{
    SwapTraceConfig cfg;
    cfg.farCapacityGB = 1.0;  // 262144 pages
    cfg.zipfTheta = 0.99;
    SwapTraceGenerator gen(cfg);
    std::uint64_t low = 0;
    std::uint64_t total = 0;
    for (int i = 0; i < 20000; ++i) {
        const SwapEvent e = gen.next();
        if (e.kind != SwapKind::SwapIn)
            continue;
        ++total;
        if (e.page < gen.farPages() / 10)
            ++low;
    }
    EXPECT_GT(static_cast<double>(low) / total, 0.4);
}

TEST(SwapTrace, Deterministic)
{
    SwapTraceConfig cfg;
    SwapTraceGenerator a(cfg);
    SwapTraceGenerator b(cfg);
    for (int i = 0; i < 100; ++i) {
        const SwapEvent ea = a.next();
        const SwapEvent eb = b.next();
        EXPECT_EQ(ea.when, eb.when);
        EXPECT_EQ(ea.page, eb.page);
        EXPECT_EQ(static_cast<int>(ea.kind),
                  static_cast<int>(eb.kind));
    }
}

TEST(WebFrontend, RequestRateHonoured)
{
    WebFrontendConfig cfg;
    cfg.requestsPerSecond = 1000.0;
    WebFrontendGenerator gen(cfg);
    ObjectAccess last{};
    for (int i = 0; i < 5000; ++i)
        last = gen.next();
    EXPECT_NEAR(5000.0 / ticksToSec(last.when), 1000.0, 10.0);
}

TEST(WebFrontend, PopularityDriftsAcrossEpochs)
{
    WebFrontendConfig cfg;
    cfg.objects = 10000;
    cfg.requestsPerSecond = 100000.0;
    cfg.epoch = seconds(1.0);
    WebFrontendGenerator gen(cfg);

    auto top_object = [&](int samples) {
        std::map<std::uint64_t, int> hist;
        for (int i = 0; i < samples; ++i)
            ++hist[gen.next().object];
        std::uint64_t best = 0;
        int best_count = -1;
        for (auto [obj, count] : hist) {
            if (count > best_count) {
                best = obj;
                best_count = count;
            }
        }
        return best;
    };

    const auto first = top_object(80000);   // epoch 0
    const auto second = top_object(80000);  // later epoch (drifted)
    EXPECT_NE(first, second);
}

TEST(WebFrontend, ObjectsInRange)
{
    WebFrontendConfig cfg;
    cfg.objects = 100;
    WebFrontendGenerator gen(cfg);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(gen.next().object, 100u);
}

} // namespace
} // namespace workload
} // namespace xfm

#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "workload/trace_io.hh"

namespace xfm
{
namespace workload
{
namespace
{

TEST(TraceIo, WriteReadRoundTrip)
{
    SwapTraceConfig cfg;
    cfg.farCapacityGB = 1.0;
    SwapTraceGenerator gen(cfg);
    const auto events = captureTrace(gen, 500);

    std::stringstream ss;
    writeTrace(ss, events);
    const auto loaded = readTrace(ss);
    ASSERT_EQ(loaded.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(loaded[i].when, events[i].when);
        EXPECT_EQ(static_cast<int>(loaded[i].kind),
                  static_cast<int>(events[i].kind));
        EXPECT_EQ(loaded[i].page, events[i].page);
        EXPECT_EQ(loaded[i].prefetchable, events[i].prefetchable);
    }
}

TEST(TraceIo, RejectsMalformedLine)
{
    std::stringstream ss("12 SIDEWAYS 3 0\n");
    EXPECT_THROW(readTrace(ss), FatalError);
}

TEST(TraceIo, RejectsNonMonotonicTimestamps)
{
    std::stringstream ss("100 IN 1 0\n50 OUT 2 0\n");
    EXPECT_THROW(readTrace(ss), FatalError);
}

TEST(TraceIo, SkipsCommentsAndBlankLines)
{
    std::stringstream ss("# header\n\n10 IN 5 1\n# tail\n20 OUT 6 0\n");
    const auto events = readTrace(ss);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].page, 5u);
    EXPECT_TRUE(events[0].prefetchable);
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    std::stringstream ss;
    writeTrace(ss, {});
    const auto loaded = readTrace(ss);
    EXPECT_TRUE(loaded.empty());
    const auto s = summarise(loaded);
    EXPECT_EQ(s.events, 0u);
    EXPECT_EQ(s.duration, 0u);
}

TEST(TraceIo, MaxWidthRecordsRoundTrip)
{
    // Records at the extremes of the field types must survive a
    // round trip without truncation.
    std::vector<SwapEvent> events(2);
    events[0].when = 0;
    events[0].kind = SwapKind::SwapOut;
    events[0].page = 0;
    events[0].prefetchable = false;
    events[1].when = std::numeric_limits<Tick>::max();
    events[1].kind = SwapKind::SwapIn;
    events[1].page = std::numeric_limits<std::uint64_t>::max();
    events[1].prefetchable = true;

    std::stringstream ss;
    writeTrace(ss, events);
    const auto loaded = readTrace(ss);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[1].when, std::numeric_limits<Tick>::max());
    EXPECT_EQ(loaded[1].page,
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_TRUE(loaded[1].prefetchable);
}

TEST(TraceIo, ToleratesCrlfAndWhitespaceLines)
{
    // Traces edited on Windows or hand-padded used to abort on the
    // trailing '\r' (parsed into the prefetchable field) and on
    // whitespace-only lines.
    std::stringstream ss("# header\r\n10 IN 5 1\r\n   \t\n20 OUT 6 0\r\n");
    const auto events = readTrace(ss);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].page, 5u);
    EXPECT_TRUE(events[0].prefetchable);
    EXPECT_EQ(events[1].page, 6u);
}

TEST(TraceIo, RejectsTruncatedFinalRecord)
{
    // A record cut off mid-line (e.g. a partial flush before a
    // crash) must be reported, not silently dropped or misparsed.
    std::stringstream ss("10 IN 5 1\n20 OUT");
    EXPECT_THROW(readTrace(ss), FatalError);
}

TEST(TraceIo, SummaryMatchesConfiguredRate)
{
    SwapTraceConfig cfg;
    cfg.farCapacityGB = 8.0;
    cfg.promotionRate = 0.5;
    SwapTraceGenerator gen(cfg);
    const auto events = captureTrace(gen, 20000);
    const auto s = summarise(events);
    EXPECT_EQ(s.events, 20000u);
    EXPECT_EQ(s.swapIns, s.swapOuts);
    // EQ1: 8 GB x 50%/min = 4 GB promoted per minute.
    EXPECT_NEAR(s.gbPromotedPerMin(), 4.0, 0.4);
}

} // namespace
} // namespace workload
} // namespace xfm

#include "workload/promotion_tracker.hh"

namespace xfm
{
namespace workload
{
namespace
{

TEST(PromotionTracker, SteadyRateMatchesDefinition)
{
    // 1 GB far memory; promote 256 KiB every 60 ms for a minute:
    // 1000 promotions x 262144 B = ~0.26 GB/min => ~24.4% rate.
    PromotionTracker t(1000000000ull);
    for (int i = 0; i < 1000; ++i)
        t.recordPromotion(milliseconds(60.0 * i), 262144);
    const double r = t.rate(seconds(60.0));
    EXPECT_NEAR(r, 0.262, 0.01);
}

TEST(PromotionTracker, WindowForgetsOldEvents)
{
    PromotionTracker t(1000000000ull, seconds(60.0));
    t.recordPromotion(0, 500000000);  // half the capacity at t=0
    EXPECT_NEAR(t.rate(seconds(1.0)), 0.5, 1e-9);
    // After the window passes the burst is forgotten.
    EXPECT_NEAR(t.rate(seconds(120.0)), 0.0, 1e-12);
    EXPECT_EQ(t.lifetimeBytes(), 500000000u);
}

TEST(PromotionTracker, PaperExampleTwentyPercent)
{
    // Sec. 2.1: "A 20% promotion rate for a 512GB far memory implies
    // that 102GB of the far memory is accessed during a 60-second
    // interval."
    PromotionTracker t(512ull * 1000000000ull);
    t.recordPromotion(seconds(30.0), 102ull * 1000000000ull + 400000000ull);
    EXPECT_NEAR(t.rate(seconds(59.0)), 0.2, 0.001);
}

} // namespace
} // namespace workload
} // namespace xfm
