/**
 * @file
 * Observability-layer tests: registry registration rules, snapshot
 * export round-trips, delta/reset semantics, tracer ring-buffer
 * accounting, and the Histogram saturation regression (out-of-range
 * samples must participate in percentile rank math and surface as
 * underflow/overflow counts).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"

namespace xfm
{
namespace obs
{
namespace
{

// ---------------------------------------------------------- registry

TEST(Registry, NameCollisionRejected)
{
    MetricRegistry r;
    std::uint64_t a = 0;
    double g = 0.0;
    r.counter("x.count", &a);
    EXPECT_THROW(r.counter("x.count", &a), FatalError);
    // Collisions are rejected across kinds, not just within one.
    EXPECT_THROW(r.gauge("x.count", &g), FatalError);
    EXPECT_THROW(r.derived("x.count", [] { return 0.0; }),
                 FatalError);
    EXPECT_TRUE(r.contains("x.count"));
    EXPECT_EQ(r.size(), 1u);
}

TEST(Registry, SnapshotReadsLiveValues)
{
    MetricRegistry r;
    std::uint64_t c = 0;
    double g = 1.5;
    r.counter("a.ops", &c);
    r.gauge("a.level", &g);
    r.derived("a.twice", [&] { return g * 2.0; });

    c = 41;
    const Snapshot s1 = r.snapshot();
    EXPECT_EQ(s1.u64("a.ops"), 41u);
    EXPECT_DOUBLE_EQ(s1.value("a.level"), 1.5);
    EXPECT_DOUBLE_EQ(s1.value("a.twice"), 3.0);

    // The registry holds pointers, not copies: later snapshots see
    // later values, earlier snapshots stay frozen.
    c = 100;
    g = 2.0;
    EXPECT_EQ(s1.u64("a.ops"), 41u);
    EXPECT_EQ(r.snapshot().u64("a.ops"), 100u);
    EXPECT_DOUBLE_EQ(r.snapshot().value("a.twice"), 4.0);
}

TEST(Registry, DeltaSubtractsMonotoneOnly)
{
    MetricRegistry r;
    std::uint64_t c = 10;
    double g = 5.0;
    r.counter("n.ops", &c);
    r.gauge("n.level", &g);

    const Snapshot base = r.snapshot();
    c = 25;
    g = 7.0;
    const Snapshot d = r.snapshot().delta(base);
    EXPECT_EQ(d.u64("n.ops"), 15u);         // monotone: subtracted
    EXPECT_DOUBLE_EQ(d.value("n.level"), 7.0);  // level: passes through
}

TEST(Registry, ResetZeroesOwnedStorage)
{
    MetricRegistry r;
    std::uint64_t c = 9;
    double g = 3.0;
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(5.0);
    r.counter("z.ops", &c);
    r.gauge("z.level", &g);
    r.histogram("z.hist", &h);

    r.reset();
    EXPECT_EQ(c, 0u);
    EXPECT_DOUBLE_EQ(g, 0.0);
    EXPECT_EQ(h.total(), 0u);
}

TEST(Registry, MissingLeafThrows)
{
    MetricRegistry r;
    const Snapshot s = r.snapshot();
    EXPECT_FALSE(s.has("no.such.metric"));
    EXPECT_THROW(s.u64("no.such.metric"), FatalError);
    EXPECT_THROW(s.value("no.such.metric"), FatalError);
}

// -------------------------------------------------- JSON round-trip

TEST(Registry, JsonSnapshotParsesBack)
{
    MetricRegistry r;
    std::uint64_t c = 12345;
    double g = 0.25;
    stats::Average avg;
    avg.sample(2.0);
    avg.sample(4.0);
    r.counter("rt.ops", &c, "operations");
    r.gauge("rt.level", &g);
    r.average("rt.lat", &avg);

    const std::string text = r.toJson();
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(text, v, error)) << error;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.at("schema").str(), snapshotSchema);
    const json::Object &metrics = v.at("metrics").object();
    ASSERT_TRUE(v.at("metrics").isObject());

    // Every snapshot leaf appears, with the exact value.
    const Snapshot snap = r.snapshot();
    EXPECT_EQ(metrics.size(), snap.leaves().size());
    ASSERT_TRUE(v.at("metrics").has("rt.ops"));
    EXPECT_TRUE(metrics.at("rt.ops").isIntegral());
    EXPECT_EQ(metrics.at("rt.ops").integer(), 12345);
    EXPECT_DOUBLE_EQ(metrics.at("rt.level").number(), 0.25);
    EXPECT_DOUBLE_EQ(metrics.at("rt.lat.mean").number(), 3.0);
    EXPECT_EQ(metrics.at("rt.lat.count").integer(), 2);
}

TEST(Registry, JsonIsByteStableAcrossEquivalentBuilds)
{
    // Two registries built in different registration orders must
    // export identical bytes: export order is name-sorted, not
    // insertion-ordered.
    std::uint64_t a = 7, b = 8;
    MetricRegistry r1, r2;
    r1.counter("m.alpha", &a);
    r1.counter("m.beta", &b);
    r2.counter("m.beta", &b);
    r2.counter("m.alpha", &a);
    EXPECT_EQ(r1.toJson(), r2.toJson());
    EXPECT_EQ(r1.renderText(), r2.renderText());
}

// ----------------------------------------------------------- tracer

TEST(Tracer, RingOverflowAccounting)
{
    Tracer t(4);
    EXPECT_EQ(t.capacity(), 4u);
    for (int i = 0; i < 10; ++i) {
        const std::uint64_t req = t.begin();
        t.point(req, Stage::Complete, Tick(i));
    }
    EXPECT_EQ(t.requestsBegun(), 10u);
    EXPECT_EQ(t.recorded(), 10u);   // all events counted...
    EXPECT_EQ(t.size(), 4u);        // ...but only capacity retained
    EXPECT_EQ(t.dropped(), 6u);     // and the evictions accounted

    // The survivors are the most recent four, oldest first.
    const auto events = t.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().req, 7u);
    EXPECT_EQ(events.back().req, 10u);
    EXPECT_EQ(events.front().start, Tick(6));
}

TEST(Tracer, JsonLinesParseBack)
{
    Tracer t(16);
    const std::uint64_t req = t.begin();
    t.record(req, Stage::Engine, 100, 250, 1);
    t.point(req, Stage::Complete, 250, outcomeOffloaded);

    const std::string lines = t.toJsonLines();
    std::size_t seen = 0;
    std::size_t pos = 0;
    while (pos < lines.size()) {
        const std::size_t nl = lines.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        const std::string line = lines.substr(pos, nl - pos);
        pos = nl + 1;
        json::Value v;
        std::string error;
        ASSERT_TRUE(json::parse(line, v, error)) << error;
        EXPECT_EQ(v.at("req").integer(), 1);
        EXPECT_GE(v.at("end").integer(), v.at("start").integer());
        EXPECT_FALSE(v.at("stage").str().empty());
        ++seen;
    }
    EXPECT_EQ(seen, 2u);
}

TEST(Tracer, ClearIsFullReset)
{
    Tracer t(8);
    const std::uint64_t first = t.begin();
    t.point(first, Stage::Complete, 1);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    // clear() restarts the id sequence too: a same-seed rerun after
    // a clear reproduces byte-identical trace output.
    EXPECT_EQ(t.begin(), first);
}

// ------------------------------------------- histogram saturation

TEST(Histogram, SaturatingSamplesCountTowardPercentiles)
{
    // Regression: out-of-range samples must participate in the rank
    // computation. 90 underflow + 10 in-range: p50 lands in the
    // underflow mass and must clamp to lo, not report an in-range
    // bucket as if the underflow never happened.
    stats::Histogram h(100.0, 200.0, 10);
    for (int i = 0; i < 90; ++i)
        h.sample(-5.0);
    for (int i = 0; i < 10; ++i)
        h.sample(150.0);
    EXPECT_EQ(h.underflow(), 90u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.total(), 100u);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 100.0);  // clamped to lo
    EXPECT_GT(h.percentile(0.99), 100.0);         // tail is in-range

    // Mirror image: overflow mass must pull high percentiles to hi.
    stats::Histogram o(100.0, 200.0, 10);
    for (int i = 0; i < 10; ++i)
        o.sample(150.0);
    for (int i = 0; i < 90; ++i)
        o.sample(1e9);
    EXPECT_EQ(o.overflow(), 90u);
    EXPECT_DOUBLE_EQ(o.percentile(0.99), 200.0);  // clamped to hi
    EXPECT_DOUBLE_EQ(o.percentile(0.50), 200.0);  // rank inside overflow
}

TEST(Histogram, SaturationCountsExposedInSnapshot)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(5.0);
    h.sample(99.0);

    MetricRegistry r;
    r.histogram("lat", &h);
    const Snapshot s = r.snapshot();
    EXPECT_EQ(s.u64("lat.count"), 3u);
    EXPECT_EQ(s.u64("lat.underflow"), 1u);
    EXPECT_EQ(s.u64("lat.overflow"), 1u);
    // And they reach the JSON export under the same names.
    const std::string text = r.toJson();
    json::Value v;
    std::string error;
    ASSERT_TRUE(json::parse(text, v, error)) << error;
    EXPECT_EQ(v.at("metrics").at("lat.underflow").integer(), 1);
    EXPECT_EQ(v.at("metrics").at("lat.overflow").integer(), 1);
}

} // namespace
} // namespace obs
} // namespace xfm
