/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrdersByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); },
                EventQueue::defaultPriority);
    eq.schedule(5, [&] { order.push_back(1); },
                EventQueue::refreshPriority);
    eq.schedule(5, [&] { order.push_back(3); },
                EventQueue::defaultPriority);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&eq, &seen] {
        eq.scheduleIn(50, [&eq, &seen] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleCancelsPending)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));  // double cancel fails
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EmptyAndPendingAccounting)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EventId a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ZeroDelaySelfScheduleAdvances)
{
    EventQueue eq;
    int runs = 0;
    std::function<void()> f = [&] {
        if (++runs < 3)
            eq.scheduleIn(0, f);
    };
    eq.schedule(7, f);
    eq.run();
    EXPECT_EQ(runs, 3);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, SlabRecyclesSlots)
{
    // Steady-state schedule/execute churn must not grow the slab:
    // after warm-up, slots are recycled from the free list.
    EventQueue eq;
    int runs = 0;
    std::function<void()> f = [&] {
        if (++runs < 10000)
            eq.scheduleIn(1, f);
    };
    eq.schedule(0, f);
    eq.run();
    EXPECT_EQ(runs, 10000);
    // One live event at a time (plus transient overlap): far fewer
    // slots than events executed.
    EXPECT_LE(eq.slots(), 256u);
}

TEST(EventQueue, StaleIdAfterRecycleDoesNotCancel)
{
    // A slot freed by execution may be recycled for a new event;
    // the old id's generation must no longer match, so a late
    // deschedule neither succeeds nor kills the new occupant.
    EventQueue eq;
    const EventId old_id = eq.schedule(1, [] {});
    eq.run();  // executes and frees the slot
    bool ran = false;
    // Recycle until some new event reuses old_id's slot.
    std::vector<EventId> ids;
    for (int i = 0; i < 300; ++i)
        ids.push_back(eq.schedule(10, [&] { ran = true; }));
    EXPECT_FALSE(eq.deschedule(old_id));
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CancelledEntriesAreCompacted)
{
    // Satellite fix: descheduled entries used to ride the heap until
    // their tick. Mass-cancelling must trigger the sweep instead of
    // retaining thousands of tombstones.
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 2000; ++i)
        ids.push_back(eq.schedule(1000000 + i, [] {}));
    for (const auto id : ids)
        EXPECT_TRUE(eq.deschedule(id));
    EXPECT_GT(eq.compactions(), 0u);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, CompactionPreservesOrdering)
{
    EventQueue eq;
    std::vector<int> order;
    // Interleave keepers with a larger population of cancels so the
    // sweep fires while keepers are still pending.
    std::vector<EventId> cancels;
    for (int i = 0; i < 512; ++i)
        cancels.push_back(eq.schedule(10 + i, [] {}));
    eq.schedule(600, [&] { order.push_back(2); },
                EventQueue::defaultPriority);
    eq.schedule(600, [&] { order.push_back(1); },
                EventQueue::refreshPriority);
    eq.schedule(550, [&] { order.push_back(0); });
    eq.schedule(700, [&] { order.push_back(3); });
    for (const auto id : cancels)
        eq.deschedule(id);
    EXPECT_GT(eq.compactions(), 0u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SelfDescheduleDuringCallbackIsHarmless)
{
    // The executing event's slot is released before its callback
    // runs (matching the old erase-before-call): cancelling
    // yourself mid-callback reports false and corrupts nothing.
    EventQueue eq;
    EventId self = 0;
    bool saw_false = false;
    self = eq.schedule(5, [&] {
        saw_false = !eq.deschedule(self);
        eq.scheduleIn(1, [] {});
    });
    eq.run();
    EXPECT_TRUE(saw_false);
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueue, LargeCallbacksFallBackToHeap)
{
    // Callbacks above the SBO threshold take the heap path; both
    // must behave identically.
    EventQueue eq;
    std::array<std::uint64_t, 64> big{};  // 512 B, above inline size
    big[0] = 41;
    std::uint64_t seen = 0;
    eq.schedule(1, [big, &seen] { seen = big[0] + 1; });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(SimObject, ExposesNameAndTime)
{
    EventQueue eq;
    SimObject obj("system.dram", eq);
    EXPECT_EQ(obj.name(), "system.dram");
    eq.schedule(42, [] {});
    eq.run();
    EXPECT_EQ(obj.curTick(), 42u);
}

} // namespace
} // namespace xfm
