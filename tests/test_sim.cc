/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrdersByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); },
                EventQueue::defaultPriority);
    eq.schedule(5, [&] { order.push_back(1); },
                EventQueue::refreshPriority);
    eq.schedule(5, [&] { order.push_back(3); },
                EventQueue::defaultPriority);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&eq, &seen] {
        eq.scheduleIn(50, [&eq, &seen] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleCancelsPending)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));  // double cancel fails
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EmptyAndPendingAccounting)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EventId a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ZeroDelaySelfScheduleAdvances)
{
    EventQueue eq;
    int runs = 0;
    std::function<void()> f = [&] {
        if (++runs < 3)
            eq.scheduleIn(0, f);
    };
    eq.schedule(7, f);
    eq.run();
    EXPECT_EQ(runs, 3);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, SlabRecyclesSlots)
{
    // Steady-state schedule/execute churn must not grow the slab:
    // after warm-up, slots are recycled from the free list.
    EventQueue eq;
    int runs = 0;
    std::function<void()> f = [&] {
        if (++runs < 10000)
            eq.scheduleIn(1, f);
    };
    eq.schedule(0, f);
    eq.run();
    EXPECT_EQ(runs, 10000);
    // One live event at a time (plus transient overlap): far fewer
    // slots than events executed.
    EXPECT_LE(eq.slots(), 256u);
}

TEST(EventQueue, StaleIdAfterRecycleDoesNotCancel)
{
    // A slot freed by execution may be recycled for a new event;
    // the old id's generation must no longer match, so a late
    // deschedule neither succeeds nor kills the new occupant.
    EventQueue eq;
    const EventId old_id = eq.schedule(1, [] {});
    eq.run();  // executes and frees the slot
    bool ran = false;
    // Recycle until some new event reuses old_id's slot.
    std::vector<EventId> ids;
    for (int i = 0; i < 300; ++i)
        ids.push_back(eq.schedule(10, [&] { ran = true; }));
    EXPECT_FALSE(eq.deschedule(old_id));
    eq.run();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CancelledEntriesAreCompacted)
{
    // Satellite fix: descheduled entries used to ride the heap until
    // their tick. Mass-cancelling must trigger the sweep instead of
    // retaining thousands of tombstones.
    EventQueue eq;
    std::vector<EventId> ids;
    for (int i = 0; i < 2000; ++i)
        ids.push_back(eq.schedule(1000000 + i, [] {}));
    for (const auto id : ids)
        EXPECT_TRUE(eq.deschedule(id));
    EXPECT_GT(eq.compactions(), 0u);
    EXPECT_TRUE(eq.empty());
    eq.run();
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, CompactionPreservesOrdering)
{
    EventQueue eq;
    std::vector<int> order;
    // Interleave keepers with a larger population of cancels so the
    // sweep fires while keepers are still pending.
    std::vector<EventId> cancels;
    for (int i = 0; i < 512; ++i)
        cancels.push_back(eq.schedule(10 + i, [] {}));
    eq.schedule(600, [&] { order.push_back(2); },
                EventQueue::defaultPriority);
    eq.schedule(600, [&] { order.push_back(1); },
                EventQueue::refreshPriority);
    eq.schedule(550, [&] { order.push_back(0); });
    eq.schedule(700, [&] { order.push_back(3); });
    for (const auto id : cancels)
        eq.deschedule(id);
    EXPECT_GT(eq.compactions(), 0u);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SelfDescheduleDuringCallbackIsHarmless)
{
    // The executing event's slot is released before its callback
    // runs (matching the old erase-before-call): cancelling
    // yourself mid-callback reports false and corrupts nothing.
    EventQueue eq;
    EventId self = 0;
    bool saw_false = false;
    self = eq.schedule(5, [&] {
        saw_false = !eq.deschedule(self);
        eq.scheduleIn(1, [] {});
    });
    eq.run();
    EXPECT_TRUE(saw_false);
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueue, LargeCallbacksFallBackToHeap)
{
    // Callbacks above the SBO threshold take the heap path; both
    // must behave identically.
    EventQueue eq;
    std::array<std::uint64_t, 64> big{};  // 512 B, above inline size
    big[0] = 41;
    std::uint64_t seen = 0;
    eq.schedule(1, [big, &seen] { seen = big[0] + 1; });
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(SimObject, ExposesNameAndTime)
{
    EventQueue eq;
    SimObject obj("system.dram", eq);
    EXPECT_EQ(obj.name(), "system.dram");
    eq.schedule(42, [] {});
    eq.run();
    EXPECT_EQ(obj.curTick(), 42u);
}

// ---------------------------------------------------------------
// Sharded event core (DESIGN.md §13).
// ---------------------------------------------------------------

EventQueueConfig
shardedConfig(std::size_t shards, std::size_t workers = 1)
{
    EventQueueConfig cfg;
    cfg.shards = shards;
    cfg.windowTicks = 1000;  // small windows: many barriers
    cfg.drainWorkers = workers;
    cfg.parallelStageMin = 0;  // always exercise the pool path
    return cfg;
}

TEST(ShardedEventQueue, ShardOfMapsDomainsRoundRobin)
{
    EventQueue mono;
    EXPECT_EQ(mono.shards(), 1u);
    EXPECT_EQ(mono.shardOf(0), 0u);
    EXPECT_EQ(mono.shardOf(17), 0u);

    EventQueue eq(shardedConfig(4));
    EXPECT_EQ(eq.shards(), 4u);
    EXPECT_EQ(eq.shardOf(EventQueue::globalDomain), 0u);
    EXPECT_EQ(eq.shardOf(1), 1u);
    EXPECT_EQ(eq.shardOf(2), 2u);
    EXPECT_EQ(eq.shardOf(3), 3u);
    EXPECT_EQ(eq.shardOf(4), 1u);  // wraps over the non-global shards
    EXPECT_EQ(eq.shardOf(5), 2u);
}

TEST(ShardedEventQueue, CrossShardOrderIsGlobal)
{
    // Events on different domains at interleaved ticks must fire in
    // global (tick, priority, seq) order, never shard-batched.
    EventQueue eq(shardedConfig(4));
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); },
                EventQueue::defaultPriority, 1);
    eq.schedule(10, [&] { order.push_back(1); },
                EventQueue::defaultPriority, 2);
    eq.schedule(20, [&] { order.push_back(2); },
                EventQueue::defaultPriority, 3);
    eq.schedule(10, [&] { order.push_back(10); },
                EventQueue::refreshPriority, EventQueue::globalDomain);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{10, 1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(ShardedEventQueue, MonolithicBuildsNoBarrier)
{
    EventQueue eq;  // shards = 1
    for (int i = 0; i < 64; ++i)
        eq.schedule(static_cast<Tick>(i) * 500, [] {});
    eq.run();
    EXPECT_EQ(eq.barriers(), 0u);
    EXPECT_EQ(eq.stagedEvents(), 0u);
}

TEST(ShardedEventQueue, WindowBarriersAdvanceMonotonically)
{
    EventQueue eq(shardedConfig(2));
    for (int i = 0; i < 8; ++i)
        eq.schedule(static_cast<Tick>(i) * 2500, [] {}, 0,
                    1 + (i % 2));
    eq.run();
    EXPECT_GT(eq.barriers(), 0u);
    EXPECT_EQ(eq.executed(), 8u);
}

TEST(ShardedEventQueue, StagedEntryCanBeDescheduled)
{
    // A callback cancels a later same-window event on another
    // shard; staging must keep entries live (deschedulable).
    EventQueue eq(shardedConfig(2));
    bool fired = false;
    EventId victim =
        eq.schedule(500, [&] { fired = true; }, 0, 1);
    eq.schedule(100, [&] { EXPECT_TRUE(eq.deschedule(victim)); },
                0, EventQueue::globalDomain);
    eq.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_EQ(eq.descheduled(), 1u);
}

// --- Per-shard tombstone accounting (the PR 7 fix) --------------

TEST(ShardedEventQueue, TombstonesChargeTheOwningShardOnly)
{
    // Cancels in one domain must only ever compact that shard;
    // before the fix a tombstone could be charged to the wrong
    // shard's heap count and inflate its compaction trigger with
    // nodes the sweep cannot find.
    EventQueue eq(shardedConfig(3));
    std::vector<EventId> ids;
    for (int i = 0; i < 256; ++i)
        ids.push_back(eq.schedule(1000000 + i, [] {}, 0, 1));
    for (int i = 0; i < 64; ++i)
        eq.schedule(1000000 + i, [] {}, 0, 2);
    const std::size_t victim_shard = eq.shardOf(1);
    const std::size_t other_shard = eq.shardOf(2);
    for (std::size_t i = 0; i < 200; ++i)
        ASSERT_TRUE(eq.deschedule(ids[i]));
    EXPECT_GT(eq.shardCompactions(victim_shard), 0u);
    EXPECT_EQ(eq.shardCompactions(other_shard), 0u);
    EXPECT_EQ(eq.shardCancelled(other_shard), 0u);
    eq.run();
    EXPECT_EQ(eq.executed(), 256u - 200u + 64u);
    for (std::size_t s = 0; s < eq.shards(); ++s)
        EXPECT_EQ(eq.shardCancelled(s), 0u) << "shard " << s;
}

TEST(ShardedEventQueue, StagedCancelDoesNotInflateHeapCompaction)
{
    // Cancelling an already-staged entry must charge the staged
    // tombstone bucket: the heap sweep can never reclaim it, so
    // charging it to the heap count would push the shard toward
    // compactions that find nothing.
    // Two drain workers so the shard heaps really are staged by
    // the pool before the canceller runs (workers = 1 builds no
    // pool and the cancels would take the ordinary heap path).
    EventQueue eq(shardedConfig(2, /*workers=*/2));
    std::vector<EventId> victims;
    for (int i = 0; i < 128; ++i)
        victims.push_back(
            eq.schedule(900, [] {}, EventQueue::defaultPriority, 1));
    eq.schedule(100, [&] {
        // Same window as the victims: they are staged by now.
        for (EventId id : victims)
            EXPECT_TRUE(eq.deschedule(id));
    }, 0, EventQueue::globalDomain);
    const std::uint64_t before = eq.compactions();
    eq.run();
    EXPECT_EQ(eq.compactions(), before);
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_EQ(eq.descheduled(), 128u);
    for (std::size_t s = 0; s < eq.shards(); ++s)
        EXPECT_EQ(eq.shardCancelled(s), 0u) << "shard " << s;
}

// --- Oracle equivalence harness ---------------------------------

/** One fired event, as observed by the harness. */
struct FireRecord
{
    Tick tick;
    int priority;
    std::uint64_t serial;  ///< generator-assigned id of the action

    bool
    operator==(const FireRecord &o) const
    {
        return tick == o.tick && priority == o.priority
            && serial == o.serial;
    }
};

/** End-of-run footprint of a schedule replay. */
struct ReplayResult
{
    std::vector<FireRecord> fires;
    std::uint64_t executed = 0;
    std::uint64_t descheduled = 0;
    Tick finalNow = 0;
};

/**
 * Deterministic xorshift generator for the randomized schedule —
 * self-contained so the harness does not depend on common/random.
 */
class ScheduleRng
{
  public:
    explicit ScheduleRng(std::uint64_t seed) : state_(seed | 1) {}

    std::uint64_t
    next()
    {
        state_ ^= state_ << 13;
        state_ ^= state_ >> 7;
        state_ ^= state_ << 17;
        return state_;
    }

    std::uint64_t pick(std::uint64_t n) { return next() % n; }

  private:
    std::uint64_t state_;
};

/**
 * Replay a seeded randomized schedule against @p eq and record the
 * exact (tick, priority, serial) fire order.
 *
 * The generator exercises every mutation the real simulator
 * performs: plain posts across domains, posts landing exactly on
 * window/epoch boundaries (the barrier edge), cancels of pending
 * and already-staged events, reschedule (cancel + repost at a new
 * tick), self-deschedule from inside a callback, and callbacks that
 * post follow-up work into *other* domains mid-window.
 */
ReplayResult
replaySchedule(EventQueue &eq, std::uint64_t seed,
               std::uint32_t domains)
{
    constexpr Tick kWindow = 1000;  // matches shardedConfig()
    ReplayResult out;
    ScheduleRng rng(seed);
    std::vector<std::pair<std::uint64_t, EventId>> live;
    std::uint64_t serial = 0;

    auto post = [&](Tick when, int prio, std::uint32_t domain,
                    auto &&self) -> void {
        const std::uint64_t id = serial++;
        EventId ev = eq.schedule(when, [&, id, when, prio, domain,
                                        self]() mutable {
            out.fires.push_back({eq.now(), prio, id});
            // 1 in 4 callbacks posts follow-up work, half of it
            // into a different domain (cross-shard post).
            if (rng.pick(4) == 0 && serial < 4096) {
                const std::uint32_t d =
                    rng.pick(2) ? domain
                                : static_cast<std::uint32_t>(
                                      rng.pick(domains));
                const Tick delta = 1 + rng.pick(3 * kWindow);
                self(eq.now() + delta,
                     static_cast<int>(rng.pick(3)) - 1, d, self);
            }
            // 1 in 8 callbacks cancels a random live event (which
            // may already be staged in the current window).
            if (rng.pick(8) == 0 && !live.empty()) {
                const std::size_t idx = rng.pick(live.size());
                if (eq.deschedule(live[idx].second))
                    live.erase(live.begin()
                               + static_cast<std::ptrdiff_t>(idx));
            }
        }, prio, domain);
        live.push_back({id, ev});
    };

    // Seed schedule: a mix of plain ticks and exact epoch
    // boundaries, over all domains and three priorities.
    for (int i = 0; i < 512; ++i) {
        Tick when = 1 + rng.pick(40 * kWindow);
        if (rng.pick(5) == 0)
            when = (1 + rng.pick(40)) * kWindow;  // barrier edge
        const int prio = static_cast<int>(rng.pick(3)) - 1;
        const std::uint32_t domain =
            static_cast<std::uint32_t>(rng.pick(domains));
        post(when, prio, domain, post);
    }
    // Up-front cancels and reschedules of a third of the seeds.
    for (int i = 0; i < 170 && !live.empty(); ++i) {
        const std::size_t idx = rng.pick(live.size());
        if (eq.deschedule(live[idx].second)) {
            live.erase(live.begin()
                       + static_cast<std::ptrdiff_t>(idx));
            if (rng.pick(2) == 0)  // reschedule: repost elsewhere
                post(1 + rng.pick(40 * kWindow),
                     static_cast<int>(rng.pick(3)) - 1,
                     static_cast<std::uint32_t>(rng.pick(domains)),
                     post);
        }
    }

    eq.run();
    out.executed = eq.executed();
    out.descheduled = eq.descheduled();
    out.finalNow = eq.now();
    return out;
}

class ShardedOracleTest
    : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ShardedOracleTest, MatchesMonolithicOracle)
{
    const std::size_t shards = GetParam();
    for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
        EventQueue oracle(shardedConfig(1));
        const ReplayResult want =
            replaySchedule(oracle, seed, /*domains=*/9);

        EventQueue eq(shardedConfig(shards));
        const ReplayResult got = replaySchedule(eq, seed, 9);

        ASSERT_EQ(got.fires.size(), want.fires.size())
            << "seed " << seed << " shards " << shards;
        for (std::size_t i = 0; i < want.fires.size(); ++i) {
            ASSERT_TRUE(got.fires[i] == want.fires[i])
                << "seed " << seed << " shards " << shards
                << " fire " << i << ": got (" << got.fires[i].tick
                << "," << got.fires[i].priority << ","
                << got.fires[i].serial << ") want ("
                << want.fires[i].tick << ","
                << want.fires[i].priority << ","
                << want.fires[i].serial << ")";
        }
        EXPECT_EQ(got.executed, want.executed);
        EXPECT_EQ(got.descheduled, want.descheduled);
        EXPECT_EQ(got.finalNow, want.finalNow);
        // Cancelled-entry compaction must leave no tombstone
        // behind in any shard once the run drains.
        for (std::size_t s = 0; s < eq.shards(); ++s)
            EXPECT_EQ(eq.shardCancelled(s), 0u)
                << "seed " << seed << " shard " << s;
        EXPECT_EQ(eq.pending(), 0u);
    }
}

TEST_P(ShardedOracleTest, MatchesOracleWithDrainWorkers)
{
    // Same oracle, staged on a real worker pool: the parallel
    // staging path must not perturb the fire order either.
    const std::size_t shards = GetParam();
    EventQueue oracle(shardedConfig(1));
    const ReplayResult want = replaySchedule(oracle, 99, 9);

    EventQueue eq(shardedConfig(shards, /*workers=*/4));
    const ReplayResult got = replaySchedule(eq, 99, 9);

    ASSERT_EQ(got.fires.size(), want.fires.size());
    for (std::size_t i = 0; i < want.fires.size(); ++i)
        ASSERT_TRUE(got.fires[i] == want.fires[i]) << "fire " << i;
    EXPECT_EQ(got.executed, want.executed);
    EXPECT_EQ(got.finalNow, want.finalNow);
}

INSTANTIATE_TEST_SUITE_P(AllShardCounts, ShardedOracleTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto &info) {
                             return "shards"
                                 + std::to_string(info.param);
                         });

} // namespace
} // namespace xfm
