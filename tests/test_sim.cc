/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"

namespace xfm
{
namespace
{

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickOrdersByPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); },
                EventQueue::defaultPriority);
    eq.schedule(5, [&] { order.push_back(1); },
                EventQueue::refreshPriority);
    eq.schedule(5, [&] { order.push_back(3); },
                EventQueue::defaultPriority);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, ScheduleInIsRelative)
{
    EventQueue eq;
    Tick seen = 0;
    eq.schedule(100, [&eq, &seen] {
        eq.scheduleIn(50, [&eq, &seen] { seen = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, DescheduleCancelsPending)
{
    EventQueue eq;
    bool ran = false;
    EventId id = eq.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(eq.deschedule(id));
    EXPECT_FALSE(eq.deschedule(id));  // double cancel fails
    eq.run();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { ++count; });
    eq.schedule(20, [&] { ++count; });
    eq.schedule(30, [&] { ++count; });
    eq.run(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.now(), 4u);
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EmptyAndPendingAccounting)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EventId a = eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.deschedule(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ZeroDelaySelfScheduleAdvances)
{
    EventQueue eq;
    int runs = 0;
    std::function<void()> f = [&] {
        if (++runs < 3)
            eq.scheduleIn(0, f);
    };
    eq.schedule(7, f);
    eq.run();
    EXPECT_EQ(runs, 3);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(SimObject, ExposesNameAndTime)
{
    EventQueue eq;
    SimObject obj("system.dram", eq);
    EXPECT_EQ(obj.name(), "system.dram");
    eq.schedule(42, [] {});
    eq.run();
    EXPECT_EQ(obj.curTick(), 42u);
}

} // namespace
} // namespace xfm
