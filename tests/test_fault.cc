/**
 * @file
 * Tests for the deterministic fault-injection subsystem: plan
 * parsing, injector determinism and trigger semantics, the retry
 * policy, and the injection sites threaded through the ECC store,
 * the SPM, the driver (doorbell loss + retry/backoff), the NMA
 * engine (stall), and the backend's poisoned-page quarantine.
 */

#include <gtest/gtest.h>

#include <optional>

#include "common/logging.hh"
#include "dram/ecc.hh"
#include "fault/fault.hh"
#include "nma/spm.hh"
#include "test_util.hh"
#include "xfm/xfm_backend.hh"

namespace xfm
{
namespace fault
{
namespace
{

using sfm::PageState;
using sfm::SwapOutcome;
using xfmsys::XfmBackend;
using xfmsys::XfmSystemConfig;

// ---------------------------------------------------------------- plan

TEST(FaultPlan, DefaultsAreDisarmed)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.anyArmed());
    FaultInjector inj(plan);
    EXPECT_FALSE(inj.armed());
    EXPECT_FALSE(inj.shouldInject(FaultSite::SpmReserveFail));
    EXPECT_EQ(inj.stats(FaultSite::SpmReserveFail).evaluations, 0u);
}

TEST(FaultPlan, ParsesConfigKeys)
{
    const auto cfg = Config::parseString(
        "fault.seed = 42\n"
        "fault.spm_watermark = 0.5\n"
        "fault.dfm_delay_ns = 750\n"
        "fault.spm_reserve.p = 0.25\n"
        "fault.mmio_doorbell.one_shot = 3\n"
        "fault.engine_stall.max = 2\n"
        "fault.engine_stall.p = 1.0\n");
    const FaultPlan plan = FaultPlan::fromConfig(cfg);
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_DOUBLE_EQ(plan.spmHighWatermark, 0.5);
    EXPECT_EQ(plan.dfmDelayPenalty, nanoseconds(750.0));
    EXPECT_DOUBLE_EQ(plan.site(FaultSite::SpmReserveFail).probability,
                     0.25);
    EXPECT_EQ(plan.site(FaultSite::MmioDoorbellLoss).oneShotAt, 3u);
    EXPECT_EQ(plan.site(FaultSite::EngineStall).maxTriggers, 2u);
    EXPECT_TRUE(plan.anyArmed());
}

TEST(FaultPlan, RejectsUnknownKeysAndBadProbabilities)
{
    EXPECT_THROW(FaultPlan::fromConfig(Config::parseString(
                     "fault.spm_reserv.p = 0.5\n")),
                 FatalError);
    EXPECT_THROW(FaultPlan::fromConfig(Config::parseString(
                     "fault.spm_reserve.prob = 0.5\n")),
                 FatalError);
    EXPECT_THROW(FaultPlan::fromConfig(Config::parseString(
                     "fault.spm_reserve.p = 1.5\n")),
                 FatalError);
}

TEST(RetryPolicy, BackoffGrowsExponentiallyToCap)
{
    RetryPolicy p;
    p.backoffBase = nanoseconds(100.0);
    p.backoffCap = nanoseconds(500.0);
    EXPECT_EQ(p.backoffFor(0), nanoseconds(100.0));
    EXPECT_EQ(p.backoffFor(1), nanoseconds(200.0));
    EXPECT_EQ(p.backoffFor(2), nanoseconds(400.0));
    EXPECT_EQ(p.backoffFor(3), nanoseconds(500.0));  // capped
    EXPECT_EQ(p.backoffFor(63), nanoseconds(500.0));  // no overflow
}

TEST(RetryPolicy, BackoffLargeBaseSaturatesInsteadOfWrapping)
{
    // Regression: with a realistic base, `base << attempt` wraps
    // long before attempt 63, so a fixed attempt guard silently
    // returned a tiny (wrapped) backoff for mid-range attempts. The
    // backoff must saturate at the cap and stay monotone for every
    // attempt count instead.
    RetryPolicy p;
    p.backoffBase = nanoseconds(200.0);
    p.backoffCap = ~Tick{0};  // effectively uncapped: expose wraps
    Tick prev = 0;
    for (std::uint32_t a = 0; a < 128; ++a) {
        const Tick b = p.backoffFor(a);
        ASSERT_GE(b, prev) << "backoff regressed at attempt " << a;
        prev = b;
    }
    EXPECT_EQ(p.backoffFor(62), p.backoffCap);

    p.backoffBase = 0;
    EXPECT_EQ(p.backoffFor(100), 0u);
}

TEST(RetryPolicy, ParsesConfigKeys)
{
    const auto cfg = Config::parseString(
        "retry.max_attempts = 5\n"
        "retry.backoff_ns = 100\n"
        "retry.cap_ns = 1000\n");
    const RetryPolicy p = RetryPolicy::fromConfig(cfg);
    EXPECT_EQ(p.maxAttempts, 5u);
    EXPECT_EQ(p.backoffBase, nanoseconds(100.0));
    EXPECT_EQ(p.backoffCap, nanoseconds(1000.0));
}

// ------------------------------------------------------------ injector

TEST(FaultInjector, SameSeedSameSequence)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.site(FaultSite::SpmReserveFail).probability = 0.3;
    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.shouldInject(FaultSite::SpmReserveFail),
                  b.shouldInject(FaultSite::SpmReserveFail))
            << "diverged at evaluation " << i;
    EXPECT_GT(a.totalInjections(), 0u);
    EXPECT_EQ(a.totalInjections(), b.totalInjections());
}

TEST(FaultInjector, DifferentSeedDifferentSequence)
{
    FaultPlan plan;
    plan.site(FaultSite::SpmReserveFail).probability = 0.3;
    plan.seed = 1;
    FaultInjector a(plan);
    plan.seed = 2;
    FaultInjector b(plan);
    bool diverged = false;
    for (int i = 0; i < 1000 && !diverged; ++i)
        diverged = a.shouldInject(FaultSite::SpmReserveFail)
            != b.shouldInject(FaultSite::SpmReserveFail);
    EXPECT_TRUE(diverged);
}

TEST(FaultInjector, OneShotFiresExactlyOnce)
{
    FaultPlan plan;
    plan.site(FaultSite::EngineStall).oneShotAt = 5;
    FaultInjector inj(plan);
    for (int i = 1; i <= 20; ++i)
        EXPECT_EQ(inj.shouldInject(FaultSite::EngineStall), i == 5);
    EXPECT_EQ(inj.stats(FaultSite::EngineStall).evaluations, 20u);
    EXPECT_EQ(inj.stats(FaultSite::EngineStall).injections, 1u);
}

TEST(FaultInjector, MaxTriggersCapsInjections)
{
    FaultPlan plan;
    plan.site(FaultSite::DfmLinkDrop).probability = 1.0;
    plan.site(FaultSite::DfmLinkDrop).maxTriggers = 3;
    FaultInjector inj(plan);
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        fired += inj.shouldInject(FaultSite::DfmLinkDrop) ? 1 : 0;
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(inj.stats(FaultSite::DfmLinkDrop).injections, 3u);
}

TEST(FaultInjector, UnarmedSitesCostNoEvaluations)
{
    FaultPlan plan;
    plan.site(FaultSite::EngineStall).probability = 1.0;
    FaultInjector inj(plan);
    EXPECT_FALSE(inj.shouldInject(FaultSite::MmioDoorbellLoss));
    EXPECT_EQ(inj.stats(FaultSite::MmioDoorbellLoss).evaluations, 0u);
    // The armed site still fires.
    EXPECT_TRUE(inj.shouldInject(FaultSite::EngineStall));
}

// ------------------------------------------------------------ ECC site

class EccFaultTest : public ::testing::Test
{
  protected:
    EccFaultTest() : mem_(mib(1)), store_(mem_, kib(512), kib(256)) {}

    dram::PhysMem mem_;
    dram::EccStore store_;
};

TEST_F(EccFaultTest, InjectedCorrectableErrorIsScrubbed)
{
    FaultPlan plan;
    plan.site(FaultSite::EccCorrectable).oneShotAt = 1;
    FaultInjector inj(plan);
    store_.setFaultInjector(&inj);

    const Bytes data{1, 2, 3, 4, 5, 6, 7, 8};
    store_.write(64, data);
    EXPECT_EQ(store_.read(64, 8), data);
    EXPECT_EQ(store_.stats().correctedErrors, 1u);
    EXPECT_EQ(store_.stats().uncorrectableErrors, 0u);
    // The flip hit the in-DRAM copy only at check time; a re-read
    // with the one-shot spent is clean.
    store_.setFaultInjector(nullptr);
    EXPECT_EQ(store_.read(64, 8), data);
}

TEST_F(EccFaultTest, UncorrectableWithoutHandlerIsFatal)
{
    FaultPlan plan;
    plan.site(FaultSite::EccUncorrectable).oneShotAt = 1;
    FaultInjector inj(plan);
    store_.setFaultInjector(&inj);

    store_.write(0, Bytes(8, 0xAB));
    EXPECT_THROW(store_.read(0, 8), FatalError);
}

TEST_F(EccFaultTest, UncorrectableWithHandlerPoisonsWord)
{
    FaultPlan plan;
    plan.site(FaultSite::EccUncorrectable).oneShotAt = 1;
    FaultInjector inj(plan);
    store_.setFaultInjector(&inj);

    std::uint64_t poisoned_addr = ~0ull;
    store_.setPoisonHandler(
        [&](std::uint64_t addr) { poisoned_addr = addr; });

    store_.write(128, Bytes(16, 0xCD));
    store_.read(128, 16);  // corrupt data returned, no throw
    EXPECT_EQ(poisoned_addr, 128u);
    EXPECT_TRUE(store_.isPoisoned(128, 8));
    EXPECT_FALSE(store_.isPoisoned(136, 8));
    EXPECT_EQ(store_.poisonedWords(), 1u);
    EXPECT_EQ(store_.stats().uncorrectableErrors, 1u);

    store_.clearPoison(128);
    EXPECT_FALSE(store_.isPoisoned(128, 8));
}

// ------------------------------------------------------------ SPM site

TEST(SpmFault, InjectedReserveFailure)
{
    nma::ScratchPad spm(kib(64));
    FaultPlan plan;
    plan.site(FaultSite::SpmReserveFail).oneShotAt = 2;
    FaultInjector inj(plan);
    spm.setFaultInjector(&inj);

    EXPECT_TRUE(spm.reserve(1, nma::OffloadKind::Compress, 1024));
    EXPECT_FALSE(spm.reserve(2, nma::OffloadKind::Compress, 1024));
    EXPECT_TRUE(spm.reserve(3, nma::OffloadKind::Compress, 1024));
    EXPECT_EQ(spm.injectedReserveFailures(), 1u);
    EXPECT_EQ(spm.entryCount(), 2u);
}

TEST(SpmFault, WatermarkBackpressureOnlyAboveWatermark)
{
    nma::ScratchPad spm(kib(64));
    FaultPlan plan;
    plan.spmHighWatermark = 0.5;
    plan.site(FaultSite::SpmHighWatermark).probability = 1.0;
    FaultInjector inj(plan);
    spm.setFaultInjector(&inj);

    // Below the watermark the site never evaluates.
    EXPECT_TRUE(spm.reserve(1, nma::OffloadKind::Compress, kib(16)));
    EXPECT_TRUE(spm.reserve(2, nma::OffloadKind::Compress, kib(16)));
    EXPECT_EQ(inj.stats(FaultSite::SpmHighWatermark).evaluations, 0u);
    // At 50% occupancy every further reservation is pushed back.
    EXPECT_FALSE(spm.reserve(3, nma::OffloadKind::Compress, kib(1)));
    EXPECT_GT(inj.stats(FaultSite::SpmHighWatermark).injections, 0u);
    spm.release(1);
    spm.release(2);
    EXPECT_TRUE(spm.reserve(4, nma::OffloadKind::Compress, kib(1)));
}

// ------------------------------------------- backend-integrated sites

class BackendFaultTest : public ::testing::Test
{
  protected:
    void
    makeBackend(XfmSystemConfig cfg)
    {
        backend_.emplace("xfmsys", eq_, cfg);
        backend_->start();
    }

    Bytes
    pageContent(sfm::VirtPage p) const
    {
        return testutil::corpusPage(compress::CorpusKind::LogLines,
                                    p + 100);
    }

    SwapOutcome
    runSwapOut(sfm::VirtPage p)
    {
        SwapOutcome out;
        backend_->writePage(p, pageContent(p));
        backend_->swapOut(p, [&](const SwapOutcome &o) { out = o; });
        eq_.run(eq_.now() + seconds(0.2));
        return out;
    }

    SwapOutcome
    runSwapIn(sfm::VirtPage p, bool allow_offload = true)
    {
        SwapOutcome in;
        backend_->swapIn(p, allow_offload,
                         [&](const SwapOutcome &o) { in = o; });
        eq_.run(eq_.now() + seconds(0.2));
        return in;
    }

    EventQueue eq_;
    std::optional<XfmBackend> backend_;
};

TEST_F(BackendFaultTest, DoorbellLossIsRetriedTransparently)
{
    auto cfg = testutil::testXfmConfig(2);
    cfg.faults.site(FaultSite::MmioDoorbellLoss).oneShotAt = 1;
    makeBackend(cfg);

    const SwapOutcome out = runSwapOut(1);
    EXPECT_TRUE(out.success);
    EXPECT_FALSE(out.usedCpu);  // the retry rescued the offload
    EXPECT_EQ(out.retries, 1u);
    EXPECT_EQ(backend_->xfmStats().offloadRetries, 1u);
    EXPECT_EQ(backend_->driver(0).stats().doorbellLosses, 1u);
    EXPECT_EQ(backend_->driver(0).stats().retries, 1u);
    EXPECT_GT(backend_->driver(0).stats().backoffTicksAccrued, 0u);
}

TEST_F(BackendFaultTest, PersistentDoorbellLossFallsBackToCpu)
{
    auto cfg = testutil::testXfmConfig(2);
    cfg.faults.site(FaultSite::MmioDoorbellLoss).probability = 1.0;
    cfg.retry.maxAttempts = 2;
    makeBackend(cfg);

    const SwapOutcome out = runSwapOut(1);
    EXPECT_TRUE(out.success);
    EXPECT_TRUE(out.usedCpu);  // retries exhausted -> CPU_Fallback
    EXPECT_GT(out.retries, 0u);
    EXPECT_EQ(backend_->pageState(1), PageState::Far);
    EXPECT_GT(backend_->xfmStats().fallbackCapacity, 0u);
    // Data still restores byte-identically through the CPU path.
    const SwapOutcome in = runSwapIn(1, false);
    EXPECT_TRUE(in.success);
    EXPECT_EQ(backend_->readPage(1), pageContent(1));
}

TEST_F(BackendFaultTest, EngineStallDropsToCpuFallback)
{
    auto cfg = testutil::testXfmConfig(2);
    cfg.faults.site(FaultSite::EngineStall).oneShotAt = 1;
    makeBackend(cfg);

    const SwapOutcome out = runSwapOut(1);
    EXPECT_TRUE(out.success);
    EXPECT_TRUE(out.usedCpu);
    EXPECT_GT(backend_->xfmStats().fallbackDeadline, 0u);
    std::uint64_t stalls = 0;
    for (std::size_t d = 0; d < 2; ++d)
        stalls += backend_->driver(d).device().stats().engineStalls;
    EXPECT_EQ(stalls, 1u);
    const SwapOutcome in = runSwapIn(1, false);
    EXPECT_TRUE(in.success);
    EXPECT_EQ(backend_->readPage(1), pageContent(1));
}

TEST_F(BackendFaultTest, UncorrectableEccQuarantinesPage)
{
    auto cfg = testutil::testXfmConfig(2);
    cfg.faults.site(FaultSite::EccUncorrectable).oneShotAt = 1;
    makeBackend(cfg);

    ASSERT_TRUE(runSwapOut(3).success);
    ASSERT_EQ(backend_->pageState(3), PageState::Far);

    const SwapOutcome in = runSwapIn(3);
    EXPECT_FALSE(in.success);
    EXPECT_TRUE(backend_->isQuarantined(3));
    EXPECT_EQ(backend_->quarantinedPageCount(), 1u);
    EXPECT_EQ(backend_->xfmStats().eccQuarantines, 1u);
    // The page stays Far and every later swap-in fails fast.
    EXPECT_EQ(backend_->pageState(3), PageState::Far);
    EXPECT_FALSE(runSwapIn(3).success);
    EXPECT_EQ(backend_->quarantinedPageCount(), 1u);
}

TEST_F(BackendFaultTest, ZeroFaultPlanMatchesDisarmedStats)
{
    // A default plan must leave no trace: no injections, no retries,
    // no fault-driven fallbacks.
    makeBackend(testutil::testXfmConfig(2));
    ASSERT_TRUE(runSwapOut(5).success);
    ASSERT_TRUE(runSwapIn(5).success);
    EXPECT_FALSE(backend_->faultInjector().armed());
    EXPECT_EQ(backend_->faultInjector().totalInjections(), 0u);
    EXPECT_EQ(backend_->xfmStats().offloadRetries, 0u);
    EXPECT_EQ(backend_->xfmStats().eccQuarantines, 0u);
    for (std::size_t d = 0; d < 2; ++d) {
        EXPECT_EQ(backend_->driver(d).stats().doorbellLosses, 0u);
        EXPECT_EQ(backend_->driver(d).stats().retries, 0u);
    }
}

} // namespace
} // namespace fault
} // namespace xfm
