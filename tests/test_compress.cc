/**
 * @file
 * Unit and property tests for the compression library: bitstream,
 * Huffman, LZ77, and the three codecs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/units.hh"
#include "compress/arena.hh"
#include "compress/bitstream.hh"
#include "compress/compressor.hh"
#include "compress/corpus.hh"
#include "compress/deflate.hh"
#include "compress/huffman.hh"
#include "compress/lz77.hh"
#include "compress/lzfast.hh"
#include "compress/zstdlike.hh"

namespace xfm
{
namespace compress
{
namespace
{

Bytes
toBytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

// ---------------------------------------------------------------- bitstream

TEST(Bitstream, RoundTripMixedWidths)
{
    Bytes buf;
    BitWriter bw(buf);
    bw.put(0b101, 3);
    bw.put(0xABCD, 16);
    bw.put(1, 1);
    bw.put(0x7FFFFFFF, 31);
    bw.flush();

    BitReader br(buf);
    EXPECT_EQ(br.get(3), 0b101u);
    EXPECT_EQ(br.get(16), 0xABCDu);
    EXPECT_EQ(br.get(1), 1u);
    EXPECT_EQ(br.get(31), 0x7FFFFFFFu);
}

TEST(Bitstream, TruncationIsFatal)
{
    Bytes buf;
    BitWriter bw(buf);
    bw.put(0xF, 4);
    bw.flush();
    BitReader br(buf);
    br.get(8);
    EXPECT_THROW(br.get(8), FatalError);
}

TEST(Bitstream, PeekDoesNotConsume)
{
    Bytes buf;
    BitWriter bw(buf);
    bw.put(0x5A, 8);
    bw.flush();
    BitReader br(buf);
    EXPECT_EQ(br.peek(4), 0xAu);
    EXPECT_EQ(br.peek(4), 0xAu);
    br.skip(4);
    EXPECT_EQ(br.get(4), 0x5u);
}

TEST(Bitstream, AlignedByteOffsetIgnoresPeekBuffering)
{
    Bytes buf;
    BitWriter bw(buf);
    bw.put(0x3, 2);
    bw.flush();
    buf.push_back(0x77);  // trailing data beyond the flushed section
    BitReader br(buf);
    br.peek(15);  // buffers both bytes
    br.skip(2);
    EXPECT_EQ(br.alignedByteOffset(), 1u);
}

TEST(Bitstream, RandomRoundTrip)
{
    Rng rng(99);
    std::vector<std::pair<std::uint32_t, unsigned>> items;
    Bytes buf;
    BitWriter bw(buf);
    for (int i = 0; i < 1000; ++i) {
        const unsigned nbits = 1 + rng.uniformInt(24);
        const std::uint32_t v =
            static_cast<std::uint32_t>(rng.next())
            & ((1u << nbits) - 1);
        items.emplace_back(v, nbits);
        bw.put(v, nbits);
    }
    bw.flush();
    BitReader br(buf);
    for (auto [v, nbits] : items)
        EXPECT_EQ(br.get(nbits), v);
}

// ----------------------------------------------------------------- huffman

TEST(Huffman, LengthsSatisfyKraft)
{
    std::vector<std::uint64_t> counts(256, 0);
    Rng rng(5);
    for (auto &c : counts)
        c = rng.uniformInt(1000);
    const auto lengths = huffmanCodeLengths(counts);
    double kraft = 0;
    for (std::size_t i = 0; i < lengths.size(); ++i) {
        if (counts[i] > 0) {
            EXPECT_GT(lengths[i], 0u);
            EXPECT_LE(lengths[i], maxCodeLength);
            kraft += std::pow(2.0, -double(lengths[i]));
        } else {
            EXPECT_EQ(lengths[i], 0u);
        }
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(Huffman, SingleSymbolGetsLengthOne)
{
    std::vector<std::uint64_t> counts(10, 0);
    counts[7] = 42;
    const auto lengths = huffmanCodeLengths(counts);
    EXPECT_EQ(lengths[7], 1u);
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i != 7) {
            EXPECT_EQ(lengths[i], 0u);
        }
    }
}

TEST(Huffman, EmptyAlphabetAllZero)
{
    std::vector<std::uint64_t> counts(16, 0);
    const auto lengths = huffmanCodeLengths(counts);
    EXPECT_TRUE(std::all_of(lengths.begin(), lengths.end(),
                            [](auto l) { return l == 0; }));
}

TEST(Huffman, SkewedDistributionShorterCodesForFrequent)
{
    std::vector<std::uint64_t> counts = {1000, 100, 10, 1};
    const auto lengths = huffmanCodeLengths(counts);
    EXPECT_LE(lengths[0], lengths[1]);
    EXPECT_LE(lengths[1], lengths[2]);
    EXPECT_LE(lengths[2], lengths[3]);
}

TEST(Huffman, EncodeDecodeRoundTrip)
{
    Rng rng(21);
    std::vector<std::uint64_t> counts(64, 0);
    std::vector<std::uint32_t> symbols;
    for (int i = 0; i < 5000; ++i) {
        const auto s = static_cast<std::uint32_t>(rng.zipf(64, 0.8));
        symbols.push_back(s);
        ++counts[s];
    }
    const auto lengths = huffmanCodeLengths(counts);
    HuffmanEncoder enc(lengths);
    HuffmanDecoder dec(lengths);
    Bytes buf;
    BitWriter bw(buf);
    for (auto s : symbols)
        enc.encode(bw, s);
    bw.flush();
    BitReader br(buf);
    for (auto s : symbols)
        EXPECT_EQ(dec.decode(br), s);
}

TEST(Huffman, ManySymbolsLengthLimited)
{
    // Exponential counts would produce > 15-bit codes without the
    // length-limit repair.
    std::vector<std::uint64_t> counts(40);
    std::uint64_t v = 1;
    for (auto &c : counts) {
        c = v;
        v = std::min<std::uint64_t>(v * 2, std::uint64_t(1) << 60);
    }
    const auto lengths = huffmanCodeLengths(counts);
    for (auto l : lengths)
        EXPECT_LE(l, maxCodeLength);
    // Still decodable end to end.
    HuffmanEncoder enc(lengths);
    HuffmanDecoder dec(lengths);
    Bytes buf;
    BitWriter bw(buf);
    for (std::uint32_t s = 0; s < counts.size(); ++s)
        enc.encode(bw, s);
    bw.flush();
    BitReader br(buf);
    for (std::uint32_t s = 0; s < counts.size(); ++s)
        EXPECT_EQ(dec.decode(br), s);
}

TEST(Huffman, CodeLengthRleRoundTrip)
{
    // 300 entries: head below, then a long zero tail (needs code 18
    // chains). Built at full size up front — resizing a small
    // init-list vector trips a GCC 12 -Warray-bounds false positive
    // at -O2.
    static constexpr std::uint8_t head[] = {
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,  // long zero run
        5, 5, 5, 5, 5,                        // repeat run
        7, 3, 0, 0, 9,                        // singletons + short zeros
    };
    std::vector<std::uint8_t> lengths(300, 0);
    std::copy(std::begin(head), std::end(head), lengths.begin());
    Bytes buf;
    BitWriter bw(buf);
    writeCodeLengthsRle(bw, lengths);
    bw.flush();
    BitReader br(buf);
    EXPECT_EQ(readCodeLengthsRle(br, lengths.size()), lengths);
}

// -------------------------------------------------------------------- lz77

TEST(Lz77, LiteralOnlyForShortInput)
{
    const Bytes in = toBytes("ab");
    const auto tokens = lz77Tokenize(in, Lz77Params{});
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_FALSE(tokens[0].isMatch);
    EXPECT_FALSE(tokens[1].isMatch);
    EXPECT_EQ(lz77Reconstruct(tokens), in);
}

TEST(Lz77, FindsRepeats)
{
    const Bytes in = toBytes("abcdefabcdefabcdef");
    const auto tokens = lz77Tokenize(in, Lz77Params{});
    const auto matches = std::count_if(
        tokens.begin(), tokens.end(),
        [](const auto &t) { return t.isMatch; });
    EXPECT_GE(matches, 1);
    EXPECT_EQ(lz77Reconstruct(tokens), in);
}

TEST(Lz77, OverlappingMatchRle)
{
    // 'aaaa...' forces distance-1 overlapping matches.
    const Bytes in(500, 'a');
    const auto tokens = lz77Tokenize(in, Lz77Params{});
    EXPECT_LT(tokens.size(), 20u);
    EXPECT_EQ(lz77Reconstruct(tokens), in);
}

TEST(Lz77, WindowLimitsDistance)
{
    Lz77Params params;
    params.windowBytes = 64;
    Rng rng(3);
    Bytes in;
    for (int i = 0; i < 2000; ++i)
        in.push_back(static_cast<std::uint8_t>(rng.uniformInt(4)));
    const auto tokens = lz77Tokenize(in, params);
    for (const auto &t : tokens) {
        if (t.isMatch) {
            EXPECT_LE(t.distance, 64u);
        }
    }
    EXPECT_EQ(lz77Reconstruct(tokens), in);
}

TEST(Lz77, MaxMatchRespected)
{
    Lz77Params params;
    params.maxMatch = 16;
    const Bytes in(1000, 'x');
    const auto tokens = lz77Tokenize(in, params);
    for (const auto &t : tokens) {
        if (t.isMatch) {
            EXPECT_LE(t.length, 16u);
        }
    }
    EXPECT_EQ(lz77Reconstruct(tokens), in);
}

TEST(Lz77, EmptyInput)
{
    const auto tokens = lz77Tokenize({}, Lz77Params{});
    EXPECT_TRUE(tokens.empty());
    EXPECT_TRUE(lz77Reconstruct(tokens).empty());
}

TEST(Lz77, ReconstructRejectsBadDistance)
{
    std::vector<Lz77Token> tokens = {
        {false, 'a', 0, 0},
        {true, 0, 5, 10},  // distance beyond output
    };
    EXPECT_THROW(lz77Reconstruct(tokens), FatalError);
}

// ------------------------------------------------------------------ codecs

class CodecTest : public ::testing::TestWithParam<Algorithm>
{
  protected:
    std::unique_ptr<Compressor> codec_ = makeCompressor(GetParam());

    void
    roundTrip(const Bytes &in)
    {
        const Bytes block = codec_->compress(in);
        const Bytes out = codec_->decompress(block);
        ASSERT_EQ(out, in) << "round-trip failed for "
                           << algorithmName(GetParam());
    }
};

TEST_P(CodecTest, RoundTripEmpty)
{
    roundTrip({});
}

TEST_P(CodecTest, RoundTripSingleByte)
{
    roundTrip({0x42});
}

TEST_P(CodecTest, RoundTripAllSameByte)
{
    roundTrip(Bytes(4096, 0xAA));
    roundTrip(Bytes(4096, 0x00));
}

TEST_P(CodecTest, RoundTripShortStrings)
{
    for (std::size_t n = 0; n < 64; ++n) {
        Bytes in;
        for (std::size_t i = 0; i < n; ++i)
            in.push_back(static_cast<std::uint8_t>('a' + i % 3));
        roundTrip(in);
    }
}

TEST_P(CodecTest, RoundTripRandomIncompressible)
{
    Rng rng(31);
    Bytes in;
    for (int i = 0; i < 4096; ++i)
        in.push_back(static_cast<std::uint8_t>(rng.next()));
    roundTrip(in);
    // Incompressible data must not blow up beyond header overhead.
    const Bytes block = codec_->compress(in);
    EXPECT_LE(block.size(), in.size() + 16);
}

TEST_P(CodecTest, RoundTripAllByteValues)
{
    Bytes in;
    for (int rep = 0; rep < 16; ++rep)
        for (int b = 0; b < 256; ++b)
            in.push_back(static_cast<std::uint8_t>(b));
    roundTrip(in);
}

TEST_P(CodecTest, CompressesRepetitiveData)
{
    Bytes in;
    const std::string unit = "the quick brown fox jumps over the dog. ";
    while (in.size() < 4096)
        in.insert(in.end(), unit.begin(), unit.end());
    in.resize(4096);
    const Bytes block = codec_->compress(in);
    EXPECT_LT(block.size(), in.size() / 4);
    roundTrip(in);
}

TEST_P(CodecTest, RoundTripAllCorpora)
{
    for (auto kind : allCorpusKinds()) {
        const Bytes corpus = generateCorpus(kind, 1234, 16 * 1024);
        roundTrip(corpus);
    }
}

TEST_P(CodecTest, RoundTripPageSlices)
{
    const Bytes corpus =
        generateCorpus(CorpusKind::Json, 77, 64 * 1024);
    for (const auto &page : paginate(corpus))
        roundTrip(page);
}

TEST_P(CodecTest, DecompressRejectsGarbage)
{
    Rng rng(41);
    Bytes garbage;
    garbage.push_back(0x7F);  // invalid mode byte for every codec
    for (int i = 0; i < 64; ++i)
        garbage.push_back(static_cast<std::uint8_t>(rng.next()));
    EXPECT_THROW(codec_->decompress(garbage), FatalError);
    EXPECT_THROW(codec_->decompress({}), FatalError);
}

TEST_P(CodecTest, DecompressRejectsTruncatedBlock)
{
    const Bytes corpus =
        generateCorpus(CorpusKind::EnglishText, 5, 4096);
    Bytes block = codec_->compress(corpus);
    block.resize(block.size() / 2);
    EXPECT_THROW(codec_->decompress(block), FatalError);
}

TEST_P(CodecTest, Deterministic)
{
    const Bytes corpus = generateCorpus(CorpusKind::Html, 9, 8192);
    EXPECT_EQ(codec_->compress(corpus), codec_->compress(corpus));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecTest,
    ::testing::Values(Algorithm::LzFast, Algorithm::Deflate,
                      Algorithm::ZstdLike),
    [](const auto &info) { return algorithmName(info.param); });

// ------------------------------------------------- zero-copy Into API

/** The 6-class page mix of the workload corpus. */
const CorpusKind intoMix[] = {
    CorpusKind::KeyValue,   CorpusKind::Json,
    CorpusKind::LogLines,   CorpusKind::EnglishText,
    CorpusKind::SourceCode, CorpusKind::Html,
};

TEST_P(CodecTest, CompressIntoMatchesLegacyApi)
{
    // The span/out-parameter path must produce byte-identical
    // blocks to the allocating wrapper, for every page class.
    Bytes block;
    Bytes raw;
    for (const auto kind : intoMix) {
        const Bytes page = generateCorpus(kind, 17, pageBytes);
        codec_->compressInto(page, block);
        EXPECT_EQ(block, codec_->compress(page))
            << corpusName(kind) << " via "
            << algorithmName(GetParam());
        codec_->decompressInto(block, raw);
        EXPECT_EQ(raw, page) << corpusName(kind);
    }
}

TEST_P(CodecTest, IntoReusesCapacityAndClearsOutput)
{
    Bytes block(9000, 0xEE);  // stale content must not leak through
    const Bytes page =
        generateCorpus(CorpusKind::Json, 23, pageBytes);
    codec_->compressInto(page, block);
    EXPECT_EQ(block, codec_->compress(page));
    const auto cap = block.capacity();
    // A second call into the same buffer must not need to grow it.
    codec_->compressInto(page, block);
    EXPECT_EQ(block.capacity(), cap);
    EXPECT_EQ(block, codec_->compress(page));
}

TEST_P(CodecTest, MaxCompressedSizeBoundsEveryCorpus)
{
    for (auto kind : allCorpusKinds()) {
        const Bytes page = generateCorpus(kind, 29, pageBytes);
        const Bytes block = codec_->compress(page);
        EXPECT_LE(block.size(),
                  Compressor::maxCompressedSize(page.size()))
            << corpusName(kind);
    }
}

// ----------------------------------------------- overlap-aware copies

TEST(AppendMatch, NonOverlappingIsPlainCopy)
{
    Bytes out = toBytes("abcdef");
    appendMatch(out, 6, 3);  // dist >= len: straight memcpy
    EXPECT_EQ(out, toBytes("abcdefabc"));
}

TEST(AppendMatch, DistanceOneRunLengthEncodes)
{
    Bytes out = toBytes("x");
    appendMatch(out, 1, 9);
    EXPECT_EQ(out, toBytes("xxxxxxxxxx"));
}

TEST(AppendMatch, ShortPeriodReplicates)
{
    Bytes out = toBytes("abc");
    appendMatch(out, 3, 10);
    EXPECT_EQ(out, toBytes("abcabcabcabca"));
}

TEST(AppendMatch, OverlapWithinExistingOutput)
{
    Bytes out = toBytes("0123456789");
    appendMatch(out, 4, 6);  // copies "6789" then wraps
    EXPECT_EQ(out, toBytes("0123456789678967"));
}

TEST(AppendMatch, MatchesByteAtATimeReference)
{
    Rng rng(51);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes seed(1 + rng.uniformInt(32));
        for (auto &b : seed)
            b = static_cast<std::uint8_t>(rng.next());
        const std::size_t dist = 1 + rng.uniformInt(seed.size());
        const std::size_t len = 1 + rng.uniformInt(64);

        Bytes fast = seed;
        appendMatch(fast, dist, len);

        Bytes slow = seed;
        for (std::size_t i = 0; i < len; ++i)
            slow.push_back(slow[slow.size() - dist]);
        ASSERT_EQ(fast, slow) << "dist=" << dist << " len=" << len;
    }
}

// ------------------------------------------------------ scratch arena

TEST(ScratchArena, FirstAcquireAllocatesThenReuses)
{
    ScratchArena arena;
    {
        auto lease = arena.acquire(4096);
        EXPECT_TRUE(lease);
        EXPECT_GE(lease->capacity(), 4096u);
        lease->assign(100, 0xAB);
    }
    EXPECT_EQ(arena.allocations(), 1u);
    EXPECT_EQ(arena.pooled(), 1u);
    {
        auto lease = arena.acquire();
        EXPECT_TRUE(lease->empty());  // returned buffers are cleared
        EXPECT_GE(lease->capacity(), 100u);  // capacity survived
    }
    EXPECT_EQ(arena.reuses(), 1u);
    EXPECT_EQ(arena.allocations(), 1u);
}

TEST(ScratchArena, ConcurrentLeasesGetDistinctBuffers)
{
    ScratchArena arena;
    auto a = arena.acquire(16);
    auto b = arena.acquire(16);
    a->assign(4, 1);
    b->assign(4, 2);
    EXPECT_NE(a->data(), b->data());
    EXPECT_EQ((*a)[0], 1);
    EXPECT_EQ((*b)[0], 2);
}

TEST(ScratchArena, MoveTransfersOwnership)
{
    ScratchArena arena;
    auto a = arena.acquire(64);
    a->assign(8, 7);
    ScratchArena::Lease b = std::move(a);
    EXPECT_FALSE(a);
    EXPECT_TRUE(b);
    EXPECT_EQ(b->size(), 8u);
    { ScratchArena::Lease c = std::move(b); }
    EXPECT_EQ(arena.pooled(), 1u);  // released exactly once
}

// ------------------------------------------------------- codec comparisons

TEST(CodecComparison, ZstdLikeBeatsLzFastOnText)
{
    const Bytes corpus =
        generateCorpus(CorpusKind::EnglishText, 55, 64 * 1024);
    LzFastCodec fast;
    ZstdLikeCodec zstd;
    EXPECT_LT(zstd.compress(corpus).size(),
              fast.compress(corpus).size());
}

TEST(CodecComparison, WindowTruncationHurtsRatio)
{
    const Bytes corpus =
        generateCorpus(CorpusKind::EnglishText, 66, 32 * 1024);
    DeflateCodec wide(32 * 1024);
    DeflateCodec narrow(1024);
    EXPECT_LE(wide.compress(corpus).size(),
              narrow.compress(corpus).size() + 16);
}

TEST(CodecComparison, CpuCostCalibration)
{
    // EQ3.4: average of zstd/lzo compress+decompress cycles per byte
    // is 7.65 (7.65e9 cycles per GB).
    const auto z = cpuCost(Algorithm::ZstdLike);
    const auto l = cpuCost(Algorithm::LzFast);
    const double avg = (z.compressCyclesPerByte + z.decompressCyclesPerByte
                        + l.compressCyclesPerByte
                        + l.decompressCyclesPerByte) / 4.0;
    EXPECT_NEAR(avg, 7.65, 1e-9);
}

TEST(CodecComparison, FactoryReturnsRightAlgorithm)
{
    for (auto a : {Algorithm::LzFast, Algorithm::Deflate,
                   Algorithm::ZstdLike}) {
        EXPECT_EQ(makeCompressor(a)->algorithm(), a);
    }
}

TEST(CodecComparison, RatioHelper)
{
    EXPECT_DOUBLE_EQ(ratio(4096, 1024), 4.0);
    EXPECT_DOUBLE_EQ(ratio(4096, 0), 0.0);
}

} // namespace
} // namespace compress
} // namespace xfm

#include "compress/incremental.hh"

namespace xfm
{
namespace compress
{
namespace
{

TEST(Incremental, ChunkedRoundTrip)
{
    const Bytes corpus =
        generateCorpus(CorpusKind::EnglishText, 12, 64 * 1024);
    IncrementalCompressor comp;
    IncrementalDecompressor dec;
    for (std::size_t off = 0; off < corpus.size(); off += 4096) {
        const std::size_t len =
            std::min<std::size_t>(4096, corpus.size() - off);
        const Bytes seg = comp.addChunk(
            ByteSpan(corpus.data() + off, len));
        const Bytes chunk = dec.addSegment(seg);
        ASSERT_EQ(chunk,
                  Bytes(corpus.begin() + off,
                        corpus.begin() + off + len));
    }
    EXPECT_EQ(comp.historyBytes(), corpus.size());
    EXPECT_EQ(dec.historyBytes(), corpus.size());
}

TEST(Incremental, SharedHistoryBeatsIndependentChunks)
{
    // Identical chunks: with shared history every later chunk is a
    // single long back-reference; independent compression pays the
    // full cost each time.
    const Bytes chunk =
        generateCorpus(CorpusKind::LogLines, 3, 4096);
    IncrementalCompressor shared;
    std::size_t shared_bytes = 0;
    std::size_t independent_bytes = 0;
    LzFastCodec independent;
    for (int i = 0; i < 8; ++i) {
        shared_bytes += shared.addChunk(chunk).size();
        independent_bytes += independent.compress(chunk).size();
    }
    EXPECT_LT(shared_bytes, independent_bytes / 2);
}

TEST(Incremental, CrossChunkMatchesReachFullHistory)
{
    // First chunk unique, second chunk repeats it exactly: the
    // second segment must be tiny (one giant match).
    Rng rng(8);
    Bytes chunk(8192);
    for (auto &b : chunk)
        b = static_cast<std::uint8_t>(rng.uniformInt(250));
    IncrementalCompressor comp;
    const Bytes first = comp.addChunk(chunk);
    const Bytes second = comp.addChunk(chunk);
    EXPECT_LT(second.size(), 64u);
    EXPECT_GT(first.size(), 1000u);

    IncrementalDecompressor dec;
    EXPECT_EQ(dec.addSegment(first), chunk);
    EXPECT_EQ(dec.addSegment(second), chunk);
}

TEST(Incremental, EmptyChunkAllowed)
{
    IncrementalCompressor comp;
    IncrementalDecompressor dec;
    const Bytes seg = comp.addChunk({});
    EXPECT_TRUE(dec.addSegment(seg).empty());
}

TEST(Incremental, OutOfOrderSegmentFails)
{
    const Bytes chunk = generateCorpus(CorpusKind::Json, 5, 4096);
    IncrementalCompressor comp;
    comp.addChunk(chunk);                     // establishes history
    const Bytes second = comp.addChunk(chunk);
    IncrementalDecompressor dec;
    // Feeding segment 2 without segment 1's history: distances
    // reach beyond what the decoder has.
    EXPECT_THROW(dec.addSegment(second), FatalError);
}

TEST(Lz77Suffix, PrefixProducesNoTokens)
{
    const Bytes data = generateCorpus(CorpusKind::Html, 2, 8192);
    const auto all = lz77Tokenize(data, Lz77Params{});
    const auto tail =
        lz77TokenizeSuffix(data, Lz77Params{}, 4096);
    // The suffix token stream covers exactly the last 4096 bytes.
    std::size_t covered = 0;
    for (const auto &t : tail)
        covered += t.isMatch ? t.length : 1;
    EXPECT_EQ(covered, 4096u);
    EXPECT_LT(tail.size(), all.size());
}

} // namespace
} // namespace compress
} // namespace xfm

namespace xfm
{
namespace compress
{
namespace
{

/** Corrupt-input robustness: decompression of damaged or foreign
 *  blocks must either throw FatalError or return data — never
 *  crash, hang, or read out of bounds. */
class CodecRobustness : public ::testing::TestWithParam<Algorithm>
{
  protected:
    std::unique_ptr<Compressor> codec_ = makeCompressor(GetParam());
};

TEST_P(CodecRobustness, SingleByteCorruptionNeverCrashes)
{
    const Bytes page =
        generateCorpus(CorpusKind::EnglishText, 31, 4096);
    const Bytes block = codec_->compress(page);
    Rng rng(37);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes damaged = block;
        const auto pos = rng.uniformInt(damaged.size());
        damaged[pos] ^= static_cast<std::uint8_t>(
            1 + rng.uniformInt(255));
        try {
            const Bytes out = codec_->decompress(damaged);
            (void)out;  // silently-wrong output is acceptable here
        } catch (const FatalError &) {
            // clean rejection is the expected common case
        }
    }
}

TEST_P(CodecRobustness, RandomGarbageNeverCrashes)
{
    Rng rng(41);
    for (int trial = 0; trial < 200; ++trial) {
        Bytes garbage(1 + rng.uniformInt(512));
        for (auto &b : garbage)
            b = static_cast<std::uint8_t>(rng.next());
        try {
            codec_->decompress(garbage);
        } catch (const FatalError &) {
        }
    }
}

TEST_P(CodecRobustness, ForeignBlocksRejectedOrHarmless)
{
    // Feed every codec blocks produced by the other two.
    const Bytes page = generateCorpus(CorpusKind::Json, 43, 4096);
    for (auto other : {Algorithm::LzFast, Algorithm::Deflate,
                       Algorithm::ZstdLike}) {
        if (other == GetParam())
            continue;
        const Bytes foreign = makeCompressor(other)->compress(page);
        try {
            codec_->decompress(foreign);
        } catch (const FatalError &) {
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecRobustness,
    ::testing::Values(Algorithm::LzFast, Algorithm::Deflate,
                      Algorithm::ZstdLike),
    [](const auto &info) { return algorithmName(info.param); });

} // namespace
} // namespace compress
} // namespace xfm

// ------------------------------------------------------------------
// PR 10 hot-path and preset-dictionary coverage.

#include "compress/dict.hh"
#include "compress/hotpaths.hh"

namespace xfm
{
namespace compress
{
namespace
{

/** The SWAR 64-bit match extension must agree with the reference
 *  byte scan at every alignment and boundary. */
TEST(SwarMatch, BoundaryLengthsAgreeWithReference)
{
    // Two buffers sharing an i-byte prefix for every i spanning the
    // word boundaries the SWAR kernel cares about.
    for (std::uint32_t prefix :
         {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u, 65u, 127u}) {
        Bytes a(160, 0x5A);
        Bytes b(a);
        b[prefix] ^= 0x01;  // first difference exactly at `prefix`
        for (std::uint32_t limit :
             {prefix, prefix + 1, prefix + 9, 160u}) {
            const auto want = matchLengthReference(
                a.data(), b.data(), std::min<std::uint32_t>(limit, 160));
            const auto got = matchLengthFast(
                a.data(), b.data(), std::min<std::uint32_t>(limit, 160));
            EXPECT_EQ(got, want)
                << "prefix=" << prefix << " limit=" << limit;
        }
    }
}

TEST(SwarMatch, UnalignedPointersAgree)
{
    Rng rng(7);
    Bytes buf(512);
    for (auto &byte : buf)
        byte = static_cast<std::uint8_t>(rng.uniformInt(4));
    for (std::size_t oa = 0; oa < 9; ++oa) {
        for (std::size_t ob = 0; ob < 9; ++ob) {
            const std::uint32_t limit = static_cast<std::uint32_t>(
                buf.size() - std::max(oa, ob) - 1);
            EXPECT_EQ(matchLengthFast(buf.data() + oa,
                                      buf.data() + ob, limit),
                      matchLengthReference(buf.data() + oa,
                                           buf.data() + ob, limit));
        }
    }
}

TEST(SwarMatch, AllEqualHitsLimit)
{
    const Bytes a(300, 0xEE);
    const Bytes b(300, 0xEE);
    EXPECT_EQ(matchLengthFast(a.data(), b.data(), 300), 300u);
    EXPECT_EQ(matchLengthFast(a.data(), b.data(), 0), 0u);
}

TEST(SwarMatch, FirstByteDiffers)
{
    const Bytes a(64, 1);
    const Bytes b(64, 2);
    EXPECT_EQ(matchLengthFast(a.data(), b.data(), 64), 0u);
}

/** Page-tail reads: the fast scan must not require padding past the
 *  limit (runs clean under ASan with the buffers ending exactly at
 *  the limit). */
TEST(SwarMatch, PageTailExactLimit)
{
    for (std::size_t n : {1u, 5u, 8u, 13u, 64u, 100u}) {
        const Bytes a(n, 0x42);
        const Bytes b(n, 0x42);
        EXPECT_EQ(matchLengthFast(a.data(), b.data(),
                                  static_cast<std::uint32_t>(n)),
                  n);
    }
}

/** decodePair() must consume bits exactly like two decode() calls,
 *  on alphabets with and without subtable-deep codes. */
TEST(Huffman, BatchedPairDecodeMatchesScalar)
{
    // Two shapes: a flat-ish literal alphabet (all codes fit the
    // root) and a skewed one whose rare symbols get >11-bit codes
    // and exercise the two-level subtables.
    const std::vector<std::vector<std::uint64_t>> shapes = {
        [] {
            std::vector<std::uint64_t> c(300, 1);
            return c;
        }(),
        [] {
            std::vector<std::uint64_t> c(300, 1);
            for (std::size_t s = 0; s < 8; ++s)
                c[s] = 1 << 14;
            return c;
        }(),
    };
    for (const auto &counts : shapes) {
        const auto lengths = huffmanCodeLengths(counts);
        unsigned max_len = 0;
        for (auto len : lengths)
            max_len = std::max<unsigned>(max_len, len);
        HuffmanEncoder enc(lengths);
        HuffmanDecoder dec(lengths);

        Rng rng(max_len);
        std::vector<std::uint32_t> symbols(4096);
        for (auto &s : symbols)
            s = static_cast<std::uint32_t>(
                rng.uniformInt(counts.size()));
        Bytes stream;
        BitWriter bw(stream);
        for (const auto s : symbols)
            enc.encode(bw, s);
        bw.flush();

        BitReader scalar(stream);
        BitReader paired(stream);
        std::vector<std::uint32_t> got_scalar;
        std::vector<std::uint32_t> got_paired;
        while (got_scalar.size() < symbols.size())
            got_scalar.push_back(dec.decode(scalar));
        while (got_paired.size() < symbols.size()) {
            std::uint32_t s0 = 0;
            std::uint32_t s1 = 0;
            const unsigned n = dec.decodePair(paired, s0, s1);
            got_paired.push_back(s0);
            if (n == 2)
                got_paired.push_back(s1);
        }
        // A pair at the final symbol may overshoot by one; trim.
        got_paired.resize(symbols.size());
        EXPECT_EQ(got_scalar, symbols);
        EXPECT_EQ(got_paired, symbols);
    }
}

TEST(Huffman, SubtableDeepCodesRoundTrip)
{
    // Force codes deeper than the 11-bit root: a huge skew pushes
    // the rare tail to the 15-bit limit.
    std::vector<std::uint64_t> counts(600, 1);
    counts[0] = 1ull << 30;
    counts[1] = 1ull << 20;
    const auto lengths = huffmanCodeLengths(counts);
    unsigned max_len = 0;
    for (auto len : lengths)
        max_len = std::max<unsigned>(max_len, len);
    ASSERT_GT(max_len, 11u) << "shape failed to exceed the root";

    HuffmanEncoder enc(lengths);
    HuffmanDecoder dec(lengths);
    std::vector<std::uint32_t> symbols;
    for (std::uint32_t s = 0; s < 600; ++s) {
        symbols.push_back(s);
        symbols.push_back(0);  // interleave the hot symbol
    }
    Bytes stream;
    BitWriter bw(stream);
    for (const auto s : symbols)
        enc.encode(bw, s);
    bw.flush();
    BitReader br(stream);
    for (const auto want : symbols)
        EXPECT_EQ(dec.decode(br), want);
}

/** The hot-path toggles change speed only: compressed bytes must be
 *  identical with the SWAR matcher and batched Huffman decode
 *  forced off. */
TEST(Hotpaths, TogglesPreserveCompressedBytes)
{
    for (const auto algo :
         {Algorithm::LzFast, Algorithm::Deflate, Algorithm::ZstdLike}) {
        const auto codec = makeCompressor(algo);
        for (const auto kind :
             {CorpusKind::EnglishText, CorpusKind::Json,
              CorpusKind::ZeroHeavy}) {
            const Bytes data = generateCorpus(kind, 11, 16384);
            Bytes fast_block;
            Bytes scalar_block;
            codec->compressInto(data, fast_block);
            {
                hotpaths::ScopedToggle no_swar(hotpaths::swarMatch,
                                               false);
                hotpaths::ScopedToggle no_pairs(
                    hotpaths::batchedHuffman, false);
                codec->compressInto(data, scalar_block);
                Bytes out;
                codec->decompressInto(scalar_block, out);
                EXPECT_EQ(out, data);
            }
            EXPECT_EQ(fast_block, scalar_block)
                << algorithmName(algo) << "/" << corpusName(kind);
        }
    }
}

/** Steady-state tokenisation reuses the pooled finder tables
 *  instead of reallocating them per call. */
TEST(FinderPool, NoAllocationSteadyState)
{
    const Bytes page = generateCorpus(CorpusKind::Html, 3, 4096);
    lz77Tokenize(page, Lz77Params{});  // warm this thread's pool
    const auto warm = finderTableStats();
    for (int i = 0; i < 16; ++i)
        lz77Tokenize(page, Lz77Params{});
    const auto after = finderTableStats();
    EXPECT_EQ(after.first, warm.first)
        << "steady-state tokenisation grew a finder table";
    EXPECT_GE(after.second, warm.second + 16);
}

// ------------------------------------------------------------ dict

class DictTest : public ::testing::TestWithParam<Algorithm>
{
  protected:
    std::unique_ptr<Compressor> codec_ = makeCompressor(GetParam());
};

/** The six spatially-correlated classes dict mode targets. */
const std::vector<CorpusKind> &
dictCorpora()
{
    static const std::vector<CorpusKind> kinds = {
        CorpusKind::Json,     CorpusKind::Html,
        CorpusKind::SourceCode, CorpusKind::LogLines,
        CorpusKind::KeyValue, CorpusKind::Dictionary,
    };
    return kinds;
}

TEST_P(DictTest, ShardRoundTripAllCorpora)
{
    for (const auto kind : dictCorpora()) {
        const Bytes page = generateCorpus(kind, 17, 4096);
        const Bytes dict = buildPresetDictionary(page, 256, 2048);
        ASSERT_FALSE(dict.empty());
        // Quarter-page shards, as 4-DIMM interleave produces.
        for (std::size_t d = 0; d < 4; ++d) {
            const ByteSpan shard{page.data() + d * 1024, 1024};
            Bytes self_block;
            Bytes ref_block;
            encodeShard(*codec_, dict, shard, self_block);
            encodeShardRef(*codec_, dict, shard, ref_block);

            const Bytes want(shard.begin(), shard.end());
            Bytes out;
            decodeShard(*codec_, self_block, out);
            EXPECT_EQ(out, want);
            decodeShard(*codec_, ref_block, dict, out);
            EXPECT_EQ(out, want);
        }
    }
}

TEST_P(DictTest, PackedDictionaryRoundTrips)
{
    for (const auto kind : dictCorpora()) {
        const Bytes page = generateCorpus(kind, 23, 4096);
        const Bytes dict = buildPresetDictionary(page, 256, 2048);
        Bytes packed;
        packDict(*codec_, dict, packed);
        ASSERT_LE(packed.size(), packedDictBound(dict.size()));
        EXPECT_EQ(unpackDict(*codec_, packed), dict);
    }
}

TEST_P(DictTest, RefBlockWithoutDictIsFatal)
{
    const Bytes page = generateCorpus(CorpusKind::Json, 3, 4096);
    const Bytes dict = buildPresetDictionary(page, 256, 2048);
    Bytes block;
    if (!encodeShardRef(*codec_, dict, ByteSpan{page.data(), 1024},
                        block))
        GTEST_SKIP() << "dict container not used for this codec";
    Bytes out;
    EXPECT_THROW(decodeShard(*codec_, block, out), FatalError);
    // Wrong-length dictionary must also be rejected.
    const Bytes wrong(dict.size() + 1, 0);
    EXPECT_THROW(decodeShard(*codec_, block, wrong, out), FatalError);
}

TEST_P(DictTest, EmptyDictFallsBackToPlain)
{
    const Bytes page = generateCorpus(CorpusKind::Html, 5, 4096);
    Bytes block;
    EXPECT_FALSE(
        encodeShardRef(*codec_, ByteSpan{}, page, block));
    Bytes out;
    decodeShard(*codec_, block, out);
    EXPECT_EQ(out, page);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, DictTest,
    ::testing::Values(Algorithm::LzFast, Algorithm::Deflate,
                      Algorithm::ZstdLike),
    [](const auto &info) { return algorithmName(info.param); });

TEST(DictStripes, SumAndFitInvariants)
{
    // Padding absorbs the dictionary when the shards are skewed;
    // the slot grows (evenly) only when it cannot.
    const std::vector<std::uint32_t> skewed = {900, 300, 310, 280};
    const auto s1 = dictStripes(skewed, 1200);
    EXPECT_EQ(dictSlotSize(skewed, 1200), 900u);
    std::uint32_t total = 0;
    for (std::size_t d = 0; d < s1.size(); ++d) {
        total += s1[d];
        EXPECT_LE(skewed[d] + s1[d], 900u);
    }
    EXPECT_EQ(total, 1200u);

    const std::vector<std::uint32_t> flat = {500, 500, 500, 500};
    const std::uint32_t slot = dictSlotSize(flat, 1000);
    EXPECT_EQ(slot, 750u);  // 1000 / 4 DIMMs of growth
    const auto s2 = dictStripes(flat, 1000);
    total = 0;
    for (std::size_t d = 0; d < s2.size(); ++d) {
        total += s2[d];
        EXPECT_LE(flat[d] + s2[d], slot);
    }
    EXPECT_EQ(total, 1000u);

    // No dictionary: the slot is just the largest shard.
    EXPECT_EQ(dictSlotSize(skewed, 0), 900u);
}

TEST(Dict, BuildIsDeterministicAndBounded)
{
    const Bytes page = generateCorpus(CorpusKind::LogLines, 9, 4096);
    const Bytes a = buildPresetDictionary(page, 256, 2048);
    const Bytes b = buildPresetDictionary(page, 256, 2048);
    EXPECT_EQ(a, b);
    EXPECT_LE(a.size(), 2048u);
    // Whole-chunk sampling: every dictionary byte exists in the page.
    EXPECT_FALSE(a.empty());
}

} // namespace
} // namespace compress
} // namespace xfm
