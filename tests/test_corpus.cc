/**
 * @file
 * Tests for the synthetic corpus generators: determinism, size
 * contracts, and compressibility ordering used by Fig. 8.
 */

#include <gtest/gtest.h>

#include <set>

#include "compress/corpus.hh"
#include "compress/deflate.hh"

namespace xfm
{
namespace compress
{
namespace
{

class CorpusTest : public ::testing::TestWithParam<CorpusKind>
{};

TEST_P(CorpusTest, ExactSize)
{
    for (std::size_t size : {std::size_t(0), std::size_t(1),
                             std::size_t(4096), std::size_t(10000)}) {
        EXPECT_EQ(generateCorpus(GetParam(), 1, size).size(), size);
    }
}

TEST_P(CorpusTest, DeterministicForSeed)
{
    EXPECT_EQ(generateCorpus(GetParam(), 42, 8192),
              generateCorpus(GetParam(), 42, 8192));
}

TEST_P(CorpusTest, SeedChangesContent)
{
    if (GetParam() == CorpusKind::ZeroHeavy)
        GTEST_SKIP() << "mostly-zero corpus may collide across seeds";
    EXPECT_NE(generateCorpus(GetParam(), 1, 8192),
              generateCorpus(GetParam(), 2, 8192));
}

TEST_P(CorpusTest, RoundTripsThroughDeflate)
{
    DeflateCodec codec;
    const Bytes corpus = generateCorpus(GetParam(), 3, 16 * 1024);
    EXPECT_EQ(codec.decompress(codec.compress(corpus)), corpus);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, CorpusTest, ::testing::ValuesIn(allCorpusKinds()),
    [](const auto &info) {
        std::string n = corpusName(info.param);
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Corpus, SixteenKindsWithUniqueNames)
{
    const auto &kinds = allCorpusKinds();
    EXPECT_EQ(kinds.size(), 16u);
    std::set<std::string> names;
    for (auto k : kinds)
        names.insert(corpusName(k));
    EXPECT_EQ(names.size(), kinds.size());
}

TEST(Corpus, CompressibilityOrdering)
{
    DeflateCodec codec;
    auto compressed_size = [&](CorpusKind k) {
        const Bytes c = generateCorpus(k, 7, 32 * 1024);
        return codec.compress(c).size();
    };
    // Zero-heavy pages compress best; random bytes worst; text in
    // between. This ordering is what Fig. 8 relies on.
    const auto zero = compressed_size(CorpusKind::ZeroHeavy);
    const auto text = compressed_size(CorpusKind::EnglishText);
    const auto rand = compressed_size(CorpusKind::RandomBytes);
    EXPECT_LT(zero, text);
    EXPECT_LT(text, rand);
    EXPECT_GE(rand, std::size_t(32 * 1024));  // stored block
}

TEST(Corpus, TextCorpusIsMostlyPrintable)
{
    const Bytes c = generateCorpus(CorpusKind::EnglishText, 11, 4096);
    std::size_t printable = 0;
    for (auto b : c)
        if ((b >= 0x20 && b < 0x7F) || b == '\n')
            ++printable;
    EXPECT_GT(printable, c.size() * 95 / 100);
}

TEST(Corpus, PaginateDropsPartialTail)
{
    Bytes data(10000, 1);
    const auto pages = paginate(data, 4096);
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0].size(), 4096u);
    EXPECT_EQ(pages[1].size(), 4096u);
}

TEST(Corpus, PaginatePreservesContent)
{
    const Bytes corpus = generateCorpus(CorpusKind::Json, 13, 12288);
    const auto pages = paginate(corpus, 4096);
    ASSERT_EQ(pages.size(), 3u);
    for (std::size_t p = 0; p < pages.size(); ++p)
        for (std::size_t i = 0; i < 4096; ++i)
            ASSERT_EQ(pages[p][i], corpus[p * 4096 + i]);
}

TEST(Corpus, HeapObjectsHavePointerStructure)
{
    const Bytes c = generateCorpus(CorpusKind::HeapObjects, 17, 4096);
    // Every 32-byte object ends with 8 zero padding bytes.
    for (std::size_t obj = 0; obj + 32 <= c.size(); obj += 32)
        for (std::size_t k = 24; k < 32; ++k)
            ASSERT_EQ(c[obj + k], 0);
}

} // namespace
} // namespace compress
} // namespace xfm
