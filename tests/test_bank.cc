/**
 * @file
 * Tests for the SALP bank model (paper Fig. 7): legality of
 * conditional and random accesses against the per-subarray row
 * buffers and the shared global bitlines.
 */

#include <gtest/gtest.h>

#include "dram/bank.hh"

namespace xfm
{
namespace dram
{
namespace
{

class BankTest : public ::testing::Test
{
  protected:
    BankTest() : dev_(ddr5Device32Gb()), bank_(dev_) {}

    DeviceConfig dev_;
    Bank bank_;
};

TEST_F(BankTest, GeometryFromDevice)
{
    EXPECT_EQ(bank_.subarrays(), dev_.subarraysPerBank);
    EXPECT_EQ(bank_.subarrayOf(0), 0u);
    EXPECT_EQ(bank_.subarrayOf(dev_.rowsPerSubarray()), 1u);
}

TEST_F(BankTest, ConditionalRequiresRefreshSet)
{
    bank_.beginRefresh(100, 16);
    EXPECT_EQ(bank_.accessConditional(100), BankAccessResult::Ok);
    EXPECT_EQ(bank_.accessConditional(115), BankAccessResult::Ok);
    EXPECT_EQ(bank_.accessConditional(116),
              BankAccessResult::SubarrayBusy);
    EXPECT_EQ(bank_.accessConditional(99),
              BankAccessResult::SubarrayBusy);
    bank_.endRefresh();
}

TEST_F(BankTest, RefreshSetWrapsAtBankEnd)
{
    const std::uint32_t last = dev_.rowsPerBank - 4;
    bank_.beginRefresh(last, 16);
    EXPECT_TRUE(bank_.rowInRefreshSet(last));
    EXPECT_TRUE(bank_.rowInRefreshSet(dev_.rowsPerBank - 1));
    EXPECT_TRUE(bank_.rowInRefreshSet(0));   // wrapped
    EXPECT_TRUE(bank_.rowInRefreshSet(11));
    EXPECT_FALSE(bank_.rowInRefreshSet(12));
    bank_.endRefresh();
}

TEST_F(BankTest, RandomAccessToRefreshedSubarrayConflicts)
{
    // Rows 0..15 are being refreshed: rows 0..511 share subarray 0
    // (512 rows per subarray), so any row in subarray 0 conflicts.
    bank_.beginRefresh(0, 16);
    EXPECT_EQ(bank_.accessRandom(300),
              BankAccessResult::SubarrayBusy);
    EXPECT_EQ(bank_.subarrayConflicts(), 1u);
    // Subarray 1 (rows 512..1023) is idle.
    EXPECT_EQ(bank_.accessRandom(600), BankAccessResult::Ok);
    bank_.endRefresh();
}

TEST_F(BankTest, GlobalBitlinesSerialiseSubarrays)
{
    bank_.beginRefresh(0, 16);
    ASSERT_EQ(bank_.accessRandom(600), BankAccessResult::Ok);
    // A second random access in a *different* subarray must wait
    // for the bitlines.
    EXPECT_EQ(bank_.accessRandom(1200),
              BankAccessResult::GlobalBitlineBusy);
    EXPECT_EQ(bank_.bitlineConflicts(), 1u);
    // Same subarray reuses the open row buffer.
    EXPECT_EQ(bank_.accessRandom(601), BankAccessResult::Ok);
    bank_.releaseRandom();
    EXPECT_EQ(bank_.accessRandom(1200), BankAccessResult::Ok);
    bank_.endRefresh();
}

TEST_F(BankTest, EndRefreshPrechargesEverything)
{
    bank_.beginRefresh(0, 16);
    ASSERT_EQ(bank_.accessRandom(600), BankAccessResult::Ok);
    bank_.endRefresh();
    EXPECT_FALSE(bank_.refreshing());
    // Next window: the previously open subarray was precharged.
    bank_.beginRefresh(16, 16);
    EXPECT_EQ(bank_.accessRandom(5000), BankAccessResult::Ok);
    bank_.endRefresh();
}

TEST_F(BankTest, RefreshSpansManySubarraysConflictRate)
{
    // With 16 rows per REF spread over consecutive rows, only
    // subarray 0 is busy; 255 of 256 subarrays accept randoms —
    // matching the paper's observation that refreshed rows each
    // belong to a different subarray and conflicts are rare.
    bank_.beginRefresh(0, dev_.rowsPerRefresh);
    int ok = 0;
    for (std::uint32_t s = 0; s < bank_.subarrays(); ++s) {
        const std::uint32_t row = s * dev_.rowsPerSubarray() + 100;
        if (bank_.accessRandom(row) == BankAccessResult::Ok) {
            ++ok;
            bank_.releaseRandom();
        }
    }
    EXPECT_EQ(ok, static_cast<int>(bank_.subarrays()) - 1);
    bank_.endRefresh();
}

} // namespace
} // namespace dram
} // namespace xfm
