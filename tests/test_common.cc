/**
 * @file
 * Unit tests for the common library: logging, units, RNG, stats.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/units.hh"

namespace xfm
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config value ", 42), FatalError);
}

TEST(Logging, FatalMessageContainsArguments)
{
    try {
        fatal("limit=", 17, " exceeded");
        FAIL() << "fatal did not throw";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("limit=17"),
                  std::string::npos);
    }
}

TEST(Units, TimeConversionsExact)
{
    EXPECT_EQ(nanoseconds(1.0), 1000u);
    EXPECT_EQ(microseconds(1.0), 1000000u);
    EXPECT_EQ(milliseconds(32.0), 32000000000ull);
    EXPECT_EQ(seconds(1.0), 1000000000000ull);
    EXPECT_DOUBLE_EQ(ticksToNs(nanoseconds(410.0)), 410.0);
    EXPECT_DOUBLE_EQ(ticksToMs(milliseconds(32.0)), 32.0);
}

TEST(Units, ByteHelpers)
{
    EXPECT_EQ(kib(4), 4096u);
    EXPECT_EQ(mib(2), 2097152u);
    EXPECT_EQ(gib(1), 1073741824u);
    EXPECT_EQ(tib(1), gib(1024));
    EXPECT_EQ(pageBytes, kib(4));
}

TEST(Units, BandwidthConversion)
{
    // 25 bytes in 1 ns = 25 GB/s.
    EXPECT_DOUBLE_EQ(bytesPerTickToGBps(25.0, nanoseconds(1.0)), 25.0);
    EXPECT_DOUBLE_EQ(bytesPerTickToGBps(100.0, 0), 0.0);
}

TEST(Units, Formatters)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(kib(4)), "4.00 KiB");
    EXPECT_EQ(formatBytes(mib(8)), "8.00 MiB");
    EXPECT_EQ(formatTicks(nanoseconds(410.0)), "410.00 ns");
}

TEST(Rng, Deterministic)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(11);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng rng(17);
    const std::uint64_t n = 1000;
    std::uint64_t low = 0;
    const int draws = 20000;
    for (int i = 0; i < draws; ++i)
        if (rng.zipf(n, 0.99) < n / 10)
            ++low;
    // With theta ~1, far more than 10% of mass is in the lowest 10%.
    EXPECT_GT(static_cast<double>(low) / draws, 0.5);
}

TEST(Rng, ZipfZeroThetaIsUniform)
{
    Rng rng(19);
    const std::uint64_t n = 10;
    std::vector<int> hist(n, 0);
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        ++hist[rng.zipf(n, 0.0)];
    for (auto h : hist)
        EXPECT_NEAR(static_cast<double>(h) / draws, 0.1, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(23);
    const double p = 0.2;
    double sum = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        sum += static_cast<double>(rng.geometric(p));
    // Mean of geometric (failures before success) is (1-p)/p = 4.
    EXPECT_NEAR(sum / draws, 4.0, 0.15);
}

TEST(Stats, CounterBasics)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageTracksMoments)
{
    stats::Average a;
    a.sample(1.0);
    a.sample(2.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Stats, AverageEmptyIsZero)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Stats, HistogramBucketsAndTails)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(15.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Stats, HistogramPercentile)
{
    stats::Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.99), 99.0, 2.0);
}

TEST(Stats, AverageResetRestoresEmptySemantics)
{
    stats::Average a;
    a.sample(-7.0);
    a.sample(3.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    // min/max must re-initialise, not remember pre-reset extremes.
    a.sample(5.0);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Stats, HistogramResetClearsEverything)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);
    h.sample(5.0);
    h.sample(20.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_EQ(h.bucketCount(i), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
    // Reusable after reset.
    h.sample(5.0);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.total(), 1u);
}

TEST(Stats, HistogramSingleSamplePercentile)
{
    // A lone sample must dominate every percentile; the truncated
    // rank p * total == 0 used to report lo instead.
    stats::Histogram h(0.0, 100.0, 100);
    h.sample(42.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 43.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 43.0);
}

TEST(Stats, HistogramBucketEdgeValues)
{
    stats::Histogram h(0.0, 10.0, 10);
    h.sample(0.0);   // lo is in range -> bucket 0
    h.sample(3.0);   // interior bucket boundary -> bucket 3
    h.sample(10.0);  // hi is out of range ([lo, hi))
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
}

} // namespace
} // namespace xfm

#include "common/config.hh"

namespace xfm
{
namespace
{

TEST(Config, ParsesKeysAndTypes)
{
    const auto cfg = Config::parseString(
        "backend = xfm\n"
        "pages=1024   # trailing comment\n"
        "rate = 0.25\n"
        "verbose = true\n");
    EXPECT_EQ(cfg.getString("backend"), "xfm");
    EXPECT_EQ(cfg.getU64("pages"), 1024u);
    EXPECT_DOUBLE_EQ(cfg.getDouble("rate"), 0.25);
    EXPECT_TRUE(cfg.getBool("verbose"));
}

TEST(Config, DefaultsWhenAbsent)
{
    const auto cfg = Config::parseString("");
    EXPECT_EQ(cfg.getString("x", "d"), "d");
    EXPECT_EQ(cfg.getU64("y", 7), 7u);
    EXPECT_DOUBLE_EQ(cfg.getDouble("z", 1.5), 1.5);
    EXPECT_FALSE(cfg.getBool("w", false));
    EXPECT_FALSE(cfg.has("x"));
}

TEST(Config, MalformedLineFatal)
{
    EXPECT_THROW(Config::parseString("just a line\n"), FatalError);
    EXPECT_THROW(Config::parseString("= value\n"), FatalError);
}

TEST(Config, BadTypesFatal)
{
    const auto cfg = Config::parseString("n = abc\nb = maybe\n");
    EXPECT_THROW(cfg.getU64("n"), FatalError);
    EXPECT_THROW(cfg.getDouble("n"), FatalError);
    EXPECT_THROW(cfg.getBool("b"), FatalError);
}

TEST(Config, LastValueWinsAndOrderKept)
{
    const auto cfg = Config::parseString("a = 1\nb = 2\na = 3\n");
    EXPECT_EQ(cfg.getU64("a"), 3u);
    const auto keys = cfg.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a");
    EXPECT_EQ(keys[1], "b");
}

TEST(Config, TracksUnconsumedKeys)
{
    const auto cfg = Config::parseString("used = 1\ntypo = 2\n");
    cfg.getU64("used");
    const auto unused = cfg.unconsumedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(Config, BooleanSpellings)
{
    const auto cfg = Config::parseString(
        "a = TRUE\nb = off\nc = 1\nd = No\n");
    EXPECT_TRUE(cfg.getBool("a"));
    EXPECT_FALSE(cfg.getBool("b"));
    EXPECT_TRUE(cfg.getBool("c"));
    EXPECT_FALSE(cfg.getBool("d"));
}

} // namespace
} // namespace xfm
