/**
 * @file
 * Shared helpers for the test suite: deterministic corpus-backed
 * page content and the canonical small system / service
 * configurations that several test binaries build on.
 *
 * Everything here is inline and header-only, so a test that uses
 * only the page helpers does not need to link the service or XFM
 * libraries.
 */

#ifndef XFM_TESTS_TEST_UTIL_HH
#define XFM_TESTS_TEST_UTIL_HH

#include "compress/corpus.hh"
#include "dram/ddr_config.hh"
#include "service/service.hh"
#include "xfm/xfm_backend.hh"

namespace xfm
{
namespace testutil
{

/** One page of deterministic corpus content. */
inline Bytes
corpusPage(compress::CorpusKind kind, std::uint64_t seed)
{
    return compress::generateCorpus(kind, seed, pageBytes);
}

/**
 * The canonical small XFM memory system used across the suite:
 * 256 virtual pages interleaved over @p dimms DDR5 DIMMs, a 16 MiB
 * per-DIMM SFM region at 1 GiB, and a 2 MiB SPM.
 */
inline xfmsys::XfmSystemConfig
testXfmConfig(std::size_t dimms = 4)
{
    xfmsys::XfmSystemConfig cfg;
    cfg.numDimms = dimms;
    cfg.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.dimmMem.channels = 1;
    cfg.dimmMem.dimmsPerChannel = 1;
    cfg.dimmMem.ranksPerDimm = 1;
    cfg.localBase = 0;
    cfg.localPages = 256;
    cfg.sfmBase = gib(1);
    cfg.sfmBytes = mib(16);
    cfg.device.spmBytes = mib(2);
    cfg.device.queueDepth = 64;
    return cfg;
}

/**
 * The canonical 4-tenant service configuration: 64-page shards over
 * a 4-DIMM XFM system with an 8 MiB SFM region and a 1 MiB SPM.
 */
inline service::ServiceConfig
testServiceConfig()
{
    service::ServiceConfig cfg;
    cfg.registry.maxTenants = 4;
    cfg.registry.pagesPerShard = 64;
    cfg.system.numDimms = 4;
    cfg.system.dimmMem.rank.device = dram::ddr5Device32Gb();
    cfg.system.dimmMem.channels = 1;
    cfg.system.dimmMem.dimmsPerChannel = 1;
    cfg.system.dimmMem.ranksPerDimm = 1;
    cfg.system.sfmBase = gib(1);
    cfg.system.sfmBytes = mib(8);
    cfg.system.device.spmBytes = mib(1);
    cfg.system.device.queueDepth = 64;
    return cfg;
}

} // namespace testutil
} // namespace xfm

#endif // XFM_TESTS_TEST_UTIL_HH
