/**
 * @file
 * WorkerPool unit tests: inline/threaded submission, the
 * parallelFor barrier and full index coverage, exception
 * propagation, and the determinism contract (index-order commits
 * produce identical results for any worker count).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/worker_pool.hh"

namespace xfm
{
namespace
{

TEST(WorkerPool, SingleWorkerIsInline)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.workers(), 1u);
    EXPECT_FALSE(pool.parallel());

    // Inline tasks run before submit() returns, on this thread.
    const auto self = std::this_thread::get_id();
    std::thread::id ran_on;
    auto t = pool.submit([&] { ran_on = std::this_thread::get_id(); });
    EXPECT_EQ(ran_on, self);
    t->wait();  // born done; must not block
    EXPECT_EQ(pool.stats().tasks, 1u);
    EXPECT_EQ(pool.stats().inlineTasks, 1u);
}

TEST(WorkerPool, ZeroClampsToOne)
{
    WorkerPool pool(0);
    EXPECT_EQ(pool.workers(), 1u);
    EXPECT_FALSE(pool.parallel());
}

TEST(WorkerPool, ThreadedTasksComplete)
{
    WorkerPool pool(4);
    EXPECT_TRUE(pool.parallel());
    std::vector<WorkerPool::TaskPtr> tasks;
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
        tasks.push_back(pool.submit([&] { ++ran; }));
    for (auto &t : tasks)
        t->wait();
    EXPECT_EQ(ran.load(), 64);
}

TEST(WorkerPool, ParallelForCoversEveryIndexExactlyOnce)
{
    for (const std::size_t workers : {1u, 2u, 5u}) {
        WorkerPool pool(workers);
        std::vector<std::atomic<int>> hits(257);
        pool.parallelFor(hits.size(), [&](std::size_t i) {
            ++hits[i];
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i
                                         << " workers " << workers;
    }
}

TEST(WorkerPool, ParallelForIsABarrier)
{
    WorkerPool pool(4);
    std::atomic<int> done{0};
    pool.parallelFor(100, [&](std::size_t) { ++done; });
    // Every body observed complete once the call returns.
    EXPECT_EQ(done.load(), 100);
}

TEST(WorkerPool, ParallelForZeroAndOne)
{
    WorkerPool pool(3);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> one{0};
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++one;
    });
    EXPECT_EQ(one.load(), 1);
}

TEST(WorkerPool, SubmitPropagatesExceptions)
{
    WorkerPool pool(2);
    auto t = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(t->wait(), std::runtime_error);
}

TEST(WorkerPool, InlineSubmitPropagatesExceptions)
{
    WorkerPool pool(1);
    WorkerPool::TaskPtr t;
    // Inline bodies run during submit(), but the error still
    // surfaces at wait() so both modes have the same interface.
    t = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(t->wait(), std::runtime_error);
}

TEST(WorkerPool, IndexOrderCommitIsWorkerCountInvariant)
{
    // The usage contract of the simulator's hot paths: bodies fill
    // disjoint slots, the caller commits in index order. The
    // committed sequence must be identical for any worker count.
    auto run = [](std::size_t workers) {
        WorkerPool pool(workers);
        std::vector<std::uint64_t> slot(64);
        pool.parallelFor(slot.size(), [&](std::size_t i) {
            slot[i] = i * 2654435761u % 1000;
        });
        std::uint64_t committed = 0;
        for (const auto v : slot)  // serial, index order
            committed = committed * 31 + v;
        return committed;
    };
    const auto base = run(1);
    EXPECT_EQ(run(2), base);
    EXPECT_EQ(run(8), base);
}

TEST(WorkerPool, ManyLoopsReuseThreads)
{
    WorkerPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(16, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum.load(), 50u * (15 * 16 / 2));
    EXPECT_EQ(pool.stats().parallelLoops, 50u);
}

TEST(WorkerPool, DestructorDrainsPendingTasks)
{
    std::atomic<int> ran{0};
    {
        WorkerPool pool(2);
        for (int i = 0; i < 32; ++i)
            pool.submit([&] { ++ran; });
        // No waits: the destructor must finish every queued task
        // before joining.
    }
    EXPECT_EQ(ran.load(), 32);
}

} // namespace
} // namespace xfm
