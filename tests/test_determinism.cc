/**
 * @file
 * Determinism property tests: a (seed, fault plan, workload) triple
 * must be perfectly reproducible. Two full-system runs with the
 * same seeds produce byte-identical end-of-run statistics — fault
 * injections included — while changing the fault seed changes the
 * injected sequence. A separate engine-level check pins down the
 * modeled-size path, which once relied on process-wide state and
 * silently diverged between same-seed runs.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/random.hh"
#include "compress/corpus.hh"
#include "nma/engine.hh"
#include "obs/tracer.hh"
#include "system/system.hh"

namespace xfm
{
namespace
{

using system::BackendKind;
using system::System;
using system::SystemConfig;

SystemConfig
faultedConfig(std::uint64_t fault_seed)
{
    SystemConfig cfg;
    cfg.backend = BackendKind::Xfm;
    cfg.pages = 96;
    cfg.sfmBytes = mib(8);
    cfg.controller.coldThreshold = milliseconds(5.0);
    cfg.controller.scanInterval = milliseconds(1.0);
    cfg.controller.maxSwapOutsPerScan = 16;
    cfg.faultPlan.seed = fault_seed;
    cfg.faultPlan.site(fault::FaultSite::SpmReserveFail).probability =
        0.15;
    cfg.faultPlan.site(fault::FaultSite::EngineStall).probability =
        0.05;
    cfg.faultPlan.site(fault::FaultSite::MmioDoorbellLoss)
        .probability = 0.20;
    return cfg;
}

struct RunResult
{
    std::string stats;            ///< rendered end-of-run stats
    std::string json;             ///< JSON snapshot export
    std::string trace;            ///< JSON-lines trace export
    std::uint64_t injections;     ///< total injected faults
};

/** How runSystem configures the three-tier hierarchy. */
enum class TierMode
{
    Default,       ///< default-constructed TierConfig (disabled)
    ConfiguredOff, ///< every knob populated, enabled = false
    On,            ///< three tiers + spill scan armed
};

/** How runSystem configures per-page preset dictionaries. */
enum class DictMode
{
    Default,       ///< config never mentions dictionaries
    ConfiguredOff, ///< shardDict = false, dictBytes spelled out
    On,            ///< shardDict = true
};

/** One complete demote/promote run under the given fault seed. */
RunResult
runSystem(std::uint64_t fault_seed, std::size_t workers = 1,
          std::uint32_t sq_depth = 1, std::uint32_t cq_coalesce = 1,
          std::size_t sim_shards = 1,
          TierMode tier_mode = TierMode::Default,
          DictMode dict_mode = DictMode::Default)
{
    // Sharded event core: per-DIMM domains staged between tREFI
    // window barriers (DESIGN.md §13). sim_shards = 1 is the
    // classic monolithic kernel.
    EventQueueConfig eq_cfg;
    eq_cfg.shards = sim_shards;
    eq_cfg.windowTicks = dram::ddr5Device32Gb().tREFI();
    eq_cfg.drainWorkers = workers;
    eq_cfg.parallelStageMin = 0;  // stage every window in tests
    EventQueue eq(eq_cfg);
    SystemConfig cfg = faultedConfig(fault_seed);
    cfg.workers = workers;
    cfg.xfmDevice.sqDepth = sq_depth;
    cfg.xfmDevice.cqCoalesce = cq_coalesce;
    if (tier_mode != TierMode::Default) {
        // Every tier knob spelled out; only `enabled` differs
        // between the configured-off and the tiered run.
        cfg.tier.enabled = tier_mode == TierMode::On;
        cfg.tier.policy = sfm::TierPolicy::Auto;
        cfg.tier.promoteWatermark = 2;
        cfg.tier.scanInterval = milliseconds(1.0);
        cfg.tier.spillColdThreshold = milliseconds(5.0);
        cfg.tier.maxSpillsPerScan = 16;
        cfg.tier.dfmBytes = mib(1);
        cfg.tier.faults = cfg.faultPlan;
        cfg.tier.retry = cfg.retry;
    }
    if (dict_mode != DictMode::Default) {
        // Both knobs spelled out; only `shardDict` differs between
        // the configured-off and the dict-enabled run.
        cfg.shardDict = dict_mode == DictMode::On;
        cfg.dictBytes = 2048;
    }
    System sys("sys", eq, cfg);
    obs::Tracer tracer(4096);
    sys.setTracer(&tracer);
    for (sfm::VirtPage p = 0; p < 96; ++p)
        sys.writePage(p, compress::generateCorpus(
                             compress::CorpusKind::LogLines, p + 1,
                             pageBytes));
    sys.start();
    eq.run(milliseconds(60.0));
    // Touch pages in a seeded order so promotions also exercise the
    // backend (and its fault sites) deterministically.
    Rng rng(99);
    for (int i = 0; i < 48; ++i) {
        sys.access(rng.uniformInt(96));
        eq.run(eq.now() + milliseconds(1.0));
    }

    RunResult r;
    r.stats = sys.metrics().renderText();
    r.json = sys.metrics().toJson();
    r.trace = tracer.toJsonLines();
    r.injections = sys.faultInjections();
    return r;
}

TEST(Determinism, SameSeedsSameStats)
{
    const RunResult a = runSystem(7);
    const RunResult b = runSystem(7);
    EXPECT_GT(a.injections, 0u);  // the plan actually fired
    EXPECT_EQ(a.injections, b.injections);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(Determinism, SameSeedsByteIdenticalSnapshotAndTrace)
{
    // The observability exports themselves must be reproducible:
    // same seeds, same config => byte-identical stats.json text and
    // byte-identical JSON-lines trace output.
    const RunResult a = runSystem(7);
    const RunResult b = runSystem(7);
    EXPECT_FALSE(a.json.empty());
    EXPECT_FALSE(a.trace.empty());  // tracer saw real requests
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.trace, b.trace);
}

TEST(Determinism, WorkerCountDoesNotChangeResults)
{
    // The parallel shard-compression contract: the worker count is
    // a host-runtime knob only. The metrics snapshot AND the swap
    // trace must be byte-identical for workers = 1 (fully inline),
    // 2, and 8, fault injection included.
    const RunResult w1 = runSystem(7, 1);
    const RunResult w2 = runSystem(7, 2);
    const RunResult w8 = runSystem(7, 8);
    EXPECT_GT(w1.injections, 0u);
    EXPECT_FALSE(w1.json.empty());
    EXPECT_FALSE(w1.trace.empty());
    EXPECT_EQ(w1.stats, w2.stats);
    EXPECT_EQ(w1.stats, w8.stats);
    EXPECT_EQ(w1.json, w2.json);
    EXPECT_EQ(w1.json, w8.json);
    EXPECT_EQ(w1.trace, w2.trace);
    EXPECT_EQ(w1.trace, w8.trace);
    EXPECT_EQ(w1.injections, w8.injections);
}

TEST(Determinism, ExplicitDepthOneMatchesDefault)
{
    // sq_depth = 1 is the documented legacy default: spelling it out
    // must not change a single byte of any export relative to the
    // default-constructed device config (the ring is not built).
    const RunResult def = runSystem(7);
    const RunResult d1 = runSystem(7, 1, 1, 1);
    EXPECT_EQ(def.stats, d1.stats);
    EXPECT_EQ(def.json, d1.json);
    EXPECT_EQ(def.trace, d1.trace);
}

TEST(Determinism, RingDepthEightIsReproducible)
{
    // The async ring reorders completion delivery relative to the
    // legacy path, but it must do so *identically* on every run:
    // same seeds at sq_depth 8 => byte-identical stats, JSON and
    // trace, across worker counts too (OOO reap is simulated-time
    // ordered, not host-thread ordered).
    const RunResult a = runSystem(7, 1, 8, 2);
    const RunResult b = runSystem(7, 1, 8, 2);
    const RunResult w8 = runSystem(7, 8, 8, 2);
    EXPECT_GT(a.injections, 0u);
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.stats, w8.stats);
    EXPECT_EQ(a.json, w8.json);
    EXPECT_EQ(a.trace, w8.trace);
}

TEST(Determinism, ShardMatrixIsByteIdentical)
{
    // The tentpole contract: metrics snapshot, JSON export, and the
    // span trace are byte-identical for EVERY (sim_shards, workers,
    // sq_depth) combination — sharding, drain workers, and the
    // async ring are all host-runtime knobs, never simulation
    // inputs. Fault injection schedules included.
    const RunResult base = runSystem(7);
    EXPECT_GT(base.injections, 0u);
    EXPECT_FALSE(base.json.empty());
    EXPECT_FALSE(base.trace.empty());
    for (std::size_t shards : {1, 2, 8}) {
        for (std::size_t workers : {1, 8}) {
            for (std::uint32_t sq_depth : {1u, 8u}) {
                // The ring reorders completions relative to depth 1
                // (deterministically), so each depth has its own
                // golden run at shards = 1, workers = 1.
                const RunResult golden =
                    sq_depth == 1 ? base
                                  : runSystem(7, 1, sq_depth, 2);
                const RunResult got =
                    runSystem(7, workers, sq_depth,
                              sq_depth == 1 ? 1 : 2, shards);
                EXPECT_EQ(got.stats, golden.stats)
                    << "shards=" << shards << " workers=" << workers
                    << " sq_depth=" << sq_depth;
                EXPECT_EQ(got.json, golden.json)
                    << "shards=" << shards << " workers=" << workers
                    << " sq_depth=" << sq_depth;
                EXPECT_EQ(got.trace, golden.trace)
                    << "shards=" << shards << " workers=" << workers
                    << " sq_depth=" << sq_depth;
                EXPECT_EQ(got.injections, golden.injections);
            }
        }
    }
}

TEST(Determinism, ExplicitShardOneMatchesDefault)
{
    // sim_shards = 1 spelled out must not change a single byte of
    // any export relative to the default-constructed EventQueue
    // (no barrier is built at all).
    const RunResult def = runSystem(7);
    const RunResult s1 = runSystem(7, 1, 1, 1, 1);
    EXPECT_EQ(def.stats, s1.stats);
    EXPECT_EQ(def.json, s1.json);
    EXPECT_EQ(def.trace, s1.trace);
}

TEST(Determinism, ExplicitRefAbMatchesDefault)
{
    // Refresh-realism opt-out contract: spelling out the default
    // refresh config (all-bank REF, RFM disarmed, no HiRA) must not
    // change a single byte of any export relative to a run that
    // never mentioned refresh — the disarmed controller takes the
    // exact legacy code path (refreshRealismArmed() == false).
    const RunResult def = runSystem(7);
    EventQueueConfig eq_cfg;
    eq_cfg.windowTicks = dram::ddr5Device32Gb().tREFI();
    eq_cfg.parallelStageMin = 0;
    EventQueue eq(eq_cfg);
    SystemConfig cfg = faultedConfig(7);
    cfg.dimmDevice.refreshMode = dram::RefreshMode::RefAb;
    cfg.dimmDevice.rfmRaaimt = 0;
    cfg.dimmDevice.rfmRaammt = 0;
    cfg.dimmDevice.hira = false;
    System sys("sys", eq, cfg);
    obs::Tracer tracer(4096);
    sys.setTracer(&tracer);
    for (sfm::VirtPage p = 0; p < 96; ++p)
        sys.writePage(p, compress::generateCorpus(
                             compress::CorpusKind::LogLines, p + 1,
                             pageBytes));
    sys.start();
    eq.run(milliseconds(60.0));
    Rng rng(99);
    for (int i = 0; i < 48; ++i) {
        sys.access(rng.uniformInt(96));
        eq.run(eq.now() + milliseconds(1.0));
    }
    EXPECT_EQ(def.stats, sys.metrics().renderText());
    EXPECT_EQ(def.json, sys.metrics().toJson());
    EXPECT_EQ(def.trace, tracer.toJsonLines());
    EXPECT_EQ(def.injections, sys.faultInjections());
}

TEST(Determinism, TieringOffMatchesDefault)
{
    // The hard invariant of the tier layer: a fully populated but
    // DISABLED tier config is byte-identical to a run that never
    // mentioned tiering — no TierManager is built, no access-path
    // hook fires, no metric appears.
    const RunResult def = runSystem(7);
    const RunResult off =
        runSystem(7, 1, 1, 1, 1, TierMode::ConfiguredOff);
    EXPECT_EQ(def.stats, off.stats);
    EXPECT_EQ(def.json, off.json);
    EXPECT_EQ(def.trace, off.trace);
    EXPECT_EQ(def.injections, off.injections);
}

TEST(Determinism, TieredMatrixIsByteIdentical)
{
    // Tiering on extends the determinism matrix: the spill scan,
    // the DFM link, and the promote-on-fault path must replay
    // byte-identically across event-core shard counts and drain
    // workers — and differently from the non-tiered run (the tiers
    // actually engaged).
    const RunResult base =
        runSystem(7, 1, 1, 1, 1, TierMode::On);
    const RunResult plain = runSystem(7);
    EXPECT_GT(base.injections, 0u);
    EXPECT_FALSE(base.json.empty());
    EXPECT_FALSE(base.trace.empty());
    EXPECT_NE(base.stats, plain.stats);
    EXPECT_NE(base.json.find(".tier."), std::string::npos);
    for (std::size_t shards : {1, 8}) {
        for (std::size_t workers : {1, 8}) {
            const RunResult got =
                runSystem(7, workers, 1, 1, shards, TierMode::On);
            EXPECT_EQ(got.stats, base.stats)
                << "shards=" << shards << " workers=" << workers;
            EXPECT_EQ(got.json, base.json)
                << "shards=" << shards << " workers=" << workers;
            EXPECT_EQ(got.trace, base.trace)
                << "shards=" << shards << " workers=" << workers;
            EXPECT_EQ(got.injections, base.injections);
        }
    }
}

TEST(Determinism, TieredRingIsReproducible)
{
    // Tiering composed with the async command rings: sq_depth = 8
    // reorders completion delivery under the tier router too, and
    // must do so identically on every run and at any worker count.
    const RunResult a = runSystem(7, 1, 8, 2, 1, TierMode::On);
    const RunResult b = runSystem(7, 8, 8, 2, 8, TierMode::On);
    EXPECT_GT(a.injections, 0u);
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.trace, b.trace);
}

TEST(Determinism, ExplicitDictOffMatchesDefault)
{
    // Preset-dictionary opt-out contract (DESIGN.md §16): spelling
    // out xfm.shard_dict = 0 with the default dict_bytes must not
    // change a single byte of any export relative to a run that
    // never mentioned dictionaries — no dictionary is sampled, no
    // packed dict is placed, no stat appears.
    const RunResult def = runSystem(7);
    const RunResult off = runSystem(7, 1, 1, 1, 1, TierMode::Default,
                                    DictMode::ConfiguredOff);
    EXPECT_EQ(def.stats, off.stats);
    EXPECT_EQ(def.json, off.json);
    EXPECT_EQ(def.trace, off.trace);
    EXPECT_EQ(def.injections, off.injections);
}

TEST(Determinism, DictMatrixIsByteIdentical)
{
    // Dictionaries on extend the determinism matrix: sampling,
    // per-shard adaptive fallback, and water-filled placement must
    // replay byte-identically across event-core shard counts, drain
    // workers, and ring depths — and differently from the plain run
    // (the dictionaries actually engaged).
    const RunResult base =
        runSystem(7, 1, 1, 1, 1, TierMode::Default, DictMode::On);
    const RunResult plain = runSystem(7);
    EXPECT_GT(base.injections, 0u);
    EXPECT_FALSE(base.json.empty());
    EXPECT_FALSE(base.trace.empty());
    EXPECT_NE(base.stats, plain.stats);
    for (std::size_t shards : {1, 8}) {
        for (std::size_t workers : {1, 8}) {
            const RunResult got =
                runSystem(7, workers, 1, 1, shards,
                          TierMode::Default, DictMode::On);
            EXPECT_EQ(got.stats, base.stats)
                << "shards=" << shards << " workers=" << workers;
            EXPECT_EQ(got.json, base.json)
                << "shards=" << shards << " workers=" << workers;
            EXPECT_EQ(got.trace, base.trace)
                << "shards=" << shards << " workers=" << workers;
            EXPECT_EQ(got.injections, base.injections);
        }
    }
    // Composed with the async command rings: depth 8 has its own
    // golden (the ring reorders completions deterministically).
    const RunResult ring1 =
        runSystem(7, 1, 8, 2, 1, TierMode::Default, DictMode::On);
    const RunResult ring2 =
        runSystem(7, 8, 8, 2, 8, TierMode::Default, DictMode::On);
    EXPECT_EQ(ring1.stats, ring2.stats);
    EXPECT_EQ(ring1.json, ring2.json);
    EXPECT_EQ(ring1.trace, ring2.trace);
}

TEST(Determinism, DifferentFaultSeedDiverges)
{
    const RunResult a = runSystem(7);
    const RunResult c = runSystem(8);
    // Same workload, different fault RNG: the injected sequence must
    // differ somewhere observable.
    EXPECT_NE(a.stats, c.stats);
}

TEST(Determinism, ModeledEngineIsPerEngineState)
{
    // Size-model mode uses a jitter counter that must be per-engine:
    // two engines fed identical inputs — in the same process — must
    // emit identical size sequences. (A process-wide counter passes
    // single-engine tests but breaks same-seed reruns.)
    nma::EngineProfile profile;
    profile.modeledRatio = 3.0;
    nma::CompressionEngine a(compress::Algorithm::ZstdLike, profile);
    nma::CompressionEngine b(compress::Algorithm::ZstdLike, profile);
    const Bytes input(pageBytes, 0x5A);
    for (int i = 0; i < 64; ++i) {
        const auto [out_a, lat_a] = a.compress(input);
        const auto [out_b, lat_b] = b.compress(input);
        ASSERT_EQ(out_a.size(), out_b.size())
            << "modeled sizes diverged at call " << i;
        EXPECT_EQ(lat_a, lat_b);
    }
}

} // namespace
} // namespace xfm
