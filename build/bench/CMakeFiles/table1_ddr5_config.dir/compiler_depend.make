# Empty compiler generated dependencies file for table1_ddr5_config.
# This may be replaced when dependencies are built.
