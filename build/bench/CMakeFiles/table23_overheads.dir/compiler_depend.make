# Empty compiler generated dependencies file for table23_overheads.
# This may be replaced when dependencies are built.
