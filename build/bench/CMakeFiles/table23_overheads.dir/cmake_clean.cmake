file(REMOVE_RECURSE
  "CMakeFiles/table23_overheads.dir/table23_overheads.cc.o"
  "CMakeFiles/table23_overheads.dir/table23_overheads.cc.o.d"
  "table23_overheads"
  "table23_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table23_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
