# Empty dependencies file for fig12_cpu_fallbacks.
# This may be replaced when dependencies are built.
