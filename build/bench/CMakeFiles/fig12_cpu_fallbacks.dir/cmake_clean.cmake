file(REMOVE_RECURSE
  "CMakeFiles/fig12_cpu_fallbacks.dir/fig12_cpu_fallbacks.cc.o"
  "CMakeFiles/fig12_cpu_fallbacks.dir/fig12_cpu_fallbacks.cc.o.d"
  "fig12_cpu_fallbacks"
  "fig12_cpu_fallbacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cpu_fallbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
