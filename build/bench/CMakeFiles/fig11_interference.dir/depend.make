# Empty dependencies file for fig11_interference.
# This may be replaced when dependencies are built.
