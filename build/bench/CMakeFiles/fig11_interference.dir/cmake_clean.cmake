file(REMOVE_RECURSE
  "CMakeFiles/fig11_interference.dir/fig11_interference.cc.o"
  "CMakeFiles/fig11_interference.dir/fig11_interference.cc.o.d"
  "fig11_interference"
  "fig11_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
