file(REMOVE_RECURSE
  "CMakeFiles/ablation_io_amplification.dir/ablation_io_amplification.cc.o"
  "CMakeFiles/ablation_io_amplification.dir/ablation_io_amplification.cc.o.d"
  "ablation_io_amplification"
  "ablation_io_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_io_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
