# Empty dependencies file for ablation_io_amplification.
# This may be replaced when dependencies are built.
