file(REMOVE_RECURSE
  "CMakeFiles/ablation_far_tier_latency.dir/ablation_far_tier_latency.cc.o"
  "CMakeFiles/ablation_far_tier_latency.dir/ablation_far_tier_latency.cc.o.d"
  "ablation_far_tier_latency"
  "ablation_far_tier_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_far_tier_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
