# Empty compiler generated dependencies file for ablation_far_tier_latency.
# This may be replaced when dependencies are built.
