file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_dictionary.dir/ablation_shared_dictionary.cc.o"
  "CMakeFiles/ablation_shared_dictionary.dir/ablation_shared_dictionary.cc.o.d"
  "ablation_shared_dictionary"
  "ablation_shared_dictionary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_dictionary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
