file(REMOVE_RECURSE
  "CMakeFiles/endtoend_bandwidth.dir/endtoend_bandwidth.cc.o"
  "CMakeFiles/endtoend_bandwidth.dir/endtoend_bandwidth.cc.o.d"
  "endtoend_bandwidth"
  "endtoend_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endtoend_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
