# Empty compiler generated dependencies file for endtoend_bandwidth.
# This may be replaced when dependencies are built.
