# Empty compiler generated dependencies file for fig08_multichannel_ratio.
# This may be replaced when dependencies are built.
