file(REMOVE_RECURSE
  "CMakeFiles/fig08_multichannel_ratio.dir/fig08_multichannel_ratio.cc.o"
  "CMakeFiles/fig08_multichannel_ratio.dir/fig08_multichannel_ratio.cc.o.d"
  "fig08_multichannel_ratio"
  "fig08_multichannel_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_multichannel_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
