file(REMOVE_RECURSE
  "CMakeFiles/ablation_lazy_mmio.dir/ablation_lazy_mmio.cc.o"
  "CMakeFiles/ablation_lazy_mmio.dir/ablation_lazy_mmio.cc.o.d"
  "ablation_lazy_mmio"
  "ablation_lazy_mmio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lazy_mmio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
