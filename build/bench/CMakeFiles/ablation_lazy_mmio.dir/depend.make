# Empty dependencies file for ablation_lazy_mmio.
# This may be replaced when dependencies are built.
