file(REMOVE_RECURSE
  "CMakeFiles/fig03_cost_model.dir/fig03_cost_model.cc.o"
  "CMakeFiles/fig03_cost_model.dir/fig03_cost_model.cc.o.d"
  "fig03_cost_model"
  "fig03_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
