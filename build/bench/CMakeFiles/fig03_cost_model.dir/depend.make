# Empty dependencies file for fig03_cost_model.
# This may be replaced when dependencies are built.
