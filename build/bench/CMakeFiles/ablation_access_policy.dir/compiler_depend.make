# Empty compiler generated dependencies file for ablation_access_policy.
# This may be replaced when dependencies are built.
