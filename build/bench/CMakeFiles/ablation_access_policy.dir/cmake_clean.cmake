file(REMOVE_RECURSE
  "CMakeFiles/ablation_access_policy.dir/ablation_access_policy.cc.o"
  "CMakeFiles/ablation_access_policy.dir/ablation_access_policy.cc.o.d"
  "ablation_access_policy"
  "ablation_access_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_access_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
