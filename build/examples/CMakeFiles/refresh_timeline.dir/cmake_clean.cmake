file(REMOVE_RECURSE
  "CMakeFiles/refresh_timeline.dir/refresh_timeline.cpp.o"
  "CMakeFiles/refresh_timeline.dir/refresh_timeline.cpp.o.d"
  "refresh_timeline"
  "refresh_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refresh_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
