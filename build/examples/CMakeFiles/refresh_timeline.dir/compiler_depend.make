# Empty compiler generated dependencies file for refresh_timeline.
# This may be replaced when dependencies are built.
