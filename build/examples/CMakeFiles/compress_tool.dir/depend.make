# Empty dependencies file for compress_tool.
# This may be replaced when dependencies are built.
