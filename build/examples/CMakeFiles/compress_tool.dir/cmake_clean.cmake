file(REMOVE_RECURSE
  "CMakeFiles/compress_tool.dir/compress_tool.cpp.o"
  "CMakeFiles/compress_tool.dir/compress_tool.cpp.o.d"
  "compress_tool"
  "compress_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
