# Empty compiler generated dependencies file for xfmsim.
# This may be replaced when dependencies are built.
