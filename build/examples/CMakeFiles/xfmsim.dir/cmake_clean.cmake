file(REMOVE_RECURSE
  "CMakeFiles/xfmsim.dir/xfmsim.cpp.o"
  "CMakeFiles/xfmsim.dir/xfmsim.cpp.o.d"
  "xfmsim"
  "xfmsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfmsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
