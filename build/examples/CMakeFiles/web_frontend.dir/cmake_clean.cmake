file(REMOVE_RECURSE
  "CMakeFiles/web_frontend.dir/web_frontend.cpp.o"
  "CMakeFiles/web_frontend.dir/web_frontend.cpp.o.d"
  "web_frontend"
  "web_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
