# Empty compiler generated dependencies file for web_frontend.
# This may be replaced when dependencies are built.
