# Empty compiler generated dependencies file for dataframe_analytics.
# This may be replaced when dependencies are built.
