file(REMOVE_RECURSE
  "CMakeFiles/dataframe_analytics.dir/dataframe_analytics.cpp.o"
  "CMakeFiles/dataframe_analytics.dir/dataframe_analytics.cpp.o.d"
  "dataframe_analytics"
  "dataframe_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
