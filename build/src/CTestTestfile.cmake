# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("compress")
subdirs("dram")
subdirs("nma")
subdirs("sfm")
subdirs("xfm")
subdirs("costmodel")
subdirs("workload")
subdirs("interference")
subdirs("system")
subdirs("farmem")
