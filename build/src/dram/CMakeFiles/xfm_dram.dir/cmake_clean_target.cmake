file(REMOVE_RECURSE
  "libxfm_dram.a"
)
