file(REMOVE_RECURSE
  "CMakeFiles/xfm_dram.dir/address_map.cc.o"
  "CMakeFiles/xfm_dram.dir/address_map.cc.o.d"
  "CMakeFiles/xfm_dram.dir/bank.cc.o"
  "CMakeFiles/xfm_dram.dir/bank.cc.o.d"
  "CMakeFiles/xfm_dram.dir/ddr_config.cc.o"
  "CMakeFiles/xfm_dram.dir/ddr_config.cc.o.d"
  "CMakeFiles/xfm_dram.dir/ecc.cc.o"
  "CMakeFiles/xfm_dram.dir/ecc.cc.o.d"
  "CMakeFiles/xfm_dram.dir/mem_ctrl.cc.o"
  "CMakeFiles/xfm_dram.dir/mem_ctrl.cc.o.d"
  "CMakeFiles/xfm_dram.dir/phys_mem.cc.o"
  "CMakeFiles/xfm_dram.dir/phys_mem.cc.o.d"
  "CMakeFiles/xfm_dram.dir/refresh.cc.o"
  "CMakeFiles/xfm_dram.dir/refresh.cc.o.d"
  "libxfm_dram.a"
  "libxfm_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
