
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/address_map.cc" "src/dram/CMakeFiles/xfm_dram.dir/address_map.cc.o" "gcc" "src/dram/CMakeFiles/xfm_dram.dir/address_map.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/dram/CMakeFiles/xfm_dram.dir/bank.cc.o" "gcc" "src/dram/CMakeFiles/xfm_dram.dir/bank.cc.o.d"
  "/root/repo/src/dram/ddr_config.cc" "src/dram/CMakeFiles/xfm_dram.dir/ddr_config.cc.o" "gcc" "src/dram/CMakeFiles/xfm_dram.dir/ddr_config.cc.o.d"
  "/root/repo/src/dram/ecc.cc" "src/dram/CMakeFiles/xfm_dram.dir/ecc.cc.o" "gcc" "src/dram/CMakeFiles/xfm_dram.dir/ecc.cc.o.d"
  "/root/repo/src/dram/mem_ctrl.cc" "src/dram/CMakeFiles/xfm_dram.dir/mem_ctrl.cc.o" "gcc" "src/dram/CMakeFiles/xfm_dram.dir/mem_ctrl.cc.o.d"
  "/root/repo/src/dram/phys_mem.cc" "src/dram/CMakeFiles/xfm_dram.dir/phys_mem.cc.o" "gcc" "src/dram/CMakeFiles/xfm_dram.dir/phys_mem.cc.o.d"
  "/root/repo/src/dram/refresh.cc" "src/dram/CMakeFiles/xfm_dram.dir/refresh.cc.o" "gcc" "src/dram/CMakeFiles/xfm_dram.dir/refresh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xfm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/xfm_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
