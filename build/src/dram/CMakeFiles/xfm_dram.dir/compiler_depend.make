# Empty compiler generated dependencies file for xfm_dram.
# This may be replaced when dependencies are built.
