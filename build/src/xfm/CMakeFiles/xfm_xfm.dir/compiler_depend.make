# Empty compiler generated dependencies file for xfm_xfm.
# This may be replaced when dependencies are built.
