file(REMOVE_RECURSE
  "CMakeFiles/xfm_xfm.dir/multichannel.cc.o"
  "CMakeFiles/xfm_xfm.dir/multichannel.cc.o.d"
  "CMakeFiles/xfm_xfm.dir/xfm_backend.cc.o"
  "CMakeFiles/xfm_xfm.dir/xfm_backend.cc.o.d"
  "CMakeFiles/xfm_xfm.dir/xfm_driver.cc.o"
  "CMakeFiles/xfm_xfm.dir/xfm_driver.cc.o.d"
  "libxfm_xfm.a"
  "libxfm_xfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_xfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
