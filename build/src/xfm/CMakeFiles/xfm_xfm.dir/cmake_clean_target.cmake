file(REMOVE_RECURSE
  "libxfm_xfm.a"
)
