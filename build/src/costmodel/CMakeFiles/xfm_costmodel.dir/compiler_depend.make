# Empty compiler generated dependencies file for xfm_costmodel.
# This may be replaced when dependencies are built.
