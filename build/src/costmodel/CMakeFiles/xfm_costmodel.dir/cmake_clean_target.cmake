file(REMOVE_RECURSE
  "libxfm_costmodel.a"
)
