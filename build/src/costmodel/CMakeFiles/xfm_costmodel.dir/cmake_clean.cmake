file(REMOVE_RECURSE
  "CMakeFiles/xfm_costmodel.dir/cost_model.cc.o"
  "CMakeFiles/xfm_costmodel.dir/cost_model.cc.o.d"
  "libxfm_costmodel.a"
  "libxfm_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
