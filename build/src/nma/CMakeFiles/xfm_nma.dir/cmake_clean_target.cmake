file(REMOVE_RECURSE
  "libxfm_nma.a"
)
