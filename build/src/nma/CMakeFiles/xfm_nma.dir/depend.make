# Empty dependencies file for xfm_nma.
# This may be replaced when dependencies are built.
