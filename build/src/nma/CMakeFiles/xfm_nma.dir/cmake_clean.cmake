file(REMOVE_RECURSE
  "CMakeFiles/xfm_nma.dir/engine.cc.o"
  "CMakeFiles/xfm_nma.dir/engine.cc.o.d"
  "CMakeFiles/xfm_nma.dir/lockout_device.cc.o"
  "CMakeFiles/xfm_nma.dir/lockout_device.cc.o.d"
  "CMakeFiles/xfm_nma.dir/mmio.cc.o"
  "CMakeFiles/xfm_nma.dir/mmio.cc.o.d"
  "CMakeFiles/xfm_nma.dir/spm.cc.o"
  "CMakeFiles/xfm_nma.dir/spm.cc.o.d"
  "CMakeFiles/xfm_nma.dir/xfm_device.cc.o"
  "CMakeFiles/xfm_nma.dir/xfm_device.cc.o.d"
  "libxfm_nma.a"
  "libxfm_nma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_nma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
