file(REMOVE_RECURSE
  "CMakeFiles/xfm_interference.dir/cache.cc.o"
  "CMakeFiles/xfm_interference.dir/cache.cc.o.d"
  "CMakeFiles/xfm_interference.dir/corun.cc.o"
  "CMakeFiles/xfm_interference.dir/corun.cc.o.d"
  "libxfm_interference.a"
  "libxfm_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
