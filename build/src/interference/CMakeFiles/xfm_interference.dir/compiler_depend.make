# Empty compiler generated dependencies file for xfm_interference.
# This may be replaced when dependencies are built.
