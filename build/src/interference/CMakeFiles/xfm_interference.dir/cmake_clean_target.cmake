file(REMOVE_RECURSE
  "libxfm_interference.a"
)
