
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interference/cache.cc" "src/interference/CMakeFiles/xfm_interference.dir/cache.cc.o" "gcc" "src/interference/CMakeFiles/xfm_interference.dir/cache.cc.o.d"
  "/root/repo/src/interference/corun.cc" "src/interference/CMakeFiles/xfm_interference.dir/corun.cc.o" "gcc" "src/interference/CMakeFiles/xfm_interference.dir/corun.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/xfm_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
