file(REMOVE_RECURSE
  "libxfm_compress.a"
)
