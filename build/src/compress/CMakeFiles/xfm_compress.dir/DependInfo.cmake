
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/compressor.cc" "src/compress/CMakeFiles/xfm_compress.dir/compressor.cc.o" "gcc" "src/compress/CMakeFiles/xfm_compress.dir/compressor.cc.o.d"
  "/root/repo/src/compress/corpus.cc" "src/compress/CMakeFiles/xfm_compress.dir/corpus.cc.o" "gcc" "src/compress/CMakeFiles/xfm_compress.dir/corpus.cc.o.d"
  "/root/repo/src/compress/deflate.cc" "src/compress/CMakeFiles/xfm_compress.dir/deflate.cc.o" "gcc" "src/compress/CMakeFiles/xfm_compress.dir/deflate.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/compress/CMakeFiles/xfm_compress.dir/huffman.cc.o" "gcc" "src/compress/CMakeFiles/xfm_compress.dir/huffman.cc.o.d"
  "/root/repo/src/compress/incremental.cc" "src/compress/CMakeFiles/xfm_compress.dir/incremental.cc.o" "gcc" "src/compress/CMakeFiles/xfm_compress.dir/incremental.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/compress/CMakeFiles/xfm_compress.dir/lz77.cc.o" "gcc" "src/compress/CMakeFiles/xfm_compress.dir/lz77.cc.o.d"
  "/root/repo/src/compress/lzfast.cc" "src/compress/CMakeFiles/xfm_compress.dir/lzfast.cc.o" "gcc" "src/compress/CMakeFiles/xfm_compress.dir/lzfast.cc.o.d"
  "/root/repo/src/compress/zstdlike.cc" "src/compress/CMakeFiles/xfm_compress.dir/zstdlike.cc.o" "gcc" "src/compress/CMakeFiles/xfm_compress.dir/zstdlike.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xfm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
