file(REMOVE_RECURSE
  "CMakeFiles/xfm_compress.dir/compressor.cc.o"
  "CMakeFiles/xfm_compress.dir/compressor.cc.o.d"
  "CMakeFiles/xfm_compress.dir/corpus.cc.o"
  "CMakeFiles/xfm_compress.dir/corpus.cc.o.d"
  "CMakeFiles/xfm_compress.dir/deflate.cc.o"
  "CMakeFiles/xfm_compress.dir/deflate.cc.o.d"
  "CMakeFiles/xfm_compress.dir/huffman.cc.o"
  "CMakeFiles/xfm_compress.dir/huffman.cc.o.d"
  "CMakeFiles/xfm_compress.dir/incremental.cc.o"
  "CMakeFiles/xfm_compress.dir/incremental.cc.o.d"
  "CMakeFiles/xfm_compress.dir/lz77.cc.o"
  "CMakeFiles/xfm_compress.dir/lz77.cc.o.d"
  "CMakeFiles/xfm_compress.dir/lzfast.cc.o"
  "CMakeFiles/xfm_compress.dir/lzfast.cc.o.d"
  "CMakeFiles/xfm_compress.dir/zstdlike.cc.o"
  "CMakeFiles/xfm_compress.dir/zstdlike.cc.o.d"
  "libxfm_compress.a"
  "libxfm_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
