# Empty compiler generated dependencies file for xfm_compress.
# This may be replaced when dependencies are built.
