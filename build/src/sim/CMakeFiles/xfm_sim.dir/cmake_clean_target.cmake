file(REMOVE_RECURSE
  "libxfm_sim.a"
)
