# Empty dependencies file for xfm_sim.
# This may be replaced when dependencies are built.
