file(REMOVE_RECURSE
  "CMakeFiles/xfm_sim.dir/event_queue.cc.o"
  "CMakeFiles/xfm_sim.dir/event_queue.cc.o.d"
  "libxfm_sim.a"
  "libxfm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
