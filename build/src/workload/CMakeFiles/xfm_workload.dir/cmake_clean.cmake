file(REMOVE_RECURSE
  "CMakeFiles/xfm_workload.dir/spec_model.cc.o"
  "CMakeFiles/xfm_workload.dir/spec_model.cc.o.d"
  "CMakeFiles/xfm_workload.dir/trace_gen.cc.o"
  "CMakeFiles/xfm_workload.dir/trace_gen.cc.o.d"
  "CMakeFiles/xfm_workload.dir/trace_io.cc.o"
  "CMakeFiles/xfm_workload.dir/trace_io.cc.o.d"
  "libxfm_workload.a"
  "libxfm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
