file(REMOVE_RECURSE
  "libxfm_workload.a"
)
