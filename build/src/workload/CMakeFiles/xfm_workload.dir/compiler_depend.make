# Empty compiler generated dependencies file for xfm_workload.
# This may be replaced when dependencies are built.
