file(REMOVE_RECURSE
  "CMakeFiles/xfm_system.dir/system.cc.o"
  "CMakeFiles/xfm_system.dir/system.cc.o.d"
  "libxfm_system.a"
  "libxfm_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
