file(REMOVE_RECURSE
  "libxfm_system.a"
)
