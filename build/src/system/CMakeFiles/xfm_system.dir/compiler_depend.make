# Empty compiler generated dependencies file for xfm_system.
# This may be replaced when dependencies are built.
