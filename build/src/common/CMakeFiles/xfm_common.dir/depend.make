# Empty dependencies file for xfm_common.
# This may be replaced when dependencies are built.
