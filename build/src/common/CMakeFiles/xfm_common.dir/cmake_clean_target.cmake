file(REMOVE_RECURSE
  "libxfm_common.a"
)
