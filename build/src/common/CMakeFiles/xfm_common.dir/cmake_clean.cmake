file(REMOVE_RECURSE
  "CMakeFiles/xfm_common.dir/config.cc.o"
  "CMakeFiles/xfm_common.dir/config.cc.o.d"
  "CMakeFiles/xfm_common.dir/logging.cc.o"
  "CMakeFiles/xfm_common.dir/logging.cc.o.d"
  "CMakeFiles/xfm_common.dir/random.cc.o"
  "CMakeFiles/xfm_common.dir/random.cc.o.d"
  "CMakeFiles/xfm_common.dir/stats.cc.o"
  "CMakeFiles/xfm_common.dir/stats.cc.o.d"
  "CMakeFiles/xfm_common.dir/units.cc.o"
  "CMakeFiles/xfm_common.dir/units.cc.o.d"
  "libxfm_common.a"
  "libxfm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
