# Empty compiler generated dependencies file for xfm_sfm.
# This may be replaced when dependencies are built.
