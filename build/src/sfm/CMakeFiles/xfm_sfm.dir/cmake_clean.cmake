file(REMOVE_RECURSE
  "CMakeFiles/xfm_sfm.dir/controller.cc.o"
  "CMakeFiles/xfm_sfm.dir/controller.cc.o.d"
  "CMakeFiles/xfm_sfm.dir/cpu_backend.cc.o"
  "CMakeFiles/xfm_sfm.dir/cpu_backend.cc.o.d"
  "CMakeFiles/xfm_sfm.dir/dfm_backend.cc.o"
  "CMakeFiles/xfm_sfm.dir/dfm_backend.cc.o.d"
  "CMakeFiles/xfm_sfm.dir/senpai.cc.o"
  "CMakeFiles/xfm_sfm.dir/senpai.cc.o.d"
  "CMakeFiles/xfm_sfm.dir/zpool.cc.o"
  "CMakeFiles/xfm_sfm.dir/zpool.cc.o.d"
  "libxfm_sfm.a"
  "libxfm_sfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xfm_sfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
