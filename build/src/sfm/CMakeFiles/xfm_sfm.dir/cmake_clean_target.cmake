file(REMOVE_RECURSE
  "libxfm_sfm.a"
)
