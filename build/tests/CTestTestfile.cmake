# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_nma[1]_include.cmake")
include("/root/repo/build/tests/test_sfm[1]_include.cmake")
include("/root/repo/build/tests/test_xfm[1]_include.cmake")
include("/root/repo/build/tests/test_costmodel[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_interference[1]_include.cmake")
include("/root/repo/build/tests/test_bank[1]_include.cmake")
include("/root/repo/build/tests/test_senpai[1]_include.cmake")
include("/root/repo/build/tests/test_lockout[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_ecc[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_farmem[1]_include.cmake")
