file(REMOVE_RECURSE
  "CMakeFiles/test_lockout.dir/test_lockout.cc.o"
  "CMakeFiles/test_lockout.dir/test_lockout.cc.o.d"
  "test_lockout"
  "test_lockout.pdb"
  "test_lockout[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lockout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
