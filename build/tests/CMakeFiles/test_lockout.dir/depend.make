# Empty dependencies file for test_lockout.
# This may be replaced when dependencies are built.
