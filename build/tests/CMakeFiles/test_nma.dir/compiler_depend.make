# Empty compiler generated dependencies file for test_nma.
# This may be replaced when dependencies are built.
