file(REMOVE_RECURSE
  "CMakeFiles/test_nma.dir/test_nma.cc.o"
  "CMakeFiles/test_nma.dir/test_nma.cc.o.d"
  "test_nma"
  "test_nma.pdb"
  "test_nma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
