# Empty dependencies file for test_sfm.
# This may be replaced when dependencies are built.
