file(REMOVE_RECURSE
  "CMakeFiles/test_sfm.dir/test_sfm.cc.o"
  "CMakeFiles/test_sfm.dir/test_sfm.cc.o.d"
  "test_sfm"
  "test_sfm.pdb"
  "test_sfm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
