# Empty dependencies file for test_farmem.
# This may be replaced when dependencies are built.
