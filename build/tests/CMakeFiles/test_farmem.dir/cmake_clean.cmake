file(REMOVE_RECURSE
  "CMakeFiles/test_farmem.dir/test_farmem.cc.o"
  "CMakeFiles/test_farmem.dir/test_farmem.cc.o.d"
  "test_farmem"
  "test_farmem.pdb"
  "test_farmem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_farmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
