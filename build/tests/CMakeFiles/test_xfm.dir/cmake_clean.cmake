file(REMOVE_RECURSE
  "CMakeFiles/test_xfm.dir/test_xfm.cc.o"
  "CMakeFiles/test_xfm.dir/test_xfm.cc.o.d"
  "test_xfm"
  "test_xfm.pdb"
  "test_xfm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
