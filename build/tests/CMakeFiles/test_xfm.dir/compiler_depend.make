# Empty compiler generated dependencies file for test_xfm.
# This may be replaced when dependencies are built.
