
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_xfm.cc" "tests/CMakeFiles/test_xfm.dir/test_xfm.cc.o" "gcc" "tests/CMakeFiles/test_xfm.dir/test_xfm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xfm/CMakeFiles/xfm_xfm.dir/DependInfo.cmake"
  "/root/repo/build/src/nma/CMakeFiles/xfm_nma.dir/DependInfo.cmake"
  "/root/repo/build/src/sfm/CMakeFiles/xfm_sfm.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/xfm_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/xfm_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/xfm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xfm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
