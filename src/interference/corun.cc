#include "corun.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/units.hh"

namespace xfm
{
namespace interference
{

std::string
interfaceName(SfmInterface iface)
{
    switch (iface) {
      case SfmInterface::BaselineCpu:
        return "Baseline-CPU";
      case SfmInterface::HostLockoutNma:
        return "Host-Lockout-NMA";
      case SfmInterface::Xfm:
        return "XFM";
    }
    panic("unknown interface");
}

namespace
{

/**
 * Simulate the shared LLC with the given app streams, optionally
 * adding the SFM antagonist's page-granular stream, and return the
 * per-app miss rates.
 *
 * Streams interleave proportionally to their access rates; each
 * app's address space is disjoint.
 */
std::vector<double>
simulateLlc(const std::vector<workload::AppProfile> &apps,
            double antagonist_gbps, const CoRunConfig &cfg)
{
    const std::uint32_t requesters =
        static_cast<std::uint32_t>(apps.size()) + 1;
    SetAssocCache llc(cfg.llcBytes, cfg.llcWays, cfg.lineBytes,
                      requesters);
    Rng rng(cfg.seed);

    // Access-rate weights: app LLC access rate ~ apki x ipc; the
    // antagonist's rate follows its byte throughput.
    std::vector<double> weights;
    double total_weight = 0.0;
    for (const auto &app : apps) {
        weights.push_back(app.llcApki * app.ipcAlone);
        total_weight += weights.back();
    }
    // Convert the antagonist's GB/s into an equivalent access
    // weight: cache-line-granular touches relative to the apps'
    // aggregate (apps move bandwidthGBps of data too).
    double app_gbps = 0.0;
    for (const auto &app : apps)
        app_gbps += app.bandwidthGBps;
    const double antagonist_weight = app_gbps > 0
        ? total_weight * (antagonist_gbps / app_gbps)
        : 0.0;
    weights.push_back(antagonist_weight);
    total_weight += antagonist_weight;

    // Cumulative distribution for stream selection.
    std::vector<double> cdf;
    double acc = 0.0;
    for (double w : weights) {
        acc += w / total_weight;
        cdf.push_back(acc);
    }

    // Warm-up + measurement.
    const std::uint64_t total_accesses =
        cfg.accessesPerApp * apps.size();
    std::vector<std::uint64_t> antagonist_cursor(1, 0);
    std::uint64_t ant_pos = 0;

    const std::uint64_t antagonist_region = 4ull << 30;

    auto do_access = [&](std::uint32_t stream) {
        if (stream < apps.size()) {
            const auto &app = apps[stream];
            const std::uint64_t ws_lines =
                static_cast<std::uint64_t>(app.workingSetMiB
                                           * 1024 * 1024)
                / cfg.lineBytes;
            const std::uint64_t line = rng.zipf(ws_lines,
                                                app.reuseTheta);
            const std::uint64_t base =
                (std::uint64_t(stream) + 1) << 40;  // disjoint spaces
            llc.access(base + line * cfg.lineBytes, stream);
        } else {
            // Page-granular sequential sweep: the antagonist reads
            // whole cold pages and writes compressed blocks; almost
            // no reuse, maximal pollution.
            llc.access((2ull << 50) + (ant_pos % antagonist_region),
                       stream);
            ant_pos += cfg.lineBytes;
        }
    };

    for (std::uint64_t i = 0; i < total_accesses * 2; ++i) {
        if (i == total_accesses)
            llc.resetStats();  // discard warm-up
        const double u = rng.uniformReal();
        std::uint32_t stream = 0;
        while (stream + 1 < cdf.size() && u > cdf[stream])
            ++stream;
        do_access(stream);
    }
    (void)antagonist_cursor;

    std::vector<double> miss_rates;
    for (std::uint32_t s = 0; s < apps.size(); ++s)
        miss_rates.push_back(llc.stats(s).missRate());
    return miss_rates;
}

} // namespace

CoRunOutcome
runCoRun(const std::vector<workload::AppProfile> &apps,
         SfmInterface iface, const CoRunConfig &cfg)
{
    XFM_ASSERT(!apps.empty(), "need at least one application");
    CoRunOutcome out;
    out.interface_ = iface;

    // EQ1: swap traffic of the antagonist.
    const double swap_gbps =
        cfg.sfmCapacityGB * cfg.promotionRate / 60.0;
    // Cache-polluting traffic exists only when the CPU does the
    // work: page reads + compressed writes in both directions.
    const double cache_gbps = iface == SfmInterface::BaselineCpu
        ? 2.0 * swap_gbps * (1.0 + 1.0 / cfg.compressionRatio)
        : 0.0;
    // DRAM channel traffic (footnote 1: ~4x the swap rate).
    const double sfm_mem_gbps =
        iface == SfmInterface::BaselineCpu ? 4.0 * swap_gbps : 0.0;

    // LLC pollution.
    const auto alone = simulateLlc(apps, 0.0, cfg);
    const auto shared = simulateLlc(apps, cache_gbps, cfg);

    // Bandwidth queueing: demand over capacity inflates memory
    // latency (open-loop M/M/1 approximation).
    double app_gbps = 0.0;
    for (const auto &app : apps)
        app_gbps += app.bandwidthGBps;
    const double demand = app_gbps + sfm_mem_gbps;
    const double rho =
        std::min(demand / cfg.memBandwidthGBps, 0.95);
    const double rho_alone =
        std::min(app_gbps / cfg.memBandwidthGBps, 0.95);
    const double queue_factor = (1.0 / (1.0 - rho))
        / (1.0 / (1.0 - rho_alone));
    out.bandwidthUtilisation = rho;

    // Host-Lockout: each offload locks its rank for the transfer
    // plus the on-DIMM compute (the engine is the bottleneck).
    double lockout_factor = 1.0;
    if (iface == SfmInterface::HostLockoutNma) {
        const double nma_bytes_gbps =
            2.0 * swap_gbps * (1.0 + 1.0 / cfg.compressionRatio);
        const double locked_fraction = std::min(
            nma_bytes_gbps / (cfg.lockoutEngineGBps * cfg.numRanks),
            0.9);
        out.rankLockedFraction = locked_fraction;
        // A memory request finding its rank locked waits half the
        // residual lock period on average; to first order latency
        // inflates by the locked fraction.
        lockout_factor = 1.0 / (1.0 - locked_fraction);
    }

    // Compose per-app slowdowns.
    double sum = 0.0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const auto &app = apps[a];
        const double miss_inflation = alone[a] > 0
            ? std::max(1.0, shared[a] / alone[a])
            : 1.0;
        const double mem_factor =
            miss_inflation * queue_factor * lockout_factor;
        const double runtime = (1.0 - app.memStallFraction)
            + app.memStallFraction * mem_factor;
        AppOutcome r;
        r.name = app.name;
        r.slowdownPercent = (runtime - 1.0) * 100.0;
        r.missRateAlone = alone[a];
        r.missRateCoRun = shared[a];
        out.apps.push_back(r);
        sum += r.slowdownPercent;
        out.maxSlowdownPercent =
            std::max(out.maxSlowdownPercent, r.slowdownPercent);
    }
    out.avgSlowdownPercent = sum / static_cast<double>(apps.size());

    // SFM throughput: only the CPU implementation contends for the
    // channels and LLC it shares with the applications.
    if (iface == SfmInterface::BaselineCpu) {
        const double ant_runtime =
            (1.0 - cfg.antagonistStallFraction)
            + cfg.antagonistStallFraction * queue_factor
                * (1.0 + (rho - rho_alone));
        out.sfmThroughputFactor = 1.0 / ant_runtime;
    } else {
        out.sfmThroughputFactor = 1.0;
    }
    return out;
}

} // namespace interference
} // namespace xfm
