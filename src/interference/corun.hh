/**
 * @file
 * Co-run interference model (Fig. 11).
 *
 * Reproduces the paper's co-location experiment: memory-intensive
 * applications share the LLC and DRAM channels with SFM antagonist
 * processes under three interfaces:
 *
 *  - Baseline-CPU: the CPU compresses/decompresses, streaming page
 *    data through the shared LLC and over the DRAM channels;
 *  - Host-Lockout-NMA: the NMA does the work on-DIMM (no cache or
 *    channel traffic) but locks the rank against host accesses for
 *    the duration of each offload (Boroumand et al. style);
 *  - XFM: NMA accesses hide inside refresh windows — no cache
 *    traffic, no channel traffic, no extra lockout.
 *
 * The model combines a real LLC simulation (pollution by the
 * page-granular antagonist stream) with a bandwidth-queueing term
 * and a rank-lockout term, applied to each app's memory-stall
 * fraction.
 */

#ifndef XFM_INTERFERENCE_CORUN_HH
#define XFM_INTERFERENCE_CORUN_HH

#include <string>
#include <vector>

#include "interference/cache.hh"
#include "workload/spec_model.hh"

namespace xfm
{
namespace interference
{

/** The NMA/CPU interface variants compared in Fig. 11. */
enum class SfmInterface
{
    BaselineCpu,
    HostLockoutNma,
    Xfm,
};

std::string interfaceName(SfmInterface iface);

/** Platform and experiment parameters. */
struct CoRunConfig
{
    // LLC of the Xeon Gold 6242 class machine (power-of-two sized).
    std::uint64_t llcBytes = 16ull << 20;
    std::uint32_t llcWays = 16;
    std::uint32_t lineBytes = 64;

    /** Achievable DRAM bandwidth under mixed random/stream access
     *  (6 x DDR4-3200 channels sustain well below the 137 GB/s pin
     *  bandwidth for page-granular + random traffic). */
    double memBandwidthGBps = 70.0;
    std::uint32_t numRanks = 6;

    // SFM antagonist: 512 GB at a moderate 14% promotion rate.
    double sfmCapacityGB = 512.0;
    double promotionRate = 0.14;
    /** Average compression ratio of the swapped pages. */
    double compressionRatio = 3.0;

    /** Host-Lockout engine throughput (GB/s); the rank stays locked
     *  while the offload computes, which is what makes the
     *  interface expensive. */
    double lockoutEngineGBps = 2.5;

    /** Antagonist memory-stall fraction (it is a streaming job). */
    double antagonistStallFraction = 0.5;

    /** LLC-simulation accesses per application stream. */
    std::uint64_t accessesPerApp = 150000;
    std::uint64_t seed = 42;
};

/** Per-application outcome. */
struct AppOutcome
{
    std::string name;
    double slowdownPercent;   ///< runtime increase vs no antagonist
    double missRateAlone;     ///< LLC miss rate without antagonist
    double missRateCoRun;     ///< with antagonist sharing the LLC
};

/** Full co-run result. */
struct CoRunOutcome
{
    SfmInterface interface_;
    std::vector<AppOutcome> apps;
    double avgSlowdownPercent = 0.0;
    double maxSlowdownPercent = 0.0;
    /** SFM (antagonist) throughput relative to running alone. */
    double sfmThroughputFactor = 1.0;
    double bandwidthUtilisation = 0.0;
    double rankLockedFraction = 0.0;   ///< extra, beyond refresh
};

/**
 * Run the co-run experiment for one interface.
 */
CoRunOutcome runCoRun(const std::vector<workload::AppProfile> &apps,
                      SfmInterface iface, const CoRunConfig &cfg);

} // namespace interference
} // namespace xfm

#endif // XFM_INTERFERENCE_CORUN_HH
