#include "cache.hh"

namespace xfm
{
namespace interference
{

namespace
{

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(std::uint64_t size_bytes,
                             std::uint32_t ways,
                             std::uint32_t line_bytes,
                             std::uint32_t requesters)
    : sets_(size_bytes / ways / line_bytes), ways_(ways),
      line_bytes_(line_bytes), lines_(sets_ * ways_),
      stats_(requesters)
{
    XFM_ASSERT(sets_ > 0, "cache too small for its geometry");
    XFM_ASSERT(isPowerOfTwo(sets_), "set count must be a power of 2");
    XFM_ASSERT(isPowerOfTwo(line_bytes_), "line size must be 2^k");
}

bool
SetAssocCache::access(std::uint64_t addr, std::uint32_t requester)
{
    XFM_ASSERT(requester < stats_.size(), "unknown requester");
    ++clock_;
    auto &st = stats_[requester];
    ++st.accesses;

    const std::uint64_t block = addr / line_bytes_;
    const std::uint64_t set = block & (sets_ - 1);
    // The full block number doubles as the tag (always unique).
    const std::uint64_t tag = block;
    Line *base = &lines_[set * ways_];

    Line *victim = base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lruStamp = clock_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid
                   && line.lruStamp < victim->lruStamp) {
            victim = &line;
        }
    }
    ++st.misses;
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = clock_;
    return false;
}

void
SetAssocCache::resetStats()
{
    for (auto &s : stats_)
        s = CacheStats{};
}

} // namespace interference
} // namespace xfm
