/**
 * @file
 * Set-associative last-level cache simulator with LRU replacement.
 *
 * Used by the co-run interference model (Fig. 11) to measure how
 * page-granular SFM antagonist streams pollute the shared LLC of
 * co-running applications.
 */

#ifndef XFM_INTERFERENCE_CACHE_HH
#define XFM_INTERFERENCE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "obs/registry.hh"

namespace xfm
{
namespace interference
{

/** Per-requester cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/**
 * Shared set-associative cache with true-LRU replacement.
 *
 * Accesses are tagged with a requester id so per-stream hit rates
 * under sharing can be extracted.
 */
class SetAssocCache
{
  public:
    /**
     * @param size_bytes total capacity.
     * @param ways associativity.
     * @param line_bytes cache line size.
     * @param requesters number of stat-tracked streams.
     */
    SetAssocCache(std::uint64_t size_bytes, std::uint32_t ways,
                  std::uint32_t line_bytes, std::uint32_t requesters);

    /**
     * Access a byte address.
     * @retval true hit.
     */
    bool access(std::uint64_t addr, std::uint32_t requester);

    const CacheStats &stats(std::uint32_t requester) const
    {
        return stats_[requester];
    }

    std::uint64_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }
    std::uint64_t capacityBytes() const
    {
        return std::uint64_t(sets_) * ways_ * line_bytes_;
    }

    void resetStats();

    /** Register per-requester metrics under `<prefix>.reqN.*`. */
    void
    registerMetrics(obs::MetricRegistry &r, const std::string &prefix)
    {
        for (std::uint32_t q = 0; q < stats_.size(); ++q) {
            const std::string p =
                prefix + ".req" + std::to_string(q) + ".";
            r.counter(p + "accesses", &stats_[q].accesses);
            r.counter(p + "misses", &stats_[q].misses);
            r.derived(p + "missRate",
                      [this, q] { return stats_[q].missRate(); });
        }
    }

  private:
    struct Line
    {
        std::uint64_t tag = ~std::uint64_t(0);
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    std::uint64_t sets_;
    std::uint32_t ways_;
    std::uint32_t line_bytes_;
    std::uint64_t clock_ = 0;
    std::vector<Line> lines_;  ///< sets_ x ways_
    std::vector<CacheStats> stats_;
};

} // namespace interference
} // namespace xfm

#endif // XFM_INTERFERENCE_CACHE_HH
