/**
 * @file
 * XfmBackend: the XFM-accelerated SFM backend (paper Sec. 6).
 *
 * The modelled system is a set of XFM DIMMs. A 4 KiB virtual page
 * is physically interleaved across the DIMMs (multi-channel mode),
 * so each DIMM's NMA compresses its own shard of the page during
 * refresh windows; compressed shards are placed at the same offset
 * of every DIMM's SFM region (same-offset placement). When device
 * resources are exhausted — SPM full, request queue full, or a
 * deadline passes — the backend transparently falls back to CPU
 * (de)compression, exactly as CPU_Fallback does in the paper.
 */

#ifndef XFM_XFM_XFM_BACKEND_HH
#define XFM_XFM_XFM_BACKEND_HH

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/worker_pool.hh"
#include "fault/fault.hh"
#include "health/health.hh"
#include "compress/compressor.hh"
#include "dram/mem_ctrl.hh"
#include "dram/phys_mem.hh"
#include "dram/refresh.hh"
#include "nma/xfm_device.hh"
#include "sfm/backend.hh"
#include "sim/sim_object.hh"
#include "xfm/multichannel.hh"
#include "xfm/xfm_driver.hh"

namespace xfm
{
namespace xfmsys
{

/** Configuration of the whole XFM memory system. */
struct XfmSystemConfig
{
    /** DIMMs a page interleaves over (1, 2, or 4 in the paper). */
    std::size_t numDimms = 4;
    /** Geometry of one DIMM (must be single-channel, single-rank). */
    dram::MemSystemConfig dimmMem;

    std::uint64_t localBase = 0;   ///< per-DIMM local shard region
    std::uint64_t localPages = 0;  ///< virtual pages tracked
    std::uint64_t sfmBase = 0;     ///< per-DIMM SFM region base
    std::uint64_t sfmBytes = 0;    ///< per-DIMM SFM region size

    compress::Algorithm algorithm = compress::Algorithm::ZstdLike;
    nma::XfmDeviceConfig device;   ///< per-DIMM NMA knobs
    double cpuFreqGHz = 2.6;

    /** Deadline slack for offloaded (prefetch) decompressions. */
    Tick decompressSlack = 0;  ///< 0 => 10 x tREFI
    std::size_t interleave = defaultInterleave;

    /** Fault scenario injected into every layer of this backend
     *  (devices, SPMs, drivers, the backend itself). The default
     *  plan is disarmed and adds no overhead. */
    fault::FaultPlan faults{};
    /** Driver retry policy for transient submission faults. */
    fault::RetryPolicy retry{};

    /**
     * Health-monitor tuning for every failure domain of this
     * backend: each DIMM's channel shard, MMIO doorbell, NMA engine
     * and SPM bank. Disabled by default — baseline runs take no new
     * branches and keep their metric namespace unchanged.
     */
    health::HealthConfig health{};

    /**
     * Cap on simultaneously quarantined pages (0 = unbounded). When
     * a new uncorrectable-ECC quarantine would exceed the cap, the
     * oldest quarantined page is evicted: its retired SFM slot is
     * freed (the image is shipped to the DFM tier for repair) and
     * the page is re-established from its still-resident local
     * shard frames (swap-outs are non-destructive copies).
     */
    std::size_t quarantineCap = 0;

    /**
     * Multi-channel preset dictionaries (DESIGN.md §16): when
     * enabled, every swap-out samples a dictionary from the whole
     * page and compresses each shard with it preloaded as match
     * history, recovering cross-shard redundancy the interleave
     * split destroys. The dictionary is stored ONCE per page —
     * packed after DIMM 0's shard block inside the same-offset slot
     * — and shards carry only a 3-byte dict-referencing header, so
     * the dictionary's bytes are amortised across all shards. At
     * swap-in the driver recovers the packed copy and stages it to
     * each engine with the descriptor; CPU fallbacks and watchdog
     * redos reuse the same dictionary so every path stays
     * byte-identical. Off by default: the default configuration's
     * stored bytes are unchanged.
     */
    bool shardDict = false;
    /** Sampled dictionary size in bytes (dict mode only). Half a
     *  page samples enough cross-shard context to recover most of
     *  the 4-DIMM ratio loss while packing into a few hundred
     *  stored bytes on correlated data. */
    std::size_t dictBytes = 2048;

    /**
     * Wall-clock execution contexts for the embarrassingly-parallel
     * codec work (per-DIMM shard compression, NMA engine jobs).
     * Only host runtime changes: results are committed in shard
     * order, so simulated timing, metrics, and traces are
     * byte-identical for any value. 1 (the default) spawns no
     * threads and is exactly the single-threaded simulator.
     */
    std::size_t workers = 1;

    /** Shard of a page stored on each DIMM. */
    std::uint64_t
    shardBytes() const
    {
        return pageBytes / numDimms;
    }
};

/** Extra statistics specific to the XFM backend. */
struct XfmBackendStats
{
    std::uint64_t offloadedSwapOuts = 0;
    std::uint64_t offloadedSwapIns = 0;
    std::uint64_t fallbackCapacity = 0;  ///< SPM/queue exhausted
    std::uint64_t fallbackDeadline = 0;  ///< window service too late
    std::uint64_t fallbackAlloc = 0;     ///< SFM region full
    std::uint64_t offloadRetries = 0;    ///< driver re-submissions
    std::uint64_t eccCorrected = 0;      ///< injected UEs scrubbed
    std::uint64_t eccQuarantines = 0;    ///< pages poisoned by UEs
    /** Quarantined pages evicted to stay under cfg.quarantineCap. */
    std::uint64_t quarantineEvicted = 0;
    /** Page shards (de)compressed on the CPU because their channel's
     *  breaker was open while the other channels stayed offloaded. */
    std::uint64_t shardCpuFallbacks = 0;
    /** Single shards redone on the CPU after a watchdog drop, while
     *  the page's other shards stayed offloaded (the watchdog is
     *  scoped per queue pair: one stranded command no longer fails
     *  the whole page back to the CPU). */
    std::uint64_t watchdogShardRedos = 0;
    /** Whole swaps routed to the CPU because every channel breaker
     *  was open. */
    std::uint64_t breakerFallbacks = 0;
    /** Time CPU-path swaps waited on refresh/RFM bank locks (only
     *  accumulates when refresh realism is armed). */
    std::uint64_t cpuRefreshStallTicks = 0;
    /** Shards stored as preset-dictionary containers (dict mode). */
    std::uint64_t dictShards = 0;
    /** Dict-mode shards where the plain block won (adaptive
     *  per-shard fallback kept the smaller encoding). */
    std::uint64_t dictFallbacks = 0;
};

/**
 * The XFM-accelerated backend.
 */
class XfmBackend : public SimObject, public sfm::SfmBackend
{
  public:
    /**
     * @param host_ctrl optional host-side memory controller: CPU
     *        fallback (de)compressions then issue their DRAM
     *        traffic through it, so end-to-end experiments can
     *        compare channel utilisation against the CPU baseline.
     *        Offloaded operations never touch it — that is the
     *        point of XFM.
     */
    XfmBackend(std::string name, EventQueue &eq,
               const XfmSystemConfig &cfg,
               dram::MemCtrl *host_ctrl = nullptr);

    // SfmBackend interface -------------------------------------------
    void swapOut(sfm::VirtPage page, sfm::SwapCallback done) override;
    void swapOut(sfm::VirtPage page, bool allow_offload,
                 sfm::SwapCallback done) override;
    void swapIn(sfm::VirtPage page, bool allow_offload,
                sfm::SwapCallback done) override;
    sfm::PageState pageState(sfm::VirtPage page) const override;
    void compact() override;
    std::uint64_t farPageCount() const override
    {
        return entries_.size();
    }
    std::uint64_t storedCompressedBytes() const override;
    const sfm::BackendStats &stats() const override { return stats_; }
    Bytes readLocalPage(sfm::VirtPage page) const override
    {
        return readPage(page);
    }
    void writeLocalPage(sfm::VirtPage page, ByteSpan data) override
    {
        writePage(page, data);
    }

    // XFM-system access ----------------------------------------------
    /** Write page content into the distributed local frames. */
    void writePage(sfm::VirtPage page, ByteSpan data);
    /** Gather page content from the distributed local frames. */
    Bytes readPage(sfm::VirtPage page) const;

    /** Begin refresh activity (required before offloads progress). */
    void start();

    /**
     * Tag subsequent offload submissions with an SPM QoS partition
     * (see nma::ScratchPad::setPartitionCap). The service layer sets
     * this per priority class before dispatching each tenant's
     * operation; 0 (the default) is uncapped.
     */
    void setOffloadPartition(std::uint32_t p) { partition_ = p; }
    std::uint32_t offloadPartition() const { return partition_; }

    const XfmBackendStats &xfmStats() const { return xfm_stats_; }

    /** The backend-wide fault injector (configured via cfg.faults). */
    const fault::FaultInjector &faultInjector() const
    {
        return injector_;
    }

    /**
     * Pages quarantined after an uncorrectable ECC error in their
     * compressed image. A quarantined page stays Far, its slot is
     * retired, and every later swap-in fails fast instead of
     * handing corrupt data to the application.
     */
    bool isQuarantined(sfm::VirtPage page) const
    {
        return quarantined_.count(page) > 0;
    }
    std::uint64_t quarantinedPageCount() const
    {
        return quarantined_.size();
    }

    /** Fires on quarantine-cap evictions (silent Far -> Local). */
    void
    setReclaimHook(ReclaimHook hook) override
    {
        reclaim_hook_ = std::move(hook);
    }

    XfmDriver &driver(std::size_t dimm) { return *dimms_[dimm].driver; }
    dram::RefreshController &refresh() { return *refresh_; }

    /**
     * Health monitor of one channel shard (the per-DIMM end-to-end
     * offload path). Tests and escalation policies may forceFail()
     * a channel here to take it offline administratively.
     */
    health::HealthMonitor &channelHealth(std::size_t dimm)
    {
        return channel_health_[dimm];
    }

    /**
     * The backend-wide fan-out pool (sized by cfg.workers); shared
     * by the per-DIMM CPU shard loops and every DIMM's NMA engine.
     */
    WorkerPool &workerPool() { return pool_; }

    /** Worst per-DIMM SPM occupancy fraction (overload signal). */
    double spmOccupancyFraction() const;
    const XfmSystemConfig &config() const { return cfg_; }
    const SameOffsetAllocator &allocator() const { return alloc_; }

    /** Bytes lost to same-offset padding across all DIMMs. */
    std::uint64_t fragmentationBytes() const;

    /**
     * Register backend, fault-injector, and per-DIMM device/driver
     * metrics under `<name()>.*` (e.g. "sys.xfm.dimm0.queueRejects").
     */
    void registerMetrics(obs::MetricRegistry &r);

    /**
     * Attach a span tracer (null detaches); forwarded to every DIMM
     * device. Each swap-out/in gets a tracer request id threaded
     * through driver and device so the whole lifecycle — submit,
     * queue, window wait, engine, SPM stage, write-back, or the CPU
     * fallback — lands in one span group.
     */
    void setTracer(obs::Tracer *t);

    /**
     * Re-provision the per-DIMM SFM region size (the elasticity
     * that distinguishes SFM from DFM, paper Sec. 1/4.2). Growth is
     * immediate; a shrink first compacts and fails if the live
     * compressed data still does not fit.
     *
     * @retval false shrink rejected; capacity unchanged.
     */
    bool resizeSfmRegion(std::uint64_t new_bytes);

  private:
    struct Dimm
    {
        std::unique_ptr<dram::AddressMap> map;
        std::unique_ptr<dram::PhysMem> mem;
        std::unique_ptr<nma::XfmDevice> device;
        std::unique_ptr<XfmDriver> driver;
    };

    /** Stored location of a Far page. */
    struct PageEntry
    {
        std::uint64_t offset;  ///< same-offset slot (region-relative)
        std::vector<std::uint32_t> shardSizes;
        /** Bytes of packed preset dictionary appended after DIMM 0's
         *  shard block in the slot (0 = page stored without one). */
        std::uint32_t dictStored = 0;
    };

    /** Coordination record for a multi-DIMM offload in flight. */
    struct PendingOp
    {
        sfm::VirtPage page;
        bool isCompress;
        std::vector<nma::OffloadId> ids;
        std::vector<std::uint32_t> sizes;  ///< compressed shard sizes
        std::uint32_t retries = 0;  ///< driver re-submissions used
        std::size_t completions = 0;
        std::size_t writebacks = 0;
        std::uint64_t offset = SameOffsetAllocator::invalidOffset;
        /** Per-DIMM flag: shard handled on the CPU because that
         *  channel's breaker was open (empty = all offloaded). */
        std::vector<std::uint8_t> cpuShard;
        /** CPU-compressed shard blocks awaiting slot placement
         *  (hybrid swap-out only; indexed like ids). */
        std::vector<Bytes> cpuBlocks;
        /** Per-DIMM flag: this shard's completion has been seen
         *  (CPU shards count as done up front). Distinguishes a
         *  watchdog drop before engine completion from one that
         *  stranded an already-staged write-back. */
        std::vector<std::uint8_t> shardDone;
        sfm::SwapCallback done;
        bool dead = false;  ///< fell back / aborted
        std::uint64_t traceId = 0;  ///< obs::Tracer request id
        Tick traceStart = 0;        ///< request submission tick
        /** Preset dictionary shared by every shard of this op (null
         *  when dict mode is off / the page stored none). Watchdog
         *  redos must reuse it so the CPU-redone block is
         *  byte-identical to the one the engine would have staged. */
        std::shared_ptr<const Bytes> dict;
        /** packDict() image awaiting its once-per-page placement
         *  after DIMM 0's shard block (compress ops only). */
        Bytes packedDict;
    };

    std::uint64_t shardFrameAddr(sfm::VirtPage page) const;
    std::uint64_t slotAddr(std::uint64_t offset) const;
    Tick decompressDeadline() const;

    /** Sample the page's preset dictionary (null when dict mode is
     *  off or the sample came back empty). */
    std::shared_ptr<const Bytes> pageDict(sfm::VirtPage page) const;
    /** Recover the once-per-page packed dictionary from the slot
     *  tails (null when the page stored none). The stripe split is
     *  recomputed from (shardSizes, dictStored), so no per-stripe
     *  metadata is stored. */
    std::shared_ptr<const Bytes> loadPageDict(const PageEntry &entry);
    /** Water-fill the packed dictionary across the slot tails
     *  (stripe d lands after DIMM d's shard block). */
    void placePageDict(std::uint64_t offset,
                       const std::vector<std::uint32_t> &shard_sizes,
                       const Bytes &packed);
    /** Attribute one stored compress-shard block to the dict-mode
     *  counters (no-op while dict mode is off). */
    void countDictShard(ByteSpan block);

    void cpuSwapOut(sfm::VirtPage page, sfm::SwapCallback done,
                    std::uint64_t trace_id = 0);
    void cpuSwapIn(sfm::VirtPage page, sfm::SwapCallback done,
                   std::uint64_t trace_id = 0);
    /** Trace a failed request end (busy/quarantine/reject paths). */
    void traceFailed(std::uint64_t trace_id);
    void chargeCpu(std::uint64_t bytes, bool compress_op,
                   Tick &latency_out);

    /**
     * CPU-visible refresh stall for a demand access to @p addr
     * right now: the worst remaining refresh/RFM bank lock across
     * the DIMMs the page is striped over (the access needs all
     * shards). Always 0 while refresh realism is disarmed, so the
     * default configuration's latencies are untouched.
     */
    Tick cpuRefreshStall(std::uint64_t addr);

    /** Quarantine a poisoned page, evicting the oldest quarantined
     *  page when cfg.quarantineCap would be exceeded. */
    void quarantinePage(sfm::VirtPage page);

    void onComplete(std::size_t dimm, const nma::OffloadCompletion &c);
    void onWriteback(std::size_t dimm, nma::OffloadId id, Tick t);
    void onDrop(std::size_t dimm, nma::OffloadId id,
                nma::DropReason reason);
    /** All shards compressed: size the same-offset slot and commit
     *  write-backs (shared by onComplete and watchdog recovery). */
    void placeCompressWritebacks(const std::shared_ptr<PendingOp> &op);
    /** Redo one watchdog-dropped shard on the CPU while the page's
     *  other shards stay offloaded. */
    void recoverShardOnCpu(std::size_t dimm,
                           const std::shared_ptr<PendingOp> &op);
    void failToCpu(const std::shared_ptr<PendingOp> &op);
    void finishOp(const std::shared_ptr<PendingOp> &op, Tick now,
                  bool used_cpu);

    XfmSystemConfig cfg_;
    dram::MemCtrl *host_ctrl_;
    fault::FaultInjector injector_;
    std::unique_ptr<compress::Compressor> codec_;
    std::unique_ptr<dram::RefreshController> refresh_;
    std::vector<Dimm> dimms_;
    SameOffsetAllocator alloc_;

    std::map<sfm::VirtPage, PageEntry> entries_;  ///< rb-tree lookup
    /** Per-DIMM offload id -> in-flight op. */
    std::vector<std::unordered_map<nma::OffloadId,
                                   std::shared_ptr<PendingOp>>> routes_;
    /** Pages with an operation in flight (reject re-entry). */
    std::map<sfm::VirtPage, std::shared_ptr<PendingOp>> busy_;
    /** Pages poisoned by an uncorrectable ECC error. */
    std::set<sfm::VirtPage> quarantined_;
    /** Quarantine order, oldest first (cap eviction policy). */
    std::deque<sfm::VirtPage> quarantine_order_;
    ReclaimHook reclaim_hook_;
    /** One breaker per channel shard (per-DIMM offload path). */
    std::vector<health::HealthMonitor> channel_health_;

    sfm::BackendStats stats_;
    XfmBackendStats xfm_stats_;
    std::uint32_t partition_ = 0;  ///< SPM partition for submissions
    obs::Tracer *tracer_ = nullptr;

    /** Per-DIMM shard/block staging reused across CPU swaps. */
    std::vector<Bytes> shard_scratch_;
    std::vector<Bytes> block_scratch_;
    /**
     * Declared last so it is destroyed first: the pool's destructor
     * drains and joins every worker before the DIMM devices (whose
     * codecs in-flight jobs reference) go away.
     */
    WorkerPool pool_;
};

} // namespace xfmsys
} // namespace xfm

#endif // XFM_XFM_XFM_BACKEND_HH
