#include "multichannel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/dict.hh"

namespace xfm
{
namespace xfmsys
{

void
splitPageInto(ByteSpan page, std::size_t num_dimms,
              std::size_t interleave, std::vector<Bytes> &shards)
{
    XFM_ASSERT(num_dimms >= 1, "need at least one DIMM");
    XFM_ASSERT(interleave > 0, "interleave must be positive");
    shards.resize(num_dimms);
    const std::size_t reserve = page.size() / num_dimms + interleave;
    for (auto &s : shards) {
        s.clear();
        s.reserve(reserve);
    }
    std::size_t chunk = 0;
    for (std::size_t off = 0; off < page.size();
         off += interleave, ++chunk) {
        const std::size_t len =
            std::min(interleave, page.size() - off);
        Bytes &dst = shards[chunk % num_dimms];
        dst.insert(dst.end(), page.begin() + off,
                   page.begin() + off + len);
    }
}

std::vector<Bytes>
splitPage(ByteSpan page, std::size_t num_dimms, std::size_t interleave)
{
    std::vector<Bytes> shards;
    splitPageInto(page, num_dimms, interleave, shards);
    return shards;
}

void
gatherPageInto(const std::vector<Bytes> &shards, std::size_t interleave,
               Bytes &page)
{
    XFM_ASSERT(!shards.empty(), "gather with no shards");
    std::size_t total = 0;
    for (const auto &s : shards)
        total += s.size();
    page.clear();
    page.reserve(total);

    std::vector<std::size_t> cursor(shards.size(), 0);
    std::size_t chunk = 0;
    while (page.size() < total) {
        const std::size_t d = chunk % shards.size();
        const Bytes &src = shards[d];
        XFM_ASSERT(cursor[d] < src.size(),
                   "gather: shard ", d, " exhausted early");
        const std::size_t len =
            std::min(interleave, src.size() - cursor[d]);
        page.insert(page.end(), src.begin() + cursor[d],
                    src.begin() + cursor[d] + len);
        cursor[d] += len;
        ++chunk;
    }
}

Bytes
gatherPage(const std::vector<Bytes> &shards, std::size_t interleave)
{
    Bytes page;
    gatherPageInto(shards, interleave, page);
    return page;
}

SameOffsetAllocator::SameOffsetAllocator(std::uint64_t region_bytes,
                                         std::uint32_t alignment)
    : region_(region_bytes), alignment_(alignment)
{
    XFM_ASSERT(region_ > 0, "empty region");
    XFM_ASSERT(alignment_ > 0, "alignment must be positive");
}

std::uint64_t
SameOffsetAllocator::allocate(std::uint32_t bytes)
{
    XFM_ASSERT(bytes > 0, "zero-size slot");
    const std::uint32_t size =
        (bytes + alignment_ - 1) / alignment_ * alignment_;

    // First fit in the gaps between existing slots.
    std::uint64_t prev_end = 0;
    for (const auto &[off, len] : slots_) {
        if (off - prev_end >= size) {
            slots_.emplace(prev_end, size);
            used_ += size;
            return prev_end;
        }
        prev_end = off + len;
    }
    if (region_ - prev_end >= size) {
        slots_.emplace(prev_end, size);
        used_ += size;
        return prev_end;
    }
    return invalidOffset;
}

void
SameOffsetAllocator::release(std::uint64_t offset)
{
    auto it = slots_.find(offset);
    XFM_ASSERT(it != slots_.end(), "release: unknown slot ", offset);
    used_ -= it->second;
    slots_.erase(it);
}

std::uint64_t
SameOffsetAllocator::highWaterMark() const
{
    if (slots_.empty())
        return 0;
    const auto &[off, len] = *slots_.rbegin();
    return off + len;
}

bool
SameOffsetAllocator::resize(std::uint64_t new_region_bytes)
{
    XFM_ASSERT(new_region_bytes > 0, "cannot resize to zero");
    if (new_region_bytes < highWaterMark())
        return false;
    region_ = new_region_bytes;
    return true;
}

void
SameOffsetAllocator::repack(
    const std::function<void(std::uint64_t, std::uint64_t,
                             std::uint32_t)> &move,
    const std::function<bool(std::uint64_t)> &pinned)
{
    // Immovable intervals, in offset order.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pins;
    if (pinned) {
        for (const auto &[off, len] : slots_)
            if (pinned(off))
                pins.emplace_back(off, off + len);
    }

    std::map<std::uint64_t, std::uint32_t> packed;
    std::uint64_t next = 0;
    for (const auto &[off, len] : slots_) {
        if (pinned && pinned(off)) {
            packed.emplace(off, len);
            continue;
        }
        // Earliest placement at or after `next` that avoids every
        // pinned interval.
        std::uint64_t target = next;
        for (const auto &[ps, pe] : pins) {
            if (target + len <= ps)
                break;
            if (target < pe)
                target = pe;
        }
        if (target > off)
            target = off;  // never move a slot toward higher offsets
        if (off != target)
            move(off, target, len);
        packed.emplace(target, len);
        next = target + len;
    }
    slots_ = std::move(packed);
}

std::uint32_t
SameOffsetAllocator::slotSize(std::uint64_t offset) const
{
    auto it = slots_.find(offset);
    XFM_ASSERT(it != slots_.end(), "slotSize: unknown slot ", offset);
    return it->second;
}

MultiChannelResult
measureMultiChannel(const std::vector<Bytes> &pages,
                    const compress::Compressor &codec,
                    std::size_t num_dimms, std::size_t interleave,
                    WorkerPool *pool)
{
    MultiChannelResult res;
    res.dimms = num_dimms;
    std::vector<Bytes> shards;
    std::vector<Bytes> blocks(num_dimms);
    for (const auto &page : pages) {
        res.rawBytes += page.size();
        splitPageInto(page, num_dimms, interleave, shards);
        if (pool && pool->parallel()) {
            pool->parallelFor(num_dimms, [&](std::size_t d) {
                codec.compressInto(shards[d], blocks[d]);
            });
        } else {
            for (std::size_t d = 0; d < num_dimms; ++d)
                codec.compressInto(shards[d], blocks[d]);
        }
        // Sizes accumulate in shard order regardless of which
        // worker compressed each shard.
        std::uint64_t max_shard = 0;
        for (const auto &block : blocks) {
            res.compressedBytes += block.size();
            max_shard = std::max<std::uint64_t>(max_shard, block.size());
        }
        // Same-offset placement: every DIMM reserves the largest
        // shard's extent.
        res.placedBytes += max_shard * num_dimms;
    }
    return res;
}

MultiChannelResult
measureMultiChannelDict(const std::vector<Bytes> &pages,
                        const compress::Compressor &codec,
                        std::size_t num_dimms, std::size_t dict_bytes,
                        std::size_t interleave, WorkerPool *pool)
{
    MultiChannelResult res;
    res.dimms = num_dimms;
    std::vector<Bytes> shards;
    std::vector<Bytes> blocks(num_dimms);
    Bytes dict;
    Bytes packed;
    std::vector<Bytes> restored(num_dimms);
    Bytes roundtrip;
    for (const auto &page : pages) {
        res.rawBytes += page.size();
        splitPageInto(page, num_dimms, interleave, shards);
        dict = compress::buildPresetDictionary(page, interleave,
                                               dict_bytes);
        compress::packDict(codec, dict, packed);
        if (pool && pool->parallel()) {
            pool->parallelFor(num_dimms, [&](std::size_t d) {
                compress::encodeShardRef(codec, dict, shards[d],
                                         blocks[d]);
            });
        } else {
            for (std::size_t d = 0; d < num_dimms; ++d)
                compress::encodeShardRef(codec, dict, shards[d],
                                         blocks[d]);
        }
        std::vector<std::uint32_t> sizes(num_dimms);
        for (std::size_t d = 0; d < num_dimms; ++d) {
            sizes[d] = static_cast<std::uint32_t>(blocks[d].size());
            res.compressedBytes += blocks[d].size();
        }
        // The packed dictionary is stored once per page,
        // water-filled into the slot tails (it rides in the
        // same-offset padding until that is exhausted).
        res.compressedBytes += packed.size();
        res.dictBytes += packed.size();
        const std::uint64_t slot = compress::dictSlotSize(
            sizes, static_cast<std::uint32_t>(packed.size()));
        res.placedBytes += slot * num_dimms;
        // Integrity gate: the dict-mode blocks must restore the
        // exact page through the shared decode path.
        for (std::size_t d = 0; d < num_dimms; ++d)
            compress::decodeShard(codec, blocks[d], dict,
                                  restored[d]);
        gatherPageInto(restored, interleave, roundtrip);
        XFM_ASSERT(roundtrip == page,
                   "dict-mode multichannel round-trip mismatch");
    }
    return res;
}

} // namespace xfmsys
} // namespace xfm
