#include "xfm_backend.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/dict.hh"

namespace xfm
{
namespace xfmsys
{

using sfm::PageState;
using sfm::SwapCallback;
using sfm::SwapOutcome;
using sfm::VirtPage;

namespace
{

/**
 * Attribute driver re-submissions consumed before a CPU fallback to
 * the outcome the fallback path will eventually report.
 */
SwapCallback
carryRetries(std::uint32_t retries, SwapCallback done)
{
    if (!retries || !done)
        return done;
    return [retries, done](const SwapOutcome &o) {
        SwapOutcome r = o;
        r.retries += retries;
        done(r);
    };
}

/** True when every shard of the op was handled on the CPU. */
bool
allOnCpu(const std::vector<std::uint8_t> &cpu_shard, std::size_t n)
{
    if (cpu_shard.size() != n)
        return false;
    for (auto f : cpu_shard)
        if (!f)
            return false;
    return true;
}

} // namespace

XfmBackend::XfmBackend(std::string name, EventQueue &eq,
                       const XfmSystemConfig &cfg,
                       dram::MemCtrl *host_ctrl)
    : SimObject(std::move(name), eq), cfg_(cfg),
      host_ctrl_(host_ctrl), injector_(cfg.faults),
      codec_(compress::makeCompressor(cfg.algorithm)),
      alloc_(cfg.sfmBytes), routes_(cfg.numDimms),
      shard_scratch_(cfg.numDimms), block_scratch_(cfg.numDimms),
      pool_(cfg.workers)
{
    XFM_ASSERT(cfg_.numDimms >= 1, "need at least one DIMM");
    XFM_ASSERT(cfg_.dimmMem.channels == 1
                   && cfg_.dimmMem.dimmsPerChannel == 1
                   && cfg_.dimmMem.ranksPerDimm == 1,
               "per-DIMM geometry must be single-channel/rank");
    XFM_ASSERT(pageBytes % cfg_.numDimms == 0,
               "page must split evenly across DIMMs");
    XFM_ASSERT((pageBytes / cfg_.interleave) % cfg_.numDimms == 0,
               "interleave chunks must split evenly across DIMMs");
    XFM_ASSERT(cfg_.localPages > 0, "no virtual pages configured");

    const std::uint64_t local_end =
        cfg_.localBase + cfg_.localPages * cfg_.shardBytes();
    XFM_ASSERT(local_end <= cfg_.sfmBase
                   || cfg_.sfmBase + cfg_.sfmBytes <= cfg_.localBase,
               "local and SFM regions overlap");
    XFM_ASSERT(cfg_.sfmBase + cfg_.sfmBytes
                   <= cfg_.dimmMem.totalCapacityBytes(),
               "SFM region beyond DIMM capacity");

    refresh_ = std::make_unique<dram::RefreshController>(
        this->name() + ".refresh", eq, cfg_.dimmMem.rank.device,
        static_cast<std::uint32_t>(cfg_.numDimms));
    // Rank r of the refresh controller maps onto DIMM r, so its REF
    // events ride the same event domain as that DIMM's device and
    // driver (DESIGN.md §13).
    refresh_->setRankDomainBase(1);

    dimms_.reserve(cfg_.numDimms);
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        Dimm dimm;
        dimm.map = std::make_unique<dram::AddressMap>(cfg_.dimmMem);
        dimm.mem = std::make_unique<dram::PhysMem>(
            cfg_.dimmMem.totalCapacityBytes());

        nma::XfmDeviceConfig dcfg = cfg_.device;
        dcfg.rank = static_cast<std::uint32_t>(d);
        dcfg.algorithm = cfg_.algorithm;
        dcfg.health = cfg_.health;
        dimm.device = std::make_unique<nma::XfmDevice>(
            this->name() + ".dimm" + std::to_string(d), eq, dcfg,
            *dimm.map, *dimm.mem, *refresh_);
        // Per-DIMM traffic lands on its own event domain; the sharded
        // event core can then stage each DIMM's heap in parallel.
        dimm.device->setEventDomain(1 + static_cast<std::uint32_t>(d));
        dimm.driver = std::make_unique<XfmDriver>(*dimm.device);
        dimm.driver->xfmParamset(cfg_.sfmBase, cfg_.sfmBytes);
        // Page registration (Sec. 6): the NMA may only touch the
        // local shard frames and the SFM region.
        dimm.driver->xfmRegisterRegion(
            cfg_.localBase, cfg_.localPages * cfg_.shardBytes());
        dimm.driver->xfmRegisterRegion(cfg_.sfmBase, cfg_.sfmBytes);

        dimm.driver->onComplete(
            [this, d](const nma::OffloadCompletion &c) {
            onComplete(d, c);
        });
        dimm.driver->onWriteback([this, d](nma::OffloadId id, Tick t) {
            onWriteback(d, id, t);
        });
        dimm.driver->onDrop(
            [this, d](nma::OffloadId id, nma::DropReason reason) {
            onDrop(d, id, reason);
        });
        // One injector for the whole backend: all sites share the
        // plan's RNG stream and statistics, and the event queue
        // orders evaluations deterministically across DIMMs.
        dimm.device->setFaultInjector(&injector_);
        dimm.device->setWorkerPool(&pool_);
        dimm.driver->setFaultInjector(&injector_);
        dimm.driver->setRetryPolicy(cfg_.retry);
        dimm.driver->configureHealth(cfg_.health);
        dimms_.push_back(std::move(dimm));
        channel_health_.emplace_back(cfg_.health);
    }
}

double
XfmBackend::spmOccupancyFraction() const
{
    double worst = 0.0;
    for (const auto &dimm : dimms_) {
        const auto &spm = dimm.device->spm();
        if (spm.capacityBytes() == 0)
            continue;
        worst = std::max(worst,
                         static_cast<double>(spm.usedBytes())
                             / static_cast<double>(spm.capacityBytes()));
    }
    return worst;
}

void
XfmBackend::start()
{
    refresh_->start();
}

std::uint64_t
XfmBackend::shardFrameAddr(VirtPage page) const
{
    return cfg_.localBase + page * cfg_.shardBytes();
}

std::uint64_t
XfmBackend::slotAddr(std::uint64_t offset) const
{
    return cfg_.sfmBase + offset;
}

Tick
XfmBackend::decompressDeadline() const
{
    const Tick slack = cfg_.decompressSlack
        ? cfg_.decompressSlack
        : 10 * cfg_.dimmMem.rank.device.tREFI();
    return curTick() + slack;
}

std::shared_ptr<const Bytes>
XfmBackend::pageDict(VirtPage page) const
{
    // Single-DIMM mode is gated off: the shard IS the page, so the
    // codec's own window already sees everything the sampled
    // dictionary could carry and storing it can only lose bytes.
    if (!cfg_.shardDict || cfg_.dictBytes == 0 || cfg_.numDimms < 2)
        return nullptr;
    auto dict = std::make_shared<Bytes>(compress::buildPresetDictionary(
        readPage(page), cfg_.interleave, cfg_.dictBytes));
    if (dict->empty())
        return nullptr;
    return dict;
}

std::shared_ptr<const Bytes>
XfmBackend::loadPageDict(const PageEntry &entry)
{
    if (entry.dictStored == 0)
        return nullptr;
    XFM_ASSERT(!entry.shardSizes.empty(),
               "dict-bearing page has no shard sizes");
    const auto stripes =
        compress::dictStripes(entry.shardSizes, entry.dictStored);
    Bytes packed;
    packed.reserve(entry.dictStored);
    Bytes stripe;
    for (std::size_t d = 0; d < stripes.size(); ++d) {
        if (stripes[d] == 0)
            continue;
        dimms_[d].mem->read(
            slotAddr(entry.offset) + entry.shardSizes[d], stripes[d],
            stripe);
        packed.insert(packed.end(), stripe.begin(), stripe.end());
    }
    return std::make_shared<Bytes>(
        compress::unpackDict(*codec_, packed));
}

void
XfmBackend::placePageDict(std::uint64_t offset,
                          const std::vector<std::uint32_t> &shard_sizes,
                          const Bytes &packed)
{
    if (packed.empty())
        return;
    const auto stripes = compress::dictStripes(
        shard_sizes, static_cast<std::uint32_t>(packed.size()));
    std::size_t off = 0;
    for (std::size_t d = 0; d < stripes.size(); ++d) {
        if (stripes[d] == 0)
            continue;
        const Bytes stripe(packed.begin() + off,
                           packed.begin() + off + stripes[d]);
        dimms_[d].mem->write(slotAddr(offset) + shard_sizes[d],
                             stripe);
        off += stripes[d];
    }
}

void
XfmBackend::countDictShard(ByteSpan block)
{
    if (!cfg_.shardDict)
        return;
    if (compress::isDictBlock(block) || compress::isDictRefBlock(block))
        ++xfm_stats_.dictShards;
    else
        ++xfm_stats_.dictFallbacks;
}

void
XfmBackend::writePage(VirtPage page, ByteSpan data)
{
    XFM_ASSERT(page < cfg_.localPages, "page out of range");
    XFM_ASSERT(data.size() == pageBytes, "writePage needs a full page");
    splitPageInto(data, cfg_.numDimms, cfg_.interleave, shard_scratch_);
    for (std::size_t d = 0; d < cfg_.numDimms; ++d)
        dimms_[d].mem->write(shardFrameAddr(page), shard_scratch_[d]);
}

Bytes
XfmBackend::readPage(VirtPage page) const
{
    XFM_ASSERT(page < cfg_.localPages, "page out of range");
    std::vector<Bytes> shards(cfg_.numDimms);
    for (std::size_t d = 0; d < cfg_.numDimms; ++d)
        dimms_[d].mem->read(shardFrameAddr(page), cfg_.shardBytes(),
                            shards[d]);
    Bytes page_data;
    gatherPageInto(shards, cfg_.interleave, page_data);
    return page_data;
}

PageState
XfmBackend::pageState(VirtPage page) const
{
    return entries_.count(page) ? PageState::Far : PageState::Local;
}

std::uint64_t
XfmBackend::storedCompressedBytes() const
{
    std::uint64_t total = 0;
    for (const auto &[page, entry] : entries_)
        for (auto s : entry.shardSizes)
            total += s;
    return total;
}

std::uint64_t
XfmBackend::fragmentationBytes() const
{
    std::uint64_t frag = 0;
    for (const auto &[page, entry] : entries_) {
        const std::uint64_t slot =
            std::uint64_t(alloc_.slotSize(entry.offset)) * cfg_.numDimms;
        std::uint64_t stored = 0;
        for (auto s : entry.shardSizes)
            stored += s;
        frag += slot - stored;
    }
    return frag;
}

void
XfmBackend::chargeCpu(std::uint64_t bytes, bool compress_op,
                      Tick &latency_out)
{
    const auto cost = compress::cpuCost(cfg_.algorithm);
    const double per_byte = compress_op ? cost.compressCyclesPerByte
                                        : cost.decompressCyclesPerByte;
    const double cycles = per_byte * static_cast<double>(bytes);
    stats_.cpuCycles += static_cast<std::uint64_t>(cycles);
    latency_out =
        static_cast<Tick>(cycles / cfg_.cpuFreqGHz * 1000.0);
}

Tick
XfmBackend::cpuRefreshStall(std::uint64_t addr)
{
    if (!cfg_.dimmMem.rank.device.refreshRealismArmed())
        return 0;
    Tick stall = 0;
    const Tick now = curTick();
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        const auto coord = dimms_[d].map->decode(addr);
        stall = std::max(
            stall,
            refresh_->accessStall(static_cast<std::uint32_t>(d),
                                  coord.bank, now));
    }
    xfm_stats_.cpuRefreshStallTicks += stall;
    return stall;
}

// --------------------------------------------------------- CPU fallback

void
XfmBackend::traceFailed(std::uint64_t trace_id)
{
    if (tracer_ && trace_id)
        tracer_->point(trace_id, obs::Stage::Complete, curTick(),
                       obs::outcomeFailed);
}

void
XfmBackend::cpuSwapOut(VirtPage page, SwapCallback done,
                       std::uint64_t trace_id)
{
    // Fan the per-DIMM shard compressions out over the worker pool;
    // each index touches only its own DIMM's memory and scratch
    // slot, and every result below is consumed in index order, so
    // the outcome is byte-identical for any worker count.
    const auto dict = pageDict(page);
    Bytes packed_dict;
    if (dict)
        compress::packDict(*codec_, *dict, packed_dict);
    std::vector<std::uint8_t> dict_used(cfg_.numDimms, 0);
    pool_.parallelFor(cfg_.numDimms, [&](std::size_t d) {
        dimms_[d].mem->read(shardFrameAddr(page), cfg_.shardBytes(),
                            shard_scratch_[d]);
        if (dict)
            dict_used[d] = compress::encodeShardRef(
                *codec_, *dict, shard_scratch_[d],
                block_scratch_[d]);
        else
            codec_->compressInto(shard_scratch_[d], block_scratch_[d]);
    });
    // Every shard fell back to a plain block: the dictionary would
    // be dead weight, so the page stores none.
    if (std::find(dict_used.begin(), dict_used.end(), 1)
        == dict_used.end())
        packed_dict.clear();
    const std::vector<Bytes> &blocks = block_scratch_;
    // Slot size: largest shard block, grown only if the water-filled
    // dictionary stripes overflow the same-offset padding.
    std::vector<std::uint32_t> sizes(cfg_.numDimms);
    for (std::size_t d = 0; d < cfg_.numDimms; ++d)
        sizes[d] = static_cast<std::uint32_t>(blocks[d].size());
    const std::uint32_t max_size = compress::dictSlotSize(
        sizes, static_cast<std::uint32_t>(packed_dict.size()));

    std::uint64_t offset = alloc_.allocate(max_size);
    if (offset == SameOffsetAllocator::invalidOffset) {
        compact();
        offset = alloc_.allocate(max_size);
    }

    SwapOutcome outcome;
    outcome.page = page;
    outcome.usedCpu = true;
    if (offset == SameOffsetAllocator::invalidOffset) {
        ++stats_.rejectedSwapOuts;
        ++xfm_stats_.fallbackAlloc;
        if (tracer_ && trace_id)
            tracer_->point(trace_id, obs::Stage::Fallback, curTick(),
                           obs::fallbackAlloc);
        traceFailed(trace_id);
        outcome.success = false;
        outcome.rejected = sfm::RejectReason::SfmFull;
        outcome.completed = curTick();
        if (done)
            done(outcome);
        return;
    }

    PageEntry entry;
    entry.offset = offset;
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        dimms_[d].mem->write(slotAddr(offset), blocks[d]);
        countDictShard(blocks[d]);
        entry.shardSizes.push_back(sizes[d]);
        outcome.compressedSize += sizes[d];
    }
    entry.dictStored =
        static_cast<std::uint32_t>(packed_dict.size());
    placePageDict(offset, entry.shardSizes, packed_dict);
    outcome.compressedSize += entry.dictStored;
    entries_.emplace(page, std::move(entry));

    ++stats_.swapOuts;
    ++stats_.cpuSwapOuts;
    stats_.bytesCompressed += pageBytes;
    // CPU fallback burns host channel bandwidth: page read plus
    // compressed write (the traffic XFM offloads avoid entirely).
    if (host_ctrl_) {
        host_ctrl_->submit({page * pageBytes,
                            static_cast<std::uint32_t>(pageBytes),
                            false, nullptr});
        host_ctrl_->submit({page * pageBytes, outcome.compressedSize,
                            true, nullptr});
    }
    Tick latency;
    chargeCpu(pageBytes, true, latency);
    // The host's page read stalls on refresh/RFM locks on its way
    // to the frame (0 while refresh realism is disarmed).
    latency += cpuRefreshStall(shardFrameAddr(page));
    outcome.success = true;
    if (tracer_ && trace_id)
        tracer_->record(trace_id, obs::Stage::CpuCompute, curTick(),
                        curTick() + latency);
    // CPU-fallback completions touch whole-page state spanning every
    // DIMM, so they stay on the global event domain (shard 0).
    eventq().scheduleIn(latency,
                        [outcome, done, trace_id, this]() mutable {
        outcome.completed = curTick();
        if (tracer_ && trace_id)
            tracer_->point(trace_id, obs::Stage::Complete, curTick(),
                           obs::outcomeCpu);
        if (done)
            done(outcome);
    });
}

void
XfmBackend::cpuSwapIn(VirtPage page, SwapCallback done,
                      std::uint64_t trace_id)
{
    auto it = entries_.find(page);
    XFM_ASSERT(it != entries_.end(), "cpuSwapIn: page not far");
    const PageEntry entry = it->second;

    SwapOutcome outcome;
    outcome.page = page;
    outcome.usedCpu = true;
    outcome.success = true;
    // The specialised CPU_Fallback decompression handles both
    // decompression and gathering without extra copies (Fig. 9b):
    // each shard decompresses straight into its DIMM-local frame.
    // Decompressions fan out over the pool; the frame writes commit
    // serially in index order below.
    const auto dict = loadPageDict(entry);
    pool_.parallelFor(cfg_.numDimms, [&](std::size_t d) {
        dimms_[d].mem->read(slotAddr(entry.offset),
                            entry.shardSizes[d], block_scratch_[d]);
        if (dict)
            compress::decodeShard(*codec_, block_scratch_[d], *dict,
                                  shard_scratch_[d]);
        else
            compress::decodeShard(*codec_, block_scratch_[d],
                                  shard_scratch_[d]);
    });
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        XFM_ASSERT(shard_scratch_[d].size() == cfg_.shardBytes(),
                   "shard decompressed to wrong size");
        dimms_[d].mem->write(shardFrameAddr(page), shard_scratch_[d]);
        outcome.compressedSize += entry.shardSizes[d];
    }
    outcome.compressedSize += entry.dictStored;
    alloc_.release(entry.offset);
    entries_.erase(it);

    ++stats_.swapIns;
    ++stats_.cpuSwapIns;
    stats_.bytesDecompressed += pageBytes;
    if (host_ctrl_) {
        host_ctrl_->submit({page * pageBytes, outcome.compressedSize,
                            false, nullptr});
        host_ctrl_->submit({page * pageBytes,
                            static_cast<std::uint32_t>(pageBytes),
                            true, nullptr});
    }
    Tick latency;
    chargeCpu(pageBytes, false, latency);
    // The demand fault's compressed-slot read stalls on refresh/RFM
    // locks (0 while refresh realism is disarmed).
    latency += cpuRefreshStall(slotAddr(entry.offset));
    if (tracer_ && trace_id)
        tracer_->record(trace_id, obs::Stage::CpuCompute, curTick(),
                        curTick() + latency);
    // CPU-fallback completions touch whole-page state spanning every
    // DIMM, so they stay on the global event domain (shard 0).
    eventq().scheduleIn(latency,
                        [outcome, done, trace_id, this]() mutable {
        outcome.completed = curTick();
        if (tracer_ && trace_id)
            tracer_->point(trace_id, obs::Stage::Complete, curTick(),
                           obs::outcomeCpu);
        if (done)
            done(outcome);
    });
}

// ------------------------------------------------------------- offloads

void
XfmBackend::swapOut(VirtPage page, SwapCallback done)
{
    swapOut(page, true, std::move(done));
}

void
XfmBackend::swapOut(VirtPage page, bool allow_offload,
                    SwapCallback done)
{
    XFM_ASSERT(page < cfg_.localPages, "page out of range");
    if (entries_.count(page))
        fatal("swapOut: page ", page, " already in far memory");
    const std::uint64_t tid = tracer_ ? tracer_->begin() : 0;
    if (busy_.count(page)) {
        traceFailed(tid);
        SwapOutcome o;
        o.page = page;
        o.success = false;
        o.rejected = sfm::RejectReason::Busy;
        o.completed = curTick();
        if (done)
            done(o);
        return;
    }

    // The service layer degrades over-quota tenants to the CPU path
    // without touching the NMA's queues.
    if (!allow_offload) {
        cpuSwapOut(page, std::move(done), tid);
        return;
    }

    // Channel-shard breakers: a Failed channel is routed around by
    // compressing its shard on the CPU while the healthy channels
    // stay offloaded. If every channel is open, the whole page goes
    // to the CPU path.
    // The routing decision uses wouldAdmit() — no half-open probe
    // slot is consumed until the shard is actually submitted below,
    // so capacity fallbacks cannot churn a probation round.
    std::vector<std::uint8_t> use_cpu;
    std::size_t cpu_shards = 0;
    if (cfg_.health.enabled) {
        use_cpu.assign(cfg_.numDimms, 0);
        for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
            if (!channel_health_[d].wouldAdmit(curTick())) {
                use_cpu[d] = 1;
                ++cpu_shards;
            }
        }
        if (cpu_shards == cfg_.numDimms) {
            ++xfm_stats_.breakerFallbacks;
            if (tracer_ && tid)
                tracer_->point(tid, obs::Stage::Fallback, curTick(),
                               obs::fallbackBreaker);
            cpuSwapOut(page, std::move(done), tid);
            return;
        }
    }
    const auto shard_on_cpu = [&use_cpu](std::size_t d) {
        return !use_cpu.empty() && use_cpu[d];
    };

    // Lazy capacity check on every offloading DIMM before submitting
    // anywhere, so a partial submit (and abort storm) stays rare.
    const auto worst = nma::CompressionEngine::worstCaseCompressedSize(
        static_cast<std::uint32_t>(cfg_.shardBytes()));
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        if (!shard_on_cpu(d)
            && (!dimms_[d].driver->ringHasSlot()
                || !dimms_[d].driver->canAccept(worst))) {
            ++xfm_stats_.fallbackCapacity;
            if (tracer_ && tid)
                tracer_->point(tid, obs::Stage::Fallback, curTick(),
                               obs::fallbackCapacity);
            cpuSwapOut(page, std::move(done), tid);
            return;
        }
    }

    auto op = std::make_shared<PendingOp>();
    op->page = page;
    op->isCompress = true;
    op->ids.resize(cfg_.numDimms, nma::invalidOffloadId);
    op->sizes.resize(cfg_.numDimms, 0);
    op->cpuShard = use_cpu;
    op->shardDone = use_cpu;
    op->completions = cpu_shards;  // CPU shards are done up front
    op->done = std::move(done);
    op->traceId = tid;
    op->traceStart = curTick();
    op->dict = pageDict(page);
    if (op->dict)
        compress::packDict(*codec_, *op->dict, op->packedDict);
    if (cpu_shards)
        op->cpuBlocks.resize(cfg_.numDimms);

    const Tick deadline =
        curTick() + cfg_.dimmMem.rank.device.retention;
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        if (shard_on_cpu(d)) {
            // Per-shard CPU fallback: compress this channel's shard
            // now; the block lands in the slot once its size is
            // known (all completions in).
            dimms_[d].mem->read(shardFrameAddr(page),
                                cfg_.shardBytes(), shard_scratch_[d]);
            if (op->dict)
                compress::encodeShardRef(*codec_, *op->dict,
                                         shard_scratch_[d],
                                         op->cpuBlocks[d]);
            else
                codec_->compressInto(shard_scratch_[d],
                                     op->cpuBlocks[d]);
            op->sizes[d] = static_cast<std::uint32_t>(
                op->cpuBlocks[d].size());
            ++xfm_stats_.shardCpuFallbacks;
            Tick latency;
            chargeCpu(cfg_.shardBytes(), true, latency);
            if (host_ctrl_) {
                host_ctrl_->submit(
                    {page * pageBytes,
                     static_cast<std::uint32_t>(cfg_.shardBytes()),
                     false, nullptr});
                host_ctrl_->submit({page * pageBytes, op->sizes[d],
                                    true, nullptr});
            }
            if (tracer_ && tid)
                tracer_->record(tid, obs::Stage::CpuCompute,
                                curTick(), curTick() + latency);
            continue;
        }
        // Consume the channel's admission (a probe slot while in
        // probation) only now that the shard truly goes to hardware.
        // A same-tick race with another operation's probes can still
        // refuse here; roll back like a failed submit.
        const bool admitted = channel_health_[d].admit(curTick());
        const nma::OffloadId id = !admitted
            ? nma::invalidOffloadId
            : dimms_[d].driver->xfmCompress(
                  shardFrameAddr(page),
                  static_cast<std::uint32_t>(cfg_.shardBytes()),
                  deadline, partition_, tid, op->dict);
        if (admitted) {
            op->retries += dimms_[d].driver->lastSubmitRetries();
            xfm_stats_.offloadRetries +=
                dimms_[d].driver->lastSubmitRetries();
        }
        if (id == nma::invalidOffloadId) {
            // Roll back what was already submitted; no channel saw
            // its shard through, so admitted probes are returned.
            for (std::size_t k = 0; k < d; ++k) {
                if (op->ids[k] == nma::invalidOffloadId)
                    continue;
                routes_[k].erase(op->ids[k]);
                dimms_[k].driver->abort(op->ids[k]);
            }
            for (std::size_t k = 0; k <= d; ++k)
                if (!shard_on_cpu(k) && (k < d || admitted))
                    channel_health_[k].cancelProbe(curTick());
            ++xfm_stats_.fallbackCapacity;
            if (tracer_ && tid)
                tracer_->point(tid, obs::Stage::Fallback, curTick(),
                               obs::fallbackCapacity);
            cpuSwapOut(page,
                       carryRetries(op->retries, std::move(op->done)),
                       tid);
            return;
        }
        if (tracer_ && tid)
            tracer_->point(tid, obs::Stage::Submit, curTick(), d);
        op->ids[d] = id;
        routes_[d].emplace(id, op);
    }
    busy_.emplace(page, op);
}

void
XfmBackend::swapIn(VirtPage page, bool allow_offload, SwapCallback done)
{
    auto it = entries_.find(page);
    if (it == entries_.end())
        fatal("swapIn: page ", page, " is not in far memory");
    const std::uint64_t tid = tracer_ ? tracer_->begin() : 0;
    // Quarantined pages fail fast: their compressed image took an
    // uncorrectable ECC error, so decompressing it would hand
    // corrupt data to the application.
    if (quarantined_.count(page)) {
        traceFailed(tid);
        SwapOutcome o;
        o.page = page;
        o.success = false;
        o.rejected = sfm::RejectReason::Quarantined;
        o.completed = curTick();
        if (done)
            done(o);
        return;
    }
    if (injector_.armed()) {
        if (injector_.shouldInject(fault::FaultSite::EccCorrectable))
            ++xfm_stats_.eccCorrected;  // scrubbed transparently
        if (injector_.shouldInject(
                fault::FaultSite::EccUncorrectable)) {
            quarantinePage(page);
            ++xfm_stats_.eccQuarantines;
            traceFailed(tid);
            SwapOutcome o;
            o.page = page;
            o.success = false;
            o.rejected = sfm::RejectReason::Quarantined;
            o.completed = curTick();
            if (done)
                done(o);
            return;
        }
    }
    if (busy_.count(page)) {
        traceFailed(tid);
        SwapOutcome o;
        o.page = page;
        o.success = false;
        o.rejected = sfm::RejectReason::Busy;
        o.completed = curTick();
        if (done)
            done(o);
        return;
    }

    // Latency-critical demand faults default to the CPU (Sec. 6).
    if (!allow_offload) {
        cpuSwapIn(page, std::move(done), tid);
        return;
    }

    const PageEntry &entry = it->second;

    // Channel-shard breakers (see swapOut): a Failed channel's shard
    // decompresses on the CPU straight into its local frame; the
    // healthy channels stay offloaded.
    // wouldAdmit() only — probe slots are consumed at the actual
    // submission below (see swapOut).
    std::vector<std::uint8_t> use_cpu;
    std::size_t cpu_shards = 0;
    if (cfg_.health.enabled) {
        use_cpu.assign(cfg_.numDimms, 0);
        for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
            if (!channel_health_[d].wouldAdmit(curTick())) {
                use_cpu[d] = 1;
                ++cpu_shards;
            }
        }
        if (cpu_shards == cfg_.numDimms) {
            ++xfm_stats_.breakerFallbacks;
            if (tracer_ && tid)
                tracer_->point(tid, obs::Stage::Fallback, curTick(),
                               obs::fallbackBreaker);
            cpuSwapIn(page, std::move(done), tid);
            return;
        }
    }
    const auto shard_on_cpu = [&use_cpu](std::size_t d) {
        return !use_cpu.empty() && use_cpu[d];
    };

    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        if (!shard_on_cpu(d)
            && (!dimms_[d].driver->ringHasSlot()
                || !dimms_[d].driver->canAccept(
                       entry.shardSizes[d]))) {
            ++xfm_stats_.fallbackCapacity;
            if (tracer_ && tid)
                tracer_->point(tid, obs::Stage::Fallback, curTick(),
                               obs::fallbackCapacity);
            cpuSwapIn(page, std::move(done), tid);
            return;
        }
    }

    auto op = std::make_shared<PendingOp>();
    op->page = page;
    op->isCompress = false;
    op->ids.resize(cfg_.numDimms, nma::invalidOffloadId);
    op->sizes = entry.shardSizes;
    op->offset = entry.offset;
    op->cpuShard = use_cpu;
    op->shardDone = use_cpu;
    op->completions = cpu_shards;
    op->writebacks = cpu_shards;  // CPU shards land immediately
    op->done = std::move(done);
    op->traceId = tid;
    op->traceStart = curTick();
    // Pages stored with a preset dictionary: gather the packed copy
    // from the slot-tail stripes and stage it with every descriptor.
    // The host reads it once and fans it out to each engine's SPM,
    // so the dict transfer burns a little host bandwidth per DIMM.
    op->dict = loadPageDict(entry);
    if (op->dict && host_ctrl_)
        host_ctrl_->submit({slotAddr(entry.offset), entry.dictStored,
                            false, nullptr});

    const Tick deadline = decompressDeadline();
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        if (op->dict && !shard_on_cpu(d) && host_ctrl_)
            host_ctrl_->submit({slotAddr(entry.offset),
                                entry.dictStored, true, nullptr});
        if (shard_on_cpu(d)) {
            // Per-shard CPU fallback, same zero-copy shape as
            // cpuSwapIn: decompress straight into the local frame.
            dimms_[d].mem->read(slotAddr(entry.offset),
                                entry.shardSizes[d],
                                block_scratch_[d]);
            if (op->dict)
                compress::decodeShard(*codec_, block_scratch_[d],
                                      *op->dict, shard_scratch_[d]);
            else
                compress::decodeShard(*codec_, block_scratch_[d],
                                      shard_scratch_[d]);
            XFM_ASSERT(shard_scratch_[d].size() == cfg_.shardBytes(),
                       "shard decompressed to wrong size");
            dimms_[d].mem->write(shardFrameAddr(page),
                                 shard_scratch_[d]);
            ++xfm_stats_.shardCpuFallbacks;
            Tick latency;
            chargeCpu(cfg_.shardBytes(), false, latency);
            if (host_ctrl_) {
                host_ctrl_->submit({page * pageBytes,
                                    entry.shardSizes[d], false,
                                    nullptr});
                host_ctrl_->submit(
                    {page * pageBytes,
                     static_cast<std::uint32_t>(cfg_.shardBytes()),
                     true, nullptr});
            }
            if (tracer_ && tid)
                tracer_->record(tid, obs::Stage::CpuCompute,
                                curTick(), curTick() + latency);
            continue;
        }
        // See swapOut: the channel admission (probe slot) is consumed
        // only at the real submission.
        const bool admitted = channel_health_[d].admit(curTick());
        const nma::OffloadId id = !admitted
            ? nma::invalidOffloadId
            : dimms_[d].driver->xfmDecompress(
                  slotAddr(entry.offset), entry.shardSizes[d],
                  shardFrameAddr(page),
                  static_cast<std::uint32_t>(cfg_.shardBytes()),
                  deadline, partition_, tid, op->dict);
        if (admitted) {
            op->retries += dimms_[d].driver->lastSubmitRetries();
            xfm_stats_.offloadRetries +=
                dimms_[d].driver->lastSubmitRetries();
        }
        if (id == nma::invalidOffloadId) {
            for (std::size_t k = 0; k < d; ++k) {
                if (op->ids[k] == nma::invalidOffloadId)
                    continue;
                routes_[k].erase(op->ids[k]);
                dimms_[k].driver->abort(op->ids[k]);
            }
            for (std::size_t k = 0; k <= d; ++k)
                if (!shard_on_cpu(k) && (k < d || admitted))
                    channel_health_[k].cancelProbe(curTick());
            ++xfm_stats_.fallbackCapacity;
            if (tracer_ && tid)
                tracer_->point(tid, obs::Stage::Fallback, curTick(),
                               obs::fallbackCapacity);
            cpuSwapIn(page,
                      carryRetries(op->retries, std::move(op->done)),
                      tid);
            return;
        }
        if (tracer_ && tid)
            tracer_->point(tid, obs::Stage::Submit, curTick(), d);
        op->ids[d] = id;
        routes_[d].emplace(id, op);
    }
    busy_.emplace(page, op);
}

void
XfmBackend::onComplete(std::size_t dimm, const nma::OffloadCompletion &c)
{
    auto it = routes_[dimm].find(c.id);
    if (it == routes_[dimm].end())
        return;
    auto op = it->second;
    if (op->dead)
        return;

    op->sizes[dimm] = c.outputSize;
    if (op->shardDone.empty())
        op->shardDone.assign(cfg_.numDimms, 0);
    op->shardDone[dimm] = 1;
    if (++op->completions < cfg_.numDimms)
        return;
    if (!op->isCompress)
        return;  // decompress write-backs are already armed
    placeCompressWritebacks(op);
}

void
XfmBackend::placeCompressWritebacks(
    const std::shared_ptr<PendingOp> &op)
{
    // All shards compressed: size the same-offset slot by the
    // largest shard, grown only if the water-filled dictionary
    // stripes overflow the padding — then commit write-backs.
    const std::uint32_t max_size = compress::dictSlotSize(
        op->sizes, static_cast<std::uint32_t>(op->packedDict.size()));
    std::uint64_t offset = alloc_.allocate(max_size);
    if (offset == SameOffsetAllocator::invalidOffset) {
        compact();
        offset = alloc_.allocate(max_size);
    }
    if (offset == SameOffsetAllocator::invalidOffset) {
        ++stats_.rejectedSwapOuts;
        ++xfm_stats_.fallbackAlloc;
        op->dead = true;
        for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
            auto rit = routes_[d].find(op->ids[d]);
            if (rit != routes_[d].end()) {
                routes_[d].erase(rit);
                dimms_[d].driver->abort(op->ids[d]);
                // Aborted shards report no outcome: return any
                // half-open probe slot they were admitted under.
                channel_health_[d].cancelProbe(curTick());
            }
        }
        busy_.erase(op->page);
        if (tracer_ && op->traceId)
            tracer_->point(op->traceId, obs::Stage::Fallback,
                           curTick(), obs::fallbackAlloc);
        traceFailed(op->traceId);
        SwapOutcome o;
        o.page = op->page;
        o.success = false;
        o.rejected = sfm::RejectReason::SfmFull;
        o.completed = curTick();
        if (op->done)
            op->done(o);
        return;
    }
    op->offset = offset;
    // The dictionary's slot-tail stripes can land now: engine
    // write-backs touch only the first sizes[d] bytes of each slot.
    placePageDict(offset, op->sizes, op->packedDict);
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        if (!op->cpuShard.empty() && op->cpuShard[d]) {
            // The CPU-compressed shard block can land now that the
            // same-offset slot exists.
            dimms_[d].mem->write(slotAddr(offset), op->cpuBlocks[d]);
            ++op->writebacks;
            continue;
        }
        dimms_[d].driver->commitWriteback(op->ids[d],
                                          slotAddr(offset));
    }
    // Every shard was already serviced on the CPU (possible when
    // watchdog recovery redid the stragglers): nothing is left in
    // flight, so the op finishes here.
    if (op->writebacks == cfg_.numDimms)
        finishOp(op, curTick(), allOnCpu(op->cpuShard, cfg_.numDimms));
}

void
XfmBackend::onWriteback(std::size_t dimm, nma::OffloadId id, Tick t)
{
    // The channel shard delivered an offload end to end, whatever
    // became of the page-level operation.
    channel_health_[dimm].recordSuccess(t);
    auto it = routes_[dimm].find(id);
    if (it == routes_[dimm].end())
        return;
    auto op = it->second;
    routes_[dimm].erase(it);
    if (op->dead)
        return;
    if (++op->writebacks < cfg_.numDimms)
        return;
    finishOp(op, t, false);
}

void
XfmBackend::finishOp(const std::shared_ptr<PendingOp> &op, Tick now,
                     bool used_cpu)
{
    busy_.erase(op->page);

    SwapOutcome outcome;
    outcome.page = op->page;
    outcome.success = true;
    outcome.usedCpu = used_cpu;
    outcome.completed = now;
    outcome.retries = op->retries;

    if (op->isCompress) {
        // op->sizes holds the compressed shard sizes.
        for (auto s : op->sizes)
            outcome.compressedSize += s;
        // Dict accounting reads each stored block's leading byte:
        // engine-staged shards never surface their bytes here.
        if (cfg_.shardDict) {
            Bytes lead;
            for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
                dimms_[d].mem->read(slotAddr(op->offset), 1, lead);
                countDictShard(lead);
            }
        }
        PageEntry entry;
        entry.offset = op->offset;
        entry.shardSizes = op->sizes;
        entry.dictStored =
            static_cast<std::uint32_t>(op->packedDict.size());
        outcome.compressedSize += entry.dictStored;
        entries_.emplace(op->page, std::move(entry));
        ++stats_.swapOuts;
        if (used_cpu)
            ++stats_.cpuSwapOuts;
        else
            ++xfm_stats_.offloadedSwapOuts;
        stats_.bytesCompressed += pageBytes;
    } else {
        // For decompressions op->sizes holds raw output sizes;
        // report the stored compressed footprint like the CPU path.
        const auto it = entries_.find(op->page);
        XFM_ASSERT(it != entries_.end(),
                   "finishing swap-in of unknown page ", op->page);
        for (auto s : it->second.shardSizes)
            outcome.compressedSize += s;
        outcome.compressedSize += it->second.dictStored;
        alloc_.release(op->offset);
        entries_.erase(op->page);
        ++stats_.swapIns;
        if (used_cpu)
            ++stats_.cpuSwapIns;
        else
            ++xfm_stats_.offloadedSwapIns;
        stats_.bytesDecompressed += pageBytes;
    }
    if (tracer_ && op->traceId) {
        tracer_->record(op->traceId,
                        op->isCompress ? obs::Stage::SwapOut
                                       : obs::Stage::SwapIn,
                        op->traceStart, now);
        tracer_->point(op->traceId, obs::Stage::Complete, now,
                       used_cpu ? obs::outcomeCpu
                                : obs::outcomeOffloaded);
    }
    if (op->done)
        op->done(outcome);
}

void
XfmBackend::onDrop(std::size_t dimm, nma::OffloadId id,
                   nma::DropReason reason)
{
    // Any drop — deadline, injected stall, or watchdog — means this
    // channel shard failed to service an accepted offload.
    channel_health_[dimm].recordFault(curTick());
    auto it = routes_[dimm].find(id);
    if (it == routes_[dimm].end())
        return;
    auto op = it->second;
    routes_[dimm].erase(it);
    if (op->dead)
        return;
    if (reason == nma::DropReason::Watchdog) {
        // The watchdog is scoped to one queue pair: a stranded
        // command condemns only its own shard, which is redone on
        // the CPU while the page's other shards stay offloaded.
        recoverShardOnCpu(dimm, op);
        return;
    }
    ++xfm_stats_.fallbackDeadline;
    if (tracer_ && op->traceId)
        tracer_->point(op->traceId, obs::Stage::Fallback, curTick(),
                       obs::fallbackDeadline);
    failToCpu(op);
}

void
XfmBackend::recoverShardOnCpu(std::size_t dimm,
                              const std::shared_ptr<PendingOp> &op)
{
    ++xfm_stats_.watchdogShardRedos;
    if (op->cpuShard.empty())
        op->cpuShard.assign(cfg_.numDimms, 0);
    op->cpuShard[dimm] = 1;
    if (op->shardDone.empty())
        op->shardDone.assign(cfg_.numDimms, 0);
    const bool was_done = op->shardDone[dimm];
    op->shardDone[dimm] = 1;
    const VirtPage page = op->page;
    Tick latency;  // modelled; the redo itself commits synchronously

    if (op->isCompress) {
        if (op->cpuBlocks.empty())
            op->cpuBlocks.resize(cfg_.numDimms);
        dimms_[dimm].mem->read(shardFrameAddr(page), cfg_.shardBytes(),
                               shard_scratch_[dimm]);
        // Reuse the op's dictionary: the redone block must be
        // byte-identical to the one the engine would have staged.
        if (op->dict)
            compress::encodeShardRef(*codec_, *op->dict,
                                     shard_scratch_[dimm],
                                     op->cpuBlocks[dimm]);
        else
            codec_->compressInto(shard_scratch_[dimm],
                                 op->cpuBlocks[dimm]);
        op->sizes[dimm] =
            static_cast<std::uint32_t>(op->cpuBlocks[dimm].size());
        chargeCpu(cfg_.shardBytes(), true, latency);
        if (host_ctrl_) {
            host_ctrl_->submit(
                {page * pageBytes,
                 static_cast<std::uint32_t>(cfg_.shardBytes()), false,
                 nullptr});
            host_ctrl_->submit({page * pageBytes, op->sizes[dimm],
                                true, nullptr});
        }
        if (tracer_ && op->traceId)
            tracer_->record(op->traceId, obs::Stage::CpuCompute,
                            curTick(), curTick() + latency);
        if (was_done
            && op->offset != SameOffsetAllocator::invalidOffset) {
            // The write-back was stranded after placement: the codec
            // is deterministic, so the redone block matches the
            // staged one and fits the already-sized slot.
            dimms_[dimm].mem->write(slotAddr(op->offset),
                                    op->cpuBlocks[dimm]);
            if (++op->writebacks == cfg_.numDimms)
                finishOp(op, curTick(),
                         allOnCpu(op->cpuShard, cfg_.numDimms));
            return;
        }
        // Dropped before engine completion (a drop between
        // completion and placement cannot happen: a staged shard
        // without a destination is outside the watchdog's scans).
        if (!was_done && ++op->completions == cfg_.numDimms)
            placeCompressWritebacks(op);
        return;
    }

    // Decompress: redo straight into the local frame, reading the
    // compressed shard back from the same-offset slot.
    const auto eit = entries_.find(page);
    XFM_ASSERT(eit != entries_.end(),
               "watchdog recovery of swap-in for unknown page ", page);
    const std::uint32_t csize = eit->second.shardSizes[dimm];
    dimms_[dimm].mem->read(slotAddr(op->offset), csize,
                           block_scratch_[dimm]);
    if (op->dict)
        compress::decodeShard(*codec_, block_scratch_[dimm],
                              *op->dict, shard_scratch_[dimm]);
    else
        compress::decodeShard(*codec_, block_scratch_[dimm],
                              shard_scratch_[dimm]);
    XFM_ASSERT(shard_scratch_[dimm].size() == cfg_.shardBytes(),
               "shard decompressed to wrong size");
    dimms_[dimm].mem->write(shardFrameAddr(page), shard_scratch_[dimm]);
    chargeCpu(cfg_.shardBytes(), false, latency);
    if (host_ctrl_) {
        host_ctrl_->submit({page * pageBytes, csize, false, nullptr});
        host_ctrl_->submit(
            {page * pageBytes,
             static_cast<std::uint32_t>(cfg_.shardBytes()), true,
             nullptr});
    }
    if (tracer_ && op->traceId)
        tracer_->record(op->traceId, obs::Stage::CpuCompute,
                        curTick(), curTick() + latency);
    if (!was_done)
        ++op->completions;
    if (++op->writebacks == cfg_.numDimms)
        finishOp(op, curTick(), allOnCpu(op->cpuShard, cfg_.numDimms));
}

void
XfmBackend::failToCpu(const std::shared_ptr<PendingOp> &op)
{
    op->dead = true;
    for (std::size_t d = 0; d < cfg_.numDimms; ++d) {
        auto rit = routes_[d].find(op->ids[d]);
        if (rit != routes_[d].end()) {
            routes_[d].erase(rit);
            dimms_[d].driver->abort(op->ids[d]);
            // Aborted shards report no outcome: return any half-open
            // probe slot they were admitted under, so the faulting
            // channel alone carries the blame.
            channel_health_[d].cancelProbe(curTick());
        }
    }
    // A watchdog can drop a compress op after its same-offset slot
    // was already allocated (write-backs committed); release it or
    // the slot leaks — the CPU path allocates its own.
    if (op->isCompress
        && op->offset != SameOffsetAllocator::invalidOffset) {
        alloc_.release(op->offset);
        op->offset = SameOffsetAllocator::invalidOffset;
    }
    busy_.erase(op->page);
    if (op->isCompress)
        cpuSwapOut(op->page, carryRetries(op->retries, op->done),
                   op->traceId);
    else
        cpuSwapIn(op->page, carryRetries(op->retries, op->done),
                  op->traceId);
}

void
XfmBackend::quarantinePage(VirtPage page)
{
    if (!quarantined_.insert(page).second)
        return;
    quarantine_order_.push_back(page);
    if (cfg_.quarantineCap == 0)
        return;
    while (quarantined_.size() > cfg_.quarantineCap) {
        // Evict the oldest quarantined page without an operation in
        // flight: free its retired slot (the poisoned image is
        // shipped to the DFM tier for repair) and re-establish the
        // page from its still-resident local shard frames.
        auto victim = quarantine_order_.end();
        for (auto it = quarantine_order_.begin();
             it != quarantine_order_.end(); ++it) {
            if (!busy_.count(*it)) {
                victim = it;
                break;
            }
        }
        if (victim == quarantine_order_.end())
            break;  // everything in flight; retry on the next UE
        const VirtPage evicted = *victim;
        quarantine_order_.erase(victim);
        quarantined_.erase(evicted);
        auto e = entries_.find(evicted);
        if (e != entries_.end()) {
            std::uint32_t freed = 0;
            for (auto s : e->second.shardSizes)
                freed += s;
            freed += e->second.dictStored;
            alloc_.release(e->second.offset);
            entries_.erase(e);
            if (reclaim_hook_)
                reclaim_hook_(evicted, freed);
        }
        ++xfm_stats_.quarantineEvicted;
    }
}

void
XfmBackend::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".";
    r.counter(p + "swapOuts", &stats_.swapOuts);
    r.counter(p + "swapIns", &stats_.swapIns);
    r.counter(p + "offloadedSwapOuts",
              &xfm_stats_.offloadedSwapOuts);
    r.counter(p + "offloadedSwapIns", &xfm_stats_.offloadedSwapIns);
    r.counter(p + "cpuSwapOuts", &stats_.cpuSwapOuts);
    r.counter(p + "cpuSwapIns", &stats_.cpuSwapIns);
    r.counter(p + "rejectedSwapOuts", &stats_.rejectedSwapOuts,
              "SFM region full");
    r.counter(p + "fallbackCapacity", &xfm_stats_.fallbackCapacity,
              "SPM/queue exhausted");
    r.counter(p + "fallbackDeadline", &xfm_stats_.fallbackDeadline,
              "window service too late");
    r.counter(p + "fallbackAlloc", &xfm_stats_.fallbackAlloc,
              "SFM region full at placement");
    r.counter(p + "offloadRetries", &xfm_stats_.offloadRetries,
              "driver re-submissions");
    r.counter(p + "eccCorrected", &xfm_stats_.eccCorrected);
    r.counter(p + "eccQuarantines", &xfm_stats_.eccQuarantines);
    r.counter(p + "quarantine.evicted",
              &xfm_stats_.quarantineEvicted,
              "quarantined pages evicted to honour the cap");
    r.counter(p + "shardCpuFallbacks",
              &xfm_stats_.shardCpuFallbacks,
              "single shards rerouted to the CPU by channel breakers");
    r.counter(p + "watchdogShardRedos",
              &xfm_stats_.watchdogShardRedos,
              "single shards redone on the CPU after watchdog drops");
    r.counter(p + "breakerFallbacks", &xfm_stats_.breakerFallbacks,
              "whole swaps rerouted: every channel breaker open");
    r.counter(p + "dictShards", &xfm_stats_.dictShards,
              "shards stored as preset-dictionary containers");
    r.counter(p + "dictFallbacks", &xfm_stats_.dictFallbacks,
              "dict-mode shards kept as plain blocks (smaller)");
    r.counter(p + "bytesCompressed", &stats_.bytesCompressed);
    r.counter(p + "bytesDecompressed", &stats_.bytesDecompressed);
    r.counter(p + "cpuCycles", &stats_.cpuCycles);
    r.counter(p + "compactions", &stats_.compactions);
    r.derived(p + "pagesFar",
              [this] { return static_cast<double>(farPageCount()); });
    r.derived(p + "storedCompressedBytes",
              [this] {
                  return static_cast<double>(storedCompressedBytes());
              });
    r.derived(p + "fragmentationBytes",
              [this] {
                  return static_cast<double>(fragmentationBytes());
              },
              "same-offset padding across all DIMMs");
    r.derived(p + "sfmRegionBytes",
              [this] {
                  return static_cast<double>(cfg_.sfmBytes);
              },
              "per DIMM");
    r.derived(p + "quarantinedPages",
              [this] {
                  return static_cast<double>(quarantinedPageCount());
              });
    r.derived(p + "cpuFraction",
              [this] { return stats_.cpuFraction(); },
              "swaps serviced by the CPU path");
    // Refresh-realism metrics only exist when armed, keeping the
    // default snapshot namespace byte-identical.
    if (cfg_.dimmMem.rank.device.refreshRealismArmed()) {
        r.counter(p + "cpuRefreshStallTicks",
                  &xfm_stats_.cpuRefreshStallTicks,
                  "CPU-path swaps waited on refresh/RFM locks");
        refresh_->registerMetrics(r, name());
    }
    injector_.registerMetrics(r, name() + ".fault");
    for (std::size_t d = 0; d < dimms_.size(); ++d) {
        const std::string dp = p + "dimm" + std::to_string(d);
        dimms_[d].device->registerMetrics(r, dp);
        dimms_[d].driver->registerMetrics(r, dp + ".driver");
        channel_health_[d].registerMetrics(r,
                                           dp + ".health.channel");
    }
}

void
XfmBackend::setTracer(obs::Tracer *t)
{
    tracer_ = t;
    for (std::size_t d = 0; d < dimms_.size(); ++d) {
        dimms_[d].device->setTracer(t);
        dimms_[d].driver->doorbellHealth().setTracer(t);
        dimms_[d].driver->queueHealth().setTracer(t);
        channel_health_[d].setTracer(t);
    }
}

bool
XfmBackend::resizeSfmRegion(std::uint64_t new_bytes)
{
    XFM_ASSERT(cfg_.sfmBase + new_bytes
                   <= cfg_.dimmMem.totalCapacityBytes(),
               "resized SFM region beyond DIMM capacity");
    if (new_bytes < alloc_.highWaterMark()) {
        compact();
        if (new_bytes < alloc_.highWaterMark())
            return false;
    }
    if (!alloc_.resize(new_bytes))
        return false;
    cfg_.sfmBytes = new_bytes;
    // Re-run xfm_paramset and re-register the resized region so the
    // DIMM-side registers and the NMA access window see the new
    // provisioning (Sec. 6, Initialization).
    for (auto &dimm : dimms_) {
        dimm.driver->xfmParamset(cfg_.sfmBase, cfg_.sfmBytes);
        dimm.driver->xfmRegisterRegion(cfg_.sfmBase, cfg_.sfmBytes);
    }
    return true;
}

void
XfmBackend::compact()
{
    ++stats_.compactions;

    // Reverse map: slot offset -> page entry.
    std::map<std::uint64_t, VirtPage> by_offset;
    for (const auto &[page, entry] : entries_)
        by_offset.emplace(entry.offset, page);

    // Slots referenced by in-flight offloads (committed write-back
    // destinations or pending decompress sources) must not move.
    std::set<std::uint64_t> pinned;
    for (const auto &[page, op] : busy_)
        if (op->offset != SameOffsetAllocator::invalidOffset)
            pinned.insert(op->offset);

    alloc_.repack(
        [this, &by_offset](std::uint64_t old_off, std::uint64_t new_off,
                           std::uint32_t size) {
        // memcpy the slot on every DIMM (xfm_compact semantics).
        for (auto &dimm : dimms_) {
            const Bytes data = dimm.mem->read(slotAddr(old_off), size);
            dimm.mem->write(slotAddr(new_off), data);
        }
        auto it = by_offset.find(old_off);
        if (it != by_offset.end()) {
            entries_.at(it->second).offset = new_off;
            by_offset.emplace(new_off, it->second);
            by_offset.erase(it);
        }
    },
        [&pinned](std::uint64_t off) { return pinned.count(off) > 0; });
}

} // namespace xfmsys
} // namespace xfm
