/**
 * @file
 * Multi-channel mode support (paper Sec. 6, Fig. 9).
 *
 * With channel interleaving, a 4 KiB page physically lands on
 * several DIMMs as alternating 256 B chunks. Each DIMM's NMA
 * compresses only its own chunks ("reordered data"), and the
 * compressed shards are placed at the *same offset* of every
 * DIMM's SFM region so no DIMM-side address translation is needed
 * — at the price of internal fragmentation, since shard sizes
 * differ across DIMMs.
 */

#ifndef XFM_XFM_MULTICHANNEL_HH
#define XFM_XFM_MULTICHANNEL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/worker_pool.hh"
#include "compress/compressor.hh"

namespace xfm
{
namespace xfmsys
{

/** Default interleave granularity (Skylake: 256 B). */
constexpr std::size_t defaultInterleave = 256;

/**
 * Split a page into per-DIMM shards.
 *
 * Chunk i of the page (interleave-sized) goes to DIMM i % D, in
 * page order — the byte layout each DIMM physically observes.
 */
std::vector<Bytes> splitPage(ByteSpan page, std::size_t num_dimms,
                             std::size_t interleave = defaultInterleave);

/**
 * splitPage() into caller-owned shard buffers (resized to
 * num_dimms; capacities reused across calls).
 */
void splitPageInto(ByteSpan page, std::size_t num_dimms,
                   std::size_t interleave, std::vector<Bytes> &shards);

/** Inverse of splitPage(). */
Bytes gatherPage(const std::vector<Bytes> &shards,
                 std::size_t interleave = defaultInterleave);

/** gatherPage() into a caller-owned buffer (capacity reused). */
void gatherPageInto(const std::vector<Bytes> &shards,
                    std::size_t interleave, Bytes &page);

/**
 * Same-offset slot allocator over D equally-sized SFM regions.
 *
 * One allocation reserves [offset, offset + slot) in *every* DIMM
 * region. First-fit over a sorted free list; slots are aligned to
 * @c alignment so compressed shards never straddle host pages
 * unnecessarily.
 */
class SameOffsetAllocator
{
  public:
    SameOffsetAllocator(std::uint64_t region_bytes,
                        std::uint32_t alignment = 64);

    /**
     * Allocate a slot of at least @p bytes.
     * @return slot offset, or UINT64_MAX when the region is full.
     */
    std::uint64_t allocate(std::uint32_t bytes);

    /** Release a slot previously returned by allocate(). */
    void release(std::uint64_t offset);

    /**
     * Resize the region (SFM elasticity, paper G3/Sec. 4.2).
     * Growing always succeeds. Shrinking requires every live slot
     * to fit below the new size — compact (repack) first.
     *
     * @retval false the shrink would cut live slots; nothing
     *         changed.
     */
    bool resize(std::uint64_t new_region_bytes);

    /** End of the highest live slot (smallest legal shrink size). */
    std::uint64_t highWaterMark() const;

    /**
     * Compact the region: slide slots toward offset zero in order.
     * @p move is invoked as move(old_off, new_off, size) for each
     * relocated slot so the caller can copy the bytes and update
     * its records. Slots for which @p pinned returns true are left
     * in place (their bytes are referenced by in-flight offloads).
     */
    void repack(const std::function<void(std::uint64_t, std::uint64_t,
                                         std::uint32_t)> &move,
                const std::function<bool(std::uint64_t)> &pinned =
                    nullptr);

    /** Rounded size of the slot at @p offset. */
    std::uint32_t slotSize(std::uint64_t offset) const;

    std::uint64_t regionBytes() const { return region_; }
    std::uint64_t usedBytes() const { return used_; }
    std::uint64_t freeBytes() const { return region_ - used_; }
    std::size_t slotCount() const { return slots_.size(); }

    static constexpr std::uint64_t invalidOffset = ~std::uint64_t(0);

  private:
    std::uint64_t region_;
    std::uint32_t alignment_;
    std::uint64_t used_ = 0;
    /** offset -> slot size, both aligned. */
    std::map<std::uint64_t, std::uint32_t> slots_;
};

/** Result of a multi-channel compression measurement (Fig. 8). */
struct MultiChannelResult
{
    std::size_t dimms = 1;
    std::uint64_t rawBytes = 0;
    std::uint64_t compressedBytes = 0;    ///< sum of shard blocks
    std::uint64_t placedBytes = 0;        ///< with same-offset padding
    std::uint64_t dictBytes = 0;          ///< packed dicts (included
                                          ///< in compressedBytes)

    /** Pure compression ratio of the interleaved layout. */
    double
    ratio() const
    {
        return compressedBytes
            ? static_cast<double>(rawBytes) / compressedBytes
            : 0.0;
    }

    /** Ratio after same-offset placement fragmentation. */
    double
    placedRatio() const
    {
        return placedBytes
            ? static_cast<double>(rawBytes) / placedBytes
            : 0.0;
    }
};

/**
 * Compress @p pages in D-DIMM multi-channel mode and report the
 * Fig. 8 metrics. Each shard is compressed independently with
 * @p codec; placement assumes same-offset slots sized by the
 * largest shard of each page.
 *
 * @param pool optional worker pool: the per-DIMM shard
 *        compressions of each page fan out over it, with sizes
 *        accumulated in shard order so the result is identical for
 *        any worker count.
 */
MultiChannelResult
measureMultiChannel(const std::vector<Bytes> &pages,
                    const compress::Compressor &codec,
                    std::size_t num_dimms,
                    std::size_t interleave = defaultInterleave,
                    WorkerPool *pool = nullptr);

/**
 * measureMultiChannel() with preset dictionaries (DESIGN.md §16),
 * using the backend's accounting: each page samples one
 * cross-shard dictionary, shards are encoded against it when that
 * wins (dict-referencing container, 3-byte header, plain block
 * otherwise), and the packed dictionary is stored ONCE per page,
 * water-filled into the slot tails (compress::dictStripes()) so it
 * occupies same-offset padding before growing the slot.
 * Every page is decoded back and verified against the original.
 */
MultiChannelResult
measureMultiChannelDict(const std::vector<Bytes> &pages,
                        const compress::Compressor &codec,
                        std::size_t num_dimms, std::size_t dict_bytes,
                        std::size_t interleave = defaultInterleave,
                        WorkerPool *pool = nullptr);

} // namespace xfmsys
} // namespace xfm

#endif // XFM_XFM_MULTICHANNEL_HH
