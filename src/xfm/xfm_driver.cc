#include "xfm_driver.hh"

#include "common/logging.hh"

namespace xfm
{
namespace xfmsys
{

XfmDriver::XfmDriver(nma::XfmDevice &dev)
    : dev_(dev), ring_(dev.ring())
{
    if (ring_) {
        // Ring mode: completions arrive through the CQ; the device's
        // direct callbacks stay unset and the coalesced interrupt
        // triggers a reap round.
        dev_.setCqReadyCallback([this] { reapCompletions(); });
        return;
    }
    dev_.setCompletionCallback(
        [this](const nma::OffloadCompletion &c) {
        handleComplete(c);
    });
    dev_.setWritebackCallback([this](nma::OffloadId id, Tick t) {
        handleWriteback(id, t);
    });
    dev_.setDropCallback(
        [this](nma::OffloadId id, nma::DropReason reason) {
        handleDrop(id, reason);
    });
}

void
XfmDriver::handleComplete(const nma::OffloadCompletion &c)
{
    // Adjust the estimate to the real staged output size.
    auto it = tracked_.find(c.id);
    if (it != tracked_.end()) {
        bound_ += c.outputSize;
        bound_ -= it->second;
        it->second = c.outputSize;
    }
    if (on_complete_)
        on_complete_(c);
}

void
XfmDriver::handleWriteback(nma::OffloadId id, Tick t)
{
    auto it = tracked_.find(id);
    if (it != tracked_.end()) {
        bound_ -= it->second;
        tracked_.erase(it);
    }
    if (on_writeback_)
        on_writeback_(id, t);
}

void
XfmDriver::handleDrop(nma::OffloadId id, nma::DropReason reason)
{
    auto it = tracked_.find(id);
    if (it != tracked_.end()) {
        bound_ -= it->second;
        tracked_.erase(it);
    }
    if (on_drop_)
        on_drop_(id, reason);
}

void
XfmDriver::xfmParamset(std::uint64_t sfm_base, std::uint64_t sfm_bytes)
{
    dev_.regs().write(nma::Reg::SfmRegionBase, sfm_base);
    dev_.regs().write(nma::Reg::SfmRegionSize, sfm_bytes);
}

void
XfmDriver::xfmRegisterRegion(std::uint64_t base, std::uint64_t bytes)
{
    dev_.registerRegion(base, bytes);
}

bool
XfmDriver::canAccept(std::uint32_t worst_case)
{
    const std::uint64_t capacity = dev_.spm().capacityBytes();
    if (!always_sync_ && bound_ + worst_case <= capacity)
        return true;
    // 100% occupancy inferred: synchronise with the hardware via an
    // MMIO read of SP_Capacity_Register (paper Sec. 6).
    ++stats_.capacityRegisterReads;
    const std::uint64_t free = dev_.regs().read(nma::Reg::SpCapacity);
    if (free < worst_case)
        return false;  // truly no room: CPU_Fallback
    bound_ = capacity - free;
    return true;
}

nma::OffloadId
XfmDriver::submitTracked(const nma::OffloadRequest &req,
                         std::uint32_t worst_case)
{
    last_submit_retries_ = 0;
    if (ring_) {
        // Async path: write the descriptor into a free SQ slot and
        // arm one batched doorbell write. Losses are handled at the
        // flush, not per submission.
        const Tick now = dev_.curTick();
        if (!queue_health_.admit(now)) {
            ++stats_.breakerFallbacks;
            ++stats_.fallbacks;
            return nma::invalidOffloadId;
        }
        const nma::OffloadId id = dev_.ringSubmit(req);
        if (id == nma::invalidOffloadId) {
            // Full SQ or a device-side breaker: deterministic
            // same-tick condition, not a queue-pair outcome.
            queue_health_.cancelProbe(now);
            ++stats_.fallbacks;
            return id;
        }
        ++stats_.offloadsSubmitted;
        bound_ += worst_case;
        tracked_.emplace(id, worst_case);
        scheduleDoorbellFlush();
        return id;
    }
    // Circuit breaker: a Failed doorbell is not rung at all — the
    // whole retry ladder is skipped and the caller falls straight
    // back to the CPU path.
    if (!doorbell_health_.admit(dev_.curTick())) {
        ++stats_.breakerFallbacks;
        ++stats_.fallbacks;
        return nma::invalidOffloadId;
    }
    for (std::uint32_t attempt = 1;; ++attempt) {
        // Doorbell-loss fault: the MMIO write never reaches the
        // device, so the descriptor silently vanishes. This is the
        // transient class of failure that retry-with-backoff is
        // for; persistent exhaustion (queue full) is not retried.
        if (injector_
            && injector_->shouldInject(
                   fault::FaultSite::MmioDoorbellLoss)) {
            ++stats_.doorbellLosses;
            doorbell_health_.recordFault(dev_.curTick());
            if (doorbell_health_.rawState()
                == health::HealthState::Failed) {
                // The loss tripped (or re-tripped) the breaker:
                // abandon the remaining retry budget immediately.
                ++stats_.breakerFallbacks;
                ++stats_.fallbacks;
                return nma::invalidOffloadId;
            }
            if (attempt >= retry_.maxAttempts) {
                ++stats_.fallbacks;
                return nma::invalidOffloadId;
            }
            ++stats_.retries;
            ++last_submit_retries_;
            stats_.backoffTicksAccrued +=
                retry_.backoffFor(attempt - 1);
            continue;
        }
        const nma::OffloadId id = dev_.submit(req);
        if (id == nma::invalidOffloadId) {
            // Device-side exhaustion (queue full, device breaker):
            // the doorbell write itself worked, so this is not a
            // doorbell outcome — return any probe slot unused.
            doorbell_health_.cancelProbe(dev_.curTick());
            ++stats_.fallbacks;
            return id;
        }
        doorbell_health_.recordSuccess(dev_.curTick());
        ++stats_.offloadsSubmitted;
        bound_ += worst_case;
        tracked_.emplace(id, worst_case);
        return id;
    }
}

void
XfmDriver::scheduleDoorbellFlush()
{
    if (doorbell_scheduled_)
        return;
    doorbell_scheduled_ = true;
    doorbell_attempts_ = 0;
    // Same-tick event: every submission of this tick (the tREFI
    // batch) is covered by one SQ tail doorbell MMIO write.
    dev_.eventq().scheduleIn(0, [this] { flushDoorbell(); },
                             EventQueue::defaultPriority,
                             dev_.eventDomain());
}

void
XfmDriver::flushDoorbell()
{
    doorbell_scheduled_ = false;
    auto &sq = ring_->sq();
    const std::uint32_t covers = sq.stagedCount();
    if (covers == 0)
        return;  // everything staged was aborted in the meantime
    if (injector_
        && injector_->shouldInject(fault::FaultSite::MmioDoorbellLoss)) {
        // The tail doorbell write never reached the device: the
        // whole staged batch stays invisible.
        ++stats_.doorbellLosses;
        ++doorbell_attempts_;
        queue_health_.recordFault(dev_.curTick());
        if (queue_health_.rawState() == health::HealthState::Failed) {
            // Breaker tripped: abandon the retry budget; the device
            // watchdog will withdraw the stranded descriptors.
            ++stats_.breakerFallbacks;
            return;
        }
        if (doorbell_attempts_ >= retry_.maxAttempts)
            return;  // stranded until the watchdog intervenes
        ++stats_.retries;
        ++last_submit_retries_;
        doorbell_scheduled_ = true;
        dev_.eventq().scheduleIn(
            retry_.backoffFor(doorbell_attempts_ - 1),
            [this] { flushDoorbell(); },
            EventQueue::defaultPriority, dev_.eventDomain());
        return;
    }
    dev_.regs().write(nma::Reg::SqTailDoorbell, sq.tailIndex());
    for (std::uint32_t i = 0; i < covers; ++i)
        queue_health_.recordSuccess(dev_.curTick());
}

void
XfmDriver::reapCompletions()
{
    if (reaping_)
        return;
    reaping_ = true;
    auto &cq = ring_->cq();
    if (cq.pending() == 0) {
        reaping_ = false;
        return;
    }
    // The reap-site injection models a phase-bit misread: the
    // driver sees no valid entries this round and leaves every
    // record for the next interrupt or window flush.
    if (injector_
        && injector_->shouldInject(fault::FaultSite::MmioDoorbellLoss)) {
        ++ring_->stats().phaseCorruptions;
        queue_health_.recordFault(dev_.curTick());
        reaping_ = false;
        return;
    }
    ++ring_->stats().reapBatches;
    obs::Tracer *tracer = dev_.tracer();
    nma::CompletionRecord rec;
    while (cq.reap(rec)) {
        if (!ring_->sq().validTag(rec.tag)) {
            // The command was aborted after this record was posted
            // and its slot retired: the generation tag is stale.
            ++ring_->stats().staleRejected;
            continue;
        }
        if (tracer && rec.traceId)
            tracer->record(rec.traceId, obs::Stage::CqReap, rec.tick,
                           dev_.curTick());
        switch (rec.type) {
          case nma::CompletionType::Complete:
            handleComplete(
                {rec.tag, rec.kind, rec.outputSize, rec.tick});
            break;
          case nma::CompletionType::Writeback:
            ring_->sq().retire(rec.tag);
            handleWriteback(rec.tag, rec.tick);
            break;
          case nma::CompletionType::Drop:
            ring_->sq().retire(rec.tag);
            handleDrop(rec.tag, rec.reason);
            break;
        }
    }
    // One MMIO write acknowledges the whole reaped batch.
    dev_.regs().write(nma::Reg::CqHeadDoorbell, cq.headIndex());
    reaping_ = false;
}

nma::OffloadId
XfmDriver::xfmCompress(std::uint64_t src, std::uint32_t size,
                       Tick deadline, std::uint32_t partition,
                       std::uint64_t trace_id,
                       std::shared_ptr<const Bytes> dict)
{
    const std::uint32_t worst =
        nma::CompressionEngine::worstCaseCompressedSize(size);
    if (!canAccept(worst)) {
        ++stats_.fallbacks;
        return nma::invalidOffloadId;
    }
    nma::OffloadRequest req;
    req.kind = nma::OffloadKind::Compress;
    req.srcAddr = src;
    req.size = size;
    req.deadline = deadline;
    req.partition = partition;
    req.traceId = trace_id;
    req.dict = std::move(dict);
    return submitTracked(req, worst);
}

nma::OffloadId
XfmDriver::xfmDecompress(std::uint64_t src, std::uint32_t size,
                         std::uint64_t dst, std::uint32_t raw_size,
                         Tick deadline, std::uint32_t partition,
                         std::uint64_t trace_id,
                         std::shared_ptr<const Bytes> dict)
{
    // The staged footprint of a decompression averages near its
    // compressed size: the 4 KiB output exists in the SPM only
    // between engine completion and the (already-armed) write-back.
    if (!canAccept(size)) {
        ++stats_.fallbacks;
        return nma::invalidOffloadId;
    }
    nma::OffloadRequest req;
    req.kind = nma::OffloadKind::Decompress;
    req.srcAddr = src;
    req.size = size;
    req.dstAddr = dst;
    req.rawSize = raw_size;
    req.deadline = deadline;
    req.partition = partition;
    req.traceId = trace_id;
    req.dict = std::move(dict);
    return submitTracked(req, size);
}

void
XfmDriver::commitWriteback(nma::OffloadId id, std::uint64_t dst)
{
    dev_.commitWriteback(id, dst);
}

void
XfmDriver::registerMetrics(obs::MetricRegistry &r,
                           const std::string &prefix)
{
    const std::string p = prefix + ".";
    r.counter(p + "offloadsSubmitted", &stats_.offloadsSubmitted);
    r.counter(p + "capacityRegisterReads",
              &stats_.capacityRegisterReads,
              "lazy-sync MMIO reads");
    r.counter(p + "fallbacks", &stats_.fallbacks,
              "resources exhausted");
    r.counter(p + "doorbellLosses", &stats_.doorbellLosses,
              "injected lost submissions");
    r.counter(p + "retries", &stats_.retries);
    r.counter(p + "backoffTicksAccrued",
              &stats_.backoffTicksAccrued,
              "modelled driver spin time");
    r.counter(p + "breakerFallbacks", &stats_.breakerFallbacks,
              "submissions refused by the open doorbell breaker");
    r.derived(p + "occupancyBound",
              [this] { return static_cast<double>(bound_); },
              "local SPM usage upper bound");
    doorbell_health_.registerMetrics(r, p + "health.doorbell");
    if (ring_)
        queue_health_.registerMetrics(r, p + "health.queue");
}

void
XfmDriver::abort(nma::OffloadId id)
{
    auto it = tracked_.find(id);
    if (it != tracked_.end()) {
        bound_ -= it->second;
        tracked_.erase(it);
    }
    dev_.abort(id);
}

} // namespace xfmsys
} // namespace xfm
