/**
 * @file
 * XFM_Driver: the kernel-driver layer between the XFM backend and
 * one XFM DIMM (paper Sec. 6).
 *
 * Exposes ioctl-style primitives (xfmParamset, xfmCompress,
 * xfmDecompress) that translate to MMIO register accesses, and
 * implements the *lazy occupancy accounting*: the driver tracks an
 * upper bound on SPM usage locally and only issues an MMIO read of
 * SP_Capacity_Register when the bound says the SPM is full. Tests
 * assert the resulting MMIO read count stays low.
 */

#ifndef XFM_XFM_XFM_DRIVER_HH
#define XFM_XFM_XFM_DRIVER_HH

#include <cstdint>
#include <unordered_map>

#include "fault/fault.hh"
#include "health/health.hh"
#include "nma/xfm_device.hh"

namespace xfm
{
namespace xfmsys
{

/** Driver-level statistics. */
struct DriverStats
{
    std::uint64_t offloadsSubmitted = 0;
    std::uint64_t capacityRegisterReads = 0;  ///< lazy-sync MMIO reads
    std::uint64_t fallbacks = 0;              ///< resources exhausted
    std::uint64_t doorbellLosses = 0;  ///< injected lost submissions
    std::uint64_t retries = 0;         ///< re-submissions attempted
    /** Submissions refused because the doorbell breaker was open
     *  (the retry ladder is skipped entirely). */
    std::uint64_t breakerFallbacks = 0;
    /** Modelled driver spin time: the sum of exponential backoffs
     *  taken before re-submissions (the ioctl path is synchronous,
     *  so the wait is accounted here rather than simulated). */
    Tick backoffTicksAccrued = 0;
};

/**
 * Driver bound to one XfmDevice.
 *
 * The completion/writeback/drop callbacks of the device are owned
 * by the driver, which re-exposes them; a backend must register its
 * handlers here, not on the device.
 */
class XfmDriver
{
  public:
    explicit XfmDriver(nma::XfmDevice &dev);

    /** Configure the DIMM's SFM region (ioctl -> MMIO writes). */
    void xfmParamset(std::uint64_t sfm_base, std::uint64_t sfm_bytes);

    /** Register an NMA-accessible region (page registration). */
    void xfmRegisterRegion(std::uint64_t base, std::uint64_t bytes);

    /**
     * True if the lazy bound says the SPM can host another offload
     * of worst-case size @p worst_case. May sync via one MMIO read
     * when the local bound is pessimistic.
     */
    bool canAccept(std::uint32_t worst_case);

    /**
     * Submit a compression offload.
     * @param partition SPM QoS partition to charge (0 = uncapped).
     * @param trace_id  obs::Tracer request id (0 = untraced).
     * @param dict      preset dictionary handed to the engine
     *                  (DESIGN.md §16); null disables dict mode.
     * @return offload id or nma::invalidOffloadId (CPU fallback).
     */
    nma::OffloadId xfmCompress(std::uint64_t src, std::uint32_t size,
                               Tick deadline,
                               std::uint32_t partition = 0,
                               std::uint64_t trace_id = 0,
                               std::shared_ptr<const Bytes> dict =
                                   nullptr);

    /**
     * Submit a decompression offload (destination known).
     *
     * @param dict preset dictionary staged with the descriptor for
     *             pages stored with 0xD2 shard blocks (DESIGN.md
     *             §16); null for plain pages.
     */
    nma::OffloadId xfmDecompress(std::uint64_t src, std::uint32_t size,
                                 std::uint64_t dst,
                                 std::uint32_t raw_size, Tick deadline,
                                 std::uint32_t partition = 0,
                                 std::uint64_t trace_id = 0,
                                 std::shared_ptr<const Bytes> dict =
                                     nullptr);

    /** Commit the write-back target of a completed compression. */
    void commitWriteback(nma::OffloadId id, std::uint64_t dst);

    /** Abandon an offload (releases local accounting too). */
    void abort(nma::OffloadId id);

    void
    onComplete(nma::CompletionCallback cb)
    {
        on_complete_ = std::move(cb);
    }
    void
    onWriteback(nma::WritebackCallback cb)
    {
        on_writeback_ = std::move(cb);
    }
    void
    onDrop(nma::DropCallback cb)
    {
        on_drop_ = std::move(cb);
    }

    const DriverStats &stats() const { return stats_; }
    nma::XfmDevice &device() { return dev_; }

    /** Register the driver's counters under `<prefix>.*`. */
    void registerMetrics(obs::MetricRegistry &r,
                         const std::string &prefix);

    /** Current local upper bound on SPM bytes in use. */
    std::uint64_t occupancyBound() const { return bound_; }

    /**
     * Disable the lazy bound: read SP_Capacity_Register on every
     * admission decision (ablation baseline; real drivers pay one
     * MMIO round trip per offload in this mode).
     */
    void setAlwaysSync(bool enable) { always_sync_ = enable; }

    /**
     * Attach a fault injector (may be null to detach). Each
     * doorbell write (submission) then evaluates MmioDoorbellLoss;
     * a lost doorbell is retried under the retry policy before the
     * driver gives up and reports CPU fallback.
     */
    void setFaultInjector(fault::FaultInjector *inj)
    {
        injector_ = inj;
    }

    /**
     * Bounded retry-with-exponential-backoff for transient
     * submission faults (lost doorbells). Deterministic same-tick
     * conditions — SPM exhaustion, queue full — are not retried:
     * nothing can change before the driver re-reads the registers,
     * so they fall back to the CPU immediately, exactly as the
     * paper's CPU_Fallback does.
     */
    void setRetryPolicy(const fault::RetryPolicy &p) { retry_ = p; }
    const fault::RetryPolicy &retryPolicy() const { return retry_; }

    /** Retries consumed by the most recent submission call. */
    std::uint32_t lastSubmitRetries() const
    {
        return last_submit_retries_;
    }

    /**
     * Arm the MMIO-doorbell health monitor (circuit breaker). While
     * it is Failed, submissions return invalidOffloadId immediately
     * instead of walking the retry ladder; after the cooldown a
     * bounded number of half-open probe submissions decide whether
     * the doorbell re-closes.
     */
    void configureHealth(const health::HealthConfig &cfg)
    {
        doorbell_health_ = health::HealthMonitor(cfg);
        queue_health_ = health::HealthMonitor(cfg);
    }
    health::HealthMonitor &doorbellHealth()
    {
        return doorbell_health_;
    }
    /** Ring-mode breaker scoped to this DIMM's queue pair. */
    health::HealthMonitor &queueHealth() { return queue_health_; }

    /**
     * True when a submission can be written into the SQ right now
     * (always true in legacy mode: the request-queue bound is the
     * device's to enforce). The backend pre-checks this across all
     * shards so a full SQ on one DIMM falls the whole page back to
     * the CPU instead of rolling back a partial submit.
     */
    bool
    ringHasSlot() const
    {
        return ring_ == nullptr || !ring_->sq().full();
    }

    /**
     * Reap every valid completion record from the CQ and dispatch
     * it in post order, then acknowledge the batch with one CQ head
     * doorbell write. Invoked by the device's coalesced completion
     * interrupt; public so tests can force a reap point.
     */
    void reapCompletions();

  private:
    nma::OffloadId submitTracked(const nma::OffloadRequest &req,
                                 std::uint32_t worst_case);
    /** Shared tails of the device callbacks (legacy) and the
     *  ring-mode reap dispatch. */
    void handleComplete(const nma::OffloadCompletion &c);
    void handleWriteback(nma::OffloadId id, Tick t);
    void handleDrop(nma::OffloadId id, nma::DropReason reason);
    /** Arm one SQ tail doorbell write for the current batch. */
    void scheduleDoorbellFlush();
    void flushDoorbell();

    nma::XfmDevice &dev_;
    /** The device's queue pair in ring mode (null otherwise). */
    nma::CommandRing *ring_ = nullptr;
    fault::FaultInjector *injector_ = nullptr;
    fault::RetryPolicy retry_{};
    health::HealthMonitor doorbell_health_{};
    health::HealthMonitor queue_health_{};
    std::uint32_t last_submit_retries_ = 0;
    bool always_sync_ = false;
    /** A doorbell-flush event is pending (one per batch). */
    bool doorbell_scheduled_ = false;
    /** Lost-doorbell retries consumed by the pending flush. */
    std::uint32_t doorbell_attempts_ = 0;
    /** Re-entrant reap guard. */
    bool reaping_ = false;
    std::uint64_t bound_ = 0;  ///< local SPM usage upper bound
    /** Per-offload bytes counted in the bound. */
    std::unordered_map<nma::OffloadId, std::uint32_t> tracked_;

    nma::CompletionCallback on_complete_;
    nma::WritebackCallback on_writeback_;
    nma::DropCallback on_drop_;

    DriverStats stats_;
};

} // namespace xfmsys
} // namespace xfm

#endif // XFM_XFM_XFM_DRIVER_HH
