/**
 * @file
 * Deflate-class codec: LZ77 (32 KiB window) plus canonical Huffman
 * coding of literals/lengths and distances, with an RFC1951-style
 * run-length encoding of the code-length tables.
 *
 * The container format is self-describing but intentionally not
 * bit-compatible with zlib; the SFM stack only requires that
 * compress/decompress round-trip and that ratios behave like
 * deflate's.
 */

#ifndef XFM_COMPRESS_DEFLATE_HH
#define XFM_COMPRESS_DEFLATE_HH

#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** Deflate-class block compressor. */
class DeflateCodec : public Compressor
{
  public:
    /**
     * @param window_bytes LZ77 window; defaults to deflate's 32 KiB.
     *        Fig. 8's interleave experiments shrink this.
     */
    explicit DeflateCodec(std::size_t window_bytes = 32 * 1024);

    Algorithm algorithm() const override { return Algorithm::Deflate; }
    void compressInto(ByteSpan input, Bytes &out) const override;
    void decompressInto(ByteSpan block, Bytes &out) const override;
    void compressWithDictInto(ByteSpan dict, ByteSpan input,
                              Bytes &out) const override;
    void decompressWithDictInto(ByteSpan dict, ByteSpan block,
                                Bytes &out) const override;
    std::size_t windowBytes() const override { return window_bytes_; }

  private:
    void compressBody(ByteSpan full, std::size_t start,
                      Bytes &out) const;
    void decompressBody(ByteSpan block, ByteSpan dict,
                        Bytes &out) const;

    std::size_t window_bytes_;
};

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_DEFLATE_HH
