#include "lz77.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace xfm
{
namespace compress
{

namespace
{

constexpr std::size_t hashBits = 15;
constexpr std::size_t hashSize = std::size_t(1) << hashBits;

inline std::uint32_t
hash3(const std::uint8_t *p)
{
    // Multiplicative hash of 3 bytes.
    std::uint32_t v = static_cast<std::uint32_t>(p[0])
        | (static_cast<std::uint32_t>(p[1]) << 8)
        | (static_cast<std::uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> (32 - hashBits);
}

/** Length of the common prefix of a and b, up to limit. */
inline std::uint32_t
matchLength(const std::uint8_t *a, const std::uint8_t *b,
            std::uint32_t limit)
{
    std::uint32_t n = 0;
    while (n < limit && a[n] == b[n])
        ++n;
    return n;
}

struct Finder
{
    ByteSpan in;
    const Lz77Params &p;
    std::vector<std::int64_t> head;
    std::vector<std::int64_t> prev;

    Finder(ByteSpan input, const Lz77Params &params)
        : in(input), p(params), head(hashSize, -1), prev(input.size(), -1)
    {}

    void
    insert(std::size_t pos)
    {
        if (pos + 3 > in.size())
            return;
        const std::uint32_t h = hash3(in.data() + pos);
        prev[pos] = head[h];
        head[h] = static_cast<std::int64_t>(pos);
    }

    /** Best match at pos; returns length 0 when none qualifies. */
    std::pair<std::uint32_t, std::uint32_t>
    bestMatch(std::size_t pos) const
    {
        if (pos + p.minMatch > in.size())
            return {0, 0};
        const auto limit = static_cast<std::uint32_t>(
            std::min<std::size_t>(p.maxMatch, in.size() - pos));
        const std::size_t window_start =
            pos > p.windowBytes ? pos - p.windowBytes : 0;

        std::uint32_t best_len = 0;
        std::uint32_t best_dist = 0;
        std::int64_t cand = head[hash3(in.data() + pos)];
        unsigned chain = p.maxChainLength;
        while (cand >= 0 && chain-- > 0) {
            const auto cpos = static_cast<std::size_t>(cand);
            if (cpos < window_start)
                break;
            if (cpos >= pos) {
                cand = prev[cpos];
                continue;
            }
            // Quick reject on the byte past the current best.
            if (best_len == 0 ||
                in[cpos + best_len] == in[pos + best_len]) {
                const std::uint32_t len = matchLength(
                    in.data() + cpos, in.data() + pos, limit);
                if (len > best_len) {
                    best_len = len;
                    best_dist = static_cast<std::uint32_t>(pos - cpos);
                    if (best_len >= limit)
                        break;
                }
            }
            cand = prev[cpos];
        }
        if (best_len < p.minMatch)
            return {0, 0};
        return {best_len, best_dist};
    }
};

} // namespace

std::vector<Lz77Token>
lz77Tokenize(ByteSpan input, const Lz77Params &params)
{
    return lz77TokenizeSuffix(input, params, 0);
}

std::vector<Lz77Token>
lz77TokenizeSuffix(ByteSpan input, const Lz77Params &params,
                   std::size_t start)
{
    XFM_ASSERT(params.minMatch >= 3, "minMatch must be >= 3");
    XFM_ASSERT(params.windowBytes > 0, "window must be non-empty");
    XFM_ASSERT(start <= input.size(), "suffix start out of range");

    std::vector<Lz77Token> tokens;
    tokens.reserve((input.size() - start) / 3);
    if (input.size() == start)
        return tokens;

    Finder f(input, params);
    // Index the shared history without emitting tokens for it.
    for (std::size_t i = 0; i < start; ++i)
        f.insert(i);
    std::size_t pos = start;
    while (pos < input.size()) {
        auto [len, dist] = f.bestMatch(pos);

        // Lazy matching: if the next position has a strictly longer
        // match, emit a literal instead and take the later match.
        if (params.lazyMatching && len > 0 && pos + 1 < input.size()) {
            f.insert(pos);
            auto [nlen, ndist] = f.bestMatch(pos + 1);
            (void)ndist;
            if (nlen > len + 1) {
                tokens.push_back({false, input[pos], 0, 0});
                ++pos;
                continue;
            }
            if (len > 0) {
                tokens.push_back({true, 0, len, dist});
                // pos itself was inserted above; insert interior.
                for (std::size_t i = pos + 1; i < pos + len; ++i)
                    f.insert(i);
                pos += len;
                continue;
            }
        }

        if (len > 0) {
            tokens.push_back({true, 0, len, dist});
            for (std::size_t i = pos; i < pos + len; ++i)
                f.insert(i);
            pos += len;
        } else {
            tokens.push_back({false, input[pos], 0, 0});
            f.insert(pos);
            ++pos;
        }
    }
    return tokens;
}

Bytes
lz77Reconstruct(const std::vector<Lz77Token> &tokens)
{
    Bytes out;
    for (const auto &t : tokens) {
        if (!t.isMatch) {
            out.push_back(t.literal);
            continue;
        }
        if (t.distance == 0 || t.distance > out.size())
            fatal("lz77 reconstruct: bad distance ", t.distance,
                  " at output size ", out.size());
        std::size_t src = out.size() - t.distance;
        for (std::uint32_t i = 0; i < t.length; ++i)
            out.push_back(out[src + i]);
    }
    return out;
}

} // namespace compress
} // namespace xfm
