#include "lz77.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.hh"
#include "compress/hotpaths.hh"

namespace xfm
{
namespace compress
{

namespace
{

constexpr std::size_t hashBits = 15;
constexpr std::size_t hashSize = std::size_t(1) << hashBits;

inline std::uint32_t
hash3(const std::uint8_t *p)
{
    // Multiplicative hash of 3 bytes.
    std::uint32_t v = static_cast<std::uint32_t>(p[0])
        | (static_cast<std::uint32_t>(p[1]) << 8)
        | (static_cast<std::uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> (32 - hashBits);
}

/**
 * Pooled per-thread finder tables: head/prev are leased across
 * Finder constructions instead of reallocated (and memset to -1)
 * per page. A generation stamp on each head bucket makes stale
 * entries from earlier pages read as empty without any clearing,
 * and `prev` needs no initialisation at all because every chain
 * walk only visits positions insert() already wrote this
 * generation — so steady-state tokenisation allocates nothing.
 */
struct FinderTables
{
    std::vector<std::uint32_t> headPos; ///< hashSize buckets
    std::vector<std::uint32_t> headGen; ///< bucket valid iff == gen
    std::vector<std::int32_t> prev;     ///< chain links per position
    std::uint32_t gen = 0;
    std::uint64_t allocs = 0;
    std::uint64_t reuses = 0;
};

FinderTables &
finderTables()
{
    thread_local FinderTables tables;
    return tables;
}

/** Byte-at-a-time prefix scan: the reference the SWAR path must match. */
inline std::uint32_t
matchLengthScalar(const std::uint8_t *a, const std::uint8_t *b,
                  std::uint32_t limit)
{
    std::uint32_t n = 0;
    while (n < limit && a[n] == b[n])
        ++n;
    return n;
}

/**
 * SWAR prefix scan: compare 8 bytes per step via unaligned 64-bit
 * loads; the first differing byte index falls out of countr_zero on
 * the XOR. Both pointers are readable through a + limit - 1 and
 * b + limit - 1 (the caller clamps limit to the input end and a
 * precedes b), so the 8-byte loads never overread the input.
 */
inline std::uint32_t
matchLengthSwar64(const std::uint8_t *a, const std::uint8_t *b,
                  std::uint32_t limit)
{
    if constexpr (std::endian::native != std::endian::little)
        return matchLengthScalar(a, b, limit);
    std::uint32_t n = 0;
    while (n + 8 <= limit) {
        std::uint64_t x;
        std::uint64_t y;
        std::memcpy(&x, a + n, 8);
        std::memcpy(&y, b + n, 8);
        const std::uint64_t diff = x ^ y;
        if (diff != 0)
            return n
                + (static_cast<std::uint32_t>(std::countr_zero(diff))
                   >> 3);
        n += 8;
    }
    while (n < limit && a[n] == b[n])
        ++n;
    return n;
}

inline std::uint32_t
matchLength(const std::uint8_t *a, const std::uint8_t *b,
            std::uint32_t limit)
{
    return hotpaths::swarMatch ? matchLengthSwar64(a, b, limit)
                               : matchLengthScalar(a, b, limit);
}

/** Unaligned little-endian 32-bit load for the chain prefilter. */
inline std::uint32_t
load32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

struct Finder
{
    ByteSpan in;
    const Lz77Params &p;
    FinderTables &t;

    Finder(ByteSpan input, const Lz77Params &params)
        : in(input), p(params), t(finderTables())
    {
        XFM_ASSERT(in.size() < (std::size_t(1) << 31),
                   "lz77 input too large for pooled chain links");
        bool grew = false;
        if (t.headPos.empty()) {
            t.headPos.resize(hashSize);
            t.headGen.resize(hashSize, 0);
            grew = true;
        }
        if (t.prev.size() < in.size()) {
            t.prev.resize(in.size());
            grew = true;
        }
        grew ? ++t.allocs : ++t.reuses;
        if (++t.gen == 0) {
            // Generation wrap: stale stamps would alias gen 0.
            std::fill(t.headGen.begin(), t.headGen.end(), 0u);
            t.gen = 1;
        }
    }

    void
    insert(std::size_t pos)
    {
        if (pos + 3 > in.size())
            return;
        const std::uint32_t h = hash3(in.data() + pos);
        t.prev[pos] = t.headGen[h] == t.gen
            ? static_cast<std::int32_t>(t.headPos[h])
            : -1;
        t.headPos[h] = static_cast<std::uint32_t>(pos);
        t.headGen[h] = t.gen;
    }

    /** Best match at pos; returns length 0 when none qualifies. */
    std::pair<std::uint32_t, std::uint32_t>
    bestMatch(std::size_t pos) const
    {
        if (pos + p.minMatch > in.size())
            return {0, 0};
        const auto limit = static_cast<std::uint32_t>(
            std::min<std::size_t>(p.maxMatch, in.size() - pos));
        const std::size_t window_start =
            pos > p.windowBytes ? pos - p.windowBytes : 0;

        std::uint32_t best_len = 0;
        std::uint32_t best_dist = 0;
        const std::uint32_t h = hash3(in.data() + pos);
        std::int64_t cand =
            t.headGen[h] == t.gen ? std::int64_t(t.headPos[h]) : -1;
        unsigned chain = p.maxChainLength;
        const bool prefilter_ok = hotpaths::swarMatch && limit >= 4;
        while (cand >= 0 && chain-- > 0) {
            const auto cpos = static_cast<std::size_t>(cand);
            if (cpos < window_start)
                break;
            if (cpos >= pos) {
                cand = t.prev[cpos];
                continue;
            }
            // 4-byte candidate prefilter: once any improvement
            // needs >= 4 matching bytes (minMatch >= 4, or a best
            // of >= 3 already held), a first-dword mismatch proves
            // the candidate cannot improve — exact, so the scalar
            // path's match selection is preserved byte-for-byte.
            if (prefilter_ok && (best_len >= 3 || p.minMatch >= 4)
                && load32(in.data() + cpos) != load32(in.data() + pos)) {
                cand = t.prev[cpos];
                continue;
            }
            // Quick reject on the byte past the current best.
            if (best_len == 0 ||
                in[cpos + best_len] == in[pos + best_len]) {
                const std::uint32_t len = matchLength(
                    in.data() + cpos, in.data() + pos, limit);
                if (len > best_len) {
                    best_len = len;
                    best_dist = static_cast<std::uint32_t>(pos - cpos);
                    if (best_len >= limit)
                        break;
                }
            }
            cand = t.prev[cpos];
        }
        if (best_len < p.minMatch)
            return {0, 0};
        return {best_len, best_dist};
    }
};

} // namespace

std::uint32_t
matchLengthReference(const std::uint8_t *a, const std::uint8_t *b,
                     std::uint32_t limit)
{
    return matchLengthScalar(a, b, limit);
}

std::uint32_t
matchLengthFast(const std::uint8_t *a, const std::uint8_t *b,
                std::uint32_t limit)
{
    return matchLengthSwar64(a, b, limit);
}

std::pair<std::uint64_t, std::uint64_t>
finderTableStats()
{
    const FinderTables &t = finderTables();
    return {t.allocs, t.reuses};
}

std::vector<Lz77Token>
lz77Tokenize(ByteSpan input, const Lz77Params &params)
{
    return lz77TokenizeSuffix(input, params, 0);
}

std::vector<Lz77Token>
lz77TokenizeSuffix(ByteSpan input, const Lz77Params &params,
                   std::size_t start)
{
    XFM_ASSERT(params.minMatch >= 3, "minMatch must be >= 3");
    XFM_ASSERT(params.windowBytes > 0, "window must be non-empty");
    XFM_ASSERT(start <= input.size(), "suffix start out of range");

    std::vector<Lz77Token> tokens;
    tokens.reserve((input.size() - start) / 3);
    if (input.size() == start)
        return tokens;

    Finder f(input, params);
    // Index the shared history without emitting tokens for it.
    for (std::size_t i = 0; i < start; ++i)
        f.insert(i);
    std::size_t pos = start;
    while (pos < input.size()) {
        auto [len, dist] = f.bestMatch(pos);

        // Lazy matching: if the next position has a strictly longer
        // match, emit a literal instead and take the later match.
        if (params.lazyMatching && len > 0 && pos + 1 < input.size()) {
            f.insert(pos);
            auto [nlen, ndist] = f.bestMatch(pos + 1);
            (void)ndist;
            if (nlen > len + 1) {
                tokens.push_back({false, input[pos], 0, 0});
                ++pos;
                continue;
            }
            if (len > 0) {
                tokens.push_back({true, 0, len, dist});
                // pos itself was inserted above; insert interior.
                for (std::size_t i = pos + 1; i < pos + len; ++i)
                    f.insert(i);
                pos += len;
                continue;
            }
        }

        if (len > 0) {
            tokens.push_back({true, 0, len, dist});
            for (std::size_t i = pos; i < pos + len; ++i)
                f.insert(i);
            pos += len;
        } else {
            tokens.push_back({false, input[pos], 0, 0});
            f.insert(pos);
            ++pos;
        }
    }
    return tokens;
}

Bytes
lz77Reconstruct(const std::vector<Lz77Token> &tokens)
{
    Bytes out;
    for (const auto &t : tokens) {
        if (!t.isMatch) {
            out.push_back(t.literal);
            continue;
        }
        if (t.distance == 0 || t.distance > out.size())
            fatal("lz77 reconstruct: bad distance ", t.distance,
                  " at output size ", out.size());
        std::size_t src = out.size() - t.distance;
        for (std::uint32_t i = 0; i < t.length; ++i)
            out.push_back(out[src + i]);
    }
    return out;
}

} // namespace compress
} // namespace xfm
