/**
 * @file
 * Runtime toggles for the vectorised codec hot paths.
 *
 * Every accelerated path (SWAR match extension, hash-chain
 * candidate prefilter, batched Huffman decode) is proven
 * byte-identical to its scalar reference, so these switches change
 * host wall-clock only — never a compressed byte. They exist so
 * perf_harness can measure fast-vs-scalar honestly on the same
 * binary and so the parity tests can drive both paths.
 *
 * The flags are plain (non-atomic) globals: they default on and are
 * only ever toggled by single-threaded test/bench setup code while
 * no worker threads are running codec calls.
 */

#ifndef XFM_COMPRESS_HOTPATHS_HH
#define XFM_COMPRESS_HOTPATHS_HH

namespace xfm
{
namespace compress
{
namespace hotpaths
{

/** 64-bit SWAR match extension + 4-byte chain prefilter in lz77. */
extern bool swarMatch;

/** Pair-table multi-symbol Huffman decode in deflate/zstdlike. */
extern bool batchedHuffman;

/** RAII toggle for tests/benches; restores the old value on exit. */
class ScopedToggle
{
  public:
    ScopedToggle(bool &flag, bool value) : flag_(flag), old_(flag)
    {
        flag_ = value;
    }
    ~ScopedToggle() { flag_ = old_; }

    ScopedToggle(const ScopedToggle &) = delete;
    ScopedToggle &operator=(const ScopedToggle &) = delete;

  private:
    bool &flag_;
    bool old_;
};

} // namespace hotpaths
} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_HOTPATHS_HH
