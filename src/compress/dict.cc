#include "dict.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xfm
{
namespace compress
{

namespace
{

std::uint16_t
getU16(ByteSpan in, std::size_t off)
{
    if (off + 2 > in.size())
        fatal("dict: truncated container header");
    return static_cast<std::uint16_t>(
        in[off] | (static_cast<std::uint16_t>(in[off + 1]) << 8));
}

void
putU16(Bytes &out, std::size_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

} // namespace

bool
isDictBlock(ByteSpan block)
{
    return !block.empty() && block[0] == dictShardMagic;
}

bool
isDictRefBlock(ByteSpan block)
{
    return !block.empty() && block[0] == dictRefMagic;
}

Bytes
buildPresetDictionary(ByteSpan page, std::size_t interleave,
                      std::size_t dict_bytes)
{
    Bytes dict;
    if (page.empty() || dict_bytes == 0)
        return dict;
    XFM_ASSERT(interleave > 0, "dict: interleave must be positive");
    if (page.size() <= dict_bytes) {
        dict.assign(page.begin(), page.end());
        return dict;
    }

    // Whole interleave chunks at a stride across the page. The +1
    // bump on odd samples staggers the stride so the picks do not
    // all land on chunks owned by the same DIMM when chunks/k is a
    // multiple of the channel count.
    const std::size_t seg =
        std::min({interleave, dict_bytes, page.size()});
    const std::size_t chunks =
        std::max<std::size_t>(1, page.size() / seg);
    const std::size_t k =
        std::clamp<std::size_t>(dict_bytes / seg, 1, chunks);
    dict.reserve(seg * k);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t chunk =
            std::min(i * chunks / k + (i & 1), chunks - 1);
        const std::size_t off =
            std::min(chunk * seg, page.size() - seg);
        dict.insert(dict.end(), page.begin() + off,
                    page.begin() + off + seg);
    }
    return dict;
}

bool
encodeShard(const Compressor &codec, ByteSpan dict, ByteSpan shard,
            Bytes &out)
{
    codec.compressInto(shard, out);
    if (dict.empty())
        return false;
    XFM_ASSERT(dict.size() <= 0xFFFF,
               "dict: dictionary exceeds u16 length field");

    Bytes dict_block;
    codec.compressInto(dict, dict_block);
    if (dict_block.size() > 0xFFFF)
        return false;  // pathological: keep the plain block

    Bytes payload;
    codec.compressWithDictInto(dict, shard, payload);

    const std::size_t container =
        5 + dict_block.size() + payload.size();
    if (container >= out.size())
        return false;  // plain block wins: adaptive fallback

    out.clear();
    out.reserve(container);
    out.push_back(dictShardMagic);
    putU16(out, dict.size());
    putU16(out, dict_block.size());
    out.insert(out.end(), dict_block.begin(), dict_block.end());
    out.insert(out.end(), payload.begin(), payload.end());
    return true;
}

bool
encodeShardRef(const Compressor &codec, ByteSpan dict, ByteSpan shard,
               Bytes &out)
{
    codec.compressInto(shard, out);
    if (dict.empty())
        return false;
    XFM_ASSERT(dict.size() <= 0xFFFF,
               "dict: dictionary exceeds u16 length field");

    Bytes payload;
    codec.compressWithDictInto(dict, shard, payload);
    if (3 + payload.size() >= out.size())
        return false;  // plain block wins: adaptive fallback

    out.clear();
    out.reserve(3 + payload.size());
    out.push_back(dictRefMagic);
    putU16(out, dict.size());
    out.insert(out.end(), payload.begin(), payload.end());
    return true;
}

void
decodeShard(const Compressor &codec, ByteSpan block, ByteSpan dict,
            Bytes &out)
{
    if (isDictRefBlock(block)) {
        const std::size_t raw_dict_len = getU16(block, 1);
        if (dict.size() != raw_dict_len)
            fatal("dict: referenced dictionary mismatch (have ",
                  dict.size(), " bytes, block expects ",
                  raw_dict_len, ")");
        codec.decompressWithDictInto(dict, block.subspan(3), out);
        return;
    }
    decodeShard(codec, block, out);
}

void
decodeShard(const Compressor &codec, ByteSpan block, Bytes &out)
{
    if (isDictRefBlock(block))
        fatal("dict: 0xD2 block decoded without its dictionary");
    if (!isDictBlock(block)) {
        codec.decompressInto(block, out);
        return;
    }
    const std::size_t raw_dict_len = getU16(block, 1);
    const std::size_t stored_dict_len = getU16(block, 3);
    if (5 + stored_dict_len > block.size())
        fatal("dict: container shorter than stored dictionary");

    Bytes dict;
    codec.decompressInto(block.subspan(5, stored_dict_len), dict);
    if (dict.size() != raw_dict_len)
        fatal("dict: dictionary length mismatch (", dict.size(),
              " vs ", raw_dict_len, ")");
    codec.decompressWithDictInto(dict,
                                 block.subspan(5 + stored_dict_len),
                                 out);
}

void
packDict(const Compressor &codec, ByteSpan dict, Bytes &out)
{
    XFM_ASSERT(dict.size() <= 0xFFFF,
               "dict: dictionary exceeds u16 length field");
    out.clear();
    Bytes body;
    codec.compressInto(dict, body);
    const bool raw = body.size() >= dict.size();
    const std::size_t stored = raw ? dict.size() : body.size();
    out.reserve(4 + stored);
    putU16(out, dict.size());
    putU16(out, stored);
    if (raw)
        out.insert(out.end(), dict.begin(), dict.end());
    else
        out.insert(out.end(), body.begin(), body.end());
    XFM_ASSERT(out.size() <= packedDictBound(dict.size()),
               "dict: packed dictionary exceeds its bound");
}

Bytes
unpackDict(const Compressor &codec, ByteSpan packed)
{
    const std::size_t raw_len = getU16(packed, 0);
    const std::size_t stored_len = getU16(packed, 2);
    if (4 + stored_len > packed.size())
        fatal("dict: packed dictionary shorter than its header");
    Bytes dict;
    if (stored_len == raw_len) {
        const auto body = packed.subspan(4, stored_len);
        dict.assign(body.begin(), body.end());
    } else {
        codec.decompressInto(packed.subspan(4, stored_len), dict);
    }
    if (dict.size() != raw_len)
        fatal("dict: packed dictionary length mismatch (",
              dict.size(), " vs ", raw_len, ")");
    return dict;
}

std::uint32_t
dictSlotSize(const std::vector<std::uint32_t> &shard_sizes,
             std::uint32_t packed_len)
{
    XFM_ASSERT(!shard_sizes.empty(), "dictSlotSize: no shards");
    std::uint32_t slot =
        *std::max_element(shard_sizes.begin(), shard_sizes.end());
    std::uint64_t free = 0;
    for (const auto s : shard_sizes)
        free += slot - s;
    if (packed_len > free) {
        const std::uint64_t dimms = shard_sizes.size();
        slot += static_cast<std::uint32_t>(
            (packed_len - free + dimms - 1) / dimms);
    }
    return slot;
}

std::vector<std::uint32_t>
dictStripes(const std::vector<std::uint32_t> &shard_sizes,
            std::uint32_t packed_len)
{
    const std::uint32_t slot = dictSlotSize(shard_sizes, packed_len);
    std::vector<std::uint32_t> stripes(shard_sizes.size(), 0);
    std::uint32_t left = packed_len;
    for (std::size_t d = 0; d < shard_sizes.size() && left > 0; ++d) {
        const std::uint32_t take =
            std::min(left, slot - shard_sizes[d]);
        stripes[d] = take;
        left -= take;
    }
    XFM_ASSERT(left == 0, "dictStripes: stripes overflow the slot");
    return stripes;
}

} // namespace compress
} // namespace xfm
