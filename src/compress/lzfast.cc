#include "lzfast.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/bitstream.hh"
#include "compress/lz77.hh"

namespace xfm
{
namespace compress
{

namespace
{

constexpr std::uint8_t modeStored = 0;
constexpr std::uint8_t modeLz = 1;
constexpr std::uint32_t minMatch = 4;

void
putU32(Bytes &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
getU32(ByteSpan in, std::size_t off)
{
    if (off + 4 > in.size())
        fatal("lzfast: truncated header");
    return static_cast<std::uint32_t>(in[off])
        | (static_cast<std::uint32_t>(in[off + 1]) << 8)
        | (static_cast<std::uint32_t>(in[off + 2]) << 16)
        | (static_cast<std::uint32_t>(in[off + 3]) << 24);
}

/** Emit a length with nibble base and 255-chained extension bytes. */
void
putExtended(Bytes &out, std::uint32_t value)
{
    while (value >= 255) {
        out.push_back(255);
        value -= 255;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t
getExtended(ByteSpan in, std::size_t &pos)
{
    std::uint32_t v = 0;
    for (;;) {
        if (pos >= in.size())
            fatal("lzfast: truncated extension bytes");
        const std::uint8_t b = in[pos++];
        v += b;
        if (b != 255)
            return v;
    }
}

void
storedBlockInto(ByteSpan input, Bytes &out)
{
    out.clear();
    out.reserve(input.size() + 5);
    out.push_back(modeStored);
    putU32(out, static_cast<std::uint32_t>(input.size()));
    out.insert(out.end(), input.begin(), input.end());
}

} // namespace

LzFastCodec::LzFastCodec(std::size_t window_bytes)
    : window_bytes_(window_bytes)
{
    XFM_ASSERT(window_bytes_ >= 16 && window_bytes_ <= 65535,
               "lzfast window must fit 16-bit offsets");
}

void
LzFastCodec::compressInto(ByteSpan input, Bytes &out) const
{
    compressBody(input, 0, out);
}

void
LzFastCodec::compressWithDictInto(ByteSpan dict, ByteSpan input,
                                  Bytes &out) const
{
    if (dict.empty()) {
        compressBody(input, 0, out);
        return;
    }
    Bytes concat;
    concat.reserve(dict.size() + input.size());
    concat.insert(concat.end(), dict.begin(), dict.end());
    concat.insert(concat.end(), input.begin(), input.end());
    compressBody(concat, dict.size(), out);
}

void
LzFastCodec::decompressWithDictInto(ByteSpan dict, ByteSpan block,
                                    Bytes &out) const
{
    decompressBody(block, dict, out);
}

/**
 * Compress full[start..) with full[0..start) as shared history
 * (preset-dictionary mode): the prefix is indexed, not emitted.
 * Offsets into the dictionary still fit the 16-bit wire format
 * because window_bytes_ <= 65535 bounds every distance.
 */
void
LzFastCodec::compressBody(ByteSpan full, std::size_t start,
                          Bytes &out) const
{
    const ByteSpan input = full.subspan(start);
    if (input.empty()) {
        storedBlockInto(input, out);
        return;
    }

    Lz77Params params;
    params.windowBytes = window_bytes_;
    params.minMatch = minMatch;
    params.maxMatch = 1 << 16;     // byte-aligned lengths extend freely
    params.maxChainLength = 16;    // fast profile: shallow search
    params.lazyMatching = false;
    const auto tokens = lz77TokenizeSuffix(full, params, start);

    out.clear();
    out.reserve(maxCompressedSize(input.size()));
    out.push_back(modeLz);
    putU32(out, static_cast<std::uint32_t>(input.size()));

    std::size_t i = 0;
    while (i < tokens.size()) {
        // Collect a literal run.
        std::uint32_t lit_count = 0;
        const std::size_t lit_start = i;
        while (i < tokens.size() && !tokens[i].isMatch) {
            ++lit_count;
            ++i;
        }
        const bool have_match = i < tokens.size();
        const std::uint32_t match_len =
            have_match ? tokens[i].length : 0;

        const std::uint8_t lit_nibble =
            static_cast<std::uint8_t>(std::min(lit_count, 15u));
        const std::uint32_t match_code =
            have_match ? match_len - minMatch : 0;
        const std::uint8_t match_nibble = have_match
            ? static_cast<std::uint8_t>(std::min(match_code, 15u))
            : 0;
        out.push_back(static_cast<std::uint8_t>((lit_nibble << 4)
                                                | match_nibble));
        if (lit_count >= 15)
            putExtended(out, lit_count - 15);
        for (std::size_t k = 0; k < lit_count; ++k)
            out.push_back(tokens[lit_start + k].literal);
        if (have_match) {
            const std::uint32_t dist = tokens[i].distance;
            out.push_back(static_cast<std::uint8_t>(dist));
            out.push_back(static_cast<std::uint8_t>(dist >> 8));
            if (match_code >= 15)
                putExtended(out, match_code - 15);
            ++i;
        }
    }

    if (out.size() >= input.size() + 5)
        storedBlockInto(input, out);
}

void
LzFastCodec::decompressInto(ByteSpan block, Bytes &out) const
{
    decompressBody(block, {}, out);
}

/**
 * Decompress with @p dict seeded as match history; the seeded
 * prefix is stripped before returning.
 */
void
LzFastCodec::decompressBody(ByteSpan block, ByteSpan dict,
                            Bytes &out) const
{
    if (block.empty())
        fatal("lzfast: empty block");
    const std::uint8_t mode = block[0];
    const std::uint32_t expected = getU32(block, 1);
    if (mode == modeStored) {
        if (block.size() < 5 + std::size_t(expected))
            fatal("lzfast: stored block truncated");
        out.assign(block.begin() + 5, block.begin() + 5 + expected);
        return;
    }
    if (mode != modeLz)
        fatal("lzfast: unknown block mode ", unsigned(mode));

    const std::size_t target = dict.size() + expected;
    out.assign(dict.begin(), dict.end());
    out.reserve(target);
    std::size_t pos = 5;
    while (out.size() < target) {
        if (pos >= block.size())
            fatal("lzfast: truncated sequence");
        const std::uint8_t token = block[pos++];
        std::uint32_t lit_count = token >> 4;
        if (lit_count == 15)
            lit_count += getExtended(block, pos);
        if (pos + lit_count > block.size())
            fatal("lzfast: literal run overruns block");
        out.insert(out.end(), block.begin() + pos,
                   block.begin() + pos + lit_count);
        pos += lit_count;
        if (out.size() >= target)
            break;  // final literals-only sequence

        if (pos + 2 > block.size())
            fatal("lzfast: truncated offset");
        const std::uint32_t dist =
            static_cast<std::uint32_t>(block[pos])
            | (static_cast<std::uint32_t>(block[pos + 1]) << 8);
        pos += 2;
        std::uint32_t match_len = (token & 0x0F);
        if (match_len == 15)
            match_len += getExtended(block, pos);
        match_len += minMatch;

        if (dist == 0 || dist > out.size())
            fatal("lzfast: bad distance ", dist);
        appendMatch(out, dist, match_len);
    }
    if (out.size() != target)
        fatal("lzfast: size mismatch (", out.size() - dict.size(),
              " vs ", expected, ")");
    if (!dict.empty())
        out.erase(out.begin(),
                  out.begin() + static_cast<std::ptrdiff_t>(dict.size()));
}

} // namespace compress
} // namespace xfm
