#include "corpus.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "common/random.hh"

namespace xfm
{
namespace compress
{

namespace
{

void
append(Bytes &out, const std::string &s)
{
    out.insert(out.end(), s.begin(), s.end());
}

const std::array<const char *, 64> commonWords = {
    "the", "of", "and", "to", "in", "is", "that", "it", "was", "for",
    "on", "are", "with", "as", "his", "they", "be", "at", "one",
    "have", "this", "from", "or", "had", "by", "but", "not", "what",
    "all", "were", "we", "when", "your", "can", "said", "there",
    "use", "an", "each", "which", "she", "do", "how", "their", "if",
    "will", "up", "other", "about", "out", "many", "then", "them",
    "these", "so", "some", "her", "would", "make", "like", "him",
    "into", "time", "has"
};

Bytes
genEnglishText(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size + 64);
    std::size_t line_len = 0;
    while (out.size() < size) {
        const char *w = commonWords[rng.zipf(commonWords.size(), 0.9)];
        append(out, w);
        line_len += std::strlen(w) + 1;
        if (rng.chance(0.08)) {
            append(out, ". ");
        } else if (line_len > 68) {
            out.push_back('\n');
            line_len = 0;
        } else {
            out.push_back(' ');
        }
    }
    out.resize(size);
    return out;
}

Bytes
genHtml(Rng &rng, std::size_t size)
{
    static const std::array<const char *, 8> tags = {
        "div", "span", "p", "a", "li", "td", "h2", "section"
    };
    static const std::array<const char *, 6> classes = {
        "container", "row", "col-md-6", "btn btn-primary",
        "nav-item active", "card-body text-muted"
    };
    Bytes out;
    out.reserve(size + 128);
    append(out, "<!DOCTYPE html>\n<html><head><title>page</title>"
                "</head><body>\n");
    while (out.size() < size) {
        const char *tag = tags[rng.uniformInt(tags.size())];
        const char *cls = classes[rng.uniformInt(classes.size())];
        append(out, std::string("<") + tag + " class=\"" + cls
                    + "\" id=\"el" + std::to_string(rng.uniformInt(500))
                    + "\">");
        const char *w = commonWords[rng.zipf(commonWords.size(), 0.9)];
        append(out, w);
        append(out, std::string("</") + tag + ">\n");
    }
    out.resize(size);
    return out;
}

Bytes
genJson(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size + 256);
    append(out, "{\"results\":[\n");
    while (out.size() < size) {
        append(out, "  {\"id\": " + std::to_string(rng.uniformInt(100000))
                    + ", \"name\": \"user_"
                    + std::to_string(rng.uniformInt(5000))
                    + "\", \"active\": "
                    + (rng.chance(0.5) ? "true" : "false")
                    + ", \"score\": "
                    + std::to_string(rng.uniformInt(100))
                    + ", \"tags\": [\"alpha\", \"beta\"]},\n");
    }
    out.resize(size);
    return out;
}

Bytes
genSourceCode(Rng &rng, std::size_t size)
{
    static const std::array<const char *, 10> idents = {
        "buffer", "index", "count", "result", "status", "handler",
        "request", "response", "context", "offset"
    };
    Bytes out;
    out.reserve(size + 128);
    while (out.size() < size) {
        const char *a = idents[rng.uniformInt(idents.size())];
        const char *b = idents[rng.uniformInt(idents.size())];
        switch (rng.uniformInt(4)) {
          case 0:
            append(out, std::string("    int ") + a + " = " + b + " + "
                        + std::to_string(rng.uniformInt(16)) + ";\n");
            break;
          case 1:
            append(out, std::string("    if (") + a + " < " + b
                        + ") {\n        return " + a + ";\n    }\n");
            break;
          case 2:
            append(out, std::string("    for (int i = 0; i < ") + a
                        + "; ++i) {\n        " + b + " += i;\n    }\n");
            break;
          default:
            append(out, std::string("    ") + a + " = process(" + b
                        + ", sizeof(" + b + "));\n");
            break;
        }
    }
    out.resize(size);
    return out;
}

Bytes
genCsvTable(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size + 128);
    append(out, "timestamp,region,status,latency_ms,bytes\n");
    std::uint64_t ts = 1690000000;
    while (out.size() < size) {
        ts += rng.uniformInt(5);
        append(out, std::to_string(ts) + ",us-east-"
                    + std::to_string(1 + rng.uniformInt(2)) + ",200,"
                    + std::to_string(rng.uniformInt(250)) + ","
                    + std::to_string(rng.uniformInt(65536)) + "\n");
    }
    out.resize(size);
    return out;
}

Bytes
genLogLines(Rng &rng, std::size_t size)
{
    static const std::array<const char *, 4> levels = {
        "INFO", "WARN", "DEBUG", "ERROR"
    };
    Bytes out;
    out.reserve(size + 128);
    std::uint64_t ts = 0;
    while (out.size() < size) {
        ts += rng.uniformInt(1000);
        append(out, "[2023-07-14T12:" + std::to_string(10
                    + rng.uniformInt(49)) + ":00."
                    + std::to_string(ts % 1000) + "Z] "
                    + levels[rng.zipf(levels.size(), 1.0)]
                    + " srv-" + std::to_string(rng.uniformInt(8))
                    + " request completed path=/api/v1/items/"
                    + std::to_string(rng.uniformInt(2000))
                    + " dur=" + std::to_string(rng.uniformInt(90))
                    + "ms\n");
    }
    out.resize(size);
    return out;
}

Bytes
genKeyValue(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size + 128);
    while (out.size() < size) {
        append(out, "SET session:" + std::to_string(rng.uniformInt(9999))
                    + ":state {\"cart\":["
                    + std::to_string(rng.uniformInt(50)) + ","
                    + std::to_string(rng.uniformInt(50))
                    + "],\"ttl\":3600}\r\n");
    }
    out.resize(size);
    return out;
}

Bytes
genNumericColumns(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size + 8);
    std::uint32_t v = 1000000;
    while (out.size() < size) {
        v += static_cast<std::uint32_t>(rng.uniformInt(7));
        for (int k = 0; k < 4; ++k)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
    }
    out.resize(size);
    return out;
}

Bytes
genBase64Blob(Rng &rng, std::size_t size)
{
    static const char alphabet[] =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
        "0123456789+/";
    Bytes out;
    out.reserve(size + 80);
    std::size_t col = 0;
    while (out.size() < size) {
        out.push_back(
            static_cast<std::uint8_t>(alphabet[rng.uniformInt(64)]));
        if (++col == 76) {
            out.push_back('\n');
            col = 0;
        }
    }
    out.resize(size);
    return out;
}

Bytes
genZeroHeavy(Rng &rng, std::size_t size)
{
    Bytes out(size, 0);
    // Sparse nonzero islands, like a calloc'd heap with a few
    // initialised fields.
    std::size_t pos = 0;
    while (pos < size) {
        pos += rng.uniformRange(64, 512);
        const std::size_t run = rng.uniformRange(4, 32);
        for (std::size_t k = 0; k < run && pos + k < size; ++k)
            out[pos + k] = static_cast<std::uint8_t>(rng.next());
        pos += run;
    }
    return out;
}

Bytes
genBitmap(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size);
    const double fx = 0.002 + rng.uniformReal() * 0.004;
    const double fy = 0.05 + rng.uniformReal() * 0.05;
    const std::size_t width = 256;
    for (std::size_t i = 0; out.size() < size; ++i) {
        const double x = static_cast<double>(i % width);
        const double y = static_cast<double>(i / width);
        const double v = 127.0 + 100.0 * std::sin(x * fy)
            * std::cos(y * fx * 40.0);
        out.push_back(static_cast<std::uint8_t>(
            std::clamp(v, 0.0, 255.0)));
    }
    out.resize(size);
    return out;
}

Bytes
genAudioPcm(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size + 2);
    double phase = rng.uniformReal() * 6.28;
    const double freq = 0.02 + rng.uniformReal() * 0.04;
    double noise = 0.0;
    while (out.size() < size) {
        phase += freq;
        noise = 0.95 * noise + 0.05 * (rng.uniformReal() - 0.5);
        const double s = std::sin(phase) * 0.6 + noise;
        const auto v = static_cast<std::int16_t>(
            std::clamp(s, -1.0, 1.0) * 32000.0);
        out.push_back(static_cast<std::uint8_t>(v & 0xFF));
        out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
    }
    out.resize(size);
    return out;
}

Bytes
genProteinSeq(Rng &rng, std::size_t size)
{
    static const char acids[] = "ACDEFGHIKLMNPQRSTVWY";
    Bytes out;
    out.reserve(size + 80);
    std::size_t col = 0;
    while (out.size() < size) {
        out.push_back(static_cast<std::uint8_t>(
            acids[rng.zipf(20, 0.4)]));
        if (++col == 60) {
            out.push_back('\n');
            col = 0;
        }
    }
    out.resize(size);
    return out;
}

Bytes
genDictionary(Rng &rng, std::size_t size)
{
    static const std::array<const char *, 12> stems = {
        "account", "balance", "calibrat", "demonstrat", "establish",
        "fabricat", "generat", "illuminat", "investigat", "manufactur",
        "negotiat", "transport"
    };
    static const std::array<const char *, 8> suffixes = {
        "e", "es", "ed", "ing", "ion", "ions", "or", "ively"
    };
    Bytes out;
    out.reserve(size + 32);
    while (out.size() < size) {
        append(out, std::string(stems[rng.uniformInt(stems.size())])
                    + suffixes[rng.uniformInt(suffixes.size())] + "\n");
    }
    out.resize(size);
    return out;
}

Bytes
genHeapObjects(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size + 32);
    // 32-byte "objects": vtable ptr, next ptr, two int fields,
    // 8 bytes padding. Pointers share a common heap base.
    const std::uint64_t heap_base = 0x00007F3A00000000ull;
    while (out.size() < size) {
        const std::uint64_t vtbl = 0x0000556600401000ull
            + rng.uniformInt(8) * 0x40;
        const std::uint64_t next = heap_base
            + rng.uniformInt(1 << 20) * 32;
        std::array<std::uint64_t, 4> words = {
            vtbl, next,
            rng.uniformInt(1024) | (rng.uniformInt(4) << 32),
            0
        };
        for (auto w : words)
            for (int k = 0; k < 8; ++k)
                out.push_back(static_cast<std::uint8_t>(w >> (8 * k)));
    }
    out.resize(size);
    return out;
}

Bytes
genRandomBytes(Rng &rng, std::size_t size)
{
    Bytes out;
    out.reserve(size + 8);
    while (out.size() < size) {
        std::uint64_t v = rng.next();
        for (int k = 0; k < 8; ++k)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * k)));
    }
    out.resize(size);
    return out;
}

} // namespace

const std::vector<CorpusKind> &
allCorpusKinds()
{
    static const std::vector<CorpusKind> kinds = {
        CorpusKind::EnglishText, CorpusKind::Html, CorpusKind::Json,
        CorpusKind::SourceCode, CorpusKind::CsvTable,
        CorpusKind::LogLines, CorpusKind::KeyValue,
        CorpusKind::NumericColumns, CorpusKind::Base64Blob,
        CorpusKind::ZeroHeavy, CorpusKind::Bitmap, CorpusKind::AudioPcm,
        CorpusKind::ProteinSeq, CorpusKind::Dictionary,
        CorpusKind::HeapObjects, CorpusKind::RandomBytes,
    };
    return kinds;
}

std::string
corpusName(CorpusKind kind)
{
    switch (kind) {
      case CorpusKind::EnglishText: return "english-text";
      case CorpusKind::Html: return "html";
      case CorpusKind::Json: return "json";
      case CorpusKind::SourceCode: return "source-code";
      case CorpusKind::CsvTable: return "csv-table";
      case CorpusKind::LogLines: return "log-lines";
      case CorpusKind::KeyValue: return "key-value";
      case CorpusKind::NumericColumns: return "numeric-cols";
      case CorpusKind::Base64Blob: return "base64-blob";
      case CorpusKind::ZeroHeavy: return "zero-heavy";
      case CorpusKind::Bitmap: return "bitmap";
      case CorpusKind::AudioPcm: return "audio-pcm";
      case CorpusKind::ProteinSeq: return "protein-seq";
      case CorpusKind::Dictionary: return "dictionary";
      case CorpusKind::HeapObjects: return "heap-objects";
      case CorpusKind::RandomBytes: return "random-bytes";
    }
    panic("unknown corpus kind");
}

Bytes
generateCorpus(CorpusKind kind, std::uint64_t seed, std::size_t size)
{
    Rng rng(seed ^ (static_cast<std::uint64_t>(kind) * 0x1234567));
    switch (kind) {
      case CorpusKind::EnglishText: return genEnglishText(rng, size);
      case CorpusKind::Html: return genHtml(rng, size);
      case CorpusKind::Json: return genJson(rng, size);
      case CorpusKind::SourceCode: return genSourceCode(rng, size);
      case CorpusKind::CsvTable: return genCsvTable(rng, size);
      case CorpusKind::LogLines: return genLogLines(rng, size);
      case CorpusKind::KeyValue: return genKeyValue(rng, size);
      case CorpusKind::NumericColumns:
        return genNumericColumns(rng, size);
      case CorpusKind::Base64Blob: return genBase64Blob(rng, size);
      case CorpusKind::ZeroHeavy: return genZeroHeavy(rng, size);
      case CorpusKind::Bitmap: return genBitmap(rng, size);
      case CorpusKind::AudioPcm: return genAudioPcm(rng, size);
      case CorpusKind::ProteinSeq: return genProteinSeq(rng, size);
      case CorpusKind::Dictionary: return genDictionary(rng, size);
      case CorpusKind::HeapObjects: return genHeapObjects(rng, size);
      case CorpusKind::RandomBytes: return genRandomBytes(rng, size);
    }
    panic("unknown corpus kind");
}

std::vector<Bytes>
paginate(const Bytes &corpus, std::size_t page_bytes)
{
    XFM_ASSERT(page_bytes > 0, "page size must be positive");
    std::vector<Bytes> pages;
    pages.reserve(corpus.size() / page_bytes);
    for (std::size_t off = 0; off + page_bytes <= corpus.size();
         off += page_bytes) {
        pages.emplace_back(corpus.begin() + off,
                           corpus.begin() + off + page_bytes);
    }
    return pages;
}

} // namespace compress
} // namespace xfm
