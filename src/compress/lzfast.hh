/**
 * @file
 * LzFast: byte-aligned fast LZ codec in the lzo/lz4 class.
 *
 * Sequences of (literal run, match) are coded with a nibble token
 * and little-endian 16-bit offsets, trading compression ratio for
 * very low (de)compression cost — mirroring lzo's role in
 * production SFM deployments.
 */

#ifndef XFM_COMPRESS_LZFAST_HH
#define XFM_COMPRESS_LZFAST_HH

#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** Fast byte-aligned LZ compressor (lzo/lz4 class). */
class LzFastCodec : public Compressor
{
  public:
    /**
     * @param window_bytes back-reference reach, at most 65535
     *        (16-bit offsets).
     */
    explicit LzFastCodec(std::size_t window_bytes = 64 * 1024 - 1);

    Algorithm algorithm() const override { return Algorithm::LzFast; }
    void compressInto(ByteSpan input, Bytes &out) const override;
    void decompressInto(ByteSpan block, Bytes &out) const override;
    void compressWithDictInto(ByteSpan dict, ByteSpan input,
                              Bytes &out) const override;
    void decompressWithDictInto(ByteSpan dict, ByteSpan block,
                                Bytes &out) const override;
    std::size_t windowBytes() const override { return window_bytes_; }

  private:
    void compressBody(ByteSpan full, std::size_t start,
                      Bytes &out) const;
    void decompressBody(ByteSpan block, ByteSpan dict,
                        Bytes &out) const;

    std::size_t window_bytes_;
};

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_LZFAST_HH
