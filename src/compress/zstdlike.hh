/**
 * @file
 * ZstdLike: zstd-class codec.
 *
 * Like zstd it separates literals from sequences: literals are
 * entropy coded (canonical Huffman) in one stream while sequences
 * (literal-run length, match length, offset) are byte-aligned
 * varints with a repeat-offset shortcut. The window is larger than
 * deflate's, and the match finder searches deeper, trading speed
 * for ratio exactly the way zstd trades against lzo.
 */

#ifndef XFM_COMPRESS_ZSTDLIKE_HH
#define XFM_COMPRESS_ZSTDLIKE_HH

#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** Zstd-class block compressor. */
class ZstdLikeCodec : public Compressor
{
  public:
    /** @param window_bytes back-reference reach (default 128 KiB). */
    explicit ZstdLikeCodec(std::size_t window_bytes = 128 * 1024);

    Algorithm algorithm() const override { return Algorithm::ZstdLike; }
    void compressInto(ByteSpan input, Bytes &out) const override;
    void decompressInto(ByteSpan block, Bytes &out) const override;
    void compressWithDictInto(ByteSpan dict, ByteSpan input,
                              Bytes &out) const override;
    void decompressWithDictInto(ByteSpan dict, ByteSpan block,
                                Bytes &out) const override;
    std::size_t windowBytes() const override { return window_bytes_; }

  private:
    void compressBody(ByteSpan full, std::size_t start,
                      Bytes &out) const;
    void decompressBody(ByteSpan block, ByteSpan dict,
                        Bytes &out) const;

    std::size_t window_bytes_;
};

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_ZSTDLIKE_HH
