/**
 * @file
 * Abstract lossless compressor interface and algorithm registry.
 *
 * Three LZ-family codecs are provided, standing in for the
 * algorithms the paper deploys:
 *  - LzFast:   byte-aligned fast LZ (lzo/lz4 class),
 *  - Deflate:  LZ77 + canonical Huffman (deflate class),
 *  - ZstdLike: larger-window LZ77 with repeat offsets and
 *              Huffman-coded literals (zstd class).
 *
 * Every codec also carries a CPU cost model (cycles/byte) used by
 * the SFM cost model and the interference experiments.
 */

#ifndef XFM_COMPRESS_COMPRESSOR_HH
#define XFM_COMPRESS_COMPRESSOR_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace xfm
{

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

namespace compress
{

/** Supported compression algorithms. */
enum class Algorithm
{
    LzFast,
    Deflate,
    ZstdLike,
};

/** Human-readable algorithm name. */
std::string algorithmName(Algorithm a);

/**
 * Per-algorithm CPU cost (cycles per byte), averaged over
 * compression and decompression as in the paper's EQ3.4, which uses
 * 7.65e9 cycles/GB averaged across zstd and lzo.
 */
struct CpuCost
{
    double compressCyclesPerByte;
    double decompressCyclesPerByte;
};

CpuCost cpuCost(Algorithm a);

/**
 * A lossless block compressor.
 *
 * Implementations are pure functions of the input bytes: no state
 * is carried between calls, matching page-granular SFM usage.
 */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    /** Algorithm identifier. */
    virtual Algorithm algorithm() const = 0;

    /**
     * Compress @p input into a self-describing block.
     *
     * The output always round-trips through decompress(); if the
     * data is incompressible the output may be larger than the
     * input (a stored-block header is added).
     *
     * Thin wrapper over compressInto() that allocates a fresh
     * buffer; hot paths should hold a reusable buffer (e.g. from a
     * ScratchArena) and call compressInto() directly.
     */
    Bytes compress(ByteSpan input) const;

    /**
     * Decompress a block produced by compress(). Wrapper over
     * decompressInto(), see compress().
     *
     * @throws FatalError on a corrupt or truncated block.
     */
    Bytes decompress(ByteSpan block) const;

    /**
     * Compress @p input into @p out, which is cleared first. The
     * buffer's capacity is reused across calls, so steady-state
     * page operations allocate nothing once the buffer has grown to
     * its working size. @p out must not alias @p input.
     */
    virtual void compressInto(ByteSpan input, Bytes &out) const = 0;

    /**
     * Decompress @p block into @p out (cleared first); capacity is
     * reused as in compressInto(). @p out must not alias @p block.
     */
    virtual void decompressInto(ByteSpan block, Bytes &out) const = 0;

    /**
     * Compress @p input with @p dict preloaded as shared history:
     * matches may reach back into the dictionary as if it preceded
     * the input, but no tokens are emitted for it (the multi-channel
     * preset-dictionary mode, DESIGN.md §16). An empty @p dict is
     * exactly compressInto(). The output block only round-trips
     * through decompressWithDictInto() with the same dictionary.
     */
    virtual void compressWithDictInto(ByteSpan dict, ByteSpan input,
                                      Bytes &out) const;

    /** Inverse of compressWithDictInto() under the same @p dict. */
    virtual void decompressWithDictInto(ByteSpan dict, ByteSpan block,
                                        Bytes &out) const;

    /**
     * Conservative upper bound on the bytes a codec may emit while
     * compressing @p raw input bytes, *including* transient growth
     * before the stored-block fallback truncates oversized output.
     * Suitable as a reserve() hint that avoids reallocation during
     * emission.
     */
    static constexpr std::size_t
    maxCompressedSize(std::size_t raw)
    {
        // Huffman emission is bounded by ~9 bits/byte plus code
        // tables and the block header; LzFast literal runs add at
        // most 1 control byte per 15 literals.
        return raw + raw / 8 + 256;
    }

    /**
     * Maximum window the match finder may reference, in bytes.
     * Multi-channel mode shrinks effective windows; Fig. 8 sweeps
     * this.
     */
    virtual std::size_t windowBytes() const = 0;
};

/** Construct a compressor for the given algorithm. */
std::unique_ptr<Compressor> makeCompressor(Algorithm a);

/** Compression ratio (uncompressed / compressed); >= 0. */
inline double
ratio(std::size_t uncompressed, std::size_t compressed)
{
    return compressed == 0
        ? 0.0
        : static_cast<double>(uncompressed)
            / static_cast<double>(compressed);
}

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_COMPRESSOR_HH
