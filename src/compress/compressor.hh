/**
 * @file
 * Abstract lossless compressor interface and algorithm registry.
 *
 * Three LZ-family codecs are provided, standing in for the
 * algorithms the paper deploys:
 *  - LzFast:   byte-aligned fast LZ (lzo/lz4 class),
 *  - Deflate:  LZ77 + canonical Huffman (deflate class),
 *  - ZstdLike: larger-window LZ77 with repeat offsets and
 *              Huffman-coded literals (zstd class).
 *
 * Every codec also carries a CPU cost model (cycles/byte) used by
 * the SFM cost model and the interference experiments.
 */

#ifndef XFM_COMPRESS_COMPRESSOR_HH
#define XFM_COMPRESS_COMPRESSOR_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace xfm
{

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

namespace compress
{

/** Supported compression algorithms. */
enum class Algorithm
{
    LzFast,
    Deflate,
    ZstdLike,
};

/** Human-readable algorithm name. */
std::string algorithmName(Algorithm a);

/**
 * Per-algorithm CPU cost (cycles per byte), averaged over
 * compression and decompression as in the paper's EQ3.4, which uses
 * 7.65e9 cycles/GB averaged across zstd and lzo.
 */
struct CpuCost
{
    double compressCyclesPerByte;
    double decompressCyclesPerByte;
};

CpuCost cpuCost(Algorithm a);

/**
 * A lossless block compressor.
 *
 * Implementations are pure functions of the input bytes: no state
 * is carried between calls, matching page-granular SFM usage.
 */
class Compressor
{
  public:
    virtual ~Compressor() = default;

    /** Algorithm identifier. */
    virtual Algorithm algorithm() const = 0;

    /**
     * Compress @p input into a self-describing block.
     *
     * The output always round-trips through decompress(); if the
     * data is incompressible the output may be larger than the
     * input (a stored-block header is added).
     */
    virtual Bytes compress(ByteSpan input) const = 0;

    /**
     * Decompress a block produced by compress().
     *
     * @throws FatalError on a corrupt or truncated block.
     */
    virtual Bytes decompress(ByteSpan block) const = 0;

    /**
     * Maximum window the match finder may reference, in bytes.
     * Multi-channel mode shrinks effective windows; Fig. 8 sweeps
     * this.
     */
    virtual std::size_t windowBytes() const = 0;
};

/** Construct a compressor for the given algorithm. */
std::unique_ptr<Compressor> makeCompressor(Algorithm a);

/** Compression ratio (uncompressed / compressed); >= 0. */
inline double
ratio(std::size_t uncompressed, std::size_t compressed)
{
    return compressed == 0
        ? 0.0
        : static_cast<double>(uncompressed)
            / static_cast<double>(compressed);
}

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_COMPRESSOR_HH
