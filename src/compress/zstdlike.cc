#include "zstdlike.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/bitstream.hh"
#include "compress/hotpaths.hh"
#include "compress/huffman.hh"
#include "compress/lz77.hh"

namespace xfm
{
namespace compress
{

namespace
{

constexpr std::uint8_t modeStored = 0;
constexpr std::uint8_t modeZstd = 2;

// In the sequence stream an offset varint of 0 means "repeat the
// previous offset" (zstd's repeat-offset shortcut); otherwise the
// varint is the offset itself.

void
putU32(Bytes &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
getU32(ByteSpan in, std::size_t off)
{
    if (off + 4 > in.size())
        fatal("zstdlike: truncated header");
    return static_cast<std::uint32_t>(in[off])
        | (static_cast<std::uint32_t>(in[off + 1]) << 8)
        | (static_cast<std::uint32_t>(in[off + 2]) << 16)
        | (static_cast<std::uint32_t>(in[off + 3]) << 24);
}

void
putVarint(Bytes &out, std::uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t
getVarint(ByteSpan in, std::size_t &pos)
{
    std::uint32_t v = 0;
    unsigned shift = 0;
    for (;;) {
        if (pos >= in.size())
            fatal("zstdlike: truncated varint");
        const std::uint8_t b = in[pos++];
        v |= static_cast<std::uint32_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift >= 35)
            fatal("zstdlike: varint too long");
    }
}

void
storedBlockInto(ByteSpan input, Bytes &out)
{
    out.clear();
    out.reserve(input.size() + 5);
    out.push_back(modeStored);
    putU32(out, static_cast<std::uint32_t>(input.size()));
    out.insert(out.end(), input.begin(), input.end());
}

} // namespace

ZstdLikeCodec::ZstdLikeCodec(std::size_t window_bytes)
    : window_bytes_(window_bytes)
{
    XFM_ASSERT(window_bytes_ >= 16 && window_bytes_ <= (1u << 27),
               "zstdlike window out of range");
}

void
ZstdLikeCodec::compressInto(ByteSpan input, Bytes &out) const
{
    compressBody(input, 0, out);
}

void
ZstdLikeCodec::compressWithDictInto(ByteSpan dict, ByteSpan input,
                                    Bytes &out) const
{
    if (dict.empty()) {
        compressBody(input, 0, out);
        return;
    }
    Bytes concat;
    concat.reserve(dict.size() + input.size());
    concat.insert(concat.end(), dict.begin(), dict.end());
    concat.insert(concat.end(), input.begin(), input.end());
    compressBody(concat, dict.size(), out);
}

void
ZstdLikeCodec::decompressWithDictInto(ByteSpan dict, ByteSpan block,
                                      Bytes &out) const
{
    decompressBody(block, dict, out);
}

/**
 * Compress full[start..) with full[0..start) as shared history
 * (preset-dictionary mode): the prefix is indexed, not emitted.
 */
void
ZstdLikeCodec::compressBody(ByteSpan full, std::size_t start,
                            Bytes &out) const
{
    const ByteSpan input = full.subspan(start);
    if (input.empty()) {
        storedBlockInto(input, out);
        return;
    }

    Lz77Params params;
    params.windowBytes = window_bytes_;
    params.minMatch = 4;
    params.maxMatch = 1 << 16;
    params.maxChainLength = 128;  // deeper search: ratio profile
    params.lazyMatching = true;
    const auto tokens = lz77TokenizeSuffix(full, params, start);

    // Split literals from sequences, zstd style.
    Bytes literals;
    struct Seq
    {
        std::uint32_t litRun;
        std::uint32_t matchLen;  // 0 only for the trailing run
        std::uint32_t offset;
    };
    std::vector<Seq> seqs;
    std::uint32_t run = 0;
    for (const auto &t : tokens) {
        if (t.isMatch) {
            seqs.push_back({run, t.length, t.distance});
            run = 0;
        } else {
            literals.push_back(t.literal);
            ++run;
        }
    }
    if (run > 0)
        seqs.push_back({run, 0, 0});

    // Entropy code the literal stream.
    std::vector<std::uint64_t> counts(256, 0);
    for (auto b : literals)
        ++counts[b];
    const auto lit_lengths = huffmanCodeLengths(counts);
    HuffmanEncoder lit_enc(lit_lengths);

    out.clear();
    out.reserve(maxCompressedSize(input.size()));
    out.push_back(modeZstd);
    putU32(out, static_cast<std::uint32_t>(input.size()));
    putU32(out, static_cast<std::uint32_t>(literals.size()));
    putU32(out, static_cast<std::uint32_t>(seqs.size()));

    // Literals section (bit-packed), then byte-aligned sequences.
    {
        BitWriter bw(out);
        writeCodeLengthsRle(bw, lit_lengths);
        for (auto b : literals)
            lit_enc.encode(bw, b);
        bw.flush();
    }

    // Sequences: one LZ4-style token byte packs the literal-run and
    // match-length nibbles; 15 in a nibble means a varint extension
    // follows. matchLen is stored as (len - minMatch + 1) so that 0
    // marks the trailing literals-only sequence.
    std::uint32_t last_offset = 0;
    for (const auto &s : seqs) {
        const std::uint32_t mcode =
            s.matchLen == 0 ? 0 : s.matchLen - 4 + 1;
        const std::uint8_t lit_nib =
            static_cast<std::uint8_t>(std::min(s.litRun, 15u));
        const std::uint8_t m_nib =
            static_cast<std::uint8_t>(std::min(mcode, 15u));
        out.push_back(static_cast<std::uint8_t>((lit_nib << 4) | m_nib));
        if (lit_nib == 15)
            putVarint(out, s.litRun - 15);
        if (m_nib == 15)
            putVarint(out, mcode - 15);
        if (s.matchLen == 0)
            continue;
        if (s.offset == last_offset) {
            putVarint(out, 0);
        } else {
            putVarint(out, s.offset);
            last_offset = s.offset;
        }
    }

    if (out.size() >= input.size() + 5)
        storedBlockInto(input, out);
}

void
ZstdLikeCodec::decompressInto(ByteSpan block, Bytes &out) const
{
    decompressBody(block, {}, out);
}

/**
 * Decompress with @p dict seeded as match history; the seeded
 * prefix is stripped before returning.
 */
void
ZstdLikeCodec::decompressBody(ByteSpan block, ByteSpan dict,
                              Bytes &out) const
{
    if (block.empty())
        fatal("zstdlike: empty block");
    const std::uint8_t mode = block[0];
    if (mode == modeStored) {
        const std::uint32_t len = getU32(block, 1);
        if (block.size() < 5 + std::size_t(len))
            fatal("zstdlike: stored block truncated");
        out.assign(block.begin() + 5, block.begin() + 5 + len);
        return;
    }
    if (mode != modeZstd)
        fatal("zstdlike: unknown block mode ", unsigned(mode));

    const std::uint32_t expected = getU32(block, 1);
    const std::uint32_t lit_count = getU32(block, 5);
    const std::uint32_t seq_count = getU32(block, 9);

    // Literals section; pair-table decode drains two symbols per
    // lookup (bit-identical to the scalar loop, which remains for
    // the last odd literal and the toggled-off path).
    Bytes literals;
    literals.reserve(lit_count);
    std::size_t pos = 13;
    {
        BitReader br(block.subspan(pos));
        const auto lit_lengths = readCodeLengthsRle(br, 256);
        HuffmanDecoder lit_dec(lit_lengths);
        const bool batched = hotpaths::batchedHuffman;
        std::uint32_t i = 0;
        while (i < lit_count) {
            if (batched && i + 1 < lit_count) {
                std::uint32_t s0;
                std::uint32_t s1;
                const unsigned n = lit_dec.decodePair(br, s0, s1);
                literals.push_back(static_cast<std::uint8_t>(s0));
                if (n == 2)
                    literals.push_back(static_cast<std::uint8_t>(s1));
                i += n;
            } else {
                literals.push_back(
                    static_cast<std::uint8_t>(lit_dec.decode(br)));
                ++i;
            }
        }
        pos += br.alignedByteOffset();
    }

    // Sequence replay on top of the seeded dictionary.
    const std::size_t target = dict.size() + expected;
    out.assign(dict.begin(), dict.end());
    out.reserve(target);
    std::size_t lit_pos = 0;
    std::uint32_t last_offset = 0;
    for (std::uint32_t i = 0; i < seq_count; ++i) {
        if (pos >= block.size())
            fatal("zstdlike: truncated sequence token");
        const std::uint8_t token = block[pos++];
        std::uint32_t lit_run = token >> 4;
        if (lit_run == 15)
            lit_run += getVarint(block, pos);
        std::uint32_t mcode = token & 0x0F;
        if (mcode == 15)
            mcode += getVarint(block, pos);
        if (lit_pos + lit_run > literals.size())
            fatal("zstdlike: literal stream overrun");
        out.insert(out.end(), literals.begin() + lit_pos,
                   literals.begin() + lit_pos + lit_run);
        lit_pos += lit_run;
        if (mcode == 0)
            continue;
        const std::uint32_t match_len = mcode - 1 + 4;
        std::uint32_t offset = getVarint(block, pos);
        if (offset == 0)
            offset = last_offset;
        else
            last_offset = offset;
        if (offset == 0 || offset > out.size())
            fatal("zstdlike: bad offset ", offset);
        appendMatch(out, offset, match_len);
    }
    if (out.size() != target)
        fatal("zstdlike: size mismatch (", out.size() - dict.size(),
              " vs ", expected, ")");
    if (!dict.empty())
        out.erase(out.begin(),
                  out.begin() + static_cast<std::ptrdiff_t>(dict.size()));
}

} // namespace compress
} // namespace xfm
