#include "hotpaths.hh"

namespace xfm
{
namespace compress
{
namespace hotpaths
{

bool swarMatch = true;
bool batchedHuffman = true;

} // namespace hotpaths
} // namespace compress
} // namespace xfm
