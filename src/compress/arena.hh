/**
 * @file
 * ScratchArena: a per-context pool of reusable byte buffers.
 *
 * Steady-state page operations (swap-out, swap-in, shard assembly,
 * NMA input staging) need short-lived Bytes buffers whose sizes
 * quickly converge. The arena recycles those buffers so the hot
 * path allocates only until each buffer has grown to its working
 * size, after which every acquire() is a free-list pop.
 *
 * Ownership rules (DESIGN.md §11): each backend/device owns its own
 * arena (no global pool); a Lease returns its buffer to the arena
 * on destruction and must not outlive the arena. The arena is
 * mutex-protected so leases may be released from WorkerPool threads
 * (the NMA engine recycles input staging buffers from codec jobs
 * that finish on a worker).
 */

#ifndef XFM_COMPRESS_ARENA_HH
#define XFM_COMPRESS_ARENA_HH

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** Pool of reusable Bytes buffers with RAII leases. */
class ScratchArena
{
  public:
    /** Movable RAII handle; returns its buffer on destruction. */
    class Lease
    {
      public:
        Lease() = default;

        Lease(Lease &&o) noexcept
            : arena_(o.arena_), buf_(std::move(o.buf_))
        {
            o.arena_ = nullptr;
        }

        Lease &
        operator=(Lease &&o) noexcept
        {
            if (this != &o) {
                release();
                arena_ = o.arena_;
                buf_ = std::move(o.buf_);
                o.arena_ = nullptr;
            }
            return *this;
        }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease() { release(); }

        /** True when this lease holds a pooled buffer. */
        explicit operator bool() const { return arena_ != nullptr; }

        Bytes &operator*() { return buf_; }
        const Bytes &operator*() const { return buf_; }
        Bytes *operator->() { return &buf_; }
        const Bytes *operator->() const { return &buf_; }

      private:
        friend class ScratchArena;
        Lease(ScratchArena *a, Bytes b)
            : arena_(a), buf_(std::move(b))
        {}

        void
        release()
        {
            if (arena_) {
                arena_->put(std::move(buf_));
                arena_ = nullptr;
            }
        }

        ScratchArena *arena_ = nullptr;
        Bytes buf_;
    };

    /**
     * Take a buffer (empty, with whatever capacity it retired
     * with), reserving at least @p reserve_hint bytes.
     */
    Lease
    acquire(std::size_t reserve_hint = 0)
    {
        Bytes buf;
        {
            std::lock_guard<std::mutex> g(m_);
            if (!free_.empty()) {
                buf = std::move(free_.back());
                free_.pop_back();
                ++reuses_;
            } else {
                ++allocs_;
            }
        }
        if (buf.capacity() < reserve_hint)
            buf.reserve(reserve_hint);
        return Lease(this, std::move(buf));
    }

    /** Buffers currently resting in the pool. */
    std::size_t
    pooled() const
    {
        std::lock_guard<std::mutex> g(m_);
        return free_.size();
    }

    /** acquire() calls served from the pool. */
    std::uint64_t
    reuses() const
    {
        std::lock_guard<std::mutex> g(m_);
        return reuses_;
    }

    /** acquire() calls that had to start from a fresh buffer. */
    std::uint64_t
    allocations() const
    {
        std::lock_guard<std::mutex> g(m_);
        return allocs_;
    }

  private:
    friend class Lease;

    void
    put(Bytes b)
    {
        b.clear();
        std::lock_guard<std::mutex> g(m_);
        if (free_.size() < maxPooled)
            free_.push_back(std::move(b));
    }

    // Bound the resting pool so a burst (e.g. a compaction sweep)
    // doesn't pin its high-water mark of buffers forever.
    static constexpr std::size_t maxPooled = 64;

    mutable std::mutex m_;
    std::vector<Bytes> free_;
    std::uint64_t reuses_ = 0;
    std::uint64_t allocs_ = 0;
};

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_ARENA_HH
