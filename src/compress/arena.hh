/**
 * @file
 * ScratchArena: a per-context pool of reusable byte buffers.
 *
 * Steady-state page operations (swap-out, swap-in, shard assembly,
 * NMA input staging) need short-lived Bytes buffers whose sizes
 * quickly converge. The arena recycles those buffers so the hot
 * path allocates only until each buffer has grown to its working
 * size, after which every acquire() is a free-list pop.
 *
 * Ownership rules (DESIGN.md §11): each backend/device owns its own
 * arena (no global pool). The pooled free list is held through a
 * shared_ptr that every outstanding Lease co-owns, so a lease MAY
 * outlive its arena: an in-flight engine job parked in a pending
 * event callback can be destroyed after its device (e.g. when an
 * EventQueue tears down un-run events at end of scope) and the
 * release lands in the orphaned pool instead of freed memory. The
 * pool is mutex-protected so leases may also be released from
 * WorkerPool threads (the NMA engine recycles input staging buffers
 * from codec jobs that finish on a worker).
 */

#ifndef XFM_COMPRESS_ARENA_HH
#define XFM_COMPRESS_ARENA_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** Pool of reusable Bytes buffers with RAII leases. */
class ScratchArena
{
  private:
    /** The shared free list; kept alive by the arena AND leases. */
    struct Pool
    {
        mutable std::mutex m;
        std::vector<Bytes> free;
        std::uint64_t reuses = 0;
        std::uint64_t allocs = 0;

        void
        put(Bytes b)
        {
            b.clear();
            std::lock_guard<std::mutex> g(m);
            if (free.size() < maxPooled)
                free.push_back(std::move(b));
        }
    };

  public:
    /** Movable RAII handle; returns its buffer on destruction. */
    class Lease
    {
      public:
        Lease() = default;

        Lease(Lease &&o) noexcept
            : pool_(std::move(o.pool_)), buf_(std::move(o.buf_))
        {
            o.pool_.reset();
        }

        Lease &
        operator=(Lease &&o) noexcept
        {
            if (this != &o) {
                release();
                pool_ = std::move(o.pool_);
                buf_ = std::move(o.buf_);
                o.pool_.reset();
            }
            return *this;
        }

        Lease(const Lease &) = delete;
        Lease &operator=(const Lease &) = delete;
        ~Lease() { release(); }

        /** True when this lease holds a pooled buffer. */
        explicit operator bool() const { return pool_ != nullptr; }

        Bytes &operator*() { return buf_; }
        const Bytes &operator*() const { return buf_; }
        Bytes *operator->() { return &buf_; }
        const Bytes *operator->() const { return &buf_; }

      private:
        friend class ScratchArena;
        Lease(std::shared_ptr<Pool> p, Bytes b)
            : pool_(std::move(p)), buf_(std::move(b))
        {}

        void
        release()
        {
            if (pool_) {
                pool_->put(std::move(buf_));
                pool_.reset();
            }
        }

        std::shared_ptr<Pool> pool_;
        Bytes buf_;
    };

    /**
     * Take a buffer (empty, with whatever capacity it retired
     * with), reserving at least @p reserve_hint bytes.
     */
    Lease
    acquire(std::size_t reserve_hint = 0)
    {
        Bytes buf;
        {
            std::lock_guard<std::mutex> g(pool_->m);
            if (!pool_->free.empty()) {
                buf = std::move(pool_->free.back());
                pool_->free.pop_back();
                ++pool_->reuses;
            } else {
                ++pool_->allocs;
            }
        }
        if (buf.capacity() < reserve_hint)
            buf.reserve(reserve_hint);
        return Lease(pool_, std::move(buf));
    }

    /** Buffers currently resting in the pool. */
    std::size_t
    pooled() const
    {
        std::lock_guard<std::mutex> g(pool_->m);
        return pool_->free.size();
    }

    /** acquire() calls served from the pool. */
    std::uint64_t
    reuses() const
    {
        std::lock_guard<std::mutex> g(pool_->m);
        return pool_->reuses;
    }

    /** acquire() calls that had to start from a fresh buffer. */
    std::uint64_t
    allocations() const
    {
        std::lock_guard<std::mutex> g(pool_->m);
        return pool_->allocs;
    }

  private:
    // Bound the resting pool so a burst (e.g. a compaction sweep)
    // doesn't pin its high-water mark of buffers forever.
    static constexpr std::size_t maxPooled = 64;

    std::shared_ptr<Pool> pool_ = std::make_shared<Pool>();
};

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_ARENA_HH
