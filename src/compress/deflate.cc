#include "deflate.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"
#include "compress/bitstream.hh"
#include "compress/hotpaths.hh"
#include "compress/huffman.hh"
#include "compress/lz77.hh"

namespace xfm
{
namespace compress
{

namespace
{

// Block modes.
constexpr std::uint8_t modeStored = 0;
constexpr std::uint8_t modeHuffman = 1;

// Alphabets (RFC1951 sizes).
constexpr std::size_t litLenSymbols = 286;  // 0..255 lit, 256 EOB, 257..285
constexpr std::size_t distSymbols = 30;
constexpr std::uint32_t eobSymbol = 256;

// Length code table: symbol 257 + i encodes lengths in
// [lengthBase[i], lengthBase[i] + (1 << lengthExtra[i]) - 1].
constexpr std::array<std::uint32_t, 29> lengthBase = {
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258
};
constexpr std::array<std::uint8_t, 29> lengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0
};

constexpr std::array<std::uint32_t, 30> distBase = {
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
    8193, 12289, 16385, 24577
};
constexpr std::array<std::uint8_t, 30> distExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13
};

/** Map a match length (3..258) to (code index, extra bits value). */
std::pair<std::uint32_t, std::uint32_t>
lengthCode(std::uint32_t len)
{
    XFM_ASSERT(len >= 3 && len <= 258, "bad match length ", len);
    for (std::size_t i = lengthBase.size(); i-- > 0;) {
        if (len >= lengthBase[i])
            return {static_cast<std::uint32_t>(i),
                    len - lengthBase[i]};
    }
    panic("unreachable length code");
}

/** Map a distance (1..32768) to (code index, extra bits value). */
std::pair<std::uint32_t, std::uint32_t>
distCode(std::uint32_t dist)
{
    XFM_ASSERT(dist >= 1 && dist <= 32768, "bad distance ", dist);
    for (std::size_t i = distBase.size(); i-- > 0;) {
        if (dist >= distBase[i])
            return {static_cast<std::uint32_t>(i), dist - distBase[i]};
    }
    panic("unreachable dist code");
}

void
putU32(Bytes &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
getU32(ByteSpan in, std::size_t off)
{
    if (off + 4 > in.size())
        fatal("deflate: truncated header");
    return static_cast<std::uint32_t>(in[off])
        | (static_cast<std::uint32_t>(in[off + 1]) << 8)
        | (static_cast<std::uint32_t>(in[off + 2]) << 16)
        | (static_cast<std::uint32_t>(in[off + 3]) << 24);
}

void
storedBlockInto(ByteSpan input, Bytes &out)
{
    out.clear();
    out.reserve(input.size() + 5);
    out.push_back(modeStored);
    putU32(out, static_cast<std::uint32_t>(input.size()));
    out.insert(out.end(), input.begin(), input.end());
}

} // namespace

DeflateCodec::DeflateCodec(std::size_t window_bytes)
    : window_bytes_(window_bytes)
{
    XFM_ASSERT(window_bytes_ >= 16 && window_bytes_ <= 32 * 1024,
               "deflate window must be in [16, 32768]");
}

void
DeflateCodec::compressInto(ByteSpan input, Bytes &out) const
{
    compressBody(input, 0, out);
}

void
DeflateCodec::compressWithDictInto(ByteSpan dict, ByteSpan input,
                                   Bytes &out) const
{
    if (dict.empty()) {
        compressBody(input, 0, out);
        return;
    }
    Bytes concat;
    concat.reserve(dict.size() + input.size());
    concat.insert(concat.end(), dict.begin(), dict.end());
    concat.insert(concat.end(), input.begin(), input.end());
    compressBody(concat, dict.size(), out);
}

void
DeflateCodec::decompressWithDictInto(ByteSpan dict, ByteSpan block,
                                     Bytes &out) const
{
    decompressBody(block, dict, out);
}

/**
 * Compress full[start..) with full[0..start) as shared history: the
 * finder indexes the prefix so matches may reach into it, but only
 * the suffix is emitted and the header's raw size excludes it.
 */
void
DeflateCodec::compressBody(ByteSpan full, std::size_t start,
                           Bytes &out) const
{
    const ByteSpan input = full.subspan(start);
    if (input.empty()) {
        storedBlockInto(input, out);
        return;
    }

    Lz77Params params;
    params.windowBytes = window_bytes_;
    const auto tokens = lz77TokenizeSuffix(full, params, start);

    // Gather symbol statistics.
    std::vector<std::uint64_t> lit_counts(litLenSymbols, 0);
    std::vector<std::uint64_t> dist_counts(distSymbols, 0);
    for (const auto &t : tokens) {
        if (t.isMatch) {
            ++lit_counts[257 + lengthCode(t.length).first];
            ++dist_counts[distCode(t.distance).first];
        } else {
            ++lit_counts[t.literal];
        }
    }
    ++lit_counts[eobSymbol];

    const auto lit_lengths = huffmanCodeLengths(lit_counts);
    const auto dist_lengths = huffmanCodeLengths(dist_counts);
    HuffmanEncoder lit_enc(lit_lengths);
    HuffmanEncoder dist_enc(dist_lengths);

    out.clear();
    out.reserve(maxCompressedSize(input.size()));
    out.push_back(modeHuffman);
    putU32(out, static_cast<std::uint32_t>(input.size()));

    BitWriter bw(out);
    writeCodeLengthsRle(bw, lit_lengths);
    writeCodeLengthsRle(bw, dist_lengths);
    for (const auto &t : tokens) {
        if (t.isMatch) {
            const auto [lcode, lextra] = lengthCode(t.length);
            lit_enc.encode(bw, 257 + lcode);
            if (lengthExtra[lcode] > 0)
                bw.put(lextra, lengthExtra[lcode]);
            const auto [dcode, dextra] = distCode(t.distance);
            dist_enc.encode(bw, dcode);
            if (distExtra[dcode] > 0)
                bw.put(dextra, distExtra[dcode]);
        } else {
            lit_enc.encode(bw, t.literal);
        }
    }
    lit_enc.encode(bw, eobSymbol);
    bw.flush();

    // Incompressible input: fall back to a stored block.
    if (out.size() >= input.size() + 5)
        storedBlockInto(input, out);
}

void
DeflateCodec::decompressInto(ByteSpan block, Bytes &out) const
{
    decompressBody(block, {}, out);
}

/**
 * Decompress with @p dict seeded as match history: the output is
 * produced on top of the dictionary bytes (so distances may reach
 * into them) and the prefix is stripped before returning.
 */
void
DeflateCodec::decompressBody(ByteSpan block, ByteSpan dict,
                             Bytes &out) const
{
    if (block.empty())
        fatal("deflate: empty block");
    const std::uint8_t mode = block[0];
    if (mode == modeStored) {
        const std::uint32_t len = getU32(block, 1);
        if (block.size() < 5 + std::size_t(len))
            fatal("deflate: stored block truncated");
        out.assign(block.begin() + 5, block.begin() + 5 + len);
        return;
    }
    if (mode != modeHuffman)
        fatal("deflate: unknown block mode ", unsigned(mode));

    const std::uint32_t expected = getU32(block, 1);
    const std::size_t target = dict.size() + expected;
    BitReader br(block.subspan(5));
    const auto lit_lengths = readCodeLengthsRle(br, litLenSymbols);
    const auto dist_lengths = readCodeLengthsRle(br, distSymbols);
    HuffmanDecoder lit_dec(lit_lengths);
    HuffmanDecoder dist_dec(dist_lengths);

    out.assign(dict.begin(), dict.end());
    out.reserve(target);
    const bool batched = hotpaths::batchedHuffman;
    for (;;) {
        std::uint32_t sym;
        if (batched) {
            std::uint32_t sym2;
            if (lit_dec.decodePair(br, sym, sym2) == 2) {
                // Pairs are literal-only by construction.
                out.push_back(static_cast<std::uint8_t>(sym));
                out.push_back(static_cast<std::uint8_t>(sym2));
                continue;
            }
        } else {
            sym = lit_dec.decode(br);
        }
        if (sym == eobSymbol)
            break;
        if (sym < 256) {
            out.push_back(static_cast<std::uint8_t>(sym));
            continue;
        }
        const std::uint32_t lcode = sym - 257;
        if (lcode >= lengthBase.size())
            fatal("deflate: bad length symbol ", sym);
        std::uint32_t len = lengthBase[lcode];
        if (lengthExtra[lcode] > 0)
            len += br.get(lengthExtra[lcode]);

        const std::uint32_t dcode = dist_dec.decode(br);
        if (dcode >= distBase.size())
            fatal("deflate: bad distance symbol ", dcode);
        std::uint32_t dist = distBase[dcode];
        if (distExtra[dcode] > 0)
            dist += br.get(distExtra[dcode]);

        if (dist > out.size())
            fatal("deflate: distance ", dist, " beyond output size ",
                  out.size());
        appendMatch(out, dist, len);
    }
    if (out.size() != target)
        fatal("deflate: size mismatch (", out.size() - dict.size(),
              " vs ", expected, ")");
    if (!dict.empty())
        out.erase(out.begin(),
                  out.begin() + static_cast<std::ptrdiff_t>(dict.size()));
}

} // namespace compress
} // namespace xfm
