#include "huffman.hh"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.hh"

namespace xfm
{
namespace compress
{

namespace
{

struct TreeNode
{
    std::uint64_t weight;
    std::uint32_t order;  // tie break for determinism
    int left = -1;
    int right = -1;
    int symbol = -1;
};

} // namespace

std::vector<std::uint8_t>
huffmanCodeLengths(const std::vector<std::uint64_t> &counts)
{
    const std::size_t n = counts.size();
    std::vector<std::uint8_t> lengths(n, 0);

    std::vector<int> live;
    for (std::size_t i = 0; i < n; ++i)
        if (counts[i] > 0)
            live.push_back(static_cast<int>(i));

    if (live.empty())
        return lengths;
    if (live.size() == 1) {
        lengths[live[0]] = 1;
        return lengths;
    }

    // Build the Huffman tree with a deterministic heap order.
    std::vector<TreeNode> nodes;
    nodes.reserve(live.size() * 2);
    auto cmp = [&nodes](int a, int b) {
        if (nodes[a].weight != nodes[b].weight)
            return nodes[a].weight > nodes[b].weight;
        return nodes[a].order > nodes[b].order;
    };
    std::priority_queue<int, std::vector<int>, decltype(cmp)> heap(cmp);
    std::uint32_t order = 0;
    for (int s : live) {
        nodes.push_back({counts[s], order++, -1, -1, s});
        heap.push(static_cast<int>(nodes.size()) - 1);
    }
    while (heap.size() > 1) {
        int a = heap.top();
        heap.pop();
        int b = heap.top();
        heap.pop();
        nodes.push_back({nodes[a].weight + nodes[b].weight, order++,
                         a, b, -1});
        heap.push(static_cast<int>(nodes.size()) - 1);
    }

    // Depth-first traversal to assign depths.
    std::vector<std::pair<int, unsigned>> stack;
    stack.emplace_back(heap.top(), 0);
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const TreeNode &node = nodes[idx];
        if (node.symbol >= 0) {
            lengths[node.symbol] =
                static_cast<std::uint8_t>(std::max(1u, depth));
        } else {
            stack.emplace_back(node.left, depth + 1);
            stack.emplace_back(node.right, depth + 1);
        }
    }

    // Length-limit: clamp and repair the Kraft inequality.
    bool clamped = false;
    for (int s : live) {
        if (lengths[s] > maxCodeLength) {
            lengths[s] = maxCodeLength;
            clamped = true;
        }
    }
    if (clamped) {
        auto kraft = [&]() {
            std::uint64_t k = 0;
            for (int s : live)
                k += std::uint64_t(1) << (maxCodeLength - lengths[s]);
            return k;
        };
        const std::uint64_t budget = std::uint64_t(1) << maxCodeLength;
        while (kraft() > budget) {
            // Lengthen the deepest code that is still below the cap.
            int victim = -1;
            for (int s : live) {
                if (lengths[s] < maxCodeLength &&
                    (victim < 0 || lengths[s] > lengths[victim])) {
                    victim = s;
                }
            }
            XFM_ASSERT(victim >= 0, "cannot satisfy Kraft inequality");
            ++lengths[victim];
        }
    }
    return lengths;
}

namespace
{

/** Canonical code assignment; returns codes bit-reversed for
 *  LSB-first emission. */
std::vector<std::uint32_t>
canonicalCodes(const std::vector<std::uint8_t> &lengths)
{
    std::vector<std::uint32_t> bl_count(maxCodeLength + 1, 0);
    for (auto len : lengths)
        if (len > 0)
            ++bl_count[len];

    std::vector<std::uint32_t> next_code(maxCodeLength + 2, 0);
    std::uint32_t code = 0;
    for (unsigned len = 1; len <= maxCodeLength; ++len) {
        code = (code + bl_count[len - 1]) << 1;
        next_code[len] = code;
    }

    std::vector<std::uint32_t> codes(lengths.size(), 0);
    for (std::size_t s = 0; s < lengths.size(); ++s) {
        const unsigned len = lengths[s];
        if (len == 0)
            continue;
        std::uint32_t c = next_code[len]++;
        // Bit-reverse to len bits for the LSB-first bitstream.
        std::uint32_t r = 0;
        for (unsigned i = 0; i < len; ++i) {
            r = (r << 1) | (c & 1);
            c >>= 1;
        }
        codes[s] = r;
    }
    return codes;
}

} // namespace

HuffmanEncoder::HuffmanEncoder(const std::vector<std::uint8_t> &lengths)
    : lengths_(lengths), codes_(canonicalCodes(lengths))
{}

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t> &lengths)
{
    XFM_ASSERT(lengths.size() <= 0xFFFF,
               "huffman alphabet too large for packed table");
    unsigned max_len = 0;
    for (auto len : lengths)
        max_len = std::max<unsigned>(max_len, len);
    XFM_ASSERT(max_len <= maxCodeLength,
               "huffman code exceeds the length limit");
    root_bits_ = std::max(1u, std::min<unsigned>(rootBits, max_len));
    const std::size_t root_size = std::size_t(1) << root_bits_;
    table_.assign(root_size, {0, 0, 0, 0});
    if (max_len == 0)
        return;
    has_codes_ = true;

    const auto codes = canonicalCodes(lengths);
    // Short codes fill the root directly (LSB-first: a code of
    // `len` bits owns every window whose low bits equal it).
    for (std::size_t s = 0; s < lengths.size(); ++s) {
        const unsigned len = lengths[s];
        if (len == 0 || len > root_bits_)
            continue;
        const std::size_t step = std::size_t(1) << len;
        for (std::size_t idx = codes[s]; idx < root_size; idx += step) {
            table_[idx].sym0 = static_cast<std::uint16_t>(s);
            table_[idx].len0 = static_cast<std::uint8_t>(len);
        }
    }
    // Long codes spill into one subtable per root prefix, sized by
    // the longest code sharing that prefix. Entries store the FULL
    // code length so a single skip() consumes root and sub bits.
    for (std::size_t s = 0; s < lengths.size(); ++s) {
        const unsigned len = lengths[s];
        if (len <= root_bits_)
            continue;
        const std::uint32_t prefix = codes[s] & (root_size - 1);
        if (table_[prefix].len0 != subLink) {
            // Size the subtable on first touch: scan the suffix
            // lengths of every long code with this prefix.
            unsigned sub_bits = 0;
            for (std::size_t t = 0; t < lengths.size(); ++t) {
                if (lengths[t] > root_bits_
                    && (codes[t] & (root_size - 1)) == prefix)
                    sub_bits = std::max<unsigned>(
                        sub_bits, lengths[t] - root_bits_);
            }
            const std::size_t off = table_.size();
            XFM_ASSERT(off <= 0xFFFF,
                       "huffman subtables exceed the offset field");
            table_.resize(off + (std::size_t(1) << sub_bits),
                          {0, 0, 0, 0});
            table_[prefix].sym0 = static_cast<std::uint16_t>(off);
            table_[prefix].sym1 = static_cast<std::uint16_t>(sub_bits);
            table_[prefix].len0 = subLink;
        }
        const std::size_t off = table_[prefix].sym0;
        const unsigned sub_bits = table_[prefix].sym1;
        const std::size_t step = std::size_t(1) << (len - root_bits_);
        for (std::size_t idx = codes[s] >> root_bits_;
             idx < (std::size_t(1) << sub_bits); idx += step) {
            table_[off + idx].sym0 = static_cast<std::uint16_t>(s);
            table_[off + idx].len0 = static_cast<std::uint8_t>(len);
        }
    }
    // Pair pass over the root only: pre-pair windows whose
    // remaining bits fully determine a second symbol. Restricted
    // to literal pairs (both < 256) so decodePair never swallows
    // bits past a match/EOB symbol whose extra bits follow in the
    // stream.
    for (std::size_t w = 0; w < root_size; ++w) {
        TableEntry &e = table_[w];
        if (e.len0 == 0 || e.len0 == subLink || e.sym0 >= 256
            || e.len0 >= root_bits_)
            continue;
        const TableEntry &next = table_[w >> e.len0];
        if (next.len0 == 0 || next.sym0 >= 256
            || next.len0 > root_bits_ - e.len0)
            continue;
        e.sym1 = next.sym0;
        e.pairLen = static_cast<std::uint8_t>(e.len0 + next.len0);
    }
}

void
writeCodeLengthsRle(BitWriter &bw,
                    const std::vector<std::uint8_t> &lengths)
{
    std::size_t i = 0;
    while (i < lengths.size()) {
        const std::uint8_t cur = lengths[i];
        std::size_t run = 1;
        while (i + run < lengths.size() && lengths[i + run] == cur)
            ++run;
        if (cur == 0 && run >= 3) {
            std::size_t left = run;
            while (left >= 11) {
                const std::size_t take = std::min<std::size_t>(left, 138);
                bw.put(18, 5);
                bw.put(static_cast<std::uint32_t>(take - 11), 7);
                left -= take;
            }
            if (left >= 3) {
                bw.put(17, 5);
                bw.put(static_cast<std::uint32_t>(left - 3), 3);
                left = 0;
            }
            while (left-- > 0)
                bw.put(0, 5);
        } else {
            bw.put(cur, 5);
            std::size_t left = run - 1;
            while (left >= 3) {
                const std::size_t take = std::min<std::size_t>(left, 6);
                bw.put(16, 5);
                bw.put(static_cast<std::uint32_t>(take - 3), 2);
                left -= take;
            }
            while (left-- > 0)
                bw.put(cur, 5);
        }
        i += run;
    }
}

std::vector<std::uint8_t>
readCodeLengthsRle(BitReader &br, std::size_t count)
{
    std::vector<std::uint8_t> lengths;
    lengths.reserve(count);
    while (lengths.size() < count) {
        const std::uint32_t sym = br.get(5);
        if (sym <= 15) {
            lengths.push_back(static_cast<std::uint8_t>(sym));
        } else if (sym == 16) {
            if (lengths.empty())
                fatal("codelen rle: repeat with no previous length");
            const std::uint32_t run = 3 + br.get(2);
            const std::uint8_t v = lengths.back();
            for (std::uint32_t k = 0; k < run; ++k)
                lengths.push_back(v);
        } else if (sym == 17) {
            const std::uint32_t run = 3 + br.get(3);
            lengths.insert(lengths.end(), run, 0);
        } else if (sym == 18) {
            const std::uint32_t run = 11 + br.get(7);
            lengths.insert(lengths.end(), run, 0);
        } else {
            fatal("codelen rle: invalid symbol ", sym);
        }
    }
    if (lengths.size() != count)
        fatal("codelen rle: overran requested count (", lengths.size(),
              " vs ", count, ")");
    return lengths;
}

const HuffmanDecoder::TableEntry &
HuffmanDecoder::lookup(BitReader &br) const
{
    const TableEntry &root = table_[br.peek(root_bits_)];
    if (root.len0 != subLink)
        return root;
    // Long code: re-peek wide enough for the subtable suffix. The
    // entry's len0 holds the FULL code length, so the caller's
    // skip() consumes root and suffix bits together.
    const std::uint32_t suffix =
        br.peek(root_bits_ + root.sym1) >> root_bits_;
    return table_[root.sym0 + suffix];
}

std::uint32_t
HuffmanDecoder::decode(BitReader &br) const
{
    const TableEntry &e = lookup(br);
    if (e.len0 == 0)
        fatal("huffman decode: invalid code in bitstream");
    br.skip(e.len0);
    return e.sym0;
}

unsigned
HuffmanDecoder::decodePair(BitReader &br, std::uint32_t &s0,
                           std::uint32_t &s1) const
{
    const TableEntry &e = lookup(br);
    if (e.len0 == 0)
        fatal("huffman decode: invalid code in bitstream");
    // Take the pair only when every one of its bits is real input
    // (near the end of the stream the peek window is zero-padded,
    // and the phantom second symbol must not be emitted).
    if (e.pairLen != 0 && e.pairLen <= br.buffered()) {
        br.skip(e.pairLen);
        s0 = e.sym0;
        s1 = e.sym1;
        return 2;
    }
    br.skip(e.len0);
    s0 = e.sym0;
    return 1;
}

} // namespace compress
} // namespace xfm
