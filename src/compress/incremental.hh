/**
 * @file
 * Incremental (chunked) compression with shared history.
 *
 * The paper notes that "compression and decompression tasks are
 * incrementally computable, simplifying memory channel interleaving
 * complexities" (Sec. 1) and hypothesises that Fig. 8's multi-
 * channel losses partly stem from "the lack of a shared dictionary
 * between DIMMs" (Sec. 6). This module makes both concrete: a
 * stream compressor consumes chunks one at a time, letting every
 * chunk's LZ77 matches reach back into all previously-seen chunks,
 * and emits one independent-length segment per chunk.
 *
 * Segments must be decompressed in order (each depends on the
 * history established by its predecessors).
 */

#ifndef XFM_COMPRESS_INCREMENTAL_HH
#define XFM_COMPRESS_INCREMENTAL_HH

#include <cstdint>
#include <vector>

#include "compress/compressor.hh"
#include "compress/lz77.hh"

namespace xfm
{
namespace compress
{

/**
 * Chunk-at-a-time compressor with cross-chunk history.
 *
 * Encoding: per segment, a small header (raw length, token count)
 * followed by byte-aligned tokens (LzFast-style nibble tokens with
 * varint extensions and 3-byte offsets so history up to 16 MiB is
 * reachable).
 */
class IncrementalCompressor
{
  public:
    explicit IncrementalCompressor(const Lz77Params &params =
                                       defaultParams());

    /**
     * Compress the next chunk; matches may reference every byte of
     * every earlier chunk.
     */
    Bytes addChunk(ByteSpan chunk);

    /** Total raw bytes consumed so far. */
    std::size_t historyBytes() const { return history_.size(); }

    /** Parameter profile tuned for streaming use. */
    static Lz77Params
    defaultParams()
    {
        Lz77Params p;
        p.windowBytes = 16 * 1024 * 1024;
        p.minMatch = 4;
        p.maxMatch = 1 << 16;
        p.maxChainLength = 64;
        p.lazyMatching = false;
        return p;
    }

  private:
    Lz77Params params_;
    Bytes history_;
};

/**
 * Ordered decompressor for segments produced by
 * IncrementalCompressor.
 */
class IncrementalDecompressor
{
  public:
    /**
     * Decode the next segment; returns the chunk's raw bytes.
     *
     * @throws FatalError on malformed or out-of-order segments.
     */
    Bytes addSegment(ByteSpan segment);

    std::size_t historyBytes() const { return history_.size(); }

  private:
    Bytes history_;
};

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_INCREMENTAL_HH
