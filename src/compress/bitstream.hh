/**
 * @file
 * LSB-first bit-level writer/reader used by the Huffman codecs.
 */

#ifndef XFM_COMPRESS_BITSTREAM_HH
#define XFM_COMPRESS_BITSTREAM_HH

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>

#include "common/logging.hh"
#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** Append bits LSB-first to a byte vector. */
class BitWriter
{
  public:
    explicit BitWriter(Bytes &out) : out_(out) {}

    /** Write the low @p nbits of @p value (nbits <= 32). */
    void
    put(std::uint32_t value, unsigned nbits)
    {
        XFM_ASSERT(nbits <= 32, "BitWriter::put nbits too large");
        acc_ |= static_cast<std::uint64_t>(value & mask(nbits)) << fill_;
        fill_ += nbits;
        while (fill_ >= 8) {
            out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
            acc_ >>= 8;
            fill_ -= 8;
        }
    }

    /** Flush any partial byte (zero padded). */
    void
    flush()
    {
        if (fill_ > 0) {
            out_.push_back(static_cast<std::uint8_t>(acc_ & 0xFF));
            acc_ = 0;
            fill_ = 0;
        }
    }

  private:
    static constexpr std::uint32_t
    mask(unsigned nbits)
    {
        return nbits >= 32 ? 0xFFFFFFFFu : ((1u << nbits) - 1);
    }

    Bytes &out_;
    std::uint64_t acc_ = 0;
    unsigned fill_ = 0;
};

/**
 * Append an LZ match to @p out: copy @p len bytes starting @p dist
 * bytes before the current end of @p out.
 *
 * Overlap-aware block copy shared by every decoder. When the match
 * does not overlap its source (dist >= len) it is a single memcpy.
 * When it does overlap (dist < len) the output is periodic with
 * period dist, so we seed one period and then double the copied
 * region; `filled` stays a multiple of dist until the final partial
 * chunk, which keeps every memcpy source fully written and
 * non-overlapping with its destination.
 */
inline void
appendMatch(Bytes &out, std::size_t dist, std::size_t len)
{
    XFM_ASSERT(dist >= 1 && dist <= out.size(),
               "appendMatch: distance outside produced output");
    if (len == 0)
        return;
    const std::size_t start = out.size() - dist;
    out.resize(out.size() + len);
    std::uint8_t *dst = out.data() + out.size() - len;
    const std::uint8_t *src = out.data() + start;
    if (len <= dist) {
        std::memcpy(dst, src, len);
        return;
    }
    std::memcpy(dst, src, dist);
    std::size_t filled = dist;
    while (filled < len) {
        const std::size_t chunk = std::min(filled, len - filled);
        std::memcpy(dst + filled, dst, chunk);
        filled += chunk;
    }
}

/** Read bits LSB-first from a byte span. */
class BitReader
{
  public:
    explicit BitReader(ByteSpan in) : in_(in) {}

    /** Read @p nbits (<= 32); throws on truncation. */
    std::uint32_t
    get(unsigned nbits)
    {
        XFM_ASSERT(nbits <= 32, "BitReader::get nbits too large");
        while (fill_ < nbits) {
            if (pos_ >= in_.size())
                fatal("bitstream truncated at byte ", pos_);
            acc_ |= static_cast<std::uint64_t>(in_[pos_++]) << fill_;
            fill_ += 8;
        }
        const auto v = static_cast<std::uint32_t>(
            acc_ & ((nbits >= 32) ? ~std::uint64_t(0)
                                  : ((std::uint64_t(1) << nbits) - 1)));
        acc_ >>= nbits;
        fill_ -= nbits;
        return v;
    }

    /** Peek up to @p nbits without consuming; pads with zeros. */
    std::uint32_t
    peek(unsigned nbits)
    {
        if (fill_ < nbits) {
            // Bulk refill: one unaligned 64-bit load replaces the
            // byte loop whenever 8 input bytes remain. Only whole
            // bytes that fit the accumulator are consumed, so the
            // bit-for-bit stream position matches the byte loop.
            if constexpr (std::endian::native == std::endian::little) {
                if (pos_ + 8 <= in_.size()) {
                    std::uint64_t w;
                    std::memcpy(&w, in_.data() + pos_, 8);
                    const unsigned take = (64 - fill_) >> 3;
                    if (take < 8)
                        w &= (std::uint64_t(1) << (take * 8)) - 1;
                    acc_ |= w << fill_;
                    fill_ += take * 8;
                    pos_ += take;
                }
            }
            while (fill_ < nbits && pos_ < in_.size()) {
                acc_ |= static_cast<std::uint64_t>(in_[pos_++]) << fill_;
                fill_ += 8;
            }
        }
        return static_cast<std::uint32_t>(
            acc_ & ((nbits >= 32) ? ~std::uint64_t(0)
                                  : ((std::uint64_t(1) << nbits) - 1)));
    }

    /** Consume @p nbits previously peeked. */
    void
    skip(unsigned nbits)
    {
        if (fill_ < nbits)
            fatal("bitstream truncated mid-code");
        acc_ >>= nbits;
        fill_ -= nbits;
    }

    /** Bytes consumed so far (rounded up to the buffered byte). */
    std::size_t consumedBytes() const { return pos_; }

    /** Bits currently buffered and available to skip(). */
    unsigned buffered() const { return fill_; }

    /**
     * Byte offset of the next unread datum assuming the writer
     * flushed to a byte boundary here. Accounts for bits that were
     * buffered by peek() but never consumed.
     */
    std::size_t
    alignedByteOffset() const
    {
        const std::size_t bits_consumed = pos_ * 8 - fill_;
        return (bits_consumed + 7) / 8;
    }

  private:
    ByteSpan in_;
    std::size_t pos_ = 0;
    std::uint64_t acc_ = 0;
    unsigned fill_ = 0;
};

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_BITSTREAM_HH
