/**
 * @file
 * Canonical Huffman coding over arbitrary symbol alphabets.
 *
 * Code lengths are limited to maxCodeLength (15) using the standard
 * length-limited adjustment, and codes are assigned canonically so a
 * decoder only needs the length array.
 */

#ifndef XFM_COMPRESS_HUFFMAN_HH
#define XFM_COMPRESS_HUFFMAN_HH

#include <cstdint>
#include <vector>

#include "compress/bitstream.hh"
#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** Upper bound on any Huffman code length we emit. */
constexpr unsigned maxCodeLength = 15;

/**
 * Compute length-limited Huffman code lengths from symbol counts.
 *
 * Symbols with zero count get length 0 (no code). If only one
 * symbol has nonzero count it receives length 1 so the bitstream
 * format stays uniform.
 *
 * @param counts frequency per symbol.
 * @return per-symbol code length, each <= maxCodeLength.
 */
std::vector<std::uint8_t>
huffmanCodeLengths(const std::vector<std::uint64_t> &counts);

/** Encoder table built from canonical code lengths. */
class HuffmanEncoder
{
  public:
    explicit HuffmanEncoder(const std::vector<std::uint8_t> &lengths);

    /** Emit the code for @p symbol. */
    void
    encode(BitWriter &bw, std::uint32_t symbol) const
    {
        XFM_ASSERT(symbol < lengths_.size() && lengths_[symbol] > 0,
                   "encoding symbol without a code: ", symbol);
        bw.put(codes_[symbol], lengths_[symbol]);
    }

    unsigned lengthOf(std::uint32_t symbol) const
    {
        return lengths_[symbol];
    }

  private:
    std::vector<std::uint8_t> lengths_;
    std::vector<std::uint32_t> codes_;
};

/**
 * Table-driven decoder for canonical codes.
 *
 * Uses a single-level lookup table of maxCodeLength bits; alphabets
 * here are small (< 300 symbols) so this stays compact.
 */
class HuffmanDecoder
{
  public:
    explicit HuffmanDecoder(const std::vector<std::uint8_t> &lengths);

    /** Decode one symbol from the reader. */
    std::uint32_t decode(BitReader &br) const;

    /** True if at least one symbol has a code. */
    bool hasCodes() const { return has_codes_; }

  private:
    struct TableEntry
    {
        std::uint32_t symbol;
        std::uint8_t length;
    };

    std::vector<TableEntry> table_;
    bool has_codes_ = false;
};

/**
 * Emit a code-length array with RFC1951-style run-length codes
 * (16 = repeat previous 3..6, 17 = zeros 3..10, 18 = zeros 11..138),
 * each RLE symbol written as raw 5 bits.
 */
void writeCodeLengthsRle(BitWriter &bw,
                         const std::vector<std::uint8_t> &lengths);

/** Inverse of writeCodeLengthsRle; reads exactly @p count lengths. */
std::vector<std::uint8_t> readCodeLengthsRle(BitReader &br,
                                             std::size_t count);

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_HUFFMAN_HH
