/**
 * @file
 * Canonical Huffman coding over arbitrary symbol alphabets.
 *
 * Code lengths are limited to maxCodeLength (15) using the standard
 * length-limited adjustment, and codes are assigned canonically so a
 * decoder only needs the length array.
 */

#ifndef XFM_COMPRESS_HUFFMAN_HH
#define XFM_COMPRESS_HUFFMAN_HH

#include <cstdint>
#include <vector>

#include "compress/bitstream.hh"
#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** Upper bound on any Huffman code length we emit. */
constexpr unsigned maxCodeLength = 15;

/**
 * Compute length-limited Huffman code lengths from symbol counts.
 *
 * Symbols with zero count get length 0 (no code). If only one
 * symbol has nonzero count it receives length 1 so the bitstream
 * format stays uniform.
 *
 * @param counts frequency per symbol.
 * @return per-symbol code length, each <= maxCodeLength.
 */
std::vector<std::uint8_t>
huffmanCodeLengths(const std::vector<std::uint64_t> &counts);

/** Encoder table built from canonical code lengths. */
class HuffmanEncoder
{
  public:
    explicit HuffmanEncoder(const std::vector<std::uint8_t> &lengths);

    /** Emit the code for @p symbol. */
    void
    encode(BitWriter &bw, std::uint32_t symbol) const
    {
        XFM_ASSERT(symbol < lengths_.size() && lengths_[symbol] > 0,
                   "encoding symbol without a code: ", symbol);
        bw.put(codes_[symbol], lengths_[symbol]);
    }

    unsigned lengthOf(std::uint32_t symbol) const
    {
        return lengths_[symbol];
    }

  private:
    std::vector<std::uint8_t> lengths_;
    std::vector<std::uint32_t> codes_;
};

/**
 * Table-driven decoder for canonical codes.
 *
 * Two-level layout: a root table of min(rootBits, longest code)
 * bits resolves the common short codes in one lookup; the rare
 * codes longer than the root spill into per-prefix subtables. The
 * blocks decoded here are 1-4 KiB, so table BUILD cost is on the
 * hot path — a root of 2^11 entries is ~16x cheaper to build than
 * the 2^15 flat table a 15-bit code bound would need, and that
 * build-time saving dwarfs the extra indirection long codes pay.
 */
class HuffmanDecoder
{
  public:
    explicit HuffmanDecoder(const std::vector<std::uint8_t> &lengths);

    /** Decode one symbol from the reader. */
    std::uint32_t decode(BitReader &br) const;

    /**
     * Batched decode: consume one or two symbols with a single
     * table lookup and return how many were produced. Pairs are
     * pre-computed at table build and only formed from two literal
     * symbols (< 256) whose combined length fits one root window,
     * so mixed-alphabet consumers always receive a match/EOB
     * symbol alone and can branch on it exactly as with decode().
     * Bit-for-bit identical consumption to two decode() calls.
     */
    unsigned decodePair(BitReader &br, std::uint32_t &s0,
                        std::uint32_t &s1) const;

    /** True if at least one symbol has a code. */
    bool hasCodes() const { return has_codes_; }

  private:
    /** Root-table budget; codes longer than this use a subtable. */
    static constexpr unsigned rootBits = 11;
    /** len0 value marking a subtable link (real codes are <= 15). */
    static constexpr std::uint8_t subLink = 0xFF;

    struct TableEntry
    {
        std::uint16_t sym0;    ///< symbol, or subtable offset
        std::uint16_t sym1;    ///< pair partner, or subtable bits
        std::uint8_t len0;     ///< 0 invalid; subLink = subtable
        std::uint8_t pairLen;  ///< len0 + len1, or 0 when unpaired
    };

    /** Resolve one window to its entry (follows subtable links). */
    const TableEntry &lookup(BitReader &br) const;

    std::vector<TableEntry> table_;  ///< root, then subtables
    unsigned root_bits_ = 1;         ///< actual root width used
    bool has_codes_ = false;
};

/**
 * Emit a code-length array with RFC1951-style run-length codes
 * (16 = repeat previous 3..6, 17 = zeros 3..10, 18 = zeros 11..138),
 * each RLE symbol written as raw 5 bits.
 */
void writeCodeLengthsRle(BitWriter &bw,
                         const std::vector<std::uint8_t> &lengths);

/** Inverse of writeCodeLengthsRle; reads exactly @p count lengths. */
std::vector<std::uint8_t> readCodeLengthsRle(BitReader &br,
                                             std::size_t count);

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_HUFFMAN_HH
