#include "incremental.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/bitstream.hh"

namespace xfm
{
namespace compress
{

namespace
{

constexpr std::uint32_t minMatch = 4;

void
putU32(Bytes &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
getU32(ByteSpan in, std::size_t off)
{
    if (off + 4 > in.size())
        fatal("incremental: truncated header");
    return static_cast<std::uint32_t>(in[off])
        | (static_cast<std::uint32_t>(in[off + 1]) << 8)
        | (static_cast<std::uint32_t>(in[off + 2]) << 16)
        | (static_cast<std::uint32_t>(in[off + 3]) << 24);
}

void
putExtended(Bytes &out, std::uint32_t value)
{
    while (value >= 255) {
        out.push_back(255);
        value -= 255;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t
getExtended(ByteSpan in, std::size_t &pos)
{
    std::uint32_t v = 0;
    for (;;) {
        if (pos >= in.size())
            fatal("incremental: truncated extension");
        const std::uint8_t b = in[pos++];
        v += b;
        if (b != 255)
            return v;
    }
}

} // namespace

IncrementalCompressor::IncrementalCompressor(const Lz77Params &params)
    : params_(params)
{
    XFM_ASSERT(params_.windowBytes <= (1u << 24),
               "3-byte offsets reach at most 16 MiB of history");
}

Bytes
IncrementalCompressor::addChunk(ByteSpan chunk)
{
    const std::size_t start = history_.size();
    history_.insert(history_.end(), chunk.begin(), chunk.end());

    const auto tokens = lz77TokenizeSuffix(history_, params_, start);

    Bytes out;
    out.reserve(Compressor::maxCompressedSize(chunk.size()));
    putU32(out, static_cast<std::uint32_t>(chunk.size()));

    std::size_t i = 0;
    while (i < tokens.size()) {
        std::uint32_t lit_count = 0;
        const std::size_t lit_start = i;
        while (i < tokens.size() && !tokens[i].isMatch) {
            ++lit_count;
            ++i;
        }
        const bool have_match = i < tokens.size();
        const std::uint32_t match_code =
            have_match ? tokens[i].length - minMatch : 0;

        const std::uint8_t lit_nib =
            static_cast<std::uint8_t>(std::min(lit_count, 15u));
        const std::uint8_t match_nib = have_match
            ? static_cast<std::uint8_t>(std::min(match_code, 15u))
            : 0;
        out.push_back(static_cast<std::uint8_t>((lit_nib << 4)
                                                | match_nib));
        if (lit_count >= 15)
            putExtended(out, lit_count - 15);
        for (std::size_t k = 0; k < lit_count; ++k)
            out.push_back(tokens[lit_start + k].literal);
        if (have_match) {
            const std::uint32_t dist = tokens[i].distance;
            out.push_back(static_cast<std::uint8_t>(dist));
            out.push_back(static_cast<std::uint8_t>(dist >> 8));
            out.push_back(static_cast<std::uint8_t>(dist >> 16));
            if (match_code >= 15)
                putExtended(out, match_code - 15);
            ++i;
        }
    }
    return out;
}

Bytes
IncrementalDecompressor::addSegment(ByteSpan segment)
{
    const std::uint32_t raw_len = getU32(segment, 0);
    const std::size_t start = history_.size();
    history_.reserve(start + raw_len);

    std::size_t pos = 4;
    while (history_.size() - start < raw_len) {
        if (pos >= segment.size())
            fatal("incremental: truncated segment");
        const std::uint8_t token = segment[pos++];
        std::uint32_t lit_count = token >> 4;
        if (lit_count == 15)
            lit_count += getExtended(segment, pos);
        if (pos + lit_count > segment.size())
            fatal("incremental: literal overrun");
        history_.insert(history_.end(), segment.begin() + pos,
                        segment.begin() + pos + lit_count);
        pos += lit_count;
        if (history_.size() - start >= raw_len)
            break;

        if (pos + 3 > segment.size())
            fatal("incremental: truncated offset");
        const std::uint32_t dist =
            static_cast<std::uint32_t>(segment[pos])
            | (static_cast<std::uint32_t>(segment[pos + 1]) << 8)
            | (static_cast<std::uint32_t>(segment[pos + 2]) << 16);
        pos += 3;
        std::uint32_t match_code = token & 0x0F;
        if (match_code == 15)
            match_code += getExtended(segment, pos);
        const std::uint32_t len = match_code + minMatch;

        if (dist == 0 || dist > history_.size())
            fatal("incremental: bad distance ", dist);
        appendMatch(history_, dist, len);
    }
    if (history_.size() - start != raw_len)
        fatal("incremental: segment size mismatch");
    return Bytes(history_.begin() + start, history_.end());
}

} // namespace compress
} // namespace xfm
