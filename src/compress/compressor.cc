#include "compressor.hh"

#include "common/logging.hh"
#include "compress/deflate.hh"
#include "compress/lzfast.hh"
#include "compress/zstdlike.hh"

namespace xfm
{
namespace compress
{

Bytes
Compressor::compress(ByteSpan input) const
{
    Bytes out;
    compressInto(input, out);
    return out;
}

Bytes
Compressor::decompress(ByteSpan block) const
{
    Bytes out;
    decompressInto(block, out);
    return out;
}

void
Compressor::compressWithDictInto(ByteSpan dict, ByteSpan input,
                                 Bytes &out) const
{
    if (!dict.empty())
        fatal(algorithmName(algorithm()),
              ": preset dictionaries unsupported");
    compressInto(input, out);
}

void
Compressor::decompressWithDictInto(ByteSpan dict, ByteSpan block,
                                   Bytes &out) const
{
    if (!dict.empty())
        fatal(algorithmName(algorithm()),
              ": preset dictionaries unsupported");
    decompressInto(block, out);
}

std::string
algorithmName(Algorithm a)
{
    switch (a) {
      case Algorithm::LzFast:
        return "lzfast";
      case Algorithm::Deflate:
        return "deflate";
      case Algorithm::ZstdLike:
        return "zstdlike";
    }
    panic("unknown algorithm");
}

CpuCost
cpuCost(Algorithm a)
{
    // Calibrated so the zstd/lzo four-way average matches the
    // paper's EQ3.4 figure of 7.65e9 cycles/GB:
    // (14 + 6 + 7 + 3.6) / 4 = 7.65 cycles/byte.
    switch (a) {
      case Algorithm::LzFast:
        return {7.0, 3.6};
      case Algorithm::ZstdLike:
        return {14.0, 6.0};
      case Algorithm::Deflate:
        return {25.0, 10.0};  // software deflate; hw offload differs
    }
    panic("unknown algorithm");
}

std::unique_ptr<Compressor>
makeCompressor(Algorithm a)
{
    switch (a) {
      case Algorithm::LzFast:
        return std::make_unique<LzFastCodec>();
      case Algorithm::Deflate:
        return std::make_unique<DeflateCodec>();
      case Algorithm::ZstdLike:
        return std::make_unique<ZstdLikeCodec>();
    }
    panic("unknown algorithm");
}

} // namespace compress
} // namespace xfm
