/**
 * @file
 * Deterministic synthetic corpus generators.
 *
 * The paper's Fig. 8 compresses 4 KiB pages drawn from 16 corpus
 * files. We cannot ship those corpora, so each generator here
 * synthesises a byte stream with the match/entropy structure of one
 * corpus class (english text, HTML, JSON, source code, columnar
 * numerics, ...). All generators are pure functions of (kind, seed,
 * size), so experiments are reproducible.
 */

#ifndef XFM_COMPRESS_CORPUS_HH
#define XFM_COMPRESS_CORPUS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** The 16 corpus classes used by the Fig. 8 reproduction. */
enum class CorpusKind
{
    EnglishText,   ///< Markov-chain english-like prose
    Html,          ///< tag soup with repeated attributes
    Json,          ///< API-response-like records
    SourceCode,    ///< C-like source with keywords/idents
    CsvTable,      ///< comma-separated numeric/text table
    LogLines,      ///< timestamped server log lines
    KeyValue,      ///< redis-dump-like key/value pairs
    NumericColumns,///< little-endian ints with small deltas
    Base64Blob,    ///< base64 of random bytes (low compressibility)
    ZeroHeavy,     ///< mostly-zero pages (sparse heap)
    Bitmap,        ///< smooth-gradient raster image
    AudioPcm,      ///< band-limited 16-bit PCM samples
    ProteinSeq,    ///< 20-letter alphabet sequences
    Dictionary,    ///< sorted word list, shared prefixes
    HeapObjects,   ///< pointer-rich object graph (malloc heap)
    RandomBytes,   ///< incompressible control
};

/** All kinds in a stable order. */
const std::vector<CorpusKind> &allCorpusKinds();

/** Short name, e.g. "english-text". */
std::string corpusName(CorpusKind kind);

/**
 * Generate @p size bytes of the given corpus class.
 *
 * @param kind corpus class.
 * @param seed RNG seed; same (kind, seed, size) => same bytes.
 * @param size output length in bytes.
 */
Bytes generateCorpus(CorpusKind kind, std::uint64_t seed,
                     std::size_t size);

/**
 * Slice a corpus into consecutive @p page_bytes pages (the last
 * partial page is dropped), as SFM compresses page-granular data.
 */
std::vector<Bytes> paginate(const Bytes &corpus,
                            std::size_t page_bytes = 4096);

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_CORPUS_HH
