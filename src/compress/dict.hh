/**
 * @file
 * Preset-dictionary shard containers (DESIGN.md §16).
 *
 * Multi-channel placement shrinks each shard's effective window to
 * pageSize/numDimms, costing compression ratio on spatially
 * correlated data (Fig. 8). A preset dictionary sampled from the
 * *whole* page restores cross-shard redundancy: each shard is
 * compressed with the dictionary preloaded as match history.
 *
 * Two container formats (all integers little-endian):
 *
 *   self-contained   [0xD1][u16 rawDictLen][u16 storedDictLen]
 *                    [dict block][payload]
 *   dict-referencing [0xD2][u16 rawDictLen][payload]
 *
 * The 0xD1 container embeds the compressed dictionary, so a block
 * decodes with no out-of-band state — but replicating the dictionary
 * into every shard of a page costs more than the cross-shard matches
 * save (a ~2 KiB dictionary compresses to more bytes than a 1 KiB
 * shard recovers). The system therefore stores the dictionary ONCE
 * per page — packDict() output water-filled across the tails of the
 * page's same-offset slots (dictStripes()) — and shards use the
 * 3-byte 0xD2 header, which only records the raw dictionary length
 * so decode can validate the externally supplied dictionary.
 *
 * Neither magic can collide with a plain block: every codec's first
 * byte is a block mode in {0, 1, 2}. Both encoders fall back to the
 * plain block whenever the dict form is not strictly smaller, so
 * dict mode never loses bytes per shard and the engine's worst-case
 * SPM reservation stays valid.
 */

#ifndef XFM_COMPRESS_DICT_HH
#define XFM_COMPRESS_DICT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** First byte of a self-contained dict container. */
constexpr std::uint8_t dictShardMagic = 0xD1;

/** First byte of a dict-referencing container (dictionary stored
 *  out-of-band, once per page; see packDict()). */
constexpr std::uint8_t dictRefMagic = 0xD2;

/** True if @p block starts with the self-contained dict magic. */
bool isDictBlock(ByteSpan block);

/** True if @p block starts with the dict-referencing magic. */
bool isDictRefBlock(ByteSpan block);

/**
 * Sample a preset dictionary from a full page.
 *
 * Takes whole interleave-sized chunks at a stride across the page
 * (k = dict_bytes/interleave of them), so the dictionary carries
 * material that placement scattered to *other* DIMMs' shards.
 * Whole-chunk samples beat smaller scattered segments measurably:
 * match candidates survive with their full local context. The
 * result is deterministic in (page, interleave, dict_bytes).
 *
 * @param page       full logical page bytes (pre-split layout)
 * @param interleave shard interleave chunk size in bytes
 * @param dict_bytes target dictionary size; result is <= this
 */
Bytes buildPresetDictionary(ByteSpan page, std::size_t interleave,
                            std::size_t dict_bytes);

/**
 * Compress @p shard with @p dict into a self-describing container.
 *
 * Emits the 0xD1 container only when it beats the plain block;
 * otherwise @p out holds the plain block (adaptive per-shard
 * fallback). Returns true when the dict container was used.
 */
bool encodeShard(const Compressor &codec, ByteSpan dict,
                 ByteSpan shard, Bytes &out);

/**
 * Compress @p shard with @p dict into a dict-referencing container
 * ([0xD2][u16 rawDictLen][payload]) — the dictionary itself is NOT
 * stored; the caller must keep it recoverable (packDict()).
 *
 * Adaptive: @p out holds the plain block when that is not larger.
 * Returns true when the 0xD2 container was used.
 */
bool encodeShardRef(const Compressor &codec, ByteSpan dict,
                    ByteSpan shard, Bytes &out);

/**
 * Decompress any shard block: plain, 0xD1 (self-contained), or 0xD2
 * (needs @p dict; fatal if the supplied dictionary is missing or of
 * the wrong length).
 */
void decodeShard(const Compressor &codec, ByteSpan block,
                 ByteSpan dict, Bytes &out);

/** Convenience overload for plain/0xD1 blocks (no external dict). */
void decodeShard(const Compressor &codec, ByteSpan block, Bytes &out);

/**
 * Serialise the page dictionary for out-of-band storage:
 *
 *   [u16 rawLen][u16 storedLen][body]
 *
 * where body is the compressed dictionary when that is smaller,
 * else the raw bytes (storedLen == rawLen means raw). Storing this
 * once per page amortises the dictionary across all of the page's
 * shards.
 */
void packDict(const Compressor &codec, ByteSpan dict, Bytes &out);

/** Recover the dictionary serialised by packDict(). */
Bytes unpackDict(const Compressor &codec, ByteSpan packed);

/**
 * Minimal same-offset slot size covering every shard block plus a
 * packed dictionary of @p packed_len bytes water-filled into the
 * slot tails. Same-offset placement already pads every DIMM to the
 * largest shard, so the dictionary rides in internal fragmentation
 * for free until that padding is exhausted; only the excess (if
 * any) grows the slot, spread evenly across DIMMs.
 */
std::uint32_t dictSlotSize(const std::vector<std::uint32_t> &shard_sizes,
                           std::uint32_t packed_len);

/**
 * Water-filled split of a packed dictionary across the page's slot
 * tails: stripe d occupies [shard_sizes[d], shard_sizes[d] +
 * stripe[d]) of DIMM d's slot, in DIMM order. A pure function of
 * (shard_sizes, packed_len), so swap-in recomputes the same split
 * from the page entry without storing per-stripe lengths.
 */
std::vector<std::uint32_t>
dictStripes(const std::vector<std::uint32_t> &shard_sizes,
            std::uint32_t packed_len);

/** Upper bound of packDict() output for a dict_bytes dictionary. */
constexpr std::size_t
packedDictBound(std::size_t dict_bytes)
{
    return 4 + dict_bytes;
}

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_DICT_HH
