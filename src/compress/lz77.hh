/**
 * @file
 * Shared LZ77 match finder.
 *
 * Produces a token stream of literals and (length, distance) matches
 * using hash-chain search. The window size and search effort are
 * configurable so the same engine backs all three codecs; Fig. 8's
 * window-truncation experiments reuse it directly.
 */

#ifndef XFM_COMPRESS_LZ77_HH
#define XFM_COMPRESS_LZ77_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "compress/compressor.hh"

namespace xfm
{
namespace compress
{

/** One LZ77 token: either a literal byte or a back-reference. */
struct Lz77Token
{
    bool isMatch;
    std::uint8_t literal;    ///< valid when !isMatch
    std::uint32_t length;    ///< valid when isMatch
    std::uint32_t distance;  ///< valid when isMatch; 1-based
};

/** Tuning knobs for the match finder. */
struct Lz77Params
{
    std::size_t windowBytes = 32 * 1024;  ///< max back-reference reach
    std::uint32_t minMatch = 3;           ///< shortest emitted match
    std::uint32_t maxMatch = 258;         ///< longest emitted match
    unsigned maxChainLength = 64;         ///< hash chain search depth
    bool lazyMatching = true;             ///< one-step lazy evaluation
};

/**
 * Run the match finder over @p input.
 *
 * Deterministic: identical inputs and params yield identical token
 * streams.
 */
std::vector<Lz77Token> lz77Tokenize(ByteSpan input,
                                    const Lz77Params &params);

/**
 * Tokenize only input[start..) while letting matches reach back
 * into the full prefix input[0..start) (shared-history streaming:
 * the prefix is indexed but produces no tokens).
 */
std::vector<Lz77Token> lz77TokenizeSuffix(ByteSpan input,
                                          const Lz77Params &params,
                                          std::size_t start);

/** Reconstruct the original bytes from a token stream. */
Bytes lz77Reconstruct(const std::vector<Lz77Token> &tokens);

/**
 * Test hooks for the match-extension kernels: the byte-at-a-time
 * reference scan and the SWAR 64-bit-at-a-time scan. Both return
 * the length of the common prefix of a and b up to @p limit and
 * must agree for every input (asserted by test_compress).
 */
std::uint32_t matchLengthReference(const std::uint8_t *a,
                                   const std::uint8_t *b,
                                   std::uint32_t limit);
std::uint32_t matchLengthFast(const std::uint8_t *a,
                              const std::uint8_t *b,
                              std::uint32_t limit);

/**
 * Allocation stats of this thread's pooled finder tables:
 * {table growths, reuses}. Steady-state tokenisation of same-sized
 * inputs must only ever bump the reuse counter.
 */
std::pair<std::uint64_t, std::uint64_t> finderTableStats();

} // namespace compress
} // namespace xfm

#endif // XFM_COMPRESS_LZ77_HH
