#include "tenant_registry.hh"

#include "common/logging.hh"

namespace xfm
{
namespace service
{

const char *
priorityClassName(PriorityClass cls)
{
    return cls == PriorityClass::LatencySensitive ? "latency"
                                                  : "batch";
}

TenantRegistry::TenantRegistry(const RegistryConfig &cfg) : cfg_(cfg)
{
    XFM_ASSERT(cfg_.maxTenants > 0, "need at least one tenant slot");
    XFM_ASSERT(cfg_.pagesPerShard > 0, "empty page-table shards");
    // Admission control bounds size() by maxTenants; reserving that
    // keeps TenantStats addresses stable, so the service may hand
    // pointers into entries to the metric registry.
    tenants_.reserve(cfg_.maxTenants);
}

TenantId
TenantRegistry::add(const TenantConfig &cfg)
{
    if (tenants_.size() >= cfg_.maxTenants) {
        warn("tenant '", cfg.name, "' rejected: no shard slot left");
        ++rejected_;
        return invalidTenant;
    }
    if (cfg.pages == 0 || cfg.pages > cfg_.pagesPerShard) {
        warn("tenant '", cfg.name, "' rejected: ", cfg.pages,
             " pages do not fit a ", cfg_.pagesPerShard,
             "-page shard");
        ++rejected_;
        return invalidTenant;
    }
    if (cfg_.totalSpmBytes
        && spm_quota_sum_ + cfg.quota.spmBytes > cfg_.totalSpmBytes) {
        warn("tenant '", cfg.name, "' rejected: SPM quota ",
             cfg.quota.spmBytes, " B oversubscribes the ",
             cfg_.totalSpmBytes, " B scratchpad");
        ++rejected_;
        return invalidTenant;
    }
    spm_quota_sum_ += cfg.quota.spmBytes;
    Entry e;
    e.cfg = cfg;
    tenants_.push_back(std::move(e));
    return static_cast<TenantId>(tenants_.size() - 1);
}

const TenantRegistry::Entry &
TenantRegistry::entry(TenantId id) const
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    return tenants_[id];
}

TenantRegistry::Entry &
TenantRegistry::entry(TenantId id)
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    return tenants_[id];
}

const TenantConfig &
TenantRegistry::config(TenantId id) const
{
    return entry(id).cfg;
}

std::uint64_t
TenantRegistry::basePage(TenantId id) const
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    return static_cast<std::uint64_t>(id) * cfg_.pagesPerShard;
}

std::uint64_t
TenantRegistry::farPages(TenantId id) const
{
    return entry(id).farPages;
}

bool
TenantRegistry::underFarQuota(TenantId id) const
{
    const Entry &e = entry(id);
    return e.farPages < e.cfg.quota.maxFarPages;
}

void
TenantRegistry::noteFarPages(TenantId id, std::int64_t delta)
{
    Entry &e = entry(id);
    XFM_ASSERT(delta >= 0
                   || e.farPages >= static_cast<std::uint64_t>(-delta),
               "far-page accounting underflow");
    e.farPages = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(e.farPages) + delta);
}

std::uint64_t
TenantRegistry::storedBytes(TenantId id) const
{
    return entry(id).storedBytes;
}

void
TenantRegistry::noteStoredBytes(TenantId id, std::int64_t delta)
{
    Entry &e = entry(id);
    XFM_ASSERT(delta >= 0
                   || e.storedBytes
                          >= static_cast<std::uint64_t>(-delta),
               "stored-bytes accounting underflow");
    e.storedBytes = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(e.storedBytes) + delta);
}

bool
TenantRegistry::tryChargeSpm(TenantId id, std::uint64_t bytes)
{
    Entry &e = entry(id);
    if (e.spmCharged + bytes > e.cfg.quota.spmBytes)
        return false;
    e.spmCharged += bytes;
    return true;
}

void
TenantRegistry::releaseSpm(TenantId id, std::uint64_t bytes)
{
    Entry &e = entry(id);
    XFM_ASSERT(e.spmCharged >= bytes, "SPM accounting underflow");
    e.spmCharged -= bytes;
}

std::uint64_t
TenantRegistry::spmCharged(TenantId id) const
{
    return entry(id).spmCharged;
}

TenantStats &
TenantRegistry::stats(TenantId id)
{
    return entry(id).stats;
}

const TenantStats &
TenantRegistry::stats(TenantId id) const
{
    return entry(id).stats;
}

} // namespace service
} // namespace xfm
