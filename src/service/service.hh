/**
 * @file
 * FarMemoryService: the multi-tenant far-memory service layer.
 *
 * One service instance owns the shared XFM memory system (backend +
 * NMA-equipped DIMMs) and serves N concurrent tenants, mirroring the
 * datacenter deployments the paper targets (Sec. 2.1): every job on
 * a host shares the machine's compressed pool and accelerator, but
 * runs its own reclaim policy and gets its own QoS guarantees.
 *
 * Wiring per tenant:
 *
 *   controller (kstaled | senpai)
 *        |            selects cold pages / reacts to pressure
 *   TenantBackend
 *        |            quota checks, shard translation, stats
 *   QosArbiter       (offload-eligible ops only)
 *        |            class-aware weighted dispatch per tREFI
 *   xfmsys::XfmBackend  ->  NMA DIMMs (SPM partitioned by class)
 */

#ifndef XFM_SERVICE_SERVICE_HH
#define XFM_SERVICE_SERVICE_HH

#include <memory>
#include <vector>

#include "health/shed.hh"
#include "obs/registry.hh"
#include "obs/tracer.hh"
#include "service/qos_arbiter.hh"
#include "service/tenant_backend.hh"
#include "service/tenant_registry.hh"
#include "sfm/controller.hh"
#include "sfm/senpai.hh"

namespace xfm
{
namespace service
{

/** SPM partition tags per priority class. */
constexpr std::uint32_t latencySpmPartition = 0;  ///< uncapped
constexpr std::uint32_t batchSpmPartition = 1;    ///< capped

/** Configuration of the whole service. */
struct ServiceConfig
{
    RegistryConfig registry;
    QosArbiterConfig arbiter;
    /**
     * The shared XFM memory system. localPages may be left 0; the
     * service then provisions maxTenants * pagesPerShard pages.
     */
    xfmsys::XfmSystemConfig system;
    /**
     * Total SPM bytes (across DIMMs) the batch class may occupy;
     * batch offloads beyond this fall back to CPU inside the device.
     * 0 leaves the batch partition uncapped.
     */
    std::uint64_t batchSpmCapBytes = 0;
    /**
     * Overload shedding watermarks (disabled by default). While the
     * arbiter backlog or SPM occupancy exceeds the high watermarks,
     * batch-class swap-outs are rejected with Rejected{Overload} and
     * batch swap-ins run on the CPU path; latency tenants are never
     * shed. Hysteresis disengages only below the low watermarks.
     */
    health::ShedConfig shed;

    /**
     * Three-tier hierarchy over the shared backend. When enabled,
     * every tenant's shard becomes a TierManager page group carrying
     * that tenant's TenantConfig::tierPolicy, and tenant accounting
     * (stored bytes, far pages, dfm counters) tracks scan-driven
     * XFM -> DFM spills through the transition hook.
     */
    sfm::TierConfig tier{};
};

/**
 * Multi-tenant far-memory service over one shared XFM backend.
 */
class FarMemoryService : public SimObject
{
  public:
    FarMemoryService(std::string name, EventQueue &eq,
                     const ServiceConfig &cfg);

    /**
     * Admit a tenant and wire its controller.
     *
     * @return tenant id, or invalidTenant if admission control
     *         rejected it.
     */
    TenantId addTenant(const TenantConfig &cfg);

    /** Start refresh, the arbiter, and every tenant controller. */
    void start();

    /**
     * Tenant @p id touched shard-local @p page.
     *
     * @retval true local hit; false -> demand fault taken.
     */
    bool access(TenantId id, sfm::VirtPage page);

    /** Data plane, shard-local page numbers. */
    void writePage(TenantId id, sfm::VirtPage page, ByteSpan data);
    Bytes readPage(TenantId id, sfm::VirtPage page) const;

    TenantRegistry &registry() { return registry_; }
    const TenantRegistry &registry() const { return registry_; }
    QosArbiter &arbiter() { return arbiter_; }
    xfmsys::XfmBackend &backend() { return backend_; }
    TenantBackend &tenantBackend(TenantId id);

    /** Tier hierarchy governor; null when `tier.enabled = 0`. */
    sfm::TierManager *tierManager() { return tiers_.get(); }
    const sfm::TierManager *tierManager() const
    {
        return tiers_.get();
    }

    std::size_t numTenants() const { return tenants_.size(); }
    const ServiceConfig &config() const { return cfg_; }

    /** The shared backend's fault injector (configured via
     *  cfg.system.faults; disarmed by default). */
    const fault::FaultInjector &faultInjector() const
    {
        return backend_.faultInjector();
    }

    /**
     * The service-wide metric registry. The constructor registers
     * backend, fault-site, arbiter, and per-DIMM metrics; every
     * addTenant() adds that tenant's counters, latency histogram,
     * and arbiter lane under `<name()>.tenantN.*`.
     */
    obs::MetricRegistry &metrics() { return metrics_; }
    const obs::MetricRegistry &metrics() const { return metrics_; }

    /** The service-wide overload shedder (shared by all tenants). */
    health::OverloadShedder &shedder() { return shedder_; }
    const health::OverloadShedder &shedder() const
    {
        return shedder_;
    }

    /** Attach a span tracer to the shared backend, the shedder, the
     *  arbiter, and the tier governor (null detaches). */
    void
    setTracer(obs::Tracer *t)
    {
        backend_.setTracer(t);
        shedder_.setTracer(t);
        arbiter_.setTracer(t);
        if (tiers_)
            tiers_->setTracer(t);
    }

  private:
    /** Register one admitted tenant's metrics (from addTenant). */
    void registerTenantMetrics(TenantId id);

    /** Reconcile tenant accounting after a tier transition. */
    void onTierTransition(sfm::VirtPage page, sfm::Tier from,
                          sfm::Tier to, std::uint32_t freed,
                          bool internal);

    struct Tenant
    {
        std::unique_ptr<TenantBackend> backend;
        std::unique_ptr<sfm::SfmController> kstaled;
        std::unique_ptr<sfm::SenpaiController> senpai;
        /** Per-tenant promotions/min meter (paper Sec. 2.1). */
        std::unique_ptr<workload::PromotionTracker> promotions;
    };

    ServiceConfig cfg_;
    TenantRegistry registry_;
    xfmsys::XfmBackend backend_;
    /** Tier governor over the shared backend (tiering on only). */
    std::unique_ptr<sfm::TierManager> tiers_;
    QosArbiter arbiter_;
    health::OverloadShedder shedder_;
    std::vector<Tenant> tenants_;
    obs::MetricRegistry metrics_;
};

} // namespace service
} // namespace xfm

#endif // XFM_SERVICE_SERVICE_HH
