/**
 * @file
 * TenantBackend: per-tenant view of the shared XFM backend.
 *
 * Each tenant addresses pages [0, pages) of its own shard; the
 * adapter translates them to the global range the shared
 * xfmsys::XfmBackend manages and enforces the tenant's quotas on the
 * way through:
 *
 *  - far-page quota exceeded  -> the swap-out is rejected outright
 *    (the tenant keeps the page local and is counted in
 *    quotaRejects);
 *  - SPM staging quota exceeded -> the operation degrades to the CPU
 *    path (allow_offload = false) instead of queueing on the shared
 *    accelerator, so one tenant's burst cannot crowd others out of
 *    the scratchpad.
 *
 * Offload-eligible operations are paced through the QosArbiter; the
 * CPU-only ones (demand faults, degraded operations) bypass it, as
 * they never contend for NMA slots.
 */

#ifndef XFM_SERVICE_TENANT_BACKEND_HH
#define XFM_SERVICE_TENANT_BACKEND_HH

#include "health/shed.hh"
#include "service/qos_arbiter.hh"
#include "service/tenant_registry.hh"
#include "workload/promotion_tracker.hh"
#include "xfm/xfm_backend.hh"

namespace xfm
{
namespace service
{

/**
 * SfmBackend adapter gating one tenant's traffic into the shared
 * backend. The tenant's controller (kstaled or senpai) talks to this
 * object exactly as it would to a private backend.
 */
class TenantBackend : public sfm::SfmBackend
{
  public:
    /**
     * @param arbiter pacing for offload-eligible submissions; may be
     *        null (direct dispatch) for unit tests.
     * @param partition SPM partition tag for this tenant's offloads
     *        (the service maps priority class to partition).
     */
    TenantBackend(TenantId id, TenantRegistry &registry,
                  xfmsys::XfmBackend &shared, QosArbiter *arbiter,
                  std::uint32_t partition);

    /**
     * Attach the service-wide overload shedder (may be null). Each
     * submission then refreshes the shedder's signals (arbiter
     * backlog, SPM occupancy) and obeys its decision: batch
     * swap-outs are rejected with Rejected{Overload}, batch swap-ins
     * are down-tiered to the CPU path, latency tenants pass through.
     */
    void setShedder(health::OverloadShedder *shedder,
                    bool latency_class)
    {
        shedder_ = shedder;
        latency_class_ = latency_class;
    }

    /**
     * Interpose a routing backend (the service's TierManager)
     * between this adapter and the shared device. Swaps, residence
     * queries, and access notes then flow through @p route (which
     * itself forwards XFM-tier legs to the shared backend); null
     * restores direct dispatch.
     */
    void
    setRoute(sfm::SfmBackend *route)
    {
        route_ = route ? route : &shared_;
    }

    /** Feed successful promotions into @p tracker (may be null). */
    void
    setPromotionTracker(workload::PromotionTracker *tracker)
    {
        promotions_ = tracker;
    }

    using SfmBackend::swapOut;  // keep the 2-arg convenience overload

    void swapOut(sfm::VirtPage page, sfm::SwapCallback done) override;
    void swapOut(sfm::VirtPage page, bool allow_offload,
                 sfm::SwapCallback done) override;
    void swapIn(sfm::VirtPage page, bool allow_offload,
                sfm::SwapCallback done) override;
    sfm::PageState pageState(sfm::VirtPage page) const override;
    void compact() override;
    std::uint64_t farPageCount() const override;
    std::uint64_t storedCompressedBytes() const override;
    const sfm::BackendStats &stats() const override { return stats_; }
    void
    noteAccess(sfm::VirtPage page, Tick now) override
    {
        route_->noteAccess(global(page), now);
    }

    TenantId id() const { return id_; }

    /** Data-plane helpers (shard-local page numbers). */
    void writePage(sfm::VirtPage page, ByteSpan data);
    Bytes readPage(sfm::VirtPage page) const;

  private:
    sfm::VirtPage global(sfm::VirtPage page) const;
    sfm::VirtPage local(sfm::VirtPage page) const;
    void submit(bool is_swap_out, sfm::VirtPage global_page,
                bool allow_offload, sfm::SwapCallback done);

    /** Consult the shedder for one submission; returns the verdict
     *  (Admit when no shedder is attached or shedding is off). */
    health::ShedDecision shedDecision(bool is_swap_out);

    TenantId id_;
    TenantRegistry &registry_;
    xfmsys::XfmBackend &shared_;
    /** Dispatch target: the shared backend directly, or the
     *  service's TierManager when tiering is on. */
    sfm::SfmBackend *route_;
    QosArbiter *arbiter_;
    std::uint32_t partition_;
    health::OverloadShedder *shedder_ = nullptr;
    bool latency_class_ = false;
    workload::PromotionTracker *promotions_ = nullptr;

    sfm::BackendStats stats_;  ///< this tenant's slice of the traffic
};

} // namespace service
} // namespace xfm

#endif // XFM_SERVICE_TENANT_BACKEND_HH
