#include "service.hh"

#include "common/logging.hh"

namespace xfm
{
namespace service
{

namespace
{

/** Fill in derived provisioning before the backend is built. */
ServiceConfig
provisioned(ServiceConfig cfg)
{
    if (cfg.system.localPages == 0)
        cfg.system.localPages = cfg.registry.maxTenants
                                * cfg.registry.pagesPerShard;
    return cfg;
}

} // namespace

FarMemoryService::FarMemoryService(std::string name, EventQueue &eq,
                                   const ServiceConfig &cfg)
    : SimObject(std::move(name), eq), cfg_(provisioned(cfg)),
      registry_(cfg_.registry),
      backend_(this->name() + ".backend", eq, cfg_.system),
      arbiter_(this->name() + ".arbiter", eq, cfg_.arbiter),
      shedder_(cfg_.shed)
{
    if (cfg_.batchSpmCapBytes > 0) {
        // The cap is fleet-wide; each DIMM stages an equal shard of
        // every offloaded page, so split it evenly.
        const std::size_t per_dimm =
            cfg_.batchSpmCapBytes / cfg_.system.numDimms;
        for (std::size_t d = 0; d < cfg_.system.numDimms; ++d)
            backend_.driver(d).device().setSpmPartitionCap(
                batchSpmPartition, per_dimm);
    }
    if (cfg_.tier.enabled) {
        tiers_ = std::make_unique<sfm::TierManager>(
            this->name() + ".tiers", eq, cfg_.tier, backend_,
            cfg_.system.localPages);
        tiers_->setTransitionHook(
            [this](sfm::VirtPage page, sfm::Tier from, sfm::Tier to,
                   std::uint32_t freed, bool internal) {
                onTierTransition(page, from, to, freed, internal);
            });
        tiers_->registerMetrics(metrics_);
    }
    // Lane stats addresses must survive later addTenant calls; the
    // registry already reserves its own entries.
    arbiter_.reserveLanes(cfg_.registry.maxTenants);
    // Every RFM the refresh controller issues destroys NMA service
    // capacity; feed the loss into the arbiter with the dominant
    // activation source so the defense layer can attribute it.
    backend_.refresh().addRfmListener(
        [this](std::uint32_t, std::uint32_t, std::uint32_t source,
               std::uint32_t stolen) {
            const TenantId culprit =
                source == dram::RefreshController::hostSource
                    ? invalidTenant
                    : static_cast<TenantId>(source);
            arbiter_.noteRfmSteal(stolen, culprit);
        });
    backend_.registerMetrics(metrics_);
    arbiter_.registerMetrics(metrics_);
    shedder_.registerMetrics(metrics_, this->name() + ".shed");
    metrics_.derived(this->name() + ".rejectedAdmissions",
                     [this] {
                         return static_cast<double>(
                             registry_.rejectedAdmissions());
                     },
                     "tenants turned away");
}

TenantId
FarMemoryService::addTenant(const TenantConfig &cfg)
{
    const TenantId id = registry_.add(cfg);
    if (id == invalidTenant)
        return id;

    const std::uint32_t partition =
        cfg.cls == PriorityClass::Batch ? batchSpmPartition
                                        : latencySpmPartition;
    Tenant t;
    t.backend = std::make_unique<TenantBackend>(
        id, registry_, backend_, &arbiter_, partition);
    t.backend->setShedder(
        &shedder_, cfg.cls == PriorityClass::LatencySensitive);
    t.promotions = std::make_unique<workload::PromotionTracker>(
        cfg.pages * pageBytes);
    t.backend->setPromotionTracker(t.promotions.get());
    if (tiers_) {
        // The tenant's shard becomes its page group: demotion
        // routing follows the tenant's own policy, isolated from
        // its neighbours'.
        t.backend->setRoute(tiers_.get());
        tiers_->assignGroup(registry_.basePage(id), cfg.pages, id);
        tiers_->setGroupPolicy(id, cfg.tierPolicy);
    }
    const std::string base = name() + "." + cfg.name;
    if (cfg.policy == ControlPolicy::Kstaled) {
        t.kstaled = std::make_unique<sfm::SfmController>(
            base + ".kstaled", eventq(), cfg.kstaled, *t.backend,
            cfg.pages);
    } else {
        t.senpai = std::make_unique<sfm::SenpaiController>(
            base + ".senpai", eventq(), cfg.senpai, *t.backend,
            cfg.pages);
    }
    arbiter_.addTenant(id, cfg.cls, cfg.weight,
                       cfg.quota.offloadSlotsPerTrefi);
    if (t.kstaled)
        t.kstaled->registerMetrics(metrics_);
    if (t.senpai)
        t.senpai->registerMetrics(metrics_);
    registerTenantMetrics(id);
    tenants_.push_back(std::move(t));
    return id;
}

void
FarMemoryService::registerTenantMetrics(TenantId id)
{
    const TenantConfig &cfg = registry_.config(id);
    // Ids (not names) key the namespace: tenant names need not be
    // unique, metric names must be.
    const std::string p =
        name() + ".tenant" + std::to_string(id) + ".";
    const std::string who = std::string(priorityClassName(cfg.cls))
        + "/" + cfg.name;
    TenantStats &ts = registry_.stats(id);
    metrics_.counter(p + "accesses", &ts.accesses,
                     who + ": application page touches");
    metrics_.counter(p + "localHits", &ts.localHits,
                     "served from local memory");
    metrics_.counter(p + "demandFaults", &ts.demandFaults,
                     "blocked on swap-in");
    metrics_.counter(p + "swapOuts", &ts.swapOuts, "pages demoted");
    metrics_.counter(p + "swapIns", &ts.swapIns, "pages promoted");
    metrics_.counter(p + "nmaOps", &ts.nmaOps,
                     "swap ops served by the NMA");
    metrics_.counter(p + "cpuOps", &ts.cpuOps,
                     "swap ops on the CPU path");
    metrics_.counter(p + "quotaRejects", &ts.quotaRejects,
                     "far-page quota hits");
    metrics_.counter(p + "degradedToCpu", &ts.degradedToCpu,
                     "SPM quota degrades");
    metrics_.counter(p + "nmaFallbacks", &ts.nmaFallbacks,
                     "offload-eligible ops that fell back");
    metrics_.counter(p + "offloadRetries", &ts.offloadRetries,
                     "driver re-submissions consumed");
    metrics_.counter(p + "faultedOps", &ts.faultedOps,
                     "swap ops that failed");
    metrics_.counter(p + "shedRejects", &ts.shedRejects,
                     "swap-outs refused while shedding");
    metrics_.counter(p + "shedDownTiers", &ts.shedDownTiers,
                     "swap-ins down-tiered while shedding");
    if (cfg_.arbiter.abuseEnabled) {
        metrics_.counter(p + "abuseRejects", &ts.abuseRejects,
                         "swap-outs refused while throttled");
        metrics_.counter(p + "abuseDownTiers", &ts.abuseDownTiers,
                         "swap-ins down-tiered while throttled");
    }
    metrics_.derived(p + "nmaFraction",
                     [&ts] { return ts.nmaFraction(); },
                     "NMA share of swap ops");
    metrics_.derived(p + "farPages",
                     [this, id] {
                         return static_cast<double>(
                             registry_.farPages(id));
                     },
                     "pages held far");
    metrics_.derived(p + "storedBytes",
                     [this, id] {
                         return static_cast<double>(
                             registry_.storedBytes(id));
                     },
                     "compressed bytes stored");
    metrics_.counter(p + "dfmOps", &ts.dfmOps,
                     "swap ops served by the DFM spill tier");
    metrics_.counter(p + "dfmSpills", &ts.dfmSpills,
                     "page transitions into the spill tier");
    metrics_.counter(p + "dfmReturns", &ts.dfmReturns,
                     "page transitions out of the spill tier");
    metrics_.derived(p + "dfmPages",
                     [&ts] {
                         return static_cast<double>(ts.dfmSpills
                                                    - ts.dfmReturns);
                     },
                     "pages currently in the spill tier");
    metrics_.derived(p + "promotionRate",
                     [this, id] {
                         return tenants_[id].promotions->rate(
                             curTick());
                     },
                     "fraction of shard capacity promoted per min");
    metrics_.histogram(p + "faultLatencyNs", &ts.faultLatencyNs,
                       "demand swap-in service latency");
    arbiter_.registerLaneMetrics(metrics_,
                                 id, name() + ".tenant"
                                 + std::to_string(id));
}

void
FarMemoryService::onTierTransition(sfm::VirtPage page,
                                   sfm::Tier from, sfm::Tier to,
                                   std::uint32_t freed, bool internal)
{
    const TenantId id = static_cast<TenantId>(
        page / cfg_.registry.pagesPerShard);
    if (id >= registry_.size())
        return;  // page outside any admitted tenant's shard
    TenantStats &ts = registry_.stats(id);
    if (to == sfm::Tier::Dfm)
        ++ts.dfmSpills;
    if (from == sfm::Tier::Dfm)
        ++ts.dfmReturns;
    // Application-driven legs are already accounted in the
    // TenantBackend callbacks; only internal scan transitions need
    // reconciling here. An XFM -> DFM spill passes through NEAR:
    // the first hop releases the compressed bytes (and, if the link
    // leg then fails, legitimately returns the page to NEAR, hence
    // the far-page decrement); the second hop re-counts it far.
    if (!internal)
        return;
    if (from == sfm::Tier::Xfm) {
        registry_.noteStoredBytes(
            id, -static_cast<std::int64_t>(freed));
        if (to == sfm::Tier::Near)
            registry_.noteFarPages(id, -1);
    }
    if (from == sfm::Tier::Near && to == sfm::Tier::Dfm)
        registry_.noteFarPages(id, 1);
}

void
FarMemoryService::start()
{
    backend_.start();
    if (tiers_)
        tiers_->start();
    arbiter_.start();
    for (auto &t : tenants_) {
        if (t.kstaled)
            t.kstaled->start();
        if (t.senpai)
            t.senpai->start();
    }
}

bool
FarMemoryService::access(TenantId id, sfm::VirtPage page)
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    TenantStats &ts = registry_.stats(id);
    ++ts.accesses;
    Tenant &t = tenants_[id];
    const bool hit = t.kstaled ? t.kstaled->recordAccess(page)
                               : t.senpai->recordAccess(page);
    if (hit)
        ++ts.localHits;
    else
        ++ts.demandFaults;
    return hit;
}

void
FarMemoryService::writePage(TenantId id, sfm::VirtPage page,
                            ByteSpan data)
{
    tenantBackend(id).writePage(page, data);
}

Bytes
FarMemoryService::readPage(TenantId id, sfm::VirtPage page) const
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    return tenants_[id].backend->readPage(page);
}

TenantBackend &
FarMemoryService::tenantBackend(TenantId id)
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    return *tenants_[id].backend;
}

} // namespace service
} // namespace xfm
