#include "service.hh"

#include "common/logging.hh"

namespace xfm
{
namespace service
{

namespace
{

/** Fill in derived provisioning before the backend is built. */
ServiceConfig
provisioned(ServiceConfig cfg)
{
    if (cfg.system.localPages == 0)
        cfg.system.localPages = cfg.registry.maxTenants
                                * cfg.registry.pagesPerShard;
    return cfg;
}

} // namespace

FarMemoryService::FarMemoryService(std::string name, EventQueue &eq,
                                   const ServiceConfig &cfg)
    : SimObject(std::move(name), eq), cfg_(provisioned(cfg)),
      registry_(cfg_.registry),
      backend_(this->name() + ".backend", eq, cfg_.system),
      arbiter_(this->name() + ".arbiter", eq, cfg_.arbiter)
{
    if (cfg_.batchSpmCapBytes > 0) {
        // The cap is fleet-wide; each DIMM stages an equal shard of
        // every offloaded page, so split it evenly.
        const std::size_t per_dimm =
            cfg_.batchSpmCapBytes / cfg_.system.numDimms;
        for (std::size_t d = 0; d < cfg_.system.numDimms; ++d)
            backend_.driver(d).device().setSpmPartitionCap(
                batchSpmPartition, per_dimm);
    }
}

TenantId
FarMemoryService::addTenant(const TenantConfig &cfg)
{
    const TenantId id = registry_.add(cfg);
    if (id == invalidTenant)
        return id;

    const std::uint32_t partition =
        cfg.cls == PriorityClass::Batch ? batchSpmPartition
                                        : latencySpmPartition;
    Tenant t;
    t.backend = std::make_unique<TenantBackend>(
        id, registry_, backend_, &arbiter_, partition);
    const std::string base = name() + "." + cfg.name;
    if (cfg.policy == ControlPolicy::Kstaled) {
        t.kstaled = std::make_unique<sfm::SfmController>(
            base + ".kstaled", eventq(), cfg.kstaled, *t.backend,
            cfg.pages);
    } else {
        t.senpai = std::make_unique<sfm::SenpaiController>(
            base + ".senpai", eventq(), cfg.senpai, *t.backend,
            cfg.pages);
    }
    arbiter_.addTenant(id, cfg.cls, cfg.weight,
                       cfg.quota.offloadSlotsPerTrefi);
    tenants_.push_back(std::move(t));
    return id;
}

void
FarMemoryService::start()
{
    backend_.start();
    arbiter_.start();
    for (auto &t : tenants_) {
        if (t.kstaled)
            t.kstaled->start();
        if (t.senpai)
            t.senpai->start();
    }
}

bool
FarMemoryService::access(TenantId id, sfm::VirtPage page)
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    TenantStats &ts = registry_.stats(id);
    ++ts.accesses;
    Tenant &t = tenants_[id];
    const bool hit = t.kstaled ? t.kstaled->recordAccess(page)
                               : t.senpai->recordAccess(page);
    if (hit)
        ++ts.localHits;
    else
        ++ts.demandFaults;
    return hit;
}

void
FarMemoryService::writePage(TenantId id, sfm::VirtPage page,
                            ByteSpan data)
{
    tenantBackend(id).writePage(page, data);
}

Bytes
FarMemoryService::readPage(TenantId id, sfm::VirtPage page) const
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    return tenants_[id].backend->readPage(page);
}

TenantBackend &
FarMemoryService::tenantBackend(TenantId id)
{
    XFM_ASSERT(id < tenants_.size(), "unknown tenant id ", id);
    return *tenants_[id].backend;
}

stats::Group
FarMemoryService::tenantStatsGroup(TenantId id) const
{
    const TenantConfig &cfg = registry_.config(id);
    const TenantStats &ts = registry_.stats(id);
    const ArbiterLaneStats &lane = arbiter_.laneStats(id);

    stats::Group g(std::string(priorityClassName(cfg.cls)) + "/"
                   + cfg.name);
    g.add("accesses", ts.accesses, "application page touches");
    g.add("localHits", ts.localHits, "served from local memory");
    g.add("demandFaults", ts.demandFaults, "blocked on swap-in");
    g.add("swapOuts", ts.swapOuts, "pages demoted");
    g.add("swapIns", ts.swapIns, "pages promoted");
    g.add("nmaOps", ts.nmaOps, "swap ops served by the NMA");
    g.add("cpuOps", ts.cpuOps, "swap ops on the CPU path");
    g.add("nmaFraction", ts.nmaFraction(), "NMA share of swap ops");
    g.add("quotaRejects", ts.quotaRejects, "far-page quota hits");
    g.add("degradedToCpu", ts.degradedToCpu, "SPM quota degrades");
    g.add("nmaFallbacks", ts.nmaFallbacks,
          "offload-eligible ops that fell back to the CPU");
    g.add("offloadRetries", ts.offloadRetries,
          "driver re-submissions consumed");
    g.add("faultedOps", ts.faultedOps, "swap ops that failed");
    g.add("farPages", registry_.farPages(id), "pages held far");
    g.add("storedBytes", registry_.storedBytes(id),
          "compressed bytes stored");
    g.add("faultP50Ns", ts.faultLatencyNs.percentile(0.50),
          "median demand-fault latency");
    g.add("faultP99Ns", ts.faultLatencyNs.percentile(0.99),
          "tail demand-fault latency");
    g.add("arbiterWaitNs", lane.waitNs.mean(),
          "mean offload queueing delay");
    return g;
}

} // namespace service
} // namespace xfm
