#include "tenant_backend.hh"

#include "common/logging.hh"

namespace xfm
{
namespace service
{

TenantBackend::TenantBackend(TenantId id, TenantRegistry &registry,
                             xfmsys::XfmBackend &shared,
                             QosArbiter *arbiter,
                             std::uint32_t partition)
    : id_(id), registry_(registry), shared_(shared),
      route_(&shared), arbiter_(arbiter), partition_(partition)
{
    const std::uint64_t end =
        registry_.basePage(id_) + registry_.config(id_).pages;
    XFM_ASSERT(end <= shared_.config().localPages,
               "tenant shard exceeds the shared backend's page table");
}

sfm::VirtPage
TenantBackend::global(sfm::VirtPage page) const
{
    XFM_ASSERT(page < registry_.config(id_).pages,
               "page ", page, " outside tenant ", id_, "'s shard");
    return registry_.basePage(id_) + page;
}

sfm::VirtPage
TenantBackend::local(sfm::VirtPage page) const
{
    return page - registry_.basePage(id_);
}

health::ShedDecision
TenantBackend::shedDecision(bool is_swap_out)
{
    if (!shedder_ || !shedder_->enabled())
        return health::ShedDecision::Admit;
    // Refresh the pressure signals at the admission point itself so
    // the hysteresis state reflects this very submission's view.
    shedder_->observe(arbiter_ ? arbiter_->queued() : 0,
                      shared_.spmOccupancyFraction(),
                      shared_.curTick());
    return shedder_->decide(latency_class_, is_swap_out);
}

void
TenantBackend::submit(bool is_swap_out, sfm::VirtPage global_page,
                      bool allow_offload, sfm::SwapCallback done)
{
    auto run = [this, is_swap_out, global_page, allow_offload,
                done = std::move(done)]() mutable {
        // XFM-tier legs land on the shared device whichever route is
        // installed, so the partition tag is set either way.
        shared_.setOffloadPartition(partition_);
        if (is_swap_out)
            route_->swapOut(global_page, allow_offload,
                            std::move(done));
        else
            route_->swapIn(global_page, allow_offload,
                           std::move(done));
    };
    // Only offload-eligible work contends for NMA slots; CPU-path
    // operations (demand faults, degraded ops) dispatch immediately.
    if (allow_offload && arbiter_)
        arbiter_->enqueue(id_, std::move(run));
    else
        run();
}

void
TenantBackend::swapOut(sfm::VirtPage page, sfm::SwapCallback done)
{
    swapOut(page, true, std::move(done));
}

void
TenantBackend::swapOut(sfm::VirtPage page, bool allow_offload,
                       sfm::SwapCallback done)
{
    const sfm::VirtPage g = global(page);
    TenantStats &ts = registry_.stats(id_);

    // An abuse-throttled tenant loses demotion service entirely: its
    // refresh pressure already taxed everyone else's slots, so no new
    // far-memory work is accepted until the cooldown clears.
    if (arbiter_ && arbiter_->abuseThrottled(id_)) {
        ++ts.abuseRejects;
        ++stats_.rejectedSwapOuts;
        sfm::SwapOutcome out;
        out.page = page;
        out.rejected = sfm::RejectReason::AbuseThrottle;
        out.completed = shared_.curTick();
        if (done)
            done(out);
        return;
    }

    // Overload shedding precedes every other check: while the shared
    // path is saturated, a batch swap-out is refused before it can
    // consume quota bookkeeping or an arbiter slot. The page simply
    // stays local; the controller retries on a later pass.
    if (shedDecision(true) == health::ShedDecision::Reject) {
        ++ts.shedRejects;
        ++stats_.rejectedSwapOuts;
        sfm::SwapOutcome out;
        out.page = page;
        out.rejected = sfm::RejectReason::Overload;
        out.completed = shared_.curTick();
        if (done)
            done(out);
        return;
    }

    if (!registry_.underFarQuota(id_)) {
        ++ts.quotaRejects;
        ++stats_.rejectedSwapOuts;
        sfm::SwapOutcome out;
        out.page = page;
        out.rejected = sfm::RejectReason::QuotaFarPages;
        out.completed = shared_.curTick();
        if (done)
            done(out);
        return;
    }

    // SPM staging quota: an offloaded compression stages up to a
    // whole page of output in the scratchpad. Over quota -> the CPU
    // compresses instead (degrade, don't crowd the shared SPM).
    bool charged = false;
    if (allow_offload) {
        charged = registry_.tryChargeSpm(id_, pageBytes);
        if (!charged) {
            allow_offload = false;
            ++ts.degradedToCpu;
        }
    }

    registry_.noteFarPages(id_, 1);  // counts in-flight swap-outs

    auto cb = [this, charged, allow_offload, done = std::move(done)](
                  const sfm::SwapOutcome &o) {
        TenantStats &ts = registry_.stats(id_);
        if (charged)
            registry_.releaseSpm(id_, pageBytes);
        ts.offloadRetries += o.retries;
        sfm::SwapOutcome out = o;
        out.page = local(o.page);
        if (o.success) {
            ++stats_.swapOuts;
            ++ts.swapOuts;
            if (o.servedTier == sfm::Tier::Dfm) {
                // Spill-tier demotion: no compression, no NMA; the
                // outcome carries compressedSize 0 so stored-bytes
                // accounting stays symmetric with the swap-in side.
                ++ts.dfmOps;
                ++stats_.cpuSwapOuts;
                ++ts.cpuOps;
            } else if (o.usedCpu) {
                ++stats_.cpuSwapOuts;
                ++ts.cpuOps;
                if (allow_offload)
                    ++ts.nmaFallbacks;
            } else {
                ++ts.nmaOps;
            }
            registry_.noteStoredBytes(id_, o.compressedSize);
        } else {
            registry_.noteFarPages(id_, -1);
            ++stats_.rejectedSwapOuts;
            ++ts.faultedOps;
        }
        if (done)
            done(out);
    };
    submit(true, g, allow_offload, std::move(cb));
}

void
TenantBackend::swapIn(sfm::VirtPage page, bool allow_offload,
                      sfm::SwapCallback done)
{
    const sfm::VirtPage g = global(page);
    TenantStats &ts = registry_.stats(id_);

    // Throttled tenants keep making progress on faults — blocking a
    // swap-in would wedge the application — but lose the offload
    // privilege so they stop contending for NMA slots.
    if (allow_offload && arbiter_
        && arbiter_->abuseThrottled(id_)) {
        allow_offload = false;
        ++ts.abuseDownTiers;
    }

    // A swap-in must complete (the tenant is faulting on the page),
    // so overload never rejects it — batch-class swap-ins are
    // down-tiered to the CPU path instead, freeing NMA slots for the
    // latency class while still making progress.
    if (allow_offload
        && shedDecision(false) == health::ShedDecision::DownTier) {
        allow_offload = false;
        ++ts.shedDownTiers;
    }

    // Offloaded decompression stages the raw page in the SPM.
    bool charged = false;
    if (allow_offload) {
        charged = registry_.tryChargeSpm(id_, pageBytes);
        if (!charged) {
            allow_offload = false;
            ++ts.degradedToCpu;
        }
    }

    const Tick start = shared_.curTick();
    const bool demand = !allow_offload;
    auto cb = [this, charged, start, demand, allow_offload,
               done = std::move(done)](const sfm::SwapOutcome &o) {
        TenantStats &ts = registry_.stats(id_);
        if (charged)
            registry_.releaseSpm(id_, pageBytes);
        ts.offloadRetries += o.retries;
        sfm::SwapOutcome out = o;
        out.page = local(o.page);
        if (o.success) {
            ++stats_.swapIns;
            ++ts.swapIns;
            if (o.servedTier == sfm::Tier::Dfm) {
                ++ts.dfmOps;
                ++stats_.cpuSwapIns;
                ++ts.cpuOps;
            } else if (o.usedCpu) {
                ++stats_.cpuSwapIns;
                ++ts.cpuOps;
                if (allow_offload)
                    ++ts.nmaFallbacks;
            } else {
                ++ts.nmaOps;
            }
            registry_.noteFarPages(id_, -1);
            registry_.noteStoredBytes(
                id_, -static_cast<std::int64_t>(o.compressedSize));
            if (promotions_)
                promotions_->recordPromotion(shared_.curTick(),
                                             pageBytes);
            if (demand)
                ts.faultLatencyNs.sample(
                    ticksToNs(o.completed - start));
        } else {
            ++ts.faultedOps;
        }
        if (done)
            done(out);
    };
    submit(false, g, allow_offload, std::move(cb));
}

sfm::PageState
TenantBackend::pageState(sfm::VirtPage page) const
{
    // Must go through the route: a DFM-tier page is Local as far as
    // the shared compressed backend knows (its frame was never
    // scrambled), but the TierManager reports it Far.
    return route_->pageState(global(page));
}

void
TenantBackend::compact()
{
    route_->compact();
}

std::uint64_t
TenantBackend::farPageCount() const
{
    return registry_.farPages(id_);
}

std::uint64_t
TenantBackend::storedCompressedBytes() const
{
    return registry_.storedBytes(id_);
}

void
TenantBackend::writePage(sfm::VirtPage page, ByteSpan data)
{
    shared_.writePage(global(page), data);
}

Bytes
TenantBackend::readPage(sfm::VirtPage page) const
{
    return shared_.readPage(global(page));
}

} // namespace service
} // namespace xfm
