/**
 * @file
 * Tenant identity, priority classes, quotas, and per-tenant service
 * statistics for the multi-tenant far-memory service layer.
 *
 * A datacenter SFM deployment (paper Sec. 2.1: Google's zswap fleet,
 * Meta's TMO/senpai) runs far memory for many jobs at once. Each
 * tenant here models one job: it owns a shard of the shared
 * backend's page table, a control-plane policy (kstaled-style or
 * senpai-style), a priority class, and resource quotas the service
 * enforces against the shared NMA-equipped DIMMs.
 */

#ifndef XFM_SERVICE_TENANT_HH
#define XFM_SERVICE_TENANT_HH

#include <cstdint>
#include <string>

#include "common/stats.hh"
#include "common/units.hh"
#include "sfm/controller.hh"
#include "sfm/senpai.hh"
#include "sfm/tier_manager.hh"

namespace xfm
{
namespace service
{

/** Identifier of an admitted tenant (index into the registry). */
using TenantId = std::uint32_t;

/** Returned by admission control when a tenant is rejected. */
constexpr TenantId invalidTenant = ~TenantId(0);

/** Scheduling class of a tenant. */
enum class PriorityClass
{
    LatencySensitive,  ///< preempts batch work for offload slots
    Batch,             ///< weighted round-robin over leftover slots
};

/** Human-readable class name for stats tables. */
const char *priorityClassName(PriorityClass cls);

/** Which SFM control-plane policy drives the tenant's reclaim. */
enum class ControlPolicy
{
    Kstaled,  ///< cold-age scanning (Google-style)
    Senpai,   ///< pressure feedback (Meta-style)
};

/** Per-tenant resource quotas enforced by the service. */
struct TenantQuota
{
    /** Pages the tenant may hold compressed in the shared SFM
     *  region; swap-outs beyond this are rejected. */
    std::uint64_t maxFarPages = 1ull << 20;
    /**
     * Worst-case SPM staging bytes the tenant may have in flight.
     * Offloads beyond this degrade to the CPU path instead of
     * queueing (the "degrade, don't starve others" rule).
     */
    std::uint64_t spmBytes = 16 * pageBytes;
    /** Offload dispatches the arbiter grants per tREFI window. */
    std::uint32_t offloadSlotsPerTrefi = 2;
};

/** Static description of one tenant. */
struct TenantConfig
{
    std::string name = "tenant";
    PriorityClass cls = PriorityClass::Batch;
    /** WRR weight within the Batch class (ignored for latency). */
    std::uint32_t weight = 1;
    /** Virtual pages in the tenant's page-table shard. */
    std::uint64_t pages = 256;
    TenantQuota quota;
    ControlPolicy policy = ControlPolicy::Kstaled;
    sfm::ControllerConfig kstaled;
    sfm::SenpaiConfig senpai;
    /**
     * Demotion-routing policy of this tenant's page group when the
     * service runs the three-tier hierarchy (SMDK-style group
     * policy). Ignored while tiering is disabled.
     */
    sfm::TierPolicy tierPolicy = sfm::TierPolicy::Auto;
};

/**
 * Per-tenant service statistics (the ServiceStats layer).
 *
 * Demand-fault latency feeds a histogram so the stats table can
 * report p50/p99 per tenant, the SLO-style metric a fleet operator
 * watches.
 */
struct TenantStats
{
    std::uint64_t accesses = 0;
    std::uint64_t localHits = 0;
    std::uint64_t demandFaults = 0;
    std::uint64_t swapOuts = 0;
    std::uint64_t swapIns = 0;
    std::uint64_t nmaOps = 0;          ///< served by the NMA
    std::uint64_t cpuOps = 0;          ///< CPU path (incl. fallback)
    std::uint64_t quotaRejects = 0;    ///< far-page quota exceeded
    std::uint64_t degradedToCpu = 0;   ///< SPM quota exceeded
    /** Offload-eligible operations that ended on the CPU because the
     *  backend fell back (capacity, deadline, or injected fault). */
    std::uint64_t nmaFallbacks = 0;
    /** Driver/link re-submissions this tenant's operations consumed
     *  (non-zero only under fault injection). */
    std::uint64_t offloadRetries = 0;
    /** Operations that failed outright (e.g. quarantined page). */
    std::uint64_t faultedOps = 0;
    /** Swap-outs refused with Rejected{Overload} while the service
     *  was shedding load (batch class only). */
    std::uint64_t shedRejects = 0;
    /** Swap-ins forced onto the CPU path while shedding (batch). */
    std::uint64_t shedDownTiers = 0;
    /** Swap-outs refused with Rejected{AbuseThrottle} while the
     *  abuse detector held this tenant throttled. */
    std::uint64_t abuseRejects = 0;
    /** Swap-ins forced onto the CPU path while throttled (faults
     *  must still complete; only the offload privilege is lost). */
    std::uint64_t abuseDownTiers = 0;
    /** Application swap ops the DFM spill tier served (tiered
     *  service only). */
    std::uint64_t dfmOps = 0;
    /** Transitions of this tenant's pages into the spill tier
     *  (application demotions plus internal XFM -> DFM spills). */
    std::uint64_t dfmSpills = 0;
    /** Transitions of this tenant's pages out of the spill tier. */
    std::uint64_t dfmReturns = 0;
    /** Demand swap-in service latency in nanoseconds. */
    stats::Histogram faultLatencyNs{0.0, 100000.0, 400};
    /** Queueing delay in the QoS arbiter. */
    stats::Average arbiterWaitNs;

    /** Fraction of swap operations the NMA handled. */
    double
    nmaFraction() const
    {
        const auto total = nmaOps + cpuOps;
        return total ? static_cast<double>(nmaOps) / total : 0.0;
    }
};

} // namespace service
} // namespace xfm

#endif // XFM_SERVICE_TENANT_HH
