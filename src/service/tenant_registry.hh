/**
 * @file
 * TenantRegistry: admission control and runtime resource accounting
 * for the multi-tenant far-memory service.
 *
 * The registry owns the static page-table sharding (tenant i gets
 * the global page range [i * pagesPerShard, (i+1) * pagesPerShard))
 * and the per-tenant usage counters the quota checks consult: far
 * pages held, SPM staging bytes in flight, and stored compressed
 * bytes. Admission control rejects tenants whose shard or SPM quota
 * would oversubscribe the shared backend.
 */

#ifndef XFM_SERVICE_TENANT_REGISTRY_HH
#define XFM_SERVICE_TENANT_REGISTRY_HH

#include <vector>

#include "service/tenant.hh"

namespace xfm
{
namespace service
{

/** Static provisioning the registry admits tenants against. */
struct RegistryConfig
{
    /** Page-table shard slots (bounds tenant count). */
    std::size_t maxTenants = 16;
    /** Global pages reserved per shard. */
    std::uint64_t pagesPerShard = 512;
    /**
     * Total SPM bytes across all DIMMs; the sum of admitted SPM
     * quotas may not exceed it (no oversubscription of staging
     * space). 0 disables the check.
     */
    std::uint64_t totalSpmBytes = 0;
};

/**
 * Registry of admitted tenants.
 */
class TenantRegistry
{
  public:
    explicit TenantRegistry(const RegistryConfig &cfg);

    /**
     * Admit a tenant.
     *
     * @return its id, or invalidTenant when admission control
     *         rejects it (no shard slot left, shard too small for
     *         its pages, or SPM quota oversubscribed).
     */
    TenantId add(const TenantConfig &cfg);

    std::size_t size() const { return tenants_.size(); }
    /** Tenants turned away by admission control. */
    std::uint64_t rejectedAdmissions() const { return rejected_; }

    const TenantConfig &config(TenantId id) const;
    /** First global page of the tenant's shard. */
    std::uint64_t basePage(TenantId id) const;

    // Runtime accounting ---------------------------------------------
    /** Far pages currently held (plus in-flight swap-outs). */
    std::uint64_t farPages(TenantId id) const;
    /** True if one more swap-out stays within the far-page quota. */
    bool underFarQuota(TenantId id) const;
    /** A swap-out was initiated (+1) or a swap-in completed (-1). */
    void noteFarPages(TenantId id, std::int64_t delta);

    /** Compressed bytes the tenant stores in the SFM region. */
    std::uint64_t storedBytes(TenantId id) const;
    void noteStoredBytes(TenantId id, std::int64_t delta);

    /**
     * Charge @p bytes of in-flight SPM staging against the tenant's
     * quota.
     *
     * @retval false quota exceeded; the caller must degrade to CPU.
     */
    bool tryChargeSpm(TenantId id, std::uint64_t bytes);
    void releaseSpm(TenantId id, std::uint64_t bytes);
    std::uint64_t spmCharged(TenantId id) const;

    TenantStats &stats(TenantId id);
    const TenantStats &stats(TenantId id) const;

    const RegistryConfig &registryConfig() const { return cfg_; }

  private:
    struct Entry
    {
        TenantConfig cfg;
        std::uint64_t farPages = 0;
        std::uint64_t storedBytes = 0;
        std::uint64_t spmCharged = 0;
        TenantStats stats;
    };

    const Entry &entry(TenantId id) const;
    Entry &entry(TenantId id);

    RegistryConfig cfg_;
    std::vector<Entry> tenants_;
    std::uint64_t spm_quota_sum_ = 0;
    std::uint64_t rejected_ = 0;
};

} // namespace service
} // namespace xfm

#endif // XFM_SERVICE_TENANT_REGISTRY_HH
