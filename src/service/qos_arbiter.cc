#include "qos_arbiter.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xfm
{
namespace service
{

QosArbiter::QosArbiter(std::string name, EventQueue &eq,
                       const QosArbiterConfig &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    XFM_ASSERT(cfg_.window > 0, "dispatch window must be positive");
    XFM_ASSERT(cfg_.slotsPerWindow > 0, "need at least one slot");
    XFM_ASSERT(cfg_.minBatchSlots < cfg_.slotsPerWindow,
               "batch floor must leave room for latency work");
}

void
QosArbiter::addTenant(TenantId id, PriorityClass cls,
                      std::uint32_t weight, std::uint32_t slot_quota)
{
    XFM_ASSERT(index_.find(id) == index_.end(),
               "tenant ", id, " already has a lane");
    XFM_ASSERT(weight > 0, "WRR weight must be positive");
    XFM_ASSERT(slot_quota > 0, "slot quota must be positive");
    Lane l;
    l.id = id;
    l.cls = cls;
    l.weight = weight;
    l.slotQuota = slot_quota;
    index_.emplace(id, lanes_.size());
    lanes_.push_back(std::move(l));
}

void
QosArbiter::start()
{
    if (started_)
        return;
    started_ = true;
    // The arbiter spans every tenant and DIMM, so its window timer
    // stays on the global event domain (shard 0).
    eventq().scheduleIn(cfg_.window, [this] { window(); },
                        EventQueue::defaultPriority,
                        EventQueue::globalDomain);
}

void
QosArbiter::enqueue(TenantId id, Job job)
{
    Lane &l = lane(id);
    ++l.stats.enqueued;
    l.q.push_back({std::move(job), curTick()});
}

std::size_t
QosArbiter::queued() const
{
    std::size_t n = 0;
    for (const auto &l : lanes_)
        n += l.q.size();
    return n;
}

std::size_t
QosArbiter::queued(TenantId id) const
{
    return lane(id).q.size();
}

const ArbiterLaneStats &
QosArbiter::laneStats(TenantId id) const
{
    return lane(id).stats;
}

void
QosArbiter::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".";
    r.counter(p + "windows", &stats_.windows,
              "tREFI dispatch windows run");
    r.counter(p + "dispatched", &stats_.dispatched);
    r.counter(p + "preemptions", &stats_.preemptions,
              "latency slots granted while batch waited");
    r.counter(p + "throttledWindows", &stats_.throttledWindows,
              "slots left unused with work queued");
    r.derived(p + "queued",
              [this] { return static_cast<double>(queued()); });
}

void
QosArbiter::registerLaneMetrics(obs::MetricRegistry &r, TenantId id,
                                const std::string &prefix)
{
    // Lane addresses are stable only because reserveLanes() bounded
    // the vector; the service calls it before any admission.
    ArbiterLaneStats &ls = lane(id).stats;
    const std::string p = prefix + ".arbiter.";
    r.counter(p + "enqueued", &ls.enqueued);
    r.counter(p + "dispatched", &ls.dispatched);
    r.average(p + "waitNs", &ls.waitNs,
              "queueing delay before dispatch");
}

QosArbiter::Lane &
QosArbiter::lane(TenantId id)
{
    const auto it = index_.find(id);
    XFM_ASSERT(it != index_.end(), "no lane for tenant ", id);
    return lanes_[it->second];
}

const QosArbiter::Lane &
QosArbiter::lane(TenantId id) const
{
    const auto it = index_.find(id);
    XFM_ASSERT(it != index_.end(), "no lane for tenant ", id);
    return lanes_[it->second];
}

bool
QosArbiter::batchWaiting() const
{
    for (const auto &l : lanes_)
        if (l.cls == PriorityClass::Batch && !l.q.empty())
            return true;
    return false;
}

void
QosArbiter::dispatch(Lane &l)
{
    Pending p = std::move(l.q.front());
    l.q.pop_front();
    l.stats.waitNs.sample(ticksToNs(curTick() - p.enqueued));
    ++l.stats.dispatched;
    ++l.grantedThisWindow;
    ++stats_.dispatched;
    if (p.job)
        p.job();
}

void
QosArbiter::window()
{
    ++stats_.windows;
    for (auto &l : lanes_)
        l.grantedThisWindow = 0;

    std::uint32_t slots = cfg_.slotsPerWindow;
    const std::size_t n = lanes_.size();

    // Latency-sensitive tenants preempt: they are served first, but
    // while batch work is backlogged they may not consume the
    // reserved batch floor (starvation freedom).
    const bool batch_backlog = batchWaiting();
    std::uint32_t latency_budget = slots;
    if (batch_backlog && cfg_.minBatchSlots < slots)
        latency_budget = slots - cfg_.minBatchSlots;
    bool progress = true;
    while (slots > 0 && latency_budget > 0 && progress) {
        progress = false;
        for (std::size_t k = 0;
             k < n && slots > 0 && latency_budget > 0; ++k) {
            Lane &l = lanes_[(latency_rr_ + k) % n];
            if (l.cls != PriorityClass::LatencySensitive
                || l.q.empty() || l.grantedThisWindow >= l.slotQuota)
                continue;
            dispatch(l);
            --slots;
            --latency_budget;
            if (batch_backlog)
                ++stats_.preemptions;
            progress = true;
        }
    }

    // Batch class: deficit-weighted round-robin over the leftovers.
    // Credit refills proportionally to weight, so over time each
    // backlogged batch tenant's share converges to its weight.
    for (auto &l : lanes_) {
        if (l.cls != PriorityClass::Batch || l.q.empty())
            continue;
        const double cap = static_cast<double>(l.weight + l.slotQuota);
        l.deficit = std::min(l.deficit + l.weight, cap);
    }
    progress = true;
    while (slots > 0 && progress) {
        progress = false;
        for (std::size_t k = 0; k < n && slots > 0; ++k) {
            Lane &l = lanes_[(batch_rr_ + k) % n];
            if (l.cls != PriorityClass::Batch || l.q.empty()
                || l.grantedThisWindow >= l.slotQuota
                || l.deficit < 1.0)
                continue;
            dispatch(l);
            l.deficit -= 1.0;
            --slots;
            progress = true;
        }
        if (!progress && slots > 0) {
            // Work-conserving top-up: everyone still backlogged is
            // deficit-limited, so refill proportionally (ratios are
            // preserved) rather than waste slots. Quota-limited
            // lanes stay throttled.
            for (auto &l : lanes_) {
                if (l.cls == PriorityClass::Batch && !l.q.empty()
                    && l.grantedThisWindow < l.slotQuota) {
                    l.deficit += l.weight;
                    progress = true;
                }
            }
            if (!progress)
                break;  // only quota-limited (or empty) lanes remain
        }
    }

    if (slots > 0 && queued() > 0)
        ++stats_.throttledWindows;

    if (n > 0) {
        latency_rr_ = (latency_rr_ + 1) % n;
        batch_rr_ = (batch_rr_ + 1) % n;
    }
    // The arbiter spans every tenant and DIMM, so its window timer
    // stays on the global event domain (shard 0).
    eventq().scheduleIn(cfg_.window, [this] { window(); },
                        EventQueue::defaultPriority,
                        EventQueue::globalDomain);
}

} // namespace service
} // namespace xfm
