#include "qos_arbiter.hh"

#include <algorithm>
#include <cmath>

#include "common/config.hh"
#include "common/logging.hh"

namespace xfm
{
namespace service
{

QosArbiterConfig
QosArbiterConfig::fromConfig(const Config &cfg)
{
    QosArbiterConfig c;
    c.slotsPerWindow = static_cast<std::uint32_t>(
        cfg.getU64("qos.slots_per_window", c.slotsPerWindow));
    c.minBatchSlots = static_cast<std::uint32_t>(
        cfg.getU64("qos.min_batch_slots", c.minBatchSlots));
    c.reservedSlotFrac =
        cfg.getDouble("qos.reserved_slot_frac", c.reservedSlotFrac);
    c.slotDebt = cfg.getBool("qos.slot_debt", c.slotDebt);
    c.abuseEnabled = cfg.getBool("qos.abuse_enabled", c.abuseEnabled);
    c.abuseWindows = static_cast<std::uint32_t>(
        cfg.getU64("qos.abuse_windows", c.abuseWindows));
    c.abuseZ = cfg.getDouble("qos.abuse_z", c.abuseZ);
    c.abuseMinLoss =
        cfg.getDouble("qos.abuse_min_loss", c.abuseMinLoss);
    c.abuseConsecutive = static_cast<std::uint32_t>(
        cfg.getU64("qos.abuse_consecutive", c.abuseConsecutive));
    if (cfg.has("qos.abuse_cooldown_ns"))
        c.abuseCooldown =
            nanoseconds(cfg.getDouble("qos.abuse_cooldown_ns"));

    if (c.slotsPerWindow == 0)
        fatal("qos.slots_per_window must be at least 1");
    if (c.minBatchSlots >= c.slotsPerWindow)
        fatal("qos.min_batch_slots must be below slots_per_window");
    if (c.reservedSlotFrac < 0.0 || c.reservedSlotFrac > 1.0)
        fatal("qos.reserved_slot_frac must be in [0, 1]");
    if (c.abuseWindows == 0)
        fatal("qos.abuse_windows must be at least 1");
    if (c.abuseConsecutive == 0)
        fatal("qos.abuse_consecutive must be at least 1");
    if (c.abuseCooldown == 0)
        fatal("qos.abuse_cooldown_ns must be positive");

    // Typos in qos.* keys would silently run a scenario with
    // default tuning the author believes was overridden; reject.
    static const char *known[] = {
        "qos.slots_per_window", "qos.min_batch_slots",
        "qos.reserved_slot_frac", "qos.slot_debt",
        "qos.abuse_enabled", "qos.abuse_windows", "qos.abuse_z",
        "qos.abuse_min_loss", "qos.abuse_consecutive",
        "qos.abuse_cooldown_ns",
    };
    for (const auto &key : cfg.keys()) {
        if (key.rfind("qos.", 0) != 0)
            continue;
        bool ok = false;
        for (const char *k : known)
            ok = ok || key == k;
        if (!ok)
            fatal("unknown qos key '", key, "'");
    }
    return c;
}

namespace
{

/** HealthMonitor tuning for the per-tenant abuse throttle. */
health::HealthConfig
abuseHealthConfig(const QosArbiterConfig &cfg)
{
    health::HealthConfig hc;
    hc.enabled = true;
    hc.cooldown = cfg.abuseCooldown;
    // The detector drives the monitor synchronously: one "probe"
    // per evaluation while in Probation, a clean streak re-closes.
    hc.probeQuota = 4;
    hc.probeSuccesses = 3;
    return hc;
}

} // namespace

QosArbiter::QosArbiter(std::string name, EventQueue &eq,
                       const QosArbiterConfig &cfg)
    : SimObject(std::move(name), eq), cfg_(cfg)
{
    XFM_ASSERT(cfg_.window > 0, "dispatch window must be positive");
    XFM_ASSERT(cfg_.slotsPerWindow > 0, "need at least one slot");
    XFM_ASSERT(cfg_.minBatchSlots < cfg_.slotsPerWindow,
               "batch floor must leave room for latency work");
    XFM_ASSERT(cfg_.reservedSlotFrac >= 0.0
                   && cfg_.reservedSlotFrac <= 1.0,
               "reserved slot fraction must be in [0, 1]");
}

void
QosArbiter::addTenant(TenantId id, PriorityClass cls,
                      std::uint32_t weight, std::uint32_t slot_quota)
{
    XFM_ASSERT(index_.find(id) == index_.end(),
               "tenant ", id, " already has a lane");
    XFM_ASSERT(weight > 0, "WRR weight must be positive");
    XFM_ASSERT(slot_quota > 0, "slot quota must be positive");
    Lane l;
    l.id = id;
    l.cls = cls;
    l.weight = weight;
    l.slotQuota = slot_quota;
    l.quotaThisWindow = slot_quota;
    if (cfg_.abuseEnabled)
        l.monitor = health::HealthMonitor(abuseHealthConfig(cfg_));
    index_.emplace(id, lanes_.size());
    lanes_.push_back(std::move(l));
}

void
QosArbiter::start()
{
    if (started_)
        return;
    started_ = true;
    // The arbiter spans every tenant and DIMM, so its window timer
    // stays on the global event domain (shard 0).
    eventq().scheduleIn(cfg_.window, [this] { window(); },
                        EventQueue::defaultPriority,
                        EventQueue::globalDomain);
}

void
QosArbiter::enqueue(TenantId id, Job job)
{
    Lane &l = lane(id);
    ++l.stats.enqueued;
    l.q.push_back({std::move(job), curTick()});
}

void
QosArbiter::noteRfmSteal(std::uint32_t slots, TenantId culprit)
{
    if (slots == 0)
        return;
    stats_.rfmStolenSlots += slots;
    if (tracer_) {
        if (!trace_req_)
            trace_req_ = tracer_->begin();
        tracer_->point(trace_req_, obs::Stage::SlotSteal, curTick(),
                       slots);
    }
    const auto it = culprit == invalidTenant
        ? index_.end() : index_.find(culprit);
    if (it != index_.end()) {
        Lane &l = lanes_[it->second];
        l.stats.rfmLoss += slots;
        l.rfmLossEval += slots;
        if (cfg_.slotDebt) {
            // The ledger charges the culprit's own future grants;
            // the shared window stays whole for everyone else.
            l.debt += slots;
            return;
        }
    }
    pending_steal_ += slots;
}

bool
QosArbiter::abuseThrottled(TenantId id)
{
    if (!cfg_.abuseEnabled)
        return false;
    return lane(id).monitor.state(curTick())
        == health::HealthState::Failed;
}

std::uint64_t
QosArbiter::slotDebt(TenantId id) const
{
    return lane(id).debt;
}

health::HealthMonitor &
QosArbiter::abuseMonitor(TenantId id)
{
    return lane(id).monitor;
}

bool
QosArbiter::laneBlocked(Lane &l)
{
    if (!cfg_.abuseEnabled)
        return false;
    return l.monitor.state(curTick()) == health::HealthState::Failed;
}

void
QosArbiter::evaluateAbuse(Tick now)
{
    ++stats_.abuseEvals;
    const std::size_t n = lanes_.size();
    if (n == 0)
        return;
    double sum = 0.0, sq = 0.0;
    for (const auto &l : lanes_) {
        const double x = static_cast<double>(l.rfmLossEval);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / static_cast<double>(n);
    const double var =
        std::max(0.0, sq / static_cast<double>(n) - mean * mean);
    const double sd = std::sqrt(var);

    for (auto &l : lanes_) {
        const double x = static_cast<double>(l.rfmLossEval);
        l.rfmLossEval = 0;
        const bool outlier =
            sd > 0.0 && (x - mean) / sd >= cfg_.abuseZ;
        const bool flagged = x >= cfg_.abuseMinLoss && outlier;
        if (flagged) {
            ++l.stats.abuseFlags;
            ++stats_.abuseFlags;
        }
        switch (l.monitor.state(now)) {
          case health::HealthState::Failed:
            // Sustained abuse while throttled restarts the
            // cooldown; otherwise let it age into Probation.
            if (flagged)
                l.monitor.forceFail(now);
            break;
          case health::HealthState::Probation:
            // One synchronous probe per evaluation: a clean streak
            // re-closes the breaker, a re-offence re-trips it.
            l.monitor.admit(now);
            if (flagged) {
                l.monitor.recordFault(now);
                ++stats_.abuseEscalations;
            } else {
                l.monitor.recordSuccess(now);
            }
            break;
          default:
            l.flaggedStreak = flagged ? l.flaggedStreak + 1 : 0;
            if (l.flaggedStreak >= cfg_.abuseConsecutive) {
                l.flaggedStreak = 0;
                l.monitor.forceFail(now);
                ++stats_.abuseEscalations;
            }
            break;
        }
    }
}

std::size_t
QosArbiter::queued() const
{
    std::size_t n = 0;
    for (const auto &l : lanes_)
        n += l.q.size();
    return n;
}

std::size_t
QosArbiter::queued(TenantId id) const
{
    return lane(id).q.size();
}

const ArbiterLaneStats &
QosArbiter::laneStats(TenantId id) const
{
    return lane(id).stats;
}

void
QosArbiter::registerMetrics(obs::MetricRegistry &r)
{
    const std::string p = name() + ".";
    r.counter(p + "windows", &stats_.windows,
              "tREFI dispatch windows run");
    r.counter(p + "dispatched", &stats_.dispatched);
    r.counter(p + "preemptions", &stats_.preemptions,
              "latency slots granted while batch waited");
    r.counter(p + "throttledWindows", &stats_.throttledWindows,
              "slots left unused with work queued");
    r.derived(p + "queued",
              [this] { return static_cast<double>(queued()); });
    // Defense metrics appear only when a defense feature is armed so
    // default runs keep their metric namespace byte-identical.
    if (cfg_.defenseArmed()) {
        r.counter(p + "rfmStolenSlots", &stats_.rfmStolenSlots,
                  "service slots destroyed by RFM commands");
        r.counter(p + "debtCharged", &stats_.debtCharged,
                  "slots repaid from tenant RFM debt ledgers");
        r.counter(p + "reservedGrants", &stats_.reservedGrants,
                  "grants made by the hard-isolation pass");
    }
    if (cfg_.abuseEnabled) {
        const std::string a = p + "abuse.";
        r.counter(a + "evals", &stats_.abuseEvals,
                  "abuse-detector evaluations run");
        r.counter(a + "flags", &stats_.abuseFlags,
                  "tenant flaggings across evaluations");
        r.counter(a + "escalations", &stats_.abuseEscalations,
                  "throttle escalations issued");
    }
}

void
QosArbiter::registerLaneMetrics(obs::MetricRegistry &r, TenantId id,
                                const std::string &prefix)
{
    // Lane addresses are stable only because reserveLanes() bounded
    // the vector; the service calls it before any admission.
    ArbiterLaneStats &ls = lane(id).stats;
    const std::string p = prefix + ".arbiter.";
    r.counter(p + "enqueued", &ls.enqueued);
    r.counter(p + "dispatched", &ls.dispatched);
    r.average(p + "waitNs", &ls.waitNs,
              "queueing delay before dispatch");
    if (cfg_.abuseEnabled) {
        r.counter(p + "rfmLoss", &ls.rfmLoss,
                  "slot loss this tenant's RFMs caused");
        r.counter(p + "abuseFlags", &ls.abuseFlags,
                  "evaluations that flagged this tenant");
        lane(id).monitor.registerMetrics(r, prefix + ".abuse");
    }
}

QosArbiter::Lane &
QosArbiter::lane(TenantId id)
{
    const auto it = index_.find(id);
    XFM_ASSERT(it != index_.end(), "no lane for tenant ", id);
    return lanes_[it->second];
}

const QosArbiter::Lane &
QosArbiter::lane(TenantId id) const
{
    const auto it = index_.find(id);
    XFM_ASSERT(it != index_.end(), "no lane for tenant ", id);
    return lanes_[it->second];
}

bool
QosArbiter::batchWaiting(const std::vector<char> &blocked) const
{
    for (std::size_t i = 0; i < lanes_.size(); ++i)
        if (!blocked[i] && lanes_[i].cls == PriorityClass::Batch
            && !lanes_[i].q.empty())
            return true;
    return false;
}

void
QosArbiter::dispatch(Lane &l)
{
    Pending p = std::move(l.q.front());
    l.q.pop_front();
    l.stats.waitNs.sample(ticksToNs(curTick() - p.enqueued));
    ++l.stats.dispatched;
    ++l.grantedThisWindow;
    ++stats_.dispatched;
    if (p.job)
        p.job();
}

void
QosArbiter::window()
{
    ++stats_.windows;
    const Tick now = curTick();

    if (cfg_.abuseEnabled
        && ++windows_since_eval_ >= cfg_.abuseWindows) {
        windows_since_eval_ = 0;
        evaluateAbuse(now);
    }

    const std::size_t n = lanes_.size();
    std::vector<char> blocked(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        Lane &l = lanes_[i];
        l.grantedThisWindow = 0;
        l.quotaThisWindow = l.slotQuota;
        if (cfg_.abuseEnabled && laneBlocked(l))
            blocked[i] = 1;
        if (cfg_.slotDebt && l.debt > 0) {
            // Repay RFM slot debt out of this window's own quota.
            const std::uint32_t pay = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(l.debt, l.quotaThisWindow));
            l.quotaThisWindow -= pay;
            l.debt -= pay;
            stats_.debtCharged += pay;
        }
    }

    std::uint32_t slots = cfg_.slotsPerWindow;
    bool progress = true;

    // Hard-isolation pass: the reserved fraction is granted
    // round-robin across tenants before RFM steals can shrink the
    // window, so no tenant is starved to zero by refresh pressure.
    std::uint32_t reserved = static_cast<std::uint32_t>(
        cfg_.reservedSlotFrac
        * static_cast<double>(cfg_.slotsPerWindow));
    reserved = std::min(reserved, slots);
    while (reserved > 0 && progress) {
        progress = false;
        for (std::size_t k = 0; k < n && reserved > 0; ++k) {
            const std::size_t i = (reserved_rr_ + k) % n;
            Lane &l = lanes_[i];
            if (blocked[i] || l.q.empty()
                || l.grantedThisWindow >= l.quotaThisWindow)
                continue;
            dispatch(l);
            ++stats_.reservedGrants;
            --reserved;
            --slots;
            progress = true;
        }
    }

    // RFM-destroyed service capacity eats the unreserved remainder
    // (with the debt ledger on, only unattributed steals land here).
    if (pending_steal_ > 0 && slots > 0) {
        const std::uint32_t eaten = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(pending_steal_, slots));
        slots -= eaten;
        pending_steal_ -= eaten;
    }

    // Latency-sensitive tenants preempt: they are served first, but
    // while batch work is backlogged they may not consume the
    // reserved batch floor (starvation freedom).
    const bool batch_backlog = batchWaiting(blocked);
    std::uint32_t latency_budget = slots;
    if (batch_backlog && cfg_.minBatchSlots < slots)
        latency_budget = slots - cfg_.minBatchSlots;
    progress = true;
    while (slots > 0 && latency_budget > 0 && progress) {
        progress = false;
        for (std::size_t k = 0;
             k < n && slots > 0 && latency_budget > 0; ++k) {
            const std::size_t i = (latency_rr_ + k) % n;
            Lane &l = lanes_[i];
            if (blocked[i] || l.cls != PriorityClass::LatencySensitive
                || l.q.empty()
                || l.grantedThisWindow >= l.quotaThisWindow)
                continue;
            dispatch(l);
            --slots;
            --latency_budget;
            if (batch_backlog)
                ++stats_.preemptions;
            progress = true;
        }
    }

    // Batch class: deficit-weighted round-robin over the leftovers.
    // Credit refills proportionally to weight, so over time each
    // backlogged batch tenant's share converges to its weight.
    for (auto &l : lanes_) {
        if (l.cls != PriorityClass::Batch || l.q.empty())
            continue;
        const double cap = static_cast<double>(l.weight + l.slotQuota);
        l.deficit = std::min(l.deficit + l.weight, cap);
    }
    progress = true;
    while (slots > 0 && progress) {
        progress = false;
        for (std::size_t k = 0; k < n && slots > 0; ++k) {
            const std::size_t i = (batch_rr_ + k) % n;
            Lane &l = lanes_[i];
            if (blocked[i] || l.cls != PriorityClass::Batch
                || l.q.empty()
                || l.grantedThisWindow >= l.quotaThisWindow
                || l.deficit < 1.0)
                continue;
            dispatch(l);
            l.deficit -= 1.0;
            --slots;
            progress = true;
        }
        if (!progress && slots > 0) {
            // Work-conserving top-up: everyone still backlogged is
            // deficit-limited, so refill proportionally (ratios are
            // preserved) rather than waste slots. Quota-limited
            // lanes stay throttled.
            for (std::size_t i = 0; i < n; ++i) {
                Lane &l = lanes_[i];
                if (!blocked[i] && l.cls == PriorityClass::Batch
                    && !l.q.empty()
                    && l.grantedThisWindow < l.quotaThisWindow) {
                    l.deficit += l.weight;
                    progress = true;
                }
            }
            if (!progress)
                break;  // only quota-limited (or empty) lanes remain
        }
    }

    if (slots > 0 && queued() > 0)
        ++stats_.throttledWindows;

    if (n > 0) {
        latency_rr_ = (latency_rr_ + 1) % n;
        batch_rr_ = (batch_rr_ + 1) % n;
        reserved_rr_ = (reserved_rr_ + 1) % n;
    }
    // The arbiter spans every tenant and DIMM, so its window timer
    // stays on the global event domain (shard 0).
    eventq().scheduleIn(cfg_.window, [this] { window(); },
                        EventQueue::defaultPriority,
                        EventQueue::globalDomain);
}

} // namespace service
} // namespace xfm
